// Package aliaslimit is a reproduction of "Pushing Alias Resolution to the
// Limit" (Albakour, Gasser, Smaragdakis — ACM IMC 2023): protocol-centric IP
// alias resolution and dual-stack inference from SSH and BGP application-
// layer identifiers, evaluated against the SNMPv3 and MIDAR baselines.
//
// The package is the high-level facade. It builds a deterministic synthetic
// Internet (the stand-in for the paper's Internet-wide scans), measures it
// from the paper's two vantage points, runs the inference pipeline, and
// renders every table and figure of the paper's evaluation. The underlying
// machinery lives in internal/ packages:
//
//	netsim, topo      — the simulated Internet
//	sshwire, bgp,     — real wire-protocol implementations
//	snmpv3
//	zmaplite, zgrab   — the two-phase scanning pipeline
//	ident, alias      — the paper's contribution: identifiers and grouping
//	midar, iffinder   — classical baselines
//	experiments       — the per-table/per-figure harnesses
//
// Quick start:
//
//	study, err := aliaslimit.Run(aliaslimit.StudyOptions{
//		Common: aliaslimit.Common{Scale: 0.1},
//	})
//	if err != nil { ... }
//	defer study.Close()
//	fmt.Println(study.RenderTable("Table 3"))
package aliaslimit

import (
	"fmt"
	"io"
	"net/netip"
	"strings"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/experiments"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/midar"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/scenario"
	"aliaslimit/internal/speedtrap"
	"aliaslimit/internal/topo"
)

// Protocol selects one of the identifier-bearing protocols.
type Protocol string

// The protocols the paper evaluates.
const (
	SSH    Protocol = "ssh"
	BGP    Protocol = "bgp"
	SNMPv3 Protocol = "snmpv3"
)

// toIdent maps the public protocol name to the internal enum.
func (p Protocol) toIdent() (ident.Protocol, error) {
	switch p {
	case SSH:
		return ident.SSH, nil
	case BGP:
		return ident.BGP, nil
	case SNMPv3:
		return ident.SNMP, nil
	default:
		return 0, fmt.Errorf("aliaslimit: unknown protocol %q", string(p))
	}
}

// Unified options surface. Every run-shaped entry point — Run, RunScenario,
// RunLongitudinal, RunScenarioSweep — shares one set of knobs, embedded as
// Common in the entry point's options struct, so the same field means the
// same thing everywhere and a new knob (a backend, a shard count) lands in
// every entry point at once.

// Common holds the options shared by every facade entry point.
type Common struct {
	// Seed makes the run reproducible; 0 picks each entry point's default.
	Seed uint64
	// Scale sizes the synthetic Internet. 1.0 ≈ 1:1000 of the paper's
	// measurement (~60k addresses); 0 picks the entry point's default
	// (0.25 for Run, the preset's own scale for scenarios).
	Scale float64
	// Backend names the alias-resolution strategy every analysis view
	// routes through: "batch" (default), "streaming" (observations consumed
	// online while the scans are in flight), "sharded" (identifier-space
	// partitioning across cores), or "distributed" (identifier-space
	// partitioning across worker processes; the invoking binary must be
	// worker-capable — see RunShardWorkerIfRequested). All backends produce
	// byte-identical alias sets; see BackendNames.
	Backend string
	// ShardWorkers sizes the partitioned backends: goroutines for
	// "sharded" (0 picks GOMAXPROCS), worker processes for "distributed"
	// (0 picks 2). The unpartitioned backends ignore it.
	ShardWorkers int
	// Workers bounds scan concurrency; 0 picks 256.
	Workers int
	// Parallelism bounds how many per-protocol sweeps run concurrently
	// during collection; 0 overlaps all protocols, 1 recovers the
	// sequential baseline. Results are byte-identical at any setting.
	Parallelism int
	// LogDir, when non-empty, makes scenario runs durable: a
	// crash-resumable observation log plus per-epoch checkpoints under this
	// directory. Run does not support durable logging and rejects a
	// non-empty LogDir.
	LogDir string
	// StreamCollect selects the out-of-core collection path: scan workers
	// spill observations straight to an on-disk observation log and the
	// analyses replay them in bounded batches, so peak memory is
	// O(alias-set output), not O(observations). Alias sets, tables, and
	// scorecards are byte-identical to the in-RAM path. Dataset.Obs is
	// empty in this mode; iterate through Dataset.EachObs or the derived
	// views instead.
	StreamCollect bool
	// MemBudget, consulted only with StreamCollect, advises the replay
	// readahead in bytes; 0 picks the default. It cannot change results.
	MemBudget int64
}

// StudyOptions configure Run.
type StudyOptions struct {
	Common
	// ChurnFraction is the share of dynamic addresses reassigned between
	// the Censys snapshot and the active scan; 0 picks 2%, negative
	// disables churn.
	ChurnFraction float64
}

// Options is the pre-consolidation name for StudyOptions.
//
// Deprecated: use StudyOptions. The alias is kept for one release.
type Options = StudyOptions

// Study is a completed measurement: world, datasets, and analyses.
type Study struct {
	env     *experiments.Env
	backend resolver.Backend
	closed  sync.Once
}

// Run builds the world, performs both measurement campaigns, and returns
// the study. Callers that select the "distributed" backend (or any future
// backend holding external resources) should Close the study when done.
func Run(opts StudyOptions) (*Study, error) {
	if opts.LogDir != "" {
		return nil, fmt.Errorf("aliaslimit: Run does not support durable logs; use RunScenario or RunLongitudinal with LogDir")
	}
	cfg := topo.Default()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Scale != 0 {
		cfg.Scale = opts.Scale
	} else {
		cfg.Scale = 0.25
	}
	backend, err := resolver.New(opts.Backend, opts.ShardWorkers)
	if err != nil {
		return nil, fmt.Errorf("aliaslimit: %w", err)
	}
	env, err := experiments.BuildEnv(experiments.Options{
		Topo: cfg,
		Scan: experiments.ScanOptions{
			Workers:     opts.Workers,
			Seed:        cfg.Seed,
			Parallelism: opts.Parallelism,
		},
		ChurnFraction: opts.ChurnFraction,
		Backend:       backend,
		StreamCollect: opts.StreamCollect,
		MemBudget:     opts.MemBudget,
	})
	if err != nil {
		closeBackend(backend)
		return nil, err
	}
	return &Study{env: env, backend: backend}, nil
}

// Close releases the study's resolver resources: its open sessions and,
// for backends that hold external resources (the "distributed" worker
// processes), the backend itself. The in-process backends make it a no-op.
// Safe to call more than once; the analysis views stay readable because
// every view is memoized on first use.
func (s *Study) Close() error {
	var first error
	s.closed.Do(func() {
		if s.env != nil {
			first = s.env.Close()
		}
		if err := closeBackend(s.backend); err != nil && first == nil {
			first = err
		}
	})
	return first
}

// closeBackend releases a backend's external resources when it holds any.
func closeBackend(b resolver.Backend) error {
	if c, ok := b.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// BackendNames lists the pluggable resolver backends in canonical order.
// Every backend produces byte-identical alias sets on identical inputs —
// they differ in execution strategy only (see internal/resolver).
func BackendNames() []string { return resolver.Names() }

// Env exposes the measured environment for the repository's own
// benchmarking and diagnostic tools (cmd/benchtables). It returns an
// internal type; out-of-module consumers should use the stable Study
// accessors instead.
func (s *Study) Env() *experiments.Env { return s.env }

// TableIDs lists the regenerable tables in paper order.
func (s *Study) TableIDs() []string {
	return []string{"Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6"}
}

// FigureIDs lists the regenerable figures in paper order.
func (s *Study) FigureIDs() []string {
	return []string{"Figure 3", "Figure 4", "Figure 5", "Figure 6"}
}

// RenderTable regenerates one of the paper's tables as text.
func (s *Study) RenderTable(id string) (string, error) {
	switch normalizeID(id) {
	case "table1", "1":
		return s.env.Table1().Render(), nil
	case "table2", "2":
		return s.env.Table2(experiments.Table2Config{}).Render(), nil
	case "table3", "3":
		return s.env.Table3().Render(), nil
	case "table4", "4":
		return s.env.Table4().Render(), nil
	case "table5", "5":
		return s.env.Table5().Render(), nil
	case "table6", "6":
		return s.env.Table6().Render(), nil
	default:
		return "", fmt.Errorf("aliaslimit: unknown table %q", id)
	}
}

// RenderFigure regenerates one of the paper's figures as a text table of
// ECDF values.
func (s *Study) RenderFigure(id string) (string, error) {
	switch normalizeID(id) {
	case "figure3", "3":
		return s.env.Figure3().Render(), nil
	case "figure4", "4":
		return s.env.Figure4().Render(), nil
	case "figure5", "5":
		return s.env.Figure5().Render(), nil
	case "figure6", "6":
		return s.env.Figure6().Render(), nil
	default:
		return "", fmt.Errorf("aliaslimit: unknown figure %q", id)
	}
}

// RenderAll regenerates every table and figure. The artifacts are generated
// concurrently (they share the env's memoized analysis views), and the
// output is byte-identical to rendering each artifact in paper order.
func (s *Study) RenderAll() string {
	return s.env.RenderAll()
}

// RenderExtensions runs the future-work extension experiments (multi-vantage
// coverage and the baseline-technique comparison) and renders both tables.
// It scans the world from the auxiliary vantage points, so it costs roughly
// one extra measurement campaign.
func (s *Study) RenderExtensions() (string, error) {
	var sb strings.Builder
	rows, err := experiments.MultiVantage(s.env.World, 4, experiments.ScanOptions{})
	if err != nil {
		return "", err
	}
	sb.WriteString(experiments.RenderMultiVantage(rows))
	sb.WriteByte('\n')
	sb.WriteString(experiments.RenderBaselines(s.env.CompareBaselines()))
	sb.WriteByte('\n')
	sv := s.env.ValidateWithSpeedtrap(40, speedtrap.Config{})
	fmt.Fprintf(&sb, "Extension C: Speedtrap (IPv6 fragment-ID) verification of SSH sets\n")
	fmt.Fprintf(&sb, "sampled %d IPv6 SSH sets: confirmed=%d split=%d unverifiable=%d\n\n",
		sv.Sampled, sv.Confirmed, sv.Split, sv.Unverifiable)
	sb.WriteString(experiments.RenderPTRComparison(s.env.ComparePTRDualStack()))
	sb.WriteByte('\n')
	sb.WriteString(experiments.RenderAccuracy(s.env.EvaluateAccuracy()))
	return sb.String(), nil
}

// normalizeID canonicalises "Table 3" / "table-3" / "3" style identifiers.
func normalizeID(id string) string {
	id = strings.ToLower(id)
	id = strings.NewReplacer(" ", "", "-", "", "_", "").Replace(id)
	return id
}

// AliasSets returns the non-singleton alias sets a protocol's union dataset
// yields, one sorted address list per set. v4 selects the address family.
func (s *Study) AliasSets(p Protocol, v4 bool) ([][]netip.Addr, error) {
	ip, err := p.toIdent()
	if err != nil {
		return nil, err
	}
	ds := s.env.Both
	if ip == ident.SNMP {
		ds = s.env.Active // SNMPv3 has a single source, as in the paper
	}
	return setsToAddrs(ds.NonSingletonFamilySets(ip, v4)), nil
}

// UnionAliasSets returns the cross-protocol union alias sets for one family.
func (s *Study) UnionAliasSets(v4 bool) [][]netip.Addr {
	return setsToAddrs(s.env.UnionFamilyNonSingleton(v4))
}

// DualStackSets returns the union dual-stack sets (each spans both
// families).
func (s *Study) DualStackSets() [][]netip.Addr {
	return setsToAddrs(s.env.DualStackSets())
}

// Validation runs the paper's cross-protocol validation for a protocol pair
// over the active measurement and reports (sample, agree, disagree).
func (s *Study) Validation(a, b Protocol) (sample, agree, disagree int, err error) {
	ia, err := a.toIdent()
	if err != nil {
		return 0, 0, 0, err
	}
	ib, err := b.toIdent()
	if err != nil {
		return 0, 0, 0, err
	}
	_, res := s.env.ValidatePair(ia, ib)
	return res.Sample, res.Agree, res.Disagree, nil
}

// MIDARValidation verifies up to maxSets sampled SSH alias sets with the
// IPID pipeline and reports the tally (unverifiable, confirmed, split).
// maxSets <= 0 selects the paper-scaled default sample (61 sets at Scale 1),
// exactly as Table 2 does: both share the same memoized verification run
// instead of probing the fabric twice.
func (s *Study) MIDARValidation(maxSets int) (unverifiable, confirmed, split int) {
	run := s.env.MIDARRun(maxSets, midar.Config{})
	return run.Tally.Unverifiable, run.Tally.Confirmed, run.Tally.Split
}

// setsToAddrs converts internal sets into plain address slices.
func setsToAddrs(sets []alias.Set) [][]netip.Addr {
	out := make([][]netip.Addr, len(sets))
	for i, s := range sets {
		out[i] = append([]netip.Addr(nil), s.Addrs...)
	}
	return out
}

// Stats summarises the study at a glance.
type Stats struct {
	// V4Addresses / V6Addresses are the responsive address counts (union).
	V4Addresses, V6Addresses int
	// UnionAliasSetsV4 / V6 count non-singleton cross-protocol sets.
	UnionAliasSetsV4, UnionAliasSetsV6 int
	// DualStackSets counts union dual-stack sets.
	DualStackSets int
	// Devices is the number of simulated devices.
	Devices int
}

// Scenario engine. The paper evaluates one Internet; the scenario presets
// open the workload axis: adversarial worlds (packet loss, probe rate
// limiting, shared-key farms, disabled SNMP, hostile IPID policies, churn
// storms, IPv6-dominant and full-scale populations) that each run the
// identical collect→resolve→validate pipeline and score it against the
// simulator's ground truth. The result types are aliases of
// internal/scenario so callers get the full structured scorecards; the
// option types are facade-owned and share the Common surface above.
type (
	// ScenarioResult is one scenario's ground-truth scorecard.
	ScenarioResult = scenario.Result
	// ScenarioReport is the mergeable SCENARIOS.json document.
	ScenarioReport = scenario.Report
	// LongitudinalResult is one preset's multi-epoch scorecard: per-epoch
	// precision/recall, identifier-persistence rates, alias-set survival
	// curves, and the longitudinal merge-strategy comparison.
	LongitudinalResult = scenario.LongitudinalResult
	// ScenarioSweep is one axis sweep's degradation curve.
	ScenarioSweep = scenario.SweepReport
)

// ScenarioOptions parameterise RunScenario and RunScenarioSweep.
type ScenarioOptions struct {
	Common
	// Quick selects the preset's CI-sized world; Scale overrides it.
	Quick bool
}

// internal converts the facade options into the scenario engine's type.
func (o ScenarioOptions) internal() scenario.Options {
	return scenario.Options{
		Seed:          o.Seed,
		Scale:         o.Scale,
		Quick:         o.Quick,
		Workers:       o.Workers,
		Parallelism:   o.Parallelism,
		Backend:       o.Backend,
		ShardWorkers:  o.ShardWorkers,
		LogDir:        o.LogDir,
		StreamCollect: o.StreamCollect,
		MemBudget:     o.MemBudget,
	}
}

// LongitudinalOptions parameterise RunLongitudinal.
type LongitudinalOptions struct {
	ScenarioOptions
	// Epochs is the number of snapshot→churn→scan rounds; 0 picks 5, and
	// values below 2 are rejected (a single epoch is RunScenario's job).
	Epochs int
	// Decay is the decay factor of the decay-weighted longitudinal merge
	// strategy; 0 picks 0.5.
	Decay float64
}

// ScenarioNames lists the preset catalog in canonical order.
func ScenarioNames() []string { return scenario.Names() }

// RunScenario builds the named preset's world, runs the full measurement and
// inference pipeline on it, and returns per-protocol precision / recall /
// coverage against the simulation's ground-truth alias sets. Results are
// deterministic for a fixed (name, options) — including under fault
// injection, whose drop draws are quenched per wire rather than rolled in
// execution order.
func RunScenario(name string, opts ScenarioOptions) (*ScenarioResult, error) {
	return scenario.Run(name, opts.internal())
}

// RunLongitudinal runs the named preset over opts.Epochs successive
// snapshot→churn→scan rounds on one persistent world: between epochs the
// world renumbers addresses, reboots devices into fresh SSH keys and SNMPv3
// engine IDs, and takes interfaces down or back up, while ground truth is
// snapshotted at every epoch's scan time so each epoch stays scorable. On
// top of the per-epoch scorecards it reports identifier-persistence rates,
// alias-set survival curves, and a comparison of longitudinal merge
// strategies (naive cumulative union vs decay-weighted identifier history)
// against the final epoch's ground truth. Deterministic for a fixed
// (name, options) at any concurrency setting.
func RunLongitudinal(name string, opts LongitudinalOptions) (*LongitudinalResult, error) {
	return scenario.RunLongitudinal(name, scenario.LongitudinalOptions{
		Options: opts.internal(),
		Epochs:  opts.Epochs,
		Decay:   opts.Decay,
	})
}

// LongitudinalScenarioNames lists the presets the CI longitudinal matrix
// pins (every preset can run longitudinally; these are the interesting ones).
func LongitudinalScenarioNames() []string { return scenario.LongitudinalNames() }

// RunScenarioSweep promotes one preset knob to an axis ("loss" or "churn")
// and returns the per-value degradation curve — the Figure-style counterpart
// of the single-point scenario scorecards.
func RunScenarioSweep(axis, name string, values []float64, opts ScenarioOptions) (*ScenarioSweep, error) {
	return scenario.RunSweep(axis, name, values, opts.internal())
}

// Stats computes the summary from the env's cached views; after the first
// call every quantity is a memoized lookup.
func (s *Study) Stats() Stats {
	return Stats{
		V4Addresses:      len(s.env.Both.AllAddrs(experiments.V4)),
		V6Addresses:      len(s.env.Both.AllAddrs(experiments.V6)),
		UnionAliasSetsV4: len(s.env.UnionFamilyNonSingleton(true)),
		UnionAliasSetsV6: len(s.env.UnionFamilyNonSingleton(false)),
		DualStackSets:    len(s.env.DualStackSets()),
		Devices:          s.env.World.Fabric.NumDevices(),
	}
}
