package aliaslimit

import (
	"strings"
	"sync"
	"testing"
)

var (
	studyOnce sync.Once
	studyVal  *Study
	studyErr  error
)

func testStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		studyVal, studyErr = Run(StudyOptions{Common: Common{Seed: 4, Scale: 0.08, Workers: 64}})
	})
	if studyErr != nil {
		t.Fatalf("Run: %v", studyErr)
	}
	return studyVal
}

func TestRunAndStats(t *testing.T) {
	s := testStudy(t)
	st := s.Stats()
	if st.Devices == 0 || st.V4Addresses == 0 || st.V6Addresses == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.UnionAliasSetsV4 == 0 || st.DualStackSets == 0 {
		t.Errorf("no sets inferred: %+v", st)
	}
}

func TestRenderAllTablesAndFigures(t *testing.T) {
	s := testStudy(t)
	for _, id := range s.TableIDs() {
		out, err := s.RenderTable(id)
		if err != nil {
			t.Fatalf("RenderTable(%s): %v", id, err)
		}
		if !strings.Contains(out, id) {
			t.Errorf("%s output missing header", id)
		}
	}
	for _, id := range s.FigureIDs() {
		out, err := s.RenderFigure(id)
		if err != nil {
			t.Fatalf("RenderFigure(%s): %v", id, err)
		}
		if !strings.Contains(out, id) {
			t.Errorf("%s output missing header", id)
		}
	}
	all := s.RenderAll()
	for _, id := range append(s.TableIDs(), s.FigureIDs()...) {
		if !strings.Contains(all, id) {
			t.Errorf("RenderAll missing %s", id)
		}
	}
}

func TestRenderIDNormalization(t *testing.T) {
	s := testStudy(t)
	variants := []string{"Table 3", "table3", "TABLE-3", "table_3", "3"}
	var outs []string
	for _, v := range variants {
		out, err := s.RenderTable(v)
		if err != nil {
			t.Fatalf("RenderTable(%q): %v", v, err)
		}
		outs = append(outs, out)
	}
	for i := 1; i < len(outs); i++ {
		if outs[i] != outs[0] {
			t.Errorf("variant %q rendered differently", variants[i])
		}
	}
	if _, err := s.RenderTable("Table 9"); err == nil {
		t.Error("unknown table: want error")
	}
	if _, err := s.RenderFigure("Figure 1"); err == nil {
		t.Error("unknown figure: want error")
	}
}

func TestAliasSetAccessors(t *testing.T) {
	s := testStudy(t)
	for _, p := range []Protocol{SSH, BGP, SNMPv3} {
		sets, err := s.AliasSets(p, true)
		if err != nil {
			t.Fatalf("AliasSets(%s): %v", p, err)
		}
		for _, set := range sets {
			if len(set) < 2 {
				t.Fatalf("%s returned singleton set %v", p, set)
			}
			for _, a := range set {
				if !a.Is4() {
					t.Fatalf("%s v4 query returned %s", p, a)
				}
			}
		}
	}
	if _, err := s.AliasSets(Protocol("tcpdump"), true); err == nil {
		t.Error("unknown protocol: want error")
	}
	union := s.UnionAliasSets(true)
	ssh, _ := s.AliasSets(SSH, true)
	if len(union) < len(ssh) {
		t.Errorf("union (%d) smaller than SSH alone (%d)", len(union), len(ssh))
	}
	for _, set := range s.DualStackSets() {
		v4, v6 := 0, 0
		for _, a := range set {
			if a.Is4() {
				v4++
			} else {
				v6++
			}
		}
		if v4 == 0 || v6 == 0 {
			t.Fatalf("dual-stack set %v lacks a family", set)
		}
	}
}

func TestValidationAccessor(t *testing.T) {
	s := testStudy(t)
	sample, agree, disagree, err := s.Validation(SSH, SNMPv3)
	if err != nil {
		t.Fatal(err)
	}
	if sample != agree+disagree {
		t.Errorf("sample %d != agree %d + disagree %d", sample, agree, disagree)
	}
	if _, _, _, err := s.Validation(Protocol("x"), SSH); err == nil {
		t.Error("unknown protocol: want error")
	}
	if _, _, _, err := s.Validation(SSH, Protocol("y")); err == nil {
		t.Error("unknown protocol: want error")
	}
}

func TestMIDARValidationAccessor(t *testing.T) {
	s := testStudy(t)
	unverifiable, confirmed, split := s.MIDARValidation(10)
	total := unverifiable + confirmed + split
	if total == 0 || total > 10 {
		t.Errorf("tally out of range: %d/%d/%d", unverifiable, confirmed, split)
	}
}

func TestDeterministicRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two worlds")
	}
	a, err := Run(StudyOptions{Common: Common{Seed: 9, Scale: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(StudyOptions{Common: Common{Seed: 9, Scale: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.RenderTable("Table 3")
	tb, _ := b.RenderTable("Table 3")
	if ta != tb {
		t.Errorf("same seed produced different Table 3:\n%s\nvs\n%s", ta, tb)
	}
}

func TestRenderExtensions(t *testing.T) {
	s := testStudy(t)
	out, err := s.RenderExtensions()
	if err != nil {
		t.Fatalf("RenderExtensions: %v", err)
	}
	for _, want := range []string{"Extension A", "Extension B", "Extension D", "iffinder"} {
		if !strings.Contains(out, want) {
			t.Errorf("extensions output missing %q", want)
		}
	}
}
