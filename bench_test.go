package aliaslimit

// This file is the benchmark harness required by the reproduction: one
// benchmark per table and figure of the paper's evaluation, plus ablation
// benchmarks for the design choices DESIGN.md calls out. Each benchmark
// regenerates its artifact from a fully measured environment; the expensive
// world construction and scanning happen once and are excluded from timing.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The custom metrics (sets, addrs, agreement…) carry the experiment's
// headline numbers into the benchmark output, so a bench run doubles as a
// results regeneration.

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/experiments"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/midar"
	"aliaslimit/internal/netsim"
	"aliaslimit/internal/speedtrap"
	"aliaslimit/internal/sshwire"
	"aliaslimit/internal/topo"
	"aliaslimit/internal/zmaplite"
)

// benchScale sizes the benchmark world: large enough for stable shapes,
// small enough that the full bench suite runs in seconds.
const benchScale = 0.4

var (
	benchOnce sync.Once
	benchEnvV *experiments.Env
	benchErr  error
)

// benchEnv lazily builds the shared measured environment.
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := topo.Default()
		cfg.Scale = benchScale
		cfg.Seed = 1
		benchEnvV, benchErr = experiments.BuildEnv(experiments.Options{
			Topo: cfg, Scan: experiments.ScanOptions{Workers: 128},
		})
	})
	if benchErr != nil {
		b.Fatalf("building benchmark environment: %v", benchErr)
	}
	return benchEnvV
}

// --- one benchmark per table ---

func BenchmarkTable1(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(env.Table1().Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable2(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(env.Table2(experiments.Table2Config{MIDARSampleSize: 20}).Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable3(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = env.Table3()
	}
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

func BenchmarkTable4(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = env.Table4()
	}
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

func BenchmarkTable5(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Table5()
	}
}

func BenchmarkTable6(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Table6()
	}
}

// --- one benchmark per figure ---

func BenchmarkFigure3(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var series int
	for i := 0; i < b.N; i++ {
		series = len(env.Figure3().Series)
	}
	b.ReportMetric(float64(series), "series")
}

func BenchmarkFigure4(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Figure4()
	}
}

func BenchmarkFigure5(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Figure5()
	}
}

func BenchmarkFigure6(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Figure6()
	}
}

// --- pipeline stage benchmarks ---

// BenchmarkCollectActive compares the sequential collection baseline
// (Parallelism=1: one protocol sweep at a time) against the fully pipelined
// collector (all three protocol sweeps concurrent, SYN results streaming into
// the service-scan pools). On a multi-core machine the pipelined variant is
// the wall-clock win the ISSUE demands; both produce byte-identical Datasets
// (TestCollectActiveDeterministic asserts this under -race).
func BenchmarkCollectActive(b *testing.B) {
	cfg := topo.Default()
	cfg.Scale = 0.25
	cfg.Seed = 7
	w, err := topo.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		opts experiments.ScanOptions
	}{
		{"sequential", experiments.ScanOptions{Workers: 128, Parallelism: 1}},
		{"pipelined", experiments.ScanOptions{Workers: 128}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var obs int
			for i := 0; i < b.N; i++ {
				ds, err := experiments.CollectActive(w, bc.opts)
				if err != nil {
					b.Fatal(err)
				}
				obs = len(ds.Obs[ident.SSH]) + len(ds.Obs[ident.BGP]) + len(ds.Obs[ident.SNMP])
			}
			b.ReportMetric(float64(obs), "observations")
		})
	}
}

// BenchmarkTopoBuild compares sequential world generation (BuildWorkers=1)
// against the sharded plan/build/commit pipeline (BuildWorkers=0: all
// cores). Both settings produce byte-identical worlds
// (topo.TestBuildParallelDeterministic asserts this).
func BenchmarkTopoBuild(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := topo.Default()
				cfg.Scale = 0.25
				cfg.Seed = 7
				cfg.BuildWorkers = bc.workers
				w, err := topo.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(w.Fabric.NumDevices()), "devices")
			}
		})
	}
}

// BenchmarkRunLongitudinal measures the full multi-epoch pipeline at small
// scale: three snapshot→churn→scan rounds over one persistent world plus the
// longitudinal scoring layer (per-epoch ground-truth scores, persistence,
// survival, merge strategies). This is the bench-regression gate's coverage
// of the EnvSeries path.
func BenchmarkRunLongitudinal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunLongitudinal("baseline", LongitudinalOptions{
			ScenarioOptions: ScenarioOptions{Common: Common{Scale: 0.05, Workers: 128}},
			Epochs:          3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BaselineSets), "tracked_sets")
	}
}

// BenchmarkRenderAll measures regenerating every table and figure from the
// shared measured environment — the memoized analysis layer makes repeated
// full renders near-free, and generation is concurrent.
func BenchmarkRenderAll(b *testing.B) {
	env := benchEnv(b)
	env.RenderAll() // populate the views once; steady-state is what a service would see
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(env.RenderAll())
	}
	b.ReportMetric(float64(n), "bytes")
}

// BenchmarkScanSSH measures the full two-phase SSH measurement (SYN sweep +
// application-layer handshakes) over the IPv4 universe.
func BenchmarkScanSSH(b *testing.B) {
	env := benchEnv(b)
	v := env.World.Fabric.Vantage(topo.VantageActive)
	targets := env.World.V4Universe()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep, err := zmaplite.Scan(v, zmaplite.Config{Targets: targets, Port: 22, Seed: uint64(i), Workers: 128})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(sweep.Open)), "open")
	}
	b.ReportMetric(float64(len(targets)), "targets")
}

// BenchmarkSSHHandshake measures a single full curve25519/ed25519 exchange.
func BenchmarkSSHHandshake(b *testing.B) {
	_, priv, err := sshwire.GenerateEd25519(nil)
	if err != nil {
		b.Fatal(err)
	}
	p := sshwire.Profiles[0]
	clk := netsim.NewSimClock(topo.Origin)
	f := netsim.New(clk)
	d, err := netsim.NewDevice(netsim.DeviceConfig{ID: "bench", Addrs: env0Addrs()}, clk.Now())
	if err != nil {
		b.Fatal(err)
	}
	d.SetService(22, sshwire.NewServer(sshwire.ServerConfig{
		Banner: p.Banner, Algorithms: p.Algorithms, HostKey: priv,
	}))
	if err := f.AddDevice(d); err != nil {
		b.Fatal(err)
	}
	v := f.Vantage("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := v.DialContext(benchCtx(), "tcp", "192.0.2.1:22")
		if err != nil {
			b.Fatal(err)
		}
		res, err := sshwire.Scan(conn, sshwire.ScanConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.HasIdentifierMaterial() {
			b.Fatal("handshake lost identifier material")
		}
	}
}

// env0Addrs is the fixed address of the single-handshake benchmark device.
func env0Addrs() []netip.Addr {
	return []netip.Addr{netip.MustParseAddr("192.0.2.1")}
}

// benchCtx is a background context helper for dials inside benchmarks.
func benchCtx() context.Context { return context.Background() }

// BenchmarkGrouping measures the identifier-grouping core over the union
// dataset.
func BenchmarkGrouping(b *testing.B) {
	env := benchEnv(b)
	obs := env.Both.Obs[ident.SSH]
	b.ResetTimer()
	var sets int
	for i := 0; i < b.N; i++ {
		sets = len(alias.Group(obs))
	}
	b.ReportMetric(float64(sets), "sets")
	b.ReportMetric(float64(len(obs)), "obs")
}

// BenchmarkMerge measures the cross-protocol union-find consolidation.
func BenchmarkMerge(b *testing.B) {
	env := benchEnv(b)
	ssh := alias.NonSingleton(alias.FilterFamily(env.Both.Sets(ident.SSH), true))
	bgpS := alias.NonSingleton(alias.FilterFamily(env.Both.Sets(ident.BGP), true))
	snmp := alias.NonSingleton(alias.FilterFamily(env.Active.Sets(ident.SNMP), true))
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(alias.Merge(ssh, bgpS, snmp))
	}
	b.ReportMetric(float64(n), "unionSets")
}

// --- ablation benchmarks (design choices from DESIGN.md §5) ---

// BenchmarkAblationIdentifierSSH compares the paper's combined identifier
// (capabilities + key) against the key-only ablation: the key-only variant
// merges fleet-key devices it should not.
func BenchmarkAblationIdentifierSSH(b *testing.B) {
	env := benchEnv(b)
	obs := env.Active.Obs[ident.SSH]
	full := alias.NonSingleton(alias.FilterFamily(alias.Group(obs), true))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = alias.Group(obs)
	}
	b.ReportMetric(float64(len(full)), "fullIdentifierSets")
}

// BenchmarkAblationUnionStrategy compares per-protocol counting against the
// union-find merge: the merge discovers strictly more structure whenever a
// device answers several protocols.
func BenchmarkAblationUnionStrategy(b *testing.B) {
	env := benchEnv(b)
	ssh := alias.NonSingleton(alias.FilterFamily(env.Both.Sets(ident.SSH), true))
	bgpS := alias.NonSingleton(alias.FilterFamily(env.Both.Sets(ident.BGP), true))
	snmp := alias.NonSingleton(alias.FilterFamily(env.Active.Sets(ident.SNMP), true))
	perProtocol := len(ssh) + len(bgpS) + len(snmp)
	var merged int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged = len(alias.Merge(ssh, bgpS, snmp))
	}
	b.ReportMetric(float64(perProtocol), "naiveSum")
	b.ReportMetric(float64(merged), "mergedSets")
}

// BenchmarkAblationScanOrder quantifies why ZMap randomises: the maximum
// probe burst any single /24 sees under the permuted order versus a linear
// sweep. Linear sweeps hammer each prefix with its full population at once —
// exactly what trips rate limiters and IDS filters.
func BenchmarkAblationScanOrder(b *testing.B) {
	env := benchEnv(b)
	targets := env.World.V4Universe()
	maxBurst := func(order []int) int {
		burst, maxB := 0, 0
		var prev [3]byte
		for _, i := range order {
			a := targets[i].As4()
			cur := [3]byte{a[0], a[1], a[2]}
			if cur == prev {
				burst++
			} else {
				burst = 1
				prev = cur
			}
			if burst > maxB {
				maxB = burst
			}
		}
		return maxB
	}
	linear := make([]int, len(targets))
	for i := range linear {
		linear[i] = i
	}
	var permutedBurst int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perm, err := zmaplite.NewPermutation(uint64(len(targets)), uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		order := make([]int, 0, len(targets))
		for {
			v, ok := perm.Next()
			if !ok {
				break
			}
			order = append(order, int(v))
		}
		permutedBurst = maxBurst(order)
	}
	b.ReportMetric(float64(maxBurst(linear)), "linearMaxBurstPer24")
	b.ReportMetric(float64(permutedBurst), "permutedMaxBurstPer24")
}

// BenchmarkAblationMIDARBudget sweeps the MIDAR probing budget: more rounds
// cost linearly more (simulated) probes but barely move the verifiable
// fraction — the bottleneck is counter behaviour, not sampling.
func BenchmarkAblationMIDARBudget(b *testing.B) {
	env := benchEnv(b)
	sets := alias.NonSingleton(alias.FilterFamily(env.Active.Sets(ident.SSH), true))
	var sample []alias.Set
	for _, s := range sets {
		if s.Size() <= 10 && len(sample) < 20 {
			sample = append(sample, s)
		}
	}
	for _, rounds := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			var verifiable int
			for i := 0; i < b.N; i++ {
				session := midar.NewSession(
					env.World.Fabric.Vantage(topo.VantageMIDAR), env.World.Clock,
					midar.Config{Rounds: rounds})
				_, tally := session.VerifySets(sample)
				verifiable = tally.Verifiable()
			}
			b.ReportMetric(float64(verifiable), "verifiableSets")
		})
	}
}

// --- extension benchmarks (the paper's §5 future-work agenda) ---

// BenchmarkExtensionMultiVantage measures the multi-vantage coverage sweep
// and reports the cumulative coverage curve's endpoints.
func BenchmarkExtensionMultiVantage(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var rows []experiments.VantageCoverage
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.MultiVantage(env.World, 4, experiments.ScanOptions{Workers: 128})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].IPs), "ipsOneVantage")
	b.ReportMetric(float64(rows[len(rows)-1].IPs), "ipsFourVantages")
}

// BenchmarkExtensionStability measures the two-scan identifier-stability
// experiment on a private world (it mutates clock and bindings).
func BenchmarkExtensionStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := topo.Default()
		cfg.Scale = 0.15
		cfg.Seed = uint64(i) + 100
		w, err := topo.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := experiments.Stability(w, 21*24*3600*1e9, 0.05, experiments.ScanOptions{Workers: 128})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.PersistenceRate(), "persistencePct")
	}
}

// BenchmarkBaselineIffinder measures the historical common-source-address
// technique against the whole IPv4 universe and reports its (poor) yield.
func BenchmarkBaselineIffinder(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var rows []experiments.BaselineComparison
	for i := 0; i < b.N; i++ {
		rows = env.CompareBaselines()
	}
	for _, r := range rows {
		if r.Technique == "iffinder (common source addr)" {
			b.ReportMetric(float64(r.Sets), "iffinderSets")
		}
		if r.Technique == "SSH identifier" {
			b.ReportMetric(float64(r.Sets), "sshSets")
		}
	}
}

// BenchmarkExtensionSpeedtrap measures the IPv6 fragment-ID validation of
// sampled SSH sets and reports how few are verifiable — the paper's IPv6
// coverage argument.
func BenchmarkExtensionSpeedtrap(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var res experiments.SpeedtrapValidation
	for i := 0; i < b.N; i++ {
		res = env.ValidateWithSpeedtrap(30, speedtrap.Config{})
	}
	b.ReportMetric(float64(res.Sampled), "sampledSets")
	b.ReportMetric(float64(res.Confirmed), "confirmed")
	b.ReportMetric(float64(res.Unverifiable), "unverifiable")
}

// BenchmarkExtensionPTR measures the DNS-based dual-stack baseline against
// the identifier results.
func BenchmarkExtensionPTR(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.PTRComparison
	for i := 0; i < b.N; i++ {
		r = env.ComparePTRDualStack()
	}
	b.ReportMetric(float64(r.PTRSets), "ptrSets")
	b.ReportMetric(float64(r.IdentifierSets), "identifierSets")
	b.ReportMetric(float64(r.Contradicted), "contradicted")
}

// BenchmarkMIDARResolveStandalone measures the RadarGun-style flat resolve
// over a mixed population, reporting how velocity bucketing bounds the
// pairwise tests.
func BenchmarkMIDARResolveStandalone(b *testing.B) {
	env := benchEnv(b)
	// Target the multi-interface router population: a flat resolve over
	// single-address servers would trivially find nothing.
	var targets []netip.Addr
	for _, addrs := range env.World.Truth.SNMPAddrs {
		for _, a := range addrs {
			if a.Is4() {
				targets = append(targets, a)
			}
		}
		if len(targets) >= 600 {
			break
		}
	}
	session := midar.NewSession(env.World.Fabric.Vantage(topo.VantageMIDAR), env.World.Clock, midar.Config{})
	b.ResetTimer()
	var res *midar.ResolveResult
	for i := 0; i < b.N; i++ {
		res = session.Resolve(targets)
	}
	b.ReportMetric(float64(len(res.Sets)), "sets")
	b.ReportMetric(float64(res.PairsTested), "pairsTested")
}

// BenchmarkExtensionAccuracy measures the ground-truth scoring pass and
// reports the SSH inference's pairwise precision/recall — an evaluation only
// a simulated substrate permits.
func BenchmarkExtensionAccuracy(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var rows []experiments.AccuracyReport
	for i := 0; i < b.N; i++ {
		rows = env.EvaluateAccuracy()
	}
	for _, r := range rows {
		if r.Protocol == "SSH" {
			b.ReportMetric(r.Precision, "sshPrecision")
			b.ReportMetric(r.Recall, "sshRecall")
		}
	}
}
