// Command aliasd runs alias resolution as a service: a long-lived HTTP
// daemon whose tenants stream router observations in and query live alias
// sets out, plus the load-test harness that drives it.
//
// Serve mode (the default) binds the daemon and blocks until SIGINT/SIGTERM,
// then drains every session so accepted observations are applied, not
// dropped:
//
//	aliasd -addr 127.0.0.1:8420 -max-sessions 64 -timeout 30s
//
// The wire protocol is documented in docs/API.md; `curl` examples live
// there and in the README.
//
// Load-test mode builds a measured corpus, starts an in-process daemon on a
// loopback port, and drives it with concurrent tenants whose final
// sets_digest must be byte-identical to the batch resolver's digest over
// the same corpus. The report uses the bench-gate JSON shape so CI can
// compare it against BENCH_baseline.json:
//
//	aliasd -loadtest -quick -json BENCH_aliasd.json -maxp99 2s
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"aliaslimit"
)

// errBadFlags marks command-line usage errors so main can exit 2, the
// conventional flag-error status, instead of 1.
var errBadFlags = errors.New("bad flags")

func main() {
	// When a distributed-backend coordinator re-executes this binary as a
	// shard worker, serve that role instead of parsing flags.
	aliaslimit.RunShardWorkerIfRequested()
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "aliasd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aliasd", flag.ContinueOnError)
	fs.SetOutput(stderr)

	addr := fs.String("addr", "127.0.0.1:8420", "listen address for serve mode")
	maxSessions := fs.Int("max-sessions", 0, "maximum concurrent sessions (0 = default)")
	queueDepth := fs.Int("queue-depth", 0, "per-session ingest queue depth (0 = default)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout (0 = none)")
	maxScale := fs.Float64("max-scale", 0, "largest world scale a tenant may request (0 = default)")

	loadtest := fs.Bool("loadtest", false, "run the load-test harness instead of serving")
	quick := fs.Bool("quick", false, "loadtest: small CI-friendly preset (fewer tenants and queries)")
	clients := fs.Int("clients", 8, "loadtest: concurrent tenants")
	requests := fs.Int("requests", 40, "loadtest: queries per tenant after ingest")
	batch := fs.Int("batch", 400, "loadtest: observations per ingest request")
	scale := fs.Float64("scale", 0.15, "loadtest: corpus world scale")
	seed := fs.Uint64("seed", 1, "loadtest: corpus world seed")
	backend := fs.String("backend", "", "loadtest: session resolver backend (default streaming)")
	jsonPath := fs.String("json", "", "loadtest: write the latency report to this path ('-' for stdout)")
	maxP99 := fs.Duration("maxp99", 0, "loadtest: fail if any aliasd_*_p99 entry exceeds this (0 = no gate)")

	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errBadFlags, err)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "unexpected arguments: %v\n", fs.Args())
		return errBadFlags
	}

	cfg := aliaslimit.AliasdConfig{
		MaxSessions:    *maxSessions,
		QueueDepth:     *queueDepth,
		RequestTimeout: *timeout,
		MaxScale:       *maxScale,
	}

	if *loadtest {
		opts := aliaslimit.AliasdLoadOptions{
			Clients:  *clients,
			Requests: *requests,
			Batch:    *batch,
			Scale:    *scale,
			Seed:     *seed,
			Backend:  *backend,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stderr, format+"\n", args...)
			},
		}
		if *quick {
			opts.Clients = 4
			opts.Requests = 10
			opts.Batch = 300
		}
		return runLoadTest(cfg, opts, *jsonPath, *maxP99, stdout, stderr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ready := make(chan string, 1)
	go func() {
		fmt.Fprintf(stderr, "aliasd: listening on http://%s (Ctrl-C drains and exits)\n", <-ready)
	}()
	return aliaslimit.ServeAliasd(ctx, *addr, cfg, ready)
}

// runLoadTest drives the harness, renders the human summary, optionally
// writes the bench-gate JSON, and enforces the p99 ceiling last so a gate
// failure still leaves the report on disk for CI artifacts.
func runLoadTest(cfg aliaslimit.AliasdConfig, opts aliaslimit.AliasdLoadOptions, jsonPath string, maxP99 time.Duration, stdout, stderr io.Writer) error {
	rep, err := aliaslimit.RunAliasdLoadTest(cfg, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "aliasd loadtest: scale %g seed %d, %d tenants, %d observations each, %d retries, sets_digest %s\n",
		rep.Scale, rep.Seed, rep.Clients, rep.Observations, rep.Retries, rep.SetsDigest)
	for _, l := range rep.Latencies {
		fmt.Fprintf(stdout, "  %-8s n=%-5d p50=%8.2fms p90=%8.2fms p99=%8.2fms\n",
			l.Class, l.Count, l.P50ms, l.P90ms, l.P99ms)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if jsonPath == "-" {
			if _, err := stdout.Write(data); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
				return fmt.Errorf("write latency report: %w", err)
			}
			fmt.Fprintf(stderr, "aliasd: wrote latency report to %s\n", jsonPath)
		}
	}

	if maxP99 > 0 {
		var over []string
		for _, e := range rep.Results {
			if !strings.HasSuffix(e.Name, "_p99") {
				continue
			}
			if e.NsPerOp > float64(maxP99.Nanoseconds()) {
				over = append(over, fmt.Sprintf("%s %.2fms", e.Name, e.NsPerOp/1e6))
			}
		}
		if len(over) > 0 {
			sort.Strings(over)
			return fmt.Errorf("p99 gate: %s exceed the %v ceiling", strings.Join(over, ", "), maxP99)
		}
		fmt.Fprintf(stdout, "p99 gate: all classes under %v\n", maxP99)
	}
	return nil
}
