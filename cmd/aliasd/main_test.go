package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aliaslimit"
)

// TestLoadTestCLI runs the harness at a tiny scale through the command and
// checks the human summary, the JSON report shape, and the p99 gate in its
// passing configuration.
func TestLoadTestCLI(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_aliasd.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-loadtest", "-clients", "2", "-requests", "4", "-batch", "200",
		"-scale", "0.05", "-json", out, "-maxp99", "5m"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -loadtest: %v (stderr: %s)", err, stderr.String())
	}
	for _, want := range []string{"aliasd loadtest: scale 0.05 seed 1, 2 tenants",
		"sets_digest", "ingest", "query", "p99 gate: all classes under 5m0s"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, stdout.String())
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep aliaslimit.AliasdLoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Scale != 0.05 || rep.Seed != 1 || rep.Clients != 2 {
		t.Fatalf("report header %+v does not match flags", rep)
	}
	names := map[string]bool{}
	for _, e := range rep.Results {
		names[e.Name] = true
	}
	for _, want := range []string{"aliasd_session_p50", "aliasd_ingest_p99",
		"aliasd_flush_p90", "aliasd_query_p99"} {
		if !names[want] {
			t.Errorf("report missing bench entry %s (have %v)", want, names)
		}
	}
}

// TestLoadTestP99Gate: an absurdly low ceiling must fail and name the
// offending entries, after the report has been written for CI artifacts.
func TestLoadTestP99Gate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_aliasd.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-loadtest", "-clients", "1", "-requests", "2", "-batch", "200",
		"-scale", "0.05", "-json", out, "-maxp99", "1ns"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("1ns p99 ceiling passed")
	}
	if !strings.Contains(err.Error(), "p99 gate") || !strings.Contains(err.Error(), "aliasd_ingest_p99") {
		t.Errorf("gate error does not name the entries: %v", err)
	}
	if _, statErr := os.Stat(out); statErr != nil {
		t.Errorf("gate failure should still leave the report on disk: %v", statErr)
	}
}

// TestBadArguments covers the flag error paths.
func TestBadArguments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &stdout, &stderr); !errors.Is(err, errBadFlags) {
		t.Fatalf("unknown flag: want errBadFlags, got %v", err)
	}
	if err := run([]string{"serve", "extra"}, &stdout, &stderr); !errors.Is(err, errBadFlags) {
		t.Fatalf("positional arguments: want errBadFlags, got %v", err)
	}
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: want flag.ErrHelp, got %v", err)
	}
	if err := run([]string{"-loadtest", "-backend", "quantum", "-scale", "0.05"},
		&stdout, &stderr); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestCIAliasdSmokeJob pins the CI aliasd-smoke job: the daemon's load
// harness must run at the quick preset with a p99 ceiling and upload the
// latency report, and the gate must compare against the committed baseline.
func TestCIAliasdSmokeJob(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Skipf("ci.yml not readable: %v", err)
	}
	text := string(data)
	idx := strings.Index(text, "aliasd-smoke:")
	if idx < 0 {
		t.Fatal("ci.yml has no aliasd-smoke job")
	}
	job := text[idx:]
	for _, want := range []string{"go run ./cmd/aliasd -loadtest -quick",
		"-maxp99", "-json BENCH_aliasd.json",
		"-compare BENCH_baseline.json -against BENCH_aliasd.json",
		"BENCH_aliasd.json"} {
		if !strings.Contains(job, want) {
			t.Errorf("aliasd-smoke job missing %q:\n%s", want, job)
		}
	}
}
