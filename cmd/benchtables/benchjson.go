package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"aliaslimit"
	"aliaslimit/internal/alias"
	"aliaslimit/internal/atomicio"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/netsim"
	"aliaslimit/internal/obslog"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/xrand"
)

// benchEntry is one measured operation in BENCH_analysis.json.
type benchEntry struct {
	// Name identifies the operation ("table3_render", "grouping_union_ssh").
	Name string `json:"name"`
	// NsPerOp is the mean wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Ops is how many iterations the mean was taken over.
	Ops int `json:"ops"`
	// AllocsPerOp and BytesPerOp are the mean heap allocations and bytes
	// per operation, present only for the alloc-gated entries (zero-alloc
	// hot paths priced alongside their wall clock). Compared by the alloc
	// branch of the -compare gate.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
}

// benchReport is the machine-readable perf-trajectory artifact the CI
// bench-smoke job uploads: one file per run, comparable across commits.
type benchReport struct {
	// Scale and Seed identify the measured world.
	Scale float64 `json:"scale"`
	Seed  uint64  `json:"seed"`
	// CPUs is runtime.NumCPU on the measuring host; GoMaxProcs is the
	// GOMAXPROCS the run actually used — the provenance pair that makes
	// bench JSONs from differently-sized runners interpretable.
	CPUs       int `json:"cpus"`
	GoMaxProcs int `json:"gomaxprocs"`
	// GoOS and GoArch identify the platform.
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// PeakRSSBytes is the process's peak resident set (VmHWM) when the
	// measurements finished, in bytes; 0 where the platform does not expose
	// it. Provenance, not a gated entry: it makes the bounded-memory claim
	// behind the stream_* entries auditable across runs.
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
	// Results holds the measurements.
	Results []benchEntry `json:"results"`
}

// peakRSSBytes reads the process's peak resident set from /proc/self/status
// (VmHWM, reported in kB); 0 where the file or the field is unavailable.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// measure runs f repeatedly for a small time budget and reports mean ns/op.
func measure(name string, f func()) benchEntry {
	const budget = 150 * time.Millisecond
	start := time.Now()
	ops := 0
	for {
		f()
		ops++
		if el := time.Since(start); el >= budget || ops >= 1_000_000 {
			return benchEntry{Name: name, Ops: ops, NsPerOp: float64(el.Nanoseconds()) / float64(ops)}
		}
	}
}

// measureAlloc is measure plus heap accounting: it warms f once (the gated
// paths are steady-state arenas — first-call growth is priced separately by
// the wall-clock entries) and reports mean allocations and bytes per op from
// the runtime's monotonic malloc counters.
func measureAlloc(name string, f func()) benchEntry {
	f() // warm the arena: the gate prices steady state
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e := measure(name, f)
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(e.Ops)
	bytes := float64(after.TotalAlloc-before.TotalAlloc) / float64(e.Ops)
	e.AllocsPerOp, e.BytesPerOp = &allocs, &bytes
	return e
}

// writeBenchJSON builds a study, measures the analysis hot paths (grouping,
// merge, per-table and per-figure render, full Run), and writes the JSON
// report to path ("-" for stdout).
func writeBenchJSON(path string, scale float64, seed uint64, workers, parallelism int, stdout, stderr io.Writer) error {
	rep := benchReport{
		Scale: scale, Seed: seed,
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
	}

	// Full pipeline: world generation, both measurement campaigns, facade.
	start := time.Now()
	study, err := aliaslimit.Run(aliaslimit.StudyOptions{
		Common: aliaslimit.Common{
			Seed: seed, Scale: scale, Workers: workers, Parallelism: parallelism,
		},
	})
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, benchEntry{
		Name: "run_full", Ops: 1, NsPerOp: float64(time.Since(start).Nanoseconds()),
	})

	// First full render: every memoized view cold, including the MIDAR run.
	start = time.Now()
	study.RenderAll()
	rep.Results = append(rep.Results, benchEntry{
		Name: "render_all_cold", Ops: 1, NsPerOp: float64(time.Since(start).Nanoseconds()),
	})

	// The multi-epoch pipeline at a fixed small scale (independent of -scale
	// so the longitudinal entry stays comparable across gate workloads):
	// three snapshot→churn→scan rounds plus the longitudinal scoring layer.
	start = time.Now()
	if _, err := aliaslimit.RunLongitudinal("baseline", aliaslimit.LongitudinalOptions{
		ScenarioOptions: aliaslimit.ScenarioOptions{
			Common: aliaslimit.Common{
				Seed: seed, Scale: 0.05, Workers: workers, Parallelism: parallelism,
			},
		},
		Epochs: 3,
	}); err != nil {
		return err
	}
	rep.Results = append(rep.Results, benchEntry{
		Name: "run_longitudinal", Ops: 1, NsPerOp: float64(time.Since(start).Nanoseconds()),
	})

	// The megascale-x10 preset's pipeline at a fixed small scale (like
	// run_longitudinal: independent of -scale so the entry stays comparable
	// across gate workloads) — the throughput preset the zero-alloc hot
	// paths exist for.
	start = time.Now()
	if _, err := aliaslimit.RunScenario("megascale-x10", aliaslimit.ScenarioOptions{
		Common: aliaslimit.Common{
			Seed: seed, Scale: 0.05, Workers: workers, Parallelism: parallelism,
		},
	}); err != nil {
		return err
	}
	rep.Results = append(rep.Results, benchEntry{
		Name: "run_megascale_x10", Ops: 1, NsPerOp: float64(time.Since(start).Nanoseconds()),
	})

	env := study.Env()

	// Alloc-gated entries: the zero-alloc contracts, priced with heap
	// accounting so the -compare gate catches allocation regressions the
	// wall clock hides.
	grouper := alias.NewGrouper()
	var groupSets []alias.Set
	var groupBacking []netip.Addr
	rep.Results = append(rep.Results,
		measureAlloc("grouping_steady_state", func() {
			grouper.Reset()
			for _, o := range env.Both.Obs[ident.SSH] {
				grouper.Observe(o)
			}
			groupSets, groupBacking = grouper.AppendSets(groupSets[:0], groupBacking[:0])
		}),
	)
	drawAddr := netip.AddrFrom4([4]byte{203, 0, 113, 9})
	faults := netsim.Faults{Seed: seed, LossRate: 0.03, ThrottleRate: 0.05}
	rep.Results = append(rep.Results,
		measureAlloc("fault_draw", func() {
			faults.Draw("active", drawAddr, 22)
		}),
		measureAlloc("keyed_draw", func() {
			k := xrand.NewHasher()
			k.KeyUint(seed)
			k.Key("wire-down")
			k.KeyInt(1)
			k.Key("device-0001")
			k.KeyAddr(drawAddr)
			_ = k.Prob()
		}),
	)

	// Durability hot paths: the per-observation log append (alloc-gated — it
	// sits on the collection path of every durable run) and a full one-epoch
	// replay from disk (the resume path's per-epoch cost).
	logDir, err := os.MkdirTemp("", "benchtables-obslog-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(logDir)
	lw, err := obslog.Create(logDir, obslog.RunMeta{Scenario: "bench", Seed: seed, Scale: scale, Epochs: 1},
		obslog.Options{Sync: obslog.SyncNever})
	if err != nil {
		return err
	}
	defer lw.Close()
	logObs := env.Both.Obs[ident.SSH]
	logSink := lw.Sink(obslog.SourceActive)
	logNext := 0
	rep.Results = append(rep.Results,
		measureAlloc("obslog_append", func() {
			logSink.Observe(ident.SSH, logObs[logNext%len(logObs)])
			logNext++
		}),
	)
	for _, p := range ident.Protocols {
		for _, o := range env.Both.Obs[p] {
			lw.Sink(obslog.SourceActive).Observe(p, o)
		}
	}
	if err := lw.CompleteEpoch(0, "", 0); err != nil {
		return err
	}
	rep.Results = append(rep.Results,
		measure("obslog_replay", func() {
			if _, err := obslog.Replay(logDir, 0); err != nil {
				panic(err)
			}
		}),
	)

	// Out-of-core entries. stream_collect is one full scenario pipeline with
	// the scan spilling to disk and the analyses fed by bounded-batch replay —
	// fixed small scale, like run_longitudinal, so the entry stays comparable
	// across gate workloads. stream_replay_group streams the epoch just logged
	// above back through a batch resolver session, pricing the grouping leg of
	// the replay pass in isolation.
	start = time.Now()
	if _, err := aliaslimit.RunScenario("baseline", aliaslimit.ScenarioOptions{
		Common: aliaslimit.Common{
			Seed: seed, Scale: 0.05, Workers: workers, Parallelism: parallelism,
			StreamCollect: true,
		},
	}); err != nil {
		return err
	}
	rep.Results = append(rep.Results, benchEntry{
		Name: "stream_collect", Ops: 1, NsPerOp: float64(time.Since(start).Nanoseconds()),
	})
	streamBE, err := resolver.New("batch", 0)
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results,
		measure("stream_replay_group", func() {
			ses, err := streamBE.Open(resolver.Options{})
			if err != nil {
				panic(err)
			}
			r, err := obslog.OpenEpoch(logDir, ident.SSH, 0, obslog.ReadOptions{})
			if err != nil {
				panic(err)
			}
			for {
				_, o, err := r.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					panic(err)
				}
				ses.Observe(o)
			}
			r.Close()
			ses.Sets(ident.SSH)
			if err := ses.Close(); err != nil {
				panic(err)
			}
		}),
	)

	rep.Results = append(rep.Results,
		measure("grouping_union_ssh", func() { alias.Group(env.Both.Obs[ident.SSH]) }),
		measure("merge_union_v4", func() {
			alias.Merge(
				env.Both.NonSingletonFamilySets(ident.SSH, true),
				env.Both.NonSingletonFamilySets(ident.BGP, true),
				env.Active.NonSingletonFamilySets(ident.SNMP, true),
			)
		}),
	)

	// Per-backend resolution cost on identical inputs: the scorecard behind
	// the README's backend comparison and the bench-regression gate's
	// per-backend entries. Each iteration is one full session lifecycle —
	// open, feed the SSH union, pull the grouped sets (or merge the
	// per-protocol sets), close — matching how the analysis layer drives a
	// backend. The distributed backend is priced by the dedicated distres_*
	// entries below, where the worker processes it spawns are amortised.
	groupObs := env.Both.Obs[ident.SSH]
	mergeGroups := [][]alias.Set{
		env.Both.NonSingletonFamilySets(ident.SSH, true),
		env.Both.NonSingletonFamilySets(ident.BGP, true),
		env.Active.NonSingletonFamilySets(ident.SNMP, true),
		env.Both.NonSingletonFamilySets(ident.SSH, false),
		env.Both.NonSingletonFamilySets(ident.BGP, false),
	}
	sessionBench := func(be resolver.Backend, f func(resolver.Session)) func() {
		return func() {
			ses, err := be.Open(resolver.Options{})
			if err != nil {
				panic(err)
			}
			f(ses)
			if err := ses.Close(); err != nil {
				panic(err)
			}
		}
	}
	for _, name := range aliaslimit.BackendNames() {
		if name == "distributed" {
			continue
		}
		be, err := resolver.New(name, 0)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results,
			measure("resolve_"+name+"_group", sessionBench(be, func(ses resolver.Session) {
				for _, o := range groupObs {
					ses.Observe(o)
				}
				ses.Sets(ident.SSH)
			})),
			measure("resolve_"+name+"_merge", sessionBench(be, func(ses resolver.Session) {
				ses.Merged(mergeGroups[:3]...)
			})),
		)
	}

	// Distributed wire-path entries: distres_stream is one coordinator→worker
	// round trip (stream the SSH union through two worker processes, pull the
	// grouped sets back), distres_merge one remote cross-shard merge (five
	// groups ≥ 2×workers, so the round-robin remote path runs, not the local
	// fallback). Worker spawn cost is excluded — the cluster is reused across
	// iterations, as the scenario pipeline reuses it across partitions.
	dbe, err := resolver.New("distributed", 2)
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results,
		measure("distres_stream", sessionBench(dbe, func(ses resolver.Session) {
			for _, o := range groupObs {
				ses.Observe(o)
			}
			ses.Sets(ident.SSH)
		})),
		measure("distres_merge", sessionBench(dbe, func(ses resolver.Session) {
			ses.Merged(mergeGroups...)
		})),
	)
	if c, ok := dbe.(io.Closer); ok {
		if err := c.Close(); err != nil {
			return err
		}
	}
	for _, id := range study.TableIDs() {
		id := id
		name := fmt.Sprintf("table%c_render", id[len(id)-1])
		rep.Results = append(rep.Results, measure(name, func() { study.RenderTable(id) }))
	}
	for _, id := range study.FigureIDs() {
		id := id
		name := fmt.Sprintf("figure%c_render", id[len(id)-1])
		rep.Results = append(rep.Results, measure(name, func() { study.RenderFigure(id) }))
	}
	rep.Results = append(rep.Results, measure("render_all_warm", func() { study.RenderAll() }))
	rep.PeakRSSBytes = peakRSSBytes()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	// Temp file + rename: a crash mid-write must not leave a truncated report
	// where the previous gate baseline stood.
	if err := atomicio.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "benchtables: wrote %d measurements to %s\n", len(rep.Results), path)
	return nil
}
