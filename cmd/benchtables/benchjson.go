package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"aliaslimit"
	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/resolver"
)

// benchEntry is one measured operation in BENCH_analysis.json.
type benchEntry struct {
	// Name identifies the operation ("table3_render", "grouping_union_ssh").
	Name string `json:"name"`
	// NsPerOp is the mean wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Ops is how many iterations the mean was taken over.
	Ops int `json:"ops"`
}

// benchReport is the machine-readable perf-trajectory artifact the CI
// bench-smoke job uploads: one file per run, comparable across commits.
type benchReport struct {
	// Scale and Seed identify the measured world.
	Scale float64 `json:"scale"`
	Seed  uint64  `json:"seed"`
	// CPUs is runtime.NumCPU on the measuring host.
	CPUs int `json:"cpus"`
	// GoOS and GoArch identify the platform.
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// Results holds the measurements.
	Results []benchEntry `json:"results"`
}

// measure runs f repeatedly for a small time budget and reports mean ns/op.
func measure(name string, f func()) benchEntry {
	const budget = 150 * time.Millisecond
	start := time.Now()
	ops := 0
	for {
		f()
		ops++
		if el := time.Since(start); el >= budget || ops >= 1_000_000 {
			return benchEntry{Name: name, Ops: ops, NsPerOp: float64(el.Nanoseconds()) / float64(ops)}
		}
	}
}

// writeBenchJSON builds a study, measures the analysis hot paths (grouping,
// merge, per-table and per-figure render, full Run), and writes the JSON
// report to path ("-" for stdout).
func writeBenchJSON(path string, scale float64, seed uint64, workers, parallelism int, stdout, stderr io.Writer) error {
	rep := benchReport{
		Scale: scale, Seed: seed,
		CPUs: runtime.NumCPU(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
	}

	// Full pipeline: world generation, both measurement campaigns, facade.
	start := time.Now()
	study, err := aliaslimit.Run(aliaslimit.Options{
		Seed: seed, Scale: scale, Workers: workers, Parallelism: parallelism,
	})
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, benchEntry{
		Name: "run_full", Ops: 1, NsPerOp: float64(time.Since(start).Nanoseconds()),
	})

	// First full render: every memoized view cold, including the MIDAR run.
	start = time.Now()
	study.RenderAll()
	rep.Results = append(rep.Results, benchEntry{
		Name: "render_all_cold", Ops: 1, NsPerOp: float64(time.Since(start).Nanoseconds()),
	})

	// The multi-epoch pipeline at a fixed small scale (independent of -scale
	// so the longitudinal entry stays comparable across gate workloads):
	// three snapshot→churn→scan rounds plus the longitudinal scoring layer.
	start = time.Now()
	if _, err := aliaslimit.RunLongitudinal("baseline", aliaslimit.LongitudinalOptions{
		Options: aliaslimit.ScenarioOptions{
			Seed: seed, Scale: 0.05, Workers: workers, Parallelism: parallelism,
		},
		Epochs: 3,
	}); err != nil {
		return err
	}
	rep.Results = append(rep.Results, benchEntry{
		Name: "run_longitudinal", Ops: 1, NsPerOp: float64(time.Since(start).Nanoseconds()),
	})

	env := study.Env()
	rep.Results = append(rep.Results,
		measure("grouping_union_ssh", func() { alias.Group(env.Both.Obs[ident.SSH]) }),
		measure("merge_union_v4", func() {
			alias.Merge(
				env.Both.NonSingletonFamilySets(ident.SSH, true),
				env.Both.NonSingletonFamilySets(ident.BGP, true),
				env.Active.NonSingletonFamilySets(ident.SNMP, true),
			)
		}),
	)

	// Per-backend resolution cost on identical inputs: the scorecard behind
	// the README's backend comparison and the bench-regression gate's
	// per-backend entries.
	for _, name := range aliaslimit.BackendNames() {
		be, err := resolver.New(name, 0)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results,
			measure("resolve_"+name+"_group", func() { be.Group(env.Both.Obs[ident.SSH]) }),
			measure("resolve_"+name+"_merge", func() {
				be.Merge(
					env.Both.NonSingletonFamilySets(ident.SSH, true),
					env.Both.NonSingletonFamilySets(ident.BGP, true),
					env.Active.NonSingletonFamilySets(ident.SNMP, true),
				)
			}),
		)
	}
	for _, id := range study.TableIDs() {
		id := id
		name := fmt.Sprintf("table%c_render", id[len(id)-1])
		rep.Results = append(rep.Results, measure(name, func() { study.RenderTable(id) }))
	}
	for _, id := range study.FigureIDs() {
		id := id
		name := fmt.Sprintf("figure%c_render", id[len(id)-1])
		rep.Results = append(rep.Results, measure(name, func() { study.RenderFigure(id) }))
	}
	rep.Results = append(rep.Results, measure("render_all_warm", func() { study.RenderAll() }))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "benchtables: wrote %d measurements to %s\n", len(rep.Results), path)
	return nil
}
