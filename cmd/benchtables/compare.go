package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// The bench-regression gate: CI regenerates BENCH_analysis.json on every
// push and compares it against the committed BENCH_baseline.json. Any
// hot-path entry that got slower by more than -maxregress (and by more than
// an absolute noise floor) fails the job.

// minRegressDeltaNs is the absolute noise floor: entries whose slowdown is
// under a quarter millisecond never fail the gate, however large the ratio —
// micro-entries jitter far more than 30% between runs and machines.
const minRegressDeltaNs = 250_000

// regression is one entry that got slower past the gate's threshold.
type regression struct {
	name           string
	baseNs, currNs float64
}

// ratio is the slowdown factor (current over baseline).
func (r regression) ratio() float64 { return r.currNs / r.baseNs }

// compareReports returns the entries of curr that regressed against base by
// more than maxRegress (a fraction: 0.30 fails anything >1.3× slower) and
// past the absolute noise floor. Entries present on only one side are
// ignored — adding or retiring a measurement must not break the gate.
func compareReports(base, curr benchReport, maxRegress float64) []regression {
	baseNs := make(map[string]float64, len(base.Results))
	for _, e := range base.Results {
		if e.NsPerOp > 0 {
			baseNs[e.Name] = e.NsPerOp
		}
	}
	var regs []regression
	for _, e := range curr.Results {
		b, ok := baseNs[e.Name]
		if !ok {
			continue
		}
		if e.NsPerOp > b*(1+maxRegress) && e.NsPerOp-b > minRegressDeltaNs {
			regs = append(regs, regression{name: e.Name, baseNs: b, currNs: e.NsPerOp})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].ratio() > regs[j].ratio() })
	return regs
}

// readBenchReport loads one BENCH_*.json file.
func readBenchReport(path string) (benchReport, error) {
	var rep benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: no measurements", path)
	}
	return rep, nil
}

// runCompare is the gate's CLI body: load both reports, print the verdict,
// and return an error (non-zero exit) when anything regressed.
func runCompare(basePath, currPath string, maxRegress float64, stdout io.Writer) error {
	if maxRegress <= 0 {
		return fmt.Errorf("-maxregress must be positive, got %v", maxRegress)
	}
	base, err := readBenchReport(basePath)
	if err != nil {
		return err
	}
	curr, err := readBenchReport(currPath)
	if err != nil {
		return err
	}
	// Same-workload guard: comparing different scales or seeds would
	// produce a confidently wrong verdict (every entry ~linearly off).
	if base.Scale != curr.Scale || base.Seed != curr.Seed {
		return fmt.Errorf("workload mismatch: %s is scale=%v seed=%d, %s is scale=%v seed=%d — regenerate the baseline at the gate's workload",
			basePath, base.Scale, base.Seed, currPath, curr.Scale, curr.Seed)
	}
	regs := compareReports(base, curr, maxRegress)
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "bench gate: OK — no entry of %s regressed >%.0f%% vs %s\n",
			currPath, maxRegress*100, basePath)
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d hot path(s) regressed >%.0f%% vs %s:", len(regs), maxRegress*100, basePath)
	for _, r := range regs {
		fmt.Fprintf(&sb, "\n  %-24s %.2fx slower (%.3fms -> %.3fms)",
			r.name, r.ratio(), r.baseNs/1e6, r.currNs/1e6)
	}
	return fmt.Errorf("%s", sb.String())
}
