package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// The bench-regression gate: CI regenerates BENCH_analysis.json on every
// push and compares it against the committed BENCH_baseline.json. Any
// hot-path entry that got slower by more than -maxregress (and by more than
// an absolute noise floor) fails the job.

// minRegressDeltaNs is the absolute noise floor: entries whose slowdown is
// under a quarter millisecond never fail the gate, however large the ratio —
// micro-entries jitter far more than 30% between runs and machines.
const minRegressDeltaNs = 250_000

// minRegressDeltaAllocs is the alloc branch's absolute floor: a steady-state
// path whose baseline is ~2 allocs/op may jitter by a handful (pool refills,
// map growth crossing a threshold) without signalling a real regression; a
// re-introduced per-item allocation blows straight past it.
const minRegressDeltaAllocs = 8.0

// regression is one entry that got slower past the gate's threshold, on the
// wall-clock axis ("ns/op") or the allocation axis ("allocs/op").
type regression struct {
	name       string
	axis       string
	base, curr float64
}

// ratio is the regression factor (current over baseline).
func (r regression) ratio() float64 { return r.curr / r.base }

// compareReports returns the entries of curr that regressed against base by
// more than maxRegress (a fraction: 0.30 fails anything >1.3× slower) and
// past the absolute noise floor. Entries present on only one side are
// ignored — adding or retiring a measurement must not break the gate.
func compareReports(base, curr benchReport, maxRegress float64) []regression {
	baseline := make(map[string]benchEntry, len(base.Results))
	for _, e := range base.Results {
		baseline[e.Name] = e
	}
	var regs []regression
	for _, e := range curr.Results {
		b, ok := baseline[e.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && e.NsPerOp > b.NsPerOp*(1+maxRegress) && e.NsPerOp-b.NsPerOp > minRegressDeltaNs {
			regs = append(regs, regression{name: e.Name, axis: "ns/op", base: b.NsPerOp, curr: e.NsPerOp})
		}
		// Alloc branch: only entries carrying heap accounting on both sides
		// participate — dropping or adding the instrumentation must not fail
		// the gate, exactly like adding or retiring an entry.
		if b.AllocsPerOp != nil && e.AllocsPerOp != nil &&
			*e.AllocsPerOp > *b.AllocsPerOp*(1+maxRegress) &&
			*e.AllocsPerOp-*b.AllocsPerOp > minRegressDeltaAllocs {
			regs = append(regs, regression{name: e.Name, axis: "allocs/op", base: *b.AllocsPerOp, curr: *e.AllocsPerOp})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].ratio() > regs[j].ratio() })
	return regs
}

// readBenchReport loads one BENCH_*.json file.
func readBenchReport(path string) (benchReport, error) {
	var rep benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: no measurements", path)
	}
	return rep, nil
}

// runCompare is the gate's CLI body: load both reports, print the verdict,
// and return an error (non-zero exit) when anything regressed.
func runCompare(basePath, currPath string, maxRegress float64, stdout io.Writer) error {
	if maxRegress <= 0 {
		return fmt.Errorf("-maxregress must be positive, got %v", maxRegress)
	}
	base, err := readBenchReport(basePath)
	if err != nil {
		return err
	}
	curr, err := readBenchReport(currPath)
	if err != nil {
		return err
	}
	// Same-workload guard: comparing different scales or seeds would
	// produce a confidently wrong verdict (every entry ~linearly off).
	if base.Scale != curr.Scale || base.Seed != curr.Seed {
		return fmt.Errorf("workload mismatch: %s is scale=%v seed=%d, %s is scale=%v seed=%d — regenerate the baseline at the gate's workload",
			basePath, base.Scale, base.Seed, currPath, curr.Scale, curr.Seed)
	}
	regs := compareReports(base, curr, maxRegress)
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "bench gate: OK — no entry of %s regressed >%.0f%% vs %s\n",
			currPath, maxRegress*100, basePath)
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d hot path(s) regressed >%.0f%% vs %s:", len(regs), maxRegress*100, basePath)
	for _, r := range regs {
		if r.axis == "allocs/op" {
			fmt.Fprintf(&sb, "\n  %-24s %.2fx more allocations (%.1f -> %.1f allocs/op)",
				r.name, r.ratio(), r.base, r.curr)
			continue
		}
		fmt.Fprintf(&sb, "\n  %-24s %.2fx slower (%.3fms -> %.3fms)",
			r.name, r.ratio(), r.base/1e6, r.curr/1e6)
	}
	return fmt.Errorf("%s", sb.String())
}
