package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// report builds a benchReport from name → ns/op pairs.
func report(entries map[string]float64) benchReport {
	rep := benchReport{Scale: 0.15, Seed: 1}
	for name, ns := range entries {
		rep.Results = append(rep.Results, benchEntry{Name: name, NsPerOp: ns, Ops: 1})
	}
	return rep
}

func TestCompareReportsFailsOnInjectedSlowdown(t *testing.T) {
	base := report(map[string]float64{
		"run_full":      200e6,
		"table3_render": 5e6,
		"table4_render": 0.2e6,
	})
	// Inject a 2x slowdown on one hot path.
	curr := report(map[string]float64{
		"run_full":      400e6,
		"table3_render": 5.1e6,
		"table4_render": 0.21e6,
	})
	regs := compareReports(base, curr, 0.30)
	if len(regs) != 1 || regs[0].name != "run_full" {
		t.Fatalf("want exactly run_full flagged, got %+v", regs)
	}
	if r := regs[0].ratio(); r < 1.9 || r > 2.1 {
		t.Fatalf("ratio %v, want ~2.0", r)
	}
}

func TestCompareReportsPassesWithinThreshold(t *testing.T) {
	base := report(map[string]float64{"run_full": 200e6, "table3_render": 5e6})
	curr := report(map[string]float64{"run_full": 250e6, "table3_render": 6e6}) // +25%, +20%
	if regs := compareReports(base, curr, 0.30); len(regs) != 0 {
		t.Fatalf("within-threshold drift flagged: %+v", regs)
	}
}

func TestCompareReportsNoiseFloorAndMissingEntries(t *testing.T) {
	base := report(map[string]float64{
		"micro":   10_000, // 10µs: huge ratio but under the absolute floor
		"retired": 5e6,
	})
	curr := report(map[string]float64{
		"micro": 100_000, // 10x slower, but only +90µs
		"new":   1e9,     // present only in current: never compared
	})
	if regs := compareReports(base, curr, 0.30); len(regs) != 0 {
		t.Fatalf("noise-floor or unmatched entries flagged: %+v", regs)
	}
}

// writeReport marshals a benchReport into dir and returns its path.
func writeTestReport(t *testing.T, dir, name string, rep benchReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCompareEndToEnd exercises the gate through the CLI: a clean pass,
// then a demonstrable failure on a 2x slowdown.
func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := writeTestReport(t, dir, "BENCH_baseline.json",
		report(map[string]float64{"run_full": 200e6, "table3_render": 5e6}))
	good := writeTestReport(t, dir, "BENCH_good.json",
		report(map[string]float64{"run_full": 190e6, "table3_render": 5.5e6}))
	slow := writeTestReport(t, dir, "BENCH_slow.json",
		report(map[string]float64{"run_full": 200e6, "table3_render": 10e6}))

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-compare", base, "-against", good}, &stdout, &stderr); err != nil {
		t.Fatalf("clean gate failed: %v", err)
	}
	if !strings.Contains(stdout.String(), "bench gate: OK") {
		t.Fatalf("missing OK verdict:\n%s", stdout.String())
	}

	err := run([]string{"-compare", base, "-against", slow}, &stdout, &stderr)
	if err == nil {
		t.Fatal("2x slowdown passed the gate")
	}
	if !strings.Contains(err.Error(), "table3_render") || !strings.Contains(err.Error(), "2.00x") {
		t.Fatalf("verdict does not name the regression: %v", err)
	}

	// Comparing across workloads is rejected, not mis-scored.
	other := report(map[string]float64{"run_full": 200e6})
	other.Scale = 0.3
	mismatch := writeTestReport(t, dir, "BENCH_scale03.json", other)
	if err := run([]string{"-compare", base, "-against", mismatch}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "workload mismatch") {
		t.Fatalf("scale mismatch not rejected: %v", err)
	}

	// Half a gate is a usage error.
	if err := run([]string{"-compare", base}, &stdout, &stderr); err == nil {
		t.Fatal("-compare without -against accepted")
	}
	// Unreadable input surfaces as an error.
	if err := run([]string{"-compare", filepath.Join(dir, "missing.json"), "-against", good},
		&stdout, &stderr); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

// allocEntry builds one alloc-instrumented entry.
func allocEntry(name string, ns, allocs, bytes float64) benchEntry {
	return benchEntry{Name: name, NsPerOp: ns, Ops: 1, AllocsPerOp: &allocs, BytesPerOp: &bytes}
}

// TestCompareReportsFailsOnInjectedAllocBump is the alloc gate's probe: a
// steady-state entry whose allocations double (2 → ~20 allocs/op, the shape
// of a re-introduced per-item allocation) must fail the gate even though its
// wall clock is unchanged.
func TestCompareReportsFailsOnInjectedAllocBump(t *testing.T) {
	base := benchReport{Scale: 0.15, Seed: 1, Results: []benchEntry{
		allocEntry("grouping_steady_state", 3e6, 2, 800),
		allocEntry("fault_draw", 50, 0, 0),
	}}
	curr := benchReport{Scale: 0.15, Seed: 1, Results: []benchEntry{
		allocEntry("grouping_steady_state", 3e6, 20, 700_000),
		allocEntry("fault_draw", 52, 0, 0),
	}}
	regs := compareReports(base, curr, 0.30)
	if len(regs) != 1 || regs[0].name != "grouping_steady_state" || regs[0].axis != "allocs/op" {
		t.Fatalf("want exactly grouping_steady_state flagged on allocs/op, got %+v", regs)
	}
	if r := regs[0].ratio(); r < 9.9 || r > 10.1 {
		t.Fatalf("ratio %v, want ~10", r)
	}
}

// TestCompareReportsAllocFloorAndMissingInstrumentation pins the alloc
// branch's tolerance: jitter under the absolute floor passes, and entries
// instrumented on only one side never participate.
func TestCompareReportsAllocFloorAndMissingInstrumentation(t *testing.T) {
	base := benchReport{Scale: 0.15, Seed: 1, Results: []benchEntry{
		allocEntry("grouping_steady_state", 3e6, 2, 800),
		{Name: "run_full", NsPerOp: 200e6, Ops: 1}, // no alloc data in baseline
	}}
	curr := benchReport{Scale: 0.15, Seed: 1, Results: []benchEntry{
		allocEntry("grouping_steady_state", 3e6, 9, 1200), // 4.5x but only +7 allocs
		allocEntry("run_full", 200e6, 1e6, 1e9),           // instrumented only now
	}}
	if regs := compareReports(base, curr, 0.30); len(regs) != 0 {
		t.Fatalf("alloc floor or one-sided instrumentation flagged: %+v", regs)
	}
}

// TestRunCompareAllocVerdict exercises the alloc gate through the CLI and
// checks the verdict names the axis.
func TestRunCompareAllocVerdict(t *testing.T) {
	dir := t.TempDir()
	base := writeTestReport(t, dir, "BENCH_baseline.json", benchReport{
		Scale: 0.15, Seed: 1,
		Results: []benchEntry{allocEntry("grouping_steady_state", 3e6, 2, 800)},
	})
	bumped := writeTestReport(t, dir, "BENCH_bumped.json", benchReport{
		Scale: 0.15, Seed: 1,
		Results: []benchEntry{allocEntry("grouping_steady_state", 3e6, 40, 2e6)},
	})
	var stdout, stderr bytes.Buffer
	err := run([]string{"-compare", base, "-against", bumped}, &stdout, &stderr)
	if err == nil {
		t.Fatal("20x alloc bump passed the gate")
	}
	if !strings.Contains(err.Error(), "allocs/op") || !strings.Contains(err.Error(), "grouping_steady_state") {
		t.Fatalf("verdict does not name the alloc regression: %v", err)
	}
}
