// Command benchtables regenerates every table and figure of the paper's
// evaluation from a freshly built and measured synthetic Internet.
//
// Usage:
//
//	benchtables                      # everything at the default scale
//	benchtables -scale 1 -seed 3     # full calibrated scale
//	benchtables -table 3             # one table
//	benchtables -figure 5            # one figure
//
// It also hosts the CI bench-regression gate:
//
//	benchtables -benchjson BENCH_analysis.json
//	benchtables -compare BENCH_baseline.json -against BENCH_analysis.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"aliaslimit"
)

// errBadFlags marks argument errors the flag package has already reported;
// main maps it to the conventional usage exit code 2.
var errBadFlags = errors.New("bad arguments")

func main() {
	// When the distributed backend re-executes this binary as a shard
	// worker, serve that role instead of running a study.
	aliaslimit.RunShardWorkerIfRequested()
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// -h/-help: usage was printed; asking for help is not a failure.
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
		os.Exit(1)
	}
}

// validateBackend rejects an unknown -backend value before anything runs,
// naming the valid choices (the empty value selects the batch default).
func validateBackend(name string) error {
	if name == "" {
		return nil
	}
	names := aliaslimit.BackendNames()
	for _, b := range names {
		if name == b {
			return nil
		}
	}
	return fmt.Errorf("unknown backend %q (valid: %s)", name, strings.Join(names, ", "))
}

// startProfiles turns on CPU profiling and/or arranges a heap profile dump,
// returning the stop function run defers. Empty paths are no-ops.
func startProfiles(cpuPath, memPath string) (func(), error) {
	stop := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live + cumulative truthfully
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}
	return stop, nil
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 0.25, "world scale (1.0 ≈ 1:1000 of the paper's Internet)")
	seed := fs.Uint64("seed", 1, "world seed")
	workers := fs.Int("workers", 256, "scan concurrency")
	parallelism := fs.Int("parallelism", 0, "concurrent protocol sweeps (0 = all at once, 1 = sequential)")
	backend := fs.String("backend", "", "resolver backend: batch|streaming|sharded|distributed (default batch)")
	shardWorkers := fs.Int("shard-workers", 0, "shard fan-out: goroutines for -backend sharded, worker processes for -backend distributed (0 = each backend's default)")
	streamCollect := fs.Bool("stream-collect", false, "out-of-core collection: spill observations to disk during the scan and replay them in bounded batches — identical tables, peak memory O(alias-set output) instead of O(observations)")
	memBudget := fs.Int64("mem-budget", 0, "advisory memory budget in bytes for the -stream-collect replay (sizes the log readahead; 0 = default)")
	table := fs.String("table", "", "regenerate a single table (1-6)")
	figure := fs.String("figure", "", "regenerate a single figure (3-6)")
	extensions := fs.Bool("extensions", false, "also run the future-work extension experiments")
	benchJSON := fs.String("benchjson", "", "measure the analysis hot paths and write BENCH_analysis.json to this path (- for stdout)")
	compare := fs.String("compare", "", "bench-regression gate: baseline BENCH_*.json to compare -against")
	against := fs.String("against", "", "current BENCH_*.json for the -compare gate")
	maxRegress := fs.Float64("maxregress", 0.30, "fail -compare when any entry is this fraction slower")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errBadFlags
	}

	// Reject an unknown backend before any world is built or measured: a
	// typo must fail in milliseconds, not after the collection phase.
	if err := validateBackend(*backend); err != nil {
		fmt.Fprintf(stderr, "benchtables: %v\n", err)
		return errBadFlags
	}
	if *memBudget != 0 && !*streamCollect {
		fmt.Fprintln(stderr, "benchtables: -mem-budget tunes the out-of-core replay; pass -stream-collect too")
		return errBadFlags
	}
	if *streamCollect && (*benchJSON != "" || *compare != "" || *against != "") {
		// The bench harness measures the streamed path itself (the
		// stream_collect and stream_replay_group entries); the flag shapes
		// table/figure study runs only.
		fmt.Fprintln(stderr, "benchtables: -stream-collect shapes study runs; the bench harness measures the streamed path on its own")
		return errBadFlags
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	if *compare != "" || *against != "" {
		if *compare == "" || *against == "" {
			fmt.Fprintln(stderr, "benchtables: -compare and -against must be used together")
			return errBadFlags
		}
		return runCompare(*compare, *against, *maxRegress, stdout)
	}

	if *benchJSON != "" {
		return writeBenchJSON(*benchJSON, *scale, *seed, *workers, *parallelism, stdout, stderr)
	}

	start := time.Now()
	study, err := aliaslimit.Run(aliaslimit.StudyOptions{
		Common: aliaslimit.Common{
			Seed: *seed, Scale: *scale, Workers: *workers, Parallelism: *parallelism,
			Backend: *backend, ShardWorkers: *shardWorkers,
			StreamCollect: *streamCollect, MemBudget: *memBudget,
		},
	})
	if err != nil {
		return err
	}
	defer study.Close()
	fmt.Fprintf(stderr, "world built and measured in %v\n", time.Since(start).Round(time.Millisecond))

	switch {
	case *table != "":
		out, err := study.RenderTable(*table)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out)
	case *figure != "":
		out, err := study.RenderFigure(*figure)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out)
	default:
		fmt.Fprint(stdout, study.RenderAll())
		if *extensions {
			out, err := study.RenderExtensions()
			if err != nil {
				return fmt.Errorf("extensions: %w", err)
			}
			fmt.Fprint(stdout, out)
		}
	}
	return nil
}
