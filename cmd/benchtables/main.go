// Command benchtables regenerates every table and figure of the paper's
// evaluation from a freshly built and measured synthetic Internet.
//
// Usage:
//
//	benchtables                      # everything at the default scale
//	benchtables -scale 1 -seed 3     # full calibrated scale
//	benchtables -table 3             # one table
//	benchtables -figure 5            # one figure
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aliaslimit"
)

func main() {
	scale := flag.Float64("scale", 0.25, "world scale (1.0 ≈ 1:1000 of the paper's Internet)")
	seed := flag.Uint64("seed", 1, "world seed")
	workers := flag.Int("workers", 256, "scan concurrency")
	table := flag.String("table", "", "regenerate a single table (1-6)")
	figure := flag.String("figure", "", "regenerate a single figure (3-6)")
	extensions := flag.Bool("extensions", false, "also run the future-work extension experiments")
	flag.Parse()

	start := time.Now()
	study, err := aliaslimit.Run(aliaslimit.Options{
		Seed: *seed, Scale: *scale, Workers: *workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "world built and measured in %v\n", time.Since(start).Round(time.Millisecond))

	switch {
	case *table != "":
		out, err := study.RenderTable(*table)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
	case *figure != "":
		out, err := study.RenderFigure(*figure)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
	default:
		fmt.Print(study.RenderAll())
		if *extensions {
			out, err := study.RenderExtensions()
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: extensions: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(out)
		}
	}
}
