package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
)

// TestRunSingleTable regenerates one table at tiny scale and sanity-checks
// the rendering.
func TestRunSingleTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "0.05", "-seed", "2", "-workers", "16", "-table", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 1") {
		t.Fatalf("missing table header:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "world built and measured") {
		t.Fatalf("missing build summary on stderr: %s", stderr.String())
	}
}

// TestRunUnknownTable checks render errors surface as errors and -h as a
// clean help request.
func TestRunUnknownTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-table", "99"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: want flag.ErrHelp, got %v", err)
	}
}
