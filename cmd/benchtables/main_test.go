package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"aliaslimit"
)

// TestMain makes the test binary worker-capable: the benchjson report now
// measures the distributed backend, whose coordinator re-executes the
// running binary as its shard worker processes.
func TestMain(m *testing.M) {
	aliaslimit.RunShardWorkerIfRequested()
	os.Exit(m.Run())
}

// TestRunSingleTable regenerates one table at tiny scale and sanity-checks
// the rendering.
func TestRunSingleTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "0.05", "-seed", "2", "-workers", "16", "-table", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 1") {
		t.Fatalf("missing table header:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "world built and measured") {
		t.Fatalf("missing build summary on stderr: %s", stderr.String())
	}
}

// TestRunBenchJSON exercises the machine-readable perf-baseline mode at
// tiny scale and validates the JSON shape.
func TestRunBenchJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "0.05", "-seed", "2", "-workers", "16", "-benchjson", "-"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	var rep struct {
		Scale   float64 `json:"scale"`
		Results []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
			Ops     int     `json:"ops"`
		} `json:"results"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if rep.Scale != 0.05 {
		t.Errorf("scale = %v", rep.Scale)
	}
	want := map[string]bool{
		"run_full": false, "render_all_cold": false, "render_all_warm": false,
		"grouping_union_ssh": false, "merge_union_v4": false,
		"obslog_append": false, "obslog_replay": false,
		"stream_collect": false, "stream_replay_group": false,
		"table3_render": false, "figure6_render": false,
		"resolve_batch_group": false, "resolve_batch_merge": false,
		"resolve_streaming_group": false, "resolve_streaming_merge": false,
		"resolve_sharded_group": false, "resolve_sharded_merge": false,
		"distres_stream": false, "distres_merge": false,
	}
	for _, r := range rep.Results {
		if _, tracked := want[r.Name]; tracked {
			want[r.Name] = true
		}
		if r.NsPerOp <= 0 || r.Ops <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("measurement %s missing from report", name)
		}
	}
}

// TestRunUnknownTable checks render errors surface as errors and -h as a
// clean help request.
func TestRunUnknownTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-table", "99"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: want flag.ErrHelp, got %v", err)
	}
}

// TestRunBackendFlag renders a table through a non-default resolver backend
// and rejects unknown backend names.
func TestRunBackendFlag(t *testing.T) {
	var batch, streaming, stderr bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-seed", "2", "-workers", "16",
		"-table", "4"}, &batch, &stderr); err != nil {
		t.Fatalf("batch run: %v (stderr: %s)", err, stderr.String())
	}
	if err := run([]string{"-scale", "0.05", "-seed", "2", "-workers", "16",
		"-backend", "streaming", "-table", "4"}, &streaming, &stderr); err != nil {
		t.Fatalf("streaming run: %v (stderr: %s)", err, stderr.String())
	}
	if batch.String() != streaming.String() {
		t.Fatalf("table 4 differs across backends:\n%s\n---\n%s", batch.String(), streaming.String())
	}
	var stdout bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-backend", "quantum"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestBackendValidationMessage pins the early-rejection contract: an unknown
// -backend fails with errBadFlags before any world is built, naming every
// valid backend.
func TestBackendValidationMessage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-backend", "bogus", "-table", "1"}, &stdout, &stderr)
	if !errors.Is(err, errBadFlags) {
		t.Fatalf("unknown backend: want errBadFlags, got %v", err)
	}
	want := fmt.Sprintf("benchtables: unknown backend %q (valid: %s)\n",
		"bogus", strings.Join(aliaslimit.BackendNames(), ", "))
	if stderr.String() != want {
		t.Fatalf("stderr = %q, want %q", stderr.String(), want)
	}
}

// TestStreamCollectFlagCombos pins the out-of-core flag contract: -mem-budget
// needs -stream-collect, and -stream-collect shapes study runs only — the
// bench harness measures the streamed path through its own entries, so
// combining the flag with -benchjson or the compare gate is rejected.
func TestStreamCollectFlagCombos(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-mem-budget", "1048576", "-table", "1"}, &stdout, &stderr); !errors.Is(err, errBadFlags) {
		t.Fatalf("-mem-budget without -stream-collect: want errBadFlags, got %v", err)
	}
	if !strings.Contains(stderr.String(), "-stream-collect") {
		t.Errorf("rejection does not name the missing flag: %s", stderr.String())
	}
	for _, extra := range [][]string{
		{"-benchjson", "-"},
		{"-compare", "x.json"},
		{"-against", "x.json"},
	} {
		stderr.Reset()
		args := append([]string{"-stream-collect"}, extra...)
		if err := run(args, &stdout, &stderr); !errors.Is(err, errBadFlags) {
			t.Fatalf("-stream-collect with %v: want errBadFlags, got %v", extra, err)
		}
	}
}
