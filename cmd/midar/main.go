// Command midar runs the IPID-based baseline standalone: it builds a world,
// scans SSH to obtain candidate alias sets, classifies every candidate
// address's IPID behaviour, and verifies the sets with the Monotonic Bounds
// Test pipeline — reproducing the paper's finding that only a small slice of
// modern devices still expose a usable shared counter.
//
// Usage:
//
//	midar -scale 0.25 -sample 100
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/experiments"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/midar"
	"aliaslimit/internal/topo"
)

func main() {
	scale := flag.Float64("scale", 0.25, "world scale")
	seed := flag.Uint64("seed", 1, "world seed")
	sample := flag.Int("sample", 61, "number of candidate SSH sets to verify")
	flag.Parse()

	cfg := topo.Default()
	cfg.Seed = *seed
	cfg.Scale = *scale
	world, err := topo.Build(cfg)
	if err != nil {
		fatal(err)
	}
	active, err := experiments.CollectActive(world, experiments.ScanOptions{Seed: *seed})
	if err != nil {
		fatal(err)
	}

	sets := alias.NonSingleton(alias.FilterFamily(alias.Group(active.Obs[ident.SSH]), true))
	var candidates []alias.Set
	for _, s := range sets {
		if s.Size() <= 10 {
			candidates = append(candidates, s)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].Signature() < candidates[j].Signature()
	})
	if len(candidates) > *sample {
		candidates = candidates[:*sample]
	}
	fmt.Printf("verifying %d candidate SSH alias sets (of %d eligible)\n", len(candidates), len(sets))

	session := midar.NewSession(world.Fabric.Vantage(topo.VantageMIDAR), world.Clock, midar.Config{})

	// Estimation-stage census across all candidate addresses.
	var addrs []alias.Set
	_ = addrs
	classCount := map[midar.Class]int{}
	for _, c := range candidates {
		for a, cl := range session.ClassifyTargets(c.Addrs) {
			_ = a
			classCount[cl]++
		}
	}
	fmt.Println("IPID counter census over candidate addresses:")
	for _, cl := range []midar.Class{midar.ClassUsable, midar.ClassConstant, midar.ClassTooFast, midar.ClassUnresponsive} {
		fmt.Printf("  %-13s %d\n", cl, classCount[cl])
	}

	results, tally := session.VerifySets(candidates)
	fmt.Printf("verification: confirmed=%d split=%d unverifiable=%d (verifiable fraction %.0f%%)\n",
		tally.Confirmed, tally.Split, tally.Unverifiable,
		100*float64(tally.Verifiable())/float64(maxInt(len(candidates), 1)))
	for _, r := range results {
		if r.Outcome == midar.OutcomeSplit {
			fmt.Printf("  split: %s -> %d groups\n", r.Candidate.Signature(), len(r.Partition))
		}
	}
	fmt.Printf("simulated measurement time elapsed: %v\n", world.Clock.Now().Sub(topo.Origin))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "midar: %v\n", err)
	os.Exit(1)
}
