// Command midar runs the IPID-based baseline standalone: it builds a world,
// scans SSH to obtain candidate alias sets, classifies every candidate
// address's IPID behaviour, and verifies the sets with the Monotonic Bounds
// Test pipeline — reproducing the paper's finding that only a small slice of
// modern devices still expose a usable shared counter.
//
// Usage:
//
//	midar -scale 0.25 -sample 100
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/experiments"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/midar"
	"aliaslimit/internal/topo"
)

// errBadFlags marks argument errors the flag package has already reported;
// main maps it to the conventional usage exit code 2.
var errBadFlags = errors.New("bad arguments")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// -h/-help: usage was printed; asking for help is not a failure.
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "midar: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("midar", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 0.25, "world scale")
	seed := fs.Uint64("seed", 1, "world seed")
	sample := fs.Int("sample", 61, "number of candidate SSH sets to verify")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errBadFlags
	}

	cfg := topo.Default()
	cfg.Seed = *seed
	cfg.Scale = *scale
	world, err := topo.Build(cfg)
	if err != nil {
		return err
	}
	active, err := experiments.CollectActive(world, experiments.ScanOptions{Seed: *seed})
	if err != nil {
		return err
	}

	sets := alias.NonSingleton(alias.FilterFamily(alias.Group(active.Obs[ident.SSH]), true))
	var candidates []alias.Set
	for _, s := range sets {
		if s.Size() <= 10 {
			candidates = append(candidates, s)
		}
	}
	// Canonical order via the binary set key; Signature stays for the
	// human-readable split report below.
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].Key() < candidates[j].Key()
	})
	if len(candidates) > *sample {
		candidates = candidates[:*sample]
	}
	fmt.Fprintf(stdout, "verifying %d candidate SSH alias sets (of %d eligible)\n", len(candidates), len(sets))

	session := midar.NewSession(world.Fabric.Vantage(topo.VantageMIDAR), world.Clock, midar.Config{})

	// Estimation-stage census across all candidate addresses.
	classCount := map[midar.Class]int{}
	for _, c := range candidates {
		for _, cl := range session.ClassifyTargets(c.Addrs) {
			classCount[cl]++
		}
	}
	fmt.Fprintln(stdout, "IPID counter census over candidate addresses:")
	for _, cl := range []midar.Class{midar.ClassUsable, midar.ClassConstant, midar.ClassTooFast, midar.ClassUnresponsive} {
		fmt.Fprintf(stdout, "  %-13s %d\n", cl, classCount[cl])
	}

	results, tally := session.VerifySets(candidates)
	fmt.Fprintf(stdout, "verification: confirmed=%d split=%d unverifiable=%d (verifiable fraction %.0f%%)\n",
		tally.Confirmed, tally.Split, tally.Unverifiable,
		100*float64(tally.Verifiable())/float64(maxInt(len(candidates), 1)))
	for _, r := range results {
		if r.Outcome == midar.OutcomeSplit {
			fmt.Fprintf(stdout, "  split: %s -> %d groups\n", r.Candidate.Signature(), len(r.Partition))
		}
	}
	fmt.Fprintf(stdout, "simulated measurement time elapsed: %v\n", world.Clock.Now().Sub(topo.Origin))
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
