package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
)

// TestRunTinyMIDAR exercises flag parsing and a tiny-scale end-to-end run of
// the IPID baseline pipeline.
func TestRunTinyMIDAR(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-seed", "2", "-sample", "5"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"candidate SSH alias sets",
		"IPID counter census",
		"verification:",
		"simulated measurement time elapsed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunMIDARBadFlags checks flag errors surface as usage errors and -h as
// a clean help request.
func TestRunMIDARBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sample", "many"}, &stdout, &stderr); !errors.Is(err, errBadFlags) {
		t.Fatalf("bad -sample: want errBadFlags, got %v", err)
	}
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: want flag.ErrHelp, got %v", err)
	}
}
