// Command resolve reads identifier observations (the JSONL that cmd/scan
// emits, possibly from several vantage points) and runs the paper's
// inference: alias sets per protocol, the cross-protocol union, and
// dual-stack sets.
//
// Usage:
//
//	resolve active.jsonl censys.jsonl
//	resolve -sets active.jsonl          # also dump every non-singleton set
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/core"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obsfile"
)

// errBadFlags marks argument errors the flag package (or run itself) has
// already reported; main maps it to the conventional usage exit code 2.
var errBadFlags = errors.New("bad arguments")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// -h/-help: usage was printed; asking for help is not a failure.
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "resolve: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("resolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dumpSets := fs.Bool("sets", false, "dump every non-singleton alias set")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errBadFlags
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: resolve [-sets] <observations.jsonl>...")
		return errBadFlags
	}

	r := core.NewResolver()
	for _, path := range fs.Args() {
		if err := load(r, path); err != nil {
			return err
		}
	}

	sum := r.Summarize()
	fmt.Fprintf(stdout, "observations: SSH=%d BGP=%d SNMPv3=%d\n",
		sum.ObsPerProtocol["SSH"], sum.ObsPerProtocol["BGP"], sum.ObsPerProtocol["SNMPv3"])
	for _, p := range ident.Protocols {
		v4 := r.NonSingletonAliasSets(p, true)
		v6 := r.NonSingletonAliasSets(p, false)
		fmt.Fprintf(stdout, "%-7s alias sets: IPv4 %d (covering %d addrs), IPv6 %d (covering %d addrs)\n",
			p, len(v4), alias.CoveredAddrs(v4), len(v6), alias.CoveredAddrs(v6))
	}
	unionV4 := r.UnionAliasSets(true)
	unionV6 := r.UnionAliasSets(false)
	ds := r.DualStackSets()
	fmt.Fprintf(stdout, "union   alias sets: IPv4 %d (covering %d addrs), IPv6 %d (covering %d addrs)\n",
		len(unionV4), alias.CoveredAddrs(unionV4), len(unionV6), alias.CoveredAddrs(unionV6))
	fmt.Fprintf(stdout, "dual-stack sets: %d\n", len(ds))

	if *dumpSets {
		for _, s := range unionV4 {
			fmt.Fprintf(stdout, "set %s\n", s.Signature())
		}
		for _, s := range unionV6 {
			fmt.Fprintf(stdout, "set %s\n", s.Signature())
		}
	}
	return nil
}

// load streams one JSONL file into the resolver.
func load(r *core.Resolver, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	obs, err := obsfile.Read(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, o := range obs {
		r.AddObservation(o)
	}
	return nil
}
