// Command resolve reads identifier observations (the JSONL that cmd/scan
// emits, possibly from several vantage points) and runs the paper's
// inference: alias sets per protocol, the cross-protocol union, and
// dual-stack sets.
//
// Usage:
//
//	resolve active.jsonl censys.jsonl
//	resolve -sets active.jsonl          # also dump every non-singleton set
package main

import (
	"flag"
	"fmt"
	"os"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/core"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obsfile"
)

func main() {
	dumpSets := flag.Bool("sets", false, "dump every non-singleton alias set")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: resolve [-sets] <observations.jsonl>...")
		os.Exit(2)
	}

	r := core.NewResolver()
	for _, path := range flag.Args() {
		if err := load(r, path); err != nil {
			fmt.Fprintf(os.Stderr, "resolve: %v\n", err)
			os.Exit(1)
		}
	}

	sum := r.Summarize()
	fmt.Printf("observations: SSH=%d BGP=%d SNMPv3=%d\n",
		sum.ObsPerProtocol["SSH"], sum.ObsPerProtocol["BGP"], sum.ObsPerProtocol["SNMPv3"])
	for _, p := range ident.Protocols {
		v4 := r.NonSingletonAliasSets(p, true)
		v6 := r.NonSingletonAliasSets(p, false)
		fmt.Printf("%-7s alias sets: IPv4 %d (covering %d addrs), IPv6 %d (covering %d addrs)\n",
			p, len(v4), alias.CoveredAddrs(v4), len(v6), alias.CoveredAddrs(v6))
	}
	unionV4 := r.UnionAliasSets(true)
	unionV6 := r.UnionAliasSets(false)
	ds := r.DualStackSets()
	fmt.Printf("union   alias sets: IPv4 %d (covering %d addrs), IPv6 %d (covering %d addrs)\n",
		len(unionV4), alias.CoveredAddrs(unionV4), len(unionV6), alias.CoveredAddrs(unionV6))
	fmt.Printf("dual-stack sets: %d\n", len(ds))

	if *dumpSets {
		for _, s := range unionV4 {
			fmt.Printf("set %s\n", s.Signature())
		}
		for _, s := range unionV6 {
			fmt.Printf("set %s\n", s.Signature())
		}
	}
}

// load streams one JSONL file into the resolver.
func load(r *core.Resolver, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	obs, err := obsfile.Read(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, o := range obs {
		r.AddObservation(o)
	}
	return nil
}
