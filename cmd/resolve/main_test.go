package main

import (
	"bytes"
	"errors"
	"flag"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obsfile"
)

// writeObsFile writes a small observation file with one two-address SSH
// alias pair and returns its path.
func writeObsFile(t *testing.T) string {
	t.Helper()
	id := ident.Identifier{Proto: ident.SSH, Digest: "feedface"}
	obs := []alias.Observation{
		{Addr: netip.MustParseAddr("192.0.2.1"), ID: id},
		{Addr: netip.MustParseAddr("192.0.2.2"), ID: id},
	}
	var buf bytes.Buffer
	if err := obsfile.Write(&buf, obs); err != nil {
		t.Fatalf("writing observations: %v", err)
	}
	path := filepath.Join(t.TempDir(), "obs.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
	return path
}

// TestRunResolve feeds a hand-built observation file through the resolver CLI
// and checks the inferred alias set shows up in the report.
func TestRunResolve(t *testing.T) {
	path := writeObsFile(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sets", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "observations: SSH=2") {
		t.Fatalf("missing observation summary:\n%s", out)
	}
	if !strings.Contains(out, "set ") {
		t.Fatalf("-sets produced no set dump:\n%s", out)
	}
}

// TestRunResolveErrors covers the no-arguments and missing-file error paths:
// the former is a usage error (exit 2 via errBadFlags), the latter a runtime
// failure.
func TestRunResolveErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); !errors.Is(err, errBadFlags) {
		t.Fatalf("no arguments: want errBadFlags, got %v", err)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Fatalf("usage line missing from stderr: %s", stderr.String())
	}
	err := run([]string{"/nonexistent/obs.jsonl"}, &stdout, &stderr)
	if err == nil || errors.Is(err, errBadFlags) {
		t.Fatalf("missing input file: want a runtime error, got %v", err)
	}
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: want flag.ErrHelp, got %v", err)
	}
}
