// Command scan runs the paper's measurement pipeline against a freshly
// generated synthetic Internet and emits identifier observations as JSON
// lines (see internal/obsfile for the schema). The output feeds
// cmd/resolve, mirroring the paper's split between data collection
// (ZMap/ZGrab2/Censys) and analysis.
//
// Usage:
//
//	scan -scale 0.25 -vantage active  > active.jsonl
//	scan -scale 0.25 -vantage censys  > censys.jsonl
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/experiments"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obsfile"
	"aliaslimit/internal/topo"
)

// errBadFlags marks argument errors the flag package (or run itself) has
// already reported; main maps it to the conventional usage exit code 2.
var errBadFlags = errors.New("bad arguments")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// -h/-help: usage was printed; asking for help is not a failure.
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "scan: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: flags in, JSONL out.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("scan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 0.25, "world scale (1.0 ≈ 1:1000 of the paper's Internet)")
	seed := fs.Uint64("seed", 1, "world seed")
	vantage := fs.String("vantage", "active", "vantage point: active or censys")
	workers := fs.Int("workers", 256, "scan concurrency")
	parallelism := fs.Int("parallelism", 0, "concurrent protocol sweeps (0 = all at once, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errBadFlags
	}

	cfg := topo.Default()
	cfg.Seed = *seed
	cfg.Scale = *scale

	start := time.Now()
	world, err := topo.Build(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "world: %d devices, %d IPv4 targets, %d IPv6 bound (built in %v)\n",
		world.Fabric.NumDevices(), len(world.V4Universe()), len(world.V6Bound()),
		time.Since(start).Round(time.Millisecond))

	opts := experiments.ScanOptions{Workers: *workers, Seed: *seed, Parallelism: *parallelism}
	var ds *experiments.Dataset
	switch *vantage {
	case "active":
		ds, err = experiments.CollectActive(world, opts)
	case "censys":
		ds, err = experiments.CollectCensys(world, opts)
	default:
		return fmt.Errorf("unknown vantage %q (want active or censys)", *vantage)
	}
	if err != nil {
		return err
	}

	var all []alias.Observation
	for _, p := range ident.Protocols {
		all = append(all, ds.Obs[p]...)
	}
	if err := obsfile.Write(stdout, all); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "emitted %d observations from vantage %q\n", len(all), *vantage)
	return nil
}
