// Command scan runs the paper's measurement pipeline against a freshly
// generated synthetic Internet and emits identifier observations as JSON
// lines (see internal/obsfile for the schema). The output feeds
// cmd/resolve, mirroring the paper's split between data collection
// (ZMap/ZGrab2/Censys) and analysis.
//
// Usage:
//
//	scan -scale 0.25 -vantage active  > active.jsonl
//	scan -scale 0.25 -vantage censys  > censys.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/experiments"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obsfile"
	"aliaslimit/internal/topo"
)

func main() {
	scale := flag.Float64("scale", 0.25, "world scale (1.0 ≈ 1:1000 of the paper's Internet)")
	seed := flag.Uint64("seed", 1, "world seed")
	vantage := flag.String("vantage", "active", "vantage point: active or censys")
	workers := flag.Int("workers", 256, "scan concurrency")
	flag.Parse()

	cfg := topo.Default()
	cfg.Seed = *seed
	cfg.Scale = *scale

	start := time.Now()
	world, err := topo.Build(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "world: %d devices, %d IPv4 targets, %d IPv6 bound (built in %v)\n",
		world.Fabric.NumDevices(), len(world.V4Universe()), len(world.V6Bound()),
		time.Since(start).Round(time.Millisecond))

	opts := experiments.ScanOptions{Workers: *workers, Seed: *seed}
	var ds *experiments.Dataset
	switch *vantage {
	case "active":
		ds, err = experiments.CollectActive(world, opts)
	case "censys":
		ds, err = experiments.CollectCensys(world, opts)
	default:
		fatal(fmt.Errorf("unknown vantage %q (want active or censys)", *vantage))
	}
	if err != nil {
		fatal(err)
	}

	var all []alias.Observation
	for _, p := range ident.Protocols {
		all = append(all, ds.Obs[p]...)
	}
	if err := obsfile.Write(os.Stdout, all); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "emitted %d observations from vantage %q\n", len(all), *vantage)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "scan: %v\n", err)
	os.Exit(1)
}
