package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"aliaslimit/internal/obsfile"
)

// TestRunTinyScan exercises flag parsing and a tiny end-to-end collection for
// both vantage points, checking the emitted JSONL parses back.
func TestRunTinyScan(t *testing.T) {
	for _, vantage := range []string{"active", "censys"} {
		vantage := vantage
		t.Run(vantage, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run([]string{"-scale", "0.05", "-seed", "2", "-workers", "16", "-vantage", vantage},
				&stdout, &stderr)
			if err != nil {
				t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
			}
			obs, err := obsfile.Read(bytes.NewReader(stdout.Bytes()))
			if err != nil {
				t.Fatalf("re-reading emitted JSONL: %v", err)
			}
			if len(obs) == 0 {
				t.Fatal("scan emitted no observations")
			}
			if !strings.Contains(stderr.String(), "emitted") {
				t.Fatalf("missing summary on stderr: %s", stderr.String())
			}
		})
	}
}

// TestRunBadFlags covers the error paths: unknown vantage and unparseable
// flags must surface as errors, not os.Exit.
func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-vantage", "nowhere", "-scale", "0.05"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown vantage accepted")
	}
	if err := run([]string{"-scale", "not-a-number"}, &stdout, &stderr); !errors.Is(err, errBadFlags) {
		t.Fatalf("bad -scale: want errBadFlags, got %v", err)
	}
}

// TestRunHelp checks -h surfaces as flag.ErrHelp (a clean exit, not a
// failure) with the usage text on stderr.
func TestRunHelp(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: want flag.ErrHelp, got %v", err)
	}
	if !strings.Contains(stderr.String(), "-vantage") {
		t.Fatalf("usage text missing from stderr: %s", stderr.String())
	}
}
