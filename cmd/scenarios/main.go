// Command scenarios runs the adversarial-world presets and scores the
// inference pipeline against the simulator's ground truth.
//
// Usage:
//
//	scenarios -list                          # the preset catalog
//	scenarios -run baseline                  # one scenario, text scorecard
//	scenarios -run all -quick -json SCENARIOS.json
//	scenarios -run churn-storm -epochs 5     # longitudinal: N snapshot rounds
//	scenarios -run baseline -backend streaming
//	scenarios -run all -quick -backend all   # every preset on every resolver
//	                                         # backend; byte-identical alias
//	                                         # sets enforced
//	scenarios -run churn-storm -epochs 5 -log RUN  # durable: observation log +
//	                                         # per-epoch checkpoints under RUN/
//	scenarios -resume RUN                    # continue a killed durable run
//	scenarios -run megascale-x100 -stream-collect  # out-of-core collection:
//	                                         # scan→disk→replayed grouping,
//	                                         # bounded memory at any scale
//	scenarios -run baseline -sweep loss=1,5,10,20,30 -json SWEEP-loss.json
//	scenarios -run churn-storm -sweep decay=30,50,70,90 -json SWEEP-decay.json
//	scenarios -merge 'SCENARIOS-*.json' -json SCENARIOS.json
//
// The CI scenario-matrix job runs every preset with -quick -json, the
// longitudinal job runs the pinned presets with -epochs 5, the
// backend-compare job runs the catalog with -backend all, and the per-run
// files merge into the SCENARIOS.json artifact with -merge. The nightly
// sweep job emits per-axis degradation curves with -sweep.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"aliaslimit/internal/aliasd"
	"aliaslimit/internal/atomicio"
	"aliaslimit/internal/scenario"
)

// errBadFlags marks argument errors the flag package has already reported;
// main maps it to the conventional usage exit code 2.
var errBadFlags = errors.New("bad arguments")

func main() {
	// When the distributed backend re-executes this binary as a shard
	// worker, serve that role instead of running scenarios.
	aliasd.RunWorkerIfRequested()
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "scenarios: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the scenario catalog and exit")
	runName := fs.String("run", "", "scenario to run: a preset name, or 'all'")
	quick := fs.Bool("quick", false, "CI-sized worlds (each preset's quick scale)")
	seed := fs.Uint64("seed", 0, "world seed (0 keeps the default)")
	scale := fs.Float64("scale", 0, "world scale override (0 keeps the preset scale)")
	workers := fs.Int("workers", 0, "scan concurrency (0 = default 256)")
	parallelism := fs.Int("parallelism", 0, "concurrent protocol sweeps (0 = all at once)")
	epochs := fs.Int("epochs", 1, "snapshot rounds per scenario; >1 runs the longitudinal pipeline")
	decay := fs.Float64("decay", 0, "decay factor for the longitudinal decay-weighted merge (0 = default 0.5)")
	backend := fs.String("backend", "", "resolver backend: batch|streaming|sharded|distributed (default batch), or 'all' to run every backend and require byte-identical alias sets")
	shardWorkers := fs.Int("shard-workers", 0, "shard fan-out: goroutines for the sharded backend, worker processes for the distributed backend (0 = each backend's default)")
	streamCollect := fs.Bool("stream-collect", false, "out-of-core collection: spill observations to disk during the scan and replay them through the resolver in bounded batches — identical alias sets, peak memory O(alias-set output) instead of O(observations); required by stream-only worlds (megascale-x100)")
	memBudget := fs.Int64("mem-budget", 0, "advisory memory budget in bytes for the -stream-collect replay (sizes the log readahead; 0 = default)")
	logDir := fs.String("log", "", "write a durable observation log + epoch checkpoints under this directory (single preset, single backend); a killed run continues with -resume")
	resume := fs.String("resume", "", "continue the killed durable run whose log lives under this directory")
	sweep := fs.String("sweep", "", "axis sweep, e.g. loss=1,5,10,20,30 (percent) or epochs=2,3,5; runs the -run preset per value")
	jsonPath := fs.String("json", "", "write the machine-readable report to this path (- for stdout)")
	merge := fs.String("merge", "", "merge existing report files matching this glob instead of running")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errBadFlags
	}

	// Reject an unknown backend before any world is built: a typo must fail
	// in milliseconds with the valid names, not after minutes of collection.
	if err := validateBackend(*backend); err != nil {
		fmt.Fprintf(stderr, "scenarios: %v\n", err)
		return errBadFlags
	}
	if *memBudget != 0 && !*streamCollect {
		fmt.Fprintln(stderr, "scenarios: -mem-budget tunes the out-of-core replay; pass -stream-collect too")
		return errBadFlags
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	opts := scenario.Options{
		Seed:          *seed,
		Scale:         *scale,
		Quick:         *quick,
		Workers:       *workers,
		Parallelism:   *parallelism,
		Backend:       *backend,
		ShardWorkers:  *shardWorkers,
		LogDir:        *logDir,
		StreamCollect: *streamCollect,
		MemBudget:     *memBudget,
	}
	if *logDir != "" {
		// A durable log records exactly one run: multi-run modes would
		// interleave several runs' observations in one directory.
		switch {
		case *resume != "":
			return fmt.Errorf("-log starts a fresh durable run; -resume continues one — pick one")
		case *merge != "" || *sweep != "":
			return fmt.Errorf("-log records a single run; it cannot combine with -merge or -sweep")
		case *backend == "all":
			return fmt.Errorf("-log records a single run; pick one backend of %s",
				strings.Join(scenario.BackendNames(), "|"))
		case *runName == "all":
			return fmt.Errorf("-log records a single run; pick one preset of %s",
				strings.Join(scenario.Names(), ", "))
		}
	}
	backends := []string{*backend}
	if *backend == "all" {
		backends = scenario.BackendNames()
	}
	switch {
	case *list:
		return printCatalog(stdout)
	case *resume != "":
		if *runName != "" || *merge != "" || *sweep != "" {
			return fmt.Errorf("-resume takes the run's identity from its manifest; it cannot combine with -run, -merge, or -sweep")
		}
		return resumeLongitudinal(*resume, opts, *jsonPath, stdout, stderr)
	case *merge != "":
		return mergeReports(*merge, *jsonPath, stdout, stderr)
	case *sweep != "":
		if *backend == "all" {
			return fmt.Errorf("-sweep runs one backend at a time; pick one of %s",
				strings.Join(scenario.BackendNames(), "|"))
		}
		return runSweep(*sweep, *runName, opts, *jsonPath, stdout, stderr)
	case *runName != "":
		if *epochs > 1 {
			return runLongitudinal(*runName, scenario.LongitudinalOptions{
				Options: opts,
				Epochs:  *epochs,
				Decay:   *decay,
			}, backends, *jsonPath, stdout, stderr)
		}
		return runScenarios(*runName, opts, backends, *jsonPath, stdout, stderr)
	default:
		fmt.Fprintln(stderr, "scenarios: one of -list, -run, -sweep, or -merge is required")
		fs.Usage()
		return errBadFlags
	}
}

// validateBackend rejects an unknown -backend value before anything runs,
// naming the valid choices. The empty value selects the batch default and
// "all" fans out over the whole catalog.
func validateBackend(name string) error {
	if name == "" || name == "all" {
		return nil
	}
	names := scenario.BackendNames()
	for _, b := range names {
		if name == b {
			return nil
		}
	}
	return fmt.Errorf("unknown backend %q (valid: %s, or 'all')", name, strings.Join(names, ", "))
}

// startProfiles turns on CPU profiling and/or arranges a heap profile dump,
// returning the stop function run defers. Empty paths are no-ops.
func startProfiles(cpuPath, memPath string) (func(), error) {
	stop := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live + cumulative truthfully
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}
	return stop, nil
}

// printCatalog lists every preset with its catalog line.
func printCatalog(w io.Writer) error {
	for _, p := range scenario.Presets() {
		fmt.Fprintf(w, "%-12s %s\n", p.Name, p.Summary)
	}
	return nil
}

// runScenarios executes one preset or the whole catalog — once per selected
// backend — and emits the scorecards as text or as a JSON report. With more
// than one backend, every preset's alias sets must be byte-identical across
// backends (compared through the scorecards' SetsDigest) or the run fails.
func runScenarios(name string, opts scenario.Options, backends []string, jsonPath string, stdout, stderr io.Writer) error {
	names := []string{name}
	if name == "all" {
		// Stream-only worlds refuse to materialise in RAM, so a catalog run
		// without -stream-collect skips them (loudly) instead of failing.
		names = names[:0]
		for _, p := range scenario.Presets() {
			if p.StreamOnly && !opts.StreamCollect {
				fmt.Fprintf(stderr, "scenarios: skipping %s (stream-only world; add -stream-collect to include it)\n", p.Name)
				continue
			}
			names = append(names, p.Name)
		}
	}
	rep := &scenario.Report{}
	for _, n := range names {
		var ref *scenario.Result
		for _, b := range backends {
			bopts := opts
			bopts.Backend = b
			start := time.Now()
			res, err := scenario.Run(n, bopts)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "scenarios: %s (%s) done in %v\n",
				n, res.Backend, time.Since(start).Round(time.Millisecond))
			if ref == nil {
				ref = res
			} else if res.SetsDigest != ref.SetsDigest {
				return fmt.Errorf("backend divergence on %s: %s", n, divergence(ref, res))
			}
			rep.Scenarios = append(rep.Scenarios, res)
		}
		if len(backends) > 1 {
			fmt.Fprintf(stderr, "scenarios: %s byte-identical across %s\n",
				n, strings.Join(backends, ", "))
		}
	}
	if jsonPath == "" {
		for _, r := range rep.Scenarios {
			fmt.Fprintln(stdout, r.RenderText())
		}
		return nil
	}
	return writeReport(rep, jsonPath, stdout, stderr)
}

// runLongitudinal executes one preset (or the pinned longitudinal set with
// "all") over several epochs — once per selected backend, with per-epoch
// byte-identity enforced across backends — and emits the longitudinal
// scorecards.
func runLongitudinal(name string, opts scenario.LongitudinalOptions, backends []string, jsonPath string, stdout, stderr io.Writer) error {
	names := []string{name}
	if name == "all" {
		names = scenario.LongitudinalNames()
	}
	rep := &scenario.Report{}
	for _, n := range names {
		var ref *scenario.LongitudinalResult
		for _, b := range backends {
			bopts := opts
			bopts.Backend = b
			start := time.Now()
			res, err := scenario.RunLongitudinal(n, bopts)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "scenarios: %s x%d epochs (%s) done in %v\n",
				n, opts.Epochs, res.Backend, time.Since(start).Round(time.Millisecond))
			if ref == nil {
				ref = res
			} else {
				for i, e := range res.Epochs {
					if e.SetsDigest != ref.Epochs[i].SetsDigest {
						return fmt.Errorf("backend divergence on %s epoch %d: %s",
							n, i, divergence(&ref.Epochs[i].Result, &e.Result))
					}
				}
			}
			rep.Longitudinal = append(rep.Longitudinal, res)
		}
		if len(backends) > 1 {
			fmt.Fprintf(stderr, "scenarios: %s epochs byte-identical across %s\n",
				n, strings.Join(backends, ", "))
		}
	}
	if jsonPath == "" {
		for _, r := range rep.Longitudinal {
			fmt.Fprintln(stdout, r.RenderText())
		}
		return nil
	}
	return writeReport(rep, jsonPath, stdout, stderr)
}

// resumeLongitudinal continues a killed durable run from its log directory.
// The run's identity (preset, seed, scale, backend, epochs, decay) comes from
// the log's manifest; only execution knobs (workers, parallelism) come from
// the command line.
func resumeLongitudinal(dir string, opts scenario.Options, jsonPath string, stdout, stderr io.Writer) error {
	start := time.Now()
	res, err := scenario.ResumeLongitudinal(dir, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "scenarios: resumed %s x%d epochs (%s) from %s in %v\n",
		res.Scenario, len(res.Epochs), res.Backend, dir, time.Since(start).Round(time.Millisecond))
	if jsonPath == "" {
		fmt.Fprintln(stdout, res.RenderText())
		return nil
	}
	rep := &scenario.Report{Longitudinal: []*scenario.LongitudinalResult{res}}
	return writeReport(rep, jsonPath, stdout, stderr)
}

// divergence renders an actionable cross-backend mismatch: both backends,
// both full digests, and — when the per-partition breakdowns are available —
// the first partition whose alias sets differ, so a CI failure says where to
// look instead of just that two hashes disagree.
func divergence(ref, res *scenario.Result) string {
	msg := fmt.Sprintf("%s alias sets (digest %s) differ from %s (digest %s)",
		res.Backend, res.SetsDigest, ref.Backend, ref.SetsDigest)
	if part := scenario.FirstDivergence(ref.PartitionDigests, res.PartitionDigests); part != "" {
		msg += fmt.Sprintf("; first differing partition: %s", part)
	}
	return msg
}

// runSweep parses an axis=values spec (percent values, except the epochs
// axis which takes snapshot-round counts), runs the sweep on the -run preset
// (baseline when unset), and emits the degradation curve.
func runSweep(spec, name string, opts scenario.Options, jsonPath string, stdout, stderr io.Writer) error {
	axis, valuesStr, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("bad -sweep %q: want axis=v1,v2,... (percent values; epoch counts for epochs)", spec)
	}
	var values []float64
	for _, f := range strings.Split(valuesStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("bad -sweep value %q: %w", f, err)
		}
		if axis != "epochs" {
			v /= 100
		}
		values = append(values, v)
	}
	if name == "" || name == "all" {
		name = "baseline"
	}
	start := time.Now()
	rep, err := scenario.RunSweep(axis, name, values, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "scenarios: sweep %s on %s (%d points) done in %v\n",
		axis, name, len(values), time.Since(start).Round(time.Millisecond))
	if jsonPath == "" {
		fmt.Fprintln(stdout, rep.RenderText())
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return writeJSON(data, jsonPath, fmt.Sprintf("sweep %s on %s", axis, name), stdout, stderr)
}

// mergeReports combines per-scenario report files (as the CI matrix produces)
// into one canonical report.
func mergeReports(glob, jsonPath string, stdout, stderr io.Writer) error {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return fmt.Errorf("bad -merge pattern %q: %w", glob, err)
	}
	if len(paths) == 0 {
		return fmt.Errorf("-merge %q matched no files", glob)
	}
	sort.Strings(paths)
	merged := &scenario.Report{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rep, err := scenario.ParseReport(data)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		merged = scenario.Merge(merged, rep)
	}
	fmt.Fprintf(stderr, "scenarios: merged %d files (%d scenarios)\n", len(paths), len(merged.Scenarios))
	if jsonPath == "" {
		jsonPath = "-"
	}
	return writeReport(merged, jsonPath, stdout, stderr)
}

// writeReport marshals the report to path ("-" for stdout).
func writeReport(rep *scenario.Report, path string, stdout, stderr io.Writer) error {
	data, err := rep.MarshalIndent()
	if err != nil {
		return err
	}
	var names []string
	for _, r := range rep.Scenarios {
		names = append(names, r.Scenario)
	}
	for _, r := range rep.Longitudinal {
		names = append(names, fmt.Sprintf("%s x%d epochs", r.Scenario, len(r.Epochs)))
	}
	return writeJSON(data, path, strings.Join(names, ", "), stdout, stderr)
}

// writeJSON emits report bytes to path ("-" for stdout), logging what was
// written to stderr. File writes go through a temp file and an atomic rename,
// so a crash or full disk mid-write never leaves a truncated report where a
// previous good one stood.
func writeJSON(data []byte, path, what string, stdout, stderr io.Writer) error {
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	if err := atomicio.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "scenarios: wrote %s (%s)\n", path, what)
	return nil
}
