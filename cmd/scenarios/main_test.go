package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aliaslimit/internal/aliasd"
	"aliaslimit/internal/scenario"
)

// TestMain makes the test binary worker-capable: -backend all now covers the
// distributed backend, whose coordinator re-executes the running binary as
// its shard worker processes.
func TestMain(m *testing.M) {
	aliasd.RunWorkerIfRequested()
	os.Exit(m.Run())
}

// TestRunList checks that every catalog preset appears in -list.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -list: %v (stderr: %s)", err, stderr.String())
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing preset %q:\n%s", name, stdout.String())
		}
	}
	if n := len(scenario.Names()); n < 8 {
		t.Fatalf("catalog lists %d presets, want >= 8", n)
	}
}

// TestRunScenarioText runs one tiny scenario and checks the scorecard.
func TestRunScenarioText(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "baseline", "-scale", "0.05", "-workers", "32"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	for _, want := range []string{"scenario baseline", "precision", "SSH", "midar:"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("scorecard missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunScenarioJSONDeterministic runs one scenario twice and requires
// byte-identical reports — the SCENARIOS.json contract.
func TestRunScenarioJSONDeterministic(t *testing.T) {
	emit := func() string {
		var stdout, stderr bytes.Buffer
		err := run([]string{"-run", "lossy", "-scale", "0.05", "-workers", "32", "-json", "-"},
			&stdout, &stderr)
		if err != nil {
			t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
		}
		return stdout.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatalf("reports differ between identical runs:\n%s\n---\n%s", a, b)
	}
	rep, err := scenario.ParseReport([]byte(a))
	if err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Scenario != "lossy" {
		t.Fatalf("unexpected report shape: %+v", rep.Scenarios)
	}
	if len(rep.Scenarios[0].Protocols) != 3 {
		t.Fatalf("want 3 protocol scores, got %d", len(rep.Scenarios[0].Protocols))
	}
}

// TestMerge merges two single-scenario files and checks canonical order.
func TestMerge(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"lossy", "baseline"} {
		var stdout, stderr bytes.Buffer
		err := run([]string{"-run", name, "-scale", "0.05", "-workers", "32",
			"-json", filepath.Join(dir, "SCENARIOS-"+name+".json")}, &stdout, &stderr)
		if err != nil {
			t.Fatalf("run %s: %v", name, err)
		}
	}
	out := filepath.Join(dir, "SCENARIOS.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-merge", filepath.Join(dir, "SCENARIOS-*.json"), "-json", out},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("merge: %v (stderr: %s)", err, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("merged %d scenarios, want 2", len(rep.Scenarios))
	}
	if rep.Scenarios[0].Scenario != "baseline" || rep.Scenarios[1].Scenario != "lossy" {
		t.Fatalf("merge order not canonical: %s, %s",
			rep.Scenarios[0].Scenario, rep.Scenarios[1].Scenario)
	}
}

// TestLongitudinalJSONDeterministic runs a multi-epoch scenario with
// sequential and fully pipelined collection, at two seeds, and requires
// byte-identical SCENARIOS.json output per seed — the longitudinal extension
// of the determinism contract. CI runs this under -race.
func TestLongitudinalJSONDeterministic(t *testing.T) {
	emit := func(seed, parallelism, workers string) string {
		var stdout, stderr bytes.Buffer
		err := run([]string{"-run", "churn-storm", "-epochs", "3", "-scale", "0.05",
			"-seed", seed, "-parallelism", parallelism, "-workers", workers, "-json", "-"},
			&stdout, &stderr)
		if err != nil {
			t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
		}
		return stdout.String()
	}
	var perSeed []string
	for _, seed := range []string{"1", "7"} {
		seq := emit(seed, "1", "32")
		par := emit(seed, "0", "0")
		if seq != par {
			t.Fatalf("seed %s: sequential and pipelined longitudinal reports differ:\n%s\n---\n%s",
				seed, seq, par)
		}
		rep, err := scenario.ParseReport([]byte(seq))
		if err != nil {
			t.Fatalf("seed %s: report does not parse: %v", seed, err)
		}
		if len(rep.Longitudinal) != 1 || len(rep.Longitudinal[0].Epochs) != 3 {
			t.Fatalf("seed %s: unexpected longitudinal shape: %+v", seed, rep.Longitudinal)
		}
		for _, e := range rep.Longitudinal[0].Epochs {
			if len(e.Protocols) != 3 {
				t.Fatalf("seed %s epoch %d: %d protocol scores", seed, e.Epoch, len(e.Protocols))
			}
		}
		perSeed = append(perSeed, seq)
	}
	if perSeed[0] == perSeed[1] {
		t.Fatal("different seeds produced identical longitudinal reports")
	}
}

// TestLongitudinalText checks the human-readable multi-epoch scorecard.
func TestLongitudinalText(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "baseline", "-epochs", "2", "-scale", "0.05", "-workers", "32"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	for _, want := range []string{"2 epochs", "identifier persistence", "alias-set survival",
		"naive-union", "decay-weighted"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("longitudinal scorecard missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestSweepCLI runs a tiny loss sweep through the CLI, text and JSON.
func TestSweepCLI(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "baseline", "-sweep", "loss=0,10", "-scale", "0.05", "-workers", "32"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	for _, want := range []string{"sweep loss on baseline", "0.0%", "10.0%"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("sweep output missing %q:\n%s", want, stdout.String())
		}
	}
	out := filepath.Join(t.TempDir(), "SWEEP-loss.json")
	stdout.Reset()
	stderr.Reset()
	err = run([]string{"-run", "baseline", "-sweep", "loss=0,10", "-scale", "0.05",
		"-workers", "32", "-json", out}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -json: %v (stderr: %s)", err, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"axis": "loss"`, `"value": 0.1`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("sweep JSON missing %q:\n%s", want, data)
		}
	}
}

// TestBackendFlag runs one preset on a named backend and on all of them,
// checking the scorecards and the byte-identity enforcement path.
func TestBackendFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "baseline", "-scale", "0.05", "-workers", "32",
		"-backend", "streaming"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -backend streaming: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "backend=streaming") {
		t.Errorf("scorecard does not name the backend:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	err = run([]string{"-run", "baseline", "-scale", "0.05", "-workers", "32",
		"-backend", "all", "-json", "-"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -backend all: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "byte-identical across") {
		t.Errorf("-backend all did not report the equivalence check:\n%s", stderr.String())
	}
	rep, err := scenario.ParseReport(stdout.Bytes())
	if err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if len(rep.Scenarios) != len(scenario.BackendNames()) {
		t.Fatalf("got %d results, want one per backend (%d)",
			len(rep.Scenarios), len(scenario.BackendNames()))
	}
	for i, want := range scenario.BackendNames() {
		if rep.Scenarios[i].Backend != want {
			t.Errorf("result %d has backend %q, want %q (canonical order)",
				i, rep.Scenarios[i].Backend, want)
		}
	}

	if err := run([]string{"-run", "baseline", "-scale", "0.05", "-backend", "quantum"},
		&stdout, &stderr); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := run([]string{"-run", "baseline", "-sweep", "loss=0,10", "-scale", "0.05",
		"-backend", "all"}, &stdout, &stderr); err == nil {
		t.Fatal("-sweep with -backend all accepted")
	}
}

// TestBackendValidationMessage pins the early-rejection contract: an unknown
// -backend must fail before any world is built, naming every valid backend
// and the 'all' pseudo-backend. The run would take far longer than the time
// bound if a world were built first, so the bound doubles as the
// fail-fast check.
func TestBackendValidationMessage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	start := time.Now()
	err := run([]string{"-run", "baseline", "-backend", "bogus"}, &stdout, &stderr)
	if !errors.Is(err, errBadFlags) {
		t.Fatalf("unknown backend: want errBadFlags, got %v", err)
	}
	want := fmt.Sprintf("scenarios: unknown backend %q (valid: %s, or 'all')\n",
		"bogus", strings.Join(scenario.BackendNames(), ", "))
	if stderr.String() != want {
		t.Fatalf("stderr = %q, want %q", stderr.String(), want)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("rejection took %v; backend validation must run before the world build", elapsed)
	}
}

// TestSweepEpochsCLI sweeps the longitudinal depth through the CLI: values
// are epoch counts, not percentages.
func TestSweepEpochsCLI(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "churn-storm", "-sweep", "epochs=2,3", "-scale", "0.05",
		"-workers", "32", "-json", "-"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	for _, want := range []string{`"axis": "epochs"`, `"value": 2`, `"value": 3`, `"longitudinal"`} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("epochs sweep JSON missing %q", want)
		}
	}
}

// TestCIMatrixCoversCatalog pins the GitHub Actions scenario matrix to the
// preset catalog: adding a preset without adding it to the CI matrix (or
// vice versa) fails here instead of silently shrinking coverage.
func TestCIMatrixCoversCatalog(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Skipf("ci.yml not readable: %v", err)
	}
	text := string(data)
	if !strings.Contains(text, "scenario-matrix:") {
		t.Fatal("ci.yml has no scenario-matrix job")
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(text, "- "+name) {
			t.Errorf("preset %q missing from the ci.yml scenario matrix", name)
		}
	}
}

// TestCILongitudinalCoversPresets pins the CI longitudinal job to the
// epochs-capable preset list: marking a preset Longitudinal without adding it
// to the ci.yml longitudinal matrix (or vice versa) fails here.
func TestCILongitudinalCoversPresets(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Skipf("ci.yml not readable: %v", err)
	}
	text := string(data)
	idx := strings.Index(text, "scenario-longitudinal:")
	if idx < 0 {
		t.Fatal("ci.yml has no scenario-longitudinal job")
	}
	end := strings.Index(text[idx:], "\n  scenario-merge:")
	if end < 0 {
		end = len(text) - idx
	}
	job := text[idx : idx+end]
	names := scenario.LongitudinalNames()
	if len(names) < 2 {
		t.Fatalf("longitudinal preset list too small: %v", names)
	}
	for _, name := range names {
		if !strings.Contains(job, "- "+name) {
			t.Errorf("longitudinal preset %q missing from the ci.yml scenario-longitudinal matrix", name)
		}
	}
	if !strings.Contains(job, "-epochs 5") {
		t.Error("ci.yml longitudinal job does not run -epochs 5")
	}
}

// TestCISweepJobPresent pins the nightly sweep job and its axes: loss and
// churn for the single-snapshot layer, decay and epochs for the longitudinal
// one.
func TestCISweepJobPresent(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Skipf("ci.yml not readable: %v", err)
	}
	text := string(data)
	for _, want := range []string{"workflow_dispatch:", "schedule:", "sweep:",
		"-sweep loss=1,5,10,20,30", "-sweep churn=", "-sweep decay=", "-sweep epochs="} {
		if !strings.Contains(text, want) {
			t.Errorf("ci.yml missing %q for the nightly sweep job", want)
		}
	}
}

// TestCIBackendCoversCatalog pins the CI backend jobs to the resolver
// registry: every backend must appear in the backend-compare matrix, and the
// byte-identity gate must run the full cross-backend comparison.
func TestCIBackendCoversCatalog(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Skipf("ci.yml not readable: %v", err)
	}
	text := string(data)
	idx := strings.Index(text, "backend-compare:")
	if idx < 0 {
		t.Fatal("ci.yml has no backend-compare job")
	}
	end := strings.Index(text[idx:], "\n  backend-equivalence:")
	if end < 0 {
		t.Fatal("ci.yml has no backend-equivalence job")
	}
	job := text[idx : idx+end]
	names := scenario.BackendNames()
	if len(names) < 3 {
		t.Fatalf("backend registry too small: %v", names)
	}
	for _, name := range names {
		if name == "batch" {
			// The default backend's catalog run lives in the scenario-matrix
			// job; a second batch leg here would duplicate both the compute
			// and the merged report's entries. The job must still acknowledge
			// where batch coverage comes from.
			if strings.Contains(job, "- "+name+"\n") {
				t.Errorf("backend-compare matrix re-runs the %q backend the scenario-matrix job already covers", name)
			}
			if !strings.Contains(job, name) {
				t.Errorf("backend-compare job does not document %q coverage", name)
			}
			continue
		}
		if !strings.Contains(job, "- "+name) {
			t.Errorf("backend %q missing from the ci.yml backend-compare matrix", name)
		}
	}
	if !strings.Contains(job, "-backend ${{ matrix.backend }}") {
		t.Error("backend-compare job does not thread the matrix backend into cmd/scenarios")
	}
	if !strings.Contains(text, "-backend all") {
		t.Error("ci.yml never runs the cross-backend byte-identity comparison (-backend all)")
	}
}

// TestCIDistributedCompareJob pins the multi-process CI gate: the workflow
// must run the full preset catalog with the coordinator plus at least two
// real shard worker processes under -backend all, so every preset's
// sets_digest is compared across all backends including distributed.
func TestCIDistributedCompareJob(t *testing.T) {
	names := scenario.BackendNames()
	distributed := false
	for _, n := range names {
		if n == "distributed" {
			distributed = true
		}
	}
	if !distributed {
		t.Fatalf("resolver registry %v lost the distributed backend; the CI job would gate nothing", names)
	}

	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Skipf("ci.yml not readable: %v", err)
	}
	text := string(data)
	idx := strings.Index(text, "distributed-compare:")
	if idx < 0 {
		t.Fatal("ci.yml has no distributed-compare job")
	}
	job := text[idx:]
	if end := strings.Index(job, "\n  scenario-merge:"); end >= 0 {
		job = job[:end]
	}
	for _, want := range []string{
		"-run all", "-quick", "-backend all", "-shard-workers 2",
	} {
		if !strings.Contains(job, want) {
			t.Errorf("distributed-compare job missing %q", want)
		}
	}
}

// TestDivergenceMessage: a cross-backend mismatch names both backends, both
// full digests, and the first partition whose alias sets differ — the parts a
// CI failure needs to be actionable.
func TestDivergenceMessage(t *testing.T) {
	ref := &scenario.Result{
		Backend: "batch", SetsDigest: "aaa111",
		PartitionDigests: []scenario.PartitionDigest{
			{Partition: "ssh", Digest: "s1"},
			{Partition: "union-v6", Digest: "u1"},
		},
	}
	res := &scenario.Result{
		Backend: "sharded", SetsDigest: "bbb222",
		PartitionDigests: []scenario.PartitionDigest{
			{Partition: "ssh", Digest: "s1"},
			{Partition: "union-v6", Digest: "u2"},
		},
	}
	msg := divergence(ref, res)
	for _, want := range []string{"batch", "sharded", "aaa111", "bbb222",
		"first differing partition: union-v6"} {
		if !strings.Contains(msg, want) {
			t.Errorf("divergence message missing %q:\n%s", want, msg)
		}
	}
	// Legacy reports without breakdowns still get both digests.
	res.PartitionDigests = nil
	msg = divergence(ref, res)
	if strings.Contains(msg, "first differing partition") {
		t.Errorf("breakdown-less divergence should not name a partition:\n%s", msg)
	}
	for _, want := range []string{"aaa111", "bbb222"} {
		if !strings.Contains(msg, want) {
			t.Errorf("divergence message missing %q:\n%s", want, msg)
		}
	}
}

// TestBadArguments covers the error paths.
func TestBadArguments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "no-such-world", "-scale", "0.05"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-run", "baseline", "-epochs", "0", "-scale", "0.05"}, &stdout, &stderr); err != nil {
		t.Fatalf("-epochs 0 (single snapshot) should run normally, got %v", err)
	}
	if err := run([]string{"-run", "baseline", "-sweep", "loss", "-scale", "0.05"}, &stdout, &stderr); err == nil {
		t.Fatal("malformed -sweep accepted")
	}
	if err := run([]string{"-run", "baseline", "-sweep", "loss=x", "-scale", "0.05"}, &stdout, &stderr); err == nil {
		t.Fatal("non-numeric -sweep value accepted")
	}
	if err := run(nil, &stdout, &stderr); !errors.Is(err, errBadFlags) {
		t.Fatalf("no mode: want errBadFlags, got %v", err)
	}
	if err := run([]string{"-merge", filepath.Join(t.TempDir(), "nope-*.json")}, &stdout, &stderr); err == nil {
		t.Fatal("empty merge glob accepted")
	}
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: want flag.ErrHelp, got %v", err)
	}
}

// TestLogResumeCLI drives the durable-run flags end to end: a full logged run
// and a -resume of its (already complete) log directory must emit the exact
// same report bytes, every epoch replayed from disk through the digest gates.
func TestLogResumeCLI(t *testing.T) {
	dir := t.TempDir()
	logDir := filepath.Join(dir, "RUN")
	refPath := filepath.Join(dir, "REF.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "churn-storm", "-epochs", "2", "-scale", "0.05",
		"-workers", "32", "-log", logDir, "-json", refPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("logged run: %v (stderr: %s)", err, stderr.String())
	}
	for _, f := range []string{"MANIFEST.json", "ssh.obslog", "bgp.obslog", "snmpv3.obslog",
		filepath.Join("epochs", "epoch-0000.json"), filepath.Join("epochs", "epoch-0001.json")} {
		if _, err := os.Stat(filepath.Join(logDir, f)); err != nil {
			t.Errorf("durable run left no %s: %v", f, err)
		}
	}

	resumedPath := filepath.Join(dir, "RESUMED.json")
	stdout.Reset()
	stderr.Reset()
	err = run([]string{"-resume", logDir, "-json", resumedPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("resume: %v (stderr: %s)", err, stderr.String())
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(resumedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, resumed) {
		t.Errorf("resumed report differs from the original run's:\n%s\n---\n%s", ref, resumed)
	}
}

// TestLogResumeFlagCombos pins the single-run contract of the durable flags:
// a log records exactly one run, and -resume takes its identity from the
// manifest, so every multi-run or conflicting combination is rejected before
// any world is built.
func TestLogResumeFlagCombos(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"-run", "all", "-quick", "-log", filepath.Join(dir, "a")},
		{"-run", "baseline", "-quick", "-backend", "all", "-log", filepath.Join(dir, "b")},
		{"-run", "baseline", "-quick", "-sweep", "loss=1,5", "-log", filepath.Join(dir, "c")},
		{"-merge", "x*.json", "-log", filepath.Join(dir, "d")},
		{"-run", "baseline", "-quick", "-log", filepath.Join(dir, "e"), "-resume", filepath.Join(dir, "e")},
		{"-resume", filepath.Join(dir, "f"), "-run", "baseline"},
		{"-resume", filepath.Join(dir, "g"), "-sweep", "loss=1,5"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted, want rejection", args)
		}
	}
	// A -resume of a directory with no log fails cleanly too.
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-resume", filepath.Join(dir, "nothing-here")}, &stdout, &stderr); err == nil {
		t.Error("-resume of a directory without a log accepted")
	}
}

// TestWriteJSONAtomic pins the report writer's crash contract: a failed write
// must leave no partial file and no temp debris — the write goes through a
// temp file and a rename, never through the destination path directly.
func TestWriteJSONAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	var stdout, stderr bytes.Buffer
	if err := writeJSON([]byte("{\"ok\":true}\n"), path, "test", &stdout, &stderr); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "{\"ok\":true}\n" {
		t.Fatalf("wrote %q, %v", data, err)
	}

	// Block the destination with a non-empty directory: the final rename
	// fails, and the failure must leave the directory intact and no
	// temp files behind.
	blocked := filepath.Join(dir, "blocked.json")
	if err := os.MkdirAll(filepath.Join(blocked, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeJSON([]byte("{}\n"), blocked, "test", &stdout, &stderr); err == nil {
		t.Fatal("writeJSON over a non-empty directory succeeded")
	}
	if _, err := os.Stat(filepath.Join(blocked, "sub")); err != nil {
		t.Errorf("failed write destroyed the obstruction: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "out.json" && e.Name() != "blocked.json" {
			t.Errorf("failed write left debris %q", e.Name())
		}
	}
}

// TestCICrashResumeJob pins the CI kill-and-resume gate: the workflow must
// run the harness script, which builds a real binary, SIGKILLs the durable
// run mid-flight, resumes it, and diffs every sets digest against the
// uninterrupted reference.
func TestCICrashResumeJob(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Skipf("ci.yml not readable: %v", err)
	}
	text := string(data)
	idx := strings.Index(text, "crash-resume:")
	if idx < 0 {
		t.Fatal("ci.yml has no crash-resume job")
	}
	job := text[idx:]
	for _, want := range []string{"scripts/crash-resume.sh", "RESUMED.json", "MANIFEST.json"} {
		if !strings.Contains(job, want) {
			t.Errorf("crash-resume job missing %q", want)
		}
	}
	script, err := os.ReadFile(filepath.Join("..", "..", "scripts", "crash-resume.sh"))
	if err != nil {
		t.Fatalf("crash-resume job's script missing: %v", err)
	}
	for _, want := range []string{
		"go build -o", "-run churn-storm -epochs 5 -quick",
		"-log", "kill -9", "-resume", "sets_digest", "diff",
	} {
		if !strings.Contains(string(script), want) {
			t.Errorf("crash-resume.sh missing %q", want)
		}
	}
}

// TestCIBoundedMemoryJob pins the CI out-of-core memory gate: the workflow
// must run the harness script, which builds a real binary, runs the streamed
// collection under a GOMEMLIMIT the in-RAM path cannot satisfy, diffs the
// sets digest against an unrestricted in-RAM run, and drives the stream-only
// megascale-x100 world end to end.
func TestCIBoundedMemoryJob(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Skipf("ci.yml not readable: %v", err)
	}
	text := string(data)
	idx := strings.Index(text, "bounded-memory:")
	if idx < 0 {
		t.Fatal("ci.yml has no bounded-memory job")
	}
	job := text[idx:]
	if end := strings.Index(job, "\n  log-diff:"); end >= 0 {
		job = job[:end]
	}
	for _, want := range []string{"scripts/bounded-memory.sh", "UNRESTRICTED.json", "STREAMED.json"} {
		if !strings.Contains(job, want) {
			t.Errorf("bounded-memory job missing %q", want)
		}
	}
	script, err := os.ReadFile(filepath.Join("..", "..", "scripts", "bounded-memory.sh"))
	if err != nil {
		t.Fatalf("bounded-memory job's script missing: %v", err)
	}
	for _, want := range []string{
		"go build -o", "GOMEMLIMIT", "-run megascale-x10 -quick -stream-collect",
		"-backend streaming", "-run megascale-x100 -quick -stream-collect",
		"sets_digest", "diff",
	} {
		if !strings.Contains(string(script), want) {
			t.Errorf("bounded-memory.sh missing %q", want)
		}
	}
	// The scenario matrix's stream-only leg must carry its flag, and the run
	// step must thread it through.
	if !strings.Contains(text, "flags: -stream-collect") {
		t.Error("ci.yml scenario matrix does not give megascale-x100 its -stream-collect flag")
	}
	if !strings.Contains(text, "${{ matrix.flags }}") {
		t.Error("ci.yml scenario matrix run step does not thread matrix.flags")
	}
}

// TestStreamCollectFlagCombos pins the out-of-core CLI contract: -mem-budget
// is meaningless without -stream-collect, and a stream-only preset refuses an
// in-RAM run with an error naming the missing flag.
func TestStreamCollectFlagCombos(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "baseline", "-mem-budget", "1048576"}, &stdout, &stderr); !errors.Is(err, errBadFlags) {
		t.Fatalf("-mem-budget without -stream-collect: want errBadFlags, got %v", err)
	}
	if !strings.Contains(stderr.String(), "-stream-collect") {
		t.Errorf("rejection does not name the missing flag: %s", stderr.String())
	}
	err := run([]string{"-run", "megascale-x100", "-scale", "0.04", "-workers", "16"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("in-RAM megascale-x100 accepted")
	}
	if !strings.Contains(err.Error(), "-stream-collect") {
		t.Fatalf("stream-only refusal does not name -stream-collect: %v", err)
	}
}

// TestRunAllSkipsStreamOnly: a catalog run without -stream-collect must skip
// the stream-only worlds loudly and still succeed, keeping the CI jobs that
// sweep the catalog in-RAM (backend-compare, distributed-compare) green; with
// the flag, the same invocation covers them.
func TestRunAllSkipsStreamOnly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "all", "-scale", "0.04", "-workers", "16", "-json", "-"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run all: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "skipping megascale-x100") {
		t.Errorf("catalog run did not announce the stream-only skip:\n%s", stderr.String())
	}
	rep, err := scenario.ParseReport(stdout.Bytes())
	if err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	for _, r := range rep.Scenarios {
		if r.Scenario == "megascale-x100" {
			t.Fatal("stream-only preset ran without -stream-collect")
		}
	}
	if want := len(scenario.Names()) - 1; len(rep.Scenarios) != want {
		t.Errorf("catalog run covered %d presets, want %d", len(rep.Scenarios), want)
	}

	stdout.Reset()
	stderr.Reset()
	err = run([]string{"-run", "all", "-scale", "0.04", "-workers", "16", "-stream-collect", "-json", "-"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run all -stream-collect: %v (stderr: %s)", err, stderr.String())
	}
	rep, err = scenario.ParseReport(stdout.Bytes())
	if err != nil {
		t.Fatalf("streamed report does not parse: %v", err)
	}
	if len(rep.Scenarios) != len(scenario.Names()) {
		t.Errorf("streamed catalog run covered %d presets, want %d", len(rep.Scenarios), len(scenario.Names()))
	}
}

// TestCILogDiffJob pins the CI byte-determinism gate: two independent durable
// runs, every log shard and the manifest compared byte for byte, the log
// uploaded as an artifact.
func TestCILogDiffJob(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Skipf("ci.yml not readable: %v", err)
	}
	text := string(data)
	idx := strings.Index(text, "log-diff:")
	if idx < 0 {
		t.Fatal("ci.yml has no log-diff job")
	}
	job := text[idx:]
	for _, want := range []string{
		"-run baseline -quick -log LOG-a", "-run baseline -quick -log LOG-b",
		"cmp", "ssh.obslog", "bgp.obslog", "snmpv3.obslog", "MANIFEST.json",
		"upload-artifact",
	} {
		if !strings.Contains(job, want) {
			t.Errorf("log-diff job missing %q", want)
		}
	}
}
