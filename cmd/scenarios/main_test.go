package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aliaslimit/internal/scenario"
)

// TestRunList checks that every catalog preset appears in -list.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -list: %v (stderr: %s)", err, stderr.String())
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing preset %q:\n%s", name, stdout.String())
		}
	}
	if n := len(scenario.Names()); n < 8 {
		t.Fatalf("catalog lists %d presets, want >= 8", n)
	}
}

// TestRunScenarioText runs one tiny scenario and checks the scorecard.
func TestRunScenarioText(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "baseline", "-scale", "0.05", "-workers", "32"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	for _, want := range []string{"scenario baseline", "precision", "SSH", "midar:"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("scorecard missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunScenarioJSONDeterministic runs one scenario twice and requires
// byte-identical reports — the SCENARIOS.json contract.
func TestRunScenarioJSONDeterministic(t *testing.T) {
	emit := func() string {
		var stdout, stderr bytes.Buffer
		err := run([]string{"-run", "lossy", "-scale", "0.05", "-workers", "32", "-json", "-"},
			&stdout, &stderr)
		if err != nil {
			t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
		}
		return stdout.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatalf("reports differ between identical runs:\n%s\n---\n%s", a, b)
	}
	rep, err := scenario.ParseReport([]byte(a))
	if err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Scenario != "lossy" {
		t.Fatalf("unexpected report shape: %+v", rep.Scenarios)
	}
	if len(rep.Scenarios[0].Protocols) != 3 {
		t.Fatalf("want 3 protocol scores, got %d", len(rep.Scenarios[0].Protocols))
	}
}

// TestMerge merges two single-scenario files and checks canonical order.
func TestMerge(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"lossy", "baseline"} {
		var stdout, stderr bytes.Buffer
		err := run([]string{"-run", name, "-scale", "0.05", "-workers", "32",
			"-json", filepath.Join(dir, "SCENARIOS-"+name+".json")}, &stdout, &stderr)
		if err != nil {
			t.Fatalf("run %s: %v", name, err)
		}
	}
	out := filepath.Join(dir, "SCENARIOS.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-merge", filepath.Join(dir, "SCENARIOS-*.json"), "-json", out},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("merge: %v (stderr: %s)", err, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("merged %d scenarios, want 2", len(rep.Scenarios))
	}
	if rep.Scenarios[0].Scenario != "baseline" || rep.Scenarios[1].Scenario != "lossy" {
		t.Fatalf("merge order not canonical: %s, %s",
			rep.Scenarios[0].Scenario, rep.Scenarios[1].Scenario)
	}
}

// TestCIMatrixCoversCatalog pins the GitHub Actions scenario matrix to the
// preset catalog: adding a preset without adding it to the CI matrix (or
// vice versa) fails here instead of silently shrinking coverage.
func TestCIMatrixCoversCatalog(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Skipf("ci.yml not readable: %v", err)
	}
	text := string(data)
	if !strings.Contains(text, "scenario-matrix:") {
		t.Fatal("ci.yml has no scenario-matrix job")
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(text, "- "+name) {
			t.Errorf("preset %q missing from the ci.yml scenario matrix", name)
		}
	}
}

// TestBadArguments covers the error paths.
func TestBadArguments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "no-such-world", "-scale", "0.05"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run(nil, &stdout, &stderr); !errors.Is(err, errBadFlags) {
		t.Fatalf("no mode: want errBadFlags, got %v", err)
	}
	if err := run([]string{"-merge", filepath.Join(t.TempDir(), "nope-*.json")}, &stdout, &stderr); err == nil {
		t.Fatal("empty merge glob accepted")
	}
	if err := run([]string{"-h"}, &stdout, &stderr); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: want flag.ErrHelp, got %v", err)
	}
}
