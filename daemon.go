package aliaslimit

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"aliaslimit/internal/aliasd"
)

// Resolution as a service. The library above runs one measurement to
// completion and analyses it; the aliasd layer keeps the resolver running:
// an HTTP daemon with independent per-tenant sessions that ingest NDJSON
// observation streams into live grouping structures and answer alias-set
// queries online, with explicit backpressure (429 + Retry-After) instead of
// silent drops and a drain-on-shutdown guarantee for accepted observations.
// See internal/aliasd for the architecture and docs/API.md for the wire
// protocol.

// AliasdConfig tunes the resolution daemon (session capacity, ingest queue
// depth, request timeout, world-scale ceiling).
type AliasdConfig = aliasd.Config

// AliasdServer is the daemon: a session registry plus its HTTP API. Mount
// Handler on any http.Server; call Shutdown to drain.
type AliasdServer = aliasd.Server

// AliasdLoadOptions and AliasdLoadReport parameterise and report the
// daemon's load-test harness (cmd/aliasd -loadtest).
type (
	AliasdLoadOptions = aliasd.LoadOptions
	AliasdLoadReport  = aliasd.LoadReport
)

// NewAliasd builds a resolution daemon with no sessions.
func NewAliasd(cfg AliasdConfig) *AliasdServer { return aliasd.NewServer(cfg) }

// RunShardWorkerIfRequested turns the current process into a distributed
// shard worker — a loopback resolution daemon speaking the binary resolve
// protocol — when the coordinator's environment marker is set, and never
// returns in that case. Binaries that may host the "distributed" backend
// call it first thing in main; in every other invocation it is a no-op.
func RunShardWorkerIfRequested() { aliasd.RunWorkerIfRequested() }

// RunAliasdLoadTest builds a measured corpus world, starts a daemon on a
// loopback listener, and drives it with concurrent tenants, reporting
// latency percentiles in the bench-gate JSON shape. Every tenant's final
// sets_digest must equal the batch backend's digest over the same corpus.
func RunAliasdLoadTest(cfg AliasdConfig, opts AliasdLoadOptions) (*AliasdLoadReport, error) {
	return aliasd.RunLoadTest(cfg, opts)
}

// ServeAliasd runs the resolution daemon on addr ("127.0.0.1:0" picks a free
// port) until ctx is cancelled, then drains every session before returning:
// accepted observations are applied, not dropped. If ready is non-nil it
// receives the bound address once the daemon is listening.
func ServeAliasd(ctx context.Context, addr string, cfg AliasdConfig, ready chan<- string) error {
	srv := aliasd.NewServer(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("aliaslimit: aliasd listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr().String()
	}
	select {
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			hs.Close()
			return fmt.Errorf("aliaslimit: aliasd drain: %w", err)
		}
		return hs.Shutdown(drainCtx)
	case err := <-errc:
		return fmt.Errorf("aliaslimit: aliasd serve: %w", err)
	}
}
