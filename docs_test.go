package aliaslimit_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// minPackageDocChars is what "non-trivial" means for a package comment: a
// one-line stub passes go vet but tells a reader nothing about where the
// package sits in the pipeline, so the floor is set well above one line.
const minPackageDocChars = 120

// TestPackageDocsPresent requires every package in this module — the root
// facade, every internal/* package, and every command — to carry a
// substantive package comment. New packages start documented or fail here.
func TestPackageDocsPresent(t *testing.T) {
	dirs := []string{"."}
	for _, pattern := range []string{"internal/*", "cmd/*"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			if info, err := os.Stat(m); err == nil && info.IsDir() {
				dirs = append(dirs, m)
			}
		}
	}
	if len(dirs) < 20 {
		t.Fatalf("only found %d package dirs, glob is broken", len(dirs))
	}

	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		var best string
		for _, file := range files {
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			if f.Doc != nil && len(f.Doc.Text()) > len(best) {
				best = f.Doc.Text()
			}
		}
		if best == "" {
			t.Errorf("package %s has no package comment", dir)
			continue
		}
		if len(best) < minPackageDocChars {
			t.Errorf("package %s: package comment is %d chars, want >= %d — say what the package is and where it sits:\n%s",
				dir, len(best), minPackageDocChars, best)
		}
	}
}
