package aliaslimit_test

import (
	"fmt"
	"log"
	"strings"

	"aliaslimit"
)

// ExampleScenarioNames shows the head of the scenario catalog.
func ExampleScenarioNames() {
	fmt.Println(strings.Join(aliaslimit.ScenarioNames()[:3], ", "))
	// Output: baseline, ipv6-heavy, lossy
}

// ExampleRunScenario runs the baseline preset on a tiny world and shows the
// shape of the ground-truth scorecard.
func ExampleRunScenario() {
	res, err := aliaslimit.RunScenario("baseline", aliaslimit.ScenarioOptions{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s scored %d protocols against ground truth\n", res.Scenario, len(res.Protocols))
	// Output: baseline scored 3 protocols against ground truth
}

// ExampleRunLongitudinal runs two snapshot→churn→scan rounds over one
// persistent tiny world and shows the shape of the longitudinal scorecard:
// per-epoch scores plus the metrics only a time axis can produce.
func ExampleRunLongitudinal() {
	res, err := aliaslimit.RunLongitudinal("baseline", aliaslimit.LongitudinalOptions{
		Options: aliaslimit.ScenarioOptions{Scale: 0.05},
		Epochs:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s ran %d epochs: %d survival points, %d merge strategies\n",
		res.Scenario, len(res.Epochs), len(res.Survival), len(res.Merges))
	// Output: baseline ran 2 epochs: 2 survival points, 3 merge strategies
}

// ExampleBackendNames lists the pluggable resolver backends: three
// strategies, byte-identical alias sets.
func ExampleBackendNames() {
	fmt.Println(strings.Join(aliaslimit.BackendNames(), ", "))
	// Output: batch, streaming, sharded
}
