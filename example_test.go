package aliaslimit_test

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"

	"aliaslimit"
)

// ExampleScenarioNames shows the head of the scenario catalog.
func ExampleScenarioNames() {
	fmt.Println(strings.Join(aliaslimit.ScenarioNames()[:3], ", "))
	// Output: baseline, ipv6-heavy, lossy
}

// ExampleRunScenario runs the baseline preset on a tiny world and shows the
// shape of the ground-truth scorecard.
func ExampleRunScenario() {
	res, err := aliaslimit.RunScenario("baseline", aliaslimit.ScenarioOptions{
		Common: aliaslimit.Common{Scale: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s scored %d protocols against ground truth\n", res.Scenario, len(res.Protocols))
	// Output: baseline scored 3 protocols against ground truth
}

// ExampleRunLongitudinal runs two snapshot→churn→scan rounds over one
// persistent tiny world and shows the shape of the longitudinal scorecard:
// per-epoch scores plus the metrics only a time axis can produce.
func ExampleRunLongitudinal() {
	res, err := aliaslimit.RunLongitudinal("baseline", aliaslimit.LongitudinalOptions{
		ScenarioOptions: aliaslimit.ScenarioOptions{
			Common: aliaslimit.Common{Scale: 0.05},
		},
		Epochs: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s ran %d epochs: %d survival points, %d merge strategies\n",
		res.Scenario, len(res.Epochs), len(res.Survival), len(res.Merges))
	// Output: baseline ran 2 epochs: 2 survival points, 3 merge strategies
}

// ExampleServeAliasd runs the resolution daemon on a loopback port, streams
// three SSH observations into a tenant session, and reads the live alias
// sets back: two addresses presenting the same host key land in one set,
// the singleton is filtered out. Cancelling the context drains the daemon.
func ExampleServeAliasd() {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- aliaslimit.ServeAliasd(ctx, "127.0.0.1:0", aliaslimit.AliasdConfig{}, ready)
	}()
	base := "http://" + <-ready

	post := func(path, body string, out any) {
		resp, err := http.Post(base+path, "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				log.Fatal(err)
			}
		}
	}

	var sess struct {
		ID string `json:"id"`
	}
	post("/v1/sessions", `{"backend":"streaming"}`, &sess)

	var ingest struct {
		Accepted int `json:"accepted"`
	}
	post("/v1/ingest?session="+sess.ID, `{"addr":"192.0.2.1","proto":"SSH","digest":"hostkey-a"}
{"addr":"192.0.2.2","proto":"SSH","digest":"hostkey-a"}
{"addr":"198.51.100.9","proto":"SSH","digest":"hostkey-b"}
`, &ingest)
	post("/v1/flush?session="+sess.ID, "", nil)

	resp, err := http.Get(base + "/v1/sets?session=" + sess.ID + "&view=ssh")
	if err != nil {
		log.Fatal(err)
	}
	var sets struct {
		Sets [][]string `json:"sets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sets); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	fmt.Printf("session %s ingested %d observations; ssh alias sets: %v\n",
		sess.ID, ingest.Accepted, sets.Sets)
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	// Output: session s1 ingested 3 observations; ssh alias sets: [[192.0.2.1 192.0.2.2]]
}

// ExampleBackendNames lists the pluggable resolver backends: four
// strategies, byte-identical alias sets.
func ExampleBackendNames() {
	fmt.Println(strings.Join(aliaslimit.BackendNames(), ", "))
	// Output: batch, streaming, sharded, distributed
}
