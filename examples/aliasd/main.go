// Aliasd: run the resolution daemon in-process, stream a measured corpus
// into two tenant sessions on different resolver backends, and show that
// both converge to the same sets_digest — resolution as a service, with the
// same byte-determinism contract as the batch library.
//
//	go run ./examples/aliasd
//	go run ./examples/aliasd -scale 0.05    # tiny smoke-test world
package main

import (
	"flag"
	"fmt"
	"log"

	"aliaslimit"
)

func main() {
	scale := flag.Float64("scale", 0.1, "corpus world scale")
	flag.Parse()

	// The load-test harness is the shortest path to a full daemon round
	// trip: it builds the corpus, boots the HTTP server on a loopback port,
	// drives concurrent tenants through session create → NDJSON ingest →
	// flush → queries, and checks every tenant's final digest against the
	// batch resolver's answer for the same observations.
	rep, err := aliaslimit.RunAliasdLoadTest(aliaslimit.AliasdConfig{}, aliaslimit.AliasdLoadOptions{
		Clients:  2,
		Requests: 6,
		Batch:    300,
		Scale:    *scale,
		Seed:     7,
	})
	if err != nil {
		log.Fatalf("aliasd: %v", err)
	}

	fmt.Printf("daemon served %d tenants, %d observations each (%d ingest retries under backpressure)\n",
		rep.Clients, rep.Observations, rep.Retries)
	fmt.Printf("every tenant converged to sets_digest %s — byte-identical to the batch resolver\n\n",
		rep.SetsDigest[:16])

	fmt.Println("request latency percentiles:")
	for _, l := range rep.Latencies {
		fmt.Printf("  %-8s n=%-4d p50=%7.2fms p90=%7.2fms p99=%7.2fms\n",
			l.Class, l.Count, l.P50ms, l.P90ms, l.P99ms)
	}
}
