// Asreport: the paper's §4.3 AS-level analysis — which networks contribute
// the most alias and dual-stack sets, and how far sets spread across AS
// boundaries.
//
//	go run ./examples/asreport
package main

import (
	"fmt"
	"log"

	"aliaslimit"
)

func main() {
	study, err := aliaslimit.Run(aliaslimit.StudyOptions{
		Common: aliaslimit.Common{Seed: 2, Scale: 0.4},
	})
	if err != nil {
		log.Fatalf("asreport: %v", err)
	}

	// Table 5: cloud providers dominate the SSH column (every VM fleet is
	// an alias-set factory), ISPs dominate BGP and SNMPv3.
	for _, id := range []string{"Table 5", "Table 6"} {
		out, err := study.RenderTable(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		fmt.Println()
	}

	// Figure 5: BGP alias sets cross AS boundaries far more often than SSH
	// or SNMPv3 sets — border routers peer with neighbours and their link
	// interfaces are numbered from the neighbour's space.
	out, err := study.RenderFigure("Figure 5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	fmt.Println()

	// Figure 6: how concentrated are the sets per AS?
	out, err = study.RenderFigure("Figure 6")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
