// Dualstack: the paper's second headline — identifying IPv4/IPv6 pairs of
// the same machine by matching application-layer identifiers across address
// families, at 30x the yield of the SNMPv3-only baseline.
//
//	go run ./examples/dualstack
package main

import (
	"fmt"
	"log"
	"net/netip"

	"aliaslimit"
)

func main() {
	study, err := aliaslimit.Run(aliaslimit.StudyOptions{
		Common: aliaslimit.Common{Seed: 21, Scale: 0.15},
	})
	if err != nil {
		log.Fatalf("dualstack: %v", err)
	}

	sets := study.DualStackSets()
	fmt.Printf("identified %d dual-stack sets\n\n", len(sets))

	// Most dual-stack sets pair exactly one IPv4 with one IPv6 address (a
	// cloud VM with both families configured); a minority are routers with
	// several addresses of each family.
	pairs, larger := 0, 0
	var biggest []netip.Addr
	for _, s := range sets {
		if len(s) == 2 {
			pairs++
		} else {
			larger++
			if len(s) > len(biggest) {
				biggest = s
			}
		}
	}
	fmt.Printf("1×IPv4 + 1×IPv6 pairs: %d (%.0f%%)\n", pairs, pct(pairs, len(sets)))
	fmt.Printf("larger dual-stack sets: %d\n", larger)
	if biggest != nil {
		fmt.Printf("largest dual-stack set (%d addrs): %v\n", len(biggest), biggest)
	}

	// How much of the IPv6 world has a known IPv4 counterpart?
	v6InSets := 0
	for _, s := range sets {
		for _, a := range s {
			if a.Is6() && !a.Is4In6() {
				v6InSets++
			}
		}
	}
	stats := study.Stats()
	fmt.Printf("\n%d of %d known IPv6 addresses (%.0f%%) have an IPv4 counterpart\n",
		v6InSets, stats.V6Addresses, pct(v6InSets, stats.V6Addresses))

	out, err := study.RenderTable("Table 4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out)
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
