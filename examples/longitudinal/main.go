// Longitudinal: run several snapshot→churn→scan rounds over one persistent
// synthetic Internet and watch identifier persistence, alias-set survival,
// and the longitudinal merge strategies under churn.
//
//	go run ./examples/longitudinal
//	go run ./examples/longitudinal -scenario churn-storm -epochs 5
//	go run ./examples/longitudinal -scale 0.05 -epochs 2   # smoke-test size
package main

import (
	"flag"
	"fmt"
	"log"

	"aliaslimit"
)

func main() {
	scenario := flag.String("scenario", "churn-storm", "preset to run longitudinally")
	epochs := flag.Int("epochs", 3, "snapshot rounds over the persistent world")
	scale := flag.Float64("scale", 0.1, "world scale")
	flag.Parse()

	res, err := aliaslimit.RunLongitudinal(*scenario, aliaslimit.LongitudinalOptions{
		ScenarioOptions: aliaslimit.ScenarioOptions{
			Common: aliaslimit.Common{Seed: 7, Scale: *scale},
		},
		Epochs: *epochs,
	})
	if err != nil {
		log.Fatalf("longitudinal: %v", err)
	}

	fmt.Printf("%s over %d epochs (scale %.2f)\n\n", res.Scenario, len(res.Epochs), res.Scale)
	for _, e := range res.Epochs {
		fmt.Printf("epoch %d: %d devices, %d v4 union sets, churned=%d rebooted=%d\n",
			e.Epoch, e.Devices, e.UnionSetsV4, e.Renumbered+e.IntraChurned, e.Rebooted)
	}

	fmt.Println("\nidentifier persistence across epoch transitions:")
	for _, pp := range res.Persistence {
		fmt.Printf("  %-7s mean %.4f  %v\n", pp.Protocol, pp.Mean, pp.Rates)
	}

	fmt.Printf("\nalias-set survival (of %d epoch-0 sets):", res.BaselineSets)
	for _, sp := range res.Survival {
		fmt.Printf(" %.3f", sp.Rate)
	}
	fmt.Println()

	fmt.Println("\nlongitudinal merge strategies vs final ground truth:")
	for _, m := range res.Merges {
		fmt.Printf("  %-14s precision=%.4f recall=%.4f f1=%.4f sets=%d\n",
			m.Strategy, m.Precision, m.Recall, m.F1, m.Sets)
	}
}
