// Quickstart: build a small synthetic Internet, measure it from both
// vantage points, and print the paper's headline results.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -scale 0.05    # tiny smoke-test world
package main

import (
	"flag"
	"fmt"
	"log"

	"aliaslimit"
)

func main() {
	// Scale 0.1 builds a ~6k-address world in well under a second; the flag
	// lets the examples smoke test run an even tinier one.
	scale := flag.Float64("scale", 0.1, "world scale")
	flag.Parse()
	study, err := aliaslimit.Run(aliaslimit.StudyOptions{
		Common: aliaslimit.Common{Seed: 7, Scale: *scale},
	})
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	stats := study.Stats()
	fmt.Printf("measured %d devices: %d IPv4 + %d IPv6 responsive addresses\n",
		stats.Devices, stats.V4Addresses, stats.V6Addresses)
	fmt.Printf("union alias sets: %d IPv4, %d IPv6; dual-stack sets: %d\n\n",
		stats.UnionAliasSetsV4, stats.UnionAliasSetsV6, stats.DualStackSets)

	// The per-protocol view: SSH dominates, BGP is small but router-heavy,
	// SNMPv3 is the prior-work baseline.
	for _, p := range []aliaslimit.Protocol{aliaslimit.SSH, aliaslimit.BGP, aliaslimit.SNMPv3} {
		sets, err := study.AliasSets(p, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s IPv4 alias sets: %d\n", p, len(sets))
	}

	// Show a few concrete alias sets: addresses inferred to sit on one
	// device because they presented the same identifier.
	fmt.Println("\nexample alias sets (union):")
	for i, set := range study.UnionAliasSets(true) {
		if i >= 5 {
			break
		}
		fmt.Printf("  device #%d: %v\n", i+1, set)
	}

	// And the summary table the paper leads with.
	out, err := study.RenderTable("Table 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out)
}
