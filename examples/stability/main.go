// Stability: the paper's future-work questions, answered on the simulator —
// how stable are SSH identifiers over weeks of address churn, how much does
// a second (or fourth) vantage point buy, and what do the classical
// techniques still contribute.
//
//	go run ./examples/stability
package main

import (
	"fmt"
	"log"
	"time"

	"aliaslimit/internal/experiments"
	"aliaslimit/internal/speedtrap"
	"aliaslimit/internal/topo"
)

func main() {
	cfg := topo.Default()
	cfg.Seed = 13
	cfg.Scale = 0.2

	// Identifier stability: scan, wait three simulated weeks with 5% of
	// dynamic addresses reassigned, rescan, compare per-address identifiers.
	world, err := topo.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := experiments.Stability(world, 21*24*time.Hour, 0.05, experiments.ScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSH identifier stability over %v (5%% address churn):\n", res.Gap)
	fmt.Printf("  persisted: %d   changed: %d   gone: %d   new: %d\n",
		res.Persisted, res.Changed, res.Gone, res.New)
	fmt.Printf("  persistence rate: %.1f%%\n\n", 100*res.PersistenceRate())

	// Multi-vantage coverage (a fresh world: the stability run above moved
	// the clock and churned addresses).
	world2, err := topo.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := experiments.MultiVantage(world2, 4, experiments.ScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderMultiVantage(rows))
	fmt.Println()

	// IPv6: how much can Speedtrap (fragment-ID) verify of what SSH finds?
	env, err := experiments.BuildEnv(experiments.Options{Topo: cfg})
	if err != nil {
		log.Fatal(err)
	}
	sv := env.ValidateWithSpeedtrap(40, speedtrap.Config{})
	fmt.Printf("Speedtrap verification of %d IPv6 SSH sets: confirmed=%d split=%d unverifiable=%d\n",
		sv.Sampled, sv.Confirmed, sv.Split, sv.Unverifiable)

	// And the DNS PTR baseline for dual-stack discovery.
	fmt.Println()
	fmt.Print(experiments.RenderPTRComparison(env.ComparePTRDualStack()))
}
