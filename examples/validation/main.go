// Validation: the paper's §2.6 workflow — check the new identifiers against
// each other and against the classical MIDAR (IPID) technique.
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"log"

	"aliaslimit"
)

func main() {
	study, err := aliaslimit.Run(aliaslimit.StudyOptions{
		Common: aliaslimit.Common{Seed: 5, Scale: 0.3},
	})
	if err != nil {
		log.Fatalf("validation: %v", err)
	}

	// Cross-protocol validation: for addresses responsive to two protocols,
	// both techniques should partition them identically.
	fmt.Println("cross-protocol validation (exact set matches):")
	pairs := [][2]aliaslimit.Protocol{
		{aliaslimit.SSH, aliaslimit.BGP},
		{aliaslimit.SSH, aliaslimit.SNMPv3},
		{aliaslimit.BGP, aliaslimit.SNMPv3},
	}
	for _, pr := range pairs {
		sample, agree, disagree, err := study.Validation(pr[0], pr[1])
		if err != nil {
			log.Fatal(err)
		}
		rate := 0.0
		if sample > 0 {
			rate = 100 * float64(agree) / float64(sample)
		}
		fmt.Printf("  %-6s vs %-7s sample=%-4d agree=%-4d disagree=%-3d (%.0f%%)\n",
			pr[0], pr[1], sample, agree, disagree, rate)
	}

	// MIDAR verification of sampled SSH sets: most sets are unverifiable
	// because modern devices no longer expose a usable shared IPID counter —
	// the very gap the paper's technique fills.
	unverifiable, confirmed, split := study.MIDARValidation(60)
	total := unverifiable + confirmed + split
	fmt.Printf("\nMIDAR verification of %d sampled SSH sets:\n", total)
	fmt.Printf("  unverifiable (no usable IPID counters): %d\n", unverifiable)
	fmt.Printf("  confirmed: %d\n", confirmed)
	fmt.Printf("  split (MIDAR disagrees): %d\n", split)
	if v := confirmed + split; v > 0 {
		fmt.Printf("  agreement over verifiable sets: %.0f%%\n", 100*float64(confirmed)/float64(v))
	}

	out, err := study.RenderTable("Table 2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out)
}
