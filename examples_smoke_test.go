package aliaslimit_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The examples are standalone main packages, so nothing exercises them in a
// plain test run and they could rot silently. This smoke test compiles every
// examples/* program and runs the quickstart end-to-end at a tiny scale.

// goTool locates the go binary or skips the test (the suite must also pass
// in environments that run a prebuilt test binary without a toolchain).
func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available:", err)
	}
	return path
}

// exampleDirs lists the example program directories.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no example programs found")
	}
	return dirs
}

// TestExamplesCompile builds every example program.
func TestExamplesCompile(t *testing.T) {
	gobin := goTool(t)
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			cmd := exec.Command(gobin, "build", "-o", os.DevNull, "./examples/"+dir)
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("building examples/%s: %v\n%s", dir, err, out)
			}
		})
	}
}

// TestQuickstartRuns executes the quickstart example at a tiny scale and
// checks it prints the headline lines.
func TestQuickstartRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	gobin := goTool(t)
	cmd := exec.Command(gobin, "run", "./examples/quickstart", "-scale", "0.05")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("running quickstart: %v\n%s", err, out)
	}
	for _, want := range []string{"measured", "union alias sets", "Table 3"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("quickstart output missing %q:\n%s", want, out)
		}
	}
}

// TestLongitudinalExampleRuns executes the longitudinal example at a tiny
// scale with two epochs and checks the multi-epoch headlines.
func TestLongitudinalExampleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	gobin := goTool(t)
	cmd := exec.Command(gobin, "run", "./examples/longitudinal",
		"-scale", "0.05", "-epochs", "2", "-scenario", "baseline")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("running longitudinal example: %v\n%s", err, out)
	}
	for _, want := range []string{"over 2 epochs", "identifier persistence", "alias-set survival", "decay-weighted"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("longitudinal example output missing %q:\n%s", want, out)
		}
	}
}

// TestExamplesAreMainPackages guards the directory layout the smoke test
// relies on: every examples/* dir holds exactly one main package file set.
func TestExamplesAreMainPackages(t *testing.T) {
	for _, dir := range exampleDirs(t) {
		matches, err := filepath.Glob(filepath.Join("examples", dir, "*.go"))
		if err != nil || len(matches) == 0 {
			t.Errorf("examples/%s has no Go files (err=%v)", dir, err)
		}
	}
}
