module aliaslimit

go 1.22
