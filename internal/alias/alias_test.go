package alias

import (
	"fmt"
	"net/netip"
	"testing"
	"testing/quick"

	"aliaslimit/internal/ident"
)

func a4(t testing.TB, s string) netip.Addr {
	t.Helper()
	return netip.MustParseAddr(s)
}

// fakeID builds a deterministic identifier for testing.
func fakeID(proto ident.Protocol, label string) ident.Identifier {
	return ident.Identifier{Proto: proto, Digest: label}
}

func obs(t testing.TB, addr string, proto ident.Protocol, label string) Observation {
	t.Helper()
	return Observation{Addr: netip.MustParseAddr(addr), ID: fakeID(proto, label)}
}

func TestNewSetSortsAndDedups(t *testing.T) {
	s := NewSet(
		a4(t, "10.0.0.3"), a4(t, "10.0.0.1"), a4(t, "10.0.0.3"), a4(t, "10.0.0.2"),
	)
	if s.Size() != 3 {
		t.Fatalf("size = %d, want 3", s.Size())
	}
	if s.Signature() != "10.0.0.1,10.0.0.2,10.0.0.3" {
		t.Errorf("signature = %q", s.Signature())
	}
	if !s.Contains(a4(t, "10.0.0.2")) || s.Contains(a4(t, "10.0.0.9")) {
		t.Error("Contains misbehaves")
	}
}

func TestSetFamilies(t *testing.T) {
	s := NewSet(a4(t, "10.0.0.1"), a4(t, "2001:db8::1"), a4(t, "10.0.0.2"))
	if s.V4Count() != 2 || s.V6Count() != 1 {
		t.Errorf("v4=%d v6=%d", s.V4Count(), s.V6Count())
	}
	if !s.IsDualStack() {
		t.Error("IsDualStack = false")
	}
	if NewSet(a4(t, "10.0.0.1")).IsDualStack() {
		t.Error("single-family set claims dual-stack")
	}
}

func TestGroupByIdentifier(t *testing.T) {
	in := []Observation{
		obs(t, "10.0.0.1", ident.SSH, "A"),
		obs(t, "10.0.0.2", ident.SSH, "A"),
		obs(t, "10.0.0.3", ident.SSH, "B"),
		obs(t, "10.0.0.2", ident.SSH, "A"), // duplicate observation
		obs(t, "2001:db8::5", ident.SSH, "A"),
	}
	sets := Group(in)
	if len(sets) != 2 {
		t.Fatalf("groups = %d, want 2", len(sets))
	}
	var big Set
	for _, s := range sets {
		if s.Size() == 3 {
			big = s
		}
	}
	if big.Size() != 3 || !big.IsDualStack() {
		t.Errorf("identifier-A set wrong: %v", big)
	}

	ns := NonSingleton(sets)
	if len(ns) != 1 {
		t.Errorf("non-singleton = %d, want 1", len(ns))
	}
	ds := DualStack(sets)
	if len(ds) != 1 {
		t.Errorf("dual-stack = %d, want 1", len(ds))
	}
}

func TestGroupSeparatesProtocols(t *testing.T) {
	// Same digest under different protocols must not merge.
	in := []Observation{
		obs(t, "10.0.0.1", ident.SSH, "X"),
		obs(t, "10.0.0.2", ident.BGP, "X"),
	}
	if sets := Group(in); len(sets) != 2 {
		t.Errorf("protocol separation broken: %d sets", len(sets))
	}
}

func TestFilterFamily(t *testing.T) {
	sets := []Set{
		NewSet(a4(t, "10.0.0.1"), a4(t, "2001:db8::1")),
		NewSet(a4(t, "2001:db8::2")),
	}
	v4 := FilterFamily(sets, true)
	if len(v4) != 1 || v4[0].Size() != 1 || !v4[0].Addrs[0].Is4() {
		t.Errorf("v4 view wrong: %v", v4)
	}
	v6 := FilterFamily(sets, false)
	if len(v6) != 2 {
		t.Errorf("v6 view wrong: %v", v6)
	}
}

func TestMergeAcrossProtocols(t *testing.T) {
	ssh := []Set{
		NewSet(a4(t, "10.0.0.1"), a4(t, "10.0.0.2")),
		NewSet(a4(t, "10.0.0.9")),
	}
	snmp := []Set{
		NewSet(a4(t, "10.0.0.2"), a4(t, "10.0.0.3")),
		NewSet(a4(t, "10.0.0.7"), a4(t, "10.0.0.8")),
	}
	merged := Merge(ssh, snmp)
	// Expected components: {1,2,3}, {7,8}, {9}.
	if len(merged) != 3 {
		t.Fatalf("merged = %d sets: %v", len(merged), merged)
	}
	sigs := map[string]bool{}
	for _, s := range merged {
		sigs[s.Signature()] = true
	}
	for _, want := range []string{
		"10.0.0.1,10.0.0.2,10.0.0.3",
		"10.0.0.7,10.0.0.8",
		"10.0.0.9",
	} {
		if !sigs[want] {
			t.Errorf("missing component %q in %v", want, sigs)
		}
	}
	if got := CoveredAddrs(merged); got != 6 {
		t.Errorf("covered = %d, want 6", got)
	}
}

func TestMergeSingletonsDoNotGlue(t *testing.T) {
	// A singleton observation shared between protocols must not merge two
	// otherwise unrelated non-singleton sets.
	a := []Set{NewSet(a4(t, "10.0.0.1"), a4(t, "10.0.0.2"))}
	b := []Set{NewSet(a4(t, "10.0.0.3"), a4(t, "10.0.0.4"))}
	c := []Set{NewSet(a4(t, "10.0.0.5"))}
	merged := Merge(a, b, c)
	if len(merged) != 3 {
		t.Errorf("merged = %d sets, want 3", len(merged))
	}
}

func TestMergeIdempotentProperty(t *testing.T) {
	f := func(edges []uint8) bool {
		// Build random 2-address sets over a tiny universe, merge, merge
		// again: the partition must be stable (idempotence), and any two
		// addresses in one input set must land in one output set.
		var sets []Set
		for i := 0; i+1 < len(edges); i += 2 {
			x := netip.AddrFrom4([4]byte{10, 0, 0, edges[i]%32 + 1})
			y := netip.AddrFrom4([4]byte{10, 0, 0, edges[i+1]%32 + 1})
			sets = append(sets, NewSet(x, y))
		}
		once := Merge(sets)
		twice := Merge(once)
		if len(once) != len(twice) {
			return false
		}
		sig := map[string]bool{}
		for _, s := range once {
			sig[s.Signature()] = true
		}
		for _, s := range twice {
			if !sig[s.Signature()] {
				return false
			}
		}
		// Connectivity: each input pair must be in the same output set.
		inSame := func(x, y netip.Addr) bool {
			for _, s := range once {
				if s.Contains(x) && s.Contains(y) {
					return true
				}
			}
			return false
		}
		for _, s := range sets {
			if s.Size() == 2 && !inSame(s.Addrs[0], s.Addrs[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMergePartitionProperty(t *testing.T) {
	// The merged output must be a partition: no address in two sets, and
	// every input address present.
	f := func(edges []uint8) bool {
		var sets []Set
		for i := 0; i+1 < len(edges); i += 2 {
			x := netip.AddrFrom4([4]byte{10, 0, 0, edges[i]%64 + 1})
			y := netip.AddrFrom4([4]byte{10, 0, 0, edges[i+1]%64 + 1})
			sets = append(sets, NewSet(x, y))
		}
		in := AddrSet(sets)
		merged := Merge(sets)
		seen := map[netip.Addr]bool{}
		for _, s := range merged {
			for _, a := range s.Addrs {
				if seen[a] {
					return false // overlap
				}
				seen[a] = true
			}
		}
		return len(seen) == len(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRestrict(t *testing.T) {
	sets := []Set{
		NewSet(a4(t, "10.0.0.1"), a4(t, "10.0.0.2"), a4(t, "10.0.0.3")),
		NewSet(a4(t, "10.0.0.4"), a4(t, "10.0.0.5")),
	}
	keep := map[netip.Addr]bool{
		a4(t, "10.0.0.1"): true, a4(t, "10.0.0.2"): true, a4(t, "10.0.0.4"): true,
	}
	got := Restrict(sets, keep)
	if len(got) != 1 {
		t.Fatalf("restricted = %d sets, want 1 (the 4-5 set shrinks to a singleton)", len(got))
	}
	if got[0].Signature() != "10.0.0.1,10.0.0.2" {
		t.Errorf("restricted set = %q", got[0].Signature())
	}
}

func TestCrossValidatePerfectAgreement(t *testing.T) {
	// Two protocols observing identical device structure agree 100%.
	var aObs, bObs []Observation
	for dev := 0; dev < 10; dev++ {
		for ifc := 0; ifc < 3; ifc++ {
			addr := fmt.Sprintf("10.0.%d.%d", dev, ifc+1)
			aObs = append(aObs, obs(t, addr, ident.SSH, fmt.Sprintf("dev%d", dev)))
			bObs = append(bObs, obs(t, addr, ident.BGP, fmt.Sprintf("dev%d", dev)))
		}
	}
	aSets, bSets, res := CrossValidate(aObs, bObs)
	if len(aSets) != 10 || len(bSets) != 10 {
		t.Fatalf("sets = %d/%d, want 10/10", len(aSets), len(bSets))
	}
	if res.Sample != 10 || res.Agree != 10 || res.Disagree != 0 {
		t.Errorf("validation = %+v", res)
	}
	if res.AgreementRate() != 1.0 {
		t.Errorf("rate = %f", res.AgreementRate())
	}
}

func TestCrossValidateDetectsSplit(t *testing.T) {
	// Protocol B splits device 0 into two sets; the A set for device 0
	// then has no exact match.
	var aObs, bObs []Observation
	for ifc := 0; ifc < 4; ifc++ {
		addr := fmt.Sprintf("10.0.0.%d", ifc+1)
		aObs = append(aObs, obs(t, addr, ident.SSH, "dev0"))
		bObs = append(bObs, obs(t, addr, ident.BGP, fmt.Sprintf("half%d", ifc/2)))
	}
	_, _, res := CrossValidate(aObs, bObs)
	if res.Sample != 1 || res.Agree != 0 || res.Disagree != 1 {
		t.Errorf("validation = %+v", res)
	}
}

func TestCrossValidateRestrictsToCommon(t *testing.T) {
	// Addresses responsive to only one protocol must not count against
	// agreement.
	aObs := []Observation{
		obs(t, "10.0.0.1", ident.SSH, "d0"),
		obs(t, "10.0.0.2", ident.SSH, "d0"),
		obs(t, "10.0.0.3", ident.SSH, "d0"), // SSH-only address
	}
	bObs := []Observation{
		obs(t, "10.0.0.1", ident.BGP, "d0"),
		obs(t, "10.0.0.2", ident.BGP, "d0"),
		obs(t, "10.0.0.9", ident.BGP, "d9"), // BGP-only address
	}
	if got := CommonAddrCount(aObs, bObs); got != 2 {
		t.Errorf("common = %d, want 2", got)
	}
	_, _, res := CrossValidate(aObs, bObs)
	if res.Sample != 1 || res.Agree != 1 {
		t.Errorf("validation = %+v, want perfect agreement over the common pair", res)
	}
}

func TestMatchSetsEmpty(t *testing.T) {
	res := MatchSets(nil, nil)
	if res.Sample != 0 || res.AgreementRate() != 0 {
		t.Errorf("empty = %+v", res)
	}
}

func TestDSUInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		const n = 24
		d := newDSU(n)
		for i := 0; i+1 < len(ops); i += 2 {
			d.union(int32(ops[i]%n), int32(ops[i+1]%n))
		}
		// find is idempotent and consistent with sameSet.
		for i := int32(0); i < n; i++ {
			r := d.find(i)
			if d.find(r) != r {
				return false
			}
			if !d.sameSet(i, r) {
				return false
			}
		}
		// union transitivity spot-check.
		for i := 0; i+1 < len(ops); i += 2 {
			if !d.sameSet(int32(ops[i]%n), int32(ops[i+1]%n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
