package alias

import (
	"net/netip"
	"slices"

	"aliaslimit/internal/ident"
)

// Grouper is the merge-as-you-go grouping core shared by every resolver
// backend: observations are folded into per-identifier buckets one at a time,
// each bucket kept sorted and de-duplicated by insertion, so producing the
// final alias sets never materialises or sorts the full observation slice.
// The only remaining sort is the canonical ordering of the (far fewer) output
// sets — the invariant the megascale path relies on.
//
// A Grouper is an arena: Reset keeps the identifier table's buckets and every
// per-identifier address bucket at capacity, so a steady-state
// Reset→Observe×N→AppendSets cycle over a stable identifier population
// performs no allocations (the alloc gate in BENCH_baseline.json enforces
// ≤ 10 allocs/op). The zero value is ready to use. A Grouper is not safe for
// concurrent use; callers that share one must serialise access (resolver's
// Stream guards its grouper with a mutex, Batch pools them).
type Grouper struct {
	ids     map[ident.Identifier]int32
	buckets [][]netip.Addr
}

// NewGrouper returns an empty grouping arena.
func NewGrouper() *Grouper {
	return &Grouper{ids: make(map[ident.Identifier]int32)}
}

// Reset forgets all observations but keeps every internal buffer at capacity,
// making the arena reusable without reallocation.
func (g *Grouper) Reset() {
	clear(g.ids)
	for i := range g.buckets {
		g.buckets[i] = g.buckets[i][:0]
	}
	g.buckets = g.buckets[:0]
}

// Observe folds one observation into its identifier's bucket, creating the
// bucket on first sight. The bucket stays sorted and duplicate (identifier,
// address) observations collapse at insertion, so no post-hoc sort or dedup
// pass exists.
func (g *Grouper) Observe(o Observation) {
	gi, ok := g.ids[o.ID]
	if !ok {
		gi = int32(len(g.buckets))
		if g.ids == nil {
			g.ids = make(map[ident.Identifier]int32)
		}
		g.ids[o.ID] = gi
		if cap(g.buckets) > len(g.buckets) {
			// Reuse a retired bucket's backing array.
			g.buckets = g.buckets[:gi+1]
			g.buckets[gi] = g.buckets[gi][:0]
		} else {
			g.buckets = append(g.buckets, nil)
		}
	}
	b := g.buckets[gi]
	// Manual binary search: alias sets are small, and keeping the search
	// inline (no sort.Search closure) keeps the hot path allocation-free.
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].Less(o.Addr) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(b) && b[lo] == o.Addr {
		return // duplicate observation collapses
	}
	b = append(b, netip.Addr{})
	copy(b[lo+1:], b[lo:])
	b[lo] = o.Addr
	g.buckets[gi] = b
}

// Len returns the number of distinct identifiers observed.
func (g *Grouper) Len() int { return len(g.buckets) }

// addrCount returns the total addresses across all buckets.
func (g *Grouper) addrCount() int {
	n := 0
	for _, b := range g.buckets {
		n += len(b)
	}
	return n
}

// AppendSets appends the current alias sets to dst, copying addresses into
// backing (every produced set slices backing, which is grown at most once),
// and returns both extended slices. The appended region of dst is in
// canonical order, so for the same observations the output is byte-identical
// to Group's. Passing dst[:0] and backing[:0] from the previous cycle makes
// the steady-state path allocation-free; the caller must treat sets from
// earlier cycles as invalidated once backing is reused.
func (g *Grouper) AppendSets(dst []Set, backing []netip.Addr) ([]Set, []netip.Addr) {
	if need := g.addrCount(); cap(backing)-len(backing) < need {
		grown := make([]netip.Addr, len(backing), len(backing)+need)
		copy(grown, backing)
		backing = grown
	}
	start := len(dst)
	for _, b := range g.buckets {
		if len(b) == 0 {
			continue
		}
		off := len(backing)
		backing = append(backing, b...)
		dst = append(dst, Set{Addrs: backing[off:len(backing):len(backing)]})
	}
	sortSets(dst[start:])
	return dst, backing
}

// Sets snapshots the current alias sets into freshly allocated canonical
// slices — the finalisation every backend's Group path shares.
func (g *Grouper) Sets() []Set {
	sets, _ := g.AppendSets(make([]Set, 0, len(g.buckets)), make([]netip.Addr, 0, g.addrCount()))
	return sets
}

// GroupSorted is the retired global-sort implementation of Group: intern
// identifiers to dense ids, sort all (id, addr) pairs once, and slice sets
// out of the sorted order. It is retained as the differential reference for
// the determinism gate (TestGrouperMatchesSortReference and the resolver
// corpus tests) — the hot path is Group's merge-as-you-go Grouper, which must
// stay byte-identical to this for every input.
func GroupSorted(obs []Observation) []Set {
	ids := make(map[ident.Identifier]int32, len(obs))
	pairs := make([]groupPair, len(obs))
	for i, o := range obs {
		id, ok := ids[o.ID]
		if !ok {
			id = int32(len(ids))
			ids[o.ID] = id
		}
		pairs[i] = groupPair{id: id, addr: o.Addr}
	}
	slices.SortFunc(pairs, func(a, b groupPair) int {
		if a.id != b.id {
			if a.id < b.id {
				return -1
			}
			return 1
		}
		return a.addr.Compare(b.addr)
	})
	// Walk the sorted pairs: identifier boundaries cut sets, adjacent equal
	// pairs collapse. addrs never outgrows its initial capacity, so every
	// set's Addrs aliases one allocation.
	addrs := make([]netip.Addr, 0, len(pairs))
	sets := make([]Set, 0, len(ids))
	start := 0
	for i, p := range pairs {
		if i > 0 && pairs[i-1].id != p.id {
			sets = append(sets, Set{Addrs: addrs[start:len(addrs):len(addrs)]})
			start = len(addrs)
		}
		if len(addrs) == start || addrs[len(addrs)-1] != p.addr {
			addrs = append(addrs, p.addr)
		}
	}
	if len(pairs) > 0 {
		sets = append(sets, Set{Addrs: addrs[start:len(addrs):len(addrs)]})
	}
	sortSets(sets)
	return sets
}
