package alias

import (
	"fmt"
	"net/netip"
	"testing"

	"aliaslimit/internal/ident"
	"aliaslimit/internal/xrand"
)

// groupCorpus builds a deterministic observation corpus with duplicate
// observations, shared identifiers, and mixed families — the shapes the
// grouping core must canonicalise.
func groupCorpus(seed uint64, n int) []Observation {
	rng := xrand.NewSplitMix64(seed)
	obs := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		id := ident.Identifier{
			Proto:  ident.Protocol(rng.Intn(3)),
			Digest: fmt.Sprintf("digest-%03d", rng.Intn(n/4+1)),
		}
		var addr netip.Addr
		if rng.Intn(3) == 0 {
			addr = netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, byte(rng.Intn(7)), byte(rng.Intn(251)), byte(rng.Intn(251))})
		} else {
			addr = netip.AddrFrom4([4]byte{198, 18, byte(rng.Intn(17)), byte(rng.Intn(251))})
		}
		obs = append(obs, Observation{Addr: addr, ID: id})
	}
	// Exact duplicates must collapse.
	if len(obs) > 2 {
		obs = append(obs, obs[0], obs[1], obs[0])
	}
	return obs
}

// sameSets asserts byte-identical canonical output.
func sameSets(t *testing.T, want, got []Set, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d sets, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			t.Fatalf("%s: set %d = %s, want %s", label, i, got[i].Signature(), want[i].Signature())
		}
	}
}

// TestGrouperMatchesSortReference is the differential gate: the
// merge-as-you-go Grouper must be byte-identical to the retired global-sort
// implementation on every corpus, including observation-order permutations.
func TestGrouperMatchesSortReference(t *testing.T) {
	for _, seed := range []uint64{3, 77} {
		obs := groupCorpus(seed, 4000)
		want := GroupSorted(obs)
		sameSets(t, want, Group(obs), fmt.Sprintf("seed %d: Group", seed))

		// Reversed consumption order must not matter.
		var g Grouper
		for i := len(obs) - 1; i >= 0; i-- {
			g.Observe(obs[i])
		}
		sameSets(t, want, g.Sets(), fmt.Sprintf("seed %d: reversed", seed))

		// Arena reuse across Reset must not leak earlier state.
		g.Reset()
		for _, o := range obs {
			g.Observe(o)
		}
		sets, _ := g.AppendSets(nil, nil)
		sameSets(t, want, sets, fmt.Sprintf("seed %d: reused arena", seed))
	}
}

// TestGrouperEmpty pins the empty-input contract Group always had.
func TestGrouperEmpty(t *testing.T) {
	if sets := Group(nil); len(sets) != 0 {
		t.Fatalf("Group(nil) = %d sets", len(sets))
	}
	var g Grouper
	if sets := g.Sets(); len(sets) != 0 {
		t.Fatalf("empty grouper Sets() = %d sets", len(sets))
	}
}

// TestGrouperSteadyStateAllocs enforces the megascale hot-path budget: a
// Reset→Observe×N→AppendSets cycle over a stable identifier population must
// stay within 10 allocs/op (the BENCH_baseline.json alloc gate mirrors this
// in CI on the real measured corpus).
func TestGrouperSteadyStateAllocs(t *testing.T) {
	obs := groupCorpus(11, 6000)
	g := NewGrouper()
	var sets []Set
	var backing []netip.Addr
	cycle := func() {
		g.Reset()
		for _, o := range obs {
			g.Observe(o)
		}
		sets, backing = g.AppendSets(sets[:0], backing[:0])
	}
	cycle() // warm the arena
	allocs := testing.AllocsPerRun(20, cycle)
	if allocs > 10 {
		t.Fatalf("steady-state group cycle: %.1f allocs/op, want <= 10", allocs)
	}
	if len(sets) == 0 {
		t.Fatal("cycle produced no sets")
	}
}

// BenchmarkGrouperSteadyState prices the zero-alloc steady-state cycle the
// resolution service runs per measurement round.
func BenchmarkGrouperSteadyState(b *testing.B) {
	obs := groupCorpus(11, 6000)
	g := NewGrouper()
	var sets []Set
	var backing []netip.Addr
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		for _, o := range obs {
			g.Observe(o)
		}
		sets, backing = g.AppendSets(sets[:0], backing[:0])
	}
	b.ReportMetric(float64(len(sets)), "sets")
}

// BenchmarkGroupSortReference prices the retired global-sort path for
// comparison (same corpus, fresh allocations every op — what the hot path
// used to pay).
func BenchmarkGroupSortReference(b *testing.B) {
	obs := groupCorpus(11, 6000)
	b.ReportAllocs()
	b.ResetTimer()
	var sets []Set
	for i := 0; i < b.N; i++ {
		sets = GroupSorted(obs)
	}
	b.ReportMetric(float64(len(sets)), "sets")
}
