package alias

import "net/netip"

// AddrTable interns addresses into dense int32 ids. The cross-protocol merge
// is a union-find over addresses; interning through a table that persists
// across Merge calls lets the repeated merges an analysis session performs
// (per-family unions, dual-stack union, per-source unions over the same
// address universe) reuse one hash table instead of rebuilding it per call.
//
// A table is not safe for concurrent use; callers that share one across
// goroutines must serialise access (the experiments layer guards its
// per-dataset table with a mutex).
type AddrTable struct {
	index map[netip.Addr]int32
	addrs []netip.Addr

	// mark and pos implement per-call membership on top of the persistent
	// table: mark[i] == epoch means address i participates in the current
	// MergeWith call, and pos[i] is its dense index within that call.
	mark  []uint32
	pos   []int32
	epoch uint32
}

// NewAddrTable returns an empty interning table.
func NewAddrTable() *AddrTable {
	return &AddrTable{index: make(map[netip.Addr]int32)}
}

// Intern returns the dense id of a, assigning the next free id on first
// sight. Ids are stable for the lifetime of the table.
func (t *AddrTable) Intern(a netip.Addr) int32 {
	if i, ok := t.index[a]; ok {
		return i
	}
	i := int32(len(t.addrs))
	t.index[a] = i
	t.addrs = append(t.addrs, a)
	t.mark = append(t.mark, 0)
	t.pos = append(t.pos, 0)
	return i
}

// Addr returns the address with dense id i.
func (t *AddrTable) Addr(i int32) netip.Addr { return t.addrs[i] }

// Len returns the number of interned addresses.
func (t *AddrTable) Len() int { return len(t.addrs) }
