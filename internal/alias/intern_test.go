package alias

import (
	"fmt"
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"aliaslimit/internal/ident"
)

// referenceGroup is the straightforward map-of-slices grouping the interned
// implementation must match exactly.
func referenceGroup(obs []Observation) []Set {
	byID := make(map[string][]netip.Addr)
	for _, o := range obs {
		k := o.ID.Key()
		byID[k] = append(byID[k], o.Addr)
	}
	sets := make([]Set, 0, len(byID))
	for _, addrs := range byID {
		sets = append(sets, NewSet(addrs...))
	}
	sortSets(sets)
	return sets
}

// synthObs builds a deterministic mixed observation list with duplicates,
// shared identifiers, and both families.
func synthObs(n int) []Observation {
	var obs []Observation
	for i := 0; i < n; i++ {
		id := ident.Identifier{Proto: ident.SSH, Digest: fmt.Sprintf("d%d", i%17)}
		v4 := netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1})
		obs = append(obs, Observation{Addr: v4, ID: id})
		if i%3 == 0 {
			obs = append(obs, Observation{Addr: v4, ID: id}) // duplicate
		}
		if i%5 == 0 {
			v6 := netip.AddrFrom16([16]byte{0x2a, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, byte(i), 7})
			obs = append(obs, Observation{Addr: v6, ID: id})
		}
	}
	return obs
}

func TestGroupMatchesReference(t *testing.T) {
	for _, n := range []int{0, 1, 7, 300} {
		obs := synthObs(n)
		got := Group(obs)
		want := referenceGroup(obs)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d sets, want %d", n, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Addrs, want[i].Addrs) {
				t.Fatalf("n=%d set %d: %v != %v", n, i, got[i].Addrs, want[i].Addrs)
			}
		}
	}
}

func TestSetKey(t *testing.T) {
	a := netip.MustParseAddr("1.2.3.4")
	mapped := netip.MustParseAddr("::ffff:1.2.3.4")
	if NewSet(a).Key() == NewSet(mapped).Key() {
		t.Error("IPv4 and IPv4-mapped IPv6 sets must have distinct keys")
	}
	s1 := NewSet(a, netip.MustParseAddr("2.3.4.5"))
	s2 := NewSet(netip.MustParseAddr("2.3.4.5"), a)
	if s1.Key() != s2.Key() {
		t.Error("same membership must give the same key regardless of input order")
	}
	if s1.Key() == NewSet(a).Key() {
		t.Error("different membership must give different keys")
	}
	// Key-based matching agrees with Signature-based equality.
	if (s1.Signature() == s2.Signature()) != (s1.Key() == s2.Key()) {
		t.Error("Key equality diverges from Signature equality")
	}
}

func TestMergeWithReusedTable(t *testing.T) {
	mk := func(addrs ...string) Set {
		var as []netip.Addr
		for _, a := range addrs {
			as = append(as, netip.MustParseAddr(a))
		}
		return NewSet(as...)
	}
	g1 := []Set{mk("1.0.0.1", "1.0.0.2"), mk("1.0.0.9")}
	g2 := []Set{mk("1.0.0.2", "1.0.0.3"), mk("2.0.0.1", "2.0.0.2")}
	g3 := []Set{mk("2.0.0.2", "1.0.0.9"), mk("3.0.0.1")}

	table := NewAddrTable()
	// Three successive merges over overlapping populations through one
	// table must each equal the fresh-table Merge.
	for i, groups := range [][][]Set{{g1, g2}, {g2, g3}, {g1, g2, g3}} {
		got := MergeWith(table, groups...)
		want := Merge(groups...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merge %d: reused table gave %v, fresh table %v", i, got, want)
		}
	}
	if table.Len() != 7 {
		t.Errorf("table interned %d addrs, want 7", table.Len())
	}
}

func TestMergeIncludesSingletonsAndPartitions(t *testing.T) {
	mk := func(addrs ...string) Set {
		var as []netip.Addr
		for _, a := range addrs {
			as = append(as, netip.MustParseAddr(a))
		}
		return NewSet(as...)
	}
	out := Merge(
		[]Set{mk("1.0.0.1", "1.0.0.2"), mk("1.0.0.7")},
		[]Set{mk("1.0.0.2", "1.0.0.3")},
	)
	var sigs []string
	for _, s := range out {
		sigs = append(sigs, s.Signature())
	}
	sort.Strings(sigs)
	want := []string{"1.0.0.1,1.0.0.2,1.0.0.3", "1.0.0.7"}
	if !reflect.DeepEqual(sigs, want) {
		t.Fatalf("merge partition %v, want %v", sigs, want)
	}
}
