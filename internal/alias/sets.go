// Package alias implements the paper's inference pipeline: grouping
// addresses by identifier into alias sets, merging sets across protocols and
// data sources, deriving dual-stack sets, and the cross-technique validation
// metric of §2.6.
package alias

import (
	"net/netip"
	"slices"
	"sort"
	"strings"

	"aliaslimit/internal/ident"
)

// Observation is one (address, identifier) fact produced by a scan.
type Observation struct {
	// Addr is the responsive address.
	Addr netip.Addr
	// ID is the extracted device identifier.
	ID ident.Identifier
}

// Set is one alias set: the sorted, de-duplicated addresses that share an
// identifier (or, after merging, a connected component of shared
// identifiers).
type Set struct {
	// Addrs is sorted ascending and free of duplicates.
	Addrs []netip.Addr
}

// NewSet builds a Set from addresses, sorting and de-duplicating.
func NewSet(addrs ...netip.Addr) Set {
	as := make([]netip.Addr, len(addrs))
	copy(as, addrs)
	sort.Slice(as, func(i, j int) bool { return as[i].Less(as[j]) })
	out := as[:0]
	for i, a := range as {
		if i == 0 || as[i-1] != a {
			out = append(out, a)
		}
	}
	return Set{Addrs: out}
}

// Size returns the number of addresses in the set.
func (s Set) Size() int { return len(s.Addrs) }

// V4Count and V6Count split the set by address family.
func (s Set) V4Count() int {
	n := 0
	for _, a := range s.Addrs {
		if a.Is4() {
			n++
		}
	}
	return n
}

// V6Count returns the number of IPv6 addresses in the set.
func (s Set) V6Count() int { return len(s.Addrs) - s.V4Count() }

// IsDualStack reports whether the set spans both address families —
// the paper's dual-stack criterion (§2.4).
func (s Set) IsDualStack() bool {
	return s.V4Count() > 0 && s.V6Count() > 0
}

// SetKey is a compact canonical binary key for a Set: a deterministic total
// order and exact-membership equality without the decimal formatting cost of
// Signature. Keys from sets over the same address population are equal iff
// the sets have identical membership. Use it wherever sets are sorted,
// sampled, or matched; Signature stays for human-readable output.
type SetKey string

// Key renders the binary key: one family tag byte plus the 16-byte expanded
// form per address, in the set's canonical (sorted) order. The tag byte keeps
// an IPv4 address distinct from its IPv4-mapped IPv6 equivalent.
func (s Set) Key() SetKey {
	b := make([]byte, 0, len(s.Addrs)*17)
	for _, a := range s.Addrs {
		if a.Is4() {
			b = append(b, 4)
		} else {
			b = append(b, 6)
		}
		a16 := a.As16()
		b = append(b, a16[:]...)
	}
	return SetKey(b)
}

// Signature returns a canonical string key for exact-membership comparison.
// It allocates per address; hot paths should use Key instead and keep
// Signature for human-readable CLI and log output.
func (s Set) Signature() string {
	var sb strings.Builder
	for i, a := range s.Addrs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(a.String())
	}
	return sb.String()
}

// Contains reports whether addr is in the set (binary search).
func (s Set) Contains(addr netip.Addr) bool {
	i := sort.Search(len(s.Addrs), func(i int) bool { return !s.Addrs[i].Less(addr) })
	return i < len(s.Addrs) && s.Addrs[i] == addr
}

// compareSets is the canonical total order on sets: first address, then
// size, then element-wise comparison. A total order keeps the final set
// ordering independent of the (parallelism-dependent) order in which sets
// were produced.
func compareSets(a, b Set) int {
	if len(a.Addrs) == 0 || len(b.Addrs) == 0 {
		return len(a.Addrs) - len(b.Addrs)
	}
	if c := a.Addrs[0].Compare(b.Addrs[0]); c != 0 {
		return c
	}
	if len(a.Addrs) != len(b.Addrs) {
		return len(a.Addrs) - len(b.Addrs)
	}
	for i := range a.Addrs {
		if c := a.Addrs[i].Compare(b.Addrs[i]); c != 0 {
			return c
		}
	}
	return 0
}

// sortSets orders sets canonically for reproducibility.
func sortSets(sets []Set) {
	slices.SortFunc(sets, compareSets)
}

// SortSets orders sets canonically (the same total order Group and Merge
// apply before returning). Resolver backends that assemble sets out of
// shards or streams use it to make their output byte-identical to the batch
// pipeline's.
func SortSets(sets []Set) {
	sortSets(sets)
}

// groupPair is one interned observation: a dense identifier id and the
// observed address. Only the GroupSorted reference implementation still
// materialises these.
type groupPair struct {
	id   int32
	addr netip.Addr
}

// Group clusters observations by identifier: one Set per distinct
// identifier, including singletons. Duplicate (addr, id) observations — the
// same address seen by two data sources — collapse naturally.
//
// Observations are folded one at a time into per-identifier sorted buckets
// (a Grouper), so the input slice is never copied, globally sorted, or even
// required — the streaming and sharded backends feed the same core
// incrementally. GroupSorted keeps the retired global-sort implementation as
// the differential reference.
func Group(obs []Observation) []Set {
	var g Grouper
	for _, o := range obs {
		g.Observe(o)
	}
	return g.Sets()
}

// NonSingleton filters to sets with at least two addresses — the unit every
// table in the paper counts.
func NonSingleton(sets []Set) []Set {
	out := make([]Set, 0, len(sets))
	for _, s := range sets {
		if s.Size() >= 2 {
			out = append(out, s)
		}
	}
	return out
}

// DualStack filters to sets spanning both families (Table 4's unit). Note a
// dual-stack set may have exactly one v4 and one v6 address and still count,
// unlike NonSingleton's per-family view.
func DualStack(sets []Set) []Set {
	out := make([]Set, 0, len(sets))
	for _, s := range sets {
		if s.IsDualStack() {
			out = append(out, s)
		}
	}
	return out
}

// FilterFamily keeps only addresses of one family within each set, dropping
// sets that become empty. The paper's IPv4 tables are FilterFamily(v4) views
// of the underlying identifier groups.
func FilterFamily(sets []Set, v4 bool) []Set {
	out := make([]Set, 0, len(sets))
	for _, s := range sets {
		var keep []netip.Addr
		for _, a := range s.Addrs {
			if a.Is4() == v4 {
				keep = append(keep, a)
			}
		}
		if len(keep) > 0 {
			out = append(out, Set{Addrs: keep})
		}
	}
	sortSets(out)
	return out
}

// CoveredAddrs counts distinct addresses across sets.
func CoveredAddrs(sets []Set) int {
	seen := make(map[netip.Addr]bool)
	for _, s := range sets {
		for _, a := range s.Addrs {
			seen[a] = true
		}
	}
	return len(seen)
}

// Merge consolidates alias sets from multiple protocols or data sources: any
// two sets sharing an address collapse into one (§4.1's union). The inputs
// may contain singletons; the output contains every address that appeared,
// re-partitioned.
func Merge(groups ...[]Set) []Set {
	return MergeWith(NewAddrTable(), groups...)
}

// MergeWith is Merge with a caller-supplied interning table. Repeated merges
// over overlapping address populations (the analysis layer's per-family,
// per-source, and dual-stack unions) reuse the table's hash index instead of
// re-interning from scratch. The table is mutated; see AddrTable for the
// concurrency contract.
func MergeWith(t *AddrTable, groups ...[]Set) []Set {
	t.epoch++
	// Membership pass: intern every address and record, in first-appearance
	// order, the dense per-call ids this merge operates on.
	var members []int32
	for _, sets := range groups {
		for _, s := range sets {
			for _, a := range s.Addrs {
				i := t.Intern(a)
				if t.mark[i] != t.epoch {
					t.mark[i] = t.epoch
					t.pos[i] = int32(len(members))
					members = append(members, i)
				}
			}
		}
	}
	d := newDSU(len(members))
	for _, sets := range groups {
		for _, s := range sets {
			if len(s.Addrs) < 2 {
				continue
			}
			first := t.pos[t.index[s.Addrs[0]]]
			for _, a := range s.Addrs[1:] {
				d.union(first, t.pos[t.index[a]])
			}
		}
	}
	// Bucket members by component with a counting pass so all output sets
	// slice one backing array.
	rootSet := make(map[int32]int32)
	var counts []int32
	for m := range members {
		r := d.find(int32(m))
		si, ok := rootSet[r]
		if !ok {
			si = int32(len(counts))
			rootSet[r] = si
			counts = append(counts, 0)
		}
		counts[si]++
	}
	offsets := make([]int32, len(counts)+1)
	for i, c := range counts {
		offsets[i+1] = offsets[i] + c
	}
	backing := make([]netip.Addr, len(members))
	fill := append([]int32(nil), offsets[:len(counts)]...)
	for m, gid := range members {
		si := rootSet[d.find(int32(m))]
		backing[fill[si]] = t.addrs[gid]
		fill[si]++
	}
	out := make([]Set, len(counts))
	for i := range counts {
		seg := backing[offsets[i]:offsets[i+1]:offsets[i+1]]
		slices.SortFunc(seg, netip.Addr.Compare)
		out[i] = Set{Addrs: seg}
	}
	sortSets(out)
	return out
}

// Restrict drops addresses outside keep from every set and discards sets
// left with fewer than two addresses. This is the first step of the paper's
// cross-protocol validation: both partitions are compared only over the
// addresses responsive to both protocols.
func Restrict(sets []Set, keep map[netip.Addr]bool) []Set {
	out := make([]Set, 0, len(sets))
	for _, s := range sets {
		var kept []netip.Addr
		for _, a := range s.Addrs {
			if keep[a] {
				kept = append(kept, a)
			}
		}
		if len(kept) >= 2 {
			out = append(out, Set{Addrs: kept})
		}
	}
	sortSets(out)
	return out
}

// AddrSet builds the membership map of all addresses across sets.
func AddrSet(sets []Set) map[netip.Addr]bool {
	m := make(map[netip.Addr]bool)
	for _, s := range sets {
		for _, a := range s.Addrs {
			m[a] = true
		}
	}
	return m
}
