// Package alias implements the paper's inference pipeline: grouping
// addresses by identifier into alias sets, merging sets across protocols and
// data sources, deriving dual-stack sets, and the cross-technique validation
// metric of §2.6.
package alias

import (
	"net/netip"
	"sort"
	"strings"

	"aliaslimit/internal/ident"
)

// Observation is one (address, identifier) fact produced by a scan.
type Observation struct {
	// Addr is the responsive address.
	Addr netip.Addr
	// ID is the extracted device identifier.
	ID ident.Identifier
}

// Set is one alias set: the sorted, de-duplicated addresses that share an
// identifier (or, after merging, a connected component of shared
// identifiers).
type Set struct {
	// Addrs is sorted ascending and free of duplicates.
	Addrs []netip.Addr
}

// NewSet builds a Set from addresses, sorting and de-duplicating.
func NewSet(addrs ...netip.Addr) Set {
	as := make([]netip.Addr, len(addrs))
	copy(as, addrs)
	sort.Slice(as, func(i, j int) bool { return as[i].Less(as[j]) })
	out := as[:0]
	for i, a := range as {
		if i == 0 || as[i-1] != a {
			out = append(out, a)
		}
	}
	return Set{Addrs: out}
}

// Size returns the number of addresses in the set.
func (s Set) Size() int { return len(s.Addrs) }

// V4Count and V6Count split the set by address family.
func (s Set) V4Count() int {
	n := 0
	for _, a := range s.Addrs {
		if a.Is4() {
			n++
		}
	}
	return n
}

// V6Count returns the number of IPv6 addresses in the set.
func (s Set) V6Count() int { return len(s.Addrs) - s.V4Count() }

// IsDualStack reports whether the set spans both address families —
// the paper's dual-stack criterion (§2.4).
func (s Set) IsDualStack() bool {
	return s.V4Count() > 0 && s.V6Count() > 0
}

// Signature returns a canonical string key for exact-membership comparison.
func (s Set) Signature() string {
	var sb strings.Builder
	for i, a := range s.Addrs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(a.String())
	}
	return sb.String()
}

// Contains reports whether addr is in the set (binary search).
func (s Set) Contains(addr netip.Addr) bool {
	i := sort.Search(len(s.Addrs), func(i int) bool { return !s.Addrs[i].Less(addr) })
	return i < len(s.Addrs) && s.Addrs[i] == addr
}

// sortSets orders sets canonically (by first address) for reproducibility.
func sortSets(sets []Set) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i].Addrs, sets[j].Addrs
		if len(a) == 0 || len(b) == 0 {
			return len(a) < len(b)
		}
		if a[0] != b[0] {
			return a[0].Less(b[0])
		}
		return len(a) < len(b)
	})
}

// Group clusters observations by identifier: one Set per distinct
// identifier, including singletons. Duplicate (addr, id) observations — the
// same address seen by two data sources — collapse naturally.
func Group(obs []Observation) []Set {
	byID := make(map[string][]netip.Addr)
	for _, o := range obs {
		k := o.ID.Key()
		byID[k] = append(byID[k], o.Addr)
	}
	sets := make([]Set, 0, len(byID))
	for _, addrs := range byID {
		sets = append(sets, NewSet(addrs...))
	}
	sortSets(sets)
	return sets
}

// NonSingleton filters to sets with at least two addresses — the unit every
// table in the paper counts.
func NonSingleton(sets []Set) []Set {
	out := make([]Set, 0, len(sets))
	for _, s := range sets {
		if s.Size() >= 2 {
			out = append(out, s)
		}
	}
	return out
}

// DualStack filters to sets spanning both families (Table 4's unit). Note a
// dual-stack set may have exactly one v4 and one v6 address and still count,
// unlike NonSingleton's per-family view.
func DualStack(sets []Set) []Set {
	out := make([]Set, 0, len(sets))
	for _, s := range sets {
		if s.IsDualStack() {
			out = append(out, s)
		}
	}
	return out
}

// FilterFamily keeps only addresses of one family within each set, dropping
// sets that become empty. The paper's IPv4 tables are FilterFamily(v4) views
// of the underlying identifier groups.
func FilterFamily(sets []Set, v4 bool) []Set {
	out := make([]Set, 0, len(sets))
	for _, s := range sets {
		var keep []netip.Addr
		for _, a := range s.Addrs {
			if a.Is4() == v4 {
				keep = append(keep, a)
			}
		}
		if len(keep) > 0 {
			out = append(out, Set{Addrs: keep})
		}
	}
	sortSets(out)
	return out
}

// CoveredAddrs counts distinct addresses across sets.
func CoveredAddrs(sets []Set) int {
	seen := make(map[netip.Addr]bool)
	for _, s := range sets {
		for _, a := range s.Addrs {
			seen[a] = true
		}
	}
	return len(seen)
}

// Merge consolidates alias sets from multiple protocols or data sources: any
// two sets sharing an address collapse into one (§4.1's union). The inputs
// may contain singletons; the output contains every address that appeared,
// re-partitioned.
func Merge(groups ...[]Set) []Set {
	index := make(map[netip.Addr]int32)
	var addrs []netip.Addr
	idxOf := func(a netip.Addr) int32 {
		if i, ok := index[a]; ok {
			return i
		}
		i := int32(len(addrs))
		index[a] = i
		addrs = append(addrs, a)
		return i
	}
	// First pass: intern every address.
	for _, sets := range groups {
		for _, s := range sets {
			for _, a := range s.Addrs {
				idxOf(a)
			}
		}
	}
	d := newDSU(len(addrs))
	for _, sets := range groups {
		for _, s := range sets {
			if len(s.Addrs) < 2 {
				continue
			}
			first := index[s.Addrs[0]]
			for _, a := range s.Addrs[1:] {
				d.union(first, index[a])
			}
		}
	}
	comp := make(map[int32][]netip.Addr)
	for i, a := range addrs {
		r := d.find(int32(i))
		comp[r] = append(comp[r], a)
	}
	out := make([]Set, 0, len(comp))
	for _, as := range comp {
		out = append(out, NewSet(as...))
	}
	sortSets(out)
	return out
}

// Restrict drops addresses outside keep from every set and discards sets
// left with fewer than two addresses. This is the first step of the paper's
// cross-protocol validation: both partitions are compared only over the
// addresses responsive to both protocols.
func Restrict(sets []Set, keep map[netip.Addr]bool) []Set {
	out := make([]Set, 0, len(sets))
	for _, s := range sets {
		var kept []netip.Addr
		for _, a := range s.Addrs {
			if keep[a] {
				kept = append(kept, a)
			}
		}
		if len(kept) >= 2 {
			out = append(out, Set{Addrs: kept})
		}
	}
	sortSets(out)
	return out
}

// AddrSet builds the membership map of all addresses across sets.
func AddrSet(sets []Set) map[netip.Addr]bool {
	m := make(map[netip.Addr]bool)
	for _, s := range sets {
		for _, a := range s.Addrs {
			m[a] = true
		}
	}
	return m
}
