package alias

// dsu is a classic disjoint-set union with path halving and union by size.
// The cross-protocol merge (paper §4.1: consolidating SSH, BGP, and SNMPv3
// sets into 1.4M union sets) is a union-find over addresses.
type dsu struct {
	parent []int32
	size   []int32
}

// newDSU builds n singleton components.
func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int32, n), size: make([]int32, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// find returns the representative of x, halving paths as it walks.
func (d *dsu) find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// union merges the components of a and b, returning the new representative.
func (d *dsu) union(a, b int32) int32 {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return ra
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	return ra
}

// sameSet reports whether a and b share a component.
func (d *dsu) sameSet(a, b int32) bool { return d.find(a) == d.find(b) }
