package alias

import (
	"net/netip"
)

// ValidationResult is one row of the paper's Table 2.
type ValidationResult struct {
	// Sample is the number of sets compared (the left technique's sets over
	// the common address population).
	Sample int
	// Agree counts sets with an exact-membership match on the right side.
	Agree int
	// Disagree counts sets without an exact match.
	Disagree int
}

// AgreementRate returns Agree/Sample, or 0 for an empty sample.
func (v ValidationResult) AgreementRate() float64 {
	if v.Sample == 0 {
		return 0
	}
	return float64(v.Agree) / float64(v.Sample)
}

// CrossValidate implements §2.6: restrict both partitions to their common
// responsive addresses, then count how many of a's non-singleton restricted
// sets match a b set exactly.
func CrossValidate(aObs, bObs []Observation) (aSets, bSets []Set, res ValidationResult) {
	aAddrs := obsAddrs(aObs)
	bAddrs := obsAddrs(bObs)
	common := make(map[netip.Addr]bool)
	for a := range aAddrs {
		if bAddrs[a] {
			common[a] = true
		}
	}
	aSets = Restrict(Group(aObs), common)
	bSets = Restrict(Group(bObs), common)
	res = MatchSets(aSets, bSets)
	return aSets, bSets, res
}

// MatchSets counts exact-membership matches of a's sets among b's sets.
// Callers compare partitions over the same address population (use Restrict
// first); the result is then symmetric up to the differing set counts.
// Matching is keyed on the binary SetKey, not the formatted Signature.
func MatchSets(a, b []Set) ValidationResult {
	byKey := make(map[SetKey]struct{}, len(b))
	for _, s := range b {
		byKey[s.Key()] = struct{}{}
	}
	res := ValidationResult{Sample: len(a)}
	for _, s := range a {
		if _, ok := byKey[s.Key()]; ok {
			res.Agree++
		} else {
			res.Disagree++
		}
	}
	return res
}

// obsAddrs collects the distinct addresses of an observation list.
func obsAddrs(obs []Observation) map[netip.Addr]bool {
	m := make(map[netip.Addr]bool, len(obs))
	for _, o := range obs {
		m[o.Addr] = true
	}
	return m
}

// CommonAddrCount reports how many addresses two observation lists share —
// the population size the paper quotes for each validation pair.
func CommonAddrCount(aObs, bObs []Observation) int {
	aAddrs := obsAddrs(aObs)
	bAddrs := obsAddrs(bObs)
	n := 0
	for a := range aAddrs {
		if bAddrs[a] {
			n++
		}
	}
	return n
}
