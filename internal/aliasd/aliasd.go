// Package aliasd is the resolution-as-a-service layer: a long-running HTTP
// daemon that wraps the repository's alias-resolution library for many
// concurrent tenants, turning the one-shot CLI pipeline into a server that
// ingests observation streams and answers alias-set queries online.
//
// # Architecture
//
// The server manages independent per-tenant Sessions (POST /v1/sessions).
// A session owns its own resolver state, seed, and — for world-backed
// sessions — its own simulated Internet, so tenants never share mutable
// state. Two session flavours exist:
//
//   - Ingest sessions accept NDJSON observation streams (POST /v1/ingest,
//     one obsfile.Record per line) into a bounded queue drained by a
//     dedicated worker into the streaming resolver backend's live
//     structures (resolver.Sink). Alias sets are therefore grouped online:
//     a query arriving mid-ingest sees the canonical partition of every
//     observation applied so far, and the final partitions are
//     byte-identical to the batch backend over the same observations —
//     the same sets_digest, computed through scenario.DigestPartitions.
//   - World-backed sessions ({"world": true}) build a sealed, fully
//     measured environment at the requested seed and scale and serve its
//     memoized analysis views (sets, stats, per-AS aggregation) without
//     recomputation.
//
// The query API (GET /v1/sets, /v1/stats, /v1/asview, /v1/scenarios/{name})
// reads those views; scenario and longitudinal runs are memoized per option
// tuple so concurrent users share one computation.
//
// # Graceful degradation
//
// Load shedding is explicit: a full ingest queue answers 429 with a
// Retry-After header and the count of lines already accepted (backpressure,
// not silent drops); session capacity answers 503; Config.RequestTimeout
// bounds every request; and Shutdown drains each session's queue before the
// process exits, so accepted observations are never lost on SIGTERM.
package aliasd

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Config tunes the daemon. The zero value serves with the defaults below.
type Config struct {
	// MaxSessions bounds concurrent tenants; creation beyond it answers
	// 503. 0 picks 64.
	MaxSessions int
	// QueueDepth is each session's ingest-queue capacity in observations;
	// a full queue answers 429 + Retry-After. 0 picks 8192.
	QueueDepth int
	// RequestTimeout bounds every request (504 on expiry); 0 disables.
	// World-backed session creation and scenario runs are the slow
	// requests — size it for them, not for queries.
	RequestTimeout time.Duration
	// MaxScale caps world-backed session and scenario world sizes so one
	// tenant cannot occupy the process with a giant build. 0 picks 1.0.
	MaxScale float64

	// applyHook, when set, runs before each observation is applied by a
	// session worker — a test hook for holding the queue saturated.
	applyHook func()
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8192
	}
	if c.MaxScale <= 0 {
		c.MaxScale = 1.0
	}
	return c
}

// Server is the daemon: a session registry plus the HTTP API over it.
// Create one with NewServer, mount Handler on an http.Server, and call
// Shutdown to drain.
type Server struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
	draining bool

	scenMu       sync.Mutex
	scenarioRuns map[string]*scenarioRun

	handler http.Handler
}

// NewServer builds a daemon with no sessions.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:          cfg.withDefaults(),
		sessions:     make(map[string]*Session),
		scenarioRuns: make(map[string]*scenarioRun),
	}
	s.handler = s.buildHandler()
	return s
}

// Handler returns the daemon's HTTP API, wrapped in the configured request
// timeout.
func (s *Server) Handler() http.Handler { return s.handler }

// lookup resolves a session by id.
func (s *Server) lookup(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown session %q", id)
	}
	return sess, nil
}

// list snapshots the registry in creation order.
func (s *Server) list() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	sortSessions(out)
	return out
}

// remove deletes a session from the registry and stops its worker. The
// worker finishes the observations already queued before exiting.
func (s *Server) remove(id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown session %q", id)
	}
	sess.close()
	return nil
}

// Shutdown drains the daemon: new sessions and ingests are refused (503),
// every queued observation is applied, and every session worker has exited
// when it returns. It respects the deadline of ctx and reports the first
// session that could not drain in time.
func (s *Server) Shutdown(ctx interface{ Done() <-chan struct{} }) error {
	s.mu.Lock()
	s.draining = true
	open := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.sessions = make(map[string]*Session)
	s.mu.Unlock()

	sortSessions(open)
	for _, sess := range open {
		if err := sess.drain(ctx.Done()); err != nil {
			return fmt.Errorf("draining session %s: %w", sess.ID, err)
		}
	}
	return nil
}
