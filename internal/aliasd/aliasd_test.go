package aliasd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aliaslimit/internal/obsfile"
)

// post sends a request body and decodes the JSON reply into out (skipped
// when out is nil), returning the status code.
func post(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding reply: %v", url, err)
		}
	}
	return resp.StatusCode
}

// get fetches a URL and decodes the JSON reply into out (skipped when nil).
func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding reply: %v", url, err)
		}
	}
	return resp.StatusCode
}

// createTestSession makes one session and returns its id.
func createTestSession(t *testing.T, base, body string) string {
	t.Helper()
	var info sessionInfo
	if code := post(t, base+"/v1/sessions", body, &info); code != http.StatusCreated {
		t.Fatalf("session create: status %d", code)
	}
	if info.ID == "" {
		t.Fatal("session create returned no id")
	}
	return info.ID
}

// obsLines renders NDJSON ingest lines.
func obsLines(recs ...[3]string) string {
	var sb strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&sb, `{"addr":%q,"proto":%q,"digest":%q}`+"\n", r[0], r[1], r[2])
	}
	return sb.String()
}

func TestHealthzAndBackends(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if code := get(t, ts.URL+"/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || health.Sessions != 0 {
		t.Fatalf("healthz = %+v", health)
	}
	var backends struct {
		Backends []string `json:"backends"`
		Default  string   `json:"default"`
	}
	get(t, ts.URL+"/v1/backends", &backends)
	if len(backends.Backends) != 4 || backends.Default != "streaming" {
		t.Fatalf("backends = %+v", backends)
	}
}

// TestIngestQueryFlow: NDJSON observations land in live streams, flush makes
// queries deterministic, and two sessions fed the same observations in
// different orders and batch splits converge to one sets_digest.
func TestIngestQueryFlow(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	// Two SSH hosts sharing a key digest, one BGP pair overlapping one of
	// them, an IPv6 twin for the dual-stack view.
	corpus := [][3]string{
		{"10.0.0.1", "SSH", "k1"},
		{"10.0.0.2", "SSH", "k1"},
		{"10.0.0.2", "BGP", "r1"},
		{"10.0.0.3", "BGP", "r1"},
		{"2001:db8::1", "SSH", "k1"},
		{"10.0.0.9", "SNMPv3", "e1"},
	}

	a := createTestSession(t, ts.URL, `{"backend":"streaming"}`)
	b := createTestSession(t, ts.URL, `{"backend":"batch"}`)

	// Session a gets everything in one request; session b gets the reversed
	// order split across single-line requests.
	var reply ingestReply
	if code := post(t, ts.URL+"/v1/ingest?session="+a, obsLines(corpus...), &reply); code != http.StatusOK {
		t.Fatalf("ingest a: status %d", code)
	}
	if reply.Accepted != len(corpus) {
		t.Fatalf("ingest a accepted %d, want %d", reply.Accepted, len(corpus))
	}
	for i := len(corpus) - 1; i >= 0; i-- {
		if code := post(t, ts.URL+"/v1/ingest?session="+b, obsLines(corpus[i]), nil); code != http.StatusOK {
			t.Fatalf("ingest b line %d: status %d", i, code)
		}
	}
	for _, id := range []string{a, b} {
		if code := post(t, ts.URL+"/v1/flush?session="+id, "", nil); code != http.StatusOK {
			t.Fatalf("flush %s failed", id)
		}
	}

	var setsA struct {
		Count int        `json:"count"`
		Sets  [][]string `json:"sets"`
	}
	get(t, ts.URL+"/v1/sets?session="+a+"&view=ssh", &setsA)
	if setsA.Count != 1 || len(setsA.Sets[0]) != 3 {
		t.Fatalf("ssh view = %+v, want one set of three addresses", setsA)
	}
	var dual struct {
		Count int `json:"count"`
	}
	get(t, ts.URL+"/v1/sets?session="+a+"&view=dualstack", &dual)
	if dual.Count != 1 {
		t.Fatalf("dualstack view count = %d, want 1", dual.Count)
	}

	var statsA, statsB statsReply
	get(t, ts.URL+"/v1/stats?session="+a, &statsA)
	get(t, ts.URL+"/v1/sessions/"+b, &statsB)
	if statsA.SetsDigest == "" || len(statsA.SetsDigest) != 64 {
		t.Fatalf("stats a digest %q not a sha256 hex string", statsA.SetsDigest)
	}
	if statsA.SetsDigest != statsB.SetsDigest {
		t.Fatalf("order/backend-dependent digests: %s vs %s", statsA.SetsDigest, statsB.SetsDigest)
	}
	if statsA.Applied != int64(len(corpus)) {
		t.Fatalf("stats a applied %d, want %d", statsA.Applied, len(corpus))
	}
	if len(statsA.Partitions) != 6 {
		t.Fatalf("stats a has %d partition digests, want 6", len(statsA.Partitions))
	}
	// union-v4 merges the SSH pair with the overlapping BGP pair.
	if statsA.Sets["union-v4"] != 1 || statsA.Sets["ssh"] != 1 {
		t.Fatalf("stats a set counts = %v", statsA.Sets)
	}

	// Bad lines are rejected with the line number; prior lines stay counted.
	var badReply errorBody
	if code := post(t, ts.URL+"/v1/ingest?session="+a,
		obsLines(corpus[0])+`{"addr":"not-an-ip","proto":"SSH","digest":"x"}`+"\n",
		&badReply); code != http.StatusBadRequest {
		t.Fatalf("malformed ingest: status %d", code)
	}
	if badReply.Accepted != 1 || !strings.Contains(badReply.Error, "line 2") {
		t.Fatalf("malformed ingest reply = %+v", badReply)
	}

	// Unknown views name the valid ones.
	var viewErr errorBody
	if code := get(t, ts.URL+"/v1/sets?session="+a+"&view=nope", &viewErr); code != http.StatusBadRequest {
		t.Fatal("unknown view accepted")
	}
	if !strings.Contains(viewErr.Error, "union-v6") {
		t.Fatalf("view error %q does not list valid views", viewErr.Error)
	}
}

// TestIngestBackpressure: a saturated queue answers 429 + Retry-After with
// the partial acceptance count, and the rejected remainder can be resent
// after backoff with nothing lost or duplicated.
func TestIngestBackpressure(t *testing.T) {
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	srv := NewServer(Config{
		QueueDepth: 2,
		applyHook: func() {
			entered <- struct{}{}
			<-release
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := createTestSession(t, ts.URL, "{}")
	corpus := [][3]string{
		{"10.0.0.1", "SSH", "k1"},
		{"10.0.0.2", "SSH", "k1"},
		{"10.0.0.3", "SSH", "k2"},
		{"10.0.0.4", "SSH", "k2"},
		{"10.0.0.5", "SSH", "k3"},
	}

	// First line: the worker dequeues it and parks in the hook.
	if code := post(t, ts.URL+"/v1/ingest?session="+id, obsLines(corpus[0]), nil); code != http.StatusOK {
		t.Fatalf("priming ingest: status %d", code)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first observation")
	}

	// Remaining four: the queue (depth 2) accepts exactly two, then sheds.
	resp, err := http.Post(ts.URL+"/v1/ingest?session="+id, "application/x-ndjson",
		strings.NewReader(obsLines(corpus[1:]...)))
	if err != nil {
		t.Fatal(err)
	}
	var shed errorBody
	json.NewDecoder(resp.Body).Decode(&shed)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if shed.Accepted != 2 {
		t.Fatalf("saturated ingest accepted %d, want 2", shed.Accepted)
	}

	// Back off (release the worker), resend the shed remainder, flush.
	close(release)
	if code := post(t, ts.URL+"/v1/ingest?session="+id, obsLines(corpus[1+shed.Accepted:]...), nil); code != http.StatusOK {
		t.Fatalf("retry ingest: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/flush?session="+id, "", nil); code != http.StatusOK {
		t.Fatal("flush failed")
	}

	var stats statsReply
	get(t, ts.URL+"/v1/stats?session="+id, &stats)
	if stats.Applied != int64(len(corpus)) || stats.Received != int64(len(corpus)) {
		t.Fatalf("after retry: applied %d received %d, want %d", stats.Applied, stats.Received, len(corpus))
	}
	if stats.Sets["ssh"] != 2 {
		t.Fatalf("ssh sets = %d, want 2", stats.Sets["ssh"])
	}
}

// TestSessionCapacityAndLifecycle: the registry sheds session creation at
// capacity with 503, frees a slot on delete, and 404s unknown ids.
func TestSessionCapacityAndLifecycle(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{MaxSessions: 2}).Handler())
	defer ts.Close()

	a := createTestSession(t, ts.URL, "{}")
	createTestSession(t, ts.URL, "{}")
	var full errorBody
	if code := post(t, ts.URL+"/v1/sessions", "{}", &full); code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity create: status %d, want 503", code)
	}
	if !strings.Contains(full.Error, "capacity") {
		t.Fatalf("over-capacity error = %q", full.Error)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+a, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	createTestSession(t, ts.URL, "{}") // the slot is free again

	if code := get(t, ts.URL+"/v1/stats?session="+a, nil); code != http.StatusNotFound {
		t.Fatalf("deleted session stats: status %d, want 404", code)
	}
	if code := post(t, ts.URL+"/v1/ingest?session=nope", "", nil); code != http.StatusNotFound {
		t.Fatalf("unknown session ingest: status %d, want 404", code)
	}
	if code := get(t, ts.URL+"/v1/sets?view=ssh", nil); code != http.StatusBadRequest {
		t.Fatal("missing session parameter accepted")
	}

	var list struct {
		Sessions []sessionInfo `json:"sessions"`
	}
	get(t, ts.URL+"/v1/sessions", &list)
	if len(list.Sessions) != 2 {
		t.Fatalf("listed %d sessions, want 2", len(list.Sessions))
	}
}

// TestShutdownDrains: queued observations are applied before Shutdown
// returns, and a draining daemon refuses new sessions.
func TestShutdownDrains(t *testing.T) {
	srv := NewServer(Config{})
	sess, err := srv.createSession(SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		p, o, err := parseRecord(obsfile.Record{
			Addr:   fmt.Sprintf("10.1.%d.%d", i/250, i%250),
			Proto:  "SSH",
			Digest: fmt.Sprintf("k%d", i/2),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.offer(p, o); err != nil {
			t.Fatalf("offer %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := sess.applied.Load(); got != n {
		t.Fatalf("shutdown dropped observations: applied %d, want %d", got, n)
	}
	select {
	case <-sess.done:
	default:
		t.Fatal("worker still running after shutdown")
	}
	if _, err := srv.createSession(SessionConfig{}); err != errClosed {
		t.Fatalf("create on draining daemon: err %v, want errClosed", err)
	}
}

// TestWorldSession: a world-backed tenant serves sealed views and the AS
// aggregation, refuses ingest, and reports a scorecard-comparable digest.
func TestWorldSession(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	var info sessionInfo
	if code := post(t, ts.URL+"/v1/sessions", `{"world":true,"seed":7,"scale":0.05}`, &info); code != http.StatusCreated {
		t.Fatalf("world session create: status %d", code)
	}
	if !info.World || info.Scale != 0.05 {
		t.Fatalf("world session info = %+v", info)
	}

	if code := post(t, ts.URL+"/v1/ingest?session="+info.ID, obsLines([3]string{"10.0.0.1", "SSH", "k"}), nil); code != http.StatusConflict {
		t.Fatalf("world session ingest: status %d, want 409", code)
	}

	var stats statsReply
	get(t, ts.URL+"/v1/stats?session="+info.ID, &stats)
	if len(stats.SetsDigest) != 64 || stats.Sets["ssh"] == 0 || stats.Sets["union-v4"] == 0 {
		t.Fatalf("world stats = %+v", stats)
	}

	var av asviewReply
	if code := get(t, ts.URL+"/v1/asview?session="+info.ID+"&view=union-v4&top=5", &av); code != http.StatusOK {
		t.Fatalf("asview: status %d", code)
	}
	if av.ASes == 0 || len(av.Top) == 0 || av.Top[0].Sets == 0 {
		t.Fatalf("asview = %+v", av)
	}

	// Ingest sessions have no AS truth to aggregate by.
	ing := createTestSession(t, ts.URL, "{}")
	if code := get(t, ts.URL+"/v1/asview?session="+ing, nil); code != http.StatusConflict {
		t.Fatal("asview on an ingest session should 409")
	}

	// Out-of-range world scales are rejected up front.
	if code := post(t, ts.URL+"/v1/sessions", `{"world":true,"scale":5}`, nil); code != http.StatusBadRequest {
		t.Fatal("oversized world scale accepted")
	}
}

// TestScenarioEndpoints: the catalog lists presets, runs are memoized per
// option tuple, and bad parameters are rejected.
func TestScenarioEndpoints(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	var catalog struct {
		Scenarios []struct {
			Name    string `json:"name"`
			Summary string `json:"summary"`
		} `json:"scenarios"`
	}
	get(t, ts.URL+"/v1/scenarios", &catalog)
	if len(catalog.Scenarios) < 8 || catalog.Scenarios[0].Summary == "" {
		t.Fatalf("catalog = %+v", catalog)
	}

	var run struct {
		Scenario   string `json:"scenario"`
		Quick      bool   `json:"quick"`
		SetsDigest string `json:"sets_digest"`
	}
	start := time.Now()
	if code := get(t, ts.URL+"/v1/scenarios/baseline?seed=3", &run); code != http.StatusOK {
		t.Fatalf("scenario run: status %d", code)
	}
	cold := time.Since(start)
	if run.Scenario != "baseline" || !run.Quick || len(run.SetsDigest) != 64 {
		t.Fatalf("scenario run = %+v", run)
	}

	// The memoized replay must not re-measure the world.
	start = time.Now()
	var again struct {
		SetsDigest string `json:"sets_digest"`
	}
	get(t, ts.URL+"/v1/scenarios/baseline?seed=3", &again)
	if warm := time.Since(start); warm > cold/2 {
		t.Fatalf("memoized scenario run took %v (cold %v)", warm, cold)
	}
	if again.SetsDigest != run.SetsDigest {
		t.Fatal("memoized run changed digest")
	}

	if code := get(t, ts.URL+"/v1/scenarios/no-such-world", nil); code != http.StatusNotFound {
		t.Fatal("unknown scenario accepted")
	}
	if code := get(t, ts.URL+"/v1/scenarios/baseline?epochs=1", nil); code != http.StatusBadRequest {
		t.Fatal("epochs=1 accepted")
	}
	if code := get(t, ts.URL+"/v1/scenarios/baseline?scale=99", nil); code != http.StatusBadRequest {
		t.Fatal("oversized scenario scale accepted")
	}
}

// TestRequestTimeout: the configured ceiling turns a stalled flush into a
// bounded failure instead of a hung connection.
func TestRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := NewServer(Config{
		QueueDepth:     1,
		RequestTimeout: 50 * time.Millisecond,
		applyHook:      func() { <-release },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := createTestSession(t, ts.URL, "{}")
	// Two observations: the worker parks on the first, the second fills the
	// depth-1 queue, so the flush marker cannot even be enqueued.
	post(t, ts.URL+"/v1/ingest?session="+id, obsLines([3]string{"10.0.0.1", "SSH", "a"}), nil)
	post(t, ts.URL+"/v1/ingest?session="+id, obsLines([3]string{"10.0.0.2", "SSH", "b"}), nil)

	resp, err := http.Post(ts.URL+"/v1/flush?session="+id, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled flush: status %d, want a timeout status", resp.StatusCode)
	}
}
