package aliasd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"strconv"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/asview"
	"aliaslimit/internal/distres"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obsfile"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/scenario"
)

// buildHandler assembles the versioned API routes.
func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/backends", s.handleBackends)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionStats)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/resolve", s.handleResolve)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/flush", s.handleFlush)
	mux.HandleFunc("GET /v1/sets", s.handleSets)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/asview", s.handleASView)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarioList)
	mux.HandleFunc("GET /v1/scenarios/{name}", s.handleScenarioRun)
	if s.cfg.RequestTimeout > 0 {
		return http.TimeoutHandler(mux, s.cfg.RequestTimeout,
			`{"error":"request timed out"}`)
	}
	return mux
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
	// Accepted reports partial ingest acceptance on backpressure responses.
	Accepted int `json:"accepted,omitempty"`
}

// writeError maps an error to its JSON response and status code.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// handleHealthz reports liveness and registry size.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n, draining := len(s.sessions), s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"sessions": n,
		"draining": draining,
	})
}

// handleBackends lists the pluggable resolver strategies.
func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"backends": resolver.Names(),
		"default":  "streaming",
	})
}

// sessionInfo is the public shape of one session.
type sessionInfo struct {
	ID      string  `json:"id"`
	Backend string  `json:"backend"`
	World   bool    `json:"world"`
	Seed    uint64  `json:"seed,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
}

// info summarises a session.
func (sess *Session) info() sessionInfo {
	return sessionInfo{
		ID:      sess.ID,
		Backend: sess.cfg.Backend,
		World:   sess.cfg.World,
		Seed:    sess.cfg.Seed,
		Scale:   sess.cfg.Scale,
	}
}

// handleCreateSession registers a tenant. An empty body picks the default
// ingest session (streaming backend).
func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing session config: %w", err))
		return
	}
	sess, err := s.createSession(cfg)
	if err != nil {
		code := http.StatusBadRequest
		if err == errClosed || errors.Is(err, errCapacity) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.info())
}

// handleListSessions lists sessions in creation order.
func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	infos := []sessionInfo{}
	for _, sess := range s.list() {
		infos = append(infos, sess.info())
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

// handleDeleteSession removes a tenant; its worker finishes queued
// observations and exits.
func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if err := s.remove(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// sessionFrom resolves the session named by the request (the ?session query
// parameter, or the {id} path value on session-scoped routes), writing the
// 4xx itself on failure.
func (s *Server) sessionFrom(w http.ResponseWriter, r *http.Request) *Session {
	id := r.PathValue("id")
	if id == "" {
		id = r.URL.Query().Get("session")
	}
	if id == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing session parameter"))
		return nil
	}
	sess, err := s.lookup(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil
	}
	return sess
}

// parseRecord validates one ingest line into a typed observation.
func parseRecord(rec obsfile.Record) (ident.Protocol, alias.Observation, error) {
	addr, err := netip.ParseAddr(rec.Addr)
	if err != nil {
		return 0, alias.Observation{}, err
	}
	if rec.Digest == "" {
		return 0, alias.Observation{}, errors.New("empty digest")
	}
	for _, p := range ident.Protocols {
		if p.String() == rec.Proto {
			return p, alias.Observation{
				Addr: addr,
				ID:   ident.Identifier{Proto: p, Digest: rec.Digest},
			}, nil
		}
	}
	return 0, alias.Observation{}, fmt.Errorf("unknown protocol %q", rec.Proto)
}

// ingestReply is the ingest endpoint's success payload.
type ingestReply struct {
	// Accepted counts this request's lines landed in the queue; Received and
	// Applied are the session's running totals.
	Accepted int   `json:"accepted"`
	Received int64 `json:"received"`
	Applied  int64 `json:"applied"`
}

// handleIngest streams NDJSON observations (the obsfile wire format) into
// the session's bounded queue. A full queue stops mid-stream and answers
// 429 + Retry-After with the count of lines already accepted — explicit
// backpressure, never silent drops.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFrom(w, r)
	if sess == nil {
		return
	}
	if sess.env != nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("session %s is world-backed and refuses ingest", sess.ID))
		return
	}
	dec := json.NewDecoder(bufio.NewReader(r.Body))
	accepted, line := 0, 0
	for {
		var rec obsfile.Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error:    fmt.Sprintf("line %d: %v", line+1, err),
				Accepted: accepted,
			})
			return
		}
		line++
		p, o, err := parseRecord(rec)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error:    fmt.Sprintf("line %d: %v", line, err),
				Accepted: accepted,
			})
			return
		}
		switch err := sess.offer(p, o); err {
		case nil:
			accepted++
		case errQueueFull:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{
				Error:    err.Error(),
				Accepted: accepted,
			})
			return
		default:
			writeJSON(w, http.StatusGone, errorBody{Error: err.Error(), Accepted: accepted})
			return
		}
	}
	writeJSON(w, http.StatusOK, ingestReply{
		Accepted: accepted,
		Received: sess.received.Load(),
		Applied:  sess.applied.Load(),
	})
}

// handleResolve is the binary fast path distributed-resolution coordinators
// speak (internal/distres wire format: CRC-32C frames, the obslog
// discipline): observation batches, alias-set requests, and partition-merge
// requests execute directly against the session's resolver state, bypassing
// the NDJSON queue. The human-facing /v1 NDJSON API stays untouched — the
// frames are for the fleet.
func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFrom(w, r)
	if sess == nil {
		return
	}
	if sess.env != nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("session %s is world-backed and refuses binary resolve", sess.ID))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, applied, err := distres.ServeResolve(body, sess.rsess)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if applied > 0 {
		sess.received.Add(int64(applied))
		sess.applied.Add(int64(applied))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(resp)
}

// handleFlush blocks until every observation queued before it has been
// applied, making a following query deterministic.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFrom(w, r)
	if sess == nil {
		return
	}
	if sess.env != nil { // world sessions are always settled
		writeJSON(w, http.StatusOK, map[string]int64{"applied": 0})
		return
	}
	if err := sess.flush(r.Context().Done()); err != nil {
		code := http.StatusGone
		if err == errTimedOut {
			code = http.StatusGatewayTimeout
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"applied": sess.applied.Load()})
}

// handleSets serves one named alias-set partition ("ssh", "bgp", "snmpv3",
// "union-v4", "union-v6", "dualstack") as sorted address lists.
func (s *Server) handleSets(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFrom(w, r)
	if sess == nil {
		return
	}
	view := sess.snapshot()
	name := r.URL.Query().Get("view")
	sets, ok := view.byName[name]
	if !ok {
		names := make([]string, 0, len(view.parts))
		for _, p := range view.parts {
			names = append(names, p.Name)
		}
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown view %q (have: %v)", name, names))
		return
	}
	out := make([][]string, len(sets))
	for i, set := range sets {
		addrs := make([]string, len(set.Addrs))
		for j, a := range set.Addrs {
			addrs[j] = a.String()
		}
		out[i] = addrs
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session": sess.ID,
		"view":    name,
		"count":   len(out),
		"sets":    out,
	})
}

// statsReply is the stats endpoint's payload: counters plus the canonical
// digests, directly comparable with a scenario scorecard's sets_digest.
type statsReply struct {
	Session    string                     `json:"session"`
	Backend    string                     `json:"backend"`
	World      bool                       `json:"world"`
	Received   int64                      `json:"received"`
	Applied    int64                      `json:"applied"`
	Queued     int                        `json:"queued"`
	Sets       map[string]int             `json:"sets"`
	SetsDigest string                     `json:"sets_digest"`
	Partitions []scenario.PartitionDigest `json:"partitions"`
}

// stats assembles the session's scorecard from the memoized snapshot.
func (sess *Session) stats() statsReply {
	view := sess.snapshot()
	counts := make(map[string]int, len(view.parts))
	for _, p := range view.parts {
		counts[p.Name] = len(p.Sets)
	}
	queued := 0
	if sess.queue != nil {
		queued = len(sess.queue)
	}
	return statsReply{
		Session:    sess.ID,
		Backend:    sess.cfg.Backend,
		World:      sess.cfg.World,
		Received:   sess.received.Load(),
		Applied:    sess.applied.Load(),
		Queued:     queued,
		Sets:       counts,
		SetsDigest: view.digest,
		Partitions: view.breakdown,
	}
}

// handleStats serves the session scorecard.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFrom(w, r)
	if sess == nil {
		return
	}
	writeJSON(w, http.StatusOK, sess.stats())
}

// handleSessionStats is the path-scoped alias of /v1/stats.
func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	s.handleStats(w, r)
}

// asviewReply is one AS-level aggregation.
type asviewReply struct {
	Session string           `json:"session"`
	View    string           `json:"view"`
	ASes    int              `json:"ases"`
	Top     []asview.ASCount `json:"top"`
}

// handleASView aggregates one partition per origin AS — world-backed
// sessions only, since only a generated world carries address→ASN truth.
func (s *Server) handleASView(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFrom(w, r)
	if sess == nil {
		return
	}
	if sess.env == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("session %s has no AS mapping (asview needs a world-backed session)", sess.ID))
		return
	}
	view := sess.snapshot()
	name := r.URL.Query().Get("view")
	if name == "" {
		name = "union-v4"
	}
	sets, ok := view.byName[name]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown view %q", name))
		return
	}
	top := 10
	if t := r.URL.Query().Get("top"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad top %q", t))
			return
		}
		top = n
	}
	counts := asview.SetsPerAS(asview.FromMap(sess.env.World.AddrASN), sets)
	writeJSON(w, http.StatusOK, asviewReply{
		Session: sess.ID,
		View:    name,
		ASes:    len(counts),
		Top:     asview.Top(counts, top),
	})
}

// handleScenarioList serves the preset catalog.
func (s *Server) handleScenarioList(w http.ResponseWriter, r *http.Request) {
	type preset struct {
		Name    string `json:"name"`
		Summary string `json:"summary"`
	}
	out := []preset{}
	for _, p := range scenario.Presets() {
		out = append(out, preset{Name: p.Name, Summary: p.Summary})
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": out})
}

// scenarioRun memoizes one scenario execution per option tuple, so
// concurrent tenants asking for the same run share a single computation.
type scenarioRun struct {
	once sync.Once
	val  any
	err  error
}

// handleScenarioRun executes (or replays) one preset on demand. Quick mode
// is the default; epochs >= 2 selects a longitudinal run.
func (s *Server) handleScenarioRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	q := r.URL.Query()
	opts := scenario.Options{Quick: true}
	if v := q.Get("quick"); v == "0" || v == "false" {
		opts.Quick = false
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", v))
			return
		}
		opts.Seed = seed
	}
	if v := q.Get("scale"); v != "" {
		scale, err := strconv.ParseFloat(v, 64)
		if err != nil || scale <= 0 || scale > s.cfg.MaxScale {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("scale %q out of range (0, %v]", v, s.cfg.MaxScale))
			return
		}
		opts.Scale = scale
	}
	opts.Backend = q.Get("backend")
	epochs := 0
	if v := q.Get("epochs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("bad epochs %q (longitudinal runs need >= 2)", v))
			return
		}
		epochs = n
	}
	if _, ok := scenario.Lookup(name); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown scenario %q", name))
		return
	}

	key := fmt.Sprintf("%s|quick=%t|seed=%d|scale=%g|backend=%s|epochs=%d",
		name, opts.Quick, opts.Seed, opts.Scale, opts.Backend, epochs)
	s.scenMu.Lock()
	run, ok := s.scenarioRuns[key]
	if !ok {
		run = &scenarioRun{}
		s.scenarioRuns[key] = run
	}
	s.scenMu.Unlock()
	run.once.Do(func() {
		if epochs >= 2 {
			run.val, run.err = scenario.RunLongitudinal(name,
				scenario.LongitudinalOptions{Options: opts, Epochs: epochs})
		} else {
			run.val, run.err = scenario.Run(name, opts)
		}
	})
	if run.err != nil {
		writeError(w, http.StatusInternalServerError, run.err)
		return
	}
	writeJSON(w, http.StatusOK, run.val)
}
