package aliasd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"aliaslimit/internal/experiments"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obsfile"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/scenario"
	"aliaslimit/internal/topo"
	"aliaslimit/internal/xrand"
)

// The load-test harness: N concurrent tenants, each with its own session,
// ingesting the same observation corpus in a tenant-specific shuffled order
// over real HTTP, then querying every view. It reports latency percentiles
// in the bench-gate JSON shape and cross-checks every tenant's final
// sets_digest against the batch backend's digest of the same corpus — the
// end-to-end byte-determinism proof, through the wire.

// LoadOptions tune one load-test run.
type LoadOptions struct {
	// Clients is the number of concurrent tenants; 0 picks 8.
	Clients int
	// Requests is the number of query requests per tenant; 0 picks 40.
	Requests int
	// Batch is the number of observation lines per ingest request; 0 picks
	// 400.
	Batch int
	// Scale / Seed pin the corpus world. Zero picks 0.15 / 1 — the
	// BENCH_baseline.json header values, so reports feed the compare gate.
	Scale float64
	Seed  uint64
	// Workers / Parallelism tune corpus collection.
	Workers     int
	Parallelism int
	// Backend names the session backend every tenant requests; empty picks
	// the daemon default (streaming).
	Backend string
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// withDefaults fills unset fields.
func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Requests <= 0 {
		o.Requests = 40
	}
	if o.Batch <= 0 {
		o.Batch = 400
	}
	if o.Scale == 0 {
		o.Scale = 0.15
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// BenchEntry is one measurement in the bench-gate JSON shape
// (cmd/benchtables reads the same fields from BENCH_baseline.json).
type BenchEntry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

// LatencySummary is one request class's percentile summary in milliseconds,
// for human eyes; the Results entries carry the same numbers for the gate.
type LatencySummary struct {
	Class string  `json:"class"`
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P90ms float64 `json:"p90_ms"`
	P99ms float64 `json:"p99_ms"`
}

// LoadReport is the harness's machine-readable outcome. Scale/Seed/CPUs/
// GoMaxProcs/GoOS/GoArch mirror the benchtables report header so the compare
// gate accepts the file.
type LoadReport struct {
	Scale      float64 `json:"scale"`
	Seed       uint64  `json:"seed"`
	CPUs       int     `json:"cpus"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoOS       string  `json:"goos"`
	GoArch     string  `json:"goarch"`
	// Clients / Observations size the run: tenants, and corpus lines each
	// tenant ingested.
	Clients      int `json:"clients"`
	Observations int `json:"observations"`
	// Retries counts 429-backpressure rounds the clients absorbed.
	Retries int `json:"retries"`
	// SetsDigest is the digest every tenant converged to — equal to the
	// batch backend's digest over the same corpus.
	SetsDigest string           `json:"sets_digest"`
	Latencies  []LatencySummary `json:"latencies"`
	Results    []BenchEntry     `json:"results"`
}

// latencyBook collects per-class request durations from all clients.
type latencyBook struct {
	mu sync.Mutex
	by map[string][]time.Duration
}

// add records one request.
func (b *latencyBook) add(class string, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.by[class] = append(b.by[class], d)
}

// percentile returns the q-th percentile (0 < q <= 1) of sorted durations.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RunLoadTest builds the corpus world, starts an aliasd server on a loopback
// listener, drives it with opts.Clients concurrent tenants, and returns the
// latency report. It fails if any tenant's final sets_digest differs from
// the batch backend's digest over the same corpus.
func RunLoadTest(cfg Config, opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// The corpus and the expected digest come from an ordinary batch-backend
	// environment — the reference implementation the daemon must match.
	tc := topo.Default()
	tc.Seed = opts.Seed
	tc.Scale = opts.Scale
	env, err := experiments.BuildEnv(experiments.Options{
		Topo: tc,
		Scan: experiments.ScanOptions{
			Workers:     opts.Workers,
			Seed:        opts.Seed,
			Parallelism: opts.Parallelism,
		},
		Backend: resolver.NewBatch(),
	})
	if err != nil {
		return nil, fmt.Errorf("aliasd: building corpus world: %w", err)
	}
	wantDigest, _ := scenario.DigestPartitions(scenario.ScoredPartitions(env))

	// Pre-marshal the corpus once; clients reorder by index. SSH and BGP
	// come from the union dataset and SNMPv3 from the active scan, exactly
	// the partitions the scorecard digests (the union dataset carries no
	// extra SNMPv3 observations, so this is the full corpus).
	var lines [][]byte
	for _, p := range []ident.Protocol{ident.SSH, ident.BGP, ident.SNMP} {
		ds := env.Both
		if p == ident.SNMP {
			ds = env.Active
		}
		for _, o := range ds.Obs[p] {
			rec := obsfile.Record{Addr: o.Addr.String(), Proto: p.String(), Digest: o.ID.Digest}
			data, err := json.Marshal(rec)
			if err != nil {
				return nil, err
			}
			lines = append(lines, append(data, '\n'))
		}
	}
	logf("corpus: %d observations (scale %g seed %d), expected digest %.12s…",
		len(lines), opts.Scale, opts.Seed, wantDigest)

	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		hs.Shutdown(ctx)
	}()

	book := &latencyBook{by: make(map[string][]time.Duration)}
	var retries sync.Map // int -> int, per-client retry counts
	errs := make(chan error, opts.Clients)
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n, err := driveClient(base, c, lines, wantDigest, opts, book)
			retries.Store(c, n)
			errs <- err
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &LoadReport{
		Scale: opts.Scale, Seed: opts.Seed,
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Clients:      opts.Clients,
		Observations: len(lines),
		SetsDigest:   wantDigest,
	}
	retries.Range(func(_, v any) bool { rep.Retries += v.(int); return true })
	book.mu.Lock()
	classes := make([]string, 0, len(book.by))
	for class := range book.by {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		ds := book.by[class]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		p50, p90, p99 := percentile(ds, 0.50), percentile(ds, 0.90), percentile(ds, 0.99)
		rep.Latencies = append(rep.Latencies, LatencySummary{
			Class: class, Count: len(ds),
			P50ms: float64(p50.Nanoseconds()) / 1e6,
			P90ms: float64(p90.Nanoseconds()) / 1e6,
			P99ms: float64(p99.Nanoseconds()) / 1e6,
		})
		for q, d := range map[string]time.Duration{"p50": p50, "p90": p90, "p99": p99} {
			rep.Results = append(rep.Results, BenchEntry{
				Name:    "aliasd_" + class + "_" + q,
				NsPerOp: float64(d.Nanoseconds()),
				Ops:     len(ds),
			})
		}
		logf("%-7s %5d requests  p50 %.2fms  p90 %.2fms  p99 %.2fms",
			class, len(ds), float64(p50.Nanoseconds())/1e6,
			float64(p90.Nanoseconds())/1e6, float64(p99.Nanoseconds())/1e6)
	}
	book.mu.Unlock()
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	logf("all %d tenants converged to digest %.12s… after %d backpressure retries",
		opts.Clients, wantDigest, rep.Retries)
	return rep, nil
}

// queryViews is the per-tenant query rotation.
var queryViews = []string{"ssh", "bgp", "snmpv3", "union-v4", "union-v6", "dualstack"}

// driveClient runs one tenant's full lifecycle: create session, ingest the
// shuffled corpus with 429 retries, flush, query, verify the digest, delete.
// It returns the number of backpressure retries it absorbed.
func driveClient(base string, c int, lines [][]byte, wantDigest string, opts LoadOptions, book *latencyBook) (int, error) {
	client := &http.Client{}
	timed := func(class string, f func() error) error {
		start := time.Now()
		err := f()
		book.add(class, time.Since(start))
		return err
	}

	// Create the session.
	var sessID string
	err := timed("session", func() error {
		body := fmt.Sprintf(`{"backend":%q}`, opts.Backend)
		if opts.Backend == "" {
			body = "{}"
		}
		resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewBufferString(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var info struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusCreated || info.ID == "" {
			return fmt.Errorf("client %d: session create: status %d", c, resp.StatusCode)
		}
		sessID = info.ID
		return nil
	})
	if err != nil {
		return 0, err
	}

	// Ingest the corpus in a tenant-specific order — the streaming
	// structures are order-insensitive, and equal final digests prove it.
	order := xrand.NewSplitMix64(opts.Seed ^ uint64(c+1)).Perm(len(lines))
	retries := 0
	for lo := 0; lo < len(order); lo += opts.Batch {
		hi := lo + opts.Batch
		if hi > len(order) {
			hi = len(order)
		}
		pending := order[lo:hi]
		for len(pending) > 0 {
			var body bytes.Buffer
			for _, idx := range pending {
				body.Write(lines[idx])
			}
			var status, accepted int
			err := timed("ingest", func() error {
				resp, err := client.Post(base+"/v1/ingest?session="+sessID, "application/x-ndjson", &body)
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				status = resp.StatusCode
				var reply struct {
					Accepted int `json:"accepted"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
					return err
				}
				accepted = reply.Accepted
				return nil
			})
			if err != nil {
				return retries, err
			}
			switch status {
			case http.StatusOK:
				pending = nil
			case http.StatusTooManyRequests:
				// Honour the backpressure: drop what was accepted, back off
				// briefly (the harness compresses the advertised Retry-After
				// to keep runs fast), resend the rest.
				pending = pending[accepted:]
				retries++
				time.Sleep(2 * time.Millisecond)
			default:
				return retries, fmt.Errorf("client %d: ingest status %d", c, status)
			}
		}
	}

	// Flush so the queries below see the full corpus.
	err = timed("flush", func() error {
		resp, err := client.Post(base+"/v1/flush?session="+sessID, "application/json", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("client %d: flush status %d", c, resp.StatusCode)
		}
		return nil
	})
	if err != nil {
		return retries, err
	}

	// Query rotation: the six views plus stats.
	for i := 0; i < opts.Requests; i++ {
		url := base + "/v1/stats?session=" + sessID
		if i%(len(queryViews)+1) != len(queryViews) {
			url = base + "/v1/sets?session=" + sessID + "&view=" + queryViews[i%(len(queryViews)+1)]
		}
		err := timed("query", func() error {
			resp, err := client.Get(url)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("client %d: query status %d (%s)", c, resp.StatusCode, url)
			}
			return nil
		})
		if err != nil {
			return retries, err
		}
	}

	// The end-to-end determinism check: this tenant's digest must equal the
	// batch backend's over the same observations.
	resp, err := client.Get(base + "/v1/stats?session=" + sessID)
	if err != nil {
		return retries, err
	}
	var stats struct {
		Applied    int64  `json:"applied"`
		SetsDigest string `json:"sets_digest"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return retries, err
	}
	if stats.SetsDigest != wantDigest {
		return retries, fmt.Errorf("client %d: sets_digest %s != batch digest %s (applied %d of %d)",
			c, stats.SetsDigest, wantDigest, stats.Applied, len(lines))
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+sessID, nil)
	if err != nil {
		return retries, err
	}
	if resp, err := client.Do(req); err == nil {
		resp.Body.Close()
	}
	return retries, nil
}
