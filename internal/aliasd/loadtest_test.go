package aliasd

import (
	"strings"
	"testing"
)

// TestLoadTestQuick is the end-to-end tentpole check: concurrent tenants
// ingest a real measured corpus over HTTP in shuffled orders and every
// tenant's sets_digest equals the batch backend's digest of the same
// observations. Runs at a tiny scale; the CI aliasd-smoke job runs the same
// harness at the gate scale via cmd/aliasd -loadtest.
func TestLoadTestQuick(t *testing.T) {
	rep, err := RunLoadTest(Config{}, LoadOptions{
		Clients:  4,
		Requests: 8,
		Batch:    250,
		Scale:    0.05,
		Seed:     1,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observations == 0 {
		t.Fatal("empty corpus")
	}
	if len(rep.SetsDigest) != 64 {
		t.Fatalf("report digest %q not a sha256 hex string", rep.SetsDigest)
	}
	classes := map[string]bool{}
	for _, l := range rep.Latencies {
		classes[l.Class] = true
		if l.Count == 0 {
			t.Fatalf("latency class %s has no samples", l.Class)
		}
		if l.P50ms > l.P99ms {
			t.Fatalf("latency class %s: p50 %v > p99 %v", l.Class, l.P50ms, l.P99ms)
		}
	}
	for _, want := range []string{"session", "ingest", "flush", "query"} {
		if !classes[want] {
			t.Fatalf("no %s latency class in %+v", want, rep.Latencies)
		}
	}
	names := map[string]bool{}
	for _, e := range rep.Results {
		names[e.Name] = true
		if e.NsPerOp < 0 || e.Ops <= 0 {
			t.Fatalf("bad bench entry %+v", e)
		}
		if !strings.HasPrefix(e.Name, "aliasd_") {
			t.Fatalf("bench entry %q not namespaced", e.Name)
		}
	}
	for _, want := range []string{"aliasd_ingest_p50", "aliasd_ingest_p99", "aliasd_query_p50", "aliasd_query_p99"} {
		if !names[want] {
			t.Fatalf("missing gate entry %s in %v", want, names)
		}
	}
}
