package aliasd

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/experiments"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/scenario"
	"aliaslimit/internal/topo"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// errQueueFull signals ingest backpressure (429 + Retry-After).
	errQueueFull = errors.New("ingest queue full")
	// errClosed signals a deleted or draining session (410).
	errClosed = errors.New("session closed")
	// errTimedOut signals the request deadline expired mid-operation (504).
	errTimedOut = errors.New("timed out")
	// errCapacity signals the session registry is full (503).
	errCapacity = errors.New("session capacity reached")
)

// SessionConfig is the tenant-supplied shape of one session (the POST
// /v1/sessions body).
type SessionConfig struct {
	// Backend names the resolver strategy (any resolver.Names() entry —
	// "batch", "streaming", "sharded", and "distributed" when linked; empty
	// picks streaming — the online backend is the natural default for a live
	// service). Every backend yields byte-identical alias sets.
	Backend string `json:"backend,omitempty"`
	// World, when true, builds a sealed measured environment instead of an
	// empty ingest session: the daemon generates a synthetic Internet at
	// Seed/Scale, runs both measurement campaigns, and serves the memoized
	// views. World sessions refuse ingest (409).
	World bool `json:"world,omitempty"`
	// Seed pins the world; 0 keeps the topo default. Ignored unless World.
	Seed uint64 `json:"seed,omitempty"`
	// Scale sizes the world; 0 picks 0.05. Ignored unless World.
	Scale float64 `json:"scale,omitempty"`
	// Workers / Parallelism tune the world's collection phase.
	Workers     int `json:"workers,omitempty"`
	Parallelism int `json:"parallelism,omitempty"`
}

// ingestItem is one queued unit of work: an observation, or a flush marker
// that the worker acknowledges by closing the channel.
type ingestItem struct {
	proto ident.Protocol
	obs   alias.Observation
	flush chan struct{}
}

// Session is one tenant's independent resolution state. Ingest sessions own
// an open resolver session fed by a single worker goroutine draining a
// bounded queue (and, on the binary fast path, directly by the resolve
// endpoint); world-backed sessions own a sealed environment. Neither shares
// mutable state with any other session.
type Session struct {
	// ID is the registry key ("s1", "s2", …); seq its creation order.
	ID  string
	seq int

	cfg SessionConfig

	// env is the sealed environment of a world-backed session; nil for
	// ingest sessions.
	env *experiments.Env

	// backend is the named resolver factory; rsess is the open resolver
	// session holding this tenant's live resolution state (ingest sessions
	// only — world sessions keep their state inside env).
	backend resolver.Backend
	rsess   resolver.Session
	queue   chan ingestItem
	done    chan struct{}
	hook    func()

	// sendMu guards queue sends against close; closed flips once.
	sendMu sync.RWMutex
	closed bool

	// received counts observations accepted into the queue (or on the binary
	// fast path); applied counts observations landed in the resolver session.
	received atomic.Int64
	applied  atomic.Int64

	// viewMu guards the memoized snapshot; view caches the partitions as of
	// view.at applied observations.
	viewMu sync.Mutex
	view   *sessionView
}

// sortSessions orders sessions by creation sequence.
func sortSessions(ss []*Session) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].seq < ss[j].seq })
}

// createSession registers a new tenant. It fails when draining or at
// capacity; world-backed construction runs outside the registry lock so slow
// builds don't block other tenants.
func (s *Server) createSession(cfg SessionConfig) (*Session, error) {
	if cfg.Backend == "" {
		cfg.Backend = "streaming"
	}
	backend, err := resolver.New(cfg.Backend, 0)
	if err != nil {
		return nil, err
	}

	sess := &Session{cfg: cfg, backend: backend}
	if cfg.World {
		if cfg.Scale == 0 {
			cfg.Scale = 0.05
			sess.cfg.Scale = cfg.Scale
		}
		if cfg.Scale < 0 || cfg.Scale > s.cfg.MaxScale {
			return nil, fmt.Errorf("scale %v out of range (0, %v]", cfg.Scale, s.cfg.MaxScale)
		}
		env, err := buildWorld(cfg, backend)
		if err != nil {
			return nil, err
		}
		sess.env = env
	} else {
		rsess, err := backend.Open(resolver.Options{})
		if err != nil {
			closeBackend(backend)
			return nil, err
		}
		sess.rsess = rsess
		sess.queue = make(chan ingestItem, s.cfg.QueueDepth)
		sess.done = make(chan struct{})
		sess.hook = s.cfg.applyHook
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		sess.release()
		return nil, errClosed
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		sess.release()
		return nil, fmt.Errorf("%w (%d sessions)", errCapacity, s.cfg.MaxSessions)
	}
	s.nextID++
	sess.ID = fmt.Sprintf("s%d", s.nextID)
	sess.seq = s.nextID
	s.sessions[sess.ID] = sess
	if sess.queue != nil {
		go sess.loop()
	}
	return sess, nil
}

// buildWorld measures one tenant's private environment, mirroring the
// facade's option mapping (topo defaults, seed driving both generation and
// scan order).
func buildWorld(cfg SessionConfig, backend resolver.Backend) (*experiments.Env, error) {
	tc := topo.Default()
	if cfg.Seed != 0 {
		tc.Seed = cfg.Seed
	}
	tc.Scale = cfg.Scale
	return experiments.BuildEnv(experiments.Options{
		Topo: tc,
		Scan: experiments.ScanOptions{
			Workers:     cfg.Workers,
			Seed:        tc.Seed,
			Parallelism: cfg.Parallelism,
		},
		Backend: backend,
	})
}

// release frees the resolver resources of a session that was opened but
// never registered (or has finished draining). Backends that hold external
// resources — the distributed backend's worker cluster — implement io.Closer.
func (sess *Session) release() {
	if sess.rsess != nil {
		sess.rsess.Close()
	}
	closeBackend(sess.backend)
}

// closeBackend closes a backend factory when it holds external resources.
func closeBackend(b resolver.Backend) {
	if c, ok := b.(io.Closer); ok {
		c.Close()
	}
}

// loop is the session worker: it drains the queue into the live resolver
// session, acknowledging flush markers in arrival order.
func (sess *Session) loop() {
	defer close(sess.done)
	for it := range sess.queue {
		if it.flush != nil {
			close(it.flush)
			continue
		}
		if sess.hook != nil {
			sess.hook()
		}
		sess.rsess.Observe(it.obs)
		sess.applied.Add(1)
	}
	// The queue only closes once the session has left the registry (or the
	// daemon is draining), so the resolver resources can be released.
	sess.release()
}

// offer enqueues one observation without blocking. errQueueFull asks the
// client to back off; errClosed means the session is gone.
func (sess *Session) offer(p ident.Protocol, o alias.Observation) error {
	sess.sendMu.RLock()
	defer sess.sendMu.RUnlock()
	if sess.closed {
		return errClosed
	}
	select {
	case sess.queue <- ingestItem{proto: p, obs: o}:
		sess.received.Add(1)
		return nil
	default:
		return errQueueFull
	}
}

// flush enqueues a marker and waits until the worker has applied everything
// queued before it, bounded by cancel.
func (sess *Session) flush(cancel <-chan struct{}) error {
	marker := ingestItem{flush: make(chan struct{})}
	sess.sendMu.RLock()
	if sess.closed {
		sess.sendMu.RUnlock()
		return errClosed
	}
	select {
	case sess.queue <- marker:
		sess.sendMu.RUnlock()
	case <-cancel:
		sess.sendMu.RUnlock()
		return errTimedOut
	}
	select {
	case <-marker.flush:
		return nil
	case <-cancel:
		return errTimedOut
	}
}

// close stops the worker after it finishes the observations already queued.
// Idempotent; a no-op for world-backed sessions.
func (sess *Session) close() {
	if sess.queue == nil {
		return
	}
	sess.sendMu.Lock()
	defer sess.sendMu.Unlock()
	if sess.closed {
		return
	}
	sess.closed = true
	close(sess.queue)
}

// drain applies every queued observation, then stops the worker — the
// SIGTERM path. Bounded by cancel.
func (sess *Session) drain(cancel <-chan struct{}) error {
	if sess.queue == nil {
		return nil
	}
	if err := sess.flush(cancel); err != nil && err != errClosed {
		return err
	}
	sess.close()
	select {
	case <-sess.done:
		return nil
	case <-cancel:
		return errTimedOut
	}
}

// sessionView is one memoized point-in-time analysis snapshot: the scored
// partitions, their digests, and a by-name index for the sets endpoint.
type sessionView struct {
	at        int64
	parts     []scenario.Partition
	digest    string
	breakdown []scenario.PartitionDigest
	byName    map[string][]alias.Set
}

// snapshot returns the session's current analysis view, recomputing only
// when observations have been applied since the cached one. World-backed
// sessions compute once (their applied count never moves) and additionally
// share the underlying env memoization.
func (sess *Session) snapshot() *sessionView {
	sess.viewMu.Lock()
	defer sess.viewMu.Unlock()
	at := sess.applied.Load()
	if sess.view != nil && sess.view.at == at {
		return sess.view
	}
	var parts []scenario.Partition
	if sess.env != nil {
		parts = scenario.ScoredPartitions(sess.env)
	} else {
		parts = sess.livePartitions()
	}
	v := &sessionView{at: at, parts: parts, byName: make(map[string][]alias.Set, len(parts))}
	v.digest, v.breakdown = scenario.DigestPartitions(parts)
	for _, p := range parts {
		v.byName[p.Name] = p.Sets
	}
	sess.view = v
	return v
}

// livePartitions derives the scored partitions from the live resolver
// session, mirroring scenario.ScoredPartitions partition for partition so an
// ingest session's sets_digest is directly comparable with a scorecard's: the
// per-protocol non-singleton groups, the per-family union merges of the
// non-singleton family subsets, and the dual-stack sets of the all-family
// merge.
func (sess *Session) livePartitions() []scenario.Partition {
	order := []ident.Protocol{ident.SSH, ident.BGP, ident.SNMP}
	sets := make(map[ident.Protocol][]alias.Set, len(order))
	for _, p := range order {
		sets[p] = sess.rsess.Sets(p)
	}
	var parts []scenario.Partition
	for _, p := range order {
		parts = append(parts, scenario.Partition{
			Name: strings.ToLower(p.String()),
			Sets: alias.NonSingleton(sets[p]),
		})
	}
	for _, v4 := range []bool{true, false} {
		name := "union-v4"
		if !v4 {
			name = "union-v6"
		}
		merged := sess.rsess.Merged(
			alias.NonSingleton(alias.FilterFamily(sets[ident.SSH], v4)),
			alias.NonSingleton(alias.FilterFamily(sets[ident.BGP], v4)),
			alias.NonSingleton(alias.FilterFamily(sets[ident.SNMP], v4)),
		)
		parts = append(parts, scenario.Partition{Name: name, Sets: alias.NonSingleton(merged)})
	}
	dual := sess.rsess.Merged(sets[ident.SSH], sets[ident.BGP], sets[ident.SNMP])
	parts = append(parts, scenario.Partition{Name: "dualstack", Sets: alias.DualStack(dual)})
	return parts
}
