package aliasd

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"aliaslimit/internal/distres"
)

// RunWorkerIfRequested turns the current process into a distributed-resolution
// shard worker when distres.WorkerEnv is set, and returns immediately (doing
// nothing) otherwise. A main function that calls this first is
// "worker-capable": the distres coordinator re-executes the binary with the
// variable set, and instead of running its normal command the process serves a
// full aliasd API on a loopback port, prints the ready handshake
// (distres.ReadyPrefix plus its base URL) on stdout, and exits when its stdin
// — held by the coordinator — reaches EOF.
//
// A shard worker is deliberately nothing more than an ordinary aliasd server:
// the coordinator creates plain sessions over it and speaks the binary
// /v1/sessions/{id}/resolve fast path, while the whole human-facing NDJSON
// API stays available for inspection.
func RunWorkerIfRequested() {
	if os.Getenv(distres.WorkerEnv) == "" {
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "aliasd worker: listen: %v\n", err)
		os.Exit(1)
	}
	srv := NewServer(Config{})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	fmt.Printf("%shttp://%s\n", distres.ReadyPrefix, ln.Addr())

	// The coordinator holds our stdin; EOF is the exit signal. Closing the
	// listener first refuses new work, then the process leaves — workers hold
	// no state a fresh session cannot rebuild, so there is nothing to drain.
	io.Copy(io.Discard, os.Stdin)
	hs.Close()
	os.Exit(0)
}
