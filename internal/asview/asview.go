// Package asview aggregates alias and dual-stack sets by autonomous system:
// the per-AS distributions of Figures 5 and 6 and the top-10 tables
// (Tables 5 and 6) of the paper's AS-level analysis.
//
// The aggregation is a join through a Mapper, the address→origin-AS oracle:
// FromMap lifts a synthetic world's assignment table, and a real deployment
// would wrap a longest-prefix-match table built from RouteViews. On top of
// it, SpreadPerSet measures how many ASes one set straddles (Figure 5) and
// SetsPerAS counts sets per AS — a set spanning several ASes counts once in
// each, the paper's per-AS accounting (Figure 6). Top orders ASes by count
// with ASN as the deterministic tiebreak, which is what lets the rendered
// tables take part in the byte-determinism contract. The same counts feed
// ecdf for the figure curves and the aliasd daemon's /v1/asview endpoint.
package asview

import (
	"net/netip"
	"sort"

	"aliaslimit/internal/alias"
)

// Mapper resolves an address to its origin AS. The synthetic world's
// AddrASN map satisfies it via MapFunc; a real deployment would wrap a
// longest-prefix-match table built from RouteViews.
type Mapper interface {
	ASNOf(addr netip.Addr) (uint32, bool)
}

// MapFunc adapts a function to Mapper.
type MapFunc func(addr netip.Addr) (uint32, bool)

// ASNOf implements Mapper.
func (f MapFunc) ASNOf(addr netip.Addr) (uint32, bool) { return f(addr) }

// FromMap wraps a plain address→ASN map.
func FromMap(m map[netip.Addr]uint32) Mapper {
	return MapFunc(func(a netip.Addr) (uint32, bool) {
		asn, ok := m[a]
		return asn, ok
	})
}

// ASNsOfSet returns the distinct ASes a set's addresses originate from,
// ascending. Unmapped addresses are skipped.
func ASNsOfSet(m Mapper, s alias.Set) []uint32 {
	seen := map[uint32]bool{}
	for _, a := range s.Addrs {
		if asn, ok := m.ASNOf(a); ok {
			seen[asn] = true
		}
	}
	out := make([]uint32, 0, len(seen))
	for asn := range seen {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SpreadPerSet returns, for each set, how many distinct ASes it spans — the
// Figure 5 distribution. Order follows the input sets.
func SpreadPerSet(m Mapper, sets []alias.Set) []int {
	out := make([]int, len(sets))
	for i, s := range sets {
		out[i] = len(ASNsOfSet(m, s))
	}
	return out
}

// SetsPerAS counts sets per AS. A set spanning several ASes counts once for
// each (it is an alias set "in" every AS it touches), matching the paper's
// per-AS accounting.
func SetsPerAS(m Mapper, sets []alias.Set) map[uint32]int {
	counts := map[uint32]int{}
	for _, s := range sets {
		for _, asn := range ASNsOfSet(m, s) {
			counts[asn]++
		}
	}
	return counts
}

// ASCount is one row of a top-N table. The JSON tags are the aliasd
// /v1/asview wire shape.
type ASCount struct {
	// ASN is the autonomous system number.
	ASN uint32 `json:"asn"`
	// Sets is the number of alias (or dual-stack) sets attributed to it.
	Sets int `json:"sets"`
}

// Top returns the n largest ASes by set count, ties broken by ASN for
// deterministic output.
func Top(counts map[uint32]int, n int) []ASCount {
	out := make([]ASCount, 0, len(counts))
	for asn, c := range counts {
		out = append(out, ASCount{ASN: asn, Sets: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sets != out[j].Sets {
			return out[i].Sets > out[j].Sets
		}
		return out[i].ASN < out[j].ASN
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// CountASNs returns the number of distinct ASes across a plain address list
// (Table 1's #ASN columns).
func CountASNs(m Mapper, addrs []netip.Addr) int {
	seen := map[uint32]bool{}
	for _, a := range addrs {
		if asn, ok := m.ASNOf(a); ok {
			seen[asn] = true
		}
	}
	return len(seen)
}
