package asview

import (
	"net/netip"
	"testing"

	"aliaslimit/internal/alias"
)

func mapper() Mapper {
	m := map[netip.Addr]uint32{
		netip.MustParseAddr("10.0.0.1"):    100,
		netip.MustParseAddr("10.0.0.2"):    100,
		netip.MustParseAddr("10.1.0.1"):    200,
		netip.MustParseAddr("10.2.0.1"):    300,
		netip.MustParseAddr("2001:db8::1"): 100,
	}
	return FromMap(m)
}

func set(ss ...string) alias.Set {
	var a []netip.Addr
	for _, s := range ss {
		a = append(a, netip.MustParseAddr(s))
	}
	return alias.NewSet(a...)
}

func TestASNsOfSet(t *testing.T) {
	got := ASNsOfSet(mapper(), set("10.0.0.1", "10.0.0.2", "10.1.0.1", "10.99.0.1"))
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Errorf("ASNs = %v, want [100 200]", got)
	}
}

func TestSpreadPerSet(t *testing.T) {
	sets := []alias.Set{
		set("10.0.0.1", "10.0.0.2"),             // 1 AS
		set("10.0.0.1", "10.1.0.1", "10.2.0.1"), // 3 ASes
	}
	got := SpreadPerSet(mapper(), sets)
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("spread = %v", got)
	}
}

func TestSetsPerASAndTop(t *testing.T) {
	sets := []alias.Set{
		set("10.0.0.1", "10.0.0.2"),
		set("10.0.0.1", "10.1.0.1"),
		set("10.2.0.1", "10.1.0.1"),
	}
	counts := SetsPerAS(mapper(), sets)
	if counts[100] != 2 || counts[200] != 2 || counts[300] != 1 {
		t.Errorf("counts = %v", counts)
	}
	top := Top(counts, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	// Tie between 100 and 200 broken by ASN.
	if top[0].ASN != 100 || top[1].ASN != 200 {
		t.Errorf("top = %v", top)
	}
	all := Top(counts, 10)
	if len(all) != 3 {
		t.Errorf("top10 = %v", all)
	}
}

func TestCountASNs(t *testing.T) {
	addrs := []netip.Addr{
		netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"),
		netip.MustParseAddr("10.1.0.1"),
		netip.MustParseAddr("10.250.0.1"), // unmapped
	}
	if got := CountASNs(mapper(), addrs); got != 2 {
		t.Errorf("CountASNs = %d, want 2", got)
	}
}

func TestDualStackMapping(t *testing.T) {
	got := ASNsOfSet(mapper(), set("10.0.0.1", "2001:db8::1"))
	if len(got) != 1 || got[0] != 100 {
		t.Errorf("v4+v6 set ASNs = %v", got)
	}
}
