package asview

import (
	"fmt"
	"net/netip"
	"sort"
)

// PrefixMapper is a longest-prefix-match address→origin-AS table, the
// structure a real deployment builds from RouteViews/RIPE RIS dumps. The
// synthetic world offers an exact per-address map; this exists so the
// AS-level analyses run unchanged against real BGP-derived data.
//
// Implementation: prefixes are bucketed by prefix length; lookup masks the
// address to each populated length, longest first, and probes a hash map.
// That is O(populated lengths) per lookup with no allocation — the classic
// flat-LPM scheme, plenty for analysis workloads.
type PrefixMapper struct {
	// v4 and v6 map masked prefix → ASN, bucketed by prefix length.
	v4 [33]map[netip.Addr]uint32
	v6 [129]map[netip.Addr]uint32
	n  int
}

// NewPrefixMapper returns an empty table.
func NewPrefixMapper() *PrefixMapper {
	return &PrefixMapper{}
}

// Insert adds one originated prefix. More-specific announcements naturally
// win at lookup time; duplicate exact prefixes keep the last origin (as a
// routing table would after an update).
func (m *PrefixMapper) Insert(prefix netip.Prefix, asn uint32) error {
	if !prefix.IsValid() {
		return fmt.Errorf("asview: invalid prefix")
	}
	prefix = prefix.Masked()
	bits := prefix.Bits()
	if prefix.Addr().Is4() {
		if m.v4[bits] == nil {
			m.v4[bits] = make(map[netip.Addr]uint32)
		}
		m.v4[bits][prefix.Addr()] = asn
	} else {
		if m.v6[bits] == nil {
			m.v6[bits] = make(map[netip.Addr]uint32)
		}
		m.v6[bits][prefix.Addr()] = asn
	}
	m.n++
	return nil
}

// Len returns the number of inserted prefixes.
func (m *PrefixMapper) Len() int { return m.n }

// ASNOf implements Mapper by longest-prefix match.
func (m *PrefixMapper) ASNOf(addr netip.Addr) (uint32, bool) {
	addr = addr.Unmap()
	if addr.Is4() {
		for bits := 32; bits >= 0; bits-- {
			bucket := m.v4[bits]
			if bucket == nil {
				continue
			}
			p, err := addr.Prefix(bits)
			if err != nil {
				continue
			}
			if asn, ok := bucket[p.Addr()]; ok {
				return asn, true
			}
		}
		return 0, false
	}
	for bits := 128; bits >= 0; bits-- {
		bucket := m.v6[bits]
		if bucket == nil {
			continue
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		if asn, ok := bucket[p.Addr()]; ok {
			return asn, true
		}
	}
	return 0, false
}

// FromAddrMap compacts an exact per-address map into a prefix table by
// emitting host routes grouped under their covering /24 (or /64) when every
// member agrees — a convenience for turning the synthetic world's ground
// truth into LPM form for tests and tooling.
func FromAddrMap(exact map[netip.Addr]uint32) *PrefixMapper {
	m := NewPrefixMapper()
	// Group addresses by covering prefix; emit the covering prefix when
	// homogeneous, host routes otherwise.
	type group struct {
		asn   uint32
		mixed bool
		addrs []netip.Addr
	}
	cover := func(a netip.Addr) netip.Prefix {
		bits := 24
		if a.Is6() {
			bits = 64
		}
		p, _ := a.Prefix(bits)
		return p
	}
	groups := make(map[netip.Prefix]*group)
	for a, asn := range exact {
		c := cover(a)
		g := groups[c]
		if g == nil {
			groups[c] = &group{asn: asn, addrs: []netip.Addr{a}}
			continue
		}
		if g.asn != asn {
			g.mixed = true
		}
		g.addrs = append(g.addrs, a)
	}
	// Deterministic insertion order for reproducible tables.
	prefixes := make([]netip.Prefix, 0, len(groups))
	for p := range groups {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		return prefixes[i].String() < prefixes[j].String()
	})
	for _, p := range prefixes {
		g := groups[p]
		if !g.mixed {
			_ = m.Insert(p, g.asn)
			continue
		}
		for _, a := range g.addrs {
			bits := 32
			if a.Is6() {
				bits = 128
			}
			hp, _ := a.Prefix(bits)
			_ = m.Insert(hp, exact[a])
		}
	}
	return m
}
