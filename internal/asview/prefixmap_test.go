package asview

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestPrefixMapperLongestMatchWins(t *testing.T) {
	m := NewPrefixMapper()
	for _, ins := range []struct {
		p   string
		asn uint32
	}{
		{"10.0.0.0/8", 100},
		{"10.1.0.0/16", 200},
		{"10.1.2.0/24", 300},
		{"2a00::/16", 400},
		{"2a00:1::/32", 500},
	} {
		if err := m.Insert(netip.MustParsePrefix(ins.p), ins.asn); err != nil {
			t.Fatal(err)
		}
	}
	cases := map[string]uint32{
		"10.2.3.4":   100,
		"10.1.9.9":   200,
		"10.1.2.77":  300,
		"2a00:9::1":  400,
		"2a00:1::42": 500,
	}
	for addr, want := range cases {
		got, ok := m.ASNOf(netip.MustParseAddr(addr))
		if !ok || got != want {
			t.Errorf("ASNOf(%s) = %d,%v; want %d", addr, got, ok, want)
		}
	}
	if _, ok := m.ASNOf(netip.MustParseAddr("192.168.1.1")); ok {
		t.Error("uncovered address matched")
	}
	if _, ok := m.ASNOf(netip.MustParseAddr("2b00::1")); ok {
		t.Error("uncovered v6 address matched")
	}
	if m.Len() != 5 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestPrefixMapperUnmapsV4InV6(t *testing.T) {
	m := NewPrefixMapper()
	_ = m.Insert(netip.MustParsePrefix("10.0.0.0/8"), 7)
	if asn, ok := m.ASNOf(netip.MustParseAddr("::ffff:10.1.2.3")); !ok || asn != 7 {
		t.Errorf("mapped v4-in-v6 lookup = %d,%v", asn, ok)
	}
}

func TestPrefixMapperRejectsInvalid(t *testing.T) {
	m := NewPrefixMapper()
	if err := m.Insert(netip.Prefix{}, 1); err == nil {
		t.Error("invalid prefix accepted")
	}
}

func TestFromAddrMapAgreesWithExact(t *testing.T) {
	f := func(seedBytes []byte) bool {
		exact := make(map[netip.Addr]uint32)
		for i, b := range seedBytes {
			if i > 80 {
				break
			}
			a := netip.AddrFrom4([4]byte{10, b % 8, b, byte(i)})
			exact[a] = uint32(b%5) + 1
			var six [16]byte
			six[0], six[1], six[15] = 0x2a, b%4, byte(i)
			exact[netip.AddrFrom16(six)] = uint32(b%3) + 10
		}
		m := FromAddrMap(exact)
		for a, want := range exact {
			got, ok := m.ASNOf(a)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFromAddrMapMixedCoverEmitsHostRoutes(t *testing.T) {
	exact := map[netip.Addr]uint32{
		netip.MustParseAddr("10.0.0.1"): 1,
		netip.MustParseAddr("10.0.0.2"): 2, // same /24, different AS
	}
	m := FromAddrMap(exact)
	for a, want := range exact {
		got, ok := m.ASNOf(a)
		if !ok || got != want {
			t.Errorf("ASNOf(%s) = %d,%v; want %d", a, got, ok, want)
		}
	}
}
