// Package atomicio provides crash-safe file replacement: write the new
// contents to a temporary file in the destination directory, fsync it, then
// rename it over the target. A reader (or a process restarted after a crash)
// therefore only ever sees the old bytes or the new bytes, never a partial
// write — the property the observation-log manifest and the CLI report
// writers rely on.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. On any error the original
// file (if one existed) is left untouched and the temporary file is removed.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmp := f.Name()
	// Any failure past this point must not leave the temp file behind.
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomicio: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}
