package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("got %q, want %q", got, "first")
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("got %q, want %q", got, "second")
	}
	// No temp debris may survive a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after write, want just the target", len(entries))
	}
}

// TestWriteFileFailureLeavesTargetUntouched pins the crash-safety contract:
// a failed replacement must neither clobber the existing target nor leave a
// temp file behind. The failure is forced with a target that is a directory
// (rename cannot replace it), which fails even when running as root — unlike
// permission-based setups.
func TestWriteFileFailureLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "report")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(target, []byte("data"), 0o644); err == nil {
		t.Fatal("expected an error renaming over a directory")
	}
	st, err := os.Stat(target)
	if err != nil || !st.IsDir() {
		t.Fatalf("target was clobbered: %v %v", st, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind after failure", e.Name())
		}
	}
}

// TestWriteFileMissingDirFailsCleanly covers the temp-creation error path.
func TestWriteFileMissingDirFailsCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope", "out.json")
	if err := WriteFile(path, []byte("data"), 0o644); err == nil {
		t.Fatal("expected an error for a missing parent directory")
	}
}
