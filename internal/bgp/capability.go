package bgp

import (
	"encoding/binary"
	"fmt"
)

// Optional parameter types (RFC 4271 §4.2, RFC 5492).
const (
	// OptParamCapability is the only optional parameter type in modern use.
	OptParamCapability = 2
)

// Capability codes seen in the wild and in the paper's Figure 2.
const (
	// CapMultiprotocol announces an AFI/SAFI (RFC 4760).
	CapMultiprotocol = 1
	// CapRouteRefresh is the standard route-refresh capability (RFC 2918).
	CapRouteRefresh = 2
	// CapGracefulRestart is RFC 4724.
	CapGracefulRestart = 64
	// CapFourOctetAS carries the speaker's 4-octet AS number (RFC 6793).
	CapFourOctetAS = 65
	// CapRouteRefreshCisco is the pre-standard Cisco route-refresh code,
	// still advertised by Cisco speakers alongside the standard one — the
	// paper's Figure 2 shows both.
	CapRouteRefreshCisco = 128
)

// AFI/SAFI values for the multiprotocol capability.
const (
	AFIIPv4 = 1
	AFIIPv6 = 2

	SAFIUnicast = 1
)

// Capability is one RFC 5492 capability triplet.
type Capability struct {
	// Code identifies the capability.
	Code uint8
	// Value is the capability-specific payload; nil for zero-length
	// capabilities such as route refresh.
	Value []byte
}

// NewFourOctetAS builds a 4-octet-AS capability for asn.
func NewFourOctetAS(asn uint32) Capability {
	return Capability{Code: CapFourOctetAS, Value: binary.BigEndian.AppendUint32(nil, asn)}
}

// NewMultiprotocol builds a multiprotocol capability for (afi, safi).
func NewMultiprotocol(afi uint16, safi uint8) Capability {
	v := binary.BigEndian.AppendUint16(nil, afi)
	v = append(v, 0, safi) // reserved byte then SAFI
	return Capability{Code: CapMultiprotocol, Value: v}
}

// String names well-known capabilities for logs and table output.
func (c Capability) String() string {
	switch c.Code {
	case CapMultiprotocol:
		if len(c.Value) == 4 {
			return fmt.Sprintf("multiprotocol(afi=%d,safi=%d)",
				binary.BigEndian.Uint16(c.Value), c.Value[3])
		}
		return "multiprotocol(malformed)"
	case CapRouteRefresh:
		return "route-refresh"
	case CapRouteRefreshCisco:
		return "route-refresh-cisco"
	case CapGracefulRestart:
		return "graceful-restart"
	case CapFourOctetAS:
		if len(c.Value) == 4 {
			return fmt.Sprintf("four-octet-as(%d)", binary.BigEndian.Uint32(c.Value))
		}
		return "four-octet-as(malformed)"
	default:
		return fmt.Sprintf("capability-%d", c.Code)
	}
}

// OptParam is one optional parameter: a container for capabilities. Real
// speakers commonly send each capability in its own parameter (as in the
// paper's Figure 2); the codec accepts and preserves either packing, since
// the packing itself is part of the device fingerprint.
type OptParam struct {
	// Type is the parameter type; only OptParamCapability is generated.
	Type uint8
	// Capabilities holds the decoded capabilities for capability parameters.
	Capabilities []Capability
	// Raw preserves the payload of non-capability parameters verbatim.
	Raw []byte
}

// marshal encodes the parameter as type, length, value.
func (p *OptParam) marshal() ([]byte, error) {
	var val []byte
	if p.Type == OptParamCapability {
		for _, c := range p.Capabilities {
			if len(c.Value) > 255 {
				return nil, fmt.Errorf("bgp: capability %d value too long", c.Code)
			}
			val = append(val, c.Code, uint8(len(c.Value)))
			val = append(val, c.Value...)
		}
	} else {
		val = p.Raw
	}
	if len(val) > 255 {
		return nil, fmt.Errorf("bgp: optional parameter %d too long", p.Type)
	}
	return append([]byte{p.Type, uint8(len(val))}, val...), nil
}

// parseOptParam decodes one parameter from the front of b, returning it and
// the bytes consumed.
func parseOptParam(b []byte) (OptParam, int, error) {
	if len(b) < 2 {
		return OptParam{}, 0, ErrShortMessage
	}
	typ, plen := b[0], int(b[1])
	if len(b) < 2+plen {
		return OptParam{}, 0, ErrShortMessage
	}
	val := b[2 : 2+plen]
	p := OptParam{Type: typ}
	if typ != OptParamCapability {
		p.Raw = append([]byte(nil), val...)
		return p, 2 + plen, nil
	}
	for len(val) > 0 {
		if len(val) < 2 {
			return OptParam{}, 0, fmt.Errorf("bgp: truncated capability header: %w", ErrShortMessage)
		}
		code, clen := val[0], int(val[1])
		if len(val) < 2+clen {
			return OptParam{}, 0, fmt.Errorf("bgp: truncated capability value: %w", ErrShortMessage)
		}
		cap := Capability{Code: code}
		if clen > 0 {
			cap.Value = append([]byte(nil), val[2:2+clen]...)
		}
		p.Capabilities = append(p.Capabilities, cap)
		val = val[2+clen:]
	}
	return p, 2 + plen, nil
}
