// Package bgp implements the subset of the Border Gateway Protocol (RFC 4271)
// that the paper's scanning methodology exercises: the message header, the
// OPEN message with RFC 5492 capability advertisement, and the NOTIFICATION
// message. That is all a scanner ever sees — the paper observes that BGP
// speakers send an unsolicited OPEN (and usually a Cease/Connection-Rejected
// NOTIFICATION) right after the TCP handshake, without the scanner sending a
// single byte.
//
// The codec follows the gopacket convention: value types with
// MarshalBinary/UnmarshalBinary pairs, strict validation on decode, and
// deterministic serialisation so identifiers derived from the wire image are
// stable.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Message type codes from RFC 4271 §4.1.
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Protocol constants.
const (
	// MarkerLen is the length of the all-ones marker field.
	MarkerLen = 16
	// HeaderLen is the fixed message header length (marker + length + type).
	HeaderLen = MarkerLen + 2 + 1
	// MaxMessageLen is the largest legal BGP message (RFC 4271 §4.1).
	MaxMessageLen = 4096
	// Version4 is the only deployed BGP version.
	Version4 = 4
	// ASTrans is the 2-octet AS number placeholder used by 4-octet-AS
	// speakers in the My-AS field (RFC 6793). The paper's Figure 2 shows a
	// speaker announcing exactly this value.
	ASTrans = 23456
)

// Errors returned by the decoder.
var (
	ErrShortMessage  = errors.New("bgp: message truncated")
	ErrBadMarker     = errors.New("bgp: marker is not all ones")
	ErrBadLength     = errors.New("bgp: header length field out of range")
	ErrUnknownType   = errors.New("bgp: unknown message type")
	ErrTrailingBytes = errors.New("bgp: trailing bytes after message body")
)

// Header is the fixed-size BGP message header.
type Header struct {
	// Length is the total message length including the header itself.
	Length uint16
	// Type is one of the Type* constants.
	Type uint8
}

// marshalHeader appends a wire-format header to dst.
func marshalHeader(dst []byte, bodyLen int, typ uint8) []byte {
	for i := 0; i < MarkerLen; i++ {
		dst = append(dst, 0xff)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(HeaderLen+bodyLen))
	return append(dst, typ)
}

// ParseHeader decodes and validates a message header from b.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, ErrShortMessage
	}
	for i := 0; i < MarkerLen; i++ {
		if b[i] != 0xff {
			return Header{}, ErrBadMarker
		}
	}
	h := Header{
		Length: binary.BigEndian.Uint16(b[MarkerLen:]),
		Type:   b[MarkerLen+2],
	}
	if h.Length < HeaderLen || h.Length > MaxMessageLen {
		return Header{}, ErrBadLength
	}
	if h.Type < TypeOpen || h.Type > TypeKeepalive {
		return Header{}, ErrUnknownType
	}
	return h, nil
}

// Open is a BGP OPEN message (RFC 4271 §4.2). Every field except the marker
// participates in the paper's BGP device identifier.
type Open struct {
	// Version is the protocol version, in practice always 4.
	Version uint8
	// MyAS is the 2-octet My-Autonomous-System field. Speakers with 4-octet
	// AS numbers put ASTrans here and the real ASN in a capability.
	MyAS uint16
	// HoldTime is the proposed hold time in seconds.
	HoldTime uint16
	// BGPIdentifier is the speaker's router ID: a 4-octet value that RFC
	// 4271 requires to be identical on every local interface — which is
	// exactly what makes it usable for alias resolution.
	BGPIdentifier uint32
	// OptParams carries the optional parameters, normally one or more
	// capability advertisements.
	OptParams []OptParam
}

// RouterID returns the BGP identifier rendered as a dotted quad, the
// conventional display format.
func (o *Open) RouterID() netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], o.BGPIdentifier)
	return netip.AddrFrom4(b)
}

// EffectiveAS returns the speaker's AS number, preferring a 4-octet-AS
// capability over the (possibly AS_TRANS) My-AS field.
func (o *Open) EffectiveAS() uint32 {
	for _, p := range o.OptParams {
		for _, c := range p.Capabilities {
			if c.Code == CapFourOctetAS && len(c.Value) == 4 {
				return binary.BigEndian.Uint32(c.Value)
			}
		}
	}
	return uint32(o.MyAS)
}

// MarshalBinary encodes the OPEN message, header included.
func (o *Open) MarshalBinary() ([]byte, error) {
	var body []byte
	body = append(body, o.Version)
	body = binary.BigEndian.AppendUint16(body, o.MyAS)
	body = binary.BigEndian.AppendUint16(body, o.HoldTime)
	body = binary.BigEndian.AppendUint32(body, o.BGPIdentifier)
	var opts []byte
	for i := range o.OptParams {
		enc, err := o.OptParams[i].marshal()
		if err != nil {
			return nil, err
		}
		opts = append(opts, enc...)
	}
	if len(opts) > 255 {
		return nil, fmt.Errorf("bgp: optional parameters too long (%d bytes)", len(opts))
	}
	body = append(body, uint8(len(opts)))
	body = append(body, opts...)
	out := marshalHeader(nil, len(body), TypeOpen)
	return append(out, body...), nil
}

// Notification is a BGP NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	// Code is the major error code.
	Code uint8
	// Subcode is the error subcode; for Cease, RFC 4486 defines the values.
	Subcode uint8
	// Data is optional diagnostic data.
	Data []byte
}

// NOTIFICATION error codes and the Cease subcodes used by scanned speakers.
const (
	NotifCease = 6
	// CeaseConnectionRejected is what the paper's 364k identifiable BGP
	// speakers send right after their OPEN.
	CeaseConnectionRejected = 5
)

// MarshalBinary encodes the NOTIFICATION message, header included.
func (n *Notification) MarshalBinary() ([]byte, error) {
	body := append([]byte{n.Code, n.Subcode}, n.Data...)
	out := marshalHeader(nil, len(body), TypeNotification)
	return append(out, body...), nil
}

// parseNotification decodes a NOTIFICATION body.
func parseNotification(body []byte) (*Notification, error) {
	if len(body) < 2 {
		return nil, ErrShortMessage
	}
	n := &Notification{Code: body[0], Subcode: body[1]}
	if len(body) > 2 {
		n.Data = append([]byte(nil), body[2:]...)
	}
	return n, nil
}

// parseOpen decodes an OPEN body.
func parseOpen(body []byte) (*Open, error) {
	const fixed = 1 + 2 + 2 + 4 + 1
	if len(body) < fixed {
		return nil, ErrShortMessage
	}
	o := &Open{
		Version:       body[0],
		MyAS:          binary.BigEndian.Uint16(body[1:]),
		HoldTime:      binary.BigEndian.Uint16(body[3:]),
		BGPIdentifier: binary.BigEndian.Uint32(body[5:]),
	}
	optLen := int(body[9])
	rest := body[fixed:]
	if len(rest) != optLen {
		return nil, fmt.Errorf("bgp: optional parameter length %d but %d bytes present: %w",
			optLen, len(rest), ErrTrailingBytes)
	}
	for len(rest) > 0 {
		p, n, err := parseOptParam(rest)
		if err != nil {
			return nil, err
		}
		o.OptParams = append(o.OptParams, p)
		rest = rest[n:]
	}
	return o, nil
}

// Parse decodes one complete message from b and returns it along with the
// number of bytes consumed. The concrete type of the returned message is
// *Open, *Notification, or Keepalive. UPDATE messages are rejected: a scanner
// never negotiates a session far enough to receive one legitimately.
func Parse(b []byte) (msg any, n int, err error) {
	h, err := ParseHeader(b)
	if err != nil {
		return nil, 0, err
	}
	if len(b) < int(h.Length) {
		return nil, 0, ErrShortMessage
	}
	body := b[HeaderLen:h.Length]
	switch h.Type {
	case TypeOpen:
		o, err := parseOpen(body)
		if err != nil {
			return nil, 0, err
		}
		return o, int(h.Length), nil
	case TypeNotification:
		nt, err := parseNotification(body)
		if err != nil {
			return nil, 0, err
		}
		return nt, int(h.Length), nil
	case TypeKeepalive:
		if len(body) != 0 {
			return nil, 0, ErrTrailingBytes
		}
		return Keepalive{}, int(h.Length), nil
	default:
		return nil, 0, fmt.Errorf("bgp: unexpected %d message from scanned speaker: %w",
			h.Type, ErrUnknownType)
	}
}

// Keepalive is a BGP KEEPALIVE message (header only).
type Keepalive struct{}

// MarshalBinary encodes the KEEPALIVE message.
func (Keepalive) MarshalBinary() ([]byte, error) {
	return marshalHeader(nil, 0, TypeKeepalive), nil
}
