package bgp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

// figure2Open reconstructs the OPEN message dissected in the paper's
// Figure 2: Length 37, Version 4, My-AS 23456 (AS_TRANS), Hold Time 90, BGP
// Identifier 148.170.0.33, and 8 bytes of optional parameters holding the
// Cisco route-refresh (128) and standard route-refresh (2) capabilities, one
// parameter per capability.
func figure2Open() *Open {
	return &Open{
		Version:       Version4,
		MyAS:          ASTrans,
		HoldTime:      90,
		BGPIdentifier: 0x94AA0021, // 148.170.0.33
		OptParams: []OptParam{
			{Type: OptParamCapability, Capabilities: []Capability{{Code: CapRouteRefreshCisco}}},
			{Type: OptParamCapability, Capabilities: []Capability{{Code: CapRouteRefresh}}},
		},
	}
}

func TestFigure2GoldenBytes(t *testing.T) {
	enc, err := figure2Open().MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if len(enc) != 37 {
		t.Errorf("wire length = %d, want 37 (the Length field in Figure 2)", len(enc))
	}
	want := []byte{
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // marker
		0x00, 0x25, // length 37
		0x01,       // OPEN
		0x04,       // version 4
		0x5b, 0xa0, // My AS 23456
		0x00, 0x5a, // hold time 90
		0x94, 0xaa, 0x00, 0x21, // BGP identifier 148.170.0.33
		0x08,                   // opt params length
		0x02, 0x02, 0x80, 0x00, // capability: route refresh (Cisco)
		0x02, 0x02, 0x02, 0x00, // capability: route refresh
	}
	if !bytes.Equal(enc, want) {
		t.Errorf("wire image mismatch\n got %x\nwant %x", enc, want)
	}

	msg, n, err := Parse(enc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n != 37 {
		t.Errorf("Parse consumed %d, want 37", n)
	}
	o, ok := msg.(*Open)
	if !ok {
		t.Fatalf("Parse returned %T, want *Open", msg)
	}
	if o.RouterID() != netip.MustParseAddr("148.170.0.33") {
		t.Errorf("RouterID = %s, want 148.170.0.33", o.RouterID())
	}
	if o.EffectiveAS() != ASTrans {
		t.Errorf("EffectiveAS = %d, want AS_TRANS (no 4-octet capability present)", o.EffectiveAS())
	}
	if len(o.OptParams) != 2 {
		t.Fatalf("OptParams = %d, want 2", len(o.OptParams))
	}
	if o.OptParams[0].Capabilities[0].Code != CapRouteRefreshCisco {
		t.Error("first capability should be Cisco route refresh")
	}
}

func TestFigure2Notification(t *testing.T) {
	n := &Notification{Code: NotifCease, Subcode: CeaseConnectionRejected}
	enc, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 21 {
		t.Errorf("NOTIFICATION length = %d, want 21 (Figure 2)", len(enc))
	}
	msg, consumed, err := Parse(enc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if consumed != 21 {
		t.Errorf("consumed %d, want 21", consumed)
	}
	got, ok := msg.(*Notification)
	if !ok {
		t.Fatalf("Parse returned %T", msg)
	}
	if got.Code != NotifCease || got.Subcode != CeaseConnectionRejected {
		t.Errorf("decoded %d/%d, want 6/5", got.Code, got.Subcode)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	valid, _ := (Keepalive{}).MarshalBinary()

	short := valid[:10]
	if _, err := ParseHeader(short); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short header: err = %v", err)
	}

	badMarker := append([]byte(nil), valid...)
	badMarker[3] = 0
	if _, err := ParseHeader(badMarker); !errors.Is(err, ErrBadMarker) {
		t.Errorf("bad marker: err = %v", err)
	}

	badLen := append([]byte(nil), valid...)
	binary.BigEndian.PutUint16(badLen[16:], 5) // < HeaderLen
	if _, err := ParseHeader(badLen); !errors.Is(err, ErrBadLength) {
		t.Errorf("length too small: err = %v", err)
	}
	binary.BigEndian.PutUint16(badLen[16:], MaxMessageLen+1)
	if _, err := ParseHeader(badLen); !errors.Is(err, ErrBadLength) {
		t.Errorf("length too large: err = %v", err)
	}

	badType := append([]byte(nil), valid...)
	badType[18] = 9
	if _, err := ParseHeader(badType); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type: err = %v", err)
	}
}

func TestParseTruncatedAndMalformed(t *testing.T) {
	enc, _ := figure2Open().MarshalBinary()

	// Body shorter than the header's Length claim.
	if _, _, err := Parse(enc[:20]); !errors.Is(err, ErrShortMessage) {
		t.Errorf("truncated body: err = %v", err)
	}

	// Optional parameter length pointing past the body.
	bad := append([]byte(nil), enc...)
	bad[HeaderLen+9] = 20 // optLen > actual
	if _, _, err := Parse(bad); err == nil {
		t.Error("inflated opt-param length: want error")
	}

	// Truncated capability inside an otherwise intact parameter.
	bad2 := append([]byte(nil), enc...)
	bad2[HeaderLen+11] = 7 // capability claims 7 value bytes
	if _, _, err := Parse(bad2); err == nil {
		t.Error("truncated capability: want error")
	}

	// KEEPALIVE with a body is illegal.
	ka, _ := Keepalive{}.MarshalBinary()
	ka = append(ka, 0x00)
	binary.BigEndian.PutUint16(ka[16:], uint16(len(ka)))
	if _, _, err := Parse(ka); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("keepalive with body: err = %v", err)
	}

	// UPDATE messages are rejected by the scanner-side parser.
	upd := append([]byte(nil), ka[:HeaderLen]...)
	binary.BigEndian.PutUint16(upd[16:], HeaderLen)
	upd[18] = TypeUpdate
	if _, _, err := Parse(upd); !errors.Is(err, ErrUnknownType) {
		t.Errorf("update: err = %v", err)
	}

	// NOTIFICATION needs at least code+subcode.
	nshort := marshalHeader(nil, 1, TypeNotification)
	nshort = append(nshort, NotifCease)
	if _, _, err := Parse(nshort); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short notification: err = %v", err)
	}
}

func TestOpenRoundTripProperty(t *testing.T) {
	f := func(myAS, holdTime uint16, routerID uint32, asn4 uint32, cisco, mp6, perParam bool) bool {
		o := &Open{Version: Version4, MyAS: myAS, HoldTime: holdTime, BGPIdentifier: routerID}
		var caps []Capability
		if cisco {
			caps = append(caps, Capability{Code: CapRouteRefreshCisco})
		}
		caps = append(caps, Capability{Code: CapRouteRefresh}, NewFourOctetAS(asn4))
		if mp6 {
			caps = append(caps, NewMultiprotocol(AFIIPv6, SAFIUnicast))
		}
		if perParam {
			for _, c := range caps {
				o.OptParams = append(o.OptParams, OptParam{Type: OptParamCapability, Capabilities: []Capability{c}})
			}
		} else {
			o.OptParams = []OptParam{{Type: OptParamCapability, Capabilities: caps}}
		}
		enc, err := o.MarshalBinary()
		if err != nil {
			return false
		}
		msg, n, err := Parse(enc)
		if err != nil || n != len(enc) {
			return false
		}
		got, ok := msg.(*Open)
		if !ok {
			return false
		}
		reenc, err := got.MarshalBinary()
		if err != nil {
			return false
		}
		return bytes.Equal(enc, reenc) && got.EffectiveAS() == asn4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNotificationRoundTripProperty(t *testing.T) {
	f := func(code, subcode uint8, data []byte) bool {
		if len(data) > 1024 {
			data = data[:1024]
		}
		n := &Notification{Code: code, Subcode: subcode, Data: data}
		enc, err := n.MarshalBinary()
		if err != nil {
			return false
		}
		msg, consumed, err := Parse(enc)
		if err != nil || consumed != len(enc) {
			return false
		}
		got, ok := msg.(*Notification)
		return ok && got.Code == code && got.Subcode == subcode && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEffectiveASPrefersCapability(t *testing.T) {
	o := &Open{
		Version: Version4, MyAS: ASTrans, HoldTime: 90, BGPIdentifier: 1,
		OptParams: []OptParam{{
			Type:         OptParamCapability,
			Capabilities: []Capability{NewFourOctetAS(396982)},
		}},
	}
	if got := o.EffectiveAS(); got != 396982 {
		t.Errorf("EffectiveAS = %d, want 396982", got)
	}
}

func TestCapabilityStrings(t *testing.T) {
	cases := []struct {
		c    Capability
		want string
	}{
		{Capability{Code: CapRouteRefresh}, "route-refresh"},
		{Capability{Code: CapRouteRefreshCisco}, "route-refresh-cisco"},
		{Capability{Code: CapGracefulRestart}, "graceful-restart"},
		{NewFourOctetAS(65550), "four-octet-as(65550)"},
		{NewMultiprotocol(AFIIPv6, SAFIUnicast), "multiprotocol(afi=2,safi=1)"},
		{Capability{Code: CapMultiprotocol, Value: []byte{1}}, "multiprotocol(malformed)"},
		{Capability{Code: CapFourOctetAS, Value: []byte{1}}, "four-octet-as(malformed)"},
		{Capability{Code: 99}, "capability-99"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestNonCapabilityOptParamPreserved(t *testing.T) {
	o := &Open{Version: Version4, MyAS: 100, HoldTime: 180, BGPIdentifier: 7,
		OptParams: []OptParam{{Type: 1, Raw: []byte{0xde, 0xad}}}}
	enc, err := o.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*Open)
	if len(got.OptParams) != 1 || got.OptParams[0].Type != 1 ||
		!bytes.Equal(got.OptParams[0].Raw, []byte{0xde, 0xad}) {
		t.Errorf("raw param not preserved: %+v", got.OptParams)
	}
}

func TestMarshalRejectsOversizedParams(t *testing.T) {
	big := Capability{Code: 99, Value: make([]byte, 300)}
	o := &Open{Version: 4, OptParams: []OptParam{{Type: OptParamCapability, Capabilities: []Capability{big}}}}
	if _, err := o.MarshalBinary(); err == nil {
		t.Error("capability >255 bytes: want error")
	}
	var caps []Capability
	for i := 0; i < 100; i++ {
		caps = append(caps, Capability{Code: uint8(i), Value: []byte{1, 2}})
	}
	o2 := &Open{Version: 4, OptParams: []OptParam{{Type: OptParamCapability, Capabilities: caps}}}
	if _, err := o2.MarshalBinary(); err == nil {
		t.Error("opt params >255 bytes: want error")
	}
}
