package bgp

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds the decoder arbitrary byte soup: network-facing
// parsers must reject, never crash.
func TestParseNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %x: %v", b, r)
			}
		}()
		_, _, _ = Parse(b)
		_, _ = ParseHeader(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnMutatedValid mutates one byte of a valid message at
// every position — the classic off-by-one hunt.
func TestParseNeverPanicsOnMutatedValid(t *testing.T) {
	base, err := figure2Open().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(base); pos++ {
		for _, delta := range []byte{1, 0x7f, 0xff} {
			mut := append([]byte(nil), base...)
			mut[pos] ^= delta
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Parse panicked with byte %d ^= %#x: %v", pos, delta, r)
					}
				}()
				_, _, _ = Parse(mut)
			}()
		}
	}
}

// TestParseTruncationsNeverPanic truncates a valid message at every length.
func TestParseTruncationsNeverPanic(t *testing.T) {
	base, _ := figure2Open().MarshalBinary()
	notif, _ := (&Notification{Code: NotifCease, Subcode: CeaseConnectionRejected, Data: []byte{1, 2}}).MarshalBinary()
	stream := append(base, notif...)
	for n := 0; n <= len(stream); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked at truncation %d: %v", n, r)
				}
			}()
			_, _, _ = Parse(stream[:n])
		}()
	}
}
