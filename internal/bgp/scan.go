package bgp

import (
	"errors"
	"io"
	"net"
	"time"
)

// ScanResult is what one passive BGP service scan of a single address yields.
type ScanResult struct {
	// Open is the unsolicited OPEN message, or nil if the speaker closed
	// without sending one (the paper's dominant silent-close population).
	Open *Open
	// OpenLen is the wire length of the OPEN message including header. The
	// paper's identifier includes the Length field, so it is recorded here
	// rather than recomputed.
	OpenLen uint16
	// Notification is the NOTIFICATION that followed the OPEN, if any.
	Notification *Notification
	// SilentClose records that the speaker completed the handshake and then
	// closed without data.
	SilentClose bool
}

// Identifiable reports whether the scan yielded enough material for the
// paper's BGP identifier (i.e. an OPEN message was captured).
func (r *ScanResult) Identifiable() bool { return r != nil && r.Open != nil }

// DefaultWaitTimeout matches the paper's methodology: "we simply close the
// connection after 2 seconds timeout, or after receiving any data".
const DefaultWaitTimeout = 2 * time.Second

// Scan performs the passive BGP service scan on an established connection:
// complete the TCP handshake (already done by the dialer), send nothing, wait
// up to timeout for data, parse whatever arrives, close. A timeout of zero
// uses DefaultWaitTimeout.
func Scan(conn net.Conn, timeout time.Duration) (*ScanResult, error) {
	if timeout <= 0 {
		timeout = DefaultWaitTimeout
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	_ = conn.SetReadDeadline(deadline)

	res := &ScanResult{}
	var buf []byte
	tmp := make([]byte, 4096)
	for {
		// Parse every complete message currently buffered.
		for {
			msg, n, err := Parse(buf)
			if errors.Is(err, ErrShortMessage) {
				break // need more bytes
			}
			if err != nil {
				return res, err
			}
			switch m := msg.(type) {
			case *Open:
				if res.Open == nil {
					res.Open = m
					res.OpenLen = uint16(n)
				}
			case *Notification:
				if res.Notification == nil {
					res.Notification = m
				}
			case Keepalive:
				// Recorded implicitly; a scanner has no use for it.
			}
			buf = buf[n:]
			// The paper closes after the OPEN/NOTIFICATION pair; once both
			// are in hand there is nothing more to learn.
			if res.Open != nil && res.Notification != nil {
				return res, nil
			}
		}
		n, err := conn.Read(tmp)
		if n > 0 {
			buf = append(buf, tmp[:n]...)
		}
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				if res.Open == nil && len(buf) == 0 {
					res.SilentClose = true
				}
				return res, nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// Timed out waiting: treat like a silent peer.
				if res.Open == nil && len(buf) == 0 {
					res.SilentClose = true
				}
				return res, nil
			}
			return res, err
		}
	}
}
