package bgp

import (
	"net"
	"testing"
	"time"

	"aliaslimit/internal/netsim"
)

// runSpeaker wires a speaker to one end of a pipe and scans the other end.
func runSpeaker(t *testing.T, cfg SpeakerConfig, timeout time.Duration) *ScanResult {
	t.Helper()
	client, server := net.Pipe()
	go NewSpeaker(cfg).Serve(server, netsim.ServeContext{})
	res, err := Scan(client, timeout)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return res
}

func TestScanOpenNotify(t *testing.T) {
	cfg := SpeakerConfig{
		ASN: 396982, RouterID: 0x0a000001, HoldTime: 90,
		Behavior: BehaviorOpenNotify, CiscoRouteRefresh: true,
		OneParamPerCapability: true,
	}
	res := runSpeaker(t, cfg, time.Second)
	if !res.Identifiable() {
		t.Fatal("want identifiable result")
	}
	if res.Open.EffectiveAS() != 396982 {
		t.Errorf("EffectiveAS = %d, want 396982", res.Open.EffectiveAS())
	}
	if res.Open.MyAS != ASTrans {
		t.Errorf("MyAS = %d, want AS_TRANS for 4-octet ASN", res.Open.MyAS)
	}
	if res.Open.HoldTime != 90 {
		t.Errorf("HoldTime = %d, want 90", res.Open.HoldTime)
	}
	if res.Notification == nil {
		t.Fatal("want NOTIFICATION after OPEN")
	}
	if res.Notification.Code != NotifCease || res.Notification.Subcode != CeaseConnectionRejected {
		t.Errorf("notification %d/%d, want Cease/Connection-Rejected",
			res.Notification.Code, res.Notification.Subcode)
	}
	if res.OpenLen == 0 {
		t.Error("OpenLen not recorded")
	}
	if res.SilentClose {
		t.Error("SilentClose should be false")
	}
}

func TestScanSmallASN(t *testing.T) {
	cfg := SpeakerConfig{ASN: 65001, RouterID: 42, HoldTime: 180, Behavior: BehaviorOpenNotify}
	res := runSpeaker(t, cfg, time.Second)
	if !res.Identifiable() {
		t.Fatal("want identifiable")
	}
	if res.Open.MyAS != 65001 || res.Open.EffectiveAS() != 65001 {
		t.Errorf("ASN: MyAS=%d EffectiveAS=%d, want 65001", res.Open.MyAS, res.Open.EffectiveAS())
	}
}

func TestScanSilentClose(t *testing.T) {
	res := runSpeaker(t, SpeakerConfig{Behavior: BehaviorSilentClose}, time.Second)
	if res.Identifiable() {
		t.Error("silent close must not be identifiable")
	}
	if !res.SilentClose {
		t.Error("SilentClose flag not set")
	}
}

func TestScanOpenOnly(t *testing.T) {
	cfg := SpeakerConfig{ASN: 64512, RouterID: 9, HoldTime: 30, Behavior: BehaviorOpenOnly}
	res := runSpeaker(t, cfg, time.Second)
	if !res.Identifiable() {
		t.Fatal("open-only speaker should yield an OPEN")
	}
	if res.Notification != nil {
		t.Error("open-only speaker should not send a NOTIFICATION")
	}
}

func TestScanTimeoutOnMuteServer(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	// Server never writes and never closes: the scan must give up at its
	// deadline and classify the target as silent.
	start := time.Now()
	res, err := Scan(client, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("scan did not respect timeout: took %v", elapsed)
	}
	if res.Identifiable() || !res.SilentClose {
		t.Errorf("mute server: got %+v, want silent", res)
	}
}

func TestScanGarbageBytes(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		server.Write([]byte("HTTP/1.0 200 OK\r\n\r\nnot bgp at all"))
	}()
	if res, err := Scan(client, time.Second); err == nil {
		t.Errorf("garbage input: want parse error, got %+v", res)
	}
}

func TestScanFragmentedWrites(t *testing.T) {
	// Byte-at-a-time delivery must still reassemble the OPEN message.
	cfg := SpeakerConfig{ASN: 65001, RouterID: 7, HoldTime: 90, Behavior: BehaviorOpenNotify}
	open, err := cfg.buildOpen().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	notif, _ := (&Notification{Code: NotifCease, Subcode: CeaseConnectionRejected}).MarshalBinary()
	stream := append(append([]byte(nil), open...), notif...)

	client, server := net.Pipe()
	go func() {
		defer server.Close()
		for _, b := range stream {
			if _, err := server.Write([]byte{b}); err != nil {
				return
			}
		}
	}()
	res, err := Scan(client, time.Second)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if !res.Identifiable() || res.Notification == nil {
		t.Errorf("fragmented stream not reassembled: %+v", res)
	}
	if res.Open.BGPIdentifier != 7 {
		t.Errorf("BGPIdentifier = %d, want 7", res.Open.BGPIdentifier)
	}
}

func TestSpeakerCapabilityShape(t *testing.T) {
	perParam := SpeakerConfig{ASN: 65001, RouterID: 1, HoldTime: 90,
		Behavior: BehaviorOpenNotify, CiscoRouteRefresh: true, MPIPv6: true,
		OneParamPerCapability: true}
	res := runSpeaker(t, perParam, time.Second)
	if got := len(res.Open.OptParams); got != 3 {
		t.Errorf("per-capability packing: %d params, want 3", got)
	}

	packed := perParam
	packed.OneParamPerCapability = false
	res2 := runSpeaker(t, packed, time.Second)
	if got := len(res2.Open.OptParams); got != 1 {
		t.Errorf("packed: %d params, want 1", got)
	}
	if got := len(res2.Open.OptParams[0].Capabilities); got != 3 {
		t.Errorf("packed capabilities = %d, want 3", got)
	}
}

func TestBehaviorString(t *testing.T) {
	for b, want := range map[Behavior]string{
		BehaviorSilentClose: "silent-close",
		BehaviorOpenNotify:  "open-notify",
		BehaviorOpenOnly:    "open-only",
		Behavior(42):        "unknown",
	} {
		if got := b.String(); got != want {
			t.Errorf("Behavior(%d).String() = %q, want %q", b, got, want)
		}
	}
}
