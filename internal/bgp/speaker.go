package bgp

import (
	"net"
	"time"

	"aliaslimit/internal/netsim"
)

// Behavior selects how a simulated BGP speaker treats an unconfigured peer,
// mirroring the two populations the paper measures on TCP/179.
type Behavior int

const (
	// BehaviorSilentClose closes immediately after the TCP handshake. The
	// paper finds more than 5.8M such speakers; they are responsive but
	// yield no identifier.
	BehaviorSilentClose Behavior = iota
	// BehaviorOpenNotify sends an OPEN followed by a NOTIFICATION
	// (Cease/Connection Rejected) and closes — the 364k identifiable
	// speakers of the paper's measurement, matching its Figure 2.
	BehaviorOpenNotify
	// BehaviorOpenOnly sends an OPEN and waits for the peer, closing after
	// a short hold; a less common but observed configuration.
	BehaviorOpenOnly
)

// String returns the behaviour name.
func (b Behavior) String() string {
	switch b {
	case BehaviorSilentClose:
		return "silent-close"
	case BehaviorOpenNotify:
		return "open-notify"
	case BehaviorOpenOnly:
		return "open-only"
	default:
		return "unknown"
	}
}

// SpeakerConfig describes one device's BGP personality. All fields that feed
// the OPEN message are host-wide: RFC 4271 requires the BGP identifier to be
// the same on every local interface, which is the property the paper's alias
// inference rests on.
type SpeakerConfig struct {
	// ASN is the speaker's autonomous system number. Values above 65535 are
	// announced via a 4-octet-AS capability with AS_TRANS in My-AS.
	ASN uint32
	// RouterID is the 4-octet BGP identifier.
	RouterID uint32
	// HoldTime is the proposed hold time in seconds.
	HoldTime uint16
	// Behavior selects the reaction to unconfigured peers.
	Behavior Behavior
	// CiscoRouteRefresh adds the pre-standard capability 128 alongside the
	// standard route-refresh, as Cisco speakers do.
	CiscoRouteRefresh bool
	// MPIPv6 advertises the IPv6 unicast multiprotocol capability.
	MPIPv6 bool
	// OneParamPerCapability packs each capability in its own optional
	// parameter (the packing seen in the paper's Figure 2) instead of one
	// parameter holding all capabilities. The packing is part of the wire
	// image and therefore of the identifier.
	OneParamPerCapability bool
}

// buildOpen renders the speaker's OPEN message.
func (c SpeakerConfig) buildOpen() *Open {
	o := &Open{
		Version:       Version4,
		HoldTime:      c.HoldTime,
		BGPIdentifier: c.RouterID,
	}
	var caps []Capability
	if c.CiscoRouteRefresh {
		caps = append(caps, Capability{Code: CapRouteRefreshCisco})
	}
	caps = append(caps, Capability{Code: CapRouteRefresh})
	if c.MPIPv6 {
		caps = append(caps, NewMultiprotocol(AFIIPv6, SAFIUnicast))
	}
	if c.ASN > 0xffff {
		o.MyAS = ASTrans
		caps = append(caps, NewFourOctetAS(c.ASN))
	} else {
		o.MyAS = uint16(c.ASN)
	}
	if c.OneParamPerCapability {
		for _, cp := range caps {
			o.OptParams = append(o.OptParams, OptParam{
				Type:         OptParamCapability,
				Capabilities: []Capability{cp},
			})
		}
	} else {
		o.OptParams = []OptParam{{Type: OptParamCapability, Capabilities: caps}}
	}
	return o
}

// Speaker is a netsim service handler implementing the configured behaviour.
type Speaker struct {
	cfg SpeakerConfig
}

// NewSpeaker returns a handler for cfg.
func NewSpeaker(cfg SpeakerConfig) *Speaker {
	return &Speaker{cfg: cfg}
}

// Config returns the speaker's configuration (used by tests and ground-truth
// bookkeeping).
func (s *Speaker) Config() SpeakerConfig { return s.cfg }

// Serve implements netsim.Handler.
func (s *Speaker) Serve(conn net.Conn, sc netsim.ServeContext) {
	defer conn.Close()
	switch s.cfg.Behavior {
	case BehaviorSilentClose:
		return
	case BehaviorOpenNotify, BehaviorOpenOnly:
		open, err := s.cfg.buildOpen().MarshalBinary()
		if err != nil {
			return
		}
		if _, err := conn.Write(open); err != nil {
			return
		}
		if s.cfg.Behavior == BehaviorOpenNotify {
			notif, err := (&Notification{Code: NotifCease, Subcode: CeaseConnectionRejected}).MarshalBinary()
			if err != nil {
				return
			}
			_, _ = conn.Write(notif)
			return
		}
		// BehaviorOpenOnly: linger briefly waiting for the peer's OPEN,
		// then give up. The deadline keeps simulated scans fast.
		_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		buf := make([]byte, 256)
		_, _ = conn.Read(buf)
	}
}
