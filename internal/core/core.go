// Package core composes the paper's contribution into one pipeline object:
// feed it raw protocol scan results (SSH handshakes, BGP OPENs, SNMPv3
// engine discoveries), and it extracts device identifiers, accumulates
// observations, and emits alias sets, dual-stack sets, and the
// cross-protocol union — the end-to-end "alias resolution at the limit"
// workflow of §2.4.
//
// The packages underneath stay single-purpose (ident extracts, alias
// groups); core is the convenience layer tools and examples build on.
package core

import (
	"fmt"
	"net/netip"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/bgp"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/sshwire"
)

// Resolver accumulates identifier observations and answers set queries.
// It is safe for concurrent feeding: scans run with many workers.
type Resolver struct {
	mu  sync.Mutex
	obs map[ident.Protocol][]alias.Observation
	// dropped counts scan results that carried no identifier material.
	dropped int
}

// NewResolver returns an empty resolver.
func NewResolver() *Resolver {
	return &Resolver{obs: make(map[ident.Protocol][]alias.Observation)}
}

// AddSSH ingests one SSH scan result for addr. It reports whether the result
// carried full identifier material (banner + capabilities + host key).
func (r *Resolver) AddSSH(addr netip.Addr, res *sshwire.ScanResult) bool {
	id, ok := ident.FromSSH(res)
	return r.add(addr, id, ok)
}

// AddBGP ingests one passive BGP scan result for addr.
func (r *Resolver) AddBGP(addr netip.Addr, res *bgp.ScanResult) bool {
	id, ok := ident.FromBGP(res)
	return r.add(addr, id, ok)
}

// AddSNMPEngineID ingests one SNMPv3 engine discovery for addr.
func (r *Resolver) AddSNMPEngineID(addr netip.Addr, engineID []byte) bool {
	id, ok := ident.FromSNMPEngineID(engineID)
	return r.add(addr, id, ok)
}

// AddObservation ingests a pre-extracted observation (e.g. loaded from a
// serialized dataset).
func (r *Resolver) AddObservation(o alias.Observation) {
	r.mu.Lock()
	r.obs[o.ID.Proto] = append(r.obs[o.ID.Proto], o)
	r.mu.Unlock()
}

// add records the observation under its protocol.
func (r *Resolver) add(addr netip.Addr, id ident.Identifier, ok bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !ok {
		r.dropped++
		return false
	}
	r.obs[id.Proto] = append(r.obs[id.Proto], alias.Observation{Addr: addr, ID: id})
	return true
}

// Dropped reports how many ingested results lacked identifier material.
func (r *Resolver) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Observations returns a copy of the accumulated observations for one
// protocol.
func (r *Resolver) Observations(p ident.Protocol) []alias.Observation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]alias.Observation(nil), r.obs[p]...)
}

// AliasSets groups one protocol's observations into alias sets; singletons
// are included so callers can choose their own filtering.
func (r *Resolver) AliasSets(p ident.Protocol) []alias.Set {
	return alias.Group(r.Observations(p))
}

// NonSingletonAliasSets is the unit the paper's tables count.
func (r *Resolver) NonSingletonAliasSets(p ident.Protocol, v4 bool) []alias.Set {
	return alias.NonSingleton(alias.FilterFamily(r.AliasSets(p), v4))
}

// UnionAliasSets merges the non-singleton sets of all protocols into the
// cross-protocol union (§4.1) for one family.
func (r *Resolver) UnionAliasSets(v4 bool) []alias.Set {
	var groups [][]alias.Set
	for _, p := range ident.Protocols {
		groups = append(groups, alias.NonSingleton(alias.FilterFamily(r.AliasSets(p), v4)))
	}
	return alias.NonSingleton(alias.Merge(groups...))
}

// DualStackSets merges all protocols (singletons included — a dual-stack
// pair is one v4 plus one v6 observation) and keeps sets spanning both
// families (§2.4, Table 4).
func (r *Resolver) DualStackSets() []alias.Set {
	var groups [][]alias.Set
	for _, p := range ident.Protocols {
		groups = append(groups, r.AliasSets(p))
	}
	return alias.DualStack(alias.Merge(groups...))
}

// Validate runs the §2.6 cross-protocol validation between two protocols'
// observations.
func (r *Resolver) Validate(a, b ident.Protocol) alias.ValidationResult {
	_, _, res := alias.CrossValidate(r.Observations(a), r.Observations(b))
	return res
}

// Summary is a compact account of the resolver state.
type Summary struct {
	// ObsPerProtocol counts observations per protocol.
	ObsPerProtocol map[string]int
	// AliasSetsV4 / AliasSetsV6 count union non-singleton sets.
	AliasSetsV4, AliasSetsV6 int
	// DualStackSets counts union dual-stack sets.
	DualStackSets int
	// Dropped counts identifier-less results.
	Dropped int
}

// Summarize computes the summary.
func (r *Resolver) Summarize() Summary {
	s := Summary{ObsPerProtocol: make(map[string]int)}
	for _, p := range ident.Protocols {
		s.ObsPerProtocol[p.String()] = len(r.Observations(p))
	}
	s.AliasSetsV4 = len(r.UnionAliasSets(true))
	s.AliasSetsV6 = len(r.UnionAliasSets(false))
	s.DualStackSets = len(r.DualStackSets())
	s.Dropped = r.Dropped()
	return s
}

// String renders the summary for logs.
func (s Summary) String() string {
	return fmt.Sprintf("obs=%v aliasSetsV4=%d aliasSetsV6=%d dualStack=%d dropped=%d",
		s.ObsPerProtocol, s.AliasSetsV4, s.AliasSetsV6, s.DualStackSets, s.Dropped)
}
