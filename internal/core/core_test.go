package core

import (
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/bgp"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/netsim"
	"aliaslimit/internal/sshwire"
	"aliaslimit/internal/xrand"
)

// detRand is a deterministic entropy source for handshakes.
type detRand struct{ s *xrand.SplitMix64 }

func (r *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.s.Uint64())
	}
	return len(p), nil
}

// sshResultFor runs a real handshake against a server with the given key
// seed and returns the client's scan result.
func sshResultFor(t *testing.T, keySeed uint64) *sshwire.ScanResult {
	t.Helper()
	_, priv, err := sshwire.GenerateEd25519(&detRand{s: xrand.NewSplitMix64(keySeed)})
	if err != nil {
		t.Fatal(err)
	}
	p := sshwire.Profiles[0]
	client, server := net.Pipe()
	go sshwire.NewServer(sshwire.ServerConfig{
		Banner: p.Banner, Algorithms: p.Algorithms, HostKey: priv,
	}).Serve(server, netsim.ServeContext{})
	res, err := sshwire.Scan(client, sshwire.ScanConfig{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func bgpResultFor(routerID uint32) *bgp.ScanResult {
	o := &bgp.Open{Version: 4, MyAS: 65001, HoldTime: 90, BGPIdentifier: routerID}
	enc, _ := o.MarshalBinary()
	return &bgp.ScanResult{Open: o, OpenLen: uint16(len(enc))}
}

func TestResolverEndToEnd(t *testing.T) {
	r := NewResolver()
	resA := sshResultFor(t, 1)

	// One device with two v4 addresses and one v6 — same key material.
	a1 := netip.MustParseAddr("10.0.0.1")
	a2 := netip.MustParseAddr("10.0.0.2")
	a6 := netip.MustParseAddr("2001:db8::1")
	for _, a := range []netip.Addr{a1, a2, a6} {
		if !r.AddSSH(a, resA) {
			t.Fatal("AddSSH rejected full material")
		}
	}
	// A different device.
	resB := sshResultFor(t, 2)
	b1 := netip.MustParseAddr("10.0.1.1")
	if !r.AddSSH(b1, resB) {
		t.Fatal("AddSSH rejected device B")
	}

	sets := r.NonSingletonAliasSets(ident.SSH, true)
	if len(sets) != 1 || sets[0].Signature() != "10.0.0.1,10.0.0.2" {
		t.Errorf("v4 alias sets = %v", sets)
	}
	ds := r.DualStackSets()
	if len(ds) != 1 || !ds[0].Contains(a6) {
		t.Errorf("dual-stack sets = %v", ds)
	}
	union := r.UnionAliasSets(true)
	if len(union) != 1 {
		t.Errorf("union sets = %v", union)
	}
}

func TestResolverRejectsPartialResults(t *testing.T) {
	r := NewResolver()
	if r.AddSSH(netip.MustParseAddr("10.0.0.1"), &sshwire.ScanResult{Banner: "SSH-2.0-X"}) {
		t.Error("partial SSH result accepted")
	}
	if r.AddBGP(netip.MustParseAddr("10.0.0.2"), &bgp.ScanResult{SilentClose: true}) {
		t.Error("silent BGP result accepted")
	}
	if r.AddSNMPEngineID(netip.MustParseAddr("10.0.0.3"), nil) {
		t.Error("empty engine ID accepted")
	}
	if r.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", r.Dropped())
	}
}

func TestResolverBGPAndSNMP(t *testing.T) {
	r := NewResolver()
	res := bgpResultFor(42)
	r.AddBGP(netip.MustParseAddr("10.0.0.1"), res)
	r.AddBGP(netip.MustParseAddr("10.0.0.2"), res)
	r.AddSNMPEngineID(netip.MustParseAddr("10.0.0.2"), []byte{1, 2, 3, 4, 5})
	r.AddSNMPEngineID(netip.MustParseAddr("10.0.0.3"), []byte{1, 2, 3, 4, 5})

	if got := r.NonSingletonAliasSets(ident.BGP, true); len(got) != 1 {
		t.Errorf("BGP sets = %v", got)
	}
	// Union glues BGP {1,2} and SNMP {2,3} into {1,2,3}.
	union := r.UnionAliasSets(true)
	if len(union) != 1 || union[0].Size() != 3 {
		t.Errorf("union = %v", union)
	}
}

func TestResolverValidate(t *testing.T) {
	r := NewResolver()
	resA := sshResultFor(t, 3)
	bgpA := bgpResultFor(7)
	for _, s := range []string{"10.0.0.1", "10.0.0.2"} {
		a := netip.MustParseAddr(s)
		r.AddSSH(a, resA)
		r.AddBGP(a, bgpA)
	}
	v := r.Validate(ident.SSH, ident.BGP)
	if v.Sample != 1 || v.Agree != 1 {
		t.Errorf("validation = %+v", v)
	}
}

func TestResolverConcurrentFeed(t *testing.T) {
	r := NewResolver()
	res := bgpResultFor(9)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a := netip.AddrFrom4([4]byte{10, byte(w), byte(i / 250), byte(i%250 + 1)})
				r.AddBGP(a, res)
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Observations(ident.BGP)); got != 800 {
		t.Errorf("observations = %d, want 800", got)
	}
	if got := r.NonSingletonAliasSets(ident.BGP, true); len(got) != 1 || got[0].Size() != 800 {
		t.Errorf("sets = %d", len(got))
	}
}

func TestResolverAddObservationAndSummary(t *testing.T) {
	r := NewResolver()
	id := ident.Identifier{Proto: ident.SSH, Digest: "x"}
	r.AddObservation(alias.Observation{Addr: netip.MustParseAddr("10.0.0.1"), ID: id})
	r.AddObservation(alias.Observation{Addr: netip.MustParseAddr("2001:db8::9"), ID: id})
	s := r.Summarize()
	if s.ObsPerProtocol["SSH"] != 2 {
		t.Errorf("summary obs = %v", s.ObsPerProtocol)
	}
	if s.DualStackSets != 1 {
		t.Errorf("summary dual-stack = %d", s.DualStackSets)
	}
	if !strings.Contains(s.String(), "dualStack=1") {
		t.Errorf("summary string = %q", s.String())
	}
}
