package distres

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// WorkerEnv is the environment variable that flips a worker-capable binary
// into shard-worker mode: any main (or TestMain) that calls
// aliasd.RunWorkerIfRequested first will, when this is set, serve the worker
// HTTP endpoint instead of running its normal command. The coordinator sets
// it when re-executing its own binary.
const WorkerEnv = "ALIASLIMIT_SHARD_WORKER"

// AttachEnv, when set to a comma-separated list of base URLs, attaches the
// coordinator to already-running workers instead of spawning processes —
// the deployment shape where workers live on other machines. The URL count
// overrides the configured worker count.
const AttachEnv = "ALIASLIMIT_SHARD_WORKERS"

// ReadyPrefix opens the line a worker prints on stdout once it is serving;
// the rest of the line is the worker's base URL.
const ReadyPrefix = "DISTRES_READY "

// readyTimeout bounds the spawn handshake: a binary that is not
// worker-capable never prints the ready line, and the coordinator must say
// so instead of hanging.
const readyTimeout = 15 * time.Second

// worker is one shard worker the coordinator talks to.
type worker struct {
	url string
	// cmd and stdin are set in spawn mode only: the worker exits when its
	// stdin reaches EOF, so holding the pipe is holding the process.
	cmd   *exec.Cmd
	stdin io.WriteCloser
}

// Cluster is a fixed-size set of shard workers plus the HTTP client the
// coordinator multiplexes over them. The identifier space is partitioned
// across the workers by resolver.ShardRoute, so the cluster size is part of
// the wire contract for any session opened on it — all sessions of one
// cluster share one worker count.
type Cluster struct {
	workers []worker
	client  *http.Client

	mu     sync.Mutex
	closed bool
}

// Size returns the number of workers.
func (c *Cluster) Size() int { return len(c.workers) }

// WorkerURL returns one worker's base URL.
func (c *Cluster) WorkerURL(i int) string { return c.workers[i].url }

// KillWorker hard-kills one spawned worker (SIGKILL), simulating a crash
// mid-stream. It is the failure-injection hook the crash tests use; attached
// workers cannot be killed from here.
func (c *Cluster) KillWorker(i int) error {
	w := c.workers[i]
	if w.cmd == nil || w.cmd.Process == nil {
		return fmt.Errorf("distres: worker %d is attached, not spawned", i)
	}
	return w.cmd.Process.Kill()
}

// attach builds a cluster over already-running workers.
func attach(urls []string) *Cluster {
	c := &Cluster{client: newClient()}
	for _, u := range urls {
		c.workers = append(c.workers, worker{url: strings.TrimRight(u, "/")})
	}
	return c
}

// newClient returns the coordinator's HTTP client. The generous timeout is a
// hang backstop, not a latency bound — megascale observation streams are
// tens of megabytes.
func newClient() *http.Client {
	return &http.Client{Timeout: 5 * time.Minute}
}

// spawn starts n shard-worker processes by re-executing the current binary
// with WorkerEnv set and waiting for each worker's ready handshake. On any
// failure the already-started workers are torn down before returning.
func spawn(n int) (*Cluster, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("distres: locating own binary: %w", err)
	}
	c := &Cluster{client: newClient()}
	for i := 0; i < n; i++ {
		w, err := spawnOne(exe, i)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.workers = append(c.workers, w)
	}
	return c, nil
}

// spawnOne starts one worker process and completes its handshake.
func spawnOne(exe string, idx int) (worker, error) {
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	// Workers inherit stderr so a worker-side panic lands somewhere visible.
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return worker{}, fmt.Errorf("distres: worker %d stdin: %w", idx, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return worker{}, fmt.Errorf("distres: worker %d stdout: %w", idx, err)
	}
	if err := cmd.Start(); err != nil {
		return worker{}, fmt.Errorf("distres: starting worker %d: %w", idx, err)
	}

	ready := make(chan string, 1)
	fail := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, ReadyPrefix) {
				ready <- strings.TrimSpace(strings.TrimPrefix(line, ReadyPrefix))
				// Keep draining so the worker never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		fail <- fmt.Errorf("distres: worker %d exited before ready (%v); is this binary worker-capable? (main must call aliasd.RunWorkerIfRequested)", idx, sc.Err())
	}()

	select {
	case url := <-ready:
		return worker{url: url, cmd: cmd, stdin: stdin}, nil
	case err := <-fail:
		stdin.Close()
		cmd.Process.Kill()
		cmd.Wait()
		return worker{}, err
	case <-time.After(readyTimeout):
		stdin.Close()
		cmd.Process.Kill()
		cmd.Wait()
		return worker{}, fmt.Errorf("distres: worker %d did not report ready within %v; is this binary worker-capable? (main must call aliasd.RunWorkerIfRequested)", idx, readyTimeout)
	}
}

// Close shuts the cluster down: spawned workers see stdin EOF (their exit
// signal), get a grace period, and are killed if they overstay. Idempotent.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()

	var wg sync.WaitGroup
	for i := range c.workers {
		w := c.workers[i]
		if w.cmd == nil {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.stdin.Close()
			done := make(chan struct{})
			go func() { w.cmd.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				w.cmd.Process.Kill()
				<-done
			}
		}()
	}
	wg.Wait()
	return nil
}

// post sends one wire message to a worker endpoint and returns the response
// body. Any transport failure — including a worker killed mid-stream — comes
// back as an error for the session to make sticky.
func (c *Cluster) post(url string, body []byte) ([]byte, error) {
	resp, err := c.client.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}
