package distres_test

import (
	"errors"
	"fmt"
	"net/netip"
	"os"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/aliasd"
	"aliaslimit/internal/distres"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/resolver"
)

// TestMain makes the test binary worker-capable: the coordinator under test
// re-executes this very binary as its shard-worker processes. (External test
// package: aliasd imports distres, so the worker entry point would be an
// import cycle from inside package distres.)
func TestMain(m *testing.M) {
	aliasd.RunWorkerIfRequested()
	os.Exit(m.Run())
}

// corpus builds a deterministic observation mix keyed on seed: aliased
// groups across all three protocols, both address families, interleaved so
// every shard route sees work.
func corpus(seed uint64, n int) []alias.Observation {
	out := make([]alias.Observation, 0, n)
	for i := 0; i < n; i++ {
		k := uint64(i)*2654435761 + seed*97
		var a netip.Addr
		if k%4 == 0 {
			a = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 14: byte(k >> 8), 15: byte(k)})
		} else {
			a = netip.AddrFrom4([4]byte{10, byte(k >> 16), byte(k >> 8), byte(k)})
		}
		out = append(out, alias.Observation{
			Addr: a,
			ID: ident.Identifier{
				Proto: ident.Protocols[i%len(ident.Protocols)],
				// ~3 addresses share each digest: real alias groups to ship.
				Digest: fmt.Sprintf("seed%d-group-%04d", seed, k%uint64(n/3+1)),
			},
		})
	}
	return out
}

// setKeys flattens a partition into canonical keys for comparison.
func setKeys(sets []alias.Set) []string {
	out := make([]string, len(sets))
	for i, s := range sets {
		out[i] = string(s.Key())
	}
	return out
}

// requireEqualSets fails unless two partitions are byte-identical.
func requireEqualSets(t *testing.T, label string, want, got []alias.Set) {
	t.Helper()
	wk, gk := setKeys(want), setKeys(got)
	if len(wk) != len(gk) {
		t.Fatalf("%s: %d sets, want %d", label, len(gk), len(wk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("%s: set %d = %q, want %q", label, i, gk[i], wk[i])
		}
	}
}

// TestDistributedMatchesBatchAcrossWorkerCounts is the cross-process
// determinism gate at the session level: coordinator plus 1, 2, and 7 real
// worker processes, at two seeds, must reproduce the batch backend's alias
// sets and merges byte for byte. CI runs it under -race.
func TestDistributedMatchesBatchAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for _, seed := range []uint64{1, 42} {
		obs := corpus(seed, 900)

		batch := resolver.NewBatch()
		bs, err := batch.Open(resolver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range obs {
			bs.Observe(o)
		}
		wantSets := map[ident.Protocol][]alias.Set{}
		for _, p := range ident.Protocols {
			wantSets[p] = bs.Sets(p)
		}
		wantMerged := bs.Merged(wantSets[ident.SSH], wantSets[ident.BGP], wantSets[ident.SNMP])
		if err := bs.Close(); err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("seed%d-workers%d", seed, workers), func(t *testing.T) {
				be := distres.New(workers)
				defer be.Close()
				ses, err := be.Open(resolver.Options{})
				if err != nil {
					t.Fatal(err)
				}
				defer ses.Close()
				for _, o := range obs {
					ses.Observe(o)
				}
				groups := map[ident.Protocol][]alias.Set{}
				for _, p := range ident.Protocols {
					groups[p] = ses.Sets(p)
					requireEqualSets(t, p.String(), wantSets[p], groups[p])
				}
				merged := ses.Merged(groups[ident.SSH], groups[ident.BGP], groups[ident.SNMP])
				requireEqualSets(t, "merged", wantMerged, merged)
				if err := ses.Close(); err != nil {
					t.Fatalf("healthy session Close: %v", err)
				}
			})
		}
	}
}

// TestPipelinedFlushMatchesBatch crosses the coordinator's flush chunk
// boundary: a per-(worker, protocol) batch several times the chunk size
// ships as a sequence of double-buffered requests (encode of chunk N
// overlapping the POST of chunk N-1), and the resolved sets must still be
// byte-identical to the batch backend's. One worker concentrates the whole
// corpus on a single pipeline; a second run with two workers splits it.
func TestPipelinedFlushMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	obs := corpus(5, 30000) // 10k per protocol — past the 8192-observation chunk size

	batch := resolver.NewBatch()
	bs, err := batch.Open(resolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantSets := map[ident.Protocol][]alias.Set{}
	for _, o := range obs {
		bs.Observe(o)
	}
	for _, p := range ident.Protocols {
		wantSets[p] = bs.Sets(p)
	}
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			be := distres.New(workers)
			defer be.Close()
			ses, err := be.Open(resolver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer ses.Close()
			for _, o := range obs {
				ses.Observe(o)
			}
			for _, p := range ident.Protocols {
				requireEqualSets(t, p.String(), wantSets[p], ses.Sets(p))
			}
			if err := ses.Close(); err != nil {
				t.Fatalf("healthy session Close: %v", err)
			}
		})
	}
}

// TestSessionsShareOneCluster pins the backend contract: every session a
// backend opens runs on the same worker fleet (the shard map is a function
// of the cluster size, so sessions must agree on it), and independent
// sessions do not leak observations into each other.
func TestSessionsShareOneCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	be := distres.New(2)
	defer be.Close()
	s1, err := be.Open(resolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	c := be.Cluster()
	if c == nil || c.Size() != 2 {
		t.Fatalf("cluster after first Open: %+v", c)
	}
	s2, err := be.Open(resolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if be.Cluster() != c {
		t.Fatal("second Open built a second cluster")
	}

	for _, o := range corpus(7, 300) {
		s1.Observe(o)
	}
	if got := s2.Sets(ident.SSH); len(got) != 0 {
		t.Fatalf("fresh session sees %d sets fed to a sibling", len(got))
	}
	if got := s1.Sets(ident.SSH); len(got) == 0 {
		t.Fatal("fed session resolved no sets")
	}
}

// TestWorkerCrashFailsCleanly is the failure-model gate: SIGKILL one worker
// mid-stream and the session must turn into a clean, retryable error — nil
// set views, no partial merge, ErrWorkerFailed from Close — while a fresh
// backend retries the same work successfully.
func TestWorkerCrashFailsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	obs := corpus(3, 600)

	be := distres.New(2)
	defer be.Close()
	ses, err := be.Open(resolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		ses.Observe(o)
	}
	if got := ses.Sets(ident.SSH); len(got) == 0 {
		t.Fatal("healthy session resolved no SSH sets")
	}

	// Crash one shard, then stream more work at it: the flush must surface
	// the failure rather than hang or half-apply.
	if err := be.Cluster().KillWorker(0); err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		ses.Observe(o)
	}
	if got := ses.Sets(ident.BGP); got != nil {
		t.Fatalf("Sets after worker crash returned %d sets, want nil", len(got))
	}
	if got := ses.Sets(ident.SSH); got != nil {
		t.Fatal("previously resolved protocol still served after crash")
	}
	if got := ses.Merged([]alias.Set{alias.NewSet(netip.MustParseAddr("10.0.0.1"))}); got != nil {
		t.Fatal("Merged after worker crash returned a partial result")
	}
	err = ses.Close()
	if !errors.Is(err, distres.ErrWorkerFailed) {
		t.Fatalf("Close after crash = %v, want ErrWorkerFailed", err)
	}

	// The condition is retryable: a fresh cluster resolves the same corpus.
	retry := distres.New(2)
	defer retry.Close()
	rs, err := retry.Open(resolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	for _, o := range obs {
		rs.Observe(o)
	}
	if got := rs.Sets(ident.SSH); len(got) == 0 {
		t.Fatal("retry after crash resolved no sets")
	}
}

// TestClosedBackendRefusesOpen pins Close semantics: closing the backend
// stops the fleet and later Opens fail with the retryable error, not a
// fresh silent cluster.
func TestClosedBackendRefusesOpen(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	be := distres.New(1)
	if _, err := be.Open(resolver.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}
	if err := be.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := be.Open(resolver.Options{}); !errors.Is(err, distres.ErrWorkerFailed) {
		t.Fatalf("Open after Close = %v, want ErrWorkerFailed", err)
	}
}

// TestAttachEnvSizesBackend pins the multi-machine shape: a URL list in the
// attach environment variable fixes the worker count without spawning.
func TestAttachEnvSizesBackend(t *testing.T) {
	t.Setenv(distres.AttachEnv, "http://127.0.0.1:1/, http://127.0.0.1:2")
	be := distres.New(0)
	if got := be.Workers(); got != 2 {
		t.Fatalf("Workers with attach env = %d, want 2", got)
	}
}
