// Package distres is the distributed incarnation of the sharded resolver
// backend: the identifier space is partitioned across worker *processes*
// instead of goroutines, with one deterministic cross-shard merge at the
// coordinator. It registers itself with internal/resolver as the
// "distributed" backend — linking this package is enabling it.
//
// # Topology
//
// A Backend lazily starts one Cluster of N shard workers on first Open and
// shares it across every session it opens. A worker is a full aliasd server
// (internal/aliasd) reached over HTTP: the coordinator re-executes its own
// binary with ALIASLIMIT_SHARD_WORKER set (any main that calls
// aliasd.RunWorkerIfRequested first is worker-capable), waits for the
// "DISTRES_READY <url>" handshake on the child's stdout, and holds the
// child's stdin — EOF is the worker's exit signal. Setting
// ALIASLIMIT_SHARD_WORKERS to a comma-separated URL list attaches to
// already-running workers instead (the multi-machine shape).
//
// Each coordinator session creates one remote aliasd session per worker
// (the ordinary JSON POST /v1/sessions, backend "batch" — the shard state
// is the same pooled Grouper arena every in-process backend folds through)
// and then speaks the binary wire protocol (wire.go) against POST
// /v1/sessions/{id}/resolve, the fast path that bypasses the NDJSON ingest
// queue. HTTP /v1 NDJSON stays for humans; the frames are for the fleet.
//
// # Determinism
//
// Observations route to workers by resolver.ShardRoute — the same
// identifier-hash map the in-process sharded backend uses — so a group
// never straddles workers, and concatenating the workers' canonical alias
// sets and sorting (alias.SortSets) is byte-identical to the single-arena
// batch grouping. Merged flattens its partitions, deals them round-robin to
// the workers for shard-local union-find collapse, and merges the partial
// partitions in one final pass at the coordinator — union-find closure is
// associative, so the result equals the single-pass merge. The scenario
// sets_digest gate holds for "distributed" on every preset at any worker
// count, and the CI distributed-compare job enforces it with real worker
// processes.
//
// # Failure model
//
// Remote calls can fail (a worker crashes mid-stream, the wire corrupts).
// The first failure is recorded as the session's sticky error, wrapped in
// ErrWorkerFailed; from then on Sets and Merged return nil — no partial
// result ever escapes — and Close reports the error. The condition is
// retryable: workers hold no state a fresh session cannot rebuild, so
// closing the backend and rerunning is always safe.
package distres

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"aliaslimit/internal/resolver"
)

// ErrWorkerFailed marks a resolution that died with its cluster: a shard
// worker crashed, hung, or returned a corrupt stream. It is a clean,
// retryable condition — no partial merge was committed, and rerunning
// against a fresh cluster is always safe. Test with errors.Is.
var ErrWorkerFailed = errors.New("distres: shard worker failed")

// DefaultWorkers is the worker-process count when none is configured.
const DefaultWorkers = 2

// maxWorkers caps the process fan-out; resolver.ShardRoute's byte-wide
// route shares the same bound.
const maxWorkers = 256

func init() {
	resolver.Register("distributed", func(workers int) resolver.Backend {
		return New(workers)
	})
}

// Backend is the "distributed" resolver backend: a factory whose sessions
// share one lazily started worker cluster.
type Backend struct {
	workers int
	attach  []string

	mu      sync.Mutex
	cluster *Cluster
	closed  bool
}

// New returns a distributed backend that will run workers shard-worker
// processes (0 picks DefaultWorkers, or the URL count when AttachEnv is
// set). The cluster starts on first Open and stops at Close.
func New(workers int) *Backend {
	b := &Backend{workers: workers}
	if env := os.Getenv(AttachEnv); env != "" {
		for _, u := range strings.Split(env, ",") {
			if u = strings.TrimSpace(u); u != "" {
				b.attach = append(b.attach, u)
			}
		}
	}
	return b
}

// Name implements resolver.Backend.
func (b *Backend) Name() string { return "distributed" }

// FeedLive implements resolver.LiveFeeder: Observe is a constant-time local
// buffer append (batches ship to the workers at the first Sets call), so
// collection can stream into a distributed session directly.
func (b *Backend) FeedLive() bool { return true }

// Workers returns the worker-process count the cluster runs (or will run).
func (b *Backend) Workers() int {
	if len(b.attach) > 0 {
		return len(b.attach)
	}
	w := b.workers
	if w <= 0 {
		w = DefaultWorkers
	}
	if w > maxWorkers {
		w = maxWorkers
	}
	return w
}

// Cluster returns the running cluster, or nil before the first Open — the
// inspection and failure-injection surface the process-level tests use.
func (b *Backend) Cluster() *Cluster {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cluster
}

// ensureCluster starts the worker fleet once. The cluster size is fixed for
// the backend's lifetime: the shard route is a function of the worker count,
// so every session on one backend must agree on it.
func (b *Backend) ensureCluster() (*Cluster, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("%w: backend closed", ErrWorkerFailed)
	}
	if b.cluster != nil {
		return b.cluster, nil
	}
	if len(b.attach) > 0 {
		b.cluster = attach(b.attach)
		return b.cluster, nil
	}
	c, err := spawn(b.Workers())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWorkerFailed, err)
	}
	b.cluster = c
	return c, nil
}

// Open implements resolver.Backend: it ensures the cluster is up and creates
// one remote aliasd session per worker. The per-session Options.Workers
// override is ignored — the cluster's size is part of the shard-map
// contract shared by every session (use New's count instead).
func (b *Backend) Open(resolver.Options) (resolver.Session, error) {
	c, err := b.ensureCluster()
	if err != nil {
		return nil, err
	}
	return openSession(c)
}

// Close implements io.Closer: it stops the worker processes. Sessions still
// open on the cluster fail their next remote call with ErrWorkerFailed.
func (b *Backend) Close() error {
	b.mu.Lock()
	c := b.cluster
	b.cluster = nil
	b.closed = true
	b.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
