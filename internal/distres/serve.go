package distres

import (
	"fmt"

	"aliaslimit/internal/resolver"
)

// ServeResolve is the worker side of the wire protocol: it decodes one
// complete coordinator message, executes it against the worker's resolver
// session, and returns the encoded response. It is the one exported seam
// between this package's private codec and the aliasd HTTP endpoint (POST
// /v1/sessions/{id}/resolve) that carries the frames.
//
// applied reports how many observations the message landed in the session
// (opObs only), so the serving layer can advance its ingest counters. Any
// error means the message was rejected whole — a session never applies a
// partial batch.
func ServeResolve(body []byte, sess resolver.Session) (resp []byte, applied int, err error) {
	m, err := decodeMessage(body)
	if err != nil {
		return nil, 0, err
	}
	switch m.op {
	case opObs:
		if err := m.checkCount(); err != nil {
			return nil, 0, err
		}
		for _, o := range m.obs {
			sess.Observe(o)
		}
		return encodeAck(len(m.obs)), len(m.obs), nil
	case opSets:
		return encodeSetStream(opSets, m.proto, sess.Sets(m.proto)), 0, nil
	case opMerge:
		if err := m.checkCount(); err != nil {
			return nil, 0, err
		}
		return encodeSetStream(opMerge, 0, sess.Merged(m.sets)), 0, nil
	}
	return nil, 0, fmt.Errorf("distres: op %d has no server handler", m.op)
}
