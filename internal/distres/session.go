package distres

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/resolver"
)

// numProto is the number of identifier protocols the buffers index by.
const numProto = 3

// session is the coordinator side of one distributed resolution: local
// per-(worker, protocol) observation buffers, one remote aliasd session per
// worker, and a sticky error that turns the first remote failure into a
// clean all-or-nothing outcome.
type session struct {
	cluster *Cluster
	// ids holds the remote aliasd session id on each worker.
	ids []string

	mu sync.Mutex
	// pending buffers observations per (worker, protocol) until a Sets call
	// flushes that protocol — Observe is constant-time local work, which is
	// what lets collection feed a distributed session live.
	pending []([numProto][]alias.Observation)
	err     error
	closed  bool
}

// openSession creates one remote batch session per worker. The remote
// backend is "batch": each shard's state is the pooled Grouper arena plus
// the persistent interning table, exactly the structures the in-process
// backends fold through — run remotely.
func openSession(c *Cluster) (resolver.Session, error) {
	s := &session{
		cluster: c,
		ids:     make([]string, c.Size()),
		pending: make([]([numProto][]alias.Observation), c.Size()),
	}
	body := []byte(`{"backend":"batch"}`)
	for i := 0; i < c.Size(); i++ {
		resp, err := c.client.Post(c.WorkerURL(i)+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("%w: creating session on worker %d: %v", ErrWorkerFailed, i, err)
		}
		var info struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusCreated || info.ID == "" {
			s.Close()
			return nil, fmt.Errorf("%w: worker %d session create returned %s", ErrWorkerFailed, i, resp.Status)
		}
		s.ids[i] = info.ID
	}
	return s, nil
}

// resolveURL is one worker's binary fast-path endpoint for this session.
func (s *session) resolveURL(i int) string {
	return s.cluster.WorkerURL(i) + "/v1/sessions/" + s.ids[i] + "/resolve"
}

// fail records the first remote error, making every subsequent Sets/Merged
// return nil and Close report the failure.
func (s *session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = fmt.Errorf("%w: %v", ErrWorkerFailed, err)
	}
	s.mu.Unlock()
}

// Err returns the session's sticky error, nil while healthy.
func (s *session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Observe implements resolver.Session by routing the observation to its
// identifier's shard worker — resolver.ShardRoute, the same map the
// in-process sharded backend uses, so a group never straddles workers.
func (s *session) Observe(o alias.Observation) {
	w := resolver.ShardRoute(o.ID, len(s.ids))
	s.mu.Lock()
	s.pending[w][o.ID.Proto] = append(s.pending[w][o.ID.Proto], o)
	s.mu.Unlock()
}

// flushChunkObs bounds one wire request of the pipelined flush: large enough
// that header and ack overhead is negligible, small enough that encoding the
// next chunk genuinely overlaps the in-flight POST.
const flushChunkObs = 8192

// flush ships one protocol's pending buffers to their workers. Each worker's
// batch is canonicalised once, then shipped as a double-buffered pipeline:
// an encoder goroutine serialises chunk N while the sender's POST of chunk
// N-1 is still on the wire (channel capacity 1 = one chunk encoded ahead).
// Chunks of a canonical batch are themselves canonical, so the encoder's own
// canon pass stays a no-op and the wire bytes remain
// arrival-order-independent; the worker folds sequential chunks into the same
// shard state one combined batch would produce. Batches at or under the chunk
// size take the single-request path unchanged.
func (s *session) flush(p ident.Protocol) error {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	batches := make([][]alias.Observation, len(s.ids))
	for w := range s.pending {
		batches[w] = s.pending[w][p]
		s.pending[w][p] = nil
	}
	s.mu.Unlock()

	var wg sync.WaitGroup
	errs := make([]error, len(batches))
	for w, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, batch []alias.Observation) {
			defer wg.Done()
			// Canonicalise up front so each chunk's ack count is comparable.
			batch = canonObs(batch)
			type chunk struct {
				body []byte
				want int
			}
			chunks := make(chan chunk, 1)
			go func() {
				defer close(chunks)
				for len(batch) > 0 {
					n := len(batch)
					if n > flushChunkObs {
						n = flushChunkObs
					}
					chunks <- chunk{body: encodeObsRequest(batch[:n]), want: n}
					batch = batch[n:]
				}
			}()
			for c := range chunks {
				if errs[w] != nil {
					continue // drain the encoder so it can exit
				}
				body, err := s.cluster.post(s.resolveURL(w), c.body)
				if err != nil {
					errs[w] = fmt.Errorf("worker %d: %v", w, err)
					continue
				}
				m, err := decodeMessage(body)
				if err != nil || m.op != opObs {
					errs[w] = fmt.Errorf("worker %d: bad ingest ack: %v", w, err)
					continue
				}
				if m.count != c.want {
					errs[w] = fmt.Errorf("worker %d applied %d of %d observations", w, m.count, c.want)
				}
			}
		}(w, batch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.fail(err)
			return s.Err()
		}
	}
	return nil
}

// Sets implements resolver.Session: flush the protocol's pending
// observations, ask every worker for its shard's canonical alias sets, and
// concatenate + sort. Because the shard route is the identifier hash, the
// result is byte-identical to the batch backend's single-arena grouping. A
// failed session returns nil.
func (s *session) Sets(p ident.Protocol) []alias.Set {
	if err := s.flush(p); err != nil {
		return nil
	}
	req := encodeSetsRequest(p)
	partials := make([][]alias.Set, len(s.ids))
	errs := make([]error, len(s.ids))
	var wg sync.WaitGroup
	for w := range s.ids {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			partials[w], errs[w] = s.fetchSets(w, req, opSets)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.fail(err)
			return nil
		}
	}
	total := 0
	for _, part := range partials {
		total += len(part)
	}
	out := make([]alias.Set, 0, total)
	for _, part := range partials {
		out = append(out, part...)
	}
	alias.SortSets(out)
	return out
}

// fetchSets posts one set-returning request to a worker and decodes the
// stream.
func (s *session) fetchSets(w int, req []byte, wantOp byte) ([]alias.Set, error) {
	body, err := s.cluster.post(s.resolveURL(w), req)
	if err != nil {
		return nil, fmt.Errorf("worker %d: %v", w, err)
	}
	m, err := decodeMessage(body)
	if err != nil {
		return nil, fmt.Errorf("worker %d: %v", w, err)
	}
	if m.op != wantOp {
		return nil, fmt.Errorf("worker %d: op %d in response, want %d", w, m.op, wantOp)
	}
	if err := m.checkCount(); err != nil {
		return nil, fmt.Errorf("worker %d: %v", w, err)
	}
	return m.sets, nil
}

// Merged implements resolver.Session: flatten the partitions, deal the sets
// round-robin to the workers for shard-local union-find collapse, and merge
// the partial partitions in one final pass — the sharded backend's merge
// shape across processes. Small inputs collapse locally: shipping them
// would spend more wire than the fan-out saves. A failed session returns
// nil.
func (s *session) Merged(groups ...[]alias.Set) []alias.Set {
	if s.Err() != nil {
		return nil
	}
	var sets []alias.Set
	for _, g := range groups {
		sets = append(sets, g...)
	}
	w := len(s.ids)
	if w <= 1 || len(sets) < 2*w {
		return alias.Merge(sets)
	}
	shards := make([][]alias.Set, w)
	for i, set := range sets {
		shards[i%w] = append(shards[i%w], set)
	}
	partials := make([][]alias.Set, w)
	errs := make([]error, w)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partials[i], errs[i] = s.fetchSets(i, encodeSetStream(opMerge, 0, shards[i]), opMerge)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.fail(err)
			return nil
		}
	}
	return alias.Merge(partials...)
}

// Close implements resolver.Session: delete the remote sessions
// (best-effort — a crashed worker cannot honor the delete) and report the
// sticky error. Idempotent.
func (s *session) Close() error {
	s.mu.Lock()
	if s.closed {
		err := s.err
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.mu.Unlock()
	for i, id := range s.ids {
		if id == "" {
			continue
		}
		req, err := http.NewRequest(http.MethodDelete, s.cluster.WorkerURL(i)+"/v1/sessions/"+id, nil)
		if err != nil {
			continue
		}
		if resp, err := s.cluster.client.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	return s.Err()
}
