package distres

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obslog"
)

// The coordinator↔worker wire format reuses the obslog frame discipline —
// u32le payload length | payload | u32le CRC-32C (Castagnoli) — so a
// truncated or corrupted stream is detected by the same checksum walk that
// guards the observation log. A message is a frame sequence:
//
//	header frame:  'D' 'R' 'E' 'S' | version | op | proto
//	content frames: kind byte | records           (zero or more)
//	end frame:     0x1F | u64le record count
//
// The end frame's count must equal the records decoded from the content
// frames, so a stream cut between frames (which framing alone cannot catch)
// is rejected too. Three ops exist: opObs streams identifier observations
// coordinator→worker, opSets requests one protocol's alias sets back, and
// opMerge ships alias-set partitions for a shard-local union-find collapse.
// Observation batches are canonicalised — sorted by (proto, addr, digest)
// and deduplicated — before encoding, so the wire bytes for a given
// observation multiset are identical regardless of arrival order, mirroring
// the obslog's canonical epoch folding. Set streams are canonical by
// construction (alias.SortSets on the producing side).
//
// Records are compact: an observation is proto(1) | addrlen(1) | addr(4|16)
// | digestlen(u16le) | digest; an alias set is count(u32le) followed by
// addrlen(1) | addr(4|16) per address — the per-shard union-find state comes
// back as its component sets, which is the minimal edge information the
// coordinator needs for the final cross-shard merge.

// wireVersion is the protocol version the header frame records.
const wireVersion = 1

// wireMagic opens every message header.
var wireMagic = [4]byte{'D', 'R', 'E', 'S'}

// Ops distinguish the three message kinds.
const (
	opObs   = 1 // observation stream, coordinator → worker
	opSets  = 2 // alias-set request/response for one protocol
	opMerge = 3 // partition collapse request/response
)

// Content frame kinds (first payload byte). The header frame starts with
// 'D' (0x44) and collides with none of them.
const (
	kindObsBatch = 0x10 // observation records
	kindSetBatch = 0x11 // alias-set records
	kindEnd      = 0x1f // end marker carrying the total record count
)

// frameTarget is the soft payload size content frames are chunked to: large
// enough to amortise the 8-byte frame overhead and the CRC pass, small
// enough that a corrupt frame loses little.
const frameTarget = 64 << 10

// canonObs sorts observations by (proto, addr, digest) and collapses exact
// duplicates, in place. Every observation batch passes through here before
// encoding — the wire bytes are a function of the observation multiset, not
// of arrival order.
func canonObs(obs []alias.Observation) []alias.Observation {
	sort.Slice(obs, func(i, j int) bool {
		a, b := obs[i], obs[j]
		if a.ID.Proto != b.ID.Proto {
			return a.ID.Proto < b.ID.Proto
		}
		if c := a.Addr.Compare(b.Addr); c != 0 {
			return c < 0
		}
		return a.ID.Digest < b.ID.Digest
	})
	out := obs[:0]
	for i, o := range obs {
		if i > 0 && o == obs[i-1] {
			continue
		}
		out = append(out, o)
	}
	return out
}

// appendHeader appends the message header frame.
func appendHeader(dst []byte, op byte, p ident.Protocol) []byte {
	return obslog.AppendFrame(dst, []byte{
		wireMagic[0], wireMagic[1], wireMagic[2], wireMagic[3],
		wireVersion, op, byte(p),
	})
}

// decodeHeader validates a message header payload.
func decodeHeader(payload []byte) (op byte, p ident.Protocol, err error) {
	if len(payload) != 7 || [4]byte(payload[:4]) != wireMagic {
		return 0, 0, fmt.Errorf("distres: bad message header")
	}
	if payload[4] != wireVersion {
		return 0, 0, fmt.Errorf("distres: wire version %d, want %d", payload[4], wireVersion)
	}
	op, p = payload[5], ident.Protocol(payload[6])
	if op < opObs || op > opMerge {
		return 0, 0, fmt.Errorf("distres: unknown op %d", op)
	}
	if p > ident.SNMP {
		return 0, 0, fmt.Errorf("distres: unknown protocol %d", payload[6])
	}
	return op, p, nil
}

// appendEnd appends the end frame carrying the total record count.
func appendEnd(dst []byte, count int) []byte {
	var p [9]byte
	p[0] = kindEnd
	binary.LittleEndian.PutUint64(p[1:], uint64(count))
	return obslog.AppendFrame(dst, p[:])
}

// appendAddr encodes one address as addrlen | bytes.
func appendAddr(dst []byte, a netip.Addr) []byte {
	if a.Is4() {
		b := a.As4()
		dst = append(dst, 4)
		return append(dst, b[:]...)
	}
	b := a.As16()
	dst = append(dst, 16)
	return append(dst, b[:]...)
}

// decodeAddr decodes one address, returning it and the remaining bytes.
func decodeAddr(b []byte) (netip.Addr, []byte, error) {
	if len(b) < 1 {
		return netip.Addr{}, nil, fmt.Errorf("distres: truncated address")
	}
	n := int(b[0])
	b = b[1:]
	switch {
	case n == 4 && len(b) >= 4:
		return netip.AddrFrom4([4]byte(b[:4])), b[4:], nil
	case n == 16 && len(b) >= 16:
		return netip.AddrFrom16([16]byte(b[:16])), b[16:], nil
	}
	return netip.Addr{}, nil, fmt.Errorf("distres: bad address length %d", n)
}

// encodeObsRequest builds a complete opObs message: the observations are
// canonicalised (sorted, deduplicated) and streamed as chunked records. The
// input slice is reordered in place.
func encodeObsRequest(obs []alias.Observation) []byte {
	obs = canonObs(obs)
	out := appendHeader(nil, opObs, 0)
	payload := make([]byte, 0, frameTarget+256)
	payload = append(payload, kindObsBatch)
	for _, o := range obs {
		payload = append(payload, byte(o.ID.Proto))
		payload = appendAddr(payload, o.Addr)
		var dl [2]byte
		binary.LittleEndian.PutUint16(dl[:], uint16(len(o.ID.Digest)))
		payload = append(payload, dl[:]...)
		payload = append(payload, o.ID.Digest...)
		if len(payload) >= frameTarget {
			out = obslog.AppendFrame(out, payload)
			payload = payload[:1]
		}
	}
	if len(payload) > 1 {
		out = obslog.AppendFrame(out, payload)
	}
	return appendEnd(out, len(obs))
}

// decodeObsRecords parses one kindObsBatch payload, invoking fn per record.
func decodeObsRecords(b []byte, fn func(alias.Observation)) (int, error) {
	n := 0
	for len(b) > 0 {
		if len(b) < 1 {
			return n, fmt.Errorf("distres: truncated observation record")
		}
		p := ident.Protocol(b[0])
		if p > ident.SNMP {
			return n, fmt.Errorf("distres: unknown protocol %d in observation", b[0])
		}
		addr, rest, err := decodeAddr(b[1:])
		if err != nil {
			return n, err
		}
		if len(rest) < 2 {
			return n, fmt.Errorf("distres: truncated digest length")
		}
		dl := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if dl < 1 || len(rest) < dl {
			return n, fmt.Errorf("distres: bad digest length %d", dl)
		}
		fn(alias.Observation{Addr: addr, ID: ident.Identifier{Proto: p, Digest: string(rest[:dl])}})
		b = rest[dl:]
		n++
	}
	return n, nil
}

// encodeSetsRequest builds the opSets request for one protocol: header plus
// empty end frame — the worker's session holds the state.
func encodeSetsRequest(p ident.Protocol) []byte {
	return appendEnd(appendHeader(nil, opSets, p), 0)
}

// encodeSetStream builds a complete set-carrying message (an opSets response
// or an opMerge request/response): chunked set records plus the end count.
func encodeSetStream(op byte, p ident.Protocol, sets []alias.Set) []byte {
	out := appendHeader(nil, op, p)
	payload := make([]byte, 0, frameTarget+256)
	payload = append(payload, kindSetBatch)
	for _, s := range sets {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s.Addrs)))
		payload = append(payload, n[:]...)
		for _, a := range s.Addrs {
			payload = appendAddr(payload, a)
		}
		if len(payload) >= frameTarget {
			out = obslog.AppendFrame(out, payload)
			payload = payload[:1]
		}
	}
	if len(payload) > 1 {
		out = obslog.AppendFrame(out, payload)
	}
	return appendEnd(out, len(sets))
}

// decodeSetRecords parses one kindSetBatch payload into dst.
func decodeSetRecords(b []byte, dst []alias.Set) ([]alias.Set, error) {
	for len(b) > 0 {
		if len(b) < 4 {
			return dst, fmt.Errorf("distres: truncated set record")
		}
		n := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if n < 1 || n > 1<<24 {
			return dst, fmt.Errorf("distres: bad set size %d", n)
		}
		addrs := make([]netip.Addr, 0, n)
		for i := 0; i < n; i++ {
			var (
				a   netip.Addr
				err error
			)
			a, b, err = decodeAddr(b)
			if err != nil {
				return dst, err
			}
			addrs = append(addrs, a)
		}
		dst = append(dst, alias.Set{Addrs: addrs})
	}
	return dst, nil
}

// encodeAck builds the opObs response: header plus the applied count.
func encodeAck(applied int) []byte {
	return appendEnd(appendHeader(nil, opObs, 0), applied)
}

// message is one decoded wire message.
type message struct {
	op      byte
	proto   ident.Protocol
	obs     []alias.Observation
	sets    []alias.Set
	records int
	count   int
}

// decodeMessage parses a complete message buffer, validating framing, CRCs,
// and the end-frame record count.
func decodeMessage(body []byte) (*message, error) {
	payload, size, ok := obslog.NextFrame(body)
	if !ok {
		return nil, fmt.Errorf("distres: missing or corrupt message header frame")
	}
	op, proto, err := decodeHeader(payload)
	if err != nil {
		return nil, err
	}
	m := &message{op: op, proto: proto}
	body = body[size:]
	records := 0
	ended := false
	for len(body) > 0 {
		payload, size, ok = obslog.NextFrame(body)
		if !ok {
			return nil, fmt.Errorf("distres: corrupt or truncated frame mid-message")
		}
		body = body[size:]
		if ended {
			return nil, fmt.Errorf("distres: frame after end marker")
		}
		switch payload[0] {
		case kindObsBatch:
			n, err := decodeObsRecords(payload[1:], func(o alias.Observation) {
				m.obs = append(m.obs, o)
			})
			if err != nil {
				return nil, err
			}
			records += n
		case kindSetBatch:
			before := len(m.sets)
			m.sets, err = decodeSetRecords(payload[1:], m.sets)
			if err != nil {
				return nil, err
			}
			records += len(m.sets) - before
		case kindEnd:
			if len(payload) != 9 {
				return nil, fmt.Errorf("distres: bad end frame")
			}
			m.count = int(binary.LittleEndian.Uint64(payload[1:]))
			ended = true
		default:
			return nil, fmt.Errorf("distres: unknown frame kind %#x", payload[0])
		}
	}
	if !ended {
		return nil, fmt.Errorf("distres: message missing end frame (stream cut mid-flight)")
	}
	m.records = records
	return m, nil
}

// checkCount enforces the end-frame accounting for record-carrying messages:
// the decoded record total must equal the count the sender framed last, so a
// whole content frame excised cleanly from the stream is still rejected.
// (opObs acks skip this — their count is the applied total, with no records.)
func (m *message) checkCount() error {
	if m.records != m.count {
		return fmt.Errorf("distres: end frame counts %d records, decoded %d", m.count, m.records)
	}
	return nil
}
