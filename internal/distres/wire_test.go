package distres

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obslog"
)

// obsFixture builds a deterministic observation corpus spanning both address
// families and all three protocols, unsorted on purpose.
func obsFixture(n int) []alias.Observation {
	out := make([]alias.Observation, 0, n)
	for i := 0; i < n; i++ {
		var a netip.Addr
		if i%3 == 0 {
			a = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 15: byte(i)})
		} else {
			a = netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1})
		}
		out = append(out, alias.Observation{
			Addr: a,
			ID: ident.Identifier{
				Proto:  ident.Protocols[i%len(ident.Protocols)],
				Digest: fmt.Sprintf("digest-%03d", i%37),
			},
		})
	}
	return out
}

// TestObsRequestArrivalOrderIndependent pins the canonical-wire contract:
// the encoded bytes are a function of the observation multiset, not of
// arrival order or duplication.
func TestObsRequestArrivalOrderIndependent(t *testing.T) {
	fwd := obsFixture(50)
	rev := make([]alias.Observation, len(fwd))
	for i, o := range fwd {
		rev[len(fwd)-1-i] = o
	}
	dup := append(append([]alias.Observation{}, fwd...), fwd[:10]...)

	a := encodeObsRequest(append([]alias.Observation{}, fwd...))
	b := encodeObsRequest(rev)
	c := encodeObsRequest(dup)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("wire bytes depend on arrival order")
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("wire bytes depend on duplication")
	}

	m, err := decodeMessage(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.op != opObs {
		t.Fatalf("op = %d, want opObs", m.op)
	}
	if err := m.checkCount(); err != nil {
		t.Fatal(err)
	}
	want := canonObs(append([]alias.Observation{}, fwd...))
	if !reflect.DeepEqual(m.obs, want) {
		t.Fatalf("round trip decoded %d obs, want %d canonical", len(m.obs), len(want))
	}
}

// TestObsRequestChunksLargeBatches drives the encoder past frameTarget so
// the stream spans several content frames, and requires a lossless decode.
func TestObsRequestChunksLargeBatches(t *testing.T) {
	obs := obsFixture(5000)
	for i := range obs {
		// Unique digests defeat dedup so the payload really exceeds one frame.
		obs[i].ID.Digest = fmt.Sprintf("unique-digest-%05d-%s", i, obs[i].ID.Digest)
	}
	body := encodeObsRequest(append([]alias.Observation{}, obs...))
	if len(body) <= frameTarget {
		t.Fatalf("fixture too small to chunk: %d bytes", len(body))
	}
	m, err := decodeMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.checkCount(); err != nil {
		t.Fatal(err)
	}
	if len(m.obs) != len(obs) {
		t.Fatalf("decoded %d observations, want %d", len(m.obs), len(obs))
	}
}

// TestSetStreamRoundTrip round-trips an alias-set stream for every op that
// carries one.
func TestSetStreamRoundTrip(t *testing.T) {
	sets := []alias.Set{
		alias.NewSet(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")),
		alias.NewSet(netip.MustParseAddr("2001:db8::1"), netip.MustParseAddr("10.9.9.9")),
		alias.NewSet(netip.MustParseAddr("192.0.2.7")),
	}
	for _, op := range []byte{opSets, opMerge} {
		body := encodeSetStream(op, ident.SSH, sets)
		m, err := decodeMessage(body)
		if err != nil {
			t.Fatal(err)
		}
		if m.op != op || (op == opSets && m.proto != ident.SSH) {
			t.Fatalf("op/proto = %d/%v", m.op, m.proto)
		}
		if err := m.checkCount(); err != nil {
			t.Fatal(err)
		}
		if len(m.sets) != len(sets) {
			t.Fatalf("decoded %d sets, want %d", len(m.sets), len(sets))
		}
		for i := range sets {
			if !reflect.DeepEqual(m.sets[i].Addrs, sets[i].Addrs) {
				t.Fatalf("set %d: %v != %v", i, m.sets[i].Addrs, sets[i].Addrs)
			}
		}
	}
}

// TestAckRoundTrip pins the opObs acknowledgement shape: the count is the
// applied total and carries no records.
func TestAckRoundTrip(t *testing.T) {
	m, err := decodeMessage(encodeAck(12345))
	if err != nil {
		t.Fatal(err)
	}
	if m.op != opObs || m.count != 12345 || m.records != 0 {
		t.Fatalf("ack = %+v", m)
	}
}

// TestCorruptionAndTruncationRejected flips and cuts the stream every way a
// network can and requires decodeMessage (or checkCount) to refuse each one.
func TestCorruptionAndTruncationRejected(t *testing.T) {
	body := encodeSetStream(opSets, ident.BGP, []alias.Set{
		alias.NewSet(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")),
	})

	t.Run("bit flip", func(t *testing.T) {
		for _, i := range []int{5, len(body) / 2, len(body) - 3} {
			mut := append([]byte{}, body...)
			mut[i] ^= 0x40
			if m, err := decodeMessage(mut); err == nil {
				if err := m.checkCount(); err == nil {
					t.Fatalf("corrupt byte %d slipped through", i)
				}
			}
		}
	})

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 9, len(body) - 1} {
			if _, err := decodeMessage(body[:len(body)-cut]); err == nil {
				t.Fatalf("stream cut by %d bytes slipped through", cut)
			}
		}
	})

	t.Run("excised frame", func(t *testing.T) {
		// Remove the content frame cleanly: framing and CRCs stay valid, so
		// only the end-frame record accounting can catch it.
		_, hdr, ok := obslog.NextFrame(body)
		if !ok {
			t.Fatal("no header frame")
		}
		_, content, ok := obslog.NextFrame(body[hdr:])
		if !ok {
			t.Fatal("no content frame")
		}
		mut := append(append([]byte{}, body[:hdr]...), body[hdr+content:]...)
		m, err := decodeMessage(mut)
		if err != nil {
			t.Fatalf("excised frame should decode structurally: %v", err)
		}
		if err := m.checkCount(); err == nil {
			t.Fatal("excised content frame slipped through the record count")
		}
	})

	t.Run("garbage header", func(t *testing.T) {
		if _, err := decodeMessage([]byte("not a frame at all")); err == nil {
			t.Fatal("garbage accepted")
		}
	})
}
