// Package ecdf computes and renders empirical cumulative distribution
// functions — the presentation form of the paper's Figures 3–6 (addresses
// per alias set, ASes per set, sets per AS).
//
// An ECDF keeps its samples sorted, so At(x) is the exact empirical
// fraction ≤ x (no binning) and Quantile is its inverse. Render samples one
// or more Series at a shared set of x points — LogXPoints for the paper's
// log-x axes, LinearXPoints otherwise — and draws a fixed-width ASCII plot
// with deterministic ticks: same samples, same bytes, which is how the
// figures participate in the repo-wide byte-determinism contract.
// Overlaying several measurement campaigns as Series in one plot reproduces
// the paper's protocol-vs-protocol comparisons.
package ecdf

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ECDF is an empirical CDF over a sample.
type ECDF struct {
	sorted []float64
}

// New builds an ECDF from float samples.
func New(samples []float64) ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return ECDF{sorted: s}
}

// FromInts builds an ECDF from integer samples (set sizes, AS counts).
func FromInts(samples []int) ECDF {
	s := make([]float64, len(samples))
	for i, v := range samples {
		s[i] = float64(v)
	}
	return New(s)
}

// N returns the sample size.
func (e ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x), 0 for an empty sample.
func (e ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v with At(v) >= p.
func (e ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(e.sorted) {
		i = len(e.sorted) - 1
	}
	return e.sorted[i]
}

// Series is a named ECDF for multi-curve figures.
type Series struct {
	// Name is the legend label ("Active SSH", "Censys BGP", ...).
	Name string
	// E is the distribution.
	E ECDF
}

// LogXPoints returns evaluation points 10^0..10^maxExp with perDecade
// intermediate steps — the x-axis of the paper's log-scale figures.
func LogXPoints(maxExp int, perDecade int) []float64 {
	if perDecade < 1 {
		perDecade = 1
	}
	max := math.Pow(10, float64(maxExp))
	var xs []float64
	for e := 0; e <= maxExp; e++ {
		for s := 0; s < perDecade; s++ {
			x := math.Pow(10, float64(e)+float64(s)/float64(perDecade))
			if x > max {
				break
			}
			xs = append(xs, x)
		}
	}
	if len(xs) == 0 || xs[len(xs)-1] < max {
		xs = append(xs, max)
	}
	return xs
}

// LinearXPoints returns 0..max in the given step (Figure 5's linear axis).
func LinearXPoints(max, step float64) []float64 {
	var xs []float64
	for x := 0.0; x <= max+1e-9; x += step {
		xs = append(xs, x)
	}
	return xs
}

// Render prints the curves as an aligned text table: one row per x point,
// one column per series — the data behind the figure, in a form a terminal
// (or a plotting script) can consume.
func Render(title, xLabel string, xs []float64, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&sb, " %18s", fmt.Sprintf("%s (n=%d)", s.Name, s.E.N()))
	}
	sb.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&sb, "%14.6g", x)
		for _, s := range series {
			fmt.Fprintf(&sb, " %18.3f", s.E.At(x))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
