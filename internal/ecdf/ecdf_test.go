package ecdf

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAtBasics(t *testing.T) {
	e := FromInts([]int{1, 2, 2, 3, 10})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.2}, {1.5, 0.2}, {2, 0.6}, {3, 0.8}, {9.99, 0.8}, {10, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 5 {
		t.Errorf("N = %d", e.N())
	}
}

func TestEmpty(t *testing.T) {
	var e ECDF
	if e.At(5) != 0 || e.N() != 0 {
		t.Error("empty ECDF misbehaves")
	}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestMonotoneProperty(t *testing.T) {
	f := func(raw []int16, probes []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int, len(raw))
		for i, v := range raw {
			vals[i] = int(v)
		}
		e := FromInts(vals)
		ps := make([]float64, len(probes))
		for i, p := range probes {
			ps[i] = float64(p)
		}
		sort.Float64s(ps)
		prev := -1.0
		for _, x := range ps {
			y := e.At(x)
			if y < 0 || y > 1 || y < prev {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantileInverse(t *testing.T) {
	e := FromInts([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if q := e.Quantile(0.5); q != 5 {
		t.Errorf("median = %v, want 5", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := e.Quantile(1); q != 10 {
		t.Errorf("q1 = %v", q)
	}
	// At(Quantile(p)) >= p for all p.
	for p := 0.05; p < 1; p += 0.05 {
		if e.At(e.Quantile(p)) < p-1e-12 {
			t.Errorf("At(Quantile(%v)) = %v < p", p, e.At(e.Quantile(p)))
		}
	}
}

func TestLogXPoints(t *testing.T) {
	xs := LogXPoints(4, 2)
	if xs[0] != 1 {
		t.Errorf("first point = %v", xs[0])
	}
	last := xs[len(xs)-1]
	if math.Abs(last-10000) > 1e-6 {
		t.Errorf("last point = %v, want 1e4", last)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("points not increasing at %d", i)
		}
	}
}

func TestLinearXPoints(t *testing.T) {
	xs := LinearXPoints(20, 2.5)
	if len(xs) != 9 || xs[0] != 0 || xs[len(xs)-1] != 20 {
		t.Errorf("points = %v", xs)
	}
}

func TestRenderContainsSeries(t *testing.T) {
	out := Render("Figure X", "size", []float64{1, 2},
		[]Series{{Name: "Active SSH", E: FromInts([]int{1, 2})}})
	for _, want := range []string{"Figure X", "Active SSH (n=2)", "size"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("render lines = %d, want 4", len(lines))
	}
}
