// Package evaluate scores an inferred alias partition against ground truth —
// something the paper could not do (the real Internet has no ground truth;
// §2.6 resorts to cross-technique agreement) but a simulated world can. The
// standard clustering metrics over address pairs apply:
//
//	precision = true-alias pairs among inferred pairs
//	recall    = inferred pairs among all true pairs (restricted to the
//	            addresses the inference observed)
//
// A pair of addresses is "true" when both sit on one device.
package evaluate

import (
	"fmt"
	"net/netip"

	"aliaslimit/internal/alias"
)

// Metrics holds pairwise clustering scores.
type Metrics struct {
	// TruePairs counts correctly inferred same-device pairs.
	TruePairs int
	// FalsePairs counts inferred pairs whose addresses sit on different
	// devices (false merges: shared keys, churn artefacts).
	FalsePairs int
	// MissedPairs counts same-device pairs the inference separated or
	// never grouped, over the observed addresses only.
	MissedPairs int
}

// Precision returns TruePairs / inferred pairs (1.0 when nothing inferred).
func (m Metrics) Precision() float64 {
	den := m.TruePairs + m.FalsePairs
	if den == 0 {
		return 1
	}
	return float64(m.TruePairs) / float64(den)
}

// Recall returns TruePairs / true pairs over observed addresses (1.0 when
// there is nothing to find).
func (m Metrics) Recall() float64 {
	den := m.TruePairs + m.MissedPairs
	if den == 0 {
		return 1
	}
	return float64(m.TruePairs) / float64(den)
}

// F1 is the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the metrics for logs.
func (m Metrics) String() string {
	return fmt.Sprintf("precision=%.4f recall=%.4f f1=%.4f (tp=%d fp=%d fn=%d)",
		m.Precision(), m.Recall(), m.F1(), m.TruePairs, m.FalsePairs, m.MissedPairs)
}

// Pairwise scores inferred sets against the true owner of every address.
// truthOwner maps address → device identity; addresses missing from the map
// are treated as unknown and skipped (they cannot be scored). Recall is
// computed over the addresses that appear in the inferred sets, mirroring
// how a measurement can only be judged on what it observed.
func Pairwise(inferred []alias.Set, truthOwner map[netip.Addr]string) Metrics {
	var m Metrics

	// Inferred pairs: same set ⇒ inferred alias.
	for _, s := range inferred {
		for i := 0; i < len(s.Addrs); i++ {
			oi, ok := truthOwner[s.Addrs[i]]
			if !ok {
				continue
			}
			for j := i + 1; j < len(s.Addrs); j++ {
				oj, ok := truthOwner[s.Addrs[j]]
				if !ok {
					continue
				}
				if oi == oj {
					m.TruePairs++
				} else {
					m.FalsePairs++
				}
			}
		}
	}

	// Missed pairs: same true device, observed, but in different (or no
	// common) inferred sets. Group observed addresses by owner, count true
	// pairs, subtract the found ones.
	setOf := make(map[netip.Addr]int)
	for i, s := range inferred {
		for _, a := range s.Addrs {
			setOf[a] = i + 1
		}
	}
	byOwner := make(map[string][]netip.Addr)
	for a := range setOf {
		if owner, ok := truthOwner[a]; ok {
			byOwner[owner] = append(byOwner[owner], a)
		}
	}
	for _, addrs := range byOwner {
		truePairs := len(addrs) * (len(addrs) - 1) / 2
		found := 0
		for i := 0; i < len(addrs); i++ {
			for j := i + 1; j < len(addrs); j++ {
				if setOf[addrs[i]] == setOf[addrs[j]] {
					found++
				}
			}
		}
		m.MissedPairs += truePairs - found
	}
	return m
}

// OwnerMap flattens a device→addresses ground truth (as topo's Truth stores
// it) into the address→device form Pairwise consumes.
func OwnerMap(truth map[string][]netip.Addr) map[netip.Addr]string {
	out := make(map[netip.Addr]string)
	for dev, addrs := range truth {
		for _, a := range addrs {
			out[a] = dev
		}
	}
	return out
}
