package evaluate

import (
	"math"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"aliaslimit/internal/alias"
)

func owner(pairs ...string) map[netip.Addr]string {
	m := make(map[netip.Addr]string)
	for i := 0; i+1 < len(pairs); i += 2 {
		m[netip.MustParseAddr(pairs[i])] = pairs[i+1]
	}
	return m
}

func set(ss ...string) alias.Set {
	var a []netip.Addr
	for _, s := range ss {
		a = append(a, netip.MustParseAddr(s))
	}
	return alias.NewSet(a...)
}

func TestPerfectInference(t *testing.T) {
	truth := owner(
		"10.0.0.1", "d1", "10.0.0.2", "d1", "10.0.0.3", "d1",
		"10.0.1.1", "d2", "10.0.1.2", "d2",
	)
	inferred := []alias.Set{
		set("10.0.0.1", "10.0.0.2", "10.0.0.3"),
		set("10.0.1.1", "10.0.1.2"),
	}
	m := Pairwise(inferred, truth)
	if m.TruePairs != 4 || m.FalsePairs != 0 || m.MissedPairs != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Precision() != 1 || m.Recall() != 1 || m.F1() != 1 {
		t.Errorf("scores = %s", m)
	}
}

func TestFalseMerge(t *testing.T) {
	truth := owner("10.0.0.1", "d1", "10.0.0.2", "d1", "10.0.0.3", "d2")
	inferred := []alias.Set{set("10.0.0.1", "10.0.0.2", "10.0.0.3")}
	m := Pairwise(inferred, truth)
	if m.TruePairs != 1 || m.FalsePairs != 2 {
		t.Errorf("metrics = %+v", m)
	}
	if p := m.Precision(); math.Abs(p-1.0/3) > 1e-12 {
		t.Errorf("precision = %v", p)
	}
	if m.Recall() != 1 {
		t.Errorf("recall = %v", m.Recall())
	}
}

func TestSplitDevice(t *testing.T) {
	truth := owner("10.0.0.1", "d1", "10.0.0.2", "d1", "10.0.0.3", "d1", "10.0.0.4", "d1")
	inferred := []alias.Set{
		set("10.0.0.1", "10.0.0.2"),
		set("10.0.0.3", "10.0.0.4"),
	}
	m := Pairwise(inferred, truth)
	// 6 true pairs over the 4 observed addrs; 2 found, 4 missed.
	if m.TruePairs != 2 || m.MissedPairs != 4 || m.FalsePairs != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if r := m.Recall(); math.Abs(r-1.0/3) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	if m.Precision() != 1 {
		t.Errorf("precision = %v", m.Precision())
	}
}

func TestUnknownAddressesSkipped(t *testing.T) {
	truth := owner("10.0.0.1", "d1", "10.0.0.2", "d1")
	inferred := []alias.Set{set("10.0.0.1", "10.0.0.2", "10.9.9.9")}
	m := Pairwise(inferred, truth)
	if m.TruePairs != 1 || m.FalsePairs != 0 {
		t.Errorf("metrics = %+v (unknown address should not count)", m)
	}
}

func TestEmpty(t *testing.T) {
	m := Pairwise(nil, nil)
	if m.Precision() != 1 || m.Recall() != 1 || m.F1() != 1 {
		t.Errorf("empty metrics = %s", m)
	}
	if !strings.Contains(m.String(), "precision=1.0000") {
		t.Errorf("string = %q", m.String())
	}
}

func TestOwnerMap(t *testing.T) {
	truth := map[string][]netip.Addr{
		"d1": {netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")},
		"d2": {netip.MustParseAddr("10.0.1.1")},
	}
	om := OwnerMap(truth)
	if len(om) != 3 || om[netip.MustParseAddr("10.0.0.2")] != "d1" {
		t.Errorf("OwnerMap = %v", om)
	}
}

func TestMetricsBoundsProperty(t *testing.T) {
	f := func(assign []uint8, split []bool) bool {
		// Random truth over 24 addresses, random inferred partition built
		// by cutting the truth sets: precision and recall must stay in
		// [0,1] and F1 <= min-ish consistency.
		truth := make(map[netip.Addr]string)
		byOwner := map[string][]netip.Addr{}
		for i, o := range assign {
			if i >= 24 {
				break
			}
			a := netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
			dev := string(rune('a' + o%5))
			truth[a] = dev
			byOwner[dev] = append(byOwner[dev], a)
		}
		var inferred []alias.Set
		k := 0
		for _, addrs := range byOwner {
			if len(split) > 0 && split[k%len(split)] && len(addrs) > 1 {
				inferred = append(inferred, alias.NewSet(addrs[:1]...), alias.NewSet(addrs[1:]...))
			} else {
				inferred = append(inferred, alias.NewSet(addrs...))
			}
			k++
		}
		m := Pairwise(inferred, truth)
		p, r, f1 := m.Precision(), m.Recall(), m.F1()
		return p >= 0 && p <= 1 && r >= 0 && r <= 1 && f1 >= 0 && f1 <= 1 &&
			m.FalsePairs == 0 && p == 1 // cutting truth sets never merges wrongly
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
