package experiments

import (
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/topo"
)

// backendEnv builds a small measured environment on the named resolver
// backend.
func backendEnv(t *testing.T, name string) *Env {
	t.Helper()
	cfg := topo.Default()
	cfg.Scale = 0.05
	cfg.Seed = 11
	b, err := resolver.New(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	env, err := BuildEnv(Options{Topo: cfg, Scan: ScanOptions{Workers: 64}, Backend: b})
	if err != nil {
		t.Fatalf("BuildEnv(%s): %v", name, err)
	}
	return env
}

// viewKeys flattens a partition into its canonical key sequence.
func viewKeys(sets []alias.Set) []string {
	out := make([]string, len(sets))
	for i, s := range sets {
		out[i] = string(s.Key())
	}
	return out
}

// requireSameView fails unless two partitions are byte-identical.
func requireSameView(t *testing.T, label string, want, got []alias.Set) {
	t.Helper()
	wk, gk := viewKeys(want), viewKeys(got)
	if len(wk) != len(gk) {
		t.Fatalf("%s: %d sets, want %d", label, len(gk), len(wk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("%s: set %d differs: want %q, got %q",
				label, i, want[i].Signature(), got[i].Signature())
		}
	}
}

// TestBackendViewsIdentical rebuilds the same world on every resolver
// backend and requires byte-identical analysis views — the core contract
// the backend subsystem must keep.
func TestBackendViewsIdentical(t *testing.T) {
	ref := backendEnv(t, "batch")
	for _, name := range resolver.Names()[1:] {
		env := backendEnv(t, name)
		if got := env.Resolver().Name(); got != name {
			t.Fatalf("env resolves through %q, want %q", got, name)
		}
		for _, p := range ident.Protocols {
			requireSameView(t, name+" Both.Sets "+p.String(),
				ref.Both.Sets(p), env.Both.Sets(p))
			requireSameView(t, name+" Active.NonSingletonSets "+p.String(),
				ref.Active.NonSingletonSets(p), env.Active.NonSingletonSets(p))
		}
		for _, v4 := range []bool{true, false} {
			requireSameView(t, name+" UnionFamilyNonSingleton",
				ref.UnionFamilyNonSingleton(v4), env.UnionFamilyNonSingleton(v4))
			requireSameView(t, name+" Both.MergedFamily",
				ref.Both.MergedFamily(v4), env.Both.MergedFamily(v4))
		}
		requireSameView(t, name+" DualStackSets", ref.DualStackSets(), env.DualStackSets())
	}
}

// TestStreamingSinkFedLive asserts the streaming backend's architectural
// payoff: every dataset's identifier groups — Active, Censys, and the union
// — were resolved online by the collection-time sessions, not re-fed after
// sealing, and still match a batch regroup of the sealed observations.
func TestStreamingSinkFedLive(t *testing.T) {
	env := backendEnv(t, "streaming")
	for _, ds := range []*Dataset{env.Both, env.Active, env.Censys} {
		if !ds.views.live {
			t.Fatalf("%s: dataset sealed without a live-fed session", ds.Name)
		}
		for _, p := range ident.Protocols {
			// A live view serves the session's online grouping state; the
			// sealed observations are never replayed into it (Sets would
			// double-feed them otherwise), so equality with a batch regroup
			// proves the collection-time feed saw every observation.
			requireSameView(t, ds.Name+" live vs batch "+p.String(),
				alias.Group(ds.Obs[p]), ds.Sets(p))
		}
	}
}
