package experiments

import (
	"fmt"
	"net/netip"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/bgp"
	"aliaslimit/internal/hitlist"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/netsim"
	"aliaslimit/internal/snmpv3"
	"aliaslimit/internal/sshwire"
	"aliaslimit/internal/topo"
	"aliaslimit/internal/zgrab"
	"aliaslimit/internal/zmaplite"
)

// ScanOptions tune the collection phase.
type ScanOptions struct {
	// Workers bounds service-scan concurrency; 0 picks 256.
	Workers int
	// Seed drives scan-order permutations.
	Seed uint64
}

// withDefaults fills unset fields.
func (o ScanOptions) withDefaults() ScanOptions {
	if o.Workers <= 0 {
		o.Workers = 256
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// CollectActive runs the paper's active measurement from the single research
// vantage point: ZMap-style SYN sweeps on 22 and 179 over the IPv4 universe
// and the IPv6 hitlist, ZGrab-style service scans of the responsive
// addresses, and an SNMPv3 engine-discovery sweep.
func CollectActive(w *topo.World, opts ScanOptions) (*Dataset, error) {
	opts = opts.withDefaults()
	v := w.Fabric.Vantage(topo.VantageActive)
	ds := NewDataset("Active")

	v6targets := hitlist.Sample(w.V6Bound(), w.Cfg.HitlistCoverage, w.Cfg.Seed)
	targets := append(append([]netip.Addr(nil), w.V4Universe()...), v6targets...)

	if err := scanSSH(v, targets, opts, ds); err != nil {
		return nil, err
	}
	if err := scanBGP(v, targets, opts, ds); err != nil {
		return nil, err
	}
	scanSNMP(v, targets, opts, ds)
	return ds, nil
}

// CollectCensys models the Censys snapshot: a distributed (unfiltered-label)
// IPv4-only scan. Censys's IPv6 coverage at the paper's snapshot date was
// negligible and is excluded, exactly as §2.5 does. Censys additionally
// reports SSH on tens of thousands of non-standard ports; the paper filters
// those out, which is modelled here as a synthetic excluded count.
func CollectCensys(w *topo.World, opts ScanOptions) (*Dataset, error) {
	opts = opts.withDefaults()
	v := w.Fabric.Vantage(topo.VantageCensys)
	ds := NewDataset("Censys")
	if err := scanSSH(v, w.V4Universe(), opts, ds); err != nil {
		return nil, err
	}
	if err := scanBGP(v, w.V4Universe(), opts, ds); err != nil {
		return nil, err
	}
	// The paper: Censys finds an additional 5.6M SSH IPs on 60,806
	// non-standard ports (~23% of its port-22 population) — found, counted,
	// and excluded.
	ds.NonStandardPortSSH = len(ds.Obs[ident.SSH]) * 23 / 100
	return ds, nil
}

// scanSSH runs the two-phase SSH scan and extracts identifiers.
func scanSSH(v *netsim.Vantage, targets []netip.Addr, opts ScanOptions, ds *Dataset) error {
	sweep, err := zmaplite.Scan(v, zmaplite.Config{
		Targets: targets, Port: 22, Seed: opts.Seed, Workers: opts.Workers,
	})
	if err != nil {
		return fmt.Errorf("experiments: ssh sweep: %w", err)
	}
	grabs := zgrab.Run(v, sweep.Open, &zgrab.SSHModule{}, zgrab.Options{Workers: opts.Workers})
	for _, g := range zgrab.Successes(grabs) {
		res := g.Data.(*sshwire.ScanResult)
		if id, ok := ident.FromSSH(res); ok {
			ds.Add(ident.SSH, alias.Observation{Addr: g.Target, ID: id})
		}
	}
	return nil
}

// scanBGP runs the two-phase passive BGP scan and extracts identifiers.
func scanBGP(v *netsim.Vantage, targets []netip.Addr, opts ScanOptions, ds *Dataset) error {
	sweep, err := zmaplite.Scan(v, zmaplite.Config{
		Targets: targets, Port: 179, Seed: opts.Seed + 1, Workers: opts.Workers,
	})
	if err != nil {
		return fmt.Errorf("experiments: bgp sweep: %w", err)
	}
	grabs := zgrab.Run(v, sweep.Open, &zgrab.BGPModule{}, zgrab.Options{Workers: opts.Workers})
	for _, g := range zgrab.Successes(grabs) {
		res := g.Data.(*bgp.ScanResult)
		if id, ok := ident.FromBGP(res); ok {
			ds.Add(ident.BGP, alias.Observation{Addr: g.Target, ID: id})
		}
	}
	return nil
}

// scanSNMP sweeps targets with engine-discovery probes (UDP; no SYN phase).
func scanSNMP(v *netsim.Vantage, targets []netip.Addr, opts ScanOptions, ds *Dataset) {
	type hit struct {
		addr netip.Addr
		id   ident.Identifier
	}
	hits := make(chan hit, opts.Workers)
	var wg sync.WaitGroup
	idx := make(chan int, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				addr := targets[i]
				res, ok, err := snmpv3.Discover(v, addr, int64(i), int64(i)+1)
				if !ok || err != nil {
					continue
				}
				if id, idOK := ident.FromSNMPEngineID(res.EngineID); idOK {
					hits <- hit{addr: addr, id: id}
				}
			}
		}()
	}
	go func() {
		for i := range targets {
			idx <- i
		}
		close(idx)
		wg.Wait()
		close(hits)
	}()
	for h := range hits {
		ds.Add(ident.SNMP, alias.Observation{Addr: h.addr, ID: h.id})
	}
}
