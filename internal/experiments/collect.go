package experiments

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/bgp"
	"aliaslimit/internal/hitlist"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/netsim"
	"aliaslimit/internal/snmpv3"
	"aliaslimit/internal/sshwire"
	"aliaslimit/internal/topo"
	"aliaslimit/internal/zgrab"
	"aliaslimit/internal/zmaplite"
)

// ObservationSink receives identifier observations the moment the scan
// pipeline extracts them — while the SYN sweep and later grabs are still in
// flight — so a streaming resolver backend can maintain alias sets online.
// Worker pools call Observe concurrently with no ordering guarantee, so
// implementations must be concurrency-safe and order-insensitive.
type ObservationSink interface {
	Observe(p ident.Protocol, o alias.Observation)
}

// TeeSink fans one observation stream out to several sinks — how a campaign
// feeds both its own per-dataset sink and the shared union sink. Nil members
// are skipped.
func TeeSink(sinks ...ObservationSink) ObservationSink {
	return teeSink(sinks)
}

// teeSink is TeeSink's implementation.
type teeSink []ObservationSink

// Observe forwards to every member sink.
func (t teeSink) Observe(p ident.Protocol, o alias.Observation) {
	for _, s := range t {
		if s != nil {
			s.Observe(p, o)
		}
	}
}

// ScanOptions tune the collection phase.
type ScanOptions struct {
	// Workers bounds service-scan concurrency; 0 picks 256.
	Workers int
	// Seed drives scan-order permutations.
	Seed uint64
	// Parallelism bounds how many per-protocol sweeps (SSH, BGP, SNMPv3) run
	// concurrently within one collection. 0 runs all protocols at once; 1
	// recovers the sequential baseline. Datasets are byte-identical at any
	// setting: every sweep collects into its own shard and the shards merge
	// in fixed protocol order.
	Parallelism int
	// Sink, when non-nil, is fed every extracted observation live from the
	// scan worker goroutines. The Dataset contents are unaffected: the sink
	// is a tap, not a detour. EnvSeries installs the streaming backend's
	// sink here.
	Sink ObservationSink
	// DiscardObs turns the tap into the only output: scan workers deliver
	// every observation to Sink and accumulate nothing, so the returned
	// Dataset carries empty Obs slices and collection memory stays
	// O(workers) instead of O(observations). This is the scan front of the
	// out-of-core path — the sink writes to the durable log and sealing
	// later replays it. Requires a non-nil Sink.
	DiscardObs bool
}

// simGrabTimeout bounds one service grab against the simulated fabric. The
// paper's real-Internet methodology uses short waits (2 s for the passive BGP
// collection), but in the simulation no peer ever legitimately makes the
// scanner wait: every handler either writes or closes. The timeout is purely
// an anti-hang backstop, so it sits far above any plausible goroutine
// starvation — with three protocol sweeps and hundreds of workers sharing few
// cores (worse under -race), a short wall-clock deadline can drop a
// legitimately answered grab and silently break Dataset determinism.
const simGrabTimeout = 2 * time.Minute

// withDefaults fills unset fields.
func (o ScanOptions) withDefaults() ScanOptions {
	if o.Workers <= 0 {
		o.Workers = 256
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	// Parallelism 0 stays 0 (unbounded): every protocol sweep overlaps.
	return o
}

// CollectActive runs the paper's active measurement from the single research
// vantage point: ZMap-style SYN sweeps on 22 and 179 over the IPv4 universe
// and the IPv6 hitlist, ZGrab-style service scans of the responsive
// addresses, and an SNMPv3 engine-discovery sweep.
//
// The three protocol sweeps run concurrently (bounded by opts.Parallelism),
// and within the SSH and BGP sweeps the SYN phase streams responsive
// addresses straight into the service-scan worker pools — banner grabs start
// while the sweep is still in flight. The world is only read: see the
// concurrency contract on topo.World.
func CollectActive(w *topo.World, opts ScanOptions) (*Dataset, error) {
	opts = opts.withDefaults()
	v := w.Fabric.Vantage(topo.VantageActive)

	v6targets := hitlist.Sample(w.V6Bound(), w.Cfg.HitlistCoverage, w.Cfg.Seed)
	targets := append(append([]netip.Addr(nil), w.V4Universe()...), v6targets...)

	var sshObs, bgpObs, snmpObs []alias.Observation
	g := newGroup(opts.Parallelism)
	g.Go(func() (err error) {
		sshObs, err = scanSSH(v, targets, opts)
		return err
	})
	g.Go(func() (err error) {
		bgpObs, err = scanBGP(v, targets, opts)
		return err
	})
	g.Go(func() error {
		snmpObs = scanSNMP(v, targets, opts)
		return nil
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}

	// Deterministic merge order: fixed protocol sequence, each shard already
	// in sorted target order.
	ds := NewDataset("Active")
	ds.AddAll(ident.SSH, sshObs)
	ds.AddAll(ident.BGP, bgpObs)
	ds.AddAll(ident.SNMP, snmpObs)
	return ds, nil
}

// CollectCensys models the Censys snapshot: a distributed (unfiltered-label)
// IPv4-only scan. Censys's IPv6 coverage at the paper's snapshot date was
// negligible and is excluded, exactly as §2.5 does. Censys additionally
// reports SSH on tens of thousands of non-standard ports; the paper filters
// those out, which is modelled here as a synthetic excluded count.
func CollectCensys(w *topo.World, opts ScanOptions) (*Dataset, error) {
	opts = opts.withDefaults()
	v := w.Fabric.Vantage(topo.VantageCensys)

	var sshObs, bgpObs []alias.Observation
	g := newGroup(opts.Parallelism)
	g.Go(func() (err error) {
		sshObs, err = scanSSH(v, w.V4Universe(), opts)
		return err
	})
	g.Go(func() (err error) {
		bgpObs, err = scanBGP(v, w.V4Universe(), opts)
		return err
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}

	ds := NewDataset("Censys")
	ds.AddAll(ident.SSH, sshObs)
	ds.AddAll(ident.BGP, bgpObs)
	// The paper: Censys finds an additional 5.6M SSH IPs on 60,806
	// non-standard ports (~23% of its port-22 population) — found, counted,
	// and excluded.
	ds.NonStandardPortSSH = len(ds.Obs[ident.SSH]) * 23 / 100
	return ds, nil
}

// scanSSH runs the two-phase SSH scan and extracts identifiers. The SYN sweep
// streams into the banner grabs; the returned observations are in sorted
// target order.
func scanSSH(v *netsim.Vantage, targets []netip.Addr, opts ScanOptions) ([]alias.Observation, error) {
	open, done, err := zmaplite.ScanStream(v, zmaplite.Config{
		Targets: targets, Port: 22, Seed: opts.Seed, Workers: opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: ssh sweep: %w", err)
	}
	mod := &zgrab.SSHModule{Timeout: simGrabTimeout}
	zopts := zgrab.Options{Workers: opts.Workers, DialTimeout: simGrabTimeout}
	emit := emitIdent(opts.Sink, ident.SSH, func(data any) (ident.Identifier, bool) {
		return ident.FromSSH(data.(*sshwire.ScanResult))
	})
	if opts.DiscardObs {
		zgrab.RunStreamDiscard(v, open, mod, zopts, emit)
		<-done
		return nil, nil
	}
	grabs := zgrab.RunStreamEmit(v, open, mod, zopts, emit)
	<-done
	var obs []alias.Observation
	for _, g := range zgrab.Successes(grabs) {
		res := g.Data.(*sshwire.ScanResult)
		if id, ok := ident.FromSSH(res); ok {
			obs = append(obs, alias.Observation{Addr: g.Target, ID: id})
		}
	}
	return obs, nil
}

// emitIdent adapts an ObservationSink into a zgrab completion tap: each
// successful grab has its identifier extracted and streamed to the sink as
// it completes. A nil sink disables the tap entirely.
func emitIdent(sink ObservationSink, p ident.Protocol, extract func(any) (ident.Identifier, bool)) func(zgrab.Grab) {
	if sink == nil {
		return nil
	}
	return func(g zgrab.Grab) {
		if !g.OK() {
			return
		}
		if id, ok := extract(g.Data); ok {
			sink.Observe(p, alias.Observation{Addr: g.Target, ID: id})
		}
	}
}

// scanBGP runs the two-phase passive BGP scan and extracts identifiers,
// streaming the sweep into the OPEN collection like scanSSH.
func scanBGP(v *netsim.Vantage, targets []netip.Addr, opts ScanOptions) ([]alias.Observation, error) {
	open, done, err := zmaplite.ScanStream(v, zmaplite.Config{
		Targets: targets, Port: 179, Seed: opts.Seed + 1, Workers: opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: bgp sweep: %w", err)
	}
	mod := &zgrab.BGPModule{Timeout: simGrabTimeout}
	zopts := zgrab.Options{Workers: opts.Workers, DialTimeout: simGrabTimeout}
	emit := emitIdent(opts.Sink, ident.BGP, func(data any) (ident.Identifier, bool) {
		return ident.FromBGP(data.(*bgp.ScanResult))
	})
	if opts.DiscardObs {
		zgrab.RunStreamDiscard(v, open, mod, zopts, emit)
		<-done
		return nil, nil
	}
	grabs := zgrab.RunStreamEmit(v, open, mod, zopts, emit)
	<-done
	var obs []alias.Observation
	for _, g := range zgrab.Successes(grabs) {
		res := g.Data.(*bgp.ScanResult)
		if id, ok := ident.FromBGP(res); ok {
			obs = append(obs, alias.Observation{Addr: g.Target, ID: id})
		}
	}
	return obs, nil
}

// scanSNMP sweeps targets with engine-discovery probes (UDP; no SYN phase).
// Workers fill a per-target result table indexed by target position, so the
// returned observations are in target order no matter how the probes
// interleave — the arrival-order nondeterminism of the previous
// channel-funnel implementation is gone.
func scanSNMP(v *netsim.Vantage, targets []netip.Addr, opts ScanOptions) []alias.Observation {
	type slot struct {
		id ident.Identifier
		ok bool
	}
	// In discard mode the sink is the only output, so the O(targets) result
	// table is never allocated.
	var slots []slot
	if !opts.DiscardObs {
		slots = make([]slot, len(targets))
	}
	idx := make(chan int, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, ok, err := snmpv3.Discover(v, targets[i], int64(i), int64(i)+1)
				if !ok || err != nil {
					continue
				}
				if id, idOK := ident.FromSNMPEngineID(res.EngineID); idOK {
					if slots != nil {
						slots[i] = slot{id: id, ok: true}
					}
					if opts.Sink != nil {
						opts.Sink.Observe(ident.SNMP,
							alias.Observation{Addr: targets[i], ID: id})
					}
				}
			}
		}()
	}
	for i := range targets {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var obs []alias.Observation
	for i, s := range slots {
		if s.ok {
			obs = append(obs, alias.Observation{Addr: targets[i], ID: s.id})
		}
	}
	return obs
}
