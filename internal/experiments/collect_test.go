package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"aliaslimit/internal/topo"
)

// buildTestWorld builds a small world for pipeline tests.
func buildTestWorld(t *testing.T, seed uint64) *topo.World {
	t.Helper()
	cfg := topo.Default()
	cfg.Scale = 0.08
	cfg.Seed = seed
	w, err := topo.Build(cfg)
	if err != nil {
		t.Fatalf("building world: %v", err)
	}
	return w
}

// requireSameDataset fails unless the two datasets are byte-identical:
// same name aside, every protocol's observation slice must match element for
// element, in order.
func requireSameDataset(t *testing.T, label string, want, got *Dataset) {
	t.Helper()
	if len(want.Obs) != len(got.Obs) {
		t.Fatalf("%s: protocol count differs: want %d, got %d", label, len(want.Obs), len(got.Obs))
	}
	for p, wantObs := range want.Obs {
		gotObs := got.Obs[p]
		if len(wantObs) != len(gotObs) {
			t.Fatalf("%s: %v observation count differs: want %d, got %d",
				label, p, len(wantObs), len(gotObs))
		}
		if !reflect.DeepEqual(wantObs, gotObs) {
			for i := range wantObs {
				if !reflect.DeepEqual(wantObs[i], gotObs[i]) {
					t.Fatalf("%s: %v observation %d differs: want %+v, got %+v",
						label, p, i, wantObs[i], gotObs[i])
				}
			}
			t.Fatalf("%s: %v observations differ", label, p)
		}
	}
	if want.NonStandardPortSSH != got.NonStandardPortSSH {
		t.Fatalf("%s: NonStandardPortSSH differs: want %d, got %d",
			label, want.NonStandardPortSSH, got.NonStandardPortSSH)
	}
}

// TestCollectActiveDeterministic is the race-focused pipeline test: for two
// world seeds, the concurrent streaming pipeline must produce Datasets
// byte-identical to the sequential baseline (Parallelism=1) and to itself on
// a re-run, across different worker counts. Run under -race this also
// exercises the netsim/topo concurrency contract with all three protocol
// sweeps in flight at once.
func TestCollectActiveDeterministic(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := buildTestWorld(t, seed)
			baseline, err := CollectActive(w, ScanOptions{Workers: 8, Parallelism: 1})
			if err != nil {
				t.Fatalf("sequential CollectActive: %v", err)
			}
			if len(baseline.Obs) == 0 {
				t.Fatal("sequential CollectActive yielded no observations")
			}
			for _, opts := range []ScanOptions{
				{Workers: 8},                  // full protocol overlap
				{Workers: 64},                 // same, different worker count
				{Workers: 32, Parallelism: 2}, // bounded overlap
			} {
				opts := opts
				label := fmt.Sprintf("workers=%d,parallelism=%d", opts.Workers, opts.Parallelism)
				got, err := CollectActive(w, opts)
				if err != nil {
					t.Fatalf("%s: CollectActive: %v", label, err)
				}
				requireSameDataset(t, label, baseline, got)
			}
			// Re-run the fully concurrent configuration to catch
			// scheduling-order flakiness, not just worker-count effects.
			again, err := CollectActive(w, ScanOptions{Workers: 8})
			if err != nil {
				t.Fatalf("re-run CollectActive: %v", err)
			}
			requireSameDataset(t, "re-run", baseline, again)
		})
	}
}

// TestCollectCensysDeterministic covers the snapshot-vantage collector the
// same way: concurrent SSH+BGP sweeps must match the sequential run.
func TestCollectCensysDeterministic(t *testing.T) {
	w := buildTestWorld(t, 5)
	baseline, err := CollectCensys(w, ScanOptions{Workers: 8, Parallelism: 1})
	if err != nil {
		t.Fatalf("sequential CollectCensys: %v", err)
	}
	got, err := CollectCensys(w, ScanOptions{Workers: 32})
	if err != nil {
		t.Fatalf("concurrent CollectCensys: %v", err)
	}
	requireSameDataset(t, "censys", baseline, got)
}
