// Package experiments implements one harness per table and figure of the
// paper's evaluation: it scans a synthetic world from the two vantage
// points (active, Censys), extracts identifiers, runs the alias/dual-stack
// inference, and renders the same rows and curves the paper reports.
package experiments

import (
	"net/netip"
	"sort"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// Dataset is one source's scan yield: identifier observations per protocol,
// IPv4 and IPv6 mixed (family splits happen at analysis time, as in the
// paper's tables).
type Dataset struct {
	// Name is the source label ("Active", "Censys", "Union").
	Name string
	// Obs maps protocol to its identifier observations.
	Obs map[ident.Protocol][]alias.Observation
	// NonStandardPortSSH counts SSH services found on non-default ports
	// and excluded from analysis (the paper drops Censys's 5.6M of them).
	NonStandardPortSSH int
}

// NewDataset returns an empty dataset.
func NewDataset(name string) *Dataset {
	return &Dataset{Name: name, Obs: make(map[ident.Protocol][]alias.Observation)}
}

// Add appends one observation.
func (d *Dataset) Add(p ident.Protocol, o alias.Observation) {
	d.Obs[p] = append(d.Obs[p], o)
}

// AddAll appends a batch of observations, preserving order. Collection
// shards built concurrently merge through AddAll in a fixed protocol
// sequence, which is what keeps Datasets byte-identical across Parallelism
// and Workers settings.
func (d *Dataset) AddAll(p ident.Protocol, obs []alias.Observation) {
	if len(obs) == 0 {
		return
	}
	d.Obs[p] = append(d.Obs[p], obs...)
}

// Addrs returns the distinct responsive addresses for a protocol, optionally
// filtered to one family (v4=true/false; pass nil for both), sorted.
func (d *Dataset) Addrs(p ident.Protocol, v4 *bool) []netip.Addr {
	seen := make(map[netip.Addr]bool)
	for _, o := range d.Obs[p] {
		if v4 != nil && o.Addr.Is4() != *v4 {
			continue
		}
		seen[o.Addr] = true
	}
	out := make([]netip.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// AllAddrs returns the distinct addresses across every protocol (Table 1's
// union row), optionally family-filtered.
func (d *Dataset) AllAddrs(v4 *bool) []netip.Addr {
	seen := make(map[netip.Addr]bool)
	for _, obs := range d.Obs {
		for _, o := range obs {
			if v4 != nil && o.Addr.Is4() != *v4 {
				continue
			}
			seen[o.Addr] = true
		}
	}
	out := make([]netip.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Sets groups a protocol's observations into alias sets (all sizes).
func (d *Dataset) Sets(p ident.Protocol) []alias.Set {
	return alias.Group(d.Obs[p])
}

// Union merges several datasets into one named dataset; duplicate
// observations collapse during grouping.
func Union(name string, parts ...*Dataset) *Dataset {
	out := NewDataset(name)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for proto, obs := range p.Obs {
			out.Obs[proto] = append(out.Obs[proto], obs...)
		}
		out.NonStandardPortSSH += p.NonStandardPortSSH
	}
	return out
}

// v4ptr and v6ptr are family selectors for Addrs/AllAddrs.
var (
	v4true  = true
	v4false = false
	// V4 selects IPv4 observations.
	V4 = &v4true
	// V6 selects IPv6 observations.
	V6 = &v4false
)
