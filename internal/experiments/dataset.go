// Package experiments implements one harness per table and figure of the
// paper's evaluation: it scans a synthetic world from the two vantage
// points (active, Censys), extracts identifiers, runs the alias/dual-stack
// inference, and renders the same rows and curves the paper reports.
//
// # The sealed-Dataset invariant
//
// Collection and analysis are strictly phased. While a Dataset is being
// collected it is mutable and uncached. BuildEnv seals every dataset before
// returning its Env; from that point the observations are immutable, the
// mutating methods panic, and all derived views — identifier groups, family
// and non-singleton filters, address universes, merged partitions, the
// MIDAR verification run — are memoized under sync.Once and shared by every
// table, figure, and facade accessor (see views.go). Cached views are
// shared slices and must be treated as read-only. Because the views are
// concurrency-safe and the one clock-mutating computation (the MIDAR run)
// is keyed and executed once, Env.RenderAll can generate every artifact in
// parallel with output byte-identical to a sequential render.
package experiments

import (
	"net/netip"
	"sort"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// Dataset is one source's scan yield: identifier observations per protocol,
// IPv4 and IPv6 mixed (family splits happen at analysis time, as in the
// paper's tables).
//
// A Dataset has two phases. During collection it is mutable: Add/AddAll
// append observations. Seal flips it into the immutable analysis phase:
// mutation panics, and every derived view (identifier groups, family
// filters, address universes, merged partitions) is computed once and
// cached — see views.go. BuildEnv seals all three datasets before returning.
type Dataset struct {
	// Name is the source label ("Active", "Censys", "Union").
	Name string
	// Obs maps protocol to its identifier observations. Read-only after
	// Seal.
	Obs map[ident.Protocol][]alias.Observation
	// NonStandardPortSSH counts SSH services found on non-default ports
	// and excluded from analysis (the paper drops Censys's 5.6M of them).
	NonStandardPortSSH int

	views *datasetViews
	// stream, when set, marks an out-of-core dataset: Obs is empty and the
	// observations live in one folded epoch of the observation log. The
	// address universes and EachObs route through it; see stream.go.
	stream *streamSource
}

// NewDataset returns an empty dataset.
func NewDataset(name string) *Dataset {
	return &Dataset{Name: name, Obs: make(map[ident.Protocol][]alias.Observation)}
}

// Add appends one observation. Panics if the dataset is sealed.
func (d *Dataset) Add(p ident.Protocol, o alias.Observation) {
	d.mustBeUnsealed()
	d.Obs[p] = append(d.Obs[p], o)
}

// AddAll appends a batch of observations, preserving order. Collection
// shards built concurrently merge through AddAll in a fixed protocol
// sequence, which is what keeps Datasets byte-identical across Parallelism
// and Workers settings.
func (d *Dataset) AddAll(p ident.Protocol, obs []alias.Observation) {
	d.mustBeUnsealed()
	if len(obs) == 0 {
		return
	}
	d.Obs[p] = append(d.Obs[p], obs...)
}

// Addrs returns the distinct responsive addresses for a protocol, optionally
// filtered to one family (v4=true/false; pass nil for both), sorted. On a
// sealed dataset the universe is derived once and shared — treat the result
// as read-only.
func (d *Dataset) Addrs(p ident.Protocol, v4 *bool) []netip.Addr {
	f := func() []netip.Addr {
		if d.stream != nil {
			return filterFam(d.stream.addrs[p], v4)
		}
		return distinctAddrs(d.Obs[p], v4)
	}
	if v := d.views; v != nil {
		return v.addrs[p][selIdx(v4)].get(f)
	}
	return f()
}

// AllAddrs returns the distinct addresses across every protocol (Table 1's
// union row), optionally family-filtered. Cached and shared once sealed —
// treat the result as read-only.
func (d *Dataset) AllAddrs(v4 *bool) []netip.Addr {
	f := func() []netip.Addr {
		if d.stream != nil {
			var merged []netip.Addr
			for _, p := range ident.Protocols {
				merged = mergeAddrs(merged, d.stream.addrs[p])
			}
			return filterFam(merged, v4)
		}
		var all []alias.Observation
		for _, p := range ident.Protocols {
			all = append(all, d.Obs[p]...)
		}
		return distinctAddrs(all, v4)
	}
	if v := d.views; v != nil {
		return v.allAddrs[selIdx(v4)].get(f)
	}
	return f()
}

// distinctAddrs derives a sorted, de-duplicated address universe from
// observations, optionally filtered to one family.
func distinctAddrs(obs []alias.Observation, v4 *bool) []netip.Addr {
	seen := make(map[netip.Addr]bool, len(obs))
	out := make([]netip.Addr, 0, len(obs))
	for _, o := range obs {
		if v4 != nil && o.Addr.Is4() != *v4 {
			continue
		}
		if !seen[o.Addr] {
			seen[o.Addr] = true
			out = append(out, o.Addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Sets groups a protocol's observations into alias sets (all sizes). Cached
// and shared once sealed — treat the result as read-only. Sealed datasets
// group through their open resolver session: a session fed live during
// collection already holds the dataset's resolution state, otherwise the
// sealed observations stream in here, once, on first use.
func (d *Dataset) Sets(p ident.Protocol) []alias.Set {
	if v := d.views; v != nil {
		return v.groups[p].get(func() []alias.Set {
			if !v.live {
				for _, o := range d.Obs[p] {
					v.session.Observe(o)
				}
			}
			return v.session.Sets(p)
		})
	}
	return alias.Group(d.Obs[p])
}

// Union merges several datasets into one named dataset; duplicate
// observations collapse during grouping.
func Union(name string, parts ...*Dataset) *Dataset {
	out := NewDataset(name)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for proto, obs := range p.Obs {
			out.Obs[proto] = append(out.Obs[proto], obs...)
		}
		out.NonStandardPortSSH += p.NonStandardPortSSH
	}
	return out
}

// v4ptr and v6ptr are family selectors for Addrs/AllAddrs.
var (
	v4true  = true
	v4false = false
	// V4 selects IPv4 observations.
	V4 = &v4true
	// V6 selects IPv6 observations.
	V6 = &v4false
)
