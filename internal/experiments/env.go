package experiments

import (
	"sync"
	"time"

	"aliaslimit/internal/netsim"
	"aliaslimit/internal/obslog"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/topo"
)

// Env is a fully measured environment: the world plus the two datasets and
// their union — everything the tables and figures read from. BuildEnv seals
// the datasets, so every analysis view is computed once and shared; see
// views.go for the caching contract.
type Env struct {
	// World is the synthetic Internet.
	World *topo.World
	// Active is the single-vantage measurement (taken three simulated weeks
	// after the Censys snapshot, as in the paper: March 28 → April 18).
	Active *Dataset
	// Censys is the snapshot dataset (IPv4 only).
	Censys *Dataset
	// Both is Union(Active, Censys), the default analysis input.
	Both *Dataset

	views   envViews
	backend resolver.Backend
	// session executes the cross-dataset merges; each dataset holds its own
	// session for its views. Close releases all of them.
	session   resolver.Session
	closeOnce sync.Once
	// onClose runs after the sessions close — BuildEnv hangs the temporary
	// stream-collection spill's cleanup here so a facade-built Env owns its
	// whole footprint.
	onClose func() error
}

// Options parameterise environment construction.
type Options struct {
	// Topo configures world generation; zero value selects topo.Default().
	Topo topo.Config
	// Scan configures collection.
	Scan ScanOptions
	// SnapshotGap is the simulated time between the Censys snapshot and
	// the active scan; zero picks the paper's three weeks.
	SnapshotGap time.Duration
	// ChurnFraction is the share of dynamic addresses reassigned during
	// the gap; negative disables churn, zero picks 2%.
	ChurnFraction float64
	// Faults is the fabric's adversarial-condition policy (per-wire loss,
	// probe throttling, IPID overrides), installed after world generation
	// and before either measurement campaign. The zero value injects
	// nothing; see netsim.Faults for the determinism contract.
	Faults netsim.Faults
	// Backend is the alias-resolution strategy every analysis view routes
	// through; nil selects a fresh batch backend per environment. The choice
	// never changes any view's bytes — only the execution strategy. A
	// live-feeding backend (streaming, distributed — see resolver.FeedsLive)
	// additionally has per-dataset sessions fed during collection, so every
	// dataset's alias sets are already resolved when the scans return.
	Backend resolver.Backend
	// Log, when set, makes the run durable: both campaigns' scan sinks tee
	// every observation into the log writer during collection, and each
	// Advance ends by folding the epoch into its canonical on-disk segment
	// and committing the checkpoint manifest (epoch index, churn draw
	// state, per-shard offsets, and the digest below).
	Log *obslog.Writer
	// EpochDigest, consulted only when Log is set, produces the running
	// sets digest recorded in the epoch's checkpoint — and is the hook on
	// which callers hang their own per-epoch durable bookkeeping (the
	// scenario layer persists its epoch scorecard here): whatever it writes
	// is on disk before the manifest commits the epoch. Nil records an
	// empty digest.
	EpochDigest func(*Epoch) (string, error)
	// StreamCollect selects the out-of-core collection path: scan sinks
	// write straight into a per-protocol obslog spill (Log when set, else a
	// temporary writer) and accumulate nothing in RAM, and sealing replays
	// the folded epoch through the resolver sessions in bounded batches.
	// Alias sets are byte-identical to the in-RAM path on every backend;
	// peak memory is O(alias-set output + arena), not O(observations). Raw
	// Dataset.Obs reads are empty in this mode — analyses iterate through
	// Dataset.EachObs and the memoized views instead.
	StreamCollect bool
	// MemBudget, consulted only with StreamCollect, is an advisory bound in
	// bytes on the collection/replay working set; it sizes the streaming
	// reader's readahead. 0 picks the obslog default.
	MemBudget int64
}

// BuildEnv generates a world and measures it from both vantage points in
// the paper's chronology: Censys first, churn and clock advance, then the
// active scan. It is the single-epoch special case of EnvSeries.
func BuildEnv(opts Options) (*Env, error) {
	s, err := NewEnvSeries(SeriesOptions{Options: opts, Epochs: 1})
	if err != nil {
		return nil, err
	}
	ep, err := s.Advance()
	if err != nil {
		s.Close()
		return nil, err
	}
	// A single-epoch Env owns the series' temporary spill (if any): its
	// Close tears the spill down along with the sessions.
	ep.Env.onClose = s.Close
	return ep.Env, nil
}
