package experiments

import (
	"strings"
	"sync"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/topo"
)

// sharedEnv builds one small environment for all tests in this package;
// collection is the expensive part.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		cfg := topo.Default()
		cfg.Scale = 0.08
		cfg.Seed = 11
		envVal, envErr = BuildEnv(Options{Topo: cfg, Scan: ScanOptions{Workers: 64}})
	})
	if envErr != nil {
		t.Fatalf("BuildEnv: %v", envErr)
	}
	return envVal
}

func TestDatasetsPopulated(t *testing.T) {
	e := testEnv(t)
	for _, p := range []ident.Protocol{ident.SSH, ident.BGP, ident.SNMP} {
		if len(e.Active.Obs[p]) == 0 {
			t.Errorf("active %s observations empty", p)
		}
	}
	if len(e.Censys.Obs[ident.SSH]) == 0 || len(e.Censys.Obs[ident.BGP]) == 0 {
		t.Error("censys observations empty")
	}
	if len(e.Censys.Obs[ident.SNMP]) != 0 {
		t.Error("censys must not carry SNMPv3 data")
	}
	if got := len(e.Censys.Addrs(ident.SSH, V6)); got != 0 {
		t.Errorf("censys has %d IPv6 SSH addrs, want 0", got)
	}
	if len(e.Active.Addrs(ident.SSH, V6)) == 0 {
		t.Error("active scan found no IPv6 SSH")
	}
}

func TestCoverageShapes(t *testing.T) {
	e := testEnv(t)
	aSSH := len(e.Active.Addrs(ident.SSH, V4))
	cSSH := len(e.Censys.Addrs(ident.SSH, V4))
	uSSH := len(e.Both.Addrs(ident.SSH, V4))
	// Paper: Censys sees ~1.35x the active SSH population; union exceeds both.
	if cSSH <= aSSH {
		t.Errorf("censys SSH (%d) should exceed active SSH (%d)", cSSH, aSSH)
	}
	if uSSH <= cSSH || uSSH <= aSSH {
		t.Errorf("union SSH (%d) should exceed both sources (%d, %d)", uSSH, cSSH, aSSH)
	}
	ratio := float64(cSSH) / float64(aSSH)
	if ratio < 1.1 || ratio > 1.8 {
		t.Errorf("censys/active SSH ratio = %.2f, want ~1.35", ratio)
	}

	aBGP := len(e.Active.Addrs(ident.BGP, V4))
	uBGP := len(e.Both.Addrs(ident.BGP, V4))
	if aBGP == 0 || uBGP < aBGP {
		t.Errorf("BGP coverage degenerate: active=%d union=%d", aBGP, uBGP)
	}
	// SNMP and SSH populations are of the same order; BGP is tiny.
	aSNMP := len(e.Active.Addrs(ident.SNMP, V4))
	if aSNMP < aBGP*5 {
		t.Errorf("SNMP (%d) should dwarf BGP (%d)", aSNMP, aBGP)
	}
}

func TestInferenceMatchesGroundTruthSSH(t *testing.T) {
	e := testEnv(t)
	// Every SSH alias set inferred from the active scan must be a subset of
	// one device's true addresses — unless the device shares a fleet key.
	truthOwner := map[string]string{} // addr -> device
	for dev, addrs := range e.World.Truth.SSHAddrs {
		for _, a := range addrs {
			truthOwner[a.String()] = dev
		}
	}
	fleetDevices := map[string]bool{}
	for _, ids := range e.World.Truth.Fleets {
		for _, id := range ids {
			fleetDevices[id] = true
		}
	}
	churned := func(dev string) bool { return strings.Contains(dev, "-churn") }

	sets := alias.NonSingleton(e.Active.Sets(ident.SSH))
	if len(sets) == 0 {
		t.Fatal("no non-singleton SSH sets")
	}
	violations := 0
	for _, s := range sets {
		owners := map[string]bool{}
		for _, a := range s.Addrs {
			owners[truthOwner[a.String()]] = true
		}
		if len(owners) == 1 {
			continue
		}
		// Multi-owner sets must be explained by fleet keys or churn.
		explained := true
		for dev := range owners {
			if dev == "" || (!fleetDevices[dev] && !churned(dev)) {
				explained = false
			}
		}
		if !explained {
			violations++
			if violations <= 3 {
				t.Logf("unexplained merged set %v owners %v", s.Addrs, owners)
			}
		}
	}
	if violations > 0 {
		t.Errorf("%d of %d SSH sets merge unrelated devices", violations, len(sets))
	}
}

func TestInferenceRecallSSH(t *testing.T) {
	e := testEnv(t)
	// Recall over devices fully visible to the active vantage: if a device
	// truly has >=2 SSH IPv4 addresses and the scan captured >=2 of them,
	// they must land in one set (same key + capabilities).
	addrToSet := map[string]int{}
	sets := alias.NonSingleton(alias.FilterFamily(e.Active.Sets(ident.SSH), true))
	for i, s := range sets {
		for _, a := range s.Addrs {
			addrToSet[a.String()] = i
		}
	}
	scanned := map[string]bool{}
	for _, o := range e.Active.Obs[ident.SSH] {
		scanned[o.Addr.String()] = true
	}
	splitDevices := 0
	checked := 0
	for dev, addrs := range e.World.Truth.SSHAddrs {
		var got []int
		for _, a := range addrs {
			if a.Is4() && scanned[a.String()] {
				if si, ok := addrToSet[a.String()]; ok {
					got = append(got, si)
				}
			}
		}
		if len(got) < 2 {
			continue
		}
		checked++
		first := got[0]
		same := true
		for _, si := range got[1:] {
			if si != first {
				same = false
			}
		}
		if !same {
			splitDevices++
			if splitDevices <= 3 {
				t.Logf("device %s split across sets", dev)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no multi-address devices visible to the scan")
	}
	// Per-interface capability variation (0.4%) legitimately splits a few.
	if frac := float64(splitDevices) / float64(checked); frac > 0.02 {
		t.Errorf("%.1f%% of devices split (%d of %d), want <2%%", 100*frac, splitDevices, checked)
	}
}

func TestTable3UnionDoublesSNMP(t *testing.T) {
	e := testEnv(t)
	ssh := alias.NonSingleton(e.Both.FamilySets(ident.SSH, true))
	bgpSets := alias.NonSingleton(e.Both.FamilySets(ident.BGP, true))
	snmp := alias.NonSingleton(e.Active.FamilySets(ident.SNMP, true))
	union := alias.NonSingleton(alias.Merge(ssh, bgpSets, snmp))
	if len(union) < 2*len(snmp) {
		t.Errorf("union sets (%d) should be at least double SNMPv3 alone (%d)",
			len(union), len(snmp))
	}
	if len(ssh) <= len(snmp) {
		t.Errorf("SSH sets (%d) should exceed SNMPv3 sets (%d)", len(ssh), len(snmp))
	}
	if len(bgpSets) >= len(snmp)/5 {
		t.Errorf("BGP sets (%d) should be far fewer than SNMPv3 (%d)", len(bgpSets), len(snmp))
	}
}

func TestDualStackDominatedBySSH(t *testing.T) {
	e := testEnv(t)
	sshDS := alias.DualStack(e.Both.Sets(ident.SSH))
	snmpDS := alias.DualStack(e.Both.Sets(ident.SNMP))
	if len(sshDS) < 10*len(snmpDS) {
		t.Errorf("SSH dual-stack (%d) should dwarf SNMPv3 dual-stack (%d) — the paper's 30x",
			len(sshDS), len(snmpDS))
	}
	pairs := 0
	for _, s := range sshDS {
		if s.Size() == 2 {
			pairs++
		}
	}
	if len(sshDS) > 0 && float64(pairs)/float64(len(sshDS)) < 0.7 {
		t.Errorf("only %d of %d SSH dual-stack sets are 1v4+1v6 pairs, want most", pairs, len(sshDS))
	}
}

func TestValidationAgreementHigh(t *testing.T) {
	e := testEnv(t)
	_, _, res := alias.CrossValidate(e.Active.Obs[ident.SSH], e.Active.Obs[ident.SNMP])
	if res.Sample == 0 {
		t.Skip("no SSH-SNMP overlap at this scale")
	}
	if rate := res.AgreementRate(); rate < 0.85 {
		t.Errorf("SSH-SNMPv3 agreement = %.2f over %d sets, want >=0.85 (paper: 0.97)",
			rate, res.Sample)
	}
}

func TestTablesRender(t *testing.T) {
	e := testEnv(t)
	tables := []*Table{
		e.Table1(), e.Table3(), e.Table4(), e.Table5(), e.Table6(),
	}
	for _, tb := range tables {
		out := tb.Render()
		if !strings.Contains(out, tb.ID) {
			t.Errorf("%s render missing ID", tb.ID)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s has no rows", tb.ID)
		}
	}
	for _, f := range []*Figure{e.Figure3(), e.Figure4(), e.Figure5(), e.Figure6()} {
		out := f.Render()
		if !strings.Contains(out, f.ID) || len(strings.Split(out, "\n")) < 5 {
			t.Errorf("%s render too small:\n%s", f.ID, out)
		}
	}
}

func TestFigure5BGPSpansMoreASes(t *testing.T) {
	e := testEnv(t)
	f := e.Figure5()
	var sshAt1, bgpAt1 float64
	var bgpN int
	for _, s := range f.Series {
		switch s.Name {
		case "SSH":
			sshAt1 = s.E.At(1)
		case "BGP":
			bgpAt1 = s.E.At(1)
			bgpN = s.E.N()
		}
	}
	if bgpN < 4 {
		t.Skipf("only %d BGP sets at this scale", bgpN)
	}
	// Paper: <10% of SSH sets span 2+ ASes; >35% of BGP sets do. So the
	// single-AS fraction must be much lower for BGP.
	if !(bgpAt1 < sshAt1) {
		t.Errorf("BGP single-AS fraction (%.2f) should be below SSH's (%.2f)", bgpAt1, sshAt1)
	}
	if sshAt1 < 0.8 {
		t.Errorf("SSH single-AS fraction = %.2f, want >0.8", sshAt1)
	}
}
