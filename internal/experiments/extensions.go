package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/evaluate"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/iffinder"
	"aliaslimit/internal/ptrdns"
	"aliaslimit/internal/speedtrap"
	"aliaslimit/internal/topo"
)

// This file implements the paper's stated future-work agenda (§5) as
// runnable extension experiments:
//
//   - multiple vantage points ("understand the effect of geographical VP
//     location"),
//   - SSH identifier consistency and stability over time,
//
// plus the historical iffinder baseline the introduction motivates against.

// VantageCoverage is one row of the multi-vantage experiment: cumulative
// SSH coverage after combining the first K vantage points.
type VantageCoverage struct {
	// Vantages is the number of combined vantage points.
	Vantages int
	// IPs is the cumulative count of identifiable SSH IPv4 addresses.
	IPs int
	// NewIPs is the marginal gain of the last vantage added.
	NewIPs int
	// AliasSets is the cumulative non-singleton IPv4 set count.
	AliasSets int
}

// MultiVantage scans SSH from up to maxVantages auxiliary vantage points and
// reports cumulative coverage — the diminishing-returns curve a multi-VP
// deployment would see. maxVantages is capped at topo.AuxVantages.
func MultiVantage(w *topo.World, maxVantages int, opts ScanOptions) ([]VantageCoverage, error) {
	if maxVantages <= 0 || maxVantages > topo.AuxVantages {
		maxVantages = topo.AuxVantages
	}
	opts = opts.withDefaults()
	seen := make(map[netip.Addr]bool)
	var combined []alias.Observation
	var out []VantageCoverage
	for k := 0; k < maxVantages; k++ {
		v := w.Fabric.Vantage(topo.AuxVantage(k))
		ds := NewDataset(topo.AuxVantage(k))
		obs, err := scanSSH(v, w.V4Universe(), opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: vantage %d: %w", k, err)
		}
		ds.AddAll(ident.SSH, obs)
		newIPs := 0
		for _, o := range ds.Obs[ident.SSH] {
			if !seen[o.Addr] {
				seen[o.Addr] = true
				newIPs++
			}
			combined = append(combined, o)
		}
		sets := alias.NonSingleton(alias.FilterFamily(alias.Group(combined), true))
		out = append(out, VantageCoverage{
			Vantages:  k + 1,
			IPs:       len(seen),
			NewIPs:    newIPs,
			AliasSets: len(sets),
		})
	}
	return out, nil
}

// RenderMultiVantage prints the coverage curve as a table.
func RenderMultiVantage(rows []VantageCoverage) string {
	t := &Table{
		ID:     "Extension A",
		Title:  "Cumulative SSH coverage by number of vantage points",
		Header: []string{"Vantages", "IPs", "New IPs", "Alias sets"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Vantages), count(r.IPs), count(r.NewIPs), count(r.AliasSets),
		})
	}
	return t.Render()
}

// StabilityResult summarises identifier persistence between two scans of the
// same vantage separated by churn and time.
type StabilityResult struct {
	// Gap is the simulated time between the scans.
	Gap time.Duration
	// Persisted counts addresses with the same SSH identifier both times.
	Persisted int
	// Changed counts addresses that answered both times with different
	// identifiers (the address moved to another machine).
	Changed int
	// Gone counts addresses identifiable only in the first scan.
	Gone int
	// New counts addresses identifiable only in the second scan.
	New int
}

// PersistenceRate is Persisted / (addresses seen in the first scan).
func (r StabilityResult) PersistenceRate() float64 {
	den := r.Persisted + r.Changed + r.Gone
	if den == 0 {
		return 0
	}
	return float64(r.Persisted) / float64(den)
}

// Stability scans SSH, advances the world by gap applying churnFrac address
// churn, rescans, and compares identifiers per address — the paper's
// "consistency and stability" question made operational.
func Stability(w *topo.World, gap time.Duration, churnFrac float64, opts ScanOptions) (*StabilityResult, error) {
	opts = opts.withDefaults()
	v := w.Fabric.Vantage(topo.VantageActive)

	first := NewDataset("t0")
	obs0, err := scanSSH(v, w.V4Universe(), opts)
	if err != nil {
		return nil, err
	}
	first.AddAll(ident.SSH, obs0)
	w.Clock.Advance(gap)
	w.ApplyChurn(churnFrac, 7001)
	second := NewDataset("t1")
	obs1, err := scanSSH(v, w.V4Universe(), opts)
	if err != nil {
		return nil, err
	}
	second.AddAll(ident.SSH, obs1)

	firstID := make(map[netip.Addr]string)
	for _, o := range first.Obs[ident.SSH] {
		firstID[o.Addr] = o.ID.Digest
	}
	res := &StabilityResult{Gap: gap}
	secondSeen := make(map[netip.Addr]bool)
	for _, o := range second.Obs[ident.SSH] {
		secondSeen[o.Addr] = true
		d0, was := firstID[o.Addr]
		switch {
		case !was:
			res.New++
		case d0 == o.ID.Digest:
			res.Persisted++
		default:
			res.Changed++
		}
	}
	for a := range firstID {
		if !secondSeen[a] {
			res.Gone++
		}
	}
	return res, nil
}

// BaselineComparison reports the yield of every technique on one world: the
// motivation table for the paper's introduction (why protocol-centric
// identifiers beat the classical methods).
type BaselineComparison struct {
	// Technique names the method.
	Technique string
	// Sets is the non-singleton IPv4 alias-set count.
	Sets int
	// CoveredAddrs is the number of addresses in those sets.
	CoveredAddrs int
}

// CompareBaselines runs iffinder over the IPv4 universe and tabulates it
// against the protocol-centric results already in the environment.
func (e *Env) CompareBaselines() []BaselineComparison {
	iff := iffinder.Resolve(e.World.Fabric.Vantage(topo.VantageActive), e.World.V4Universe())
	rows := []BaselineComparison{
		{Technique: "iffinder (common source addr)", Sets: len(iff.Sets), CoveredAddrs: alias.CoveredAddrs(iff.Sets)},
	}
	for _, p := range []ident.Protocol{ident.SSH, ident.BGP, ident.SNMP} {
		sets := e.Active.NonSingletonFamilySets(p, true)
		rows = append(rows, BaselineComparison{
			Technique: p.String() + " identifier",
			Sets:      len(sets), CoveredAddrs: alias.CoveredAddrs(sets),
		})
	}
	return rows
}

// RenderBaselines prints the comparison.
func RenderBaselines(rows []BaselineComparison) string {
	t := &Table{
		ID:     "Extension B",
		Title:  "Technique yield on one world (IPv4, non-singleton sets)",
		Header: []string{"Technique", "Sets", "Covered addrs"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Technique, count(r.Sets), count(r.CoveredAddrs)})
	}
	return t.Render()
}

// SpeedtrapValidation verifies sampled IPv6 SSH alias sets with the
// Speedtrap fragment-ID pipeline — the IPv6 counterpart of the paper's
// SSH-MIDAR comparison. Coverage is even thinner than MIDAR's: most IPv6
// devices never emit fragment identifiers at all.
type SpeedtrapValidation struct {
	// Sampled is the number of candidate IPv6 SSH sets tested.
	Sampled int
	// Unverifiable lacked two usable fragment-ID counters.
	Unverifiable int
	// Confirmed matched Speedtrap's partition exactly.
	Confirmed int
	// Split were fractured by Speedtrap.
	Split int
}

// ValidateWithSpeedtrap runs the IPv6 validation over up to maxSets
// candidate sets drawn from the active SSH scan.
func (e *Env) ValidateWithSpeedtrap(maxSets int, cfg speedtrap.Config) SpeedtrapValidation {
	sets := e.Active.NonSingletonFamilySets(ident.SSH, false)
	var eligible []alias.Set
	for _, s := range sets {
		if s.Size() <= 10 {
			eligible = append(eligible, s)
		}
	}
	if maxSets > 0 && len(eligible) > maxSets {
		eligible = eligible[:maxSets]
	}
	session := speedtrap.NewSession(e.World.Fabric.Vantage(topo.VantageMIDAR), e.World.Clock, cfg)
	out := SpeedtrapValidation{Sampled: len(eligible)}
	for _, s := range eligible {
		switch session.VerifySet(s).Outcome {
		case speedtrap.OutcomeUnverifiable:
			out.Unverifiable++
		case speedtrap.OutcomeConfirmed:
			out.Confirmed++
		case speedtrap.OutcomeSplit:
			out.Split++
		}
	}
	return out
}

// PTRComparison contrasts the DNS-based dual-stack inference with the
// identifier-based one on the same world — the paper's related-work
// comparison made concrete.
type PTRComparison struct {
	// PTRSets is the count of PTR-derived dual-stack sets.
	PTRSets int
	// IdentifierSets is the identifier-derived union dual-stack count.
	IdentifierSets int
	// Confirmed / Contradicted / Uncovered classify the PTR sets against
	// the identifier partition.
	Confirmed, Contradicted, Uncovered int
}

// ComparePTRDualStack runs the DNS baseline against the identifier results.
func (e *Env) ComparePTRDualStack() PTRComparison {
	ptrSets := ptrdns.InferDualStack(e.World.PTR)
	identifierSets := e.DualStackSets()
	c := ptrdns.CompareAgainst(ptrSets, identifierSets)
	return PTRComparison{
		PTRSets:        len(ptrSets),
		IdentifierSets: len(identifierSets),
		Confirmed:      c.Confirmed,
		Contradicted:   c.Contradicted,
		Uncovered:      c.Uncovered,
	}
}

// RenderPTRComparison prints the comparison.
func RenderPTRComparison(r PTRComparison) string {
	t := &Table{
		ID:     "Extension D",
		Title:  "DNS PTR dual-stack inference vs identifier-based sets",
		Header: []string{"Quantity", "Value"},
		Rows: [][]string{
			{"PTR dual-stack sets", count(r.PTRSets)},
			{"Identifier dual-stack sets", count(r.IdentifierSets)},
			{"PTR sets confirmed by identifiers", count(r.Confirmed)},
			{"PTR sets contradicted", count(r.Contradicted)},
			{"PTR sets not covered by identifiers", count(r.Uncovered)},
		},
	}
	return t.Render()
}

// AccuracyReport scores the inference against the simulator's ground truth —
// the evaluation the paper could not run on the real Internet. Each row is
// one protocol's pairwise precision/recall over the active scan.
type AccuracyReport struct {
	// Protocol names the technique.
	Protocol string
	// Precision, Recall, F1 are pairwise clustering scores.
	Precision, Recall, F1 float64
	// TruePairs/FalsePairs/MissedPairs are the raw counts.
	TruePairs, FalsePairs, MissedPairs int
}

// EvaluateAccuracy computes ground-truth accuracy per protocol.
func (e *Env) EvaluateAccuracy() []AccuracyReport {
	truthFor := map[ident.Protocol]map[string][]netip.Addr{
		ident.SSH:  e.World.Truth.SSHAddrs,
		ident.BGP:  e.World.Truth.BGPAddrs,
		ident.SNMP: e.World.Truth.SNMPAddrs,
	}
	var out []AccuracyReport
	for _, p := range []ident.Protocol{ident.SSH, ident.BGP, ident.SNMP} {
		owner := evaluate.OwnerMap(truthFor[p])
		sets := e.Active.NonSingletonSets(p)
		m := evaluate.Pairwise(sets, owner)
		out = append(out, AccuracyReport{
			Protocol:  p.String(),
			Precision: m.Precision(), Recall: m.Recall(), F1: m.F1(),
			TruePairs: m.TruePairs, FalsePairs: m.FalsePairs, MissedPairs: m.MissedPairs,
		})
	}
	return out
}

// RenderAccuracy prints the accuracy table.
func RenderAccuracy(rows []AccuracyReport) string {
	t := &Table{
		ID:     "Extension E",
		Title:  "Ground-truth accuracy of the inference (pairwise, active scan)",
		Header: []string{"Protocol", "Precision", "Recall", "F1", "TP", "FP", "FN"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Protocol,
			fmt.Sprintf("%.4f", r.Precision),
			fmt.Sprintf("%.4f", r.Recall),
			fmt.Sprintf("%.4f", r.F1),
			count(r.TruePairs), count(r.FalsePairs), count(r.MissedPairs),
		})
	}
	t.Notes = append(t.Notes,
		"false pairs stem from fleet/factory SSH keys and snapshot churn (the paper's §2.7 limits)",
		"missed pairs stem from service ACLs and per-interface capability variation")
	return t.Render()
}
