package experiments

import (
	"strings"
	"testing"
	"time"

	"aliaslimit/internal/ident"
	"aliaslimit/internal/speedtrap"
	"aliaslimit/internal/topo"
)

func extWorld(t *testing.T) *topo.World {
	t.Helper()
	cfg := topo.Default()
	cfg.Scale = 0.06
	cfg.Seed = 17
	w, err := topo.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMultiVantageCumulative(t *testing.T) {
	w := extWorld(t)
	rows, err := MultiVantage(w, 4, ScanOptions{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Vantages != i+1 {
			t.Errorf("row %d vantages = %d", i, r.Vantages)
		}
		if i > 0 {
			if r.IPs < rows[i-1].IPs {
				t.Errorf("coverage shrank at vantage %d", r.Vantages)
			}
			if r.IPs != rows[i-1].IPs+r.NewIPs {
				t.Errorf("marginal accounting broken at vantage %d", r.Vantages)
			}
			// Diminishing returns: later vantages add less than the first
			// found.
			if r.NewIPs >= rows[0].IPs {
				t.Errorf("vantage %d added %d, at least first vantage's %d",
					r.Vantages, r.NewIPs, rows[0].IPs)
			}
		}
	}
	if rows[len(rows)-1].IPs <= rows[0].IPs {
		t.Error("additional vantage points found nothing new — filtering model broken")
	}
	out := RenderMultiVantage(rows)
	if !strings.Contains(out, "Extension A") || !strings.Contains(out, "Vantages") {
		t.Errorf("render:\n%s", out)
	}
}

func TestMultiVantageCapped(t *testing.T) {
	w := extWorld(t)
	rows, err := MultiVantage(w, 99, ScanOptions{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != topo.AuxVantages {
		t.Errorf("rows = %d, want cap %d", len(rows), topo.AuxVantages)
	}
}

func TestStability(t *testing.T) {
	w := extWorld(t)
	res, err := Stability(w, 21*24*time.Hour, 0.10, ScanOptions{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Persisted == 0 {
		t.Fatal("no identifiers persisted — world broken")
	}
	if res.Changed == 0 {
		t.Error("10% churn should change some identifiers")
	}
	rate := res.PersistenceRate()
	if rate < 0.80 || rate >= 1.0 {
		t.Errorf("persistence rate = %.2f (persisted=%d changed=%d gone=%d new=%d)",
			rate, res.Persisted, res.Changed, res.Gone, res.New)
	}
	if res.Gap != 21*24*time.Hour {
		t.Error("gap not recorded")
	}
}

func TestStabilityZeroChurnIsPerfect(t *testing.T) {
	w := extWorld(t)
	res, err := Stability(w, time.Hour, 0, ScanOptions{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed != 0 {
		t.Errorf("no churn but %d identifiers changed", res.Changed)
	}
	if r := res.PersistenceRate(); r != 1.0 {
		t.Errorf("persistence = %.3f, want 1.0 (gone=%d)", r, res.Gone)
	}
}

func TestCompareBaselines(t *testing.T) {
	e := testEnv(t)
	rows := e.CompareBaselines()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]BaselineComparison{}
	for _, r := range rows {
		byName[r.Technique] = r
	}
	iff := byName["iffinder (common source addr)"]
	ssh := byName["SSH identifier"]
	snmp := byName["SNMPv3 identifier"]
	if iff.Sets == 0 {
		t.Error("iffinder found nothing — ICMP model broken")
	}
	// The paper's motivation: the classical technique is far outyielded by
	// the protocol-centric identifiers.
	if iff.Sets >= ssh.Sets {
		t.Errorf("iffinder (%d sets) should trail SSH (%d sets)", iff.Sets, ssh.Sets)
	}
	if iff.Sets >= snmp.Sets {
		t.Errorf("iffinder (%d sets) should trail SNMPv3 (%d sets)", iff.Sets, snmp.Sets)
	}
	out := RenderBaselines(rows)
	if !strings.Contains(out, "iffinder") {
		t.Errorf("render:\n%s", out)
	}
}

func TestBrokenSSHServersAreSurvived(t *testing.T) {
	cfg := topo.Default()
	cfg.Scale = 0.06
	cfg.Seed = 19
	cfg.PBrokenSSH = 0.25 // heavy failure injection
	w, err := topo.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := CollectActive(w, ScanOptions{Workers: 64})
	if err != nil {
		t.Fatalf("scan over broken servers errored: %v", err)
	}
	// Broken servers must not produce identifiers; healthy ones must.
	if len(ds.Obs) == 0 || len(ds.Addrs(ident.SSH, V4)) == 0 {
		t.Error("no SSH observations survived failure injection")
	}
	truthCount := 0
	for _, addrs := range w.Truth.SSHAddrs {
		for _, a := range addrs {
			if a.Is4() {
				truthCount++
			}
		}
	}
	got := len(ds.Addrs(ident.SSH, V4))
	if got > truthCount {
		t.Errorf("scan found %d SSH addrs but ground truth has only %d — broken servers leaked identifiers",
			got, truthCount)
	}
}

func TestValidateWithSpeedtrap(t *testing.T) {
	e := testEnv(t)
	res := e.ValidateWithSpeedtrap(20, speedtrap.Config{})
	if res.Sampled == 0 {
		t.Skip("no IPv6 SSH sets at this scale")
	}
	if res.Unverifiable+res.Confirmed+res.Split != res.Sampled {
		t.Errorf("tally does not add up: %+v", res)
	}
	// Fragment emission is rare: most sets must be unverifiable, and
	// confirmed sets must never be outnumbered by wrong splits of true
	// aliases from shared counters.
	if res.Unverifiable == 0 {
		t.Errorf("every set verifiable — fragment scarcity model broken: %+v", res)
	}
}

func TestComparePTRDualStack(t *testing.T) {
	e := testEnv(t)
	r := e.ComparePTRDualStack()
	if r.IdentifierSets == 0 {
		t.Fatal("no identifier dual-stack sets")
	}
	// The DNS technique must find something, but far less than the
	// identifier approach, and mostly consistent with it.
	if r.PTRSets == 0 {
		t.Error("PTR inference found nothing")
	}
	if r.PTRSets >= r.IdentifierSets {
		t.Errorf("PTR sets (%d) should trail identifier sets (%d)", r.PTRSets, r.IdentifierSets)
	}
	if r.Confirmed+r.Contradicted+r.Uncovered != r.PTRSets {
		t.Errorf("classification does not add up: %+v", r)
	}
	out := RenderPTRComparison(r)
	if !strings.Contains(out, "Extension D") {
		t.Errorf("render:\n%s", out)
	}
}

func TestEvaluateAccuracy(t *testing.T) {
	e := testEnv(t)
	rows := e.EvaluateAccuracy()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Precision < 0.95 {
			t.Errorf("%s precision = %.3f — the technique should rarely merge wrongly", r.Protocol, r.Precision)
		}
		if r.Recall < 0.80 {
			t.Errorf("%s recall = %.3f — ACLs alone should not cost this much", r.Protocol, r.Recall)
		}
		if r.F1 <= 0 || r.F1 > 1 {
			t.Errorf("%s F1 = %.3f", r.Protocol, r.F1)
		}
	}
	out := RenderAccuracy(rows)
	if !strings.Contains(out, "Extension E") || !strings.Contains(out, "Precision") {
		t.Errorf("render:\n%s", out)
	}
}
