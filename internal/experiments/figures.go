package experiments

import (
	"aliaslimit/internal/alias"
	"aliaslimit/internal/asview"
	"aliaslimit/internal/ecdf"
	"aliaslimit/internal/ident"
)

// Figure is a rendered distribution figure: named ECDF curves evaluated on a
// shared x-axis, plus the text rendering.
type Figure struct {
	// ID names the experiment ("Figure 3").
	ID string
	// Title is the caption.
	Title string
	// XLabel labels the x axis.
	XLabel string
	// XS are the evaluation points.
	XS []float64
	// Series are the curves.
	Series []ecdf.Series
}

// Render prints the figure data as an aligned text table.
func (f *Figure) Render() string {
	return ecdf.Render(f.ID+": "+f.Title, f.XLabel, f.XS, f.Series)
}

// sizesOf lists the sizes of (non-singleton) sets.
func sizesOf(ns []alias.Set) []int {
	out := make([]int, len(ns))
	for i, s := range ns {
		out[i] = s.Size()
	}
	return out
}

// Figure3 regenerates the ECDF of IPv4 addresses per alias set for each
// source × protocol combination the paper plots.
func (e *Env) Figure3() *Figure {
	curve := func(name string, ds *Dataset, p ident.Protocol) ecdf.Series {
		return ecdf.Series{Name: name, E: ecdf.FromInts(sizesOf(ds.NonSingletonFamilySets(p, true)))}
	}
	return &Figure{
		ID:     "Figure 3",
		Title:  "IPv4 addresses per alias set (ECDF)",
		XLabel: "addrs/set",
		XS:     ecdf.LogXPoints(4, 3),
		Series: []ecdf.Series{
			curve("Censys BGP", e.Censys, ident.BGP),
			curve("Active BGP", e.Active, ident.BGP),
			curve("Censys SSH", e.Censys, ident.SSH),
			curve("Active SSH", e.Active, ident.SSH),
			curve("Active SNMPv3", e.Active, ident.SNMP),
		},
	}
}

// Figure4 regenerates the ECDF of IPv6 addresses per alias set (active
// measurements only, as in the paper).
func (e *Env) Figure4() *Figure {
	curve := func(name string, p ident.Protocol) ecdf.Series {
		return ecdf.Series{Name: name, E: ecdf.FromInts(sizesOf(e.Active.NonSingletonFamilySets(p, false)))}
	}
	return &Figure{
		ID:     "Figure 4",
		Title:  "IPv6 addresses per alias set (ECDF)",
		XLabel: "addrs/set",
		XS:     ecdf.LogXPoints(4, 3),
		Series: []ecdf.Series{
			curve("Active SSH", ident.SSH),
			curve("Active BGP", ident.BGP),
			curve("Active SNMPv3", ident.SNMP),
		},
	}
}

// Figure5 regenerates the ECDF of distinct ASes per IPv4 alias set for each
// protocol: the curve that shows BGP sets crossing AS boundaries far more
// often than SSH or SNMPv3 sets.
func (e *Env) Figure5() *Figure {
	m := e.mapper()
	curve := func(name string, ds *Dataset, p ident.Protocol) ecdf.Series {
		spread := asview.SpreadPerSet(m, ds.NonSingletonFamilySets(p, true))
		return ecdf.Series{Name: name, E: ecdf.FromInts(spread)}
	}
	return &Figure{
		ID:     "Figure 5",
		Title:  "ASes per IPv4 alias set (ECDF)",
		XLabel: "ASes/set",
		XS:     ecdf.LinearXPoints(20, 1),
		Series: []ecdf.Series{
			curve("SSH", e.Both, ident.SSH),
			curve("BGP", e.Both, ident.BGP),
			curve("SNMPv3", e.Active, ident.SNMP),
		},
	}
}

// Figure6 regenerates the ECDF of the number of alias sets and dual-stack
// sets per AS.
func (e *Env) Figure6() *Figure {
	m := e.mapper()
	aliasUnion := e.UnionFamilyNonSingleton(true)
	dualUnion := e.DualStackSets()

	countsToInts := func(counts map[uint32]int) []int {
		out := make([]int, 0, len(counts))
		for _, c := range counts {
			out = append(out, c)
		}
		return out
	}
	return &Figure{
		ID:     "Figure 6",
		Title:  "Number of sets per AS (ECDF)",
		XLabel: "sets/AS",
		XS:     ecdf.LogXPoints(5, 3),
		Series: []ecdf.Series{
			{Name: "Alias Sets", E: ecdf.FromInts(countsToInts(asview.SetsPerAS(m, aliasUnion)))},
			{Name: "Dual-Stack Sets", E: ecdf.FromInts(countsToInts(asview.SetsPerAS(m, dualUnion)))},
		},
	}
}
