package experiments

import "sync"

// group is a minimal errgroup: it runs functions on goroutines under a
// concurrency limit and keeps the first error. The repository carries no
// external dependencies, so the x/sync variant is reimplemented here in the
// ~30 lines it actually needs.
type group struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu  sync.Mutex
	err error
}

// newGroup returns a group running at most limit functions at once; limit <=
// 0 means unbounded.
func newGroup(limit int) *group {
	g := &group{}
	if limit > 0 {
		g.sem = make(chan struct{}, limit)
	}
	return g
}

// Go schedules fn. The first non-nil error wins; later errors are dropped
// (every fn still runs to completion so that Wait returns with no goroutines
// left behind).
func (g *group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			g.sem <- struct{}{}
			defer func() { <-g.sem }()
		}
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every scheduled function has returned and reports the
// first error.
func (g *group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
