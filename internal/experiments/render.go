package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one of the paper's numbered tables.
type Table struct {
	// ID names the experiment ("Table 1").
	ID string
	// Title is the caption.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold already-formatted cells.
	Rows [][]string
	// Notes carry the in-text statistics the paper quotes around the table.
	Notes []string
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// count formats integers compactly, mirroring the paper's "15.9M"/"505k"
// style above 10,000 and exact values below.
func count(n int) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// setsAndAddrs renders the paper's "sets (addrs)" cell form.
func setsAndAddrs(sets, addrs int) string {
	return fmt.Sprintf("%s (%s)", count(sets), count(addrs))
}
