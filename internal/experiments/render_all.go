package experiments

import "strings"

// RenderAll regenerates every table and figure of the paper's evaluation
// concurrently and returns them concatenated in paper order. The memoized
// view layer makes this safe and deterministic: shared derivations are
// computed once under sync.Once no matter which artifact asks first, and
// the only clock-mutating stage (Table 2's MIDAR run) executes exactly once
// via its memoized entry, so concurrent output is byte-identical to a
// sequential render.
func (e *Env) RenderAll() string { return e.renderAll(0) }

// renderAll runs the artifact generators under a concurrency limit;
// limit <= 0 is unbounded, 1 recovers the sequential baseline (used by the
// determinism tests).
func (e *Env) renderAll(limit int) string {
	jobs := []func() string{
		func() string { return e.Table1().Render() },
		func() string { return e.Table2(Table2Config{}).Render() },
		func() string { return e.Table3().Render() },
		func() string { return e.Table4().Render() },
		func() string { return e.Table5().Render() },
		func() string { return e.Table6().Render() },
		func() string { return e.Figure3().Render() },
		func() string { return e.Figure4().Render() },
		func() string { return e.Figure5().Render() },
		func() string { return e.Figure6().Render() },
	}
	outs := make([]string, len(jobs))
	g := newGroup(limit)
	for i := range jobs {
		i := i
		g.Go(func() error {
			outs[i] = jobs[i]()
			return nil
		})
	}
	_ = g.Wait() // render jobs never error
	var sb strings.Builder
	for _, out := range outs {
		sb.WriteString(out)
		sb.WriteByte('\n')
	}
	return sb.String()
}
