package experiments

import (
	"strings"
	"testing"

	"aliaslimit/internal/ident"
)

func TestCountFormatting(t *testing.T) {
	cases := map[int]string{
		0:          "0",
		12:         "12",
		9999:       "9999",
		10000:      "10.0k",
		15900:      "15.9k",
		364000:     "364.0k",
		9999999:    "10000.0k",
		10000000:   "10.0M",
		24400000:   "24.4M",
		1400000000: "1400.0M",
	}
	for in, want := range cases {
		if got := count(in); got != want {
			t.Errorf("count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSetsAndAddrs(t *testing.T) {
	if got := setsAndAddrs(12000, 175000); got != "12.0k (175.0k)" {
		t.Errorf("setsAndAddrs = %q", got)
	}
	if got := setsAndAddrs(12, 175); got != "12 (175)" {
		t.Errorf("setsAndAddrs = %q", got)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{
		ID:     "Table X",
		Title:  "Alignment check",
		Header: []string{"Col", "LongerColumn"},
		Rows: [][]string{
			{"a-very-long-cell", "b"},
			{"c", "d"},
		},
		Notes: []string{"a note"},
	}
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 2 rows, note
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Header, separator, and rows must share column positions: the second
	// column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "LongerColumn")
	if idx < 0 {
		t.Fatal("header missing")
	}
	for _, ln := range lines[3:5] {
		if len(ln) <= idx {
			t.Errorf("row shorter than header offset: %q", ln)
		}
	}
	if !strings.HasPrefix(lines[5], "note: ") {
		t.Errorf("note line = %q", lines[5])
	}
}

func TestDatasetAccessors(t *testing.T) {
	e := testEnv(t)
	if len(e.Both.Addrs(ident.SSH, V4)) == 0 {
		t.Error("no SSH IPv4 addresses in union dataset")
	}
	// Addrs must be sorted and family-pure.
	for _, sel := range []*bool{V4, V6} {
		addrs := e.Both.AllAddrs(sel)
		for i, a := range addrs {
			if a.Is4() != *sel {
				t.Fatalf("family filter leaked %s", a)
			}
			if i > 0 && !addrs[i-1].Less(a) {
				t.Fatal("AllAddrs not sorted")
			}
		}
	}
	both := e.Both.AllAddrs(nil)
	if len(both) != len(e.Both.AllAddrs(V4))+len(e.Both.AllAddrs(V6)) {
		t.Error("nil selector should return both families")
	}
}
