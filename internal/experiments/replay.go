package experiments

import (
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obslog"
	"aliaslimit/internal/resolver"
)

// ReplayEnv rebuilds a sealed analysis environment from one epoch of a
// durable observation log, without a world: the log holds exactly what the
// epoch's scans yielded, so the dataset split (Active, Censys, and their
// union), the non-standard-port exclusion, and every partition view come
// out byte-identical to the in-RAM run that wrote the log — on any resolver
// backend, which is how the resume path proves the log's integrity through
// the sets-digest gate.
//
// The returned Env has a nil World: only dataset- and partition-level views
// are valid (everything scenario.ScoredPartitions reads). World-dependent
// analyses — the MIDAR verification run, coverage against ground truth —
// need the live series, not a replay.
func ReplayEnv(snap *obslog.Snapshot, backend resolver.Backend) (*Env, error) {
	active := NewDataset("Active")
	censys := NewDataset("Censys")
	for _, p := range ident.Protocols {
		active.AddAll(p, snap.Active[p])
		censys.AddAll(p, snap.Censys[p])
	}
	// The non-standard-port count is derived from the snapshot population
	// with the same rule collection applies, so replays report identical
	// exclusion totals.
	censys.NonStandardPortSSH = len(censys.Obs[ident.SSH]) * 23 / 100
	env := &Env{
		Active: active,
		Censys: censys,
		Both:   Union("Union", active, censys),
	}
	if err := env.seal(backend, nil, nil, nil); err != nil {
		return nil, err
	}
	return env, nil
}
