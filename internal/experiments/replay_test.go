package experiments

import (
	"reflect"
	"testing"

	"aliaslimit/internal/ident"
	"aliaslimit/internal/obslog"
	"aliaslimit/internal/resolver"
)

// logSeriesOpts is seriesOpts plus a durable log in dir.
func logSeriesOpts(t *testing.T, dir string, backend resolver.Backend) (SeriesOptions, *obslog.Writer) {
	t.Helper()
	opts := seriesOpts(0)
	opts.Backend = backend
	lg, err := obslog.Create(dir, obslog.RunMeta{Scenario: "series-test", Seed: opts.Topo.Seed, Scale: opts.Topo.Scale, Epochs: opts.Epochs}, obslog.Options{Sync: obslog.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	opts.Log = lg
	return opts, lg
}

// viewsFingerprint summarises every world-independent partition view of an
// environment, for comparing a disk replay against the in-RAM original.
func viewsFingerprint(env *Env) map[string]interface{} {
	fp := map[string]interface{}{
		"union-v4": env.UnionFamilyNonSingleton(true),
		"union-v6": env.UnionFamilyNonSingleton(false),
		"dual":     env.DualStackSets(),
	}
	for _, p := range ident.Protocols {
		fp["active-"+p.String()] = env.Active.Sets(p)
		fp["censys-"+p.String()] = env.Censys.Sets(p)
		fp["both-"+p.String()] = env.Both.Sets(p)
	}
	return fp
}

// TestReplayMatchesInRAMAllBackends pins the tentpole recovery invariant:
// every epoch replayed from the observation log rebuilds the exact
// partition views of the in-RAM run, on every resolver backend.
func TestReplayMatchesInRAMAllBackends(t *testing.T) {
	for _, name := range resolver.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			backend, err := resolver.New(name, 0)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			opts, lg := logSeriesOpts(t, dir, backend)
			s, err := NewEnvSeries(opts)
			if err != nil {
				t.Fatal(err)
			}
			var want []map[string]interface{}
			for e := 0; e < opts.Epochs; e++ {
				ep, err := s.Advance()
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, viewsFingerprint(ep.Env))
			}
			if err := lg.Close(); err != nil {
				t.Fatal(err)
			}
			for e := 0; e < opts.Epochs; e++ {
				snap, err := obslog.Replay(dir, e)
				if err != nil {
					t.Fatal(err)
				}
				replayBackend, err := resolver.New(name, 0)
				if err != nil {
					t.Fatal(err)
				}
				renv, err := ReplayEnv(snap, replayBackend)
				if err != nil {
					t.Fatal(err)
				}
				got := viewsFingerprint(renv)
				for key, w := range want[e] {
					if !reflect.DeepEqual(got[key], w) {
						t.Errorf("epoch %d view %s: replay diverges from in-RAM run", e, key)
					}
				}
			}
		})
	}
}

// TestSkipEpochReplaysChurnExactly pins the resume world-replay invariant:
// skipping epochs mutates the world identically to running them, so a
// subsequent live epoch reproduces the original datasets bit for bit and
// the churn draw state matches at every boundary.
func TestSkipEpochReplaysChurnExactly(t *testing.T) {
	opts := seriesOpts(0)
	full, err := NewEnvSeries(opts)
	if err != nil {
		t.Fatal(err)
	}
	var fullStates []uint64
	var lastEp *Epoch
	for e := 0; e < opts.Epochs; e++ {
		ep, err := full.Advance()
		if err != nil {
			t.Fatal(err)
		}
		fullStates = append(fullStates, full.World.ChurnDrawState())
		lastEp = ep
	}

	skip, err := NewEnvSeries(opts)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < opts.Epochs-1; e++ {
		stats, err := skip.SkipEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Epoch != e {
			t.Fatalf("SkipEpoch reported epoch %d, want %d", stats.Epoch, e)
		}
		if got := skip.World.ChurnDrawState(); got != fullStates[e] {
			t.Fatalf("draw state after skipped epoch %d diverges from full run", e)
		}
	}
	ep, err := skip.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if got := skip.World.ChurnDrawState(); got != fullStates[opts.Epochs-1] {
		t.Fatal("draw state after resumed live epoch diverges from full run")
	}
	for _, p := range ident.Protocols {
		if !reflect.DeepEqual(ep.Env.Active.Obs[p], lastEp.Env.Active.Obs[p]) {
			t.Errorf("%s active observations diverge after skip-resume", p)
		}
		if !reflect.DeepEqual(ep.Env.Censys.Obs[p], lastEp.Env.Censys.Obs[p]) {
			t.Errorf("%s censys observations diverge after skip-resume", p)
		}
	}
	if !reflect.DeepEqual(ep.Truth, lastEp.Truth) {
		t.Error("ground truth diverges after skip-resume")
	}
}
