package experiments

import (
	"fmt"
	"os"
	"time"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obslog"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/topo"
)

// sessionSink adapts an open resolver session to the ObservationSink shape
// collection feeds — the seam that lets any live-feeding backend (streaming
// goroutines, distributed worker processes) consume a campaign online.
type sessionSink struct{ s resolver.Session }

// Observe implements ObservationSink. The protocol tag is redundant with the
// observation's identifier and the session routes by the latter.
func (k sessionSink) Observe(_ ident.Protocol, o alias.Observation) { k.s.Observe(o) }

// EnvSeries is the multi-epoch measurement runtime: one persistent world
// measured by N successive snapshot→churn→scan rounds. Each Advance call
// performs one full epoch — epoch-boundary churn (address renumbering,
// device-reboot re-keying, wire down/up), then the Censys snapshot, the
// intra-epoch churn and clock gap, and the active scan — and returns a fully
// sealed Env plus the ground truth as it stood at scan time.
//
// The series is strictly sequential: the caller must finish consuming one
// epoch (including clock-advancing analyses like the MIDAR run) before
// calling Advance again, mirroring the ordering contract of topo.World's
// mutating methods. Within an epoch, collection retains the full concurrency
// of CollectActive/CollectCensys and the byte-determinism contract: the same
// (options, epoch) always yields identical datasets at any Workers or
// Parallelism setting.
type EnvSeries struct {
	// World is the persistent simulated Internet shared by every epoch.
	World *topo.World

	opts SeriesOptions
	next int

	// spill is the observation log stream collection writes through: the
	// caller's Options.Log when set, else a temporary writer the series
	// owns (spillOwned) and Close tears down with its directory.
	spill      *obslog.Writer
	spillDir   string
	spillOwned bool
}

// SeriesOptions parameterise a multi-epoch run.
type SeriesOptions struct {
	// Options configures the world and each epoch's collection exactly as
	// BuildEnv does (BuildEnv is the Epochs=1 special case of a series).
	Options
	// Epochs is the number of snapshot rounds; 0 and 1 both mean a single
	// epoch.
	Epochs int
	// EpochGap is the simulated time between one epoch's active scan and the
	// next epoch's Censys snapshot; zero picks five weeks (with the
	// three-week intra-epoch gap, one epoch per two simulated months).
	EpochGap time.Duration
	// EpochChurn is applied at every epoch boundary (not before the first
	// epoch). The zero value disables boundary churn; Options.ChurnFraction
	// still applies within each epoch.
	EpochChurn topo.EpochChurn
}

// EpochStats reports what one Advance call did to the world.
type EpochStats struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// EpochChurnStats counts the boundary mutations (zero for epoch 0).
	topo.EpochChurnStats
	// IntraChurned counts addresses reassigned by the intra-epoch churn
	// between the Censys snapshot and the active scan.
	IntraChurned int
}

// Epoch is one completed measurement round.
type Epoch struct {
	// Env is the sealed environment measured this round.
	Env *Env
	// Stats counts the churn that preceded and accompanied the round.
	Stats EpochStats
	// Truth is the ground truth snapshotted at scan time. Scoring an epoch
	// against the world's live Truth instead would judge early measurements
	// by a later world.
	Truth *topo.Truth
}

// NewEnvSeries builds the world (and installs the fault policy) without
// measuring anything; call Advance once per epoch.
func NewEnvSeries(opts SeriesOptions) (*EnvSeries, error) {
	cfg := opts.Topo
	if cfg.Scale == 0 {
		cfg = topo.Default()
	}
	opts.Topo = cfg
	if opts.Epochs <= 0 {
		opts.Epochs = 1
	}
	if opts.SnapshotGap == 0 {
		opts.SnapshotGap = 21 * 24 * time.Hour
	}
	if opts.ChurnFraction == 0 {
		opts.ChurnFraction = 0.02
	}
	if opts.EpochGap == 0 {
		opts.EpochGap = 35 * 24 * time.Hour
	}
	w, err := topo.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: building world: %w", err)
	}
	w.Fabric.SetFaults(opts.Faults)
	return &EnvSeries{World: w, opts: opts}, nil
}

// Epochs returns the configured number of snapshot rounds.
func (s *EnvSeries) Epochs() int { return s.opts.Epochs }

// ensureSpill returns the observation log stream collection writes through,
// creating the series-owned temporary writer on first use when the caller
// supplied no durable log. The temporary spill is collection scratch, not a
// checkpoint: it never fsyncs.
func (s *EnvSeries) ensureSpill() (*obslog.Writer, error) {
	if s.opts.Log != nil {
		return s.opts.Log, nil
	}
	if s.spill == nil {
		dir, err := os.MkdirTemp("", "aliaslimit-stream-*")
		if err != nil {
			return nil, fmt.Errorf("experiments: stream spill: %w", err)
		}
		meta := obslog.RunMeta{
			Scenario: "stream-collect",
			Seed:     s.opts.Scan.Seed,
			Scale:    s.opts.Topo.Scale,
			Epochs:   s.opts.Epochs,
		}
		w, err := obslog.Create(dir, meta, obslog.Options{Sync: obslog.SyncNever})
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("experiments: stream spill: %w", err)
		}
		s.spill, s.spillDir, s.spillOwned = w, dir, true
	}
	return s.spill, nil
}

// Close releases the series' temporary stream-collection spill, if one was
// created. Stream-backed epochs of this series must be fully consumed
// first — their datasets replay from the spill. Safe to call on any series;
// a caller-supplied Options.Log is never touched.
func (s *EnvSeries) Close() error {
	if !s.spillOwned {
		return nil
	}
	var err error
	if s.spill != nil {
		err = s.spill.Close()
	}
	if s.spillDir != "" {
		if rerr := os.RemoveAll(s.spillDir); err == nil {
			err = rerr
		}
	}
	s.spill, s.spillDir, s.spillOwned = nil, "", false
	return err
}

// Advance runs the next epoch and returns it. It fails once the configured
// number of epochs is exhausted.
func (s *EnvSeries) Advance() (*Epoch, error) {
	e := s.next
	if e >= s.opts.Epochs {
		return nil, fmt.Errorf("experiments: series exhausted after %d epochs", s.opts.Epochs)
	}
	s.next++
	w := s.World

	// A live-feeding backend consumes observations online: per epoch, each
	// campaign feeds its own fresh session plus a shared union session, so
	// every dataset's alias sets — Active, Censys, and the union — are fully
	// resolved the moment the scans return. This is the live per-dataset view
	// wiring the resolution daemon and the distributed coordinator build on.
	activeOpts, censysOpts := s.opts.Scan, s.opts.Scan
	var activeSes, censysSes, unionSes resolver.Session
	if resolver.FeedsLive(s.opts.Backend) {
		open := func() (resolver.Session, error) {
			return s.opts.Backend.Open(resolver.Options{})
		}
		var err error
		if activeSes, err = open(); err != nil {
			return nil, fmt.Errorf("experiments: opening live session: %w", err)
		}
		if censysSes, err = open(); err != nil {
			activeSes.Close()
			return nil, fmt.Errorf("experiments: opening live session: %w", err)
		}
		if unionSes, err = open(); err != nil {
			activeSes.Close()
			censysSes.Close()
			return nil, fmt.Errorf("experiments: opening live session: %w", err)
		}
		activeOpts.Sink = TeeSink(sessionSink{activeSes}, sessionSink{unionSes})
		censysOpts.Sink = TeeSink(sessionSink{censysSes}, sessionSink{unionSes})
	}
	closeLive := func() {
		for _, ls := range []resolver.Session{activeSes, censysSes, unionSes} {
			if ls != nil {
				ls.Close()
			}
		}
	}

	lg := s.opts.Log
	var counter *obsCounter
	if s.opts.StreamCollect {
		// Out-of-core collection: the log (the caller's, or a temporary
		// spill) is the only place observations land — scan workers discard
		// everything after the sinks have seen it. The counting sink keeps
		// the Censys SSH population size for the non-standard-port model.
		var err error
		if lg, err = s.ensureSpill(); err != nil {
			closeLive()
			return nil, err
		}
		activeOpts.DiscardObs, censysOpts.DiscardObs = true, true
		counter = &obsCounter{}
		censysOpts.Sink = TeeSink(censysOpts.Sink, counter)
	}
	if lg != nil {
		// Durable runs additionally tee every observation into the log,
		// campaign-tagged so replay can rebuild the asymmetric dataset split.
		activeOpts.Sink = TeeSink(activeOpts.Sink, lg.Sink(obslog.SourceActive))
		censysOpts.Sink = TeeSink(censysOpts.Sink, lg.Sink(obslog.SourceCensys))
	}

	var stats EpochStats
	stats.Epoch = e
	if e > 0 {
		w.Clock.Advance(s.opts.EpochGap)
		stats.EpochChurnStats = w.ApplyEpochChurn(s.opts.EpochChurn, e)
	}

	censys, err := CollectCensys(w, censysOpts)
	if err != nil {
		closeLive()
		return nil, err
	}
	w.Clock.Advance(s.opts.SnapshotGap)
	if s.opts.ChurnFraction > 0 {
		// Odd round numbers; epoch-boundary renumbering uses the even ones.
		stats.IntraChurned = w.ApplyChurn(s.opts.ChurnFraction, 2*e+1)
	}
	active, err := CollectActive(w, activeOpts)
	if err != nil {
		closeLive()
		return nil, err
	}
	if counter != nil {
		// The batch path derives this from len(Obs[SSH]); stream mode
		// counted the same grabs as they flowed past.
		censys.NonStandardPortSSH = counter.count(ident.SSH) * 23 / 100
	}
	env := &Env{
		World:  w,
		Active: active,
		Censys: censys,
		Both:   Union("Union", active, censys),
	}
	if s.opts.StreamCollect {
		// Fold the epoch into its canonical on-disk segment, bind the
		// datasets to it, and seal by replaying the segment in bounded
		// batches (see stream.go). The fold precedes the manifest commit so
		// the EpochDigest hook below can read the sealed views.
		ra := readaheadFor(s.opts.MemBudget)
		env.Active.stream = &streamSource{log: lg, epoch: e, active: true, readahead: ra}
		env.Censys.stream = &streamSource{log: lg, epoch: e, censys: true, readahead: ra}
		env.Both.stream = &streamSource{log: lg, epoch: e, active: true, censys: true, readahead: ra}
		if err := lg.FoldEpoch(e); err != nil {
			closeLive()
			return nil, fmt.Errorf("experiments: folding epoch %d: %w", e, err)
		}
		if err := env.sealStreamed(s.opts.Backend, activeSes, censysSes, unionSes); err != nil {
			closeLive()
			return nil, fmt.Errorf("experiments: sealing epoch %d: %w", e, err)
		}
	} else if err := env.seal(s.opts.Backend, activeSes, censysSes, unionSes); err != nil {
		// Each live session saw exactly its dataset's observations (the
		// union session the union of both campaigns), so sealing adopts them
		// as the datasets' resolution state — byte-identical to a batch
		// regroup of the sealed data.
		closeLive()
		return nil, fmt.Errorf("experiments: sealing epoch %d: %w", e, err)
	}
	ep := &Epoch{Env: env, Stats: stats, Truth: w.Truth.Snapshot()}
	if lg != nil {
		digest := ""
		if s.opts.EpochDigest != nil {
			d, err := s.opts.EpochDigest(ep)
			if err != nil {
				return nil, fmt.Errorf("experiments: epoch %d digest: %w", e, err)
			}
			digest = d
		}
		if err := lg.CompleteEpoch(e, digest, w.ChurnDrawState()); err != nil {
			return nil, fmt.Errorf("experiments: epoch %d checkpoint: %w", e, err)
		}
	}
	return ep, nil
}

// SkipEpoch replays one epoch's world mutations — the boundary churn, the
// clock gaps, and the intra-epoch churn — without running any scans. The
// crash-resume path uses it to march a freshly built world through the
// epochs the observation log already holds: churn draws are hash-keyed on
// (seed, operation, epoch, entity), so the skipped epochs mutate the world
// exactly as the original run did, which World.ChurnDrawState verifies
// against the checkpoint manifest. Only the clock-advancing analyses of the
// skipped epochs (the MIDAR probe rounds) are not replayed; they never
// touch churn state or identifiers, so subsequent live epochs reproduce the
// original sets digests bit for bit.
func (s *EnvSeries) SkipEpoch() (EpochStats, error) {
	e := s.next
	if e >= s.opts.Epochs {
		return EpochStats{}, fmt.Errorf("experiments: series exhausted after %d epochs", s.opts.Epochs)
	}
	s.next++
	w := s.World
	var stats EpochStats
	stats.Epoch = e
	if e > 0 {
		w.Clock.Advance(s.opts.EpochGap)
		stats.EpochChurnStats = w.ApplyEpochChurn(s.opts.EpochChurn, e)
	}
	w.Clock.Advance(s.opts.SnapshotGap)
	if s.opts.ChurnFraction > 0 {
		stats.IntraChurned = w.ApplyChurn(s.opts.ChurnFraction, 2*e+1)
	}
	return stats, nil
}
