package experiments

import (
	"reflect"
	"testing"

	"aliaslimit/internal/topo"
)

// seriesOpts is the tiny-world base configuration for series tests.
func seriesOpts(parallelism int) SeriesOptions {
	cfg := topo.Default()
	cfg.Scale = 0.05
	return SeriesOptions{
		Options: Options{
			Topo: cfg,
			Scan: ScanOptions{Workers: 64, Parallelism: parallelism},
		},
		Epochs:     3,
		EpochChurn: topo.EpochChurn{Renumber: 0.2, Reboot: 0.1, WireDown: 0.1, WireUp: 0.5},
	}
}

// TestEnvSeriesFirstEpochMatchesBuildEnv pins the refactor: BuildEnv is the
// Epochs=1 special case, so a series' first epoch must reproduce it exactly.
func TestEnvSeriesFirstEpochMatchesBuildEnv(t *testing.T) {
	opts := seriesOpts(0)
	env, err := BuildEnv(opts.Options)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewEnvSeries(opts)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := s.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if ep.Stats.Epoch != 0 || ep.Stats.EpochChurnStats != (topo.EpochChurnStats{}) {
		t.Fatalf("epoch 0 must precede any boundary churn: %+v", ep.Stats)
	}
	for _, pair := range []struct {
		name string
		a, b *Dataset
	}{
		{"Active", env.Active, ep.Env.Active},
		{"Censys", env.Censys, ep.Env.Censys},
		{"Union", env.Both, ep.Env.Both},
	} {
		if !reflect.DeepEqual(pair.a.Obs, pair.b.Obs) {
			t.Fatalf("%s observations differ between BuildEnv and series epoch 0", pair.name)
		}
	}
}

// TestEnvSeriesDeterministicAcrossParallelism runs a full three-epoch series
// sequentially and fully pipelined and requires identical observations and
// churn stats in every epoch — the longitudinal extension of the collection
// determinism contract.
func TestEnvSeriesDeterministicAcrossParallelism(t *testing.T) {
	type epochSummary struct {
		stats EpochStats
		obs   map[string]int
	}
	run := func(parallelism int) []epochSummary {
		s, err := NewEnvSeries(seriesOpts(parallelism))
		if err != nil {
			t.Fatal(err)
		}
		var out []epochSummary
		for i := 0; i < s.Epochs(); i++ {
			ep, err := s.Advance()
			if err != nil {
				t.Fatal(err)
			}
			counts := make(map[string]int)
			for proto, obs := range ep.Env.Both.Obs {
				counts[proto.String()] = len(obs)
			}
			out = append(out, epochSummary{stats: ep.Stats, obs: counts})
		}
		return out
	}

	a, b := run(0), run(1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("series differs across parallelism:\n%+v\n%+v", a, b)
	}
}

// TestEnvSeriesEpochsChurnAndStayScorable advances all epochs and checks the
// boundary churn actually fired and each epoch carries its own truth
// snapshot, decoupled from the world's live (mutating) truth.
func TestEnvSeriesEpochsChurnAndStayScorable(t *testing.T) {
	s, err := NewEnvSeries(seriesOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	var epochs []*Epoch
	for i := 0; i < s.Epochs(); i++ {
		ep, err := s.Advance()
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, ep)
	}
	if _, err := s.Advance(); err == nil {
		t.Fatal("series allowed advancing past the configured epochs")
	}
	churned := 0
	for _, ep := range epochs[1:] {
		churned += ep.Stats.Renumbered + ep.Stats.Rebooted + ep.Stats.WiresDown
	}
	if churned == 0 {
		t.Fatal("no boundary churn across a three-epoch storm series")
	}
	// Epoch truths must be snapshots: the first epoch's truth keeps addresses
	// the storm later took away from their devices.
	first, last := epochs[0].Truth, epochs[len(epochs)-1].Truth
	if reflect.DeepEqual(first.SSHAddrs, last.SSHAddrs) {
		t.Fatal("SSH truth identical across a churn-storm series — snapshots not independent")
	}
	for _, ep := range epochs {
		if len(ep.Truth.SSHAddrs) == 0 || len(ep.Truth.SNMPAddrs) == 0 {
			t.Fatalf("epoch %d truth snapshot empty", ep.Stats.Epoch)
		}
		if len(ep.Env.Both.Obs) == 0 {
			t.Fatalf("epoch %d collected nothing", ep.Stats.Epoch)
		}
	}
}
