package experiments

// Out-of-core collection. In StreamCollect mode the scan workers' sinks
// write every observation straight into a per-protocol obslog spill and
// accumulate nothing (ScanOptions.DiscardObs), so the Datasets carry empty
// Obs slices; sealing is then a bounded replay pass that streams the folded
// epoch segment through the resolver sessions and derives the address
// universes in one pass per shard. Peak collection memory is O(alias-set
// output + arena + readahead), not O(observations) — the property the
// megascale-x100 preset depends on.
//
// The replay invariant: the log's canonical epoch fold orders records by
// (source, address, digest) and drops exact duplicates, and resolver
// sessions are order-insensitive by contract, so a streamed run's alias
// sets are byte-identical to the in-RAM run's on every backend — the same
// sets_digest, gated by the stream-equivalence tests.

import (
	"io"
	"net/netip"
	"sync/atomic"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obslog"
	"aliaslimit/internal/resolver"
)

// obsCounter is a counting ObservationSink: stream mode tees it onto the
// Censys scan sink so the non-standard-port model (a fixed fraction of the
// SSH population) still has its population size after the grabs themselves
// were discarded. Counts match len(Dataset.Obs[p]) of an in-RAM run because
// the tap fires under exactly the condition the batch path keeps a grab.
type obsCounter struct {
	n [numProto]atomic.Int64
}

// Observe implements ObservationSink.
func (c *obsCounter) Observe(p ident.Protocol, _ alias.Observation) { c.n[p].Add(1) }

// count returns how many observations the protocol delivered.
func (c *obsCounter) count(p ident.Protocol) int { return int(c.n[p].Load()) }

// streamSource backs a stream-collected Dataset: its observations live in
// one folded epoch of the observation log, not in RAM. It references the
// live Writer rather than raw byte offsets so every read resolves the
// epoch's segment under the writer's lock — safe across auto-compaction,
// which rewrites the shard files and their offsets mid-run.
type streamSource struct {
	log       *obslog.Writer
	epoch     int
	active    bool // dataset includes SourceActive records
	censys    bool // dataset includes SourceCensys records
	readahead int  // reader chunk size; 0 picks the obslog default

	// addrs holds the per-protocol sorted distinct address universes (both
	// families mixed), derived during the seal replay pass — the only
	// per-observation state a streamed dataset keeps resident.
	addrs [numProto][]netip.Addr
}

// reader opens a bounded-readahead reader over the dataset's epoch segment.
func (ss *streamSource) reader(p ident.Protocol) (*obslog.EpochReader, error) {
	return ss.log.EpochReaderAt(p, ss.epoch, obslog.ReadOptions{Readahead: ss.readahead})
}

// wants reports whether the dataset includes records from a campaign.
func (ss *streamSource) wants(src obslog.Source) bool {
	if src == obslog.SourceCensys {
		return ss.censys
	}
	return ss.active
}

// each streams the dataset's observations for one protocol, in the log's
// canonical (source, address, digest) order.
func (ss *streamSource) each(p ident.Protocol, fn func(alias.Observation)) error {
	r, err := ss.reader(p)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		src, o, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if ss.wants(src) {
			fn(o)
		}
	}
}

// EachObs visits every observation of one protocol in a deterministic
// order: the collection order for an in-RAM dataset, the log's canonical
// order for a stream-backed one. It is the iteration seam analyses use
// instead of reading Obs directly, so they work identically over both
// representations.
func (d *Dataset) EachObs(p ident.Protocol, fn func(alias.Observation)) error {
	if d.stream != nil {
		return d.stream.each(p, fn)
	}
	for _, o := range d.Obs[p] {
		fn(o)
	}
	return nil
}

// StreamBacked reports whether the dataset's observations live in the
// observation log rather than in RAM. Raw Obs reads are empty on such a
// dataset; every memoized view and EachObs work identically.
func (d *Dataset) StreamBacked() bool { return d != nil && d.stream != nil }

// appendAddr extends a sorted distinct address list with the next address
// of a sorted run — the log's canonical order makes consecutive-dedup
// sufficient, no hash set needed.
func appendAddr(addrs []netip.Addr, a netip.Addr) []netip.Addr {
	if n := len(addrs); n > 0 && addrs[n-1] == a {
		return addrs
	}
	return append(addrs, a)
}

// mergeAddrs merges two sorted distinct address lists into one.
func mergeAddrs(a, b []netip.Addr) []netip.Addr {
	out := make([]netip.Addr, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := a[i].Compare(b[j]); {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// filterFam narrows a sorted address list to one family; nil keeps both.
func filterFam(addrs []netip.Addr, v4 *bool) []netip.Addr {
	if v4 == nil {
		return addrs
	}
	out := make([]netip.Addr, 0, len(addrs))
	for _, a := range addrs {
		if a.Is4() == *v4 {
			out = append(out, a)
		}
	}
	return out
}

// readaheadFor maps a collection memory budget to a reader chunk size:
// roughly 1/64th of the budget, clamped to [64 KiB, 8 MiB]. 0 defers to the
// obslog default.
func readaheadFor(budget int64) int {
	if budget <= 0 {
		return 0
	}
	const lo, hi = 64 << 10, 8 << 20
	ra := budget / 64
	if ra < lo {
		return lo
	}
	if ra > hi {
		return hi
	}
	return int(ra)
}

// sealStreamed is seal's out-of-core counterpart: instead of adopting
// in-RAM observations, it replays the epoch's folded log segments through
// the resolver sessions in one bounded pass per shard, deriving the address
// universes along the way. Live-fed sessions (a live-feeding backend)
// already hold the resolution state, so the pass only derives addresses.
// Every dataset seals with live=true — its session is fully fed either way,
// and the empty Obs slices must never be replayed into it.
func (e *Env) sealStreamed(b resolver.Backend, activeSes, censysSes, unionSes resolver.Session) error {
	if b == nil {
		b = resolver.NewBatch()
	}
	e.backend = b
	open := func() (resolver.Session, error) { return b.Open(resolver.Options{}) }
	s, err := open()
	if err != nil {
		return err
	}
	e.session = s
	feed := activeSes == nil
	if feed {
		if activeSes, err = open(); err != nil {
			return err
		}
		if censysSes, err = open(); err != nil {
			activeSes.Close()
			return err
		}
		if unionSes, err = open(); err != nil {
			activeSes.Close()
			censysSes.Close()
			return err
		}
	}
	for _, p := range ident.Protocols {
		if err := e.streamSealPass(p, feed, activeSes, censysSes, unionSes); err != nil {
			if feed {
				activeSes.Close()
				censysSes.Close()
				unionSes.Close()
			}
			return err
		}
	}
	e.Active.SealWith(activeSes, true)
	e.Censys.SealWith(censysSes, true)
	e.Both.SealWith(unionSes, true)
	return nil
}

// streamSealPass replays one shard's folded epoch segment: when feed is set
// (a non-live backend) every record streams into its dataset's session and
// the union session, and in all cases the pass derives the three datasets'
// sorted distinct address universes for the protocol. A read error aborts
// the seal — no partial dataset is ever sealed from a defective segment.
func (e *Env) streamSealPass(p ident.Protocol, feed bool, activeSes, censysSes, unionSes resolver.Session) error {
	r, err := e.Both.stream.reader(p)
	if err != nil {
		return err
	}
	defer r.Close()
	var act, cen []netip.Addr
	for {
		src, o, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if src == obslog.SourceCensys {
			cen = appendAddr(cen, o.Addr)
			if feed {
				censysSes.Observe(o)
				unionSes.Observe(o)
			}
		} else {
			act = appendAddr(act, o.Addr)
			if feed {
				activeSes.Observe(o)
				unionSes.Observe(o)
			}
		}
	}
	e.Active.stream.addrs[p] = act
	e.Censys.stream.addrs[p] = cen
	e.Both.stream.addrs[p] = mergeAddrs(act, cen)
	return nil
}
