package experiments

import (
	"fmt"
	"net/netip"
	"sort"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/asview"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/midar"
	"aliaslimit/internal/xrand"
)

// mapper builds the AS attribution view of the environment.
func (e *Env) mapper() asview.Mapper {
	return asview.FromMap(e.World.AddrASN)
}

// Table1 regenerates the service-scanning dataset overview: responsive IPs
// and covered ASes per protocol for the active measurement, Censys, and
// their union, IPv4 on top and (active-only) IPv6 below.
func (e *Env) Table1() *Table {
	m := e.mapper()
	t := &Table{
		ID:     "Table 1",
		Title:  "Service Scanning Dataset Overview",
		Header: []string{"Protocol", "Active #IPs", "Active #ASN", "Censys #IPs", "Censys #ASN", "Union #IPs", "Union #ASN"},
	}
	cell := func(ds *Dataset, p ident.Protocol, v4 *bool) (string, string) {
		addrs := ds.Addrs(p, v4)
		return count(len(addrs)), count(asview.CountASNs(m, addrs))
	}
	for _, p := range []ident.Protocol{ident.SSH, ident.BGP, ident.SNMP} {
		aIPs, aAS := cell(e.Active, p, V4)
		var cIPs, cAS, uIPs, uAS string
		if p == ident.SNMP {
			cIPs, cAS, uIPs, uAS = "n.a", "n.a", "n.a", "n.a"
		} else {
			cIPs, cAS = cell(e.Censys, p, V4)
			uIPs, uAS = cell(e.Both, p, V4)
		}
		t.Rows = append(t.Rows, []string{p.String(), aIPs, aAS, cIPs, cAS, uIPs, uAS})
	}
	aAll := e.Active.AllAddrs(V4)
	cAll := e.Censys.AllAddrs(V4)
	uAll := e.Both.AllAddrs(V4)
	t.Rows = append(t.Rows, []string{"Union",
		count(len(aAll)), count(asview.CountASNs(m, aAll)),
		count(len(cAll)), count(asview.CountASNs(m, cAll)),
		count(len(uAll)), count(asview.CountASNs(m, uAll)),
	})
	for _, p := range []ident.Protocol{ident.SSH, ident.BGP, ident.SNMP} {
		aIPs, aAS := cell(e.Active, p, V6)
		t.Rows = append(t.Rows, []string{p.String() + " (IPv6)", aIPs, aAS, "n.a", "n.a", "n.a", "n.a"})
	}
	a6 := e.Active.AllAddrs(V6)
	t.Rows = append(t.Rows, []string{"Union (IPv6)",
		count(len(a6)), count(asview.CountASNs(m, a6)), "n.a", "n.a", "n.a", "n.a"})
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Censys additionally reports %s SSH IPs on non-standard ports (excluded, as in the paper)",
		count(e.Censys.NonStandardPortSSH)))
	return t
}

// Table2Config tunes the validation experiment.
type Table2Config struct {
	// MIDARSampleSize caps how many SSH sets the MIDAR run verifies;
	// 0 scales the paper's 61k sample by the world's Scale.
	MIDARSampleSize int
	// MIDAR tunes the IPID pipeline.
	MIDAR midar.Config
}

// ValidatePair runs the paper's §2.6 cross-protocol validation for two
// protocols over the active measurement, reusing the cached identifier
// groups and address universes: restrict both partitions to their common
// responsive addresses, then count exact-membership matches.
func (e *Env) ValidatePair(a, b ident.Protocol) (commonIPs int, res alias.ValidationResult) {
	common := commonAddrSet(e.Active.Addrs(a, nil), e.Active.Addrs(b, nil))
	aSets := alias.Restrict(e.Active.Sets(a), common)
	bSets := alias.Restrict(e.Active.Sets(b), common)
	return len(common), alias.MatchSets(aSets, bSets)
}

// commonAddrSet intersects two sorted address lists into a membership map.
func commonAddrSet(a, b []netip.Addr) map[netip.Addr]bool {
	common := make(map[netip.Addr]bool)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := a[i].Compare(b[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			common[a[i]] = true
			i++
			j++
		}
	}
	return common
}

// Table2 regenerates the alias-set validation table: cross-protocol
// exact-match comparisons on the active data and the SSH-vs-MIDAR run.
func (e *Env) Table2(cfg Table2Config) *Table {
	t := &Table{
		ID:     "Table 2",
		Title:  "Alias Sets Validation",
		Header: []string{"Pair", "Common IPs", "Sample size", "Agree", "Disagree", "Agreement"},
	}
	pair := func(name string, a, b ident.Protocol) {
		common, res := e.ValidatePair(a, b)
		t.Rows = append(t.Rows, []string{
			name, count(common), count(res.Sample), count(res.Agree), count(res.Disagree),
			fmt.Sprintf("%.0f%%", 100*res.AgreementRate()),
		})
	}
	pair("SSH-BGP", ident.SSH, ident.BGP)
	pair("SSH-SNMPv3", ident.SSH, ident.SNMP)
	pair("BGP-SNMPv3", ident.BGP, ident.SNMP)

	// SSH vs MIDAR: sample non-singleton IPv4 SSH sets with at most ten
	// addresses (the paper's constraint to bound the run time), verify each
	// with the IPID pipeline. The run is memoized per configuration.
	run := e.MIDARRun(cfg.MIDARSampleSize, cfg.MIDAR)
	sample, tally := run.Sample, run.Tally
	verifiable := tally.Verifiable()
	rate := 0.0
	if verifiable > 0 {
		rate = float64(tally.Confirmed) / float64(verifiable)
	}
	t.Rows = append(t.Rows, []string{
		"SSH-MIDAR", count(len(sample)), count(verifiable),
		count(tally.Confirmed), count(tally.Split), fmt.Sprintf("%.0f%%", 100*rate),
	})
	frac := 0.0
	if len(sample) > 0 {
		frac = float64(verifiable) / float64(len(sample))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"MIDAR could verify %.0f%% of the sampled sets (%d of %d); the rest lack usable IPID counters",
		100*frac, verifiable, len(sample)))
	return t
}

// midarSample picks the candidate SSH sets for the MIDAR comparison.
func (e *Env) midarSample(max int) []alias.Set {
	if max <= 0 {
		max = int(61 * e.World.Cfg.Scale)
		if max < 5 {
			max = 5
		}
	}
	sets := e.Active.NonSingletonFamilySets(ident.SSH, true)
	var eligible []alias.Set
	for _, s := range sets {
		if s.Size() <= 10 {
			eligible = append(eligible, s)
		}
	}
	// Deterministic sample: shuffle by stable hash of the binary set key.
	sort.Slice(eligible, func(i, j int) bool {
		return xrand.Hash64("midar-sample", string(eligible[i].Key())) <
			xrand.Hash64("midar-sample", string(eligible[j].Key()))
	})
	if len(eligible) > max {
		eligible = eligible[:max]
	}
	return eligible
}

// Table3 regenerates the alias-sets overview: non-singleton set counts and
// covered addresses per protocol and source, with the cross-protocol union.
func (e *Env) Table3() *Table {
	t := &Table{
		ID:     "Table 3",
		Title:  "Alias Sets Overview (non-singleton sets, covered addrs)",
		Header: []string{"Family", "Source", "Active", "Censys", "Union"},
	}
	cellFor := func(ds *Dataset, p ident.Protocol, v4 bool) string {
		ns := ds.NonSingletonFamilySets(p, v4)
		return setsAndAddrs(len(ns), alias.CoveredAddrs(ns))
	}
	unionCell := func(ds *Dataset, v4 bool) string {
		ns := ds.MergedFamilyNonSingleton(v4)
		return setsAndAddrs(len(ns), alias.CoveredAddrs(ns))
	}
	for _, row := range []struct {
		p    ident.Protocol
		name string
	}{{ident.SSH, "SSH"}, {ident.BGP, "BGP"}, {ident.SNMP, "SNMPv3"}} {
		censys := "n.a"
		union := "n.a"
		if row.p != ident.SNMP {
			censys = cellFor(e.Censys, row.p, true)
			union = cellFor(e.Both, row.p, true)
		} else {
			union = cellFor(e.Active, row.p, true) // SNMP has one source
		}
		t.Rows = append(t.Rows, []string{"IPv4", row.name, cellFor(e.Active, row.p, true), censys, union})
	}
	t.Rows = append(t.Rows, []string{"IPv4", "Union", unionCell(e.Active, true), unionCell(e.Censys, true), unionCell(e.Both, true)})
	for _, row := range []struct {
		p    ident.Protocol
		name string
	}{{ident.SSH, "SSH"}, {ident.BGP, "BGP"}, {ident.SNMP, "SNMPv3"}} {
		t.Rows = append(t.Rows, []string{"IPv6", row.name, cellFor(e.Active, row.p, false), "n.a", "n.a"})
	}
	t.Rows = append(t.Rows, []string{"IPv6", "Union", unionCell(e.Active, false), "n.a", "n.a"})

	t.Notes = append(t.Notes, e.singleServiceNote(true), e.snmpExclusivityNote(true))
	return t
}

// singleServiceNote computes the paper's "97% of covered addresses respond
// to a single service" statistic.
func (e *Env) singleServiceNote(v4 bool) string {
	services := make(map[netip.Addr]int)
	mark := func(p ident.Protocol) {
		for _, a := range e.Both.Addrs(p, boolPtr(v4)) {
			services[a]++
		}
	}
	mark(ident.SSH)
	mark(ident.BGP)
	mark(ident.SNMP)
	single, multi := 0, 0
	for _, n := range services {
		if n == 1 {
			single++
		} else {
			multi++
		}
	}
	total := single + multi
	if total == 0 {
		return "no responsive addresses"
	}
	fam := "IPv4"
	if !v4 {
		fam = "IPv6"
	}
	return fmt.Sprintf("%s: %.0f%% of responsive addresses answer exactly one service (%d of %d)",
		fam, 100*float64(single)/float64(total), single, total)
}

// snmpExclusivityNote computes the share of union sets only SNMPv3 finds —
// the paper's headline "60% (more than double SNMPv3 alone) come from SSH or
// BGP".
func (e *Env) snmpExclusivityNote(v4 bool) string {
	ssh := e.Both.NonSingletonFamilySets(ident.SSH, v4)
	bgpSets := e.Both.NonSingletonFamilySets(ident.BGP, v4)
	snmp := e.Both.NonSingletonFamilySets(ident.SNMP, v4)
	merged := e.Both.MergedFamilyNonSingleton(v4)
	newProto := alias.AddrSet(append(append([]alias.Set(nil), ssh...), bgpSets...))
	onlySNMP := 0
	for _, s := range merged {
		hasNew := false
		for _, a := range s.Addrs {
			if newProto[a] {
				hasNew = true
				break
			}
		}
		if !hasNew {
			onlySNMP++
		}
	}
	if len(merged) == 0 {
		return "no union sets"
	}
	fam := "IPv4"
	if !v4 {
		fam = "IPv6"
	}
	pct := 100 * float64(onlySNMP) / float64(len(merged))
	return fmt.Sprintf("%s: %.0f%% of union sets identifiable only via SNMPv3; %.0f%% via SSH or BGP (×%.1f vs SNMPv3 alone)",
		fam, pct, 100-pct, float64(len(merged)-onlySNMP)/maxF(float64(len(snmp)), 1))
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func boolPtr(v bool) *bool { return &v }

// Table4 regenerates the dual-stack table: per protocol, the IPv4 and IPv6
// addresses covered by dual-stack sets and the set counts, plus the union.
func (e *Env) Table4() *Table {
	t := &Table{
		ID:     "Table 4",
		Title:  "Dual-Stack Sets",
		Header: []string{"Protocol", "IPv4 addr", "IPv6 addr", "Dual-Stack Sets"},
	}
	row := func(name string, ds []alias.Set) {
		v4, v6 := 0, 0
		for _, s := range ds {
			v4 += s.V4Count()
			v6 += s.V6Count()
		}
		t.Rows = append(t.Rows, []string{name, count(v4), count(v6), count(len(ds))})
	}
	row("SSH", alias.DualStack(e.Both.Sets(ident.SSH)))
	row("BGP", alias.DualStack(e.Both.Sets(ident.BGP)))
	row("SNMPv3", alias.DualStack(e.Both.Sets(ident.SNMP)))
	row("Union", e.DualStackSets())

	// The paper's set-size remark: 88% of dual-stack sets pair exactly one
	// IPv4 with one IPv6 address.
	ds := e.DualStackSets()
	pairs := 0
	for _, s := range ds {
		if s.Size() == 2 {
			pairs++
		}
	}
	if len(ds) > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%.0f%% of union dual-stack sets contain exactly one IPv4 and one IPv6 address",
			100*float64(pairs)/float64(len(ds))))
		v6WithV4 := 0
		for _, s := range ds {
			v6WithV4 += s.V6Count()
		}
		all6 := len(e.Both.AllAddrs(V6))
		if all6 > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%.0f%% of known IPv6 addresses have an IPv4 counterpart",
				100*float64(v6WithV4)/float64(all6)))
		}
	}
	return t
}

// Table5 regenerates the top-10 ASes for IPv4 alias sets, per protocol and
// for the union.
func (e *Env) Table5() *Table {
	m := e.mapper()
	t := &Table{
		ID:     "Table 5",
		Title:  "Top 10 ASes for IPv4 alias sets (ASN (sets))",
		Header: []string{"Rank", "SSH", "BGP", "SNMPv3", "Union"},
	}
	top := func(ns []alias.Set) []asview.ASCount {
		return asview.Top(asview.SetsPerAS(m, ns), 10)
	}
	ssh := top(e.Both.NonSingletonFamilySets(ident.SSH, true))
	bgpT := top(e.Both.NonSingletonFamilySets(ident.BGP, true))
	snmp := top(e.Active.NonSingletonFamilySets(ident.SNMP, true))
	union := top(e.UnionFamilyNonSingleton(true))
	cell := func(list []asview.ASCount, i int) string {
		if i >= len(list) {
			return "-"
		}
		return fmt.Sprintf("%d (%s)", list[i].ASN, count(list[i].Sets))
	}
	for i := 0; i < 10; i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i + 1), cell(ssh, i), cell(bgpT, i), cell(snmp, i), cell(union, i),
		})
	}
	return t
}

// Table6 regenerates the top-10 ASes for IPv6 alias sets and for dual-stack
// sets (union of all protocols).
func (e *Env) Table6() *Table {
	m := e.mapper()
	t := &Table{
		ID:     "Table 6",
		Title:  "Top 10 ASes for IPv6 alias and dual-stack sets (ASN (sets))",
		Header: []string{"Rank", "IPv6", "Dual-stack"},
	}
	v6Union := e.Active.MergedFamilyNonSingleton(false)
	v6Top := asview.Top(asview.SetsPerAS(m, v6Union), 10)
	dsUnion := e.DualStackSets()
	dsTop := asview.Top(asview.SetsPerAS(m, dsUnion), 10)
	cell := func(list []asview.ASCount, i int) string {
		if i >= len(list) {
			return "-"
		}
		return fmt.Sprintf("%d (%s)", list[i].ASN, count(list[i].Sets))
	}
	for i := 0; i < 10; i++ {
		t.Rows = append(t.Rows, []string{fmt.Sprint(i + 1), cell(v6Top, i), cell(dsTop, i)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("IPv6 alias sets spread over %d ASes; dual-stack sets over %d ASes",
			len(asview.SetsPerAS(m, v6Union)), len(asview.SetsPerAS(m, dsUnion))))
	return t
}
