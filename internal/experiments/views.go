package experiments

import (
	"net/netip"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/midar"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/topo"
)

// This file is the memoized analysis layer. A Dataset is sealed once
// collection completes; from then on every derived view — identifier groups,
// family filters, non-singleton filters, address universes, merged
// partitions — is computed at most once and shared by every table, figure,
// and facade accessor. All views are computed under sync.Once, so concurrent
// artifact generation (Env.RenderAll) is safe and deterministic: the first
// caller computes, everyone else reads.
//
// Returned slices are shared views: callers must treat them as read-only.

// numProto is the number of identifier protocols the views index by.
const numProto = 3

// famIdx maps an address family to its view slot.
func famIdx(v4 bool) int {
	if v4 {
		return 0
	}
	return 1
}

// selIdx maps an Addrs family selector (nil / V4 / V6) to its view slot.
func selIdx(v4 *bool) int {
	switch {
	case v4 == nil:
		return 0
	case *v4:
		return 1
	default:
		return 2
	}
}

// memo is a lazily computed, concurrency-safe cache cell.
type memo[T any] struct {
	once sync.Once
	v    T
}

// get returns the cached value, computing it on first use.
func (m *memo[T]) get(f func() T) T {
	m.once.Do(func() { m.v = f() })
	return m.v
}

// datasetViews caches every per-dataset derivation.
type datasetViews struct {
	groups   [numProto]memo[[]alias.Set]     // Group per protocol
	nsAll    [numProto]memo[[]alias.Set]     // NonSingleton(Group)
	fam      [numProto][2]memo[[]alias.Set]  // FilterFamily(Group)
	famNS    [numProto][2]memo[[]alias.Set]  // NonSingleton(FilterFamily)
	merged   [2]memo[[]alias.Set]            // per-family merge of the three famNS
	mergedNS [2]memo[[]alias.Set]            // NonSingleton(merged)
	addrs    [numProto][3]memo[[]netip.Addr] // per-protocol address universes
	allAddrs [3]memo[[]netip.Addr]           // cross-protocol address universes

	// session is the open resolver session every grouping and merge in this
	// dataset's views routes through; sessions are concurrency-safe, so no
	// extra serialisation is needed here.
	session resolver.Session
	// live records that session was fed observation-by-observation during
	// collection (a live-feeding backend — streaming or distributed), so its
	// resolution state already covers the dataset and Sets never replays the
	// sealed observations into it.
	live bool
}

// Seal freezes the dataset for analysis with a fresh batch resolver session:
// mutation panics from here on, and derived views are cached. Sealing twice
// is a no-op.
func (d *Dataset) Seal() { d.SealWith(nil, false) }

// SealWith is Seal with an explicit open resolver session; nil selects a
// fresh batch session. live marks a session that was already fed during
// collection (see datasetViews.live). The session choice never changes a
// single byte of any view — only the execution strategy (see
// internal/resolver).
func (d *Dataset) SealWith(s resolver.Session, live bool) {
	if d.views == nil {
		if s == nil {
			s = mustBatchSession()
			live = false
		}
		d.views = &datasetViews{session: s, live: live}
	}
}

// mustBatchSession opens a session on a fresh batch backend — the default
// resolver, whose Open never fails.
func mustBatchSession() resolver.Session {
	s, err := resolver.NewBatch().Open(resolver.Options{})
	if err != nil {
		panic("experiments: batch backend refused to open: " + err.Error())
	}
	return s
}

// Sealed reports whether the dataset has been sealed.
func (d *Dataset) Sealed() bool { return d.views != nil }

// mustBeUnsealed guards the mutating methods.
func (d *Dataset) mustBeUnsealed() {
	if d.views != nil {
		panic("experiments: dataset " + d.Name + " is sealed; collection must complete before analysis")
	}
}

// NonSingletonSets returns the protocol's non-singleton identifier groups
// (both families).
func (d *Dataset) NonSingletonSets(p ident.Protocol) []alias.Set {
	f := func() []alias.Set { return alias.NonSingleton(d.Sets(p)) }
	if v := d.views; v != nil {
		return v.nsAll[p].get(f)
	}
	return f()
}

// FamilySets returns the protocol's identifier groups filtered to one
// address family (all sizes).
func (d *Dataset) FamilySets(p ident.Protocol, v4 bool) []alias.Set {
	f := func() []alias.Set { return alias.FilterFamily(d.Sets(p), v4) }
	if v := d.views; v != nil {
		return v.fam[p][famIdx(v4)].get(f)
	}
	return f()
}

// NonSingletonFamilySets returns the non-singleton subset of FamilySets —
// the unit every per-protocol table cell counts.
func (d *Dataset) NonSingletonFamilySets(p ident.Protocol, v4 bool) []alias.Set {
	f := func() []alias.Set { return alias.NonSingleton(d.FamilySets(p, v4)) }
	if v := d.views; v != nil {
		return v.famNS[p][famIdx(v4)].get(f)
	}
	return f()
}

// MergedFamily returns the dataset's cross-protocol union partition for one
// family: the merge of its three per-protocol non-singleton views.
func (d *Dataset) MergedFamily(v4 bool) []alias.Set {
	f := func() []alias.Set {
		ssh := d.NonSingletonFamilySets(ident.SSH, v4)
		bgpS := d.NonSingletonFamilySets(ident.BGP, v4)
		snmp := d.NonSingletonFamilySets(ident.SNMP, v4)
		if v := d.views; v != nil {
			return v.session.Merged(ssh, bgpS, snmp)
		}
		return alias.Merge(ssh, bgpS, snmp)
	}
	if v := d.views; v != nil {
		return v.merged[famIdx(v4)].get(f)
	}
	return f()
}

// MergedFamilyNonSingleton filters MergedFamily to sets of two or more
// addresses.
func (d *Dataset) MergedFamilyNonSingleton(v4 bool) []alias.Set {
	f := func() []alias.Set { return alias.NonSingleton(d.MergedFamily(v4)) }
	if v := d.views; v != nil {
		return v.mergedNS[famIdx(v4)].get(f)
	}
	return f()
}

// envViews caches the cross-dataset derivations: the canonical union
// partitions (SSH and BGP from the union dataset, SNMPv3 from the active
// scan, as the paper combines them), the all-family dual-stack merge, and
// the MIDAR verification runs.
type envViews struct {
	unionFam   [2]memo[[]alias.Set]
	unionFamNS [2]memo[[]alias.Set]
	dualMerged memo[[]alias.Set]
	dualStack  memo[[]alias.Set]

	mu        sync.Mutex
	midarRuns map[midarKey]*MIDARResult
}

// midarKey identifies one memoized MIDAR verification run.
type midarKey struct {
	sample int
	cfg    midar.Config
}

// MIDARResult is the cached outcome of one MIDAR verification pass.
type MIDARResult struct {
	// Sample is the candidate sets handed to the pipeline.
	Sample []alias.Set
	// Results is the per-set outcome list.
	Results []midar.SetResult
	// Tally aggregates the outcomes.
	Tally midar.Tally
}

// seal freezes all three datasets after collection on one resolver backend;
// nil selects batch. Each dataset gets its own open session (and the env
// keeps one for the cross-dataset merges), so the concurrent render paths
// keep the merge parallelism the per-dataset tables used to provide. When
// collection already fed live sessions (a live-feeding backend), they are
// passed in and adopted as the datasets' resolution state.
func (e *Env) seal(b resolver.Backend, activeSes, censysSes, unionSes resolver.Session) error {
	if b == nil {
		b = resolver.NewBatch()
	}
	e.backend = b
	open := func() (resolver.Session, error) { return b.Open(resolver.Options{}) }
	s, err := open()
	if err != nil {
		return err
	}
	e.session = s
	live := activeSes != nil
	if !live {
		if activeSes, err = open(); err != nil {
			return err
		}
		if censysSes, err = open(); err != nil {
			return err
		}
		if unionSes, err = open(); err != nil {
			return err
		}
	}
	e.Active.SealWith(activeSes, live)
	e.Censys.SealWith(censysSes, live)
	e.Both.SealWith(unionSes, live)
	return nil
}

// Resolver returns the backend the environment's views resolve through.
func (e *Env) Resolver() resolver.Backend { return e.backend }

// Close releases the environment's resolver sessions. For the in-process
// backends this is a no-op; for the distributed backend it deletes the
// remote shard sessions and surfaces any sticky worker failure. Idempotent;
// the analysis views already computed stay readable.
func (e *Env) Close() error {
	var err error
	e.closeOnce.Do(func() {
		for _, s := range []resolver.Session{e.session, e.Active.session(), e.Censys.session(), e.Both.session()} {
			if s == nil {
				continue
			}
			if cerr := s.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if e.onClose != nil {
			if cerr := e.onClose(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// session exposes a dataset's open resolver session, nil before sealing.
func (d *Dataset) session() resolver.Session {
	if d == nil || d.views == nil {
		return nil
	}
	return d.views.session
}

// UnionFamilySets returns the canonical cross-protocol union partition for
// one family: SSH and BGP from the union dataset, SNMPv3 from the active
// scan (its single source), merged.
func (e *Env) UnionFamilySets(v4 bool) []alias.Set {
	return e.views.unionFam[famIdx(v4)].get(func() []alias.Set {
		return e.session.Merged(
			e.Both.NonSingletonFamilySets(ident.SSH, v4),
			e.Both.NonSingletonFamilySets(ident.BGP, v4),
			e.Active.NonSingletonFamilySets(ident.SNMP, v4),
		)
	})
}

// UnionFamilyNonSingleton filters UnionFamilySets to non-singleton sets —
// the paper's headline union alias-set count.
func (e *Env) UnionFamilyNonSingleton(v4 bool) []alias.Set {
	return e.views.unionFamNS[famIdx(v4)].get(func() []alias.Set {
		return alias.NonSingleton(e.UnionFamilySets(v4))
	})
}

// DualStackMerged returns the all-family merge of every protocol's union
// identifier groups — the partition dual-stack analysis reads.
func (e *Env) DualStackMerged() []alias.Set {
	return e.views.dualMerged.get(func() []alias.Set {
		return e.session.Merged(
			e.Both.Sets(ident.SSH), e.Both.Sets(ident.BGP), e.Both.Sets(ident.SNMP))
	})
}

// DualStackSets returns the union dual-stack sets (each spans both
// families).
func (e *Env) DualStackSets() []alias.Set {
	return e.views.dualStack.get(func() []alias.Set {
		return alias.DualStack(e.DualStackMerged())
	})
}

// MIDARRun verifies the sampled SSH sets with the IPID pipeline, memoized
// per (sample size, config). The pipeline advances the world's simulated
// clock while probing, so memoization also pins the measurement chronology:
// one verification run per configuration, no matter how many tables or
// accessors ask for the tally.
func (e *Env) MIDARRun(maxSets int, cfg midar.Config) *MIDARResult {
	key := midarKey{sample: maxSets, cfg: cfg}
	e.views.mu.Lock()
	defer e.views.mu.Unlock()
	if r, ok := e.views.midarRuns[key]; ok {
		return r
	}
	sample := e.midarSample(maxSets)
	session := midar.NewSession(e.World.Fabric.Vantage(topo.VantageMIDAR), e.World.Clock, cfg)
	results, tally := session.VerifySets(sample)
	r := &MIDARResult{Sample: sample, Results: results, Tally: tally}
	if e.views.midarRuns == nil {
		e.views.midarRuns = make(map[midarKey]*MIDARResult)
	}
	e.views.midarRuns[key] = r
	return r
}
