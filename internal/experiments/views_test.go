package experiments

import (
	"reflect"
	"strings"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/topo"
)

// TestSealedViewsMatchDirect asserts the memoization contract: every cached
// view on a sealed dataset is identical to the direct recomputation from the
// raw observations, and stays identical on repeated access.
func TestSealedViewsMatchDirect(t *testing.T) {
	e := testEnv(t)
	for _, ds := range []*Dataset{e.Active, e.Censys, e.Both} {
		if !ds.Sealed() {
			t.Fatalf("dataset %s not sealed by BuildEnv", ds.Name)
		}
		for _, p := range ident.Protocols {
			direct := alias.Group(ds.Obs[p])
			if !reflect.DeepEqual(ds.Sets(p), direct) {
				t.Errorf("%s %s: cached Sets != direct Group", ds.Name, p)
			}
			if !reflect.DeepEqual(ds.NonSingletonSets(p), alias.NonSingleton(direct)) {
				t.Errorf("%s %s: cached NonSingletonSets diverges", ds.Name, p)
			}
			for _, v4 := range []bool{true, false} {
				fam := alias.FilterFamily(direct, v4)
				if !reflect.DeepEqual(ds.FamilySets(p, v4), fam) {
					t.Errorf("%s %s v4=%v: cached FamilySets diverges", ds.Name, p, v4)
				}
				if !reflect.DeepEqual(ds.NonSingletonFamilySets(p, v4), alias.NonSingleton(fam)) {
					t.Errorf("%s %s v4=%v: cached NonSingletonFamilySets diverges", ds.Name, p, v4)
				}
			}
			for _, sel := range []*bool{nil, V4, V6} {
				if !reflect.DeepEqual(ds.Addrs(p, sel), distinctAddrs(ds.Obs[p], sel)) {
					t.Errorf("%s %s: cached Addrs diverges", ds.Name, p)
				}
			}
		}
		for _, v4 := range []bool{true, false} {
			direct := alias.Merge(
				alias.NonSingleton(alias.FilterFamily(alias.Group(ds.Obs[ident.SSH]), v4)),
				alias.NonSingleton(alias.FilterFamily(alias.Group(ds.Obs[ident.BGP]), v4)),
				alias.NonSingleton(alias.FilterFamily(alias.Group(ds.Obs[ident.SNMP]), v4)),
			)
			if !reflect.DeepEqual(ds.MergedFamily(v4), direct) {
				t.Errorf("%s v4=%v: cached MergedFamily != direct Merge", ds.Name, v4)
			}
		}
		// Second read returns the same view (memoized, not recomputed).
		a := ds.Sets(ident.SSH)
		b := ds.Sets(ident.SSH)
		if len(a) > 0 && &a[0] != &b[0] {
			t.Errorf("%s: repeated Sets() returned a different slice", ds.Name)
		}
	}

	for _, v4 := range []bool{true, false} {
		direct := alias.Merge(
			alias.NonSingleton(alias.FilterFamily(alias.Group(e.Both.Obs[ident.SSH]), v4)),
			alias.NonSingleton(alias.FilterFamily(alias.Group(e.Both.Obs[ident.BGP]), v4)),
			alias.NonSingleton(alias.FilterFamily(alias.Group(e.Active.Obs[ident.SNMP]), v4)),
		)
		if !reflect.DeepEqual(e.UnionFamilySets(v4), direct) {
			t.Errorf("v4=%v: cached UnionFamilySets != direct", v4)
		}
		if !reflect.DeepEqual(e.UnionFamilyNonSingleton(v4), alias.NonSingleton(direct)) {
			t.Errorf("v4=%v: cached UnionFamilyNonSingleton != direct", v4)
		}
	}
	directDual := alias.DualStack(alias.Merge(
		alias.Group(e.Both.Obs[ident.SSH]),
		alias.Group(e.Both.Obs[ident.BGP]),
		alias.Group(e.Both.Obs[ident.SNMP]),
	))
	if !reflect.DeepEqual(e.DualStackSets(), directDual) {
		t.Error("cached DualStackSets != direct recomputation")
	}
}

// TestSealedDatasetRejectsMutation asserts the sealed-Dataset invariant.
func TestSealedDatasetRejectsMutation(t *testing.T) {
	ds := NewDataset("t")
	ds.Add(ident.SSH, alias.Observation{})
	ds.Seal()
	ds.Seal() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("Add on a sealed dataset did not panic")
		}
	}()
	ds.Add(ident.SSH, alias.Observation{})
}

// buildTwinEnvs constructs two identical environments from one seed.
func buildTwinEnvs(t *testing.T, seed uint64) (*Env, *Env) {
	t.Helper()
	mk := func() *Env {
		cfg := topo.Default()
		cfg.Scale = 0.05
		cfg.Seed = seed
		e, err := BuildEnv(Options{Topo: cfg, Scan: ScanOptions{Workers: 64}})
		if err != nil {
			t.Fatalf("BuildEnv(seed=%d): %v", seed, err)
		}
		return e
	}
	return mk(), mk()
}

// TestRenderAllMatchesSequential asserts that the concurrent artifact
// generator produces byte-identical output to rendering each artifact
// sequentially in paper order on an identical twin environment, at two
// seeds.
func TestRenderAllMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("builds four worlds")
	}
	for _, seed := range []uint64{5, 19} {
		par, seq := buildTwinEnvs(t, seed)
		got := par.RenderAll()
		var sb strings.Builder
		for _, out := range []string{
			seq.Table1().Render(), seq.Table2(Table2Config{}).Render(),
			seq.Table3().Render(), seq.Table4().Render(),
			seq.Table5().Render(), seq.Table6().Render(),
			seq.Figure3().Render(), seq.Figure4().Render(),
			seq.Figure5().Render(), seq.Figure6().Render(),
		} {
			sb.WriteString(out)
			sb.WriteByte('\n')
		}
		if got != sb.String() {
			t.Errorf("seed %d: concurrent RenderAll differs from sequential render", seed)
		}
		// Re-rendering on the same env reuses the memoized views and stays
		// byte-identical.
		if again := par.RenderAll(); again != got {
			t.Errorf("seed %d: second RenderAll differs from first", seed)
		}
	}
}

// TestBuildWorkersDeterministic asserts that sharded world construction
// yields byte-identical measurements: two worlds built with different
// BuildWorkers settings produce deeply equal datasets under full collection,
// at two seeds.
func TestBuildWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and scans four worlds")
	}
	for _, seed := range []uint64{3, 9} {
		collect := func(workers int) *Dataset {
			cfg := topo.Default()
			cfg.Scale = 0.05
			cfg.Seed = seed
			cfg.BuildWorkers = workers
			w, err := topo.Build(cfg)
			if err != nil {
				t.Fatalf("Build(seed=%d, workers=%d): %v", seed, workers, err)
			}
			ds, err := CollectActive(w, ScanOptions{Workers: 64, Seed: seed})
			if err != nil {
				t.Fatalf("CollectActive(seed=%d, workers=%d): %v", seed, workers, err)
			}
			return ds
		}
		seqDS := collect(1)
		parDS := collect(8)
		for _, p := range ident.Protocols {
			if !reflect.DeepEqual(seqDS.Obs[p], parDS.Obs[p]) {
				t.Errorf("seed %d: %s observations differ between BuildWorkers=1 and =8 (%d vs %d)",
					seed, p, len(seqDS.Obs[p]), len(parDS.Obs[p]))
			}
		}
	}
}
