// Package hitlist models the IPv6 hitlist problem: the IPv6 space cannot be
// swept, so active scans target a curated list of known-responsive
// addresses (Gasser et al., IMC '18). A hitlist always lags reality, which
// bounds the paper's IPv6 results — its §2.7 notes the limitation
// explicitly. Sample reproduces that: it covers only a configurable
// fraction of the addresses that actually exist.
package hitlist

import (
	"net/netip"
	"sort"

	"aliaslimit/internal/xrand"
)

// Sample returns a deterministic pseudo-random subset of the true IPv6
// population with approximately the given coverage (0..1). The selection is
// keyed per address so growing the population does not reshuffle prior
// members — just like a real hitlist accretes.
func Sample(population []netip.Addr, coverage float64, seed uint64) []netip.Addr {
	if coverage >= 1 {
		out := append([]netip.Addr(nil), population...)
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		return out
	}
	if coverage <= 0 {
		return nil
	}
	var out []netip.Addr
	seedKey := string(rune(seed)) // stable per-seed discriminator
	for _, a := range population {
		if xrand.Prob("hitlist", seedKey, a.String()) < coverage {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
