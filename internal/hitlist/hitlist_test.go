package hitlist

import (
	"net/netip"
	"testing"
)

func population(n int) []netip.Addr {
	var out []netip.Addr
	for i := 0; i < n; i++ {
		var b [16]byte
		b[0], b[1] = 0x2a, 0x00
		b[14], b[15] = byte(i>>8), byte(i)
		out = append(out, netip.AddrFrom16(b))
	}
	return out
}

func TestSampleCoverage(t *testing.T) {
	pop := population(4000)
	got := Sample(pop, 0.75, 1)
	frac := float64(len(got)) / float64(len(pop))
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("coverage = %.3f, want ~0.75", frac)
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatal("hitlist not sorted")
		}
	}
}

func TestSampleDeterministicAndStable(t *testing.T) {
	pop := population(1000)
	a := Sample(pop, 0.5, 3)
	b := Sample(pop, 0.5, 3)
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	// Accretion property: members chosen from a smaller population remain
	// chosen when the population grows.
	small := Sample(pop[:500], 0.5, 3)
	inBig := map[netip.Addr]bool{}
	for _, x := range a {
		inBig[x] = true
	}
	for _, x := range small {
		if !inBig[x] {
			t.Fatalf("address %s dropped when population grew", x)
		}
	}
}

func TestSampleEdges(t *testing.T) {
	pop := population(100)
	if got := Sample(pop, 1.0, 1); len(got) != 100 {
		t.Errorf("full coverage = %d", len(got))
	}
	if got := Sample(pop, 0, 1); got != nil {
		t.Errorf("zero coverage = %v", got)
	}
	if got := Sample(nil, 0.5, 1); len(got) != 0 {
		t.Errorf("empty population = %v", got)
	}
}
