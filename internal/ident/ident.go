// Package ident implements the paper's central idea: protocol-specific
// device identifiers extracted from application-layer handshake material.
//
// Two addresses that present the same identifier are inferred to be aliases
// of one device; an IPv4 and an IPv6 address with the same identifier form a
// dual-stack pair. The package defines one extractor per protocol:
//
//   - SSH: service banner + the ten preference-ordered KEXINIT algorithm
//     name-lists + the server host key (§2.2 of the paper). The key alone is
//     almost unique, but 0.4% of multi-address hosts announce different
//     capabilities per interface, so key and capabilities are combined.
//   - BGP: every host-wide field of the unsolicited OPEN message — Length,
//     Version, My-AS (and the 4-octet-AS capability), Hold Time, BGP
//     Identifier, and the optional-parameter capabilities (§2.3).
//   - SNMPv3: the USM authoritative engine ID (prior work, the baseline).
//
// Identifiers are canonicalised into a stable preimage string and compacted
// to a SHA-256 digest. Equality of digests is equality of identifiers.
package ident

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"aliaslimit/internal/bgp"
	"aliaslimit/internal/sshwire"
)

// Protocol enumerates identifier-bearing protocols.
type Protocol uint8

const (
	// SSH is the Secure Shell identifier (banner+capabilities+host key).
	SSH Protocol = iota
	// BGP is the OPEN-message identifier.
	BGP
	// SNMP is the SNMPv3 engine-ID identifier (baseline technique).
	SNMP
	numProtocols
)

// Protocols lists all protocols in display order.
var Protocols = []Protocol{SSH, BGP, SNMP}

// String returns the protocol name used in tables.
func (p Protocol) String() string {
	switch p {
	case SSH:
		return "SSH"
	case BGP:
		return "BGP"
	case SNMP:
		return "SNMPv3"
	default:
		return "unknown"
	}
}

// Identifier is one extracted device identifier.
type Identifier struct {
	// Proto is the protocol the identifier came from.
	Proto Protocol
	// Digest is the SHA-256 of the canonical preimage, hex-encoded.
	// Identifiers are equal iff (Proto, Digest) are equal.
	Digest string
}

// Key returns a single map key combining protocol and digest. Identifiers
// from different protocols never compare equal, even on digest collision of
// crafted preimages.
func (id Identifier) Key() string { return id.Proto.String() + ":" + id.Digest }

// digest canonicalises a preimage.
func digest(proto Protocol, preimage string) Identifier {
	sum := sha256.Sum256([]byte(preimage))
	return Identifier{Proto: proto, Digest: hex.EncodeToString(sum[:])}
}

// FromSSH extracts the paper's SSH identifier from a scan result. ok is
// false when the scan lacks either half of the material (no banner/KEXINIT,
// or no host key).
func FromSSH(res *sshwire.ScanResult) (Identifier, bool) {
	if !res.HasIdentifierMaterial() {
		return Identifier{}, false
	}
	return digest(SSH, SSHPreimage(res)), true
}

// SSHPreimage renders the canonical identifier preimage: banner, the ten
// name-lists verbatim (order is meaning: RFC 4253 mandates preference
// order), and the host key fingerprint. Exported for ablation experiments
// and debugging.
func SSHPreimage(res *sshwire.ScanResult) string {
	k := res.KexInit
	var sb strings.Builder
	sb.WriteString("banner=")
	sb.WriteString(res.Banner)
	lists := []struct {
		label string
		list  []string
	}{
		{"kex", k.KexAlgorithms},
		{"hka", k.ServerHostKeyAlgorithms},
		{"enc_cs", k.EncryptionClientToServer},
		{"enc_sc", k.EncryptionServerToClient},
		{"mac_cs", k.MACClientToServer},
		{"mac_sc", k.MACServerToClient},
		{"comp_cs", k.CompressionClientToServer},
		{"comp_sc", k.CompressionServerToClient},
		{"lang_cs", k.LanguagesClientToServer},
		{"lang_sc", k.LanguagesServerToClient},
	}
	for _, l := range lists {
		sb.WriteByte('\x1f')
		sb.WriteString(l.label)
		sb.WriteByte('=')
		sb.WriteString(strings.Join(l.list, ","))
	}
	sb.WriteString("\x1fkey=")
	sb.WriteString(res.HostKeyFingerprint)
	return sb.String()
}

// FromSSHKeyOnly is the ablation variant using only the host key. It
// over-merges the 0.4% of hosts that share a key but differ in capabilities
// only when keys are genuinely shared (factory defaults); it under-separates
// nothing else. Used by the identifier-composition ablation bench.
func FromSSHKeyOnly(res *sshwire.ScanResult) (Identifier, bool) {
	if res == nil || len(res.HostKeyBlob) == 0 {
		return Identifier{}, false
	}
	return digest(SSH, "key="+res.HostKeyFingerprint), true
}

// FromBGP extracts the paper's BGP identifier from a passive scan result.
// ok is false when no OPEN message was captured.
func FromBGP(res *bgp.ScanResult) (Identifier, bool) {
	if !res.Identifiable() {
		return Identifier{}, false
	}
	return digest(BGP, BGPPreimage(res)), true
}

// BGPPreimage renders the canonical BGP identifier preimage from the OPEN
// fields the paper highlights: Length, Version, My-AS (plus effective
// 4-octet AS), Hold Time, BGP Identifier, and the capability bytes in wire
// order.
func BGPPreimage(res *bgp.ScanResult) string {
	o := res.Open
	var sb strings.Builder
	fmt.Fprintf(&sb, "len=%d\x1fver=%d\x1fmyas=%d\x1fas=%d\x1fhold=%d\x1fid=%d",
		res.OpenLen, o.Version, o.MyAS, o.EffectiveAS(), o.HoldTime, o.BGPIdentifier)
	for _, p := range o.OptParams {
		fmt.Fprintf(&sb, "\x1fparam=%d", p.Type)
		for _, c := range p.Capabilities {
			fmt.Fprintf(&sb, ";cap=%d:%x", c.Code, c.Value)
		}
		if p.Raw != nil {
			fmt.Fprintf(&sb, ";raw=%x", p.Raw)
		}
	}
	return sb.String()
}

// FromBGPRouterIDOnly is the ablation variant using only the BGP identifier
// field, vulnerable to duplicate router IDs across devices (a
// misconfiguration the paper lists as a limitation).
func FromBGPRouterIDOnly(res *bgp.ScanResult) (Identifier, bool) {
	if !res.Identifiable() {
		return Identifier{}, false
	}
	return digest(BGP, fmt.Sprintf("id=%d", res.Open.BGPIdentifier)), true
}

// FromSNMPEngineID extracts the baseline SNMPv3 identifier.
func FromSNMPEngineID(engineID []byte) (Identifier, bool) {
	if len(engineID) == 0 {
		return Identifier{}, false
	}
	return digest(SNMP, "engine="+hex.EncodeToString(engineID)), true
}
