package ident

import (
	"strings"
	"testing"

	"aliaslimit/internal/bgp"
	"aliaslimit/internal/sshwire"
)

func sshResult(banner string, mutateKexList bool, fingerprint string) *sshwire.ScanResult {
	p := sshwire.Profiles[0]
	algos := p.Algorithms.Clone()
	if mutateKexList {
		algos.Kex = algos.Kex[1:]
	}
	var cookie [16]byte
	return &sshwire.ScanResult{
		Banner:             banner,
		KexInit:            algos.KexInit(cookie),
		HostKeyAlgo:        sshwire.HostKeyEd25519,
		HostKeyBlob:        []byte("blob-" + fingerprint),
		HostKeyFingerprint: fingerprint,
		KexCompleted:       true,
		SignatureValid:     true,
	}
}

func bgpResult(routerID uint32, asn uint32, hold uint16, cisco bool) *bgp.ScanResult {
	o := &bgp.Open{Version: 4, HoldTime: hold, BGPIdentifier: routerID}
	var caps []bgp.Capability
	if cisco {
		caps = append(caps, bgp.Capability{Code: bgp.CapRouteRefreshCisco})
	}
	caps = append(caps, bgp.Capability{Code: bgp.CapRouteRefresh})
	if asn > 0xffff {
		o.MyAS = bgp.ASTrans
		caps = append(caps, bgp.NewFourOctetAS(asn))
	} else {
		o.MyAS = uint16(asn)
	}
	o.OptParams = []bgp.OptParam{{Type: bgp.OptParamCapability, Capabilities: caps}}
	enc, err := o.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return &bgp.ScanResult{Open: o, OpenLen: uint16(len(enc))}
}

func TestProtocolStrings(t *testing.T) {
	if SSH.String() != "SSH" || BGP.String() != "BGP" || SNMP.String() != "SNMPv3" {
		t.Error("protocol names wrong")
	}
	if Protocol(99).String() != "unknown" {
		t.Error("unknown protocol name")
	}
	if len(Protocols) != 3 {
		t.Error("Protocols list wrong")
	}
}

func TestSSHIdentifierStability(t *testing.T) {
	a, ok := FromSSH(sshResult("SSH-2.0-X", false, "SHA256:k1"))
	if !ok {
		t.Fatal("extraction failed")
	}
	b, _ := FromSSH(sshResult("SSH-2.0-X", false, "SHA256:k1"))
	if a != b {
		t.Error("identical material produced different identifiers")
	}
	if a.Proto != SSH {
		t.Error("wrong protocol")
	}
	if !strings.HasPrefix(a.Key(), "SSH:") {
		t.Errorf("key = %q", a.Key())
	}
}

func TestSSHIdentifierSensitivity(t *testing.T) {
	base, _ := FromSSH(sshResult("SSH-2.0-X", false, "SHA256:k1"))
	cases := map[string]*sshwire.ScanResult{
		"banner":   sshResult("SSH-2.0-Y", false, "SHA256:k1"),
		"kex list": sshResult("SSH-2.0-X", true, "SHA256:k1"),
		"host key": sshResult("SSH-2.0-X", false, "SHA256:k2"),
	}
	for what, res := range cases {
		got, ok := FromSSH(res)
		if !ok {
			t.Fatalf("%s variant: extraction failed", what)
		}
		if got == base {
			t.Errorf("changing %s did not change the identifier", what)
		}
	}
}

func TestSSHIdentifierSeparatesSharedKeys(t *testing.T) {
	// Two hosts with the same (factory-default) key but different
	// capability sets: the paper's combined identifier keeps them apart,
	// the key-only ablation merges them.
	a := sshResult("SSH-2.0-X", false, "SHA256:shared")
	b := sshResult("SSH-2.0-X", true, "SHA256:shared")
	idA, _ := FromSSH(a)
	idB, _ := FromSSH(b)
	if idA == idB {
		t.Error("combined identifier merged capability-distinct hosts")
	}
	koA, _ := FromSSHKeyOnly(a)
	koB, _ := FromSSHKeyOnly(b)
	if koA != koB {
		t.Error("key-only ablation should merge same-key hosts")
	}
}

func TestSSHIdentifierRequiresMaterial(t *testing.T) {
	if _, ok := FromSSH(&sshwire.ScanResult{Banner: "SSH-2.0-X"}); ok {
		t.Error("banner-only result must not yield an identifier")
	}
	if _, ok := FromSSHKeyOnly(&sshwire.ScanResult{}); ok {
		t.Error("keyless result must not yield a key-only identifier")
	}
	if _, ok := FromSSHKeyOnly(nil); ok {
		t.Error("nil result must not yield an identifier")
	}
}

func TestBGPIdentifierStabilityAndSensitivity(t *testing.T) {
	base, ok := FromBGP(bgpResult(100, 65001, 90, true))
	if !ok {
		t.Fatal("extraction failed")
	}
	same, _ := FromBGP(bgpResult(100, 65001, 90, true))
	if base != same {
		t.Error("identical OPEN produced different identifiers")
	}
	variants := map[string]*bgp.ScanResult{
		"router ID":  bgpResult(101, 65001, 90, true),
		"ASN":        bgpResult(100, 65002, 90, true),
		"hold time":  bgpResult(100, 65001, 180, true),
		"capability": bgpResult(100, 65001, 90, false),
	}
	for what, res := range variants {
		got, _ := FromBGP(res)
		if got == base {
			t.Errorf("changing %s did not change the identifier", what)
		}
	}
}

func TestBGPRouterIDOnlyAblation(t *testing.T) {
	// Duplicate router IDs on different devices (misconfiguration): the
	// full identifier separates them when anything else differs; the
	// router-ID-only ablation cannot.
	a := bgpResult(42, 65001, 90, true)
	b := bgpResult(42, 65002, 180, false)
	fullA, _ := FromBGP(a)
	fullB, _ := FromBGP(b)
	if fullA == fullB {
		t.Error("full identifier merged distinct speakers")
	}
	idA, _ := FromBGPRouterIDOnly(a)
	idB, _ := FromBGPRouterIDOnly(b)
	if idA != idB {
		t.Error("router-ID ablation should merge same-ID speakers")
	}
}

func TestBGPIdentifierRequiresOpen(t *testing.T) {
	if _, ok := FromBGP(&bgp.ScanResult{SilentClose: true}); ok {
		t.Error("silent close must not yield an identifier")
	}
	if _, ok := FromBGPRouterIDOnly(&bgp.ScanResult{}); ok {
		t.Error("missing OPEN must not yield an identifier")
	}
}

func TestSNMPIdentifier(t *testing.T) {
	a, ok := FromSNMPEngineID([]byte{0x80, 0, 0, 1, 3, 1, 2, 3, 4, 5, 6})
	if !ok {
		t.Fatal("extraction failed")
	}
	b, _ := FromSNMPEngineID([]byte{0x80, 0, 0, 1, 3, 1, 2, 3, 4, 5, 6})
	if a != b {
		t.Error("not deterministic")
	}
	c, _ := FromSNMPEngineID([]byte{0x80, 0, 0, 1, 3, 1, 2, 3, 4, 5, 7})
	if a == c {
		t.Error("different engines merged")
	}
	if _, ok := FromSNMPEngineID(nil); ok {
		t.Error("empty engine ID must not yield an identifier")
	}
	if a.Proto != SNMP {
		t.Error("wrong protocol")
	}
}

func TestCrossProtocolKeysNeverCollide(t *testing.T) {
	ssh, _ := FromSSH(sshResult("SSH-2.0-X", false, "SHA256:k"))
	b, _ := FromBGP(bgpResult(1, 1, 1, false))
	s, _ := FromSNMPEngineID([]byte{1, 2, 3, 4, 5})
	keys := map[string]bool{ssh.Key(): true, b.Key(): true, s.Key(): true}
	if len(keys) != 3 {
		t.Error("cross-protocol key collision")
	}
}

func TestPreimagesHumanReadable(t *testing.T) {
	p := SSHPreimage(sshResult("SSH-2.0-X", false, "SHA256:k1"))
	for _, want := range []string{"banner=SSH-2.0-X", "kex=", "key=SHA256:k1", "mac_sc="} {
		if !strings.Contains(p, want) {
			t.Errorf("SSH preimage missing %q", want)
		}
	}
	bp := BGPPreimage(bgpResult(7, 70000, 90, true))
	for _, want := range []string{"ver=4", "as=70000", "hold=90", "id=7", "cap=128"} {
		if !strings.Contains(bp, want) {
			t.Errorf("BGP preimage missing %q: %s", want, bp)
		}
	}
}
