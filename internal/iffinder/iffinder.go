// Package iffinder implements the earliest alias-resolution technique, the
// common source address method (CAIDA's iffinder), which the paper's
// introduction describes: send a UDP datagram to a closed port; if the ICMP
// port-unreachable comes back from a *different* address than the one
// probed, the two addresses are aliases of one device.
//
// The technique is included as a baseline because it motivates the paper:
// many routers answer from the probed address or not at all, so its yield is
// poor — which this implementation reproduces over the simulated fabric.
package iffinder

import (
	"net/netip"
	"sort"

	"aliaslimit/internal/alias"
)

// Prober supplies the UDP-to-closed-port primitive; netsim.Vantage
// implements it.
type Prober interface {
	UDPProbe(addr netip.Addr, port uint16) (from netip.Addr, ok bool)
}

// ProbePort is the conventional high closed port (traceroute's base port).
const ProbePort = 33434

// Outcome classifies one probe.
type Outcome int

const (
	// OutcomeSilent: no ICMP at all.
	OutcomeSilent Outcome = iota
	// OutcomeSameAddr: ICMP sourced from the probed address — alive but no
	// alias information.
	OutcomeSameAddr
	// OutcomeAlias: ICMP sourced from a different address — an alias pair.
	OutcomeAlias
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeSilent:
		return "silent"
	case OutcomeSameAddr:
		return "same-addr"
	case OutcomeAlias:
		return "alias"
	default:
		return "unknown"
	}
}

// Result aggregates one run.
type Result struct {
	// Sets are the inferred alias sets (non-singleton only): each probed
	// address grouped with the canonical responder address.
	Sets []alias.Set
	// Outcomes counts probe classifications.
	Outcomes map[Outcome]int
}

// Resolve probes every target once and groups targets by ICMP source
// address. Two targets whose errors share a source are aliases of the device
// owning that source; the source itself joins the set (it is an address of
// the same device by construction).
func Resolve(p Prober, targets []netip.Addr) *Result {
	res := &Result{Outcomes: make(map[Outcome]int)}
	bySource := make(map[netip.Addr][]netip.Addr)
	for _, t := range targets {
		from, ok := p.UDPProbe(t, ProbePort)
		switch {
		case !ok:
			res.Outcomes[OutcomeSilent]++
		case from == t:
			res.Outcomes[OutcomeSameAddr]++
			// Alive but uninformative: record under itself so that other
			// probes resolving to t still merge with it.
			bySource[t] = append(bySource[t], t)
		default:
			res.Outcomes[OutcomeAlias]++
			bySource[from] = append(bySource[from], t, from)
		}
	}
	for _, addrs := range bySource {
		s := alias.NewSet(addrs...)
		if s.Size() >= 2 {
			res.Sets = append(res.Sets, s)
		}
	}
	sort.Slice(res.Sets, func(i, j int) bool {
		return res.Sets[i].Addrs[0].Less(res.Sets[j].Addrs[0])
	})
	return res
}
