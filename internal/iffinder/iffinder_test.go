package iffinder

import (
	"net/netip"
	"testing"
	"time"

	"aliaslimit/internal/netsim"
)

func TestResolve(t *testing.T) {
	clk := netsim.NewSimClock(time.Unix(0, 0))
	f := netsim.New(clk)
	add := func(id string, cfg netsim.DeviceConfig) {
		cfg.ID = id
		d, err := netsim.NewDevice(cfg, clk.Now())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(ss ...string) []netip.Addr {
		var out []netip.Addr
		for _, s := range ss {
			out = append(out, netip.MustParseAddr(s))
		}
		return out
	}
	// Cooperative router: answers from canonical address.
	add("r1", netsim.DeviceConfig{Addrs: mk("10.1.0.1", "10.1.0.2", "10.1.0.3")})
	// Uncooperative: responds from probed address.
	add("r2", netsim.DeviceConfig{Addrs: mk("10.2.0.1", "10.2.0.2"), RespondsFromProbed: true})
	// Silent.
	add("r3", netsim.DeviceConfig{Addrs: mk("10.3.0.1"), ICMPSilent: true})

	targets := mk("10.1.0.2", "10.1.0.3", "10.2.0.1", "10.2.0.2", "10.3.0.1", "10.9.9.9")
	res := Resolve(f.Vantage("iff"), targets)

	if res.Outcomes[OutcomeAlias] != 2 {
		t.Errorf("alias outcomes = %d, want 2", res.Outcomes[OutcomeAlias])
	}
	if res.Outcomes[OutcomeSameAddr] != 2 {
		t.Errorf("same-addr outcomes = %d, want 2", res.Outcomes[OutcomeSameAddr])
	}
	if res.Outcomes[OutcomeSilent] != 2 {
		t.Errorf("silent outcomes = %d, want 2", res.Outcomes[OutcomeSilent])
	}
	if len(res.Sets) != 1 {
		t.Fatalf("sets = %v, want one (r1)", res.Sets)
	}
	if got := res.Sets[0].Signature(); got != "10.1.0.1,10.1.0.2,10.1.0.3" {
		t.Errorf("set = %q", got)
	}
}

func TestResolveEmpty(t *testing.T) {
	clk := netsim.NewSimClock(time.Unix(0, 0))
	f := netsim.New(clk)
	res := Resolve(f.Vantage("iff"), nil)
	if len(res.Sets) != 0 {
		t.Errorf("sets = %v", res.Sets)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeSilent: "silent", OutcomeSameAddr: "same-addr",
		OutcomeAlias: "alias", Outcome(7): "unknown",
	} {
		if o.String() != want {
			t.Errorf("Outcome(%d) = %q", o, o.String())
		}
	}
}
