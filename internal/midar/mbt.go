// Package midar implements the IPID-based alias-resolution baseline the
// paper validates against: MIDAR's Monotonic Bounds Test (Keys et al.,
// IEEE/ACM ToN 2013) over sampled IP-ID time series, with the
// estimation → elimination → corroboration pipeline, plus the classic Ally
// pairwise test for comparison.
//
// The technique rests on routers that keep a single IPID counter shared
// across interfaces: interleaved samples from two aliases of one router must
// fit a single monotonically increasing (mod 2^16) counter. Devices with
// per-interface counters, pseudo-random IPIDs, constant IPIDs, or counters
// too fast to track are unusable — which is exactly why the paper could
// verify only 13% of its sampled SSH sets with MIDAR.
package midar

import (
	"sort"
	"time"
)

// Sample is one IPID observation.
type Sample struct {
	// T is the observation time.
	T time.Time
	// ID is the 16-bit IP identification value.
	ID uint16
}

// Series is a time-ordered sample sequence from a single address.
type Series struct {
	// Addr identifies the target only for reporting; the math uses T/ID.
	Samples []Sample
}

// Unwrap converts the wrapped 16-bit values into a cumulative counter,
// assuming the counter never moves backwards and never advances a full wrap
// between consecutive samples (guaranteed by the estimation stage's velocity
// cap and probe spacing).
func (s Series) Unwrap() []uint64 {
	if len(s.Samples) == 0 {
		return nil
	}
	out := make([]uint64, len(s.Samples))
	cur := uint64(s.Samples[0].ID)
	out[0] = cur
	for i := 1; i < len(s.Samples); i++ {
		delta := uint64(s.Samples[i].ID-s.Samples[i-1].ID) & 0xffff
		cur += delta
		out[i] = cur
	}
	return out
}

// Velocity estimates the counter speed in IDs/second from the unwrapped
// series. ok is false when the series spans no time or fewer than two
// samples.
func (s Series) Velocity() (idsPerSec float64, ok bool) {
	if len(s.Samples) < 2 {
		return 0, false
	}
	un := s.Unwrap()
	dur := s.Samples[len(s.Samples)-1].T.Sub(s.Samples[0].T).Seconds()
	if dur <= 0 {
		return 0, false
	}
	return float64(un[len(un)-1]-un[0]) / dur, true
}

// Class is the estimation-stage verdict for one target.
type Class int

const (
	// ClassUnresponsive: no (or too few) IPID samples.
	ClassUnresponsive Class = iota
	// ClassConstant: the counter never moves (e.g. always zero); useless
	// for the bounds test.
	ClassConstant
	// ClassTooFast: apparent velocity above the usable cap — either genuine
	// high-traffic counters or pseudo-random IPIDs, which alias to extreme
	// velocities after unwrapping.
	ClassTooFast
	// ClassUsable: a trackable monotonic counter.
	ClassUsable
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassUnresponsive:
		return "unresponsive"
	case ClassConstant:
		return "constant"
	case ClassTooFast:
		return "too-fast"
	case ClassUsable:
		return "usable"
	default:
		return "unknown"
	}
}

// Classify applies MIDAR's estimation-stage filter to a single-target series.
func Classify(s Series, maxVelocity float64) Class {
	if len(s.Samples) < 3 {
		return ClassUnresponsive
	}
	v, ok := s.Velocity()
	if !ok {
		return ClassUnresponsive
	}
	if v == 0 {
		return ClassConstant
	}
	if v > maxVelocity {
		return ClassTooFast
	}
	return ClassUsable
}

// timed pairs a sample with its source for the merged test.
type timed struct {
	Sample
	src int
}

// MBT runs the Monotonic Bounds Test on two interleaved series. It merges
// the samples in time order and accepts the pair as aliases iff every
// consecutive step is consistent with one shared counter: the wrapped
// increment must not exceed what the faster counter could plausibly have
// produced in the elapsed time (plus a margin for the probes themselves and
// for bursty cross traffic).
//
// vmax is the larger of the two estimated velocities; margin absorbs
// response-packet increments and jitter.
func MBT(a, b Series, vmax float64, margin float64) bool {
	if len(a.Samples) < 2 || len(b.Samples) < 2 {
		return false
	}
	merged := make([]timed, 0, len(a.Samples)+len(b.Samples))
	for _, s := range a.Samples {
		merged = append(merged, timed{s, 0})
	}
	for _, s := range b.Samples {
		merged = append(merged, timed{s, 1})
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].T.Before(merged[j].T) })

	crossChecked := false
	for i := 1; i < len(merged); i++ {
		prev, cur := merged[i-1], merged[i]
		dt := cur.T.Sub(prev.T).Seconds()
		if dt < 0 {
			return false
		}
		bound := vmax*dt*2 + margin
		step := float64(uint64(cur.ID-prev.ID) & 0xffff)
		if step > bound {
			return false
		}
		if prev.src != cur.src {
			crossChecked = true
		}
	}
	// A test with no cross-source adjacency never compared the counters.
	return crossChecked
}

// DefaultMargin is the slack added to every MBT step bound: it covers the
// reply packets the probes themselves induce plus modest cross traffic.
const DefaultMargin = 64
