package midar

import (
	"net/netip"
	"testing"
	"time"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/netsim"
)

// world builds a fabric with devices of each IPID temperament.
func world(t *testing.T) (*netsim.Fabric, *netsim.SimClock) {
	t.Helper()
	clk := netsim.NewSimClock(time.Unix(50000, 0))
	f := netsim.New(clk)
	add := func(id string, model netsim.IPIDModel, velocity float64, addrs ...string) {
		var as []netip.Addr
		for _, s := range addrs {
			as = append(as, netip.MustParseAddr(s))
		}
		d, err := netsim.NewDevice(netsim.DeviceConfig{
			ID: id, Addrs: as, IPID: model, IPIDVelocity: velocity,
			IPIDSeed: 12345, Pingable: true,
		}, clk.Now())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	// Two routers with shared monotonic counters (MIDAR's happy case).
	add("r-shared-1", netsim.IPIDSharedMonotonic, 40, "10.1.0.1", "10.1.0.2", "10.1.0.3")
	add("r-shared-2", netsim.IPIDSharedMonotonic, 25, "10.2.0.1", "10.2.0.2")
	// One per-interface router: self-monotonic, cross-interface inconsistent.
	add("r-perif", netsim.IPIDPerInterface, 0, "10.3.0.1", "10.3.0.2")
	// Random and zero devices.
	add("r-random", netsim.IPIDRandom, 0, "10.4.0.1", "10.4.0.2")
	add("r-zero", netsim.IPIDZero, 0, "10.5.0.1")
	// High-velocity shared counter.
	add("r-fast", netsim.IPIDHighVelocity, 200000, "10.6.0.1", "10.6.0.2")
	return f, clk
}

func mustAddrs(ss ...string) []netip.Addr {
	var out []netip.Addr
	for _, s := range ss {
		out = append(out, netip.MustParseAddr(s))
	}
	return out
}

func TestClassification(t *testing.T) {
	f, clk := world(t)
	s := NewSession(f.Vantage("midar"), clk, Config{})
	classes := s.ClassifyTargets(mustAddrs(
		"10.1.0.1", "10.3.0.1", "10.4.0.1", "10.5.0.1", "10.6.0.1", "10.99.0.1",
	))
	want := map[string]Class{
		"10.1.0.1":  ClassUsable,
		"10.3.0.1":  ClassUsable, // per-interface looks fine in isolation
		"10.4.0.1":  ClassTooFast,
		"10.5.0.1":  ClassConstant,
		"10.6.0.1":  ClassTooFast,
		"10.99.0.1": ClassUnresponsive,
	}
	for addr, wc := range want {
		if got := classes[netip.MustParseAddr(addr)]; got != wc {
			t.Errorf("%s classified %v, want %v", addr, got, wc)
		}
	}
}

func TestVerifyConfirmsTrueAliases(t *testing.T) {
	f, clk := world(t)
	s := NewSession(f.Vantage("midar"), clk, Config{})
	res := s.VerifySet(alias.NewSet(mustAddrs("10.1.0.1", "10.1.0.2", "10.1.0.3")...))
	if res.Outcome != OutcomeConfirmed {
		t.Errorf("true alias set: outcome = %v, partition = %v", res.Outcome, res.Partition)
	}
	if len(res.UsableAddrs) != 3 {
		t.Errorf("usable = %d, want 3", len(res.UsableAddrs))
	}
}

func TestVerifySplitsFalseAliases(t *testing.T) {
	f, clk := world(t)
	s := NewSession(f.Vantage("midar"), clk, Config{})
	// Addresses from two different routers grouped (wrongly) into one set.
	res := s.VerifySet(alias.NewSet(mustAddrs("10.1.0.1", "10.2.0.1")...))
	if res.Outcome != OutcomeSplit {
		t.Errorf("cross-device set: outcome = %v, want split", res.Outcome)
	}
}

func TestVerifySplitsPerInterfaceCounters(t *testing.T) {
	f, clk := world(t)
	s := NewSession(f.Vantage("midar"), clk, Config{})
	res := s.VerifySet(alias.NewSet(mustAddrs("10.3.0.1", "10.3.0.2")...))
	// Both usable in isolation, but the interleaved test must refuse to
	// merge independent counters (they are genuine aliases, but MIDAR
	// cannot see that — a known false-negative mode of the technique).
	if res.Outcome != OutcomeSplit {
		t.Errorf("per-interface set: outcome = %v, want split", res.Outcome)
	}
}

func TestVerifyUnverifiable(t *testing.T) {
	f, clk := world(t)
	s := NewSession(f.Vantage("midar"), clk, Config{})
	for _, set := range []alias.Set{
		alias.NewSet(mustAddrs("10.4.0.1", "10.4.0.2")...), // random IPIDs
		alias.NewSet(mustAddrs("10.6.0.1", "10.6.0.2")...), // too fast
		alias.NewSet(mustAddrs("10.5.0.1", "10.1.0.1")...), // constant + one usable
	} {
		res := s.VerifySet(set)
		if res.Outcome != OutcomeUnverifiable {
			t.Errorf("set %v: outcome = %v, want unverifiable", set.Addrs, res.Outcome)
		}
	}
}

func TestVerifySetsTally(t *testing.T) {
	f, clk := world(t)
	s := NewSession(f.Vantage("midar"), clk, Config{})
	candidates := []alias.Set{
		alias.NewSet(mustAddrs("10.1.0.1", "10.1.0.2", "10.1.0.3")...), // confirmed
		alias.NewSet(mustAddrs("10.2.0.1", "10.2.0.2")...),             // confirmed
		alias.NewSet(mustAddrs("10.1.0.1", "10.2.0.1")...),             // split
		alias.NewSet(mustAddrs("10.4.0.1", "10.4.0.2")...),             // unverifiable
	}
	results, tally := s.VerifySets(candidates)
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if tally.Confirmed != 2 || tally.Split != 1 || tally.Unverifiable != 1 {
		t.Errorf("tally = %+v", tally)
	}
	if tally.Verifiable() != 3 {
		t.Errorf("verifiable = %d", tally.Verifiable())
	}
}

func TestVerifyAdvancesSimulatedTime(t *testing.T) {
	f, clk := world(t)
	start := clk.Now()
	s := NewSession(f.Vantage("midar"), clk, Config{Rounds: 10, Interval: time.Second})
	s.VerifySet(alias.NewSet(mustAddrs("10.1.0.1", "10.1.0.2")...))
	if clk.Now().Sub(start) < 10*time.Second {
		t.Error("probing should consume simulated time (the 3-week effect)")
	}
}

func TestAlly(t *testing.T) {
	f, clk := world(t)
	s := NewSession(f.Vantage("midar"), clk, Config{Interval: 50 * time.Millisecond})
	if !s.Ally(netip.MustParseAddr("10.1.0.1"), netip.MustParseAddr("10.1.0.2")) {
		t.Error("Ally rejected true aliases on a shared counter")
	}
	if s.Ally(netip.MustParseAddr("10.1.0.1"), netip.MustParseAddr("10.2.0.1")) {
		t.Error("Ally accepted addresses of different devices")
	}
	if s.Ally(netip.MustParseAddr("10.1.0.1"), netip.MustParseAddr("10.99.0.1")) {
		t.Error("Ally accepted an unresponsive target")
	}
}

func TestUnwrapHandlesWrap(t *testing.T) {
	base := time.Unix(0, 0)
	s := Series{Samples: []Sample{
		{T: base, ID: 65530},
		{T: base.Add(time.Second), ID: 65534},
		{T: base.Add(2 * time.Second), ID: 3}, // wraps
		{T: base.Add(3 * time.Second), ID: 10},
	}}
	un := s.Unwrap()
	// 65530 → 65534 (+4) → wraps to 3 (+5) → 10 (+7).
	want := []uint64{65530, 65534, 65539, 65546}
	for i := range want {
		if un[i] != want[i] {
			t.Errorf("unwrap[%d] = %d, want %d", i, un[i], want[i])
		}
	}
	v, ok := s.Velocity()
	if !ok || v < 5.2 || v > 5.4 {
		t.Errorf("velocity = %v,%v, want 16/3", v, ok)
	}
}

func TestVelocityDegenerate(t *testing.T) {
	if _, ok := (Series{}).Velocity(); ok {
		t.Error("empty series has no velocity")
	}
	one := Series{Samples: []Sample{{T: time.Unix(0, 0), ID: 5}}}
	if _, ok := one.Velocity(); ok {
		t.Error("single sample has no velocity")
	}
	sameT := Series{Samples: []Sample{{T: time.Unix(0, 0), ID: 5}, {T: time.Unix(0, 0), ID: 6}}}
	if _, ok := sameT.Velocity(); ok {
		t.Error("zero-duration series has no velocity")
	}
}

func TestMBTRequiresInterleaving(t *testing.T) {
	base := time.Unix(0, 0)
	mk := func(start time.Time, ids ...uint16) Series {
		var s Series
		for i, id := range ids {
			s.Samples = append(s.Samples, Sample{T: start.Add(time.Duration(i) * 2 * time.Second), ID: id})
		}
		return s
	}
	// Perfectly shared counter, interleaved at odd seconds.
	a := mk(base, 100, 110, 120)
	b := Series{Samples: []Sample{
		{T: base.Add(1 * time.Second), ID: 105},
		{T: base.Add(3 * time.Second), ID: 115},
	}}
	if !MBT(a, b, 10, DefaultMargin) {
		t.Error("MBT rejected a consistent shared counter")
	}
	// Same series but b's counter offset wildly: inconsistent.
	bBad := Series{Samples: []Sample{
		{T: base.Add(1 * time.Second), ID: 40000},
		{T: base.Add(3 * time.Second), ID: 40010},
	}}
	if MBT(a, bBad, 10, DefaultMargin) {
		t.Error("MBT accepted divergent counters")
	}
	// Too few samples.
	if MBT(Series{}, b, 10, DefaultMargin) {
		t.Error("MBT accepted empty series")
	}
	if got := MBT(mk(base, 1, 2, 3), mk(base.Add(time.Hour), 4, 5, 6), 1000, DefaultMargin); got {
		// All of b after all of a with a huge gap: the bound scales with
		// dt, so this may pass numerically — but only via a genuine
		// cross-source step. Accept either verdict; the property checked
		// here is just that it does not panic.
		_ = got
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		ClassUnresponsive: "unresponsive",
		ClassConstant:     "constant",
		ClassTooFast:      "too-fast",
		ClassUsable:       "usable",
		Class(9):          "unknown",
	} {
		if c.String() != want {
			t.Errorf("Class(%d) = %q", c, c.String())
		}
	}
	for o, want := range map[SetOutcome]string{
		OutcomeUnverifiable: "unverifiable",
		OutcomeConfirmed:    "confirmed",
		OutcomeSplit:        "split",
		SetOutcome(9):       "unknown",
	} {
		if o.String() != want {
			t.Errorf("SetOutcome(%d) = %q", o, o.String())
		}
	}
}
