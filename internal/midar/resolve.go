package midar

import (
	"net/netip"
	"sort"

	"aliaslimit/internal/alias"
)

// Resolve runs the standalone RadarGun/MIDAR-style pipeline over a flat
// address list (no candidate sets): estimation classifies every target,
// elimination runs the bounds test pairwise inside velocity buckets (the
// MIDAR optimisation that avoids O(n²) over the whole population), and
// corroboration re-tests each resulting group with fresh samples.
//
// The velocity-bucket heuristic: two aliases sample one counter, so their
// estimated velocities are nearly equal; only pairs whose velocities agree
// within a factor of two (plus an absolute floor) need the expensive
// interleaved test.
func (s *Session) Resolve(addrs []netip.Addr) *ResolveResult {
	res := &ResolveResult{Classes: make(map[Class]int)}

	series := s.SampleSet(addrs)
	type usable struct {
		addr netip.Addr
		vel  float64
	}
	var us []usable
	for _, a := range addrs {
		sr := series[a]
		c := Classify(sr, s.cfg.MaxVelocity)
		res.Classes[c]++
		if c != ClassUsable {
			continue
		}
		v, _ := sr.Velocity()
		us = append(us, usable{addr: a, vel: v})
	}
	// Sort by velocity so compatible pairs are adjacent: the sliding
	// window below only compares velocity-compatible candidates.
	sort.Slice(us, func(i, j int) bool { return us[i].vel < us[j].vel })

	parent := make([]int, len(us))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	const velocityFloor = 16.0
	for i := 0; i < len(us); i++ {
		for j := i + 1; j < len(us); j++ {
			// Window cut-off: velocities are sorted, so once incompatible,
			// every later j is too.
			if us[j].vel > 2*us[i].vel+velocityFloor {
				break
			}
			res.PairsTested++
			vmax := us[j].vel
			if us[i].vel > vmax {
				vmax = us[i].vel
			}
			if MBT(series[us[i].addr], series[us[j].addr], vmax, s.cfg.Margin) {
				parent[find(i)] = find(j)
			}
		}
	}

	groups := make(map[int][]netip.Addr)
	for i, u := range us {
		r := find(i)
		groups[r] = append(groups[r], u.addr)
	}
	// Corroboration on multi-address groups.
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		fresh := s.SampleSet(g)
		ref := g[0]
		refV, _ := fresh[ref].Velocity()
		kept := []netip.Addr{ref}
		for _, a := range g[1:] {
			v, _ := fresh[a].Velocity()
			vmax := refV
			if v > vmax {
				vmax = v
			}
			if MBT(fresh[ref], fresh[a], vmax, s.cfg.Margin) {
				kept = append(kept, a)
			}
		}
		if len(kept) >= 2 {
			res.Sets = append(res.Sets, alias.NewSet(kept...))
		}
	}
	sort.Slice(res.Sets, func(i, j int) bool {
		return res.Sets[i].Addrs[0].Less(res.Sets[j].Addrs[0])
	})
	return res
}

// ResolveResult is the outcome of a standalone IPID resolution run.
type ResolveResult struct {
	// Classes counts the estimation-stage verdicts.
	Classes map[Class]int
	// PairsTested counts bounds tests executed after velocity bucketing.
	PairsTested int
	// Sets are the corroborated non-singleton alias sets.
	Sets []alias.Set
}
