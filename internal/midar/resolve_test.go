package midar

import (
	"net/netip"
	"testing"
	"time"

	"aliaslimit/internal/netsim"
)

func TestResolveStandalone(t *testing.T) {
	f, clk := world(t)
	s := NewSession(f.Vantage("midar"), clk, Config{})
	targets := mustAddrs(
		// Two genuine shared-counter routers...
		"10.1.0.1", "10.1.0.2", "10.1.0.3",
		"10.2.0.1", "10.2.0.2",
		// ...and unusable populations.
		"10.3.0.1", "10.3.0.2", // per-interface
		"10.4.0.1",  // random
		"10.5.0.1",  // zero
		"10.6.0.1",  // too fast
		"10.99.0.1", // unresponsive
	)
	res := s.Resolve(targets)
	if got := len(res.Sets); got != 2 {
		t.Fatalf("sets = %d (%v), want the two shared-counter routers", got, res.Sets)
	}
	sigs := map[string]bool{}
	for _, set := range res.Sets {
		sigs[set.Signature()] = true
	}
	if !sigs["10.1.0.1,10.1.0.2,10.1.0.3"] || !sigs["10.2.0.1,10.2.0.2"] {
		t.Errorf("wrong groups: %v", sigs)
	}
	if res.Classes[ClassUnresponsive] == 0 || res.Classes[ClassTooFast] == 0 ||
		res.Classes[ClassConstant] == 0 {
		t.Errorf("census incomplete: %v", res.Classes)
	}
	if res.PairsTested == 0 {
		t.Error("no pairs tested")
	}
}

func TestResolveVelocityBucketingPrunes(t *testing.T) {
	// Many usable targets with wildly different velocities: the window must
	// prune most cross-velocity pairs.
	clk := netsim.NewSimClock(time.Unix(9000, 0))
	f := netsim.New(clk)
	var targets []netip.Addr
	n := 0
	for _, vel := range []float64{1, 5, 200, 1000, 5000} {
		for d := 0; d < 2; d++ {
			n++
			a1 := netip.AddrFrom4([4]byte{10, 10, byte(n), 1})
			a2 := netip.AddrFrom4([4]byte{10, 10, byte(n), 2})
			dev, err := netsim.NewDevice(netsim.DeviceConfig{
				ID:    a1.String(),
				Addrs: []netip.Addr{a1, a2}, IPID: netsim.IPIDSharedMonotonic,
				// Phases must be well separated: counters that start at
				// nearly the same value are indistinguishable to any IPID
				// technique (a real MIDAR false positive).
				IPIDVelocity: vel, IPIDSeed: uint64(n) * 13931, Pingable: true,
			}, clk.Now())
			if err != nil {
				t.Fatal(err)
			}
			if err := f.AddDevice(dev); err != nil {
				t.Fatal(err)
			}
			targets = append(targets, a1, a2)
		}
	}
	s := NewSession(f.Vantage("m"), clk, Config{})
	res := s.Resolve(targets)
	allPairs := len(targets) * (len(targets) - 1) / 2
	if res.PairsTested >= allPairs {
		t.Errorf("bucketing tested all %d pairs", res.PairsTested)
	}
	// Every device's two addresses must still be grouped.
	if len(res.Sets) != 10 {
		t.Errorf("sets = %d, want 10", len(res.Sets))
	}
}

func TestResolveEmpty(t *testing.T) {
	f, clk := world(t)
	s := NewSession(f.Vantage("midar"), clk, Config{})
	res := s.Resolve(nil)
	if len(res.Sets) != 0 || res.PairsTested != 0 {
		t.Errorf("empty resolve = %+v", res)
	}
}
