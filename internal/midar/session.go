package midar

import (
	"net/netip"
	"time"

	"aliaslimit/internal/netsim"
)

// Prober supplies IPID samples. netsim.Vantage implements it.
type Prober interface {
	IPIDProbe(addr netip.Addr) (ipid uint16, ok bool)
}

// Config tunes the MIDAR pipeline.
type Config struct {
	// Rounds is the number of interleaved probe rounds per target set.
	Rounds int
	// Interval is the (simulated) spacing between consecutive probes.
	Interval time.Duration
	// MaxVelocity is the usability cap in IDs/second; targets whose
	// apparent counter is faster are discarded in estimation.
	MaxVelocity float64
	// Margin is the MBT step slack.
	Margin float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.MaxVelocity <= 0 {
		c.MaxVelocity = 10000
	}
	if c.Margin <= 0 {
		c.Margin = DefaultMargin
	}
	return c
}

// Session binds a prober to a simulated clock. Probe pacing advances the
// clock, so large runs consume simulated days — the mechanism behind the
// paper's observation that its MIDAR comparison took three weeks and
// suffered IP churn.
type Session struct {
	prober Prober
	clock  *netsim.SimClock
	cfg    Config
}

// NewSession builds a session. clock may be nil only if no pacing is wanted
// (every probe then shares one timestamp and the MBT degenerates), so in
// practice pass the fabric's SimClock.
func NewSession(p Prober, clock *netsim.SimClock, cfg Config) *Session {
	return &Session{prober: p, clock: clock, cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (s *Session) Config() Config { return s.cfg }

// now returns the current simulated time.
func (s *Session) now() time.Time {
	if s.clock == nil {
		return time.Time{}
	}
	return s.clock.Now()
}

// tick advances simulated time by the probe interval.
func (s *Session) tick() {
	if s.clock != nil {
		s.clock.Advance(s.cfg.Interval)
	}
}

// SampleSet collects interleaved series for a set of candidate addresses:
// round-robin across addresses, Rounds passes, one Interval per probe — the
// interleaving the bounds test requires.
func (s *Session) SampleSet(addrs []netip.Addr) map[netip.Addr]Series {
	out := make(map[netip.Addr]Series, len(addrs))
	for r := 0; r < s.cfg.Rounds; r++ {
		for _, a := range addrs {
			if id, ok := s.prober.IPIDProbe(a); ok {
				sr := out[a]
				sr.Samples = append(sr.Samples, Sample{T: s.now(), ID: id})
				out[a] = sr
			}
			s.tick()
		}
	}
	return out
}

// ClassifyTargets runs the estimation stage over addrs: sample each target
// and classify its counter behaviour.
func (s *Session) ClassifyTargets(addrs []netip.Addr) map[netip.Addr]Class {
	series := s.SampleSet(addrs)
	out := make(map[netip.Addr]Class, len(addrs))
	for _, a := range addrs {
		out[a] = Classify(series[a], s.cfg.MaxVelocity)
	}
	return out
}

// Ally runs the classic three-probe Ally test on a pair: probe a, b, a and
// require the three IDs to be nearly consecutive. Kept for the historical
// baseline comparison; MIDAR's MBT supersedes it.
func (s *Session) Ally(a, b netip.Addr) bool {
	id1, ok1 := s.prober.IPIDProbe(a)
	s.tick()
	id2, ok2 := s.prober.IPIDProbe(b)
	s.tick()
	id3, ok3 := s.prober.IPIDProbe(a)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	d12 := uint64(id2-id1) & 0xffff
	d23 := uint64(id3-id2) & 0xffff
	const allyBound = 200 // Ally's classical "in-order and close" window
	return d12 > 0 && d23 > 0 && d12 < allyBound && d23 < allyBound
}
