package midar

import (
	"net/netip"

	"aliaslimit/internal/alias"
)

// SetOutcome classifies the MIDAR verdict for one candidate alias set, the
// unit of the paper's SSH-MIDAR validation row.
type SetOutcome int

const (
	// OutcomeUnverifiable: fewer than two usable counters in the set, so
	// the bounds test cannot say anything — the fate of 87% of the paper's
	// sample.
	OutcomeUnverifiable SetOutcome = iota
	// OutcomeConfirmed: the usable addresses form one MBT-consistent group
	// exactly matching the candidate set's usable membership.
	OutcomeConfirmed
	// OutcomeSplit: MIDAR partitions the candidate set into two or more
	// groups (the paper's disagreement cases).
	OutcomeSplit
)

// String names the outcome.
func (o SetOutcome) String() string {
	switch o {
	case OutcomeUnverifiable:
		return "unverifiable"
	case OutcomeConfirmed:
		return "confirmed"
	case OutcomeSplit:
		return "split"
	default:
		return "unknown"
	}
}

// SetResult is the verdict for one candidate set.
type SetResult struct {
	// Candidate is the set under test.
	Candidate alias.Set
	// Outcome is the verdict.
	Outcome SetOutcome
	// UsableAddrs lists the addresses that passed estimation.
	UsableAddrs []netip.Addr
	// Partition is MIDAR's own grouping of the usable addresses (set for
	// confirmed and split outcomes).
	Partition []alias.Set
}

// VerifySet runs the full pipeline on one candidate set: estimation
// (classify each address), elimination (pairwise MBT over usable addresses),
// and corroboration (re-test each resulting group with fresh samples).
func (s *Session) VerifySet(candidate alias.Set) SetResult {
	res := SetResult{Candidate: candidate}

	series := s.SampleSet(candidate.Addrs)
	velocities := make(map[netip.Addr]float64)
	for _, a := range candidate.Addrs {
		sr := series[a]
		if Classify(sr, s.cfg.MaxVelocity) != ClassUsable {
			continue
		}
		v, _ := sr.Velocity()
		res.UsableAddrs = append(res.UsableAddrs, a)
		velocities[a] = v
	}
	if len(res.UsableAddrs) < 2 {
		res.Outcome = OutcomeUnverifiable
		return res
	}

	// Elimination: pairwise MBT over the interleaved estimation samples.
	n := len(res.UsableAddrs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ai, aj := res.UsableAddrs[i], res.UsableAddrs[j]
			vmax := velocities[ai]
			if velocities[aj] > vmax {
				vmax = velocities[aj]
			}
			if MBT(series[ai], series[aj], vmax, s.cfg.Margin) {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := make(map[int][]netip.Addr)
	for i, a := range res.UsableAddrs {
		r := find(i)
		groups[r] = append(groups[r], a)
	}

	// Corroboration: re-sample each multi-address group and demand the MBT
	// still holds between every member and the group's first address.
	// Members that fail drop out into singleton groups.
	var finalGroups [][]netip.Addr
	for _, addrs := range groups {
		if len(addrs) < 2 {
			finalGroups = append(finalGroups, addrs)
			continue
		}
		fresh := s.SampleSet(addrs)
		ref := addrs[0]
		refV, _ := fresh[ref].Velocity()
		kept := []netip.Addr{ref}
		for _, a := range addrs[1:] {
			v, _ := fresh[a].Velocity()
			vmax := refV
			if v > vmax {
				vmax = v
			}
			if MBT(fresh[ref], fresh[a], vmax, s.cfg.Margin) {
				kept = append(kept, a)
			} else {
				finalGroups = append(finalGroups, []netip.Addr{a})
			}
		}
		finalGroups = append(finalGroups, kept)
	}

	for _, addrs := range finalGroups {
		res.Partition = append(res.Partition, alias.NewSet(addrs...))
	}
	if len(res.Partition) == 1 && res.Partition[0].Size() == len(res.UsableAddrs) {
		res.Outcome = OutcomeConfirmed
	} else {
		res.Outcome = OutcomeSplit
	}
	return res
}

// VerifySets runs VerifySet over a sample of candidate sets and tallies the
// paper's Table 2 quantities.
func (s *Session) VerifySets(candidates []alias.Set) ([]SetResult, Tally) {
	results := make([]SetResult, 0, len(candidates))
	var t Tally
	for _, c := range candidates {
		r := s.VerifySet(c)
		results = append(results, r)
		switch r.Outcome {
		case OutcomeUnverifiable:
			t.Unverifiable++
		case OutcomeConfirmed:
			t.Confirmed++
		case OutcomeSplit:
			t.Split++
		}
	}
	return results, t
}

// Tally aggregates verification outcomes.
type Tally struct {
	// Unverifiable sets had fewer than two usable counters.
	Unverifiable int
	// Confirmed sets matched MIDAR's partition exactly.
	Confirmed int
	// Split sets were broken apart by MIDAR.
	Split int
}

// Verifiable returns the number of sets MIDAR could test at all.
func (t Tally) Verifiable() int { return t.Confirmed + t.Split }
