package netsim

import (
	"sync"
	"time"
)

// Clock abstracts time for the simulator. Experiments that model multi-week
// measurement campaigns (the paper's MIDAR run took three weeks; the Censys
// snapshot predates the active scan by three weeks) advance a SimClock
// manually instead of sleeping.
type Clock interface {
	// Now returns the current simulated time.
	Now() time.Time
}

// SimClock is a manually advanced clock. The zero value starts at the Unix
// epoch; use NewSimClock to pick an explicit origin. SimClock is safe for
// concurrent use.
type SimClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewSimClock returns a clock positioned at origin.
func NewSimClock(origin time.Time) *SimClock {
	return &SimClock{now: origin}
}

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative d is ignored: simulated
// time, like real time, does not run backwards.
func (c *SimClock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t if t is not before the current time.
func (c *SimClock) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}

// RealClock reads the wall clock. Scanners run against the real Internet use
// it; tests and experiments use SimClock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }
