package netsim

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// DeviceKind is a coarse device category. It only influences reporting and
// topology statistics, never fabric behaviour.
type DeviceKind int

const (
	// KindRouter is a multi-interface network device (the alias-resolution
	// target population).
	KindRouter DeviceKind = iota
	// KindServer is an end host, typically a cloud VM with one IPv4 and
	// possibly one IPv6 address running SSH.
	KindServer
)

// String returns the kind name.
func (k DeviceKind) String() string {
	switch k {
	case KindRouter:
		return "router"
	case KindServer:
		return "server"
	default:
		return "unknown"
	}
}

// ServeContext carries per-connection metadata into a service handler. The
// paper's identifiers may legitimately vary by interface (0.4% of
// non-singleton SSH hosts announce different capabilities on different
// addresses), so handlers always learn which local address was hit.
type ServeContext struct {
	// Device is the device that accepted the connection.
	Device *Device
	// LocalAddr is the interface address the client connected to.
	LocalAddr netip.Addr
	// LocalPort is the service port.
	LocalPort uint16
	// Clock is the fabric clock, for handlers that model timeouts.
	Clock Clock
}

// Handler serves a single accepted connection. Implementations must close
// conn before returning, or rely on the fabric's deferred close.
type Handler interface {
	Serve(conn net.Conn, sc ServeContext)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(conn net.Conn, sc ServeContext)

// Serve implements Handler.
func (f HandlerFunc) Serve(conn net.Conn, sc ServeContext) { f(conn, sc) }

// serviceEntry is one TCP service bound on a device, optionally restricted to
// a subset of the device's addresses (the paper's "service configured to
// respond only on selected addresses" ACL case).
type serviceEntry struct {
	handler Handler
	// allowed is nil when the service answers on every interface; otherwise
	// it is the set of addresses that accept connections. Probes to other
	// addresses are dropped (firewalled), not refused: that is what an ACL
	// on a router does.
	allowed map[netip.Addr]bool
}

// DeviceConfig describes a device to construct.
type DeviceConfig struct {
	// ID is a unique, stable identifier (used to key deterministic draws).
	ID string
	// ASN is the autonomous system the device belongs to. Interfaces may
	// individually override this for inter-AS links; see AddrASN.
	ASN uint32
	// Kind is the device category.
	Kind DeviceKind
	// Addrs lists every interface address, IPv4 and IPv6, in interface
	// order. Index in this slice is the interface index.
	Addrs []netip.Addr
	// AddrASN optionally maps specific addresses to a different origin AS
	// than the device's own. Border-router link addresses are commonly
	// numbered from the neighbour's space, which is why the paper finds
	// >35% of BGP-derived alias sets spanning multiple ASes.
	AddrASN map[netip.Addr]uint32
	// IPID selects the IP identification counter behaviour.
	IPID IPIDModel
	// IPIDVelocity is background traffic in packets/second feeding the
	// shared counter (only meaningful for the shared models).
	IPIDVelocity float64
	// IPIDSeed seeds the counter and the random model.
	IPIDSeed uint64
	// Pingable reports whether IPID probes (ICMP echo) are answered.
	Pingable bool
	// RespondsFromProbed, when true, makes ICMP errors originate from the
	// probed address, which defeats the common-source-address technique.
	RespondsFromProbed bool
	// ICMPSilent suppresses all ICMP error generation.
	ICMPSilent bool
	// EmitsFragmentIDs reports whether the device answers Speedtrap-style
	// probes with fragmented IPv6 packets carrying identification values.
	EmitsFragmentIDs bool
	// FilteredVantages lists vantage labels whose probes this device's
	// upstream IDS/rate-limiter drops. The paper attributes Censys's higher
	// SSH coverage to distributed scanning that avoids exactly this.
	FilteredVantages []string
}

// Device is one simulated network element with one or more addressed
// interfaces and zero or more TCP services.
//
// Concurrency contract: identity, addresses, and probe-behaviour flags are
// immutable after NewDevice; the probe/dial/sample paths used by concurrent
// scans are safe without external locking (service tables are RWMutex-
// guarded, IPID state is mutex-guarded). Topology mutation — SetService,
// RemoveService, SetUDPService, and fabric Bind/Unbind — is safe in itself
// but must not run concurrently with a measurement that expects a stable
// world: churn between scans, never during one.
type Device struct {
	id       string
	asn      uint32
	kind     DeviceKind
	addrs    []netip.Addr
	ifIndex  map[netip.Addr]int
	addrASN  map[netip.Addr]uint32
	pingable bool

	respondsFromProbed bool
	icmpSilent         bool
	fragEmitter        bool

	ipidModel IPIDModel
	ipid      *ipidState

	filteredVantages map[string]bool

	mu       sync.RWMutex
	services map[uint16]*serviceEntry

	udp udpServices
}

// NewDevice constructs a device. origin positions the IPID clock; pass the
// fabric clock's current time.
func NewDevice(cfg DeviceConfig, origin time.Time) (*Device, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("netsim: device must have an ID")
	}
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("netsim: device %s has no addresses", cfg.ID)
	}
	d := &Device{
		id:                 cfg.ID,
		asn:                cfg.ASN,
		kind:               cfg.Kind,
		addrs:              append([]netip.Addr(nil), cfg.Addrs...),
		ifIndex:            make(map[netip.Addr]int, len(cfg.Addrs)),
		addrASN:            make(map[netip.Addr]uint32, len(cfg.AddrASN)),
		pingable:           cfg.Pingable,
		respondsFromProbed: cfg.RespondsFromProbed,
		icmpSilent:         cfg.ICMPSilent,
		fragEmitter:        cfg.EmitsFragmentIDs,
		ipidModel:          cfg.IPID,
		ipid:               newIPIDState(cfg.IPIDSeed, cfg.IPIDVelocity, origin),
		services:           make(map[uint16]*serviceEntry),
	}
	for i, a := range d.addrs {
		if !a.IsValid() {
			return nil, fmt.Errorf("netsim: device %s address %d invalid", cfg.ID, i)
		}
		if _, dup := d.ifIndex[a]; dup {
			return nil, fmt.Errorf("netsim: device %s duplicate address %s", cfg.ID, a)
		}
		d.ifIndex[a] = i
	}
	for a, asn := range cfg.AddrASN {
		d.addrASN[a] = asn
	}
	if len(cfg.FilteredVantages) > 0 {
		d.filteredVantages = make(map[string]bool, len(cfg.FilteredVantages))
		for _, v := range cfg.FilteredVantages {
			d.filteredVantages[v] = true
		}
	}
	return d, nil
}

// ID returns the device's unique identifier.
func (d *Device) ID() string { return d.id }

// ASN returns the device's own autonomous system number.
func (d *Device) ASN() uint32 { return d.asn }

// Kind returns the device category.
func (d *Device) Kind() DeviceKind { return d.kind }

// Addrs returns the device's interface addresses in interface order. The
// returned slice must not be modified.
func (d *Device) Addrs() []netip.Addr { return d.addrs }

// AddrASN returns the origin AS of a specific interface address, falling back
// to the device ASN for addresses without an override.
func (d *Device) AddrASN(a netip.Addr) uint32 {
	if asn, ok := d.addrASN[a]; ok {
		return asn
	}
	return d.asn
}

// HasAddr reports whether a is one of the device's interfaces.
func (d *Device) HasAddr(a netip.Addr) bool {
	_, ok := d.ifIndex[a]
	return ok
}

// CanonicalAddr is the address the device uses as source for self-originated
// ICMP errors (its "loopback" or lowest-numbered interface).
func (d *Device) CanonicalAddr() netip.Addr { return d.addrs[0] }

// IPIDModel returns the configured IPID behaviour.
func (d *Device) IPIDModel() IPIDModel { return d.ipidModel }

// IPIDVelocity returns the configured background IPID velocity.
func (d *Device) IPIDVelocity() float64 { return d.ipid.Velocity() }

// SetService binds handler on port. If addrs is non-empty, only those
// addresses accept connections for the service; probes to the service on any
// other interface are silently dropped (ACL semantics). Re-binding a port
// replaces the previous service.
func (d *Device) SetService(port uint16, h Handler, addrs ...netip.Addr) {
	e := &serviceEntry{handler: h}
	if len(addrs) > 0 {
		e.allowed = make(map[netip.Addr]bool, len(addrs))
		for _, a := range addrs {
			e.allowed[a] = true
		}
	}
	d.mu.Lock()
	d.services[port] = e
	d.mu.Unlock()
}

// RemoveService unbinds the service on port, if any.
func (d *Device) RemoveService(port uint16) {
	d.mu.Lock()
	delete(d.services, port)
	d.mu.Unlock()
}

// ServicePorts returns the bound TCP ports in unspecified order.
func (d *Device) ServicePorts() []uint16 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ports := make([]uint16, 0, len(d.services))
	for p := range d.services {
		ports = append(ports, p)
	}
	return ports
}

// ServiceAddrs returns the addresses on which the service bound to port
// answers (the ACL view), or all device addresses when unrestricted, or nil
// when the port has no service.
func (d *Device) ServiceAddrs(port uint16) []netip.Addr {
	d.mu.RLock()
	e := d.services[port]
	d.mu.RUnlock()
	if e == nil {
		return nil
	}
	if e.allowed == nil {
		return d.addrs
	}
	out := make([]netip.Addr, 0, len(e.allowed))
	for _, a := range d.addrs { // preserve interface order
		if e.allowed[a] {
			out = append(out, a)
		}
	}
	return out
}

// probeStatus classifies how the device treats a TCP SYN to (addr, port) from
// the given vantage.
func (d *Device) probeStatus(vantage string, addr netip.Addr, port uint16) ProbeStatus {
	if d.filteredVantages[vantage] {
		return StatusFiltered
	}
	d.mu.RLock()
	e := d.services[port]
	d.mu.RUnlock()
	if e == nil {
		return StatusClosed
	}
	if e.allowed != nil && !e.allowed[addr] {
		return StatusFiltered
	}
	return StatusOpen
}

// handlerFor returns the handler serving (addr, port), or nil when the probe
// would not complete a handshake.
func (d *Device) handlerFor(vantage string, addr netip.Addr, port uint16) Handler {
	if d.probeStatus(vantage, addr, port) != StatusOpen {
		return nil
	}
	d.mu.RLock()
	e := d.services[port]
	d.mu.RUnlock()
	if e == nil {
		return nil
	}
	return e.handler
}

// sampleIPID answers an IPID probe against addr at the given time, or false
// if the device does not respond to such probes. A non-nil policy overrides
// the device's own IPID model (the fabric's fault-injection hook).
func (d *Device) sampleIPID(vantage string, addr netip.Addr, now time.Time, policy *IPIDModel) (uint16, bool) {
	if !d.pingable || d.filteredVantages[vantage] {
		return 0, false
	}
	idx, ok := d.ifIndex[addr]
	if !ok {
		return 0, false
	}
	model := d.ipidModel
	if policy != nil {
		model = *policy
	}
	return d.ipid.sample(model, idx, now), true
}

// icmpSource answers an iffinder-style UDP probe to a closed port: the
// address the resulting ICMP port-unreachable claims as source, or ok=false
// when the device stays silent.
func (d *Device) icmpSource(vantage string, probed netip.Addr) (netip.Addr, bool) {
	if d.icmpSilent || d.filteredVantages[vantage] {
		return netip.Addr{}, false
	}
	if _, ok := d.ifIndex[probed]; !ok {
		return netip.Addr{}, false
	}
	if d.respondsFromProbed {
		return probed, true
	}
	// ICMP errors are sourced from the canonical interface of the matching
	// address family.
	for _, a := range d.addrs {
		if a.Is4() == probed.Is4() {
			return a, true
		}
	}
	return d.addrs[0], true
}
