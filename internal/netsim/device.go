package netsim

import (
	"fmt"
	"net"
	"net/netip"
	"slices"
	"sync"
	"time"
)

// DeviceKind is a coarse device category. It only influences reporting and
// topology statistics, never fabric behaviour.
type DeviceKind int

const (
	// KindRouter is a multi-interface network device (the alias-resolution
	// target population).
	KindRouter DeviceKind = iota
	// KindServer is an end host, typically a cloud VM with one IPv4 and
	// possibly one IPv6 address running SSH.
	KindServer
)

// String returns the kind name.
func (k DeviceKind) String() string {
	switch k {
	case KindRouter:
		return "router"
	case KindServer:
		return "server"
	default:
		return "unknown"
	}
}

// ServeContext carries per-connection metadata into a service handler. The
// paper's identifiers may legitimately vary by interface (0.4% of
// non-singleton SSH hosts announce different capabilities on different
// addresses), so handlers always learn which local address was hit.
type ServeContext struct {
	// Device is the device that accepted the connection.
	Device *Device
	// LocalAddr is the interface address the client connected to.
	LocalAddr netip.Addr
	// LocalPort is the service port.
	LocalPort uint16
	// Clock is the fabric clock, for handlers that model timeouts.
	Clock Clock
}

// Handler serves a single accepted connection. Implementations must close
// conn before returning, or rely on the fabric's deferred close.
type Handler interface {
	Serve(conn net.Conn, sc ServeContext)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(conn net.Conn, sc ServeContext)

// Serve implements Handler.
func (f HandlerFunc) Serve(conn net.Conn, sc ServeContext) { f(conn, sc) }

// aclSet is a dense address ACL: the allowed addresses, sorted and deduped
// for binary search. A nil set means unrestricted. Megascale worlds carry one
// ACL per restricted service on hundreds of thousands of devices, so this is
// a flat sorted slice rather than a hash map — half the memory, no per-entry
// allocation, cache-friendly membership tests.
type aclSet []netip.Addr

// newACLSet builds an ACL from an address list; empty lists mean
// unrestricted (nil).
func newACLSet(addrs []netip.Addr) aclSet {
	if len(addrs) == 0 {
		return nil
	}
	s := make(aclSet, len(addrs))
	copy(s, addrs)
	slices.SortFunc(s, netip.Addr.Compare)
	return slices.Compact(s)
}

// has reports whether a is in the set.
func (s aclSet) has(a netip.Addr) bool {
	_, ok := slices.BinarySearchFunc(s, a, netip.Addr.Compare)
	return ok
}

// serviceEntry is one TCP service bound on a device, optionally restricted to
// a subset of the device's addresses (the paper's "service configured to
// respond only on selected addresses" ACL case).
type serviceEntry struct {
	handler Handler
	// allowed is nil when the service answers on every interface; otherwise
	// it is the set of addresses that accept connections. Probes to other
	// addresses are dropped (firewalled), not refused: that is what an ACL
	// on a router does.
	allowed aclSet
}

// boundService pairs a port with its service entry. Devices bind at most a
// handful of ports, so the service table is a flat slice scanned linearly —
// no per-device map allocation.
type boundService struct {
	port uint16
	e    *serviceEntry
}

// DeviceConfig describes a device to construct.
type DeviceConfig struct {
	// ID is a unique, stable identifier (used to key deterministic draws).
	ID string
	// ASN is the autonomous system the device belongs to. Interfaces may
	// individually override this for inter-AS links; see AddrASN.
	ASN uint32
	// Kind is the device category.
	Kind DeviceKind
	// Addrs lists every interface address, IPv4 and IPv6, in interface
	// order. Index in this slice is the interface index.
	Addrs []netip.Addr
	// AddrASN optionally maps specific addresses to a different origin AS
	// than the device's own. Border-router link addresses are commonly
	// numbered from the neighbour's space, which is why the paper finds
	// >35% of BGP-derived alias sets spanning multiple ASes.
	AddrASN map[netip.Addr]uint32
	// IPID selects the IP identification counter behaviour.
	IPID IPIDModel
	// IPIDVelocity is background traffic in packets/second feeding the
	// shared counter (only meaningful for the shared models).
	IPIDVelocity float64
	// IPIDSeed seeds the counter and the random model.
	IPIDSeed uint64
	// Pingable reports whether IPID probes (ICMP echo) are answered.
	Pingable bool
	// RespondsFromProbed, when true, makes ICMP errors originate from the
	// probed address, which defeats the common-source-address technique.
	RespondsFromProbed bool
	// ICMPSilent suppresses all ICMP error generation.
	ICMPSilent bool
	// EmitsFragmentIDs reports whether the device answers Speedtrap-style
	// probes with fragmented IPv6 packets carrying identification values.
	EmitsFragmentIDs bool
	// FilteredVantages lists vantage labels whose probes this device's
	// upstream IDS/rate-limiter drops. The paper attributes Censys's higher
	// SSH coverage to distributed scanning that avoids exactly this.
	FilteredVantages []string
}

// Device is one simulated network element with one or more addressed
// interfaces and zero or more TCP services.
//
// Concurrency contract: identity, addresses, and probe-behaviour flags are
// immutable after NewDevice; the probe/dial/sample paths used by concurrent
// scans are safe without external locking (service tables are RWMutex-
// guarded, IPID state is mutex-guarded). Topology mutation — SetService,
// RemoveService, SetUDPService, and fabric Bind/Unbind — is safe in itself
// but must not run concurrently with a measurement that expects a stable
// world: churn between scans, never during one.
type Device struct {
	id       string
	asn      uint32
	kind     DeviceKind
	addrs    []netip.Addr
	pingable bool

	// ifSorted/ifOrder are the interface lookup arena: the addresses sorted
	// for binary search, each paired with its index into addrs. Replaces the
	// per-device map[netip.Addr]int — built once, never mutated.
	ifSorted []netip.Addr
	ifOrder  []int32

	// addrASN is nil for the overwhelming majority of devices whose
	// interfaces all originate from the device's own AS.
	addrASN map[netip.Addr]uint32

	respondsFromProbed bool
	icmpSilent         bool
	fragEmitter        bool

	ipidModel IPIDModel
	ipid      *ipidState

	// filteredVantages lists the vantage labels whose probes are dropped —
	// at most a few entries, scanned linearly.
	filteredVantages []string

	mu       sync.RWMutex
	services []boundService

	udp udpServices
}

// NewDevice constructs a device. origin positions the IPID clock; pass the
// fabric clock's current time.
func NewDevice(cfg DeviceConfig, origin time.Time) (*Device, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("netsim: device must have an ID")
	}
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("netsim: device %s has no addresses", cfg.ID)
	}
	d := &Device{
		id:                 cfg.ID,
		asn:                cfg.ASN,
		kind:               cfg.Kind,
		addrs:              append([]netip.Addr(nil), cfg.Addrs...),
		pingable:           cfg.Pingable,
		respondsFromProbed: cfg.RespondsFromProbed,
		icmpSilent:         cfg.ICMPSilent,
		fragEmitter:        cfg.EmitsFragmentIDs,
		ipidModel:          cfg.IPID,
		ipid:               newIPIDState(cfg.IPIDSeed, cfg.IPIDVelocity, origin),
	}
	for i, a := range d.addrs {
		if !a.IsValid() {
			return nil, fmt.Errorf("netsim: device %s address %d invalid", cfg.ID, i)
		}
	}
	// Interface lookup arena: one sort at construction instead of a hash map
	// held for the device's lifetime.
	d.ifOrder = make([]int32, len(d.addrs))
	for i := range d.ifOrder {
		d.ifOrder[i] = int32(i)
	}
	slices.SortFunc(d.ifOrder, func(x, y int32) int { return d.addrs[x].Compare(d.addrs[y]) })
	d.ifSorted = make([]netip.Addr, len(d.addrs))
	for i, p := range d.ifOrder {
		d.ifSorted[i] = d.addrs[p]
	}
	for i := 1; i < len(d.ifSorted); i++ {
		if d.ifSorted[i] == d.ifSorted[i-1] {
			return nil, fmt.Errorf("netsim: device %s duplicate address %s", cfg.ID, d.ifSorted[i])
		}
	}
	if len(cfg.AddrASN) > 0 {
		d.addrASN = make(map[netip.Addr]uint32, len(cfg.AddrASN))
		for a, asn := range cfg.AddrASN {
			d.addrASN[a] = asn
		}
	}
	if len(cfg.FilteredVantages) > 0 {
		d.filteredVantages = append([]string(nil), cfg.FilteredVantages...)
	}
	return d, nil
}

// ifIndexOf returns the interface index of a, or ok=false when a is not one
// of the device's addresses.
func (d *Device) ifIndexOf(a netip.Addr) (int, bool) {
	i, ok := slices.BinarySearchFunc(d.ifSorted, a, netip.Addr.Compare)
	if !ok {
		return 0, false
	}
	return int(d.ifOrder[i]), true
}

// vantageFiltered reports whether the device's upstream drops this vantage's
// probes.
func (d *Device) vantageFiltered(v string) bool {
	for _, f := range d.filteredVantages {
		if f == v {
			return true
		}
	}
	return false
}

// service returns the entry bound on port, or nil. Caller holds d.mu.
func (d *Device) service(port uint16) *serviceEntry {
	for _, b := range d.services {
		if b.port == port {
			return b.e
		}
	}
	return nil
}

// ID returns the device's unique identifier.
func (d *Device) ID() string { return d.id }

// ASN returns the device's own autonomous system number.
func (d *Device) ASN() uint32 { return d.asn }

// Kind returns the device category.
func (d *Device) Kind() DeviceKind { return d.kind }

// Addrs returns the device's interface addresses in interface order. The
// returned slice must not be modified.
func (d *Device) Addrs() []netip.Addr { return d.addrs }

// AddrASN returns the origin AS of a specific interface address, falling back
// to the device ASN for addresses without an override.
func (d *Device) AddrASN(a netip.Addr) uint32 {
	if asn, ok := d.addrASN[a]; ok {
		return asn
	}
	return d.asn
}

// HasAddr reports whether a is one of the device's interfaces.
func (d *Device) HasAddr(a netip.Addr) bool {
	_, ok := d.ifIndexOf(a)
	return ok
}

// CanonicalAddr is the address the device uses as source for self-originated
// ICMP errors (its "loopback" or lowest-numbered interface).
func (d *Device) CanonicalAddr() netip.Addr { return d.addrs[0] }

// IPIDModel returns the configured IPID behaviour.
func (d *Device) IPIDModel() IPIDModel { return d.ipidModel }

// IPIDVelocity returns the configured background IPID velocity.
func (d *Device) IPIDVelocity() float64 { return d.ipid.Velocity() }

// SetService binds handler on port. If addrs is non-empty, only those
// addresses accept connections for the service; probes to the service on any
// other interface are silently dropped (ACL semantics). Re-binding a port
// replaces the previous service.
func (d *Device) SetService(port uint16, h Handler, addrs ...netip.Addr) {
	e := &serviceEntry{handler: h, allowed: newACLSet(addrs)}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, b := range d.services {
		if b.port == port {
			d.services[i].e = e
			return
		}
	}
	d.services = append(d.services, boundService{port: port, e: e})
}

// RemoveService unbinds the service on port, if any.
func (d *Device) RemoveService(port uint16) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, b := range d.services {
		if b.port == port {
			d.services = slices.Delete(d.services, i, i+1)
			return
		}
	}
}

// ServicePorts returns the bound TCP ports in unspecified order.
func (d *Device) ServicePorts() []uint16 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ports := make([]uint16, 0, len(d.services))
	for _, b := range d.services {
		ports = append(ports, b.port)
	}
	return ports
}

// ServiceAddrs returns the addresses on which the service bound to port
// answers (the ACL view), or all device addresses when unrestricted, or nil
// when the port has no service.
func (d *Device) ServiceAddrs(port uint16) []netip.Addr {
	d.mu.RLock()
	e := d.service(port)
	d.mu.RUnlock()
	if e == nil {
		return nil
	}
	if e.allowed == nil {
		return d.addrs
	}
	out := make([]netip.Addr, 0, len(e.allowed))
	for _, a := range d.addrs { // preserve interface order
		if e.allowed.has(a) {
			out = append(out, a)
		}
	}
	return out
}

// probeStatus classifies how the device treats a TCP SYN to (addr, port) from
// the given vantage.
func (d *Device) probeStatus(vantage string, addr netip.Addr, port uint16) ProbeStatus {
	if d.vantageFiltered(vantage) {
		return StatusFiltered
	}
	d.mu.RLock()
	e := d.service(port)
	d.mu.RUnlock()
	if e == nil {
		return StatusClosed
	}
	if e.allowed != nil && !e.allowed.has(addr) {
		return StatusFiltered
	}
	return StatusOpen
}

// handlerFor returns the handler serving (addr, port), or nil when the probe
// would not complete a handshake.
func (d *Device) handlerFor(vantage string, addr netip.Addr, port uint16) Handler {
	if d.probeStatus(vantage, addr, port) != StatusOpen {
		return nil
	}
	d.mu.RLock()
	e := d.service(port)
	d.mu.RUnlock()
	if e == nil {
		return nil
	}
	return e.handler
}

// sampleIPID answers an IPID probe against addr at the given time, or false
// if the device does not respond to such probes. A non-nil policy overrides
// the device's own IPID model (the fabric's fault-injection hook).
func (d *Device) sampleIPID(vantage string, addr netip.Addr, now time.Time, policy *IPIDModel) (uint16, bool) {
	if !d.pingable || d.vantageFiltered(vantage) {
		return 0, false
	}
	idx, ok := d.ifIndexOf(addr)
	if !ok {
		return 0, false
	}
	model := d.ipidModel
	if policy != nil {
		model = *policy
	}
	return d.ipid.sample(model, idx, now), true
}

// icmpSource answers an iffinder-style UDP probe to a closed port: the
// address the resulting ICMP port-unreachable claims as source, or ok=false
// when the device stays silent.
func (d *Device) icmpSource(vantage string, probed netip.Addr) (netip.Addr, bool) {
	if d.icmpSilent || d.vantageFiltered(vantage) {
		return netip.Addr{}, false
	}
	if _, ok := d.ifIndexOf(probed); !ok {
		return netip.Addr{}, false
	}
	if d.respondsFromProbed {
		return probed, true
	}
	// ICMP errors are sourced from the canonical interface of the matching
	// address family.
	for _, a := range d.addrs {
		if a.Is4() == probed.Is4() {
			return a, true
		}
	}
	return d.addrs[0], true
}
