// Package netsim implements an in-memory Internet: devices with addressed
// interfaces, TCP services reachable through net.Conn pipes, and the probe
// primitives (SYN, ICMP echo for IPID, UDP-to-closed-port) that the
// measurement tools in this repository build on.
//
// The fabric replaces the real Internet that the paper scans. Every scanner
// in this repository talks to it through the same Dialer interface it would
// use against real targets, so the application-layer code paths — TCP
// handshakes, SSH key exchanges, BGP OPEN parsing — are identical; only the
// transport is simulated.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"
)

// ProbeStatus classifies a TCP SYN probe outcome.
type ProbeStatus int

const (
	// StatusFiltered means no answer: unrouted address, firewall drop, or
	// IDS suppression of the scanning vantage.
	StatusFiltered ProbeStatus = iota
	// StatusClosed means an RST came back: host alive, port closed.
	StatusClosed
	// StatusOpen means SYN-ACK: a service is listening.
	StatusOpen
)

// String returns the probe status name.
func (s ProbeStatus) String() string {
	switch s {
	case StatusFiltered:
		return "filtered"
	case StatusClosed:
		return "closed"
	case StatusOpen:
		return "open"
	default:
		return "invalid"
	}
}

// Common error values returned by fabric dials. Both satisfy net.Error so
// that scanner code written for real sockets handles them naturally.
var (
	// ErrFiltered is returned when a dial would never complete: the SYN is
	// dropped and, on a real network, the dialer would wait out its timeout.
	ErrFiltered = &dialError{msg: "connect: no route or filtered", timeout: true}
	// ErrRefused is returned when the target answers with RST.
	ErrRefused = &dialError{msg: "connect: connection refused"}
)

// dialError is a net.Error with a configurable timeout flag.
type dialError struct {
	msg     string
	timeout bool
}

func (e *dialError) Error() string   { return e.msg }
func (e *dialError) Timeout() bool   { return e.timeout }
func (e *dialError) Temporary() bool { return false }

// Fabric is the simulated Internet: a binding of interface addresses to
// devices plus the probe and dial machinery. All methods are safe for
// concurrent use; scans run with hundreds of goroutines.
type Fabric struct {
	clock Clock

	mu   sync.RWMutex
	bind map[netip.Addr]*Device
	// devices holds every device ever added, keyed by ID, including devices
	// whose addresses are currently churned out.
	devices map[string]*Device
	// faults is the installed adversarial-condition policy (nil when
	// fault-free, so hot probe paths pay one atomic load); see faults.go.
	faults atomic.Pointer[Faults]
}

// New returns an empty fabric driven by clock.
func New(clock Clock) *Fabric {
	if clock == nil {
		clock = RealClock{}
	}
	return &Fabric{
		clock:   clock,
		bind:    make(map[netip.Addr]*Device),
		devices: make(map[string]*Device),
	}
}

// Clock returns the fabric clock.
func (f *Fabric) Clock() Clock { return f.clock }

// AddDevice registers the device and binds all of its interface addresses.
// It fails if any address is already bound to a different device.
func (f *Fabric) AddDevice(d *Device) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range d.Addrs() {
		if cur, ok := f.bind[a]; ok && cur != d {
			return fmt.Errorf("netsim: address %s already bound to device %s", a, cur.ID())
		}
	}
	for _, a := range d.Addrs() {
		f.bind[a] = d
	}
	f.devices[d.ID()] = d
	return nil
}

// Unbind removes the binding for addr, simulating address churn (the device
// keeps its other interfaces). Unbinding an unknown address is a no-op.
func (f *Fabric) Unbind(addr netip.Addr) {
	f.mu.Lock()
	delete(f.bind, addr)
	f.mu.Unlock()
}

// Bind points addr at the device with the given ID, replacing any previous
// binding. It is the churn counterpart of Unbind: an address freed by one
// customer gets reassigned to another.
func (f *Fabric) Bind(addr netip.Addr, deviceID string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[deviceID]
	if !ok {
		return fmt.Errorf("netsim: unknown device %q", deviceID)
	}
	if !d.HasAddr(addr) {
		return fmt.Errorf("netsim: device %s does not own address %s", deviceID, addr)
	}
	f.bind[addr] = d
	return nil
}

// Lookup returns the device currently answering at addr, or nil.
func (f *Fabric) Lookup(addr netip.Addr) *Device {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.bind[addr]
}

// Device returns a registered device by ID, or nil.
func (f *Fabric) Device(id string) *Device {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.devices[id]
}

// NumDevices returns the number of registered devices.
func (f *Fabric) NumDevices() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.devices)
}

// NumBound returns the number of currently bound interface addresses.
func (f *Fabric) NumBound() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.bind)
}

// BoundAddrs returns a snapshot of all currently bound addresses. The order
// is unspecified; scan tools apply their own permutation.
func (f *Fabric) BoundAddrs() []netip.Addr {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]netip.Addr, 0, len(f.bind))
	for a := range f.bind {
		out = append(out, a)
	}
	return out
}

// Vantage returns a scanning viewpoint with the given label. Devices whose
// IDS filters that label silently drop its probes; this is how the simulation
// reproduces the coverage gap between a single research vantage point and
// Censys's distributed scanners.
func (f *Fabric) Vantage(label string) *Vantage {
	return &Vantage{fabric: f, label: label}
}

// Vantage is a labelled scanning viewpoint on a fabric. It satisfies the
// Dialer interface used by the service scanners.
//
// Concurrency contract: a Vantage is immutable after creation and every
// method is safe for concurrent use — the collection pipeline drives one
// Vantage from hundreds of goroutines across several protocol sweeps at
// once. Probe and dial paths only read fabric bindings (under the fabric's
// RWMutex) and immutable device configuration; the sole mutable state they
// touch is each device's lock-guarded IPID counter.
type Vantage struct {
	fabric *Fabric
	label  string
}

// Label returns the vantage label.
func (v *Vantage) Label() string { return v.label }

// SynProbe reports how a TCP SYN to addr:port from this vantage is answered.
// This is the zmaplite fast path: no connection state is created.
func (v *Vantage) SynProbe(addr netip.Addr, port uint16) ProbeStatus {
	if v.faultDrop(faultSYN, addr, port) {
		return StatusFiltered
	}
	d := v.fabric.Lookup(addr)
	if d == nil {
		return StatusFiltered
	}
	return d.probeStatus(v.label, addr, port)
}

// IPIDProbe elicits one IP identification sample from addr (conceptually an
// ICMP echo; MIDAR uses several probe methods, all of which sample the same
// counter). ok is false when the target does not answer.
func (v *Vantage) IPIDProbe(addr netip.Addr) (ipid uint16, ok bool) {
	if v.faultDrop(faultICMP, addr, 0) {
		return 0, false
	}
	d := v.fabric.Lookup(addr)
	if d == nil {
		return 0, false
	}
	return d.sampleIPID(v.label, addr, v.fabric.clock.Now(), v.ipidPolicy())
}

// UDPProbe sends a UDP datagram to a (presumed closed) port and reports the
// source address of the resulting ICMP port-unreachable, if any. This is the
// iffinder / common-source-address primitive.
func (v *Vantage) UDPProbe(addr netip.Addr, port uint16) (from netip.Addr, ok bool) {
	if v.faultDrop(faultUDP, addr, port) {
		return netip.Addr{}, false
	}
	d := v.fabric.Lookup(addr)
	if d == nil {
		return netip.Addr{}, false
	}
	// A UDP probe to a port with a TCP service still reaches a closed UDP
	// port; the ICMP behaviour is the device's alone.
	_ = port
	return d.icmpSource(v.label, addr)
}

// DialContext dials a TCP connection to address ("ip:port") through the
// fabric. It matches net.Dialer.DialContext's signature so scanners accept
// either. Filtered targets fail immediately with a net.Error whose Timeout()
// is true (the simulation does not make the caller wait out a real timer);
// closed ports fail with ErrRefused.
func (v *Vantage) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	switch network {
	case "tcp", "tcp4", "tcp6":
	default:
		return nil, fmt.Errorf("netsim: unsupported network %q", network)
	}
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad address %q: %w", address, err)
	}
	addr, err := netip.ParseAddr(host)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad host %q: %w", host, err)
	}
	addr = addr.Unmap()
	p, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad port %q: %w", portStr, err)
	}
	port := uint16(p)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Per-wire loss also eats the packets of a would-be handshake; the
	// throttle does not — rate limiters target probe floods, not the single
	// follow-up connection.
	if v.faultLost(faultDial, addr, port) {
		return nil, opError("dial", address, ErrFiltered)
	}

	d := v.fabric.Lookup(addr)
	if d == nil {
		return nil, opError("dial", address, ErrFiltered)
	}
	h := d.handlerFor(v.label, addr, port)
	if h == nil {
		switch d.probeStatus(v.label, addr, port) {
		case StatusClosed:
			return nil, opError("dial", address, ErrRefused)
		default:
			return nil, opError("dial", address, ErrFiltered)
		}
	}

	clientSide, serverSide := net.Pipe()
	local := &net.TCPAddr{IP: net.ParseIP("198.51.100.7"), Port: 54321}
	remote := &net.TCPAddr{IP: addr.AsSlice(), Port: int(port)}
	client := &simConn{Conn: clientSide, local: local, remote: remote}
	server := &simConn{Conn: serverSide, local: remote, remote: local}

	go func() {
		defer server.Close()
		h.Serve(server, ServeContext{
			Device:    d,
			LocalAddr: addr,
			LocalPort: port,
			Clock:     v.fabric.clock,
		})
	}()
	return client, nil
}

// opError wraps err in a *net.OpError like the real dialer does.
func opError(op, address string, err error) error {
	return &net.OpError{Op: op, Net: "tcp", Addr: strAddr(address), Err: err}
}

// strAddr is a minimal net.Addr for error reporting.
type strAddr string

func (a strAddr) Network() string { return "tcp" }
func (a strAddr) String() string  { return string(a) }

// simConn overrides the pipe's placeholder addresses with TCP-looking ones so
// protocol code that inspects LocalAddr/RemoteAddr behaves as on real sockets.
type simConn struct {
	net.Conn
	local, remote net.Addr
}

// LocalAddr returns the simulated local address.
func (c *simConn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the simulated remote address.
func (c *simConn) RemoteAddr() net.Addr { return c.remote }

// IsTimeout reports whether err represents a filtered/timeout dial, matching
// both fabric errors and real net timeouts.
func IsTimeout(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return ne.Timeout()
	}
	return false
}

// IsRefused reports whether err represents a refused connection.
func IsRefused(err error) bool {
	var de *dialError
	if errors.As(err, &de) {
		return de == ErrRefused
	}
	return false
}
