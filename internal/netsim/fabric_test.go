package netsim

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"
)

func mustAddr(t testing.TB, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatalf("ParseAddr(%q): %v", s, err)
	}
	return a
}

func testDevice(t testing.TB, cfg DeviceConfig) *Device {
	t.Helper()
	d, err := NewDevice(cfg, time.Unix(0, 0))
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func echoHandler() Handler {
	return HandlerFunc(func(conn net.Conn, sc ServeContext) {
		fmt.Fprintf(conn, "hello from %s\n", sc.LocalAddr)
	})
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(DeviceConfig{}, time.Time{}); err == nil {
		t.Error("want error for missing ID")
	}
	if _, err := NewDevice(DeviceConfig{ID: "d"}, time.Time{}); err == nil {
		t.Error("want error for no addresses")
	}
	a := netip.MustParseAddr("10.0.0.1")
	if _, err := NewDevice(DeviceConfig{ID: "d", Addrs: []netip.Addr{a, a}}, time.Time{}); err == nil {
		t.Error("want error for duplicate address")
	}
	if _, err := NewDevice(DeviceConfig{ID: "d", Addrs: []netip.Addr{{}}}, time.Time{}); err == nil {
		t.Error("want error for invalid address")
	}
}

func TestFabricBindAndLookup(t *testing.T) {
	f := New(NewSimClock(time.Unix(0, 0)))
	a1 := mustAddr(t, "10.0.0.1")
	a2 := mustAddr(t, "10.0.0.2")
	d := testDevice(t, DeviceConfig{ID: "r1", ASN: 65001, Addrs: []netip.Addr{a1, a2}})
	if err := f.AddDevice(d); err != nil {
		t.Fatalf("AddDevice: %v", err)
	}
	if got := f.Lookup(a1); got != d {
		t.Errorf("Lookup(%s) = %v, want r1", a1, got)
	}
	if got := f.Lookup(a2); got != d {
		t.Errorf("Lookup(%s) = %v, want r1", a2, got)
	}
	if f.NumBound() != 2 {
		t.Errorf("NumBound = %d, want 2", f.NumBound())
	}
	if f.NumDevices() != 1 {
		t.Errorf("NumDevices = %d, want 1", f.NumDevices())
	}

	// A second device may not claim a bound address.
	d2 := testDevice(t, DeviceConfig{ID: "r2", Addrs: []netip.Addr{a2}})
	if err := f.AddDevice(d2); err == nil {
		t.Error("AddDevice with conflicting address: want error")
	}

	// Churn: unbind then rebind.
	f.Unbind(a2)
	if f.Lookup(a2) != nil {
		t.Error("Lookup after Unbind: want nil")
	}
	if err := f.Bind(a2, "r1"); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if f.Lookup(a2) != d {
		t.Error("Lookup after Bind: want r1")
	}
	if err := f.Bind(a1, "missing"); err == nil {
		t.Error("Bind to unknown device: want error")
	}
	if err := f.Bind(mustAddr(t, "10.9.9.9"), "r1"); err == nil {
		t.Error("Bind of address the device does not own: want error")
	}
}

func TestSynProbeStatuses(t *testing.T) {
	f := New(NewSimClock(time.Unix(0, 0)))
	open := mustAddr(t, "10.0.0.1")
	aclOnly := mustAddr(t, "10.0.0.2")
	d := testDevice(t, DeviceConfig{ID: "r1", Addrs: []netip.Addr{open, aclOnly}})
	d.SetService(22, echoHandler(), open) // ACL: SSH answers only on .1
	if err := f.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	v := f.Vantage("probe1")

	if got := v.SynProbe(open, 22); got != StatusOpen {
		t.Errorf("SynProbe(open,22) = %v, want open", got)
	}
	if got := v.SynProbe(aclOnly, 22); got != StatusFiltered {
		t.Errorf("SynProbe(acl,22) = %v, want filtered (ACL drop)", got)
	}
	if got := v.SynProbe(open, 179); got != StatusClosed {
		t.Errorf("SynProbe(open,179) = %v, want closed", got)
	}
	if got := v.SynProbe(mustAddr(t, "10.255.0.1"), 22); got != StatusFiltered {
		t.Errorf("SynProbe(unrouted) = %v, want filtered", got)
	}
}

func TestVantageFiltering(t *testing.T) {
	f := New(NewSimClock(time.Unix(0, 0)))
	a := mustAddr(t, "10.0.0.1")
	d := testDevice(t, DeviceConfig{
		ID: "r1", Addrs: []netip.Addr{a},
		FilteredVantages: []string{"active"},
		Pingable:         true,
	})
	d.SetService(22, echoHandler())
	if err := f.AddDevice(d); err != nil {
		t.Fatal(err)
	}

	if got := f.Vantage("active").SynProbe(a, 22); got != StatusFiltered {
		t.Errorf("filtered vantage SynProbe = %v, want filtered", got)
	}
	if got := f.Vantage("censys").SynProbe(a, 22); got != StatusOpen {
		t.Errorf("other vantage SynProbe = %v, want open", got)
	}
	if _, ok := f.Vantage("active").IPIDProbe(a); ok {
		t.Error("filtered vantage IPIDProbe should fail")
	}
	if _, ok := f.Vantage("censys").IPIDProbe(a); !ok {
		t.Error("other vantage IPIDProbe should succeed")
	}
}

func TestDialOpenClosedFiltered(t *testing.T) {
	f := New(NewSimClock(time.Unix(0, 0)))
	a := mustAddr(t, "192.0.2.1")
	d := testDevice(t, DeviceConfig{ID: "r1", Addrs: []netip.Addr{a}})
	d.SetService(22, echoHandler())
	if err := f.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	v := f.Vantage("t")
	ctx := context.Background()

	conn, err := v.DialContext(ctx, "tcp", "192.0.2.1:22")
	if err != nil {
		t.Fatalf("dial open: %v", err)
	}
	defer conn.Close()
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if want := "hello from 192.0.2.1\n"; line != want {
		t.Errorf("read %q, want %q", line, want)
	}
	if got := conn.RemoteAddr().String(); got != "192.0.2.1:22" {
		t.Errorf("RemoteAddr = %q, want 192.0.2.1:22", got)
	}

	if _, err := v.DialContext(ctx, "tcp", "192.0.2.1:80"); !IsRefused(err) {
		t.Errorf("dial closed port: err = %v, want refused", err)
	}
	if _, err := v.DialContext(ctx, "tcp", "192.0.2.99:22"); !IsTimeout(err) {
		t.Errorf("dial unrouted: err = %v, want timeout-flavoured", err)
	}
	if _, err := v.DialContext(ctx, "udp", "192.0.2.1:22"); err == nil {
		t.Error("dial udp: want error")
	}
	if _, err := v.DialContext(ctx, "tcp", "no-port"); err == nil {
		t.Error("dial bad address: want error")
	}
	if _, err := v.DialContext(ctx, "tcp", "not-an-ip:22"); err == nil {
		t.Error("dial non-IP host: want error")
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := v.DialContext(cancelled, "tcp", "192.0.2.1:22"); err == nil {
		t.Error("dial with cancelled context: want error")
	}
}

func TestDialIPv6(t *testing.T) {
	f := New(NewSimClock(time.Unix(0, 0)))
	a := mustAddr(t, "2001:db8::1")
	d := testDevice(t, DeviceConfig{ID: "r1", Addrs: []netip.Addr{a}})
	d.SetService(22, echoHandler())
	if err := f.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	conn, err := f.Vantage("t").DialContext(context.Background(), "tcp", "[2001:db8::1]:22")
	if err != nil {
		t.Fatalf("dial v6: %v", err)
	}
	defer conn.Close()
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if want := "hello from 2001:db8::1\n"; line != want {
		t.Errorf("read %q, want %q", line, want)
	}
}

func TestServeContextReportsInterface(t *testing.T) {
	f := New(NewSimClock(time.Unix(0, 0)))
	a1 := mustAddr(t, "10.0.0.1")
	a2 := mustAddr(t, "10.0.0.2")
	d := testDevice(t, DeviceConfig{ID: "r1", Addrs: []netip.Addr{a1, a2}})
	got := make(chan netip.Addr, 2)
	d.SetService(22, HandlerFunc(func(conn net.Conn, sc ServeContext) {
		got <- sc.LocalAddr
	}))
	if err := f.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	v := f.Vantage("t")
	for _, target := range []string{"10.0.0.1:22", "10.0.0.2:22"} {
		conn, err := v.DialContext(context.Background(), "tcp", target)
		if err != nil {
			t.Fatalf("dial %s: %v", target, err)
		}
		conn.Close()
	}
	seen := map[netip.Addr]bool{<-got: true, <-got: true}
	if !seen[a1] || !seen[a2] {
		t.Errorf("handler saw %v, want both %s and %s", seen, a1, a2)
	}
}

func TestIPIDModels(t *testing.T) {
	clk := NewSimClock(time.Unix(1000, 0))
	f := New(clk)
	mk := func(id string, model IPIDModel, velocity float64, addrs ...string) []netip.Addr {
		var as []netip.Addr
		for _, s := range addrs {
			as = append(as, mustAddr(t, s))
		}
		d := testDevice(t, DeviceConfig{
			ID: id, Addrs: as, IPID: model, IPIDVelocity: velocity,
			IPIDSeed: 42, Pingable: true,
		})
		if err := f.AddDevice(d); err != nil {
			t.Fatal(err)
		}
		return as
	}
	v := f.Vantage("t")

	t.Run("shared monotonic counts across interfaces", func(t *testing.T) {
		as := mk("shared", IPIDSharedMonotonic, 0, "10.1.0.1", "10.1.0.2")
		x1, ok := v.IPIDProbe(as[0])
		if !ok {
			t.Fatal("probe failed")
		}
		x2, _ := v.IPIDProbe(as[1])
		x3, _ := v.IPIDProbe(as[0])
		if x2 != x1+1 || x3 != x2+1 {
			t.Errorf("shared counter not monotonic across interfaces: %d %d %d", x1, x2, x3)
		}
	})

	t.Run("velocity advances with clock", func(t *testing.T) {
		as := mk("vel", IPIDSharedMonotonic, 100, "10.2.0.1")
		x1, _ := v.IPIDProbe(as[0])
		clk.Advance(1 * time.Second)
		x2, _ := v.IPIDProbe(as[0])
		diff := int(uint16(x2 - x1))
		if diff < 90 || diff > 110 {
			t.Errorf("velocity 100 pps over 1s: diff = %d, want ~101", diff)
		}
	})

	t.Run("per-interface counters diverge", func(t *testing.T) {
		as := mk("perif", IPIDPerInterface, 0, "10.3.0.1", "10.3.0.2")
		a1a, _ := v.IPIDProbe(as[0])
		b1, _ := v.IPIDProbe(as[1])
		a2, _ := v.IPIDProbe(as[0])
		if a2 != a1a+1 {
			t.Errorf("per-interface counter on if0 not monotonic: %d then %d", a1a, a2)
		}
		if b1 == a1a+1 {
			t.Errorf("interfaces appear to share a counter: %d %d", a1a, b1)
		}
	})

	t.Run("zero model answers zero", func(t *testing.T) {
		as := mk("zero", IPIDZero, 0, "10.4.0.1")
		for i := 0; i < 3; i++ {
			if x, _ := v.IPIDProbe(as[0]); x != 0 {
				t.Fatalf("zero model answered %d", x)
			}
		}
	})

	t.Run("unpingable device does not answer", func(t *testing.T) {
		a := mustAddr(t, "10.5.0.1")
		d := testDevice(t, DeviceConfig{ID: "mute", Addrs: []netip.Addr{a}, Pingable: false})
		if err := f.AddDevice(d); err != nil {
			t.Fatal(err)
		}
		if _, ok := v.IPIDProbe(a); ok {
			t.Error("unpingable device answered IPID probe")
		}
	})
}

func TestUDPProbeICMPSource(t *testing.T) {
	f := New(NewSimClock(time.Unix(0, 0)))
	canon4 := mustAddr(t, "10.0.0.1")
	other4 := mustAddr(t, "10.0.0.2")
	v6 := mustAddr(t, "2001:db8::1")
	d := testDevice(t, DeviceConfig{ID: "r1", Addrs: []netip.Addr{canon4, other4, v6}})
	if err := f.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	v := f.Vantage("t")

	from, ok := v.UDPProbe(other4, 33434)
	if !ok || from != canon4 {
		t.Errorf("UDPProbe(%s) = %s,%v; want canonical %s", other4, from, ok, canon4)
	}
	// Family-matched canonical source for IPv6 probes.
	from6, ok := v.UDPProbe(v6, 33434)
	if !ok || from6 != v6 {
		t.Errorf("UDPProbe(v6) = %s,%v; want %s", from6, ok, v6)
	}

	// RespondsFromProbed defeats the technique.
	a := mustAddr(t, "10.9.0.1")
	b := mustAddr(t, "10.9.0.2")
	d2 := testDevice(t, DeviceConfig{ID: "r2", Addrs: []netip.Addr{a, b}, RespondsFromProbed: true})
	if err := f.AddDevice(d2); err != nil {
		t.Fatal(err)
	}
	if from, _ := v.UDPProbe(b, 33434); from != b {
		t.Errorf("RespondsFromProbed: from = %s, want %s", from, b)
	}

	// Silent devices say nothing.
	c := mustAddr(t, "10.9.1.1")
	d3 := testDevice(t, DeviceConfig{ID: "r3", Addrs: []netip.Addr{c}, ICMPSilent: true})
	if err := f.AddDevice(d3); err != nil {
		t.Fatal(err)
	}
	if _, ok := v.UDPProbe(c, 33434); ok {
		t.Error("ICMP-silent device responded")
	}
	if _, ok := v.UDPProbe(mustAddr(t, "10.200.0.1"), 33434); ok {
		t.Error("unrouted address responded")
	}
}

func TestDeviceServiceViews(t *testing.T) {
	a1 := mustAddr(t, "10.0.0.1")
	a2 := mustAddr(t, "10.0.0.2")
	d := testDevice(t, DeviceConfig{ID: "r1", ASN: 65010, Addrs: []netip.Addr{a1, a2},
		AddrASN: map[netip.Addr]uint32{a2: 65020}})
	d.SetService(22, echoHandler())
	d.SetService(179, echoHandler(), a1)

	if got := d.ServiceAddrs(22); len(got) != 2 {
		t.Errorf("ServiceAddrs(22) = %v, want both interfaces", got)
	}
	if got := d.ServiceAddrs(179); len(got) != 1 || got[0] != a1 {
		t.Errorf("ServiceAddrs(179) = %v, want [%s]", got, a1)
	}
	if got := d.ServiceAddrs(80); got != nil {
		t.Errorf("ServiceAddrs(80) = %v, want nil", got)
	}
	ports := d.ServicePorts()
	if len(ports) != 2 {
		t.Errorf("ServicePorts = %v, want 2 ports", ports)
	}
	d.RemoveService(179)
	if got := d.ServiceAddrs(179); got != nil {
		t.Errorf("after RemoveService, ServiceAddrs(179) = %v, want nil", got)
	}

	if d.AddrASN(a1) != 65010 {
		t.Errorf("AddrASN(a1) = %d, want device ASN 65010", d.AddrASN(a1))
	}
	if d.AddrASN(a2) != 65020 {
		t.Errorf("AddrASN(a2) = %d, want override 65020", d.AddrASN(a2))
	}
	if d.CanonicalAddr() != a1 {
		t.Errorf("CanonicalAddr = %s, want %s", d.CanonicalAddr(), a1)
	}
	if !d.HasAddr(a2) || d.HasAddr(mustAddr(t, "10.0.0.3")) {
		t.Error("HasAddr misbehaves")
	}
}

func TestSimClock(t *testing.T) {
	origin := time.Unix(5000, 0)
	c := NewSimClock(origin)
	if !c.Now().Equal(origin) {
		t.Errorf("Now = %v, want %v", c.Now(), origin)
	}
	c.Advance(3 * time.Second)
	if got := c.Now(); !got.Equal(origin.Add(3 * time.Second)) {
		t.Errorf("after Advance: %v", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Now(); !got.Equal(origin.Add(3 * time.Second)) {
		t.Errorf("negative Advance changed clock: %v", got)
	}
	c.Set(origin) // backwards Set ignored
	if got := c.Now(); !got.Equal(origin.Add(3 * time.Second)) {
		t.Errorf("backwards Set changed clock: %v", got)
	}
	c.Set(origin.Add(time.Minute))
	if got := c.Now(); !got.Equal(origin.Add(time.Minute)) {
		t.Errorf("Set forward: %v", got)
	}
	var rc RealClock
	if rc.Now().IsZero() {
		t.Error("RealClock returned zero time")
	}
}

func TestProbeStatusAndKindStrings(t *testing.T) {
	cases := map[fmt.Stringer]string{
		StatusFiltered:      "filtered",
		StatusClosed:        "closed",
		StatusOpen:          "open",
		ProbeStatus(99):     "invalid",
		KindRouter:          "router",
		KindServer:          "server",
		DeviceKind(9):       "unknown",
		IPIDSharedMonotonic: "shared-monotonic",
		IPIDPerInterface:    "per-interface",
		IPIDRandom:          "random",
		IPIDZero:            "zero",
		IPIDHighVelocity:    "high-velocity",
		IPIDModel(77):       "unknown",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%T(%v).String() = %q, want %q", v, v, got, want)
		}
	}
}
