package netsim

import (
	"net/netip"
)

// Faults is the fabric's adversarial-condition dial: per-wire packet loss,
// rate-limiter throttling, and IPID-policy overrides. The zero value injects
// nothing. Scenario presets (internal/scenario) compose these with topo
// knobs to build the worlds where MIDAR-style baselines break.
//
// Determinism contract: every drop decision is quenched randomness — a
// Bernoulli draw keyed by (Seed, fault kind, vantage, target address, port),
// never by execution order, wall clock, or a shared counter. A lossy wire
// therefore loses the same probes in every run, which is what keeps Datasets
// and SCENARIOS.json byte-identical for a fixed seed at any concurrency
// setting.
type Faults struct {
	// Seed keys the drop draws; scenario runs reuse the world seed.
	Seed uint64
	// LossRate is per-wire packet loss in [0, 1): each (vantage, addr,
	// port, probe kind) wire independently drops with this probability.
	// Loss hits everything — SYN probes, service dials, UDP exchanges,
	// ICMP/IPID/fragment probes.
	LossRate float64
	// ThrottleRate models upstream SYN/ICMP rate limiters in [0, 1): it
	// additionally drops the *fast-path* probes a polite scanner fires in
	// bulk (SYN sweeps, IPID sampling, UDP discovery), while established
	// service dials pass. This is the "scanner gets rate limited" regime,
	// distinct from loss, which also breaks completed handshakes.
	ThrottleRate float64
	// IPIDPolicy, when non-nil, overrides every device's IP-identification
	// model — e.g. forcing IPIDPerInterface world-wide reproduces the
	// counter-per-interface routers that defeat MIDAR's monotonic-bounds
	// test. Counter state stays per-device, so the override is safe to
	// apply to an already built world.
	IPIDPolicy *IPIDModel
}

// IPIDPolicyOf is a convenience constructor for the override pointer.
func IPIDPolicyOf(m IPIDModel) *IPIDModel { return &m }

// active reports whether the faults would change any behaviour.
func (fl Faults) active() bool {
	return fl.LossRate > 0 || fl.ThrottleRate > 0 || fl.IPIDPolicy != nil
}

// Probe kinds keying the independent drop draws. Distinct kinds make the SYN
// sweep and the follow-up service dial independent wires, as they are in
// real measurement (the SYN that got through says nothing about the next
// packet).
const (
	faultSYN byte = iota + 1
	faultDial
	faultUDP
	faultICMP
	faultFrag
)

// Salts separating the loss and throttle draw streams.
const (
	saltLoss     byte = 'L'
	saltThrottle byte = 'T'
)

// quench maps one wire to a stable variate in [0, 1): FNV-1a (the same hash
// family as xrand.Hash64, inlined over binary inputs so the probe hot loops
// stay allocation-free) over (seed, salt, kind, vantage, addr, port), with
// xrand.Prob's uint64→float64 mapping.
func quench(seed uint64, salt, kind byte, vantage string, addr netip.Addr, port uint16) float64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < 64; i += 8 {
		h ^= (seed >> i) & 0xff
		h *= prime
	}
	h ^= uint64(salt)
	h *= prime
	h ^= uint64(kind)
	h *= prime
	for i := 0; i < len(vantage); i++ {
		h ^= uint64(vantage[i])
		h *= prime
	}
	a16 := addr.As16()
	for _, b := range a16 {
		h ^= uint64(b)
		h *= prime
	}
	h ^= uint64(port & 0xff)
	h *= prime
	h ^= uint64(port >> 8)
	h *= prime
	return float64(h>>11) / (1 << 53)
}

// lost reports whether per-wire loss eats this probe.
func (fl *Faults) lost(kind byte, vantage string, addr netip.Addr, port uint16) bool {
	return fl.LossRate > 0 && quench(fl.Seed, saltLoss, kind, vantage, addr, port) < fl.LossRate
}

// throttled reports whether the rate limiter eats this fast-path probe.
func (fl *Faults) throttled(kind byte, vantage string, addr netip.Addr, port uint16) bool {
	return fl.ThrottleRate > 0 && quench(fl.Seed, saltThrottle, kind, vantage, addr, port) < fl.ThrottleRate
}

// Draw exposes one wire's quenched fault decision — the loss and throttle
// Bernoulli draws every fast-path probe pays under an active policy. It
// exists for benchmarks and diagnostics (the alloc gate prices it at zero
// heap allocations); the probe paths use the unexported equivalents.
func (fl Faults) Draw(vantage string, addr netip.Addr, port uint16) (lost, throttled bool) {
	return fl.lost(faultSYN, vantage, addr, port), fl.throttled(faultSYN, vantage, addr, port)
}

// SetFaults installs the fault policy on the fabric. Call it between scans,
// never during one — like churn, fault changes are ordered world mutations
// (the probe paths themselves read the policy with one atomic load, so a
// fault-free fabric pays nothing on the hot paths).
func (f *Fabric) SetFaults(fl Faults) {
	if !fl.active() {
		f.faults.Store(nil)
		return
	}
	f.faults.Store(&fl)
}

// Faults returns the currently installed fault policy.
func (f *Fabric) Faults() Faults {
	if fl := f.faults.Load(); fl != nil {
		return *fl
	}
	return Faults{}
}

// faultDrop reports whether the installed policy (loss or throttle) eats a
// fast-path probe from this vantage. The single nil check is the entire
// fault-free cost.
func (v *Vantage) faultDrop(kind byte, addr netip.Addr, port uint16) bool {
	fl := v.fabric.faults.Load()
	if fl == nil {
		return false
	}
	return fl.lost(kind, v.label, addr, port) || fl.throttled(kind, v.label, addr, port)
}

// faultLost is the loss-only variant for the dial path: rate limiters target
// probe floods, not the single follow-up connection.
func (v *Vantage) faultLost(kind byte, addr netip.Addr, port uint16) bool {
	fl := v.fabric.faults.Load()
	return fl != nil && fl.lost(kind, v.label, addr, port)
}

// ipidPolicy returns the installed IPID override, or nil.
func (v *Vantage) ipidPolicy() *IPIDModel {
	if fl := v.fabric.faults.Load(); fl != nil {
		return fl.IPIDPolicy
	}
	return nil
}
