package netsim

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"
)

// faultWorld builds a fabric with n one-address devices serving TCP/22 and
// answering IPID probes from a shared monotonic counter.
func faultWorld(t *testing.T, n int) (*Fabric, []netip.Addr) {
	t.Helper()
	clock := NewSimClock(time.Date(2023, 3, 28, 0, 0, 0, 0, time.UTC))
	f := New(clock)
	addrs := make([]netip.Addr, 0, n)
	for i := 0; i < n; i++ {
		a := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		d, err := NewDevice(DeviceConfig{
			ID:    "d-" + a.String(),
			Addrs: []netip.Addr{a},
			IPID:  IPIDSharedMonotonic, IPIDSeed: uint64(i), Pingable: true,
		}, clock.Now())
		if err != nil {
			t.Fatal(err)
		}
		d.SetService(22, HandlerFunc(func(conn net.Conn, _ ServeContext) { conn.Close() }))
		if err := f.AddDevice(d); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	return f, addrs
}

// countOpen sweeps all addrs with SYN probes and counts the open ones.
func countOpen(v *Vantage, addrs []netip.Addr) int {
	open := 0
	for _, a := range addrs {
		if v.SynProbe(a, 22) == StatusOpen {
			open++
		}
	}
	return open
}

func TestFaultLossDropsAndIsDeterministic(t *testing.T) {
	f, addrs := faultWorld(t, 400)
	v := f.Vantage("active")

	if got := countOpen(v, addrs); got != len(addrs) {
		t.Fatalf("fault-free sweep: %d/%d open", got, len(addrs))
	}

	f.SetFaults(Faults{Seed: 7, LossRate: 0.25})
	first := countOpen(v, addrs)
	if first >= len(addrs) || first == 0 {
		t.Fatalf("lossy sweep: %d/%d open, want a strict subset", first, len(addrs))
	}
	// Quenched randomness: the same wires lose the same probes every sweep.
	for i := 0; i < 3; i++ {
		if again := countOpen(v, addrs); again != first {
			t.Fatalf("lossy sweep not deterministic: %d then %d", first, again)
		}
	}
	// A different seed quenches a different loss pattern (overwhelmingly).
	f.SetFaults(Faults{Seed: 8, LossRate: 0.25})
	perAddr := func() []bool {
		out := make([]bool, len(addrs))
		for i, a := range addrs {
			out[i] = v.SynProbe(a, 22) == StatusOpen
		}
		return out
	}
	f.SetFaults(Faults{Seed: 7, LossRate: 0.25})
	p7 := perAddr()
	f.SetFaults(Faults{Seed: 8, LossRate: 0.25})
	p8 := perAddr()
	same := true
	for i := range p7 {
		if p7[i] != p8[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("loss pattern identical across seeds")
	}
}

func TestFaultThrottleSparesDials(t *testing.T) {
	f, addrs := faultWorld(t, 300)
	v := f.Vantage("active")
	f.SetFaults(Faults{Seed: 3, ThrottleRate: 0.5})

	// The throttle eats a fraction of the SYN flood…
	open := countOpen(v, addrs)
	if open >= len(addrs) || open == 0 {
		t.Fatalf("throttled sweep: %d/%d open, want a strict subset", open, len(addrs))
	}
	// …and of the IPID probes…
	answered := 0
	for _, a := range addrs {
		if _, ok := v.IPIDProbe(a); ok {
			answered++
		}
	}
	if answered >= len(addrs) || answered == 0 {
		t.Fatalf("throttled IPID probes: %d/%d answered, want a strict subset", answered, len(addrs))
	}
	// …but never a follow-up service dial.
	for _, a := range addrs {
		conn, err := v.DialContext(context.Background(), "tcp", net.JoinHostPort(a.String(), "22"))
		if err != nil {
			t.Fatalf("dial %s under throttle: %v", a, err)
		}
		conn.Close()
	}
}

func TestFaultIPIDPolicyOverride(t *testing.T) {
	f, addrs := faultWorld(t, 1)
	v := f.Vantage("active")
	a := addrs[0]

	// Native model: shared monotonic counter, consecutive samples increase
	// by exactly one (the sim clock does not advance, so no velocity).
	s1, _ := v.IPIDProbe(a)
	s2, _ := v.IPIDProbe(a)
	if s2 != s1+1 {
		t.Fatalf("monotonic counter: %d then %d, want +1", s1, s2)
	}

	// Forced zero policy: every sample reads 0 without touching the device.
	f.SetFaults(Faults{IPIDPolicy: IPIDPolicyOf(IPIDZero)})
	if z, ok := v.IPIDProbe(a); !ok || z != 0 {
		t.Fatalf("IPIDZero policy: got (%d, %v), want (0, true)", z, ok)
	}

	// Lifting the policy resumes the device's own counter.
	f.SetFaults(Faults{})
	s3, _ := v.IPIDProbe(a)
	if s3 != s2+1 {
		t.Fatalf("counter after policy lift: %d, want %d", s3, s2+1)
	}
}

func TestFaultUDPAndFragPaths(t *testing.T) {
	clock := NewSimClock(time.Date(2023, 3, 28, 0, 0, 0, 0, time.UTC))
	f := New(clock)
	v4 := netip.MustParseAddr("10.9.0.1")
	v6 := netip.MustParseAddr("2001:db8::9")
	d, err := NewDevice(DeviceConfig{
		ID: "udp-frag", Addrs: []netip.Addr{v4, v6},
		IPID: IPIDSharedMonotonic, Pingable: true, EmitsFragmentIDs: true,
	}, clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	d.SetUDPService(161, func(req []byte, _ ServeContext) []byte { return []byte("ok") })
	if err := f.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	v := f.Vantage("active")

	if _, ok := v.UDPExchange(v4, 161, []byte("hi")); !ok {
		t.Fatal("fault-free UDP exchange failed")
	}
	if _, ok := v.FragIDProbe(v6); !ok {
		t.Fatal("fault-free frag probe failed")
	}

	// Total loss blacks out both datagram paths.
	f.SetFaults(Faults{Seed: 1, LossRate: 1.0})
	if _, ok := v.UDPExchange(v4, 161, []byte("hi")); ok {
		t.Fatal("UDP exchange survived 100% loss")
	}
	if _, ok := v.FragIDProbe(v6); ok {
		t.Fatal("frag probe survived 100% loss")
	}
}

// TestFaultDrawZeroAlloc enforces the megascale contract: a fault draw on
// the probe hot path — the full loss-plus-throttle decision — performs zero
// heap allocations. A megascale-x10 sweep makes hundreds of millions of
// these draws; any allocation here dominates the run.
func TestFaultDrawZeroAlloc(t *testing.T) {
	fl := &Faults{Seed: 42, LossRate: 0.03, ThrottleRate: 0.05}
	addr := netip.MustParseAddr("2001:db8::7")
	var sink bool
	allocs := testing.AllocsPerRun(200, func() {
		sink = fl.lost(faultSYN, "active", addr, 22) || fl.throttled(faultSYN, "active", addr, 22)
	})
	if allocs != 0 {
		t.Fatalf("fault draw allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}

// BenchmarkFaultDraw prices one full per-wire fault decision (loss and
// throttle streams), as every fast-path probe pays it under an active policy.
func BenchmarkFaultDraw(b *testing.B) {
	fl := &Faults{Seed: 42, LossRate: 0.03, ThrottleRate: 0.05}
	addr := netip.MustParseAddr("203.0.113.77")
	b.ReportAllocs()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = fl.lost(faultSYN, "active", addr, 22) || fl.throttled(faultSYN, "active", addr, 22)
	}
	_ = sink
}
