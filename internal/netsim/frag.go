package netsim

import (
	"net/netip"
	"time"
)

// IPv6 has no Identification field in its base header; Speedtrap (Luckie et
// al., IMC '13) elicits *fragmented* responses — by advertising a tiny MTU —
// and samples the 32-bit Identification of the Fragment extension header,
// which many routers draw from one shared counter. This file adds that probe
// primitive to the fabric.

// sample32 is the 32-bit analogue of ipidState.sample used for IPv6 fragment
// identifiers. It shares the same counter state: devices that use one
// counter for IPv4 IPID typically use it for fragment IDs too.
func (s *ipidState) sample32(m IPIDModel, ifIndex int, now time.Time) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m {
	case IPIDZero:
		return 0
	case IPIDRandom:
		return uint32(s.rng.Uint64())
	case IPIDPerInterface:
		for ifIndex >= len(s.perIf) {
			s.perIf = append(s.perIf, 0)
		}
		s.perIf[ifIndex]++
		return uint32(s.perIf[ifIndex] + uint64(ifIndex)*104729)
	case IPIDSharedMonotonic, IPIDHighVelocity:
		if now.After(s.lastTick) {
			dt := now.Sub(s.lastTick).Seconds()
			inc := s.velocity*dt + s.carry
			whole := uint64(inc)
			s.carry = inc - float64(whole)
			s.counter += whole
			s.lastTick = now
		}
		s.counter++
		return uint32(s.counter)
	default:
		return 0
	}
}

// sampleFragID answers a Speedtrap probe against an IPv6 interface, or false
// when the device does not emit fragment identifiers (most hosts answer
// atomically or not at all — the reason IPv6 alias resolution is hard). A
// non-nil policy overrides the device's IPID model, as in sampleIPID.
func (d *Device) sampleFragID(vantage string, addr netip.Addr, now time.Time, policy *IPIDModel) (uint32, bool) {
	if !d.fragEmitter || d.vantageFiltered(vantage) {
		return 0, false
	}
	if !addr.Is6() || addr.Is4In6() {
		return 0, false
	}
	idx, ok := d.ifIndexOf(addr)
	if !ok {
		return 0, false
	}
	model := d.ipidModel
	if policy != nil {
		model = *policy
	}
	return d.ipid.sample32(model, idx, now), true
}

// FragIDProbe elicits one IPv6 fragment-identification sample from addr —
// the Speedtrap primitive. ok is false when the target does not answer with
// fragmented packets.
func (v *Vantage) FragIDProbe(addr netip.Addr) (fragID uint32, ok bool) {
	if v.faultDrop(faultFrag, addr, 0) {
		return 0, false
	}
	d := v.fabric.Lookup(addr)
	if d == nil {
		return 0, false
	}
	return d.sampleFragID(v.label, addr, v.fabric.clock.Now(), v.ipidPolicy())
}
