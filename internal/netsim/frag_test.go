package netsim

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"
)

func fragDevice(t *testing.T, f *Fabric, id string, model IPIDModel, filtered []string, addrs ...string) []netip.Addr {
	t.Helper()
	var as []netip.Addr
	for _, s := range addrs {
		as = append(as, netip.MustParseAddr(s))
	}
	d, err := NewDevice(DeviceConfig{
		ID: id, Addrs: as, IPID: model, IPIDSeed: 99, IPIDVelocity: 10,
		Pingable: true, EmitsFragmentIDs: true, FilteredVantages: filtered,
	}, f.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	return as
}

func TestFragIDSharedAcrossV6Interfaces(t *testing.T) {
	clk := NewSimClock(time.Unix(0, 0))
	f := New(clk)
	as := fragDevice(t, f, "r1", IPIDSharedMonotonic, nil, "2a00:1::1", "2a00:1::2")
	v := f.Vantage("t")
	x1, ok1 := v.FragIDProbe(as[0])
	x2, ok2 := v.FragIDProbe(as[1])
	if !ok1 || !ok2 {
		t.Fatal("frag probes failed")
	}
	if x2 != x1+1 {
		t.Errorf("shared 32-bit counter not monotonic across interfaces: %d %d", x1, x2)
	}
}

func TestFragIDModels(t *testing.T) {
	clk := NewSimClock(time.Unix(0, 0))
	f := New(clk)
	v := f.Vantage("t")

	zero := fragDevice(t, f, "z", IPIDZero, nil, "2a00:2::1")
	if x, _ := v.FragIDProbe(zero[0]); x != 0 {
		t.Errorf("zero model answered %d", x)
	}
	perif := fragDevice(t, f, "p", IPIDPerInterface, nil, "2a00:3::1", "2a00:3::2")
	a1, _ := v.FragIDProbe(perif[0])
	b1, _ := v.FragIDProbe(perif[1])
	a2, _ := v.FragIDProbe(perif[0])
	if a2 != a1+1 {
		t.Errorf("per-interface counter not self-monotonic: %d %d", a1, a2)
	}
	if b1 == a1+1 {
		t.Errorf("per-interface counters appear shared: %d %d", a1, b1)
	}
	rnd := fragDevice(t, f, "r", IPIDRandom, nil, "2a00:4::1")
	x1, _ := v.FragIDProbe(rnd[0])
	x2, _ := v.FragIDProbe(rnd[0])
	x3, _ := v.FragIDProbe(rnd[0])
	if x1+1 == x2 && x2+1 == x3 {
		t.Error("random model produced a perfect counter (astronomically unlikely)")
	}
}

func TestFragIDVantageFiltering(t *testing.T) {
	clk := NewSimClock(time.Unix(0, 0))
	f := New(clk)
	as := fragDevice(t, f, "flt", IPIDSharedMonotonic, []string{"blocked"}, "2a00:5::1")
	if _, ok := f.Vantage("blocked").FragIDProbe(as[0]); ok {
		t.Error("filtered vantage got an answer")
	}
	if _, ok := f.Vantage("open").FragIDProbe(as[0]); !ok {
		t.Error("unfiltered vantage got no answer")
	}
}

func TestConcurrentProbesAndDials(t *testing.T) {
	// Hammer one device from many goroutines across every probe type; the
	// race detector validates the locking story.
	clk := NewSimClock(time.Unix(0, 0))
	f := New(clk)
	as := fragDevice(t, f, "busy", IPIDSharedMonotonic, nil, "2a00:6::1", "2a00:6::2")
	d := f.Device("busy")
	d.SetService(22, HandlerFunc(func(conn net.Conn, sc ServeContext) {}))
	var wg sync.WaitGroup
	v := f.Vantage("t")
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v.FragIDProbe(as[i%2])
				v.IPIDProbe(as[i%2])
				v.SynProbe(as[0], 22)
				v.UDPProbe(as[0], 33434)
			}
		}()
	}
	wg.Wait()
}
