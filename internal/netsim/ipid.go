package netsim

import (
	"sync"
	"time"

	"aliaslimit/internal/xrand"
)

// IPIDModel describes how a device assigns the 16-bit IP identification field
// to the packets it originates. The classical alias resolvers (Ally,
// RadarGun, MIDAR) rely on routers that keep a single monotonic counter
// shared across all interfaces; modern devices increasingly use per-interface
// counters, pseudo-random values, or constant zero, which is exactly why the
// paper's MIDAR validation could verify only 13% of its sample.
type IPIDModel int

const (
	// IPIDSharedMonotonic is one counter shared by every interface,
	// incremented per generated packet plus a background traffic rate
	// (velocity). This is the population MIDAR can work with.
	IPIDSharedMonotonic IPIDModel = iota
	// IPIDPerInterface keeps an independent counter per interface; pairwise
	// monotonic-bounds tests across interfaces fail.
	IPIDPerInterface
	// IPIDRandom draws every IPID independently at random.
	IPIDRandom
	// IPIDZero always answers zero (the common "constant" behaviour of
	// devices that set DF and never fragment).
	IPIDZero
	// IPIDHighVelocity is shared and monotonic but driven by so much
	// background traffic that it wraps several times between any two probes
	// a polite prober can send, defeating the bounds test in practice.
	IPIDHighVelocity
)

// String returns the model name used in logs and test output.
func (m IPIDModel) String() string {
	switch m {
	case IPIDSharedMonotonic:
		return "shared-monotonic"
	case IPIDPerInterface:
		return "per-interface"
	case IPIDRandom:
		return "random"
	case IPIDZero:
		return "zero"
	case IPIDHighVelocity:
		return "high-velocity"
	default:
		return "unknown"
	}
}

// ipidState holds the mutable counter state for one device.
type ipidState struct {
	mu sync.Mutex
	// shared counter (models SharedMonotonic and HighVelocity)
	counter uint64
	// per-interface counters, indexed by interface index (grown on demand —
	// a dense slice, not a map: interface indices are small and contiguous)
	perIf []uint64
	// last time the background velocity was applied
	lastTick time.Time
	// velocity is background packets/second added to the shared counter.
	velocity float64
	// rng stream for the Random model
	rng *xrand.SplitMix64
	// fractional carry of background traffic not yet materialised
	carry float64
}

func newIPIDState(seed uint64, velocity float64, origin time.Time) *ipidState {
	return &ipidState{
		counter:  seed & 0xffff,
		lastTick: origin,
		velocity: velocity,
		rng:      xrand.NewSplitMix64(seed),
	}
}

// sample returns the IPID a probe hitting interface ifIndex at time now would
// observe under model m, advancing the counter state.
func (s *ipidState) sample(m IPIDModel, ifIndex int, now time.Time) uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m {
	case IPIDZero:
		return 0
	case IPIDRandom:
		return uint16(s.rng.Uint64())
	case IPIDPerInterface:
		for ifIndex >= len(s.perIf) {
			s.perIf = append(s.perIf, 0)
		}
		s.perIf[ifIndex]++
		return uint16(s.perIf[ifIndex] + uint64(ifIndex)*7919)
	case IPIDSharedMonotonic, IPIDHighVelocity:
		// Apply background traffic accumulated since the last sample.
		if now.After(s.lastTick) {
			dt := now.Sub(s.lastTick).Seconds()
			inc := s.velocity*dt + s.carry
			whole := uint64(inc)
			s.carry = inc - float64(whole)
			s.counter += whole
			s.lastTick = now
		}
		s.counter++ // the reply packet itself
		return uint16(s.counter)
	default:
		return 0
	}
}

// Velocity reports the configured background velocity in packets/second.
func (s *ipidState) Velocity() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.velocity
}
