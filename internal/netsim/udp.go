package netsim

import (
	"net/netip"
	"sync"
)

// UDPHandler answers one UDP request datagram with zero or one response
// datagrams. Returning nil means the service stays silent (the request is
// dropped, as SNMP agents do for malformed packets).
type UDPHandler func(req []byte, sc ServeContext) []byte

// udpServiceEntry mirrors serviceEntry for datagram services.
type udpServiceEntry struct {
	handler UDPHandler
	allowed aclSet
}

// boundUDPService pairs a UDP port with its entry (flat table, like the TCP
// one: devices bind at most a couple of datagram ports).
type boundUDPService struct {
	port uint16
	e    *udpServiceEntry
}

// udpServices lazily extends Device with datagram services without touching
// the hot TCP paths.
type udpServices struct {
	mu       sync.RWMutex
	services []boundUDPService
}

// service returns the entry bound on port, or nil. Caller holds the mutex.
func (u *udpServices) service(port uint16) *udpServiceEntry {
	for _, b := range u.services {
		if b.port == port {
			return b.e
		}
	}
	return nil
}

// SetUDPService binds handler on the UDP port. If addrs is non-empty, only
// those addresses answer (ACL semantics, matching SetService).
func (d *Device) SetUDPService(port uint16, h UDPHandler, addrs ...netip.Addr) {
	e := &udpServiceEntry{handler: h, allowed: newACLSet(addrs)}
	d.udp.mu.Lock()
	defer d.udp.mu.Unlock()
	for i, b := range d.udp.services {
		if b.port == port {
			d.udp.services[i].e = e
			return
		}
	}
	d.udp.services = append(d.udp.services, boundUDPService{port: port, e: e})
}

// UDPServiceAddrs returns the addresses on which the UDP service answers, all
// device addresses when unrestricted, or nil when the port has no service.
func (d *Device) UDPServiceAddrs(port uint16) []netip.Addr {
	d.udp.mu.RLock()
	e := d.udp.service(port)
	d.udp.mu.RUnlock()
	if e == nil {
		return nil
	}
	if e.allowed == nil {
		return d.addrs
	}
	out := make([]netip.Addr, 0, len(e.allowed))
	for _, a := range d.addrs {
		if e.allowed.has(a) {
			out = append(out, a)
		}
	}
	return out
}

// udpHandlerFor returns the handler for (addr, port) or nil when the probe
// would be dropped.
func (d *Device) udpHandlerFor(vantage string, addr netip.Addr, port uint16) UDPHandler {
	if d.vantageFiltered(vantage) {
		return nil
	}
	d.udp.mu.RLock()
	e := d.udp.service(port)
	d.udp.mu.RUnlock()
	if e == nil {
		return nil
	}
	if e.allowed != nil && !e.allowed.has(addr) {
		return nil
	}
	return e.handler
}

// UDPExchange sends one request datagram to addr:port and returns the
// response, if any. ok is false when the target is unrouted, filtered, has no
// service on the port, or the service chose not to answer.
func (v *Vantage) UDPExchange(addr netip.Addr, port uint16, req []byte) (resp []byte, ok bool) {
	// UDP discovery sweeps are fast-path probes: both per-wire loss and the
	// rate-limiter throttle can eat the request (or its answer).
	if v.faultDrop(faultUDP, addr, port) {
		return nil, false
	}
	d := v.fabric.Lookup(addr)
	if d == nil {
		return nil, false
	}
	h := d.udpHandlerFor(v.label, addr, port)
	if h == nil {
		return nil, false
	}
	resp = h(req, ServeContext{Device: d, LocalAddr: addr, LocalPort: port, Clock: v.fabric.clock})
	if resp == nil {
		return nil, false
	}
	return resp, true
}
