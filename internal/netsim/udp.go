package netsim

import (
	"net/netip"
	"sync"
)

// UDPHandler answers one UDP request datagram with zero or one response
// datagrams. Returning nil means the service stays silent (the request is
// dropped, as SNMP agents do for malformed packets).
type UDPHandler func(req []byte, sc ServeContext) []byte

// udpServiceEntry mirrors serviceEntry for datagram services.
type udpServiceEntry struct {
	handler UDPHandler
	allowed map[netip.Addr]bool
}

// udpServices lazily extends Device with datagram services without touching
// the hot TCP paths.
type udpServices struct {
	mu       sync.RWMutex
	services map[uint16]*udpServiceEntry
}

// SetUDPService binds handler on the UDP port. If addrs is non-empty, only
// those addresses answer (ACL semantics, matching SetService).
func (d *Device) SetUDPService(port uint16, h UDPHandler, addrs ...netip.Addr) {
	e := &udpServiceEntry{handler: h}
	if len(addrs) > 0 {
		e.allowed = make(map[netip.Addr]bool, len(addrs))
		for _, a := range addrs {
			e.allowed[a] = true
		}
	}
	d.udp.mu.Lock()
	if d.udp.services == nil {
		d.udp.services = make(map[uint16]*udpServiceEntry)
	}
	d.udp.services[port] = e
	d.udp.mu.Unlock()
}

// UDPServiceAddrs returns the addresses on which the UDP service answers, all
// device addresses when unrestricted, or nil when the port has no service.
func (d *Device) UDPServiceAddrs(port uint16) []netip.Addr {
	d.udp.mu.RLock()
	e := d.udp.services[port]
	d.udp.mu.RUnlock()
	if e == nil {
		return nil
	}
	if e.allowed == nil {
		return d.addrs
	}
	out := make([]netip.Addr, 0, len(e.allowed))
	for _, a := range d.addrs {
		if e.allowed[a] {
			out = append(out, a)
		}
	}
	return out
}

// udpHandlerFor returns the handler for (addr, port) or nil when the probe
// would be dropped.
func (d *Device) udpHandlerFor(vantage string, addr netip.Addr, port uint16) UDPHandler {
	if d.filteredVantages[vantage] {
		return nil
	}
	d.udp.mu.RLock()
	e := d.udp.services[port]
	d.udp.mu.RUnlock()
	if e == nil {
		return nil
	}
	if e.allowed != nil && !e.allowed[addr] {
		return nil
	}
	return e.handler
}

// UDPExchange sends one request datagram to addr:port and returns the
// response, if any. ok is false when the target is unrouted, filtered, has no
// service on the port, or the service chose not to answer.
func (v *Vantage) UDPExchange(addr netip.Addr, port uint16, req []byte) (resp []byte, ok bool) {
	// UDP discovery sweeps are fast-path probes: both per-wire loss and the
	// rate-limiter throttle can eat the request (or its answer).
	if v.faultDrop(faultUDP, addr, port) {
		return nil, false
	}
	d := v.fabric.Lookup(addr)
	if d == nil {
		return nil, false
	}
	h := d.udpHandlerFor(v.label, addr, port)
	if h == nil {
		return nil, false
	}
	resp = h(req, ServeContext{Device: d, LocalAddr: addr, LocalPort: port, Clock: v.fabric.clock})
	if resp == nil {
		return nil, false
	}
	return resp, true
}
