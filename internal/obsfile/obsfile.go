// Package obsfile serialises identifier observations as JSON lines — the
// interchange format between the collection tools (cmd/scan) and the
// analysis tools (cmd/resolve), mirroring the paper's split between
// measurement campaigns and offline analysis. One line per (address,
// protocol, identifier) fact:
//
//	{"addr":"1.0.0.7","proto":"SSH","digest":"ab12..."}
package obsfile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// Record is the wire schema of one observation line.
type Record struct {
	// Addr is the responsive address in netip.Addr string form.
	Addr string `json:"addr"`
	// Proto is the protocol name ("SSH", "BGP", "SNMPv3").
	Proto string `json:"proto"`
	// Digest is the identifier digest (hex SHA-256 of the canonical
	// preimage).
	Digest string `json:"digest"`
}

// protoByName maps wire names back to protocols.
func protoByName(name string) (ident.Protocol, error) {
	for _, p := range ident.Protocols {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("obsfile: unknown protocol %q", name)
}

// Write streams observations as JSONL.
func Write(w io.Writer, obs []alias.Observation) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, o := range obs {
		rec := Record{Addr: o.Addr.String(), Proto: o.ID.Proto.String(), Digest: o.ID.Digest}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("obsfile: encoding %s: %w", rec.Addr, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSONL stream back into observations. It fails on the first
// malformed line, reporting its number.
func Read(r io.Reader) ([]alias.Observation, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []alias.Observation
	line := 0
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obsfile: line %d: %w", line+1, err)
		}
		line++
		addr, err := netip.ParseAddr(rec.Addr)
		if err != nil {
			return nil, fmt.Errorf("obsfile: line %d: %w", line, err)
		}
		proto, err := protoByName(rec.Proto)
		if err != nil {
			return nil, fmt.Errorf("obsfile: line %d: %w", line, err)
		}
		if rec.Digest == "" {
			return nil, fmt.Errorf("obsfile: line %d: empty digest", line)
		}
		out = append(out, alias.Observation{
			Addr: addr,
			ID:   ident.Identifier{Proto: proto, Digest: rec.Digest},
		})
	}
}
