package obsfile

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

func sample() []alias.Observation {
	return []alias.Observation{
		{Addr: netip.MustParseAddr("1.0.0.7"), ID: ident.Identifier{Proto: ident.SSH, Digest: "aa"}},
		{Addr: netip.MustParseAddr("2a00::1"), ID: ident.Identifier{Proto: ident.BGP, Digest: "bb"}},
		{Addr: netip.MustParseAddr("10.0.0.1"), ID: ident.Identifier{Proto: ident.SNMP, Digest: "cc"}},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("read %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a4 [4]byte, digestRaw []byte, protoRaw uint8) bool {
		if len(digestRaw) == 0 {
			digestRaw = []byte{1}
		}
		digest := strings.Map(func(r rune) rune {
			return rune("0123456789abcdef"[byte(r)%16])
		}, string(digestRaw))
		obs := []alias.Observation{{
			Addr: netip.AddrFrom4(a4),
			ID: ident.Identifier{
				Proto:  ident.Protocols[int(protoRaw)%len(ident.Protocols)],
				Digest: digest,
			},
		}}
		var buf bytes.Buffer
		if err := Write(&buf, obs); err != nil {
			return false
		}
		got, err := Read(&buf)
		return err == nil && len(got) == 1 && got[0] == obs[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{"addr":`,
		"bad addr":      `{"addr":"not-an-ip","proto":"SSH","digest":"aa"}`,
		"bad proto":     `{"addr":"1.0.0.1","proto":"GOPHER","digest":"aa"}`,
		"empty digest":  `{"addr":"1.0.0.1","proto":"SSH","digest":""}`,
		"missing proto": `{"addr":"1.0.0.1","digest":"aa"}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %v %v", got, err)
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	in := `{"addr":"1.0.0.1","proto":"SSH","digest":"aa"}
{"addr":"broken","proto":"SSH","digest":"bb"}`
	_, err := Read(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2 reference", err)
	}
}
