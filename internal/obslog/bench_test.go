package obslog

import (
	"fmt"
	"net/netip"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// benchObs builds a corpus of distinct observations shaped like real scan
// yield (hex digests, mixed families).
func benchObs(n int) []alias.Observation {
	out := make([]alias.Observation, n)
	for i := range out {
		var addr netip.Addr
		if i%4 == 3 {
			addr = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, byte(i >> 16), byte(i >> 8), byte(i), 1})
		} else {
			addr = netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		}
		out[i] = alias.Observation{
			Addr: addr,
			ID:   ident.Identifier{Proto: ident.SSH, Digest: fmt.Sprintf("%064x", i*2654435761)},
		}
	}
	return out
}

// BenchmarkObslogAppend measures the hot collection-path cost of teeing one
// observation into the log (buffered append plus amortised spill flushes).
// The bench-smoke CI job runs it; the benchjson obslog_append entry gates
// its allocation count.
func BenchmarkObslogAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := Create(dir, testMeta, Options{Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	corpus := benchObs(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(SourceActive, ident.SSH, corpus[i%len(corpus)])
	}
}

// BenchmarkObslogReplay measures rebuilding one committed epoch from disk.
func BenchmarkObslogReplay(b *testing.B) {
	dir := b.TempDir()
	w, err := Create(dir, testMeta, Options{Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range benchObs(4096) {
		w.Observe(SourceActive, ident.SSH, o)
		w.Observe(SourceCensys, ident.BGP, alias.Observation{Addr: o.Addr, ID: ident.Identifier{Proto: ident.BGP, Digest: o.ID.Digest}})
		w.Observe(SourceActive, ident.SNMP, alias.Observation{Addr: o.Addr, ID: ident.Identifier{Proto: ident.SNMP, Digest: o.ID.Digest}})
	}
	if err := w.CompleteEpoch(0, "", 0); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(dir, 0); err != nil {
			b.Fatal(err)
		}
	}
}
