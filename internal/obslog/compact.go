package obslog

import (
	"fmt"
	"path/filepath"

	"aliaslimit/internal/atomicio"
	"aliaslimit/internal/ident"
)

// CompactStats summarises one compaction pass.
type CompactStats struct {
	// BytesBefore and BytesAfter total the shard sizes around the pass.
	BytesBefore int64 `json:"bytes_before"`
	// BytesAfter totals the shard sizes after the pass.
	BytesAfter int64 `json:"bytes_after"`
	// Dropped counts folded (superseded) observation records.
	Dropped int `json:"dropped"`
}

// Compact folds superseded observations out of a closed log directory: a
// record is superseded when a later committed epoch re-observed the same
// (source, address) on the same shard — the newest identifier is what the
// device presents now, so the final epoch replays identically before and
// after compaction. Earlier epochs become partial (their superseded records
// are gone), which is the point: compaction trades full history for a
// bounded log once a run has been scored.
//
// Each shard is rewritten atomically and the manifest's per-epoch offsets
// are updated to the compacted layout. Compact must not run concurrently
// with a Writer on the same directory, and it drops any uncommitted tail
// beyond the manifest's last epoch (a Resume would have dropped it anyway).
func Compact(dir string) (CompactStats, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return CompactStats{}, err
	}
	return compactWith(dir, man)
}

// compactWith is Compact's core over an already-loaded manifest; it mutates
// man's per-epoch offsets and writes it back. The Writer's auto-compaction
// (Options.CompactAbove) passes its live manifest here so subsequent epochs
// append at the compacted offsets.
func compactWith(dir string, man *Manifest) (CompactStats, error) {
	var stats CompactStats
	newOffsets := make([]map[string]int64, man.EpochsDone)
	for i := range newOffsets {
		newOffsets[i] = make(map[string]int64, numShards)
	}
	for _, p := range ident.Protocols {
		path := filepath.Join(dir, shardName(p))
		epochs, err := readShardEpochs(path, p)
		if err != nil {
			return CompactStats{}, err
		}
		if len(epochs) < man.EpochsDone {
			return CompactStats{}, fmt.Errorf("obslog: %s shard holds %d complete epochs, manifest committed %d",
				protoKey(p), len(epochs), man.EpochsDone)
		}
		epochs = epochs[:man.EpochsDone]

		// Latest epoch that observed each (source, address) on this shard.
		type key struct {
			src  Source
			addr string
		}
		latest := make(map[key]int)
		for e, recs := range epochs {
			for _, r := range recs {
				latest[key{r.src, r.addr.String()}] = e
			}
		}

		buf := appendFrame(nil, headerPayload(p))
		var payload []byte
		if man.EpochsDone > 0 {
			stats.BytesBefore += man.Epochs[man.EpochsDone-1].Offsets[protoKey(p)]
		} else {
			stats.BytesBefore += int64(len(buf))
		}
		for e, recs := range epochs {
			for _, r := range recs {
				if latest[key{r.src, r.addr.String()}] != e {
					stats.Dropped++
					continue
				}
				payload = appendObsPayload(payload[:0], r)
				buf = appendFrame(buf, payload)
			}
			buf = appendFrame(buf, markPayload(e))
			newOffsets[e][protoKey(p)] = int64(len(buf))
		}
		if err := atomicio.WriteFile(path, buf, 0o644); err != nil {
			return CompactStats{}, err
		}
		stats.BytesAfter += int64(len(buf))
	}
	for e := range man.Epochs {
		man.Epochs[e].Offsets = newOffsets[e]
	}
	if err := man.write(dir); err != nil {
		return CompactStats{}, err
	}
	return stats, nil
}
