package obslog

// The CRC-32C frame discipline — u32le payload length, payload, u32le
// Castagnoli checksum — is this package's unit of durability, and it is
// deliberately content-agnostic: nothing in a frame says "observation log".
// The distributed resolution wire protocol (internal/distres) reuses exactly
// this discipline for its coordinator↔worker streams, so the two layers
// share one framing implementation and one corruption story: a truncated or
// flipped tail is detected by the same checksum walk whether the bytes came
// off a disk or a socket. These exported wrappers are that shared surface.

// FrameOverhead is the fixed per-frame cost: the length prefix plus the CRC
// trailer.
const FrameOverhead = frameOverhead

// AppendFrame appends one CRC-32C frame carrying payload to dst and returns
// the extended slice. Payloads must be non-empty — a zero-length payload is
// indistinguishable from a truncated tail on decode.
func AppendFrame(dst, payload []byte) []byte { return appendFrame(dst, payload) }

// NextFrame parses the frame at the start of data, returning its payload and
// total encoded size. ok is false when the bytes do not form a complete,
// CRC-valid frame — the truncated-or-corrupt-tail case readers drop cleanly.
// The payload aliases data; callers that retain it past the buffer's
// lifetime must copy.
func NextFrame(data []byte) (payload []byte, size int, ok bool) { return nextFrame(data) }
