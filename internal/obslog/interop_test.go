package obslog

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obsfile"
)

// TestObsfileInterop round-trips a JSONL corpus through the binary log and
// back: obsfile.Read -> Writer -> Replay -> obsfile.Write -> obsfile.Read
// must preserve the record set exactly (the log canonicalises order and
// folds exact duplicates; nothing else may change).
func TestObsfileInterop(t *testing.T) {
	corpus := strings.Join([]string{
		`{"addr":"198.51.100.7","proto":"SSH","digest":"aa11"}`,
		`{"addr":"198.51.100.8","proto":"SSH","digest":"aa22"}`,
		`{"addr":"2001:db8::7","proto":"SSH","digest":"aa11"}`,
		`{"addr":"198.51.100.7","proto":"BGP","digest":"bb11"}`,
		`{"addr":"203.0.113.5","proto":"BGP","digest":"bb22"}`,
		`{"addr":"198.51.100.9","proto":"SNMPv3","digest":"cc11"}`,
		`{"addr":"198.51.100.7","proto":"SSH","digest":"aa11"}`, // duplicate line
	}, "\n")
	obs, err := obsfile.Read(strings.NewReader(corpus))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	w, err := Create(dir, testMeta, Options{SpillThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		w.Observe(SourceActive, o.ID.Proto, o)
	}
	if err := w.CompleteEpoch(0, "", 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := Replay(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var replayed []alias.Observation
	for _, p := range ident.Protocols {
		replayed = append(replayed, snap.Active[p]...)
		if len(snap.Censys[p]) != 0 {
			t.Fatalf("censys partition gained %d records that were logged as active", len(snap.Censys[p]))
		}
	}

	// Back out through the JSONL writer and reader.
	var buf bytes.Buffer
	if err := obsfile.Write(&buf, replayed); err != nil {
		t.Fatal(err)
	}
	back, err := obsfile.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(back), canonical(obs); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the record set:\ngot  %v\nwant %v", got, want)
	}
}

// TestObsfileUnknownProtocol pins the error path a corpus with a protocol
// the binary log has no shard for takes: obsfile.Read rejects it before any
// log write happens.
func TestObsfileUnknownProtocol(t *testing.T) {
	_, err := obsfile.Read(strings.NewReader(`{"addr":"198.51.100.7","proto":"QUIC","digest":"aa11"}`))
	if err == nil {
		t.Fatal("obsfile.Read accepted an unknown protocol")
	}
	if !strings.Contains(err.Error(), `unknown protocol "QUIC"`) {
		t.Fatalf("error %q does not name the unknown protocol", err)
	}
}

// TestShardRejectsWrongProtocolHeader covers the binary side of the
// unknown-protocol path: a shard whose header frame names a different
// protocol than its filename implies is refused at open.
func TestShardRejectsWrongProtocolHeader(t *testing.T) {
	dir := writeTwoEpochs(t)
	// Swap the SSH and BGP shard contents: headers no longer match names.
	swap(t, dir, shardName(ident.SSH), shardName(ident.BGP))
	if _, err := Replay(dir, 0); err == nil {
		t.Fatal("Replay accepted shards with mismatched protocol headers")
	} else if !strings.Contains(err.Error(), "bad header") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// swap exchanges two files' contents.
func swap(t *testing.T, dir, a, b string) {
	t.Helper()
	pa, pb := filepath.Join(dir, a), filepath.Join(dir, b)
	da, err := os.ReadFile(pa)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(pb)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pa, db, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pb, da, 0o644); err != nil {
		t.Fatal(err)
	}
}
