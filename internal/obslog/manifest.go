package obslog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"aliaslimit/internal/atomicio"
)

// manifestName is the checkpoint manifest filename inside a log directory.
const manifestName = "MANIFEST.json"

// manifestFormat is the manifest schema version.
const manifestFormat = 1

// RunMeta records the result-affecting parameters of the run that owns a
// log, so a resume can rebuild the exact configuration without the original
// command line. Concurrency knobs (workers, parallelism) are deliberately
// absent: they never affect results, so the resumer is free to pick its
// own. No timestamps either — the manifest must be byte-deterministic for
// the log-diff gate.
type RunMeta struct {
	// Scenario is the preset name ("churn-storm").
	Scenario string `json:"scenario,omitempty"`
	// Seed is the resolved world seed.
	Seed uint64 `json:"seed"`
	// Scale is the resolved world scale actually run.
	Scale float64 `json:"scale"`
	// Quick records whether the run used the preset's quick scale.
	Quick bool `json:"quick,omitempty"`
	// Backend is the resolver backend name.
	Backend string `json:"backend,omitempty"`
	// Epochs is the planned epoch count (1 for a single-snapshot run).
	Epochs int `json:"epochs"`
	// Decay is the longitudinal decay-weighted merge half-life weight.
	Decay float64 `json:"decay,omitempty"`
}

// EpochRecord is one committed epoch boundary.
type EpochRecord struct {
	// Epoch is the zero-based epoch index.
	Epoch int `json:"epoch"`
	// SetsDigest is the running sets digest of the epoch's sealed
	// environment (empty when the run does not compute one).
	SetsDigest string `json:"sets_digest,omitempty"`
	// DrawState is the world churn draw-state fingerprint
	// (topo.World.ChurnDrawState) at the boundary; resume verifies its
	// churn replay against it before trusting the log.
	DrawState uint64 `json:"draw_state"`
	// Offsets maps shard key ("ssh", "bgp", "snmpv3") to the shard's byte
	// size after this epoch's segment and marker.
	Offsets map[string]int64 `json:"offsets"`
}

// Manifest is the durable checkpoint state of a log directory. It is
// rewritten atomically (temp file + rename) at every epoch boundary, so a
// reader only ever sees a complete, self-consistent checkpoint.
type Manifest struct {
	// Format is the manifest schema version.
	Format int `json:"format"`
	// Meta describes the owning run.
	Meta RunMeta `json:"meta"`
	// EpochsDone counts committed epochs; equals len(Epochs).
	EpochsDone int `json:"epochs_done"`
	// Epochs lists the committed boundaries in order.
	Epochs []EpochRecord `json:"epochs"`
}

// newManifest starts an empty manifest for a fresh run.
func newManifest(meta RunMeta) *Manifest {
	return &Manifest{Format: manifestFormat, Meta: meta, Epochs: []EpochRecord{}}
}

// clone deep-copies the manifest so callers can hold it across writer
// mutations.
func (m *Manifest) clone() Manifest {
	c := *m
	c.Epochs = make([]EpochRecord, len(m.Epochs))
	for i, e := range m.Epochs {
		c.Epochs[i] = e
		c.Epochs[i].Offsets = make(map[string]int64, len(e.Offsets))
		for k, v := range e.Offsets {
			c.Epochs[i].Offsets[k] = v
		}
	}
	return c
}

// write atomically replaces the manifest in dir.
func (m *Manifest) write(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obslog: %w", err)
	}
	return atomicio.WriteFile(filepath.Join(dir, manifestName), append(data, '\n'), 0o644)
}

// ReadManifest loads and validates the checkpoint manifest of a log
// directory.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("obslog: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obslog: corrupt manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("obslog: manifest format %d, want %d", m.Format, manifestFormat)
	}
	if m.EpochsDone != len(m.Epochs) {
		return nil, fmt.Errorf("obslog: manifest claims %d epochs but records %d", m.EpochsDone, len(m.Epochs))
	}
	for i, e := range m.Epochs {
		if e.Epoch != i {
			return nil, fmt.Errorf("obslog: manifest epoch %d recorded at position %d", e.Epoch, i)
		}
		if len(e.Offsets) != numShards {
			return nil, fmt.Errorf("obslog: manifest epoch %d has %d shard offsets, want %d", i, len(e.Offsets), numShards)
		}
	}
	return &m, nil
}
