// Package obslog is the durable observation log: an append-only,
// per-protocol-sharded, length-prefixed binary record of every identifier
// observation a measurement run extracts, with CRC-framed records, epoch
// boundary markers, fsync policy knobs, a checkpoint manifest, and a
// compaction pass that folds superseded observations.
//
// Where obsfile is the human-auditable JSONL interchange format, obslog is
// the crash-safe collection journal: the scan worker pools tee every
// extracted observation into a Writer while the sweeps are still in flight
// (experiments.ScanOptions.Sink), each epoch boundary folds the arrivals
// into a canonical on-disk segment and commits a manifest checkpoint, and
// Replay rebuilds any completed epoch's datasets from disk — byte-identical
// to the in-RAM run, on any resolver backend.
//
// # On-disk layout
//
// A log directory holds one shard per protocol plus the manifest:
//
//	ssh.obslog  bgp.obslog  snmpv3.obslog   # append-only record logs
//	ssh.spill   bgp.spill   snmpv3.spill    # arrival-order spill (transient)
//	MANIFEST.json                           # checkpoint manifest (atomic)
//
// Every shard file is a sequence of frames:
//
//	u32le payload length | payload | u32le CRC-32C (Castagnoli) of payload
//
// The first frame is a header (kind 0: magic "OLOG", format version,
// protocol byte). Observation frames (kind 1) carry the source (active or
// Censys campaign), the address (family-tagged, 4 or 16 bytes), and the
// identifier digest. An epoch marker frame (kind 2) closes each epoch.
//
// # Determinism and the spill
//
// Scan workers deliver observations in nondeterministic arrival order, so
// the Writer never appends them to the shard directly: they accumulate in a
// bounded memory buffer that overflows to the .spill file (the disk-backed
// cache idiom — collection memory stays bounded no matter the world size).
// CompleteEpoch reads the spill back, sorts the epoch's records canonically
// by (source, address, digest), drops exact duplicates, and appends the
// canonical segment plus the epoch marker to the shard. Two runs of the
// same world therefore produce byte-for-byte identical logs — the property
// the CI log-diff job asserts with cmp.
//
// # Crash safety
//
// A frame with a short or corrupt tail (the typical SIGKILL artifact) fails
// its CRC or length check and is cleanly dropped at open, along with
// everything after it; records past the last epoch marker belong to the
// incomplete epoch and are likewise ignored by Replay. Resume truncates the
// shards back to the manifest's recorded offsets and clears the spills, so
// a killed run continues from its last complete epoch.
package obslog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/netip"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// Source labels which measurement campaign produced an observation. The
// analysis layer combines the campaigns asymmetrically (SSH and BGP from
// the union, SNMPv3 from the active scan only), so replay must keep them
// apart.
type Source uint8

const (
	// SourceActive is the single-vantage active measurement.
	SourceActive Source = 0
	// SourceCensys is the distributed snapshot campaign.
	SourceCensys Source = 1
)

// String names the source for diagnostics.
func (s Source) String() string {
	if s == SourceCensys {
		return "censys"
	}
	return "active"
}

// Frame kinds.
const (
	kindHeader byte = 0
	kindObs    byte = 1
	kindMark   byte = 2
)

// formatVersion is the shard format version the header frame records.
const formatVersion = 1

// magic opens every shard header frame.
var magic = [4]byte{'O', 'L', 'O', 'G'}

// castagnoli is the CRC-32C table shared by all framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameOverhead is the length prefix plus the CRC trailer.
const frameOverhead = 8

// numShards is one shard per protocol (SSH, BGP, SNMPv3).
const numShards = 3

// rec is one logged observation, held decoded in memory.
type rec struct {
	src    Source
	addr   netip.Addr
	digest string
}

// observation converts a record back to the analysis representation.
func (r rec) observation(p ident.Protocol) alias.Observation {
	return alias.Observation{Addr: r.addr, ID: ident.Identifier{Proto: p, Digest: r.digest}}
}

// less is the canonical record order within an epoch segment: source, then
// address, then digest. Sorting arrival-order spills into this order is
// what makes shard bytes run-order independent.
func (r rec) less(o rec) bool {
	if r.src != o.src {
		return r.src < o.src
	}
	if c := r.addr.Compare(o.addr); c != 0 {
		return c < 0
	}
	return r.digest < o.digest
}

// shardName returns a protocol's shard file basename ("ssh.obslog").
func shardName(p ident.Protocol) string {
	return protoKey(p) + ".obslog"
}

// spillName returns a protocol's spill file basename.
func spillName(p ident.Protocol) string {
	return protoKey(p) + ".spill"
}

// protoKey is the lower-case protocol key used for shard names and manifest
// offset maps ("ssh", "bgp", "snmpv3").
func protoKey(p ident.Protocol) string {
	switch p {
	case ident.SSH:
		return "ssh"
	case ident.BGP:
		return "bgp"
	default:
		return "snmpv3"
	}
}

// appendFrame appends one CRC frame carrying payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	dst = append(dst, n[:]...)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(n[:], crc32.Checksum(payload, castagnoli))
	return append(dst, n[:]...)
}

// headerPayload builds a shard's header frame payload.
func headerPayload(p ident.Protocol) []byte {
	return []byte{kindHeader, magic[0], magic[1], magic[2], magic[3], formatVersion, byte(p)}
}

// appendObsPayload encodes one observation record as a frame payload.
func appendObsPayload(dst []byte, r rec) []byte {
	dst = append(dst, kindObs, byte(r.src))
	if r.addr.Is4() {
		a := r.addr.As4()
		dst = append(dst, 4)
		dst = append(dst, a[:]...)
	} else {
		a := r.addr.As16()
		dst = append(dst, 16)
		dst = append(dst, a[:]...)
	}
	return append(dst, r.digest...)
}

// decodeObsPayload parses an observation frame payload.
func decodeObsPayload(payload []byte) (rec, error) {
	if len(payload) < 3 {
		return rec{}, fmt.Errorf("obslog: observation frame too short (%d bytes)", len(payload))
	}
	r := rec{src: Source(payload[1])}
	if r.src != SourceActive && r.src != SourceCensys {
		return rec{}, fmt.Errorf("obslog: unknown source %d", payload[1])
	}
	alen := int(payload[2])
	rest := payload[3:]
	switch {
	case alen == 4 && len(rest) >= 4:
		r.addr = netip.AddrFrom4([4]byte(rest[:4]))
	case alen == 16 && len(rest) >= 16:
		r.addr = netip.AddrFrom16([16]byte(rest[:16]))
	default:
		return rec{}, fmt.Errorf("obslog: bad address length %d", alen)
	}
	r.digest = string(rest[alen:])
	if r.digest == "" {
		return rec{}, fmt.Errorf("obslog: empty digest for %s", r.addr)
	}
	return r, nil
}

// markPayload encodes an epoch boundary marker.
func markPayload(epoch int) []byte {
	var p [5]byte
	p[0] = kindMark
	binary.LittleEndian.PutUint32(p[1:], uint32(epoch))
	return p[:]
}

// nextFrame parses the frame at the start of data, returning its payload
// and total encoded size. ok is false when the bytes do not form a complete,
// CRC-valid frame — the truncated-or-corrupt-tail case readers drop cleanly.
func nextFrame(data []byte) (payload []byte, size int, ok bool) {
	if len(data) < frameOverhead {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n < 1 || len(data) < frameOverhead+n {
		return nil, 0, false
	}
	payload = data[4 : 4+n]
	want := binary.LittleEndian.Uint32(data[4+n:])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, 0, false
	}
	return payload, frameOverhead + n, true
}

// checkHeader validates a shard's header frame and returns its encoded size.
func checkHeader(data []byte, p ident.Protocol) (int, error) {
	payload, size, ok := nextFrame(data)
	if !ok {
		return 0, fmt.Errorf("obslog: %s shard: missing or corrupt header frame", protoKey(p))
	}
	want := headerPayload(p)
	if len(payload) != len(want) || string(payload) != string(want) {
		return 0, fmt.Errorf("obslog: %s shard: bad header (wrong magic, version, or protocol)", protoKey(p))
	}
	return size, nil
}
