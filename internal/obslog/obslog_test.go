package obslog

import (
	"bytes"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// obs builds a test observation.
func obs(p ident.Protocol, addr, digest string) alias.Observation {
	return alias.Observation{
		Addr: netip.MustParseAddr(addr),
		ID:   ident.Identifier{Proto: p, Digest: digest},
	}
}

// testMeta is a minimal run description for writer tests.
var testMeta = RunMeta{Scenario: "test", Seed: 1, Scale: 0.05, Epochs: 3}

// canonical sorts and dedups an observation slice the way an epoch fold
// does, for comparing replays against inputs.
func canonical(in []alias.Observation) []alias.Observation {
	out := append([]alias.Observation(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr.Compare(out[j].Addr); c != 0 {
			return c < 0
		}
		if out[i].ID.Proto != out[j].ID.Proto {
			return out[i].ID.Proto < out[j].ID.Proto
		}
		return out[i].ID.Digest < out[j].ID.Digest
	})
	dedup := out[:0]
	for i, o := range out {
		if i > 0 && o == out[i-1] {
			continue
		}
		dedup = append(dedup, o)
	}
	return dedup
}

func TestRoundTripWithSpill(t *testing.T) {
	dir := t.TempDir()
	// SpillThreshold 2 forces the overflow path on every third arrival.
	w, err := Create(dir, testMeta, Options{SpillThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	epochs := [][]struct {
		src Source
		o   alias.Observation
	}{
		{
			{SourceActive, obs(ident.SSH, "10.0.0.1", "d1")},
			{SourceActive, obs(ident.SSH, "10.0.0.2", "d2")},
			{SourceCensys, obs(ident.SSH, "10.0.0.1", "d1")},
			{SourceActive, obs(ident.SSH, "10.0.0.1", "d1")}, // exact duplicate, folded away
			{SourceActive, obs(ident.BGP, "2001:db8::1", "d3")},
			{SourceActive, obs(ident.SNMP, "10.0.0.3", "d4")},
		},
		{
			{SourceActive, obs(ident.SSH, "10.0.0.5", "d5")},
			{SourceCensys, obs(ident.BGP, "10.0.0.6", "d6")},
			{SourceActive, obs(ident.SNMP, "2001:db8::2", "d7")},
		},
	}
	for e, batch := range epochs {
		for _, b := range batch {
			w.Observe(b.src, b.o.ID.Proto, b.o)
		}
		if err := w.CompleteEpoch(e, fmt.Sprintf("digest-%d", e), uint64(100+e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Spill files must not survive Close.
	for _, p := range ident.Protocols {
		if _, err := os.Stat(filepath.Join(dir, spillName(p))); !os.IsNotExist(err) {
			t.Fatalf("spill file %s survived Close", spillName(p))
		}
	}
	if n, err := Epochs(dir); err != nil || n != 2 {
		t.Fatalf("Epochs = %d, %v; want 2", n, err)
	}
	for e, batch := range epochs {
		snap, err := Replay(dir, e)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ident.Protocols {
			var wantActive, wantCensys []alias.Observation
			for _, b := range batch {
				if b.o.ID.Proto != p {
					continue
				}
				if b.src == SourceCensys {
					wantCensys = append(wantCensys, b.o)
				} else {
					wantActive = append(wantActive, b.o)
				}
			}
			for _, cmp := range []struct {
				name      string
				got, want []alias.Observation
			}{
				{"active", snap.Active[p], canonical(wantActive)},
				{"censys", snap.Censys[p], canonical(wantCensys)},
			} {
				got := canonical(cmp.got)
				if len(got) == 0 && len(cmp.want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, cmp.want) {
					t.Errorf("epoch %d %s %s: got %v, want %v", e, p, cmp.name, got, cmp.want)
				}
			}
		}
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.EpochsDone != 2 || man.Epochs[1].SetsDigest != "digest-1" || man.Epochs[1].DrawState != 101 {
		t.Fatalf("manifest mismatch: %+v", man)
	}
	for _, p := range ident.Protocols {
		st, err := os.Stat(filepath.Join(dir, shardName(p)))
		if err != nil {
			t.Fatal(err)
		}
		if got := man.Epochs[1].Offsets[protoKey(p)]; got != st.Size() {
			t.Errorf("%s offset %d, file size %d", protoKey(p), got, st.Size())
		}
	}
}

// TestLogBytesDeterministic pins the property the CI log-diff job asserts:
// identical observations delivered in different arrival orders produce
// byte-for-byte identical shard files and manifests.
func TestLogBytesDeterministic(t *testing.T) {
	batch := []struct {
		src Source
		o   alias.Observation
	}{
		{SourceActive, obs(ident.SSH, "10.0.0.1", "d1")},
		{SourceCensys, obs(ident.SSH, "10.0.0.2", "d2")},
		{SourceActive, obs(ident.BGP, "10.0.0.3", "d3")},
		{SourceActive, obs(ident.SSH, "2001:db8::9", "d4")},
		{SourceCensys, obs(ident.SNMP, "10.0.0.4", "d5")},
		{SourceActive, obs(ident.SSH, "10.0.0.1", "d1")},
	}
	write := func(dir string, reversed bool) {
		w, err := Create(dir, testMeta, Options{SpillThreshold: 2})
		if err != nil {
			t.Fatal(err)
		}
		order := batch
		if reversed {
			order = make([]struct {
				src Source
				o   alias.Observation
			}, len(batch))
			for i, b := range batch {
				order[len(batch)-1-i] = b
			}
		}
		for _, b := range order {
			w.Observe(b.src, b.o.ID.Proto, b.o)
		}
		if err := w.CompleteEpoch(0, "dg", 7); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	write(dirA, false)
	write(dirB, true)
	files := []string{manifestName}
	for _, p := range ident.Protocols {
		files = append(files, shardName(p))
	}
	for _, name := range files {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between arrival orders", name)
		}
	}
}

// writeTwoEpochs populates a log with two committed epochs and returns its
// directory.
func writeTwoEpochs(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	w, err := Create(dir, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		for i := 0; i < 4; i++ {
			a := fmt.Sprintf("10.%d.0.%d", e, i+1)
			w.Observe(SourceActive, ident.SSH, obs(ident.SSH, a, fmt.Sprintf("ssh-%d-%d", e, i)))
			w.Observe(SourceCensys, ident.BGP, obs(ident.BGP, a, fmt.Sprintf("bgp-%d-%d", e, i)))
			w.Observe(SourceActive, ident.SNMP, obs(ident.SNMP, a, fmt.Sprintf("snmp-%d-%d", e, i)))
		}
		if err := w.CompleteEpoch(e, fmt.Sprintf("dg-%d", e), uint64(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestTruncatedTailDroppedCleanly(t *testing.T) {
	dir := writeTwoEpochs(t)
	path := filepath.Join(dir, shardName(ident.SSH))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-frame: everything after the cut, including epoch
	// 1's marker, becomes unreadable — exactly a SIGKILL's torn tail.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0); err != nil {
		t.Fatalf("epoch 0 must survive a torn tail: %v", err)
	}
	if _, err := Replay(dir, 1); err == nil {
		t.Fatal("epoch 1 lost its marker to the torn tail; Replay must refuse it")
	}
	if n, err := Epochs(dir); err != nil || n != 1 {
		t.Fatalf("Epochs = %d, %v; want 1", n, err)
	}
}

func TestCorruptFrameDroppedCleanly(t *testing.T) {
	dir := writeTwoEpochs(t)
	path := filepath.Join(dir, shardName(ident.BGP))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside epoch 1's segment (past epoch 0's committed
	// offset): its CRC fails and everything from it on is dropped.
	pos := man.Epochs[0].Offsets["bgp"] + 10
	data[pos] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0); err != nil {
		t.Fatalf("epoch 0 must survive later corruption: %v", err)
	}
	if _, err := Replay(dir, 1); err == nil {
		t.Fatal("Replay accepted an epoch containing a corrupt frame")
	}
}

func TestResumeTruncatesPartialEpoch(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testMeta, Options{SpillThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.Observe(SourceActive, ident.SSH, obs(ident.SSH, "10.0.0.1", "d1"))
	w.Observe(SourceCensys, ident.BGP, obs(ident.BGP, "10.0.0.2", "d2"))
	w.Observe(SourceActive, ident.SNMP, obs(ident.SNMP, "10.0.0.3", "d3"))
	if err := w.CompleteEpoch(0, "dg-0", 5); err != nil {
		t.Fatal(err)
	}
	// Epoch 1 in flight: some spilled, some in memory — then the process
	// "dies" (no CompleteEpoch, no Close; spill files stay behind).
	for i := 0; i < 5; i++ {
		w.Observe(SourceActive, ident.SSH, obs(ident.SSH, fmt.Sprintf("10.1.0.%d", i+1), "dx"))
	}

	w2, man, err := Resume(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if man.EpochsDone != 1 {
		t.Fatalf("resumed manifest claims %d epochs", man.EpochsDone)
	}
	// The partial epoch's arrivals are gone; a fresh epoch 1 commits.
	w2.Observe(SourceActive, ident.SSH, obs(ident.SSH, "10.9.0.1", "fresh"))
	if err := w2.CompleteEpoch(1, "dg-1", 6); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := Replay(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Active[ident.SSH]) != 1 || snap.Active[ident.SSH][0].ID.Digest != "fresh" {
		t.Fatalf("epoch 1 after resume = %v, want only the fresh record", snap.Active[ident.SSH])
	}
	// Replaying epoch 0 still works and matches the original commit.
	if snap0, err := Replay(dir, 0); err != nil || len(snap0.Active[ident.SSH]) != 1 {
		t.Fatalf("epoch 0 after resume: %v, %v", snap0, err)
	}
}

func TestRollbackDiscardsCommittedEpoch(t *testing.T) {
	dir := writeTwoEpochs(t)
	w, man, err := Resume(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if man.EpochsDone != 2 {
		t.Fatalf("EpochsDone = %d, want 2", man.EpochsDone)
	}
	if err := w.Rollback(1); err != nil {
		t.Fatal(err)
	}
	if got := w.Manifest(); got.EpochsDone != 1 {
		t.Fatalf("after rollback EpochsDone = %d, want 1", got.EpochsDone)
	}
	// The log can recommit epoch 1 from scratch.
	w.Observe(SourceActive, ident.SSH, obs(ident.SSH, "10.8.0.1", "redo"))
	if err := w.CompleteEpoch(1, "dg-redo", 9); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := Replay(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Active[ident.SSH]) != 1 || snap.Active[ident.SSH][0].ID.Digest != "redo" {
		t.Fatalf("recommitted epoch 1 = %v", snap.Active[ident.SSH])
	}
}

func TestCreateRefusesExistingLog(t *testing.T) {
	dir := writeTwoEpochs(t)
	if _, err := Create(dir, testMeta, Options{}); err == nil {
		t.Fatal("Create reused a directory that already holds a log")
	}
}

func TestCompactFoldsSupersededKeepsFinalEpoch(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 10.0.0.1 is re-observed with a new digest every epoch (superseded
	// twice); 10.0.0.2 appears only in epoch 0 (never superseded).
	for e := 0; e < 3; e++ {
		w.Observe(SourceActive, ident.SSH, obs(ident.SSH, "10.0.0.1", fmt.Sprintf("gen-%d", e)))
		if e == 0 {
			w.Observe(SourceActive, ident.SSH, obs(ident.SSH, "10.0.0.2", "stable"))
		}
		w.Observe(SourceActive, ident.BGP, obs(ident.BGP, "10.0.0.3", "b"))
		w.Observe(SourceActive, ident.SNMP, obs(ident.SNMP, "10.0.0.4", "s"))
		if err := w.CompleteEpoch(e, "", uint64(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := Replay(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	// gen-0, gen-1, and epochs 0/1's copies of b and s fold away.
	if stats.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", stats.Dropped)
	}
	if stats.BytesAfter >= stats.BytesBefore {
		t.Fatalf("compaction grew the log: %d -> %d", stats.BytesBefore, stats.BytesAfter)
	}
	after, err := Replay(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("final epoch changed across compaction:\nbefore %+v\nafter  %+v", before, after)
	}
	// Epoch 0 keeps its never-superseded record but loses gen-0.
	snap0, err := Replay(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap0.Active[ident.SSH]) != 1 || snap0.Active[ident.SSH][0].ID.Digest != "stable" {
		t.Fatalf("compacted epoch 0 SSH = %v, want only the stable record", snap0.Active[ident.SSH])
	}
	// Offsets were rewritten consistently: resume still works.
	w2, man, err := Resume(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if man.EpochsDone != 3 {
		t.Fatalf("EpochsDone = %d after compaction", man.EpochsDone)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEpochOutOfOrderRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.CompleteEpoch(1, "", 0); err == nil {
		t.Fatal("CompleteEpoch accepted a skipped epoch index")
	}
}
