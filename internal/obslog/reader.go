package obslog

import (
	"fmt"
	"os"
	"path/filepath"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// Snapshot is one epoch's full collection yield reconstructed from the log:
// every observation the epoch's scans produced, partitioned by campaign and
// indexed by protocol. experiments.ReplayEnv turns it back into a sealed
// analysis environment.
type Snapshot struct {
	// Epoch is the zero-based epoch index the snapshot replays.
	Epoch int
	// Active holds the single-vantage campaign's observations per protocol.
	Active [numShards][]alias.Observation
	// Censys holds the distributed campaign's observations per protocol.
	Censys [numShards][]alias.Observation
}

// readShardEpochs parses a shard file into its complete epochs. Records
// after the last epoch marker — the incomplete epoch in flight when a run
// was killed — are dropped, as is everything from the first truncated or
// CRC-corrupt frame onward. Only structurally valid frames with impossible
// content (a bad source byte, an epoch marker out of sequence) are reported
// as errors: they mean the file is not an observation log at all, not that
// a crash tore its tail.
func readShardEpochs(path string, p ident.Protocol) ([][]rec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obslog: %w", err)
	}
	off, err := checkHeader(data, p)
	if err != nil {
		return nil, err
	}
	var epochs [][]rec
	cur := []rec{}
	for off < len(data) {
		payload, n, ok := nextFrame(data[off:])
		if !ok {
			break
		}
		off += n
		switch payload[0] {
		case kindObs:
			r, err := decodeObsPayload(payload)
			if err != nil {
				return nil, fmt.Errorf("obslog: %s shard: %w", protoKey(p), err)
			}
			cur = append(cur, r)
		case kindMark:
			if len(payload) != 5 {
				return nil, fmt.Errorf("obslog: %s shard: malformed epoch marker", protoKey(p))
			}
			e := int(uint32(payload[1]) | uint32(payload[2])<<8 | uint32(payload[3])<<16 | uint32(payload[4])<<24)
			if e != len(epochs) {
				return nil, fmt.Errorf("obslog: %s shard: epoch marker %d where %d expected", protoKey(p), e, len(epochs))
			}
			epochs = append(epochs, cur)
			cur = []rec{}
		default:
			return nil, fmt.Errorf("obslog: %s shard: unknown frame kind %d", protoKey(p), payload[0])
		}
	}
	return epochs, nil
}

// Epochs reports how many complete epochs the log directory can replay: the
// minimum across shards of the epochs closed by a valid marker.
func Epochs(dir string) (int, error) {
	n := -1
	for _, p := range ident.Protocols {
		epochs, err := readShardEpochs(filepath.Join(dir, shardName(p)), p)
		if err != nil {
			return 0, err
		}
		if n < 0 || len(epochs) < n {
			n = len(epochs)
		}
	}
	if n < 0 {
		n = 0
	}
	return n, nil
}

// Replay reconstructs one completed epoch's observations from the log. It
// errors if any shard lacks the epoch (crash-truncated tails make later
// epochs unavailable, never wrong).
func Replay(dir string, epoch int) (*Snapshot, error) {
	if epoch < 0 {
		return nil, fmt.Errorf("obslog: negative epoch %d", epoch)
	}
	snap := &Snapshot{Epoch: epoch}
	for _, p := range ident.Protocols {
		epochs, err := readShardEpochs(filepath.Join(dir, shardName(p)), p)
		if err != nil {
			return nil, err
		}
		if epoch >= len(epochs) {
			return nil, fmt.Errorf("obslog: epoch %d not in %s shard (holds %d complete epochs)",
				epoch, protoKey(p), len(epochs))
		}
		for _, r := range epochs[epoch] {
			o := r.observation(p)
			if r.src == SourceCensys {
				snap.Censys[p] = append(snap.Censys[p], o)
			} else {
				snap.Active[p] = append(snap.Active[p], o)
			}
		}
	}
	return snap, nil
}
