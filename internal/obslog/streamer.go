package obslog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// DefaultReadahead is the chunk size an EpochReader fills its parse buffer
// with. Observation frames are tens of bytes, so one chunk amortises
// thousands of frames per read syscall while keeping the reader's resident
// footprint fixed no matter how large the epoch segment is.
const DefaultReadahead = 256 << 10

// minReadahead floors configured readahead: below this the buffer refills
// churn syscalls without saving measurable memory.
const minReadahead = 4 << 10

// ReadOptions tune an EpochReader.
type ReadOptions struct {
	// Readahead is the parse-buffer chunk size in bytes; 0 picks
	// DefaultReadahead. Values below a small floor are raised to it. A frame
	// larger than the readahead still parses — the buffer grows for that
	// frame only.
	Readahead int
}

// EpochReader streams one committed epoch of one shard, frame by frame, in
// bounded memory: the file is read in Readahead-sized chunks and only the
// unparsed tail of the current chunk is ever resident. It is the read side
// of the out-of-core collection path — dataset sealing replays logged
// observations through it instead of materialising the epoch in RAM.
//
// Error semantics deliberately differ from the whole-file Replay path.
// Replay tolerates a torn tail because records past the last epoch marker
// are an incomplete epoch a crash legitimately abandons. An EpochReader, by
// contrast, reads an epoch the manifest has committed (or the writer has
// folded), so any defect inside the segment — a torn frame, a CRC-corrupt
// interior frame, a truncated or misnumbered epoch marker — is a hard
// error: the caller must never seal a partial dataset from a segment the
// log claims is complete.
type EpochReader struct {
	f     *os.File
	p     ident.Protocol
	epoch int
	end   int64 // absolute offset one past the epoch's closing marker

	buf       []byte // unparsed window of the segment
	pos       int    // parse cursor within buf
	base      int64  // absolute file offset of buf[0]
	readahead int
	done      bool  // the epoch marker has been consumed
	err       error // sticky first failure
}

// OpenEpoch opens a streaming reader over one committed epoch of one
// shard, locating the segment through the manifest's per-epoch offsets —
// the reader seeks straight to the epoch's first frame rather than parsing
// the file from the top.
func OpenEpoch(dir string, p ident.Protocol, epoch int, opts ReadOptions) (*EpochReader, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	start, end, err := man.epochRange(p, epoch)
	if err != nil {
		return nil, err
	}
	return openEpochRange(filepath.Join(dir, shardName(p)), p, epoch, start, end, opts)
}

// ResumeEpochAt reopens a committed epoch mid-segment, at an offset a
// previous reader reported through Offset(). It lets a consumer that was
// interrupted partway through a replay continue without re-reading the
// segment's head.
func ResumeEpochAt(dir string, p ident.Protocol, epoch int, offset int64, opts ReadOptions) (*EpochReader, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	start, end, err := man.epochRange(p, epoch)
	if err != nil {
		return nil, err
	}
	if offset < start || offset >= end {
		return nil, fmt.Errorf("obslog: %s shard: resume offset %d outside epoch %d segment [%d,%d)",
			protoKey(p), offset, epoch, start, end)
	}
	return openEpochRange(filepath.Join(dir, shardName(p)), p, epoch, offset, end, opts)
}

// epochRange resolves one committed epoch's [start, end) byte range in a
// shard from the manifest offsets.
func (m *Manifest) epochRange(p ident.Protocol, epoch int) (start, end int64, err error) {
	if epoch < 0 || epoch >= m.EpochsDone {
		return 0, 0, fmt.Errorf("obslog: epoch %d not committed (%d epochs done)", epoch, m.EpochsDone)
	}
	start = int64(len(appendFrame(nil, headerPayload(p))))
	if epoch > 0 {
		start = m.Epochs[epoch-1].Offsets[protoKey(p)]
	}
	return start, m.Epochs[epoch].Offsets[protoKey(p)], nil
}

// openEpochRange opens a reader over an explicit [start, end) segment.
func openEpochRange(path string, p ident.Protocol, epoch int, start, end int64, opts ReadOptions) (*EpochReader, error) {
	if start < 0 || start >= end {
		return nil, fmt.Errorf("obslog: %s shard: empty or inverted epoch %d segment [%d,%d)",
			protoKey(p), epoch, start, end)
	}
	ra := opts.Readahead
	if ra <= 0 {
		ra = DefaultReadahead
	}
	if ra < minReadahead {
		ra = minReadahead
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obslog: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obslog: %w", err)
	}
	if st.Size() < end {
		f.Close()
		return nil, fmt.Errorf("obslog: %s shard is %d bytes, epoch %d ends at %d (shard truncated below a committed epoch)",
			protoKey(p), st.Size(), epoch, end)
	}
	return &EpochReader{f: f, p: p, epoch: epoch, end: end, base: start, readahead: ra}, nil
}

// Next returns the next logged observation of the epoch, tagged with the
// campaign that produced it. It returns io.EOF once the epoch's closing
// marker has been consumed, and a descriptive error for any structural
// defect inside the committed segment (see the type comment). After an
// error every subsequent call returns the same error.
func (r *EpochReader) Next() (Source, alias.Observation, error) {
	if r.err != nil {
		return 0, alias.Observation{}, r.err
	}
	if r.done {
		return 0, alias.Observation{}, io.EOF
	}
	payload, err := r.nextPayload()
	if err != nil {
		r.err = err
		return 0, alias.Observation{}, err
	}
	switch payload[0] {
	case kindObs:
		rec, err := decodeObsPayload(payload)
		if err != nil {
			r.err = fmt.Errorf("obslog: %s shard: %w", protoKey(r.p), err)
			return 0, alias.Observation{}, r.err
		}
		return rec.src, rec.observation(r.p), nil
	case kindMark:
		if len(payload) != 5 {
			r.err = fmt.Errorf("obslog: %s shard: truncated epoch marker (%d payload bytes) at offset %d",
				protoKey(r.p), len(payload), r.Offset())
			return 0, alias.Observation{}, r.err
		}
		e := int(binary.LittleEndian.Uint32(payload[1:]))
		if e != r.epoch {
			r.err = fmt.Errorf("obslog: %s shard: epoch marker %d where %d expected", protoKey(r.p), e, r.epoch)
			return 0, alias.Observation{}, r.err
		}
		if off := r.base + int64(r.pos); off != r.end {
			r.err = fmt.Errorf("obslog: %s shard: epoch %d marker at offset %d, segment ends at %d",
				protoKey(r.p), r.epoch, off, r.end)
			return 0, alias.Observation{}, r.err
		}
		r.done = true
		return 0, alias.Observation{}, io.EOF
	default:
		r.err = fmt.Errorf("obslog: %s shard: unknown frame kind %d at offset %d", protoKey(r.p), payload[0], r.Offset())
		return 0, alias.Observation{}, r.err
	}
}

// nextPayload parses the frame at the cursor, refilling the chunk buffer as
// needed, and returns its payload. The returned slice aliases the buffer
// and is only valid until the next call.
func (r *EpochReader) nextPayload() ([]byte, error) {
	if err := r.ensure(frameOverhead); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(r.buf[r.pos:]))
	if n < 1 {
		return nil, fmt.Errorf("obslog: %s shard: corrupt frame length %d at offset %d", protoKey(r.p), n, r.Offset())
	}
	total := frameOverhead + n
	if r.base+int64(r.pos)+int64(total) > r.end {
		return nil, fmt.Errorf("obslog: %s shard: torn frame at offset %d (%d-byte frame crosses the epoch %d boundary at %d)",
			protoKey(r.p), r.Offset(), total, r.epoch, r.end)
	}
	if err := r.ensure(total); err != nil {
		return nil, err
	}
	frame := r.buf[r.pos : r.pos+total]
	payload := frame[4 : 4+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[4+n:]) {
		return nil, fmt.Errorf("obslog: %s shard: CRC mismatch at offset %d (epoch %d)", protoKey(r.p), r.Offset(), r.epoch)
	}
	r.pos += total
	return payload, nil
}

// ensure makes at least n unparsed bytes available at the cursor, shifting
// the buffered tail to the front and reading further chunks of the segment
// as needed. It fails when fewer than n bytes remain before the epoch
// boundary — a torn frame inside a committed segment.
func (r *EpochReader) ensure(n int) error {
	if len(r.buf)-r.pos >= n {
		return nil
	}
	if r.pos > 0 {
		rem := copy(r.buf, r.buf[r.pos:])
		r.base += int64(r.pos)
		r.buf = r.buf[:rem]
		r.pos = 0
	}
	for len(r.buf) < n {
		readOff := r.base + int64(len(r.buf))
		if readOff >= r.end {
			return fmt.Errorf("obslog: %s shard: torn frame at offset %d (need %d bytes, epoch %d segment ends at %d)",
				protoKey(r.p), r.base+int64(r.pos), n, r.epoch, r.end)
		}
		want := r.readahead
		if want < n-len(r.buf) {
			want = n - len(r.buf)
		}
		if rest := r.end - readOff; int64(want) > rest {
			want = int(rest)
		}
		need := len(r.buf) + want
		if cap(r.buf) < need {
			nb := make([]byte, len(r.buf), need)
			copy(nb, r.buf)
			r.buf = nb
		}
		chunk := r.buf[len(r.buf):need]
		m, err := r.f.ReadAt(chunk, readOff)
		r.buf = r.buf[:len(r.buf)+m]
		if m == 0 {
			if err == nil || err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("obslog: %s shard: read at offset %d: %w", protoKey(r.p), readOff, err)
		}
	}
	return nil
}

// Offset reports the absolute file offset of the next unread frame — the
// mid-file resume point ResumeEpochAt accepts.
func (r *EpochReader) Offset() int64 { return r.base + int64(r.pos) }

// Epoch returns the epoch index the reader streams.
func (r *EpochReader) Epoch() int { return r.epoch }

// Close releases the reader's file handle.
func (r *EpochReader) Close() error { return r.f.Close() }
