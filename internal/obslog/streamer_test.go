package obslog

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// streamEpoch drains an EpochReader into per-source observation slices.
func streamEpoch(t *testing.T, r *EpochReader) (active, censys []alias.Observation) {
	t.Helper()
	for {
		src, o, err := r.Next()
		if err == io.EOF {
			return active, censys
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if src == SourceCensys {
			censys = append(censys, o)
		} else {
			active = append(active, o)
		}
	}
}

// writeStreamLog builds a small two-epoch log and returns its directory.
func writeStreamLog(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	w, err := Create(dir, testMeta, Options{SpillThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		for i := 0; i < 9; i++ {
			addr := fmt.Sprintf("10.%d.0.%d", e, i+1)
			w.Observe(SourceActive, ident.SSH, obs(ident.SSH, addr, fmt.Sprintf("a%d-%d", e, i)))
			w.Observe(SourceCensys, ident.SSH, obs(ident.SSH, addr, fmt.Sprintf("c%d-%d", e, i)))
			w.Observe(SourceActive, ident.BGP, obs(ident.BGP, addr, fmt.Sprintf("b%d-%d", e, i)))
			w.Observe(SourceActive, ident.SNMP, obs(ident.SNMP, addr, fmt.Sprintf("s%d-%d", e, i)))
		}
		if err := w.CompleteEpoch(e, "", 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestEpochReaderMatchesReplay proves the chunked streaming reader yields
// exactly what the whole-file Replay materialises — for every epoch and
// shard, at a readahead small enough that every frame straddles a chunk
// refill at least once.
func TestEpochReaderMatchesReplay(t *testing.T) {
	dir := writeStreamLog(t)
	for e := 0; e < 2; e++ {
		snap, err := Replay(dir, e)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ident.Protocols {
			// minReadahead clamps this up, but the tiny request documents
			// the intent: exercise refills, not one-shot reads.
			r, err := OpenEpoch(dir, p, e, ReadOptions{Readahead: 1})
			if err != nil {
				t.Fatal(err)
			}
			active, censys := streamEpoch(t, r)
			r.Close()
			if !reflect.DeepEqual(active, snap.Active[p]) {
				t.Fatalf("epoch %d %s: streamed active records differ from Replay", e, protoKey(p))
			}
			if !reflect.DeepEqual(censys, snap.Censys[p]) {
				t.Fatalf("epoch %d %s: streamed censys records differ from Replay", e, protoKey(p))
			}
			// After EOF the reader stays at EOF.
			if _, _, err := r.Next(); err != io.EOF {
				t.Fatalf("Next after EOF = %v, want io.EOF", err)
			}
		}
	}
	if _, err := OpenEpoch(dir, ident.SSH, 2, ReadOptions{}); err == nil {
		t.Fatal("OpenEpoch accepted an uncommitted epoch")
	}
}

// TestEpochReaderResumeOffset proves Offset is a valid mid-file resume
// point: a reader interrupted partway and resumed with ResumeEpochAt yields
// the same record sequence as an uninterrupted read.
func TestEpochReaderResumeOffset(t *testing.T) {
	dir := writeStreamLog(t)
	full, err := OpenEpoch(dir, ident.SSH, 1, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantActive, wantCensys := streamEpoch(t, full)
	full.Close()

	r, err := OpenEpoch(dir, ident.SSH, 1, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var active, censys []alias.Observation
	for i := 0; i < 5; i++ {
		src, o, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if src == SourceCensys {
			censys = append(censys, o)
		} else {
			active = append(active, o)
		}
	}
	off := r.Offset()
	r.Close()

	res, err := ResumeEpochAt(dir, ident.SSH, 1, off, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	restActive, restCensys := streamEpoch(t, res)
	res.Close()
	active = append(active, restActive...)
	censys = append(censys, restCensys...)
	if !reflect.DeepEqual(active, wantActive) || !reflect.DeepEqual(censys, wantCensys) {
		t.Fatal("resumed read differs from uninterrupted read")
	}

	if _, err := ResumeEpochAt(dir, ident.SSH, 1, 1, ReadOptions{}); err == nil {
		t.Fatal("ResumeEpochAt accepted an offset outside the epoch segment")
	}
}

// TestEpochReaderPendingFold proves a folded-but-uncommitted epoch streams
// through Writer.EpochReaderAt, and that commit does not change what the
// reader yields.
func TestEpochReaderPendingFold(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, testMeta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Observe(SourceActive, ident.SSH, obs(ident.SSH, "10.0.0.1", "d1"))
	w.Observe(SourceCensys, ident.SSH, obs(ident.SSH, "10.0.0.2", "d2"))
	if _, err := w.EpochReaderAt(ident.SSH, 0, ReadOptions{}); err == nil {
		t.Fatal("EpochReaderAt served an unfolded epoch")
	}
	if err := w.FoldEpoch(0); err != nil {
		t.Fatal(err)
	}
	if err := w.FoldEpoch(0); err != nil {
		t.Fatalf("re-folding the pending epoch: %v", err)
	}
	r, err := w.EpochReaderAt(ident.SSH, 0, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pendingActive, pendingCensys := streamEpoch(t, r)
	r.Close()
	if err := w.CommitEpoch(0, "digest", 7); err != nil {
		t.Fatal(err)
	}
	r, err = w.EpochReaderAt(ident.SSH, 0, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	committedActive, committedCensys := streamEpoch(t, r)
	r.Close()
	if !reflect.DeepEqual(pendingActive, committedActive) || !reflect.DeepEqual(pendingCensys, committedCensys) {
		t.Fatal("pending-fold read differs from committed read")
	}
	if len(pendingActive) != 1 || len(pendingCensys) != 1 {
		t.Fatalf("streamed %d active + %d censys records, want 1 + 1", len(pendingActive), len(pendingCensys))
	}
}

// shardEpochRange resolves a committed epoch's byte range for doctoring.
func shardEpochRange(t *testing.T, dir string, p ident.Protocol, epoch int) (start, end int64) {
	t.Helper()
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	start, end, err = man.epochRange(p, epoch)
	if err != nil {
		t.Fatal(err)
	}
	return start, end
}

// doctorShard rewrites bytes of a shard file in place.
func doctorShard(t *testing.T, dir string, p ident.Protocol, off int64, b []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, shardName(p)), os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// mustFailStream asserts that streaming the epoch surfaces an error whose
// message contains want, that the error is sticky, and that no record after
// the failure point was delivered.
func mustFailStream(t *testing.T, dir string, p ident.Protocol, epoch int, want string) {
	t.Helper()
	r, err := OpenEpoch(dir, p, epoch, ReadOptions{Readahead: 1})
	if err != nil {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("open error %q does not mention %q", err, want)
		}
		return
	}
	defer r.Close()
	for {
		_, _, err := r.Next()
		if err == io.EOF {
			t.Fatalf("epoch %d streamed to EOF despite corruption (want error containing %q)", epoch, want)
		}
		if err != nil {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not mention %q", err, want)
			}
			if _, _, again := r.Next(); again != err {
				t.Fatalf("error not sticky: second Next returned %v", again)
			}
			return
		}
	}
}

// TestEpochReaderTornFrame covers the torn-tail-mid-chunk edge: a frame
// whose length field claims bytes beyond the committed epoch boundary must
// surface a clean error, not a short record or a silent stop — inside a
// committed segment a torn frame means the log lost data it promised.
func TestEpochReaderTornFrame(t *testing.T) {
	dir := writeStreamLog(t)
	start, _ := shardEpochRange(t, dir, ident.SSH, 1)
	// Inflate the first frame's length prefix so it crosses the boundary.
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], 1<<20)
	doctorShard(t, dir, ident.SSH, start, n[:])
	mustFailStream(t, dir, ident.SSH, 1, "torn frame")
}

// TestEpochReaderCorruptInteriorFrame covers the CRC edge: a flipped byte in
// the middle of a committed segment fails the frame's CRC-32C and surfaces
// as an error at exactly that frame.
func TestEpochReaderCorruptInteriorFrame(t *testing.T) {
	dir := writeStreamLog(t)
	start, end := shardEpochRange(t, dir, ident.BGP, 0)
	// Flip one payload byte roughly mid-segment — never the length prefix.
	doctorShard(t, dir, ident.BGP, start+(end-start)/2, []byte{0xFF})
	mustFailStream(t, dir, ident.BGP, 0, "CRC mismatch")
}

// TestEpochReaderTruncatedShard covers the truncated-epoch edge at the file
// level: a shard cut below a committed epoch's end offset is rejected at
// open — the manifest promised bytes the file no longer has.
func TestEpochReaderTruncatedShard(t *testing.T) {
	dir := writeStreamLog(t)
	_, end := shardEpochRange(t, dir, ident.SNMP, 1)
	path := filepath.Join(dir, shardName(ident.SNMP))
	if err := os.Truncate(path, end-3); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEpoch(dir, ident.SNMP, 1, ReadOptions{}); err == nil {
		t.Fatal("OpenEpoch accepted a shard truncated below the committed epoch")
	} else if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error %q does not mention truncation", err)
	}
}

// TestEpochReaderTruncatedMarker covers the malformed-epoch-marker edge: a
// marker frame whose payload is shorter than the five marker bytes is a
// structural defect, reported as such rather than closing the epoch.
func TestEpochReaderTruncatedMarker(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, shardName(ident.SSH))
	buf := appendFrame(nil, headerPayload(ident.SSH))
	start := int64(len(buf))
	buf = appendFrame(buf, appendObsPayload(nil, rec{src: SourceActive, addr: netip.MustParseAddr("10.0.0.1"), digest: "d1"}))
	buf = appendFrame(buf, []byte{kindMark, 0}) // marker cut to 2 payload bytes
	end := int64(len(buf))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := openEpochRange(path, ident.SSH, 0, start, end, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Next(); err != nil {
		t.Fatalf("observation before the marker: %v", err)
	}
	if _, _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "truncated epoch marker") {
		t.Fatalf("Next = %v, want truncated epoch marker error", err)
	}
}

// runEpochsForCompaction drives a 3-epoch run where every epoch re-observes
// the same addresses with epoch-specific digests, so earlier epochs'
// records are all superseded — the workload auto-compaction feeds on.
func runEpochsForCompaction(t *testing.T, dir string, opts Options) {
	t.Helper()
	w, err := Create(dir, testMeta, opts)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		for i := 0; i < 8; i++ {
			addr := fmt.Sprintf("10.1.0.%d", i+1)
			w.Observe(SourceActive, ident.SSH, obs(ident.SSH, addr, fmt.Sprintf("ssh-e%d", e)))
			w.Observe(SourceCensys, ident.BGP, obs(ident.BGP, addr, fmt.Sprintf("bgp-e%d", e)))
			w.Observe(SourceActive, ident.SNMP, obs(ident.SNMP, addr, fmt.Sprintf("snmp-e%d", e)))
		}
		if err := w.CompleteEpoch(e, fmt.Sprintf("digest-%d", e), uint64(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCompactionPreservesFinalEpoch proves Options.CompactAbove: a run
// whose shards are compacted mid-run (after every commit, with a 1-byte
// threshold) yields a byte-identical final-epoch replay to an uncompacted
// run of the same workload, keeps appending correctly after each compaction,
// and actually shrinks the shards.
func TestAutoCompactionPreservesFinalEpoch(t *testing.T) {
	plain, compacted := t.TempDir(), t.TempDir()
	runEpochsForCompaction(t, plain, Options{})
	runEpochsForCompaction(t, compacted, Options{CompactAbove: 1})

	wantEpochs, err := Epochs(plain)
	if err != nil {
		t.Fatal(err)
	}
	gotEpochs, err := Epochs(compacted)
	if err != nil {
		t.Fatal(err)
	}
	if wantEpochs != 3 || gotEpochs != 3 {
		t.Fatalf("epochs done: plain %d, compacted %d, want 3", wantEpochs, gotEpochs)
	}

	want, err := Replay(plain, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Replay(compacted, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("final-epoch replay differs across mid-run auto-compaction")
	}

	// The streaming reader agrees with Replay on the compacted log too.
	for _, p := range ident.Protocols {
		r, err := OpenEpoch(compacted, p, 2, ReadOptions{Readahead: 1})
		if err != nil {
			t.Fatal(err)
		}
		active, censys := streamEpoch(t, r)
		r.Close()
		if !reflect.DeepEqual(active, want.Active[p]) || !reflect.DeepEqual(censys, want.Censys[p]) {
			t.Fatalf("%s: streamed read of compacted final epoch differs from uncompacted replay", protoKey(p))
		}
	}

	var plainBytes, compactedBytes int64
	for _, p := range ident.Protocols {
		ps, err := os.Stat(filepath.Join(plain, shardName(p)))
		if err != nil {
			t.Fatal(err)
		}
		cs, err := os.Stat(filepath.Join(compacted, shardName(p)))
		if err != nil {
			t.Fatal(err)
		}
		plainBytes += ps.Size()
		compactedBytes += cs.Size()
	}
	if compactedBytes >= plainBytes {
		t.Fatalf("auto-compaction did not shrink shards: %d >= %d bytes", compactedBytes, plainBytes)
	}

	// Manifest digests (the scored results) are untouched by compaction.
	man, err := ReadManifest(compacted)
	if err != nil {
		t.Fatal(err)
	}
	for e, rec := range man.Epochs {
		if want := fmt.Sprintf("digest-%d", e); rec.SetsDigest != want {
			t.Fatalf("epoch %d manifest digest %q, want %q", e, rec.SetsDigest, want)
		}
	}
}

// TestEpochReaderMisnumberedMarker: a structurally valid marker carrying the
// wrong epoch index is impossible content inside a committed segment.
func TestEpochReaderMisnumberedMarker(t *testing.T) {
	dir := writeStreamLog(t)
	_, end := shardEpochRange(t, dir, ident.SSH, 0)
	// Rewrite epoch 0's marker in place to claim epoch 7. The marker frame
	// is the last 13 bytes of the segment (5-byte payload + overhead).
	frame := appendFrame(nil, markPayload(7))
	doctorShard(t, dir, ident.SSH, end-int64(len(frame)), frame)
	mustFailStream(t, dir, ident.SSH, 0, "epoch marker 7")
}
