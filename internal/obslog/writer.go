package obslog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// SyncPolicy controls when the Writer calls fsync on shard files. The
// manifest is always written atomically (temp file + rename) regardless of
// policy; the policy only governs how much of the current epoch a power
// loss can cost.
type SyncPolicy int

const (
	// SyncEpoch (the default) fsyncs each shard once per epoch, right
	// after the canonical segment and epoch marker are appended and before
	// the manifest commits the epoch. A crash costs at most the epoch in
	// flight.
	SyncEpoch SyncPolicy = iota
	// SyncNever leaves flushing to the OS. Fastest; a crash may lose
	// epochs the manifest claims are durable. For benchmarks and tests.
	SyncNever
	// SyncAlways additionally fsyncs the spill file on every overflow
	// flush, bounding mid-epoch loss to one spill buffer.
	SyncAlways
)

// DefaultSpillThreshold is the per-shard record count buffered in memory
// before arrivals overflow to the spill file.
const DefaultSpillThreshold = 4096

// Options tune a Writer.
type Options struct {
	// Sync is the fsync policy; zero value is SyncEpoch.
	Sync SyncPolicy
	// SpillThreshold overrides DefaultSpillThreshold when positive.
	SpillThreshold int
	// CompactAbove, when positive, auto-compacts the log whenever an epoch
	// commit leaves the canonical shards totalling more than this many
	// bytes: superseded observations fold away (Compact semantics — the
	// final committed epoch replays identically), the shard files are
	// atomically replaced, and the writer reopens them at the compacted
	// offsets, all before CommitEpoch returns. Zero disables auto-compaction.
	CompactAbove int64
}

// Writer is the append side of an observation log directory. Observe is
// safe for concurrent use (the scan worker pools call it from many
// goroutines); CompleteEpoch and Close must be called with no Observe in
// flight, which the epoch structure of a run guarantees.
type Writer struct {
	dir    string
	opts   Options
	shards [numShards]*shard

	mu  sync.Mutex // guards man, pending, pendingEpoch
	man *Manifest
	// pending holds the per-shard offsets of an epoch FoldEpoch has made
	// durable but CommitEpoch has not yet recorded in the manifest — the
	// window in which the out-of-core sealing replay streams the folded
	// segment back through EpochReaderAt.
	pending      map[string]int64
	pendingEpoch int
}

// shard is the per-protocol buffered append state.
type shard struct {
	mu      sync.Mutex
	proto   ident.Protocol
	f       *os.File // canonical log, positioned at its end
	spill   *os.File // arrival-order overflow, positioned at its end
	mem     []rec    // in-memory arrival tail
	spilled int      // records currently in the spill file
	size    int64    // durable byte size of the canonical log
	limit   int      // spill threshold
	sync    SyncPolicy

	payloadBuf []byte // reusable frame payload scratch
	frameBuf   []byte // reusable encoded-frame scratch
}

// Create initialises a fresh log directory (created if missing). It refuses
// to reuse a directory that already holds a manifest — resume a prior run
// with Resume instead.
func Create(dir string, meta RunMeta, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obslog: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("obslog: %s already holds a log (use Resume)", dir)
	}
	w := &Writer{dir: dir, opts: opts, man: newManifest(meta)}
	for _, p := range ident.Protocols {
		s, err := createShard(dir, p, opts)
		if err != nil {
			w.Close()
			return nil, err
		}
		w.shards[p] = s
	}
	if err := w.writeManifest(); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// createShard creates a shard file with its header frame plus an empty
// spill file.
func createShard(dir string, p ident.Protocol, opts Options) (*shard, error) {
	s := &shard{proto: p, limit: opts.SpillThreshold, sync: opts.Sync}
	if s.limit <= 0 {
		s.limit = DefaultSpillThreshold
	}
	f, err := os.OpenFile(filepath.Join(dir, shardName(p)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obslog: %w", err)
	}
	header := appendFrame(nil, headerPayload(p))
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, fmt.Errorf("obslog: %w", err)
	}
	s.f = f
	s.size = int64(len(header))
	sp, err := os.OpenFile(filepath.Join(dir, spillName(p)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obslog: %w", err)
	}
	s.spill = sp
	return s, nil
}

// Observe appends one observation to the current (incomplete) epoch. Unset
// addresses and empty digests are dropped — they cannot round-trip and the
// analysis layer ignores them anyway.
func (w *Writer) Observe(src Source, p ident.Protocol, o alias.Observation) {
	if !o.Addr.IsValid() || o.ID.Digest == "" {
		return
	}
	s := w.shards[p]
	s.mu.Lock()
	s.mem = append(s.mem, rec{src: src, addr: o.Addr, digest: o.ID.Digest})
	if len(s.mem) >= s.limit {
		s.flushSpillLocked()
	}
	s.mu.Unlock()
}

// flushSpillLocked encodes the in-memory tail as frames and appends it to
// the spill file. Spill write errors are deferred to CompleteEpoch (Observe
// has no error channel back through the scan sink interface); the records
// stay counted so the failure surfaces rather than silently shrinking the
// epoch.
func (s *shard) flushSpillLocked() {
	s.frameBuf = s.frameBuf[:0]
	for _, r := range s.mem {
		s.payloadBuf = appendObsPayload(s.payloadBuf[:0], r)
		s.frameBuf = appendFrame(s.frameBuf, s.payloadBuf)
	}
	if _, err := s.spill.Write(s.frameBuf); err == nil {
		if s.sync == SyncAlways {
			s.spill.Sync()
		}
		s.spilled += len(s.mem)
		s.mem = s.mem[:0]
	}
}

// Sink adapts the Writer to the experiments.ObservationSink shape for one
// source, so scan options can tee into the log:
//
//	opts.Sink = experiments.TeeSink(opts.Sink, log.Sink(obslog.SourceActive))
type SinkWriter struct {
	w   *Writer
	src Source
}

// Sink returns the log's scan-sink adapter for src.
func (w *Writer) Sink(src Source) SinkWriter {
	return SinkWriter{w: w, src: src}
}

// Observe implements the observation-sink shape.
func (s SinkWriter) Observe(p ident.Protocol, o alias.Observation) {
	s.w.Observe(s.src, p, o)
}

// Dir returns the log directory.
func (w *Writer) Dir() string { return w.dir }

// Manifest returns a snapshot of the current checkpoint manifest.
func (w *Writer) Manifest() Manifest {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.man.clone()
}

// CompleteEpoch folds the epoch's buffered arrivals into each shard's
// canonical segment (sorted, deduplicated, CRC-framed, closed by an epoch
// marker), fsyncs per policy, and atomically commits the checkpoint
// manifest recording the per-shard offsets, the world churn draw state, and
// the running sets digest. epoch must be the next undone epoch. It is
// FoldEpoch followed by CommitEpoch; callers that need to read the folded
// segment back before committing (the out-of-core sealing replay) call the
// two halves themselves.
func (w *Writer) CompleteEpoch(epoch int, setsDigest string, drawState uint64) error {
	return w.CommitEpoch(epoch, setsDigest, drawState)
}

// FoldEpoch folds the epoch's buffered arrivals into each shard's canonical
// segment — sorted, deduplicated, CRC-framed, closed by an epoch marker,
// fsynced per policy — without committing the manifest. The folded segment
// is immediately readable through EpochReaderAt, which is how streamed
// collection seals its datasets from disk before the epoch's digest (and
// hence the manifest record) exists. Calling FoldEpoch again for the same
// epoch is a no-op; a crash between fold and commit costs exactly the
// folded epoch, as if it had never been folded.
func (w *Writer) FoldEpoch(epoch int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.foldEpochLocked(epoch)
}

// foldEpochLocked is FoldEpoch's body; callers hold w.mu.
func (w *Writer) foldEpochLocked(epoch int) error {
	if w.pending != nil {
		if epoch == w.pendingEpoch {
			return nil
		}
		return fmt.Errorf("obslog: epoch %d folded but not committed; cannot fold %d", w.pendingEpoch, epoch)
	}
	if epoch != w.man.EpochsDone {
		return fmt.Errorf("obslog: epoch %d out of order (next is %d)", epoch, w.man.EpochsDone)
	}
	offsets := make(map[string]int64, len(w.shards))
	for _, p := range ident.Protocols {
		s := w.shards[p]
		if err := s.fold(epoch); err != nil {
			return err
		}
		offsets[protoKey(p)] = s.size
	}
	w.pending, w.pendingEpoch = offsets, epoch
	return nil
}

// CommitEpoch records a folded epoch in the checkpoint manifest (folding it
// first if FoldEpoch has not run). The segment is durable before the
// manifest names it — the ordering crash safety rests on. After the commit
// it triggers auto-compaction when Options.CompactAbove is exceeded.
func (w *Writer) CommitEpoch(epoch int, setsDigest string, drawState uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.foldEpochLocked(epoch); err != nil {
		return err
	}
	w.man.EpochsDone = epoch + 1
	w.man.Epochs = append(w.man.Epochs, EpochRecord{
		Epoch:      epoch,
		SetsDigest: setsDigest,
		DrawState:  drawState,
		Offsets:    w.pending,
	})
	w.pending = nil
	if err := w.writeManifest(); err != nil {
		return err
	}
	return w.maybeCompactLocked()
}

// EpochReaderAt opens a chunked streaming reader over one epoch of one
// shard. It serves committed epochs and the epoch FoldEpoch has folded but
// not yet committed — the window the out-of-core sealing replay reads. The
// reader takes its own file handle, so subsequent appends never disturb it,
// and the open happens under the writer lock so a concurrent auto-compaction
// cannot swap the file between offset resolution and open.
func (w *Writer) EpochReaderAt(p ident.Protocol, epoch int, opts ReadOptions) (*EpochReader, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := int64(len(appendFrame(nil, headerPayload(p))))
	if epoch > 0 {
		if epoch-1 >= w.man.EpochsDone {
			return nil, fmt.Errorf("obslog: epoch %d neither committed nor folded (%d epochs done)", epoch, w.man.EpochsDone)
		}
		start = w.man.Epochs[epoch-1].Offsets[protoKey(p)]
	}
	var end int64
	switch {
	case epoch >= 0 && epoch < w.man.EpochsDone:
		end = w.man.Epochs[epoch].Offsets[protoKey(p)]
	case w.pending != nil && epoch == w.pendingEpoch:
		end = w.pending[protoKey(p)]
	default:
		return nil, fmt.Errorf("obslog: epoch %d neither committed nor folded (%d epochs done)", epoch, w.man.EpochsDone)
	}
	return openEpochRange(filepath.Join(w.dir, shardName(p)), p, epoch, start, end, opts)
}

// maybeCompactLocked runs the compaction pass when the canonical shards
// exceed Options.CompactAbove. The shard handles are closed around the pass
// (compaction atomically replaces the files) and reopened at the compacted
// offsets; readers opened earlier keep their own handles on the replaced
// inodes and finish undisturbed. Callers hold w.mu.
func (w *Writer) maybeCompactLocked() error {
	if w.opts.CompactAbove <= 0 {
		return nil
	}
	var total int64
	for _, p := range ident.Protocols {
		total += w.shards[p].size
	}
	if total <= w.opts.CompactAbove {
		return nil
	}
	for _, p := range ident.Protocols {
		s := w.shards[p]
		s.mu.Lock()
		err := s.f.Close()
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("obslog: %s shard: %w", protoKey(p), err)
		}
	}
	if _, err := compactWith(w.dir, w.man); err != nil {
		return err
	}
	for _, p := range ident.Protocols {
		s := w.shards[p]
		size := int64(len(appendFrame(nil, headerPayload(p))))
		if w.man.EpochsDone > 0 {
			size = w.man.Epochs[w.man.EpochsDone-1].Offsets[protoKey(p)]
		}
		f, err := os.OpenFile(filepath.Join(w.dir, shardName(p)), os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("obslog: %w", err)
		}
		if _, err := f.Seek(size, 0); err != nil {
			f.Close()
			return fmt.Errorf("obslog: %s shard: %w", protoKey(p), err)
		}
		s.mu.Lock()
		s.f, s.size = f, size
		s.mu.Unlock()
	}
	return nil
}

// fold drains the spill and memory tail, canonicalises the epoch's records,
// and appends the segment plus the epoch marker to the canonical log.
func (s *shard) fold(epoch int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, err := s.drainLocked()
	if err != nil {
		return err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].less(recs[j]) })
	s.frameBuf = s.frameBuf[:0]
	var prev rec
	for i, r := range recs {
		if i > 0 && r == prev {
			continue
		}
		prev = r
		s.payloadBuf = appendObsPayload(s.payloadBuf[:0], r)
		s.frameBuf = appendFrame(s.frameBuf, s.payloadBuf)
	}
	s.frameBuf = appendFrame(s.frameBuf, markPayload(epoch))
	if _, err := s.f.Write(s.frameBuf); err != nil {
		return fmt.Errorf("obslog: %s shard: %w", protoKey(s.proto), err)
	}
	if s.sync != SyncNever {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("obslog: %s shard: %w", protoKey(s.proto), err)
		}
	}
	s.size += int64(len(s.frameBuf))
	return nil
}

// drainLocked returns all records of the epoch in flight (spilled plus
// in-memory) and resets the spill file for the next epoch. It detects
// shortfalls from failed spill writes.
func (s *shard) drainLocked() ([]rec, error) {
	recs := make([]rec, 0, s.spilled+len(s.mem))
	if s.spilled > 0 {
		if _, err := s.spill.Seek(0, 0); err != nil {
			return nil, fmt.Errorf("obslog: %s spill: %w", protoKey(s.proto), err)
		}
		data, err := os.ReadFile(s.spill.Name())
		if err != nil {
			return nil, fmt.Errorf("obslog: %s spill: %w", protoKey(s.proto), err)
		}
		for off := 0; off < len(data); {
			payload, n, ok := nextFrame(data[off:])
			if !ok {
				break
			}
			off += n
			r, err := decodeObsPayload(payload)
			if err != nil {
				return nil, fmt.Errorf("obslog: %s spill: %w", protoKey(s.proto), err)
			}
			recs = append(recs, r)
		}
		if len(recs) != s.spilled {
			return nil, fmt.Errorf("obslog: %s spill holds %d records, expected %d (spill write failed mid-epoch)",
				protoKey(s.proto), len(recs), s.spilled)
		}
	}
	recs = append(recs, s.mem...)
	s.mem = s.mem[:0]
	s.spilled = 0
	if err := s.spill.Truncate(0); err != nil {
		return nil, fmt.Errorf("obslog: %s spill: %w", protoKey(s.proto), err)
	}
	if _, err := s.spill.Seek(0, 0); err != nil {
		return nil, fmt.Errorf("obslog: %s spill: %w", protoKey(s.proto), err)
	}
	return recs, nil
}

// Rollback discards completed epochs beyond done: shard files are truncated
// to the offsets recorded at epoch done-1 (or their headers for done == 0)
// and the manifest is rewritten. The resume path uses it when a sidecar the
// caller persists per epoch (the scenario scorecard) did not survive the
// crash even though the log segment did.
func (w *Writer) Rollback(done int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if done < 0 || done > w.man.EpochsDone {
		return fmt.Errorf("obslog: cannot roll back to %d of %d epochs", done, w.man.EpochsDone)
	}
	if done == w.man.EpochsDone && w.pending == nil {
		return nil
	}
	// A folded-but-uncommitted segment sits beyond the committed offsets;
	// the truncation below removes it along with any rolled-back epochs.
	w.pending = nil
	for _, p := range ident.Protocols {
		s := w.shards[p]
		s.mu.Lock()
		size := int64(len(appendFrame(nil, headerPayload(p))))
		if done > 0 {
			size = w.man.Epochs[done-1].Offsets[protoKey(p)]
		}
		err := s.f.Truncate(size)
		if err == nil {
			_, err = s.f.Seek(size, 0)
		}
		if err == nil {
			s.size = size
		}
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("obslog: %s shard: %w", protoKey(p), err)
		}
	}
	w.man.EpochsDone = done
	w.man.Epochs = w.man.Epochs[:done]
	return w.writeManifest()
}

// writeManifest atomically replaces the manifest file. Callers hold w.mu.
func (w *Writer) writeManifest() error {
	return w.man.write(w.dir)
}

// Close closes the shard files and removes the transient spill files. Any
// observations of an epoch that was never completed are discarded, exactly
// as a crash would discard them.
func (w *Writer) Close() error {
	var first error
	for _, s := range w.shards {
		if s == nil {
			continue
		}
		if s.spill != nil {
			name := s.spill.Name()
			if err := s.spill.Close(); err != nil && first == nil {
				first = err
			}
			os.Remove(name)
		}
		if s.f != nil {
			if err := s.f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if first != nil {
		return fmt.Errorf("obslog: %w", first)
	}
	return nil
}

// Resume reopens an existing log directory for appending. Shard files are
// truncated back to the manifest's last committed offsets (dropping any
// partial epoch a crash left behind — including torn frames, which the
// offsets cut away wholesale) and the spill files are reset. It returns the
// reopened writer and the recovered manifest.
func Resume(dir string, opts Options) (*Writer, *Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	w := &Writer{dir: dir, opts: opts, man: man}
	for _, p := range ident.Protocols {
		s, err := resumeShard(dir, p, man, opts)
		if err != nil {
			w.Close()
			return nil, nil, err
		}
		w.shards[p] = s
	}
	snapshot := man.clone()
	return w, &snapshot, nil
}

// resumeShard reopens one shard at its last committed offset.
func resumeShard(dir string, p ident.Protocol, man *Manifest, opts Options) (*shard, error) {
	s := &shard{proto: p, limit: opts.SpillThreshold, sync: opts.Sync}
	if s.limit <= 0 {
		s.limit = DefaultSpillThreshold
	}
	path := filepath.Join(dir, shardName(p))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obslog: %w", err)
	}
	headerLen := int64(len(appendFrame(nil, headerPayload(p))))
	head := make([]byte, headerLen)
	if _, err := f.ReadAt(head, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("obslog: %s shard: %w", protoKey(p), err)
	}
	if _, err := checkHeader(head, p); err != nil {
		f.Close()
		return nil, err
	}
	size := headerLen
	if man.EpochsDone > 0 {
		size = man.Epochs[man.EpochsDone-1].Offsets[protoKey(p)]
	}
	if st, err := f.Stat(); err != nil {
		f.Close()
		return nil, fmt.Errorf("obslog: %w", err)
	} else if st.Size() < size {
		f.Close()
		return nil, fmt.Errorf("obslog: %s shard is %d bytes, manifest expects at least %d (log lost data the manifest committed)",
			protoKey(p), st.Size(), size)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("obslog: %s shard: %w", protoKey(p), err)
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("obslog: %s shard: %w", protoKey(p), err)
	}
	s.f = f
	s.size = size
	sp, err := os.OpenFile(filepath.Join(dir, spillName(p)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obslog: %w", err)
	}
	s.spill = sp
	return s, nil
}
