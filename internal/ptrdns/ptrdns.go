// Package ptrdns implements the generic DNS-based dual-stack inference the
// paper compares its approach against (Czyz et al. NDSS '16; Luckie et al.
// IMC '19 learn router-name regexes): if an IPv4 and an IPv6 address resolve
// to the same PTR hostname, they are inferred to belong to one machine.
//
// The technique's weaknesses are structural and reproduced here: PTR
// coverage is partial (especially for IPv6), many names are generic
// address-derived strings with no pairing value, and shared service names
// (www., mail.) create false pairs. The identifier-based approach of the
// paper sidesteps all three.
package ptrdns

import (
	"net/netip"
	"sort"
	"strings"

	"aliaslimit/internal/alias"
)

// Registry is a PTR zone: address → hostname. Worlds generate one; a real
// deployment would bulk-resolve in-addr.arpa / ip6.arpa.
type Registry map[netip.Addr]string

// Lookup returns the PTR name for addr, if any.
func (r Registry) Lookup(addr netip.Addr) (string, bool) {
	name, ok := r[addr]
	return name, ok
}

// IsGeneric reports whether a hostname is an address-derived template name
// ("1-2-3-4.dynamic.example.net", "host-...") that carries no device
// identity. Real pipelines filter these with learned regexes; this
// implementation uses the conventional markers.
func IsGeneric(name string) bool {
	lower := strings.ToLower(name)
	for _, marker := range []string{"dynamic", "dhcp", "pool", "dyn.", "host-", "unassigned", "rev."} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

// InferDualStack groups addresses by PTR hostname and returns the sets that
// span both families. Generic names are skipped. The returned sets are
// sorted canonically.
func InferDualStack(reg Registry) []alias.Set {
	byName := make(map[string][]netip.Addr)
	for addr, name := range reg {
		if name == "" || IsGeneric(name) {
			continue
		}
		byName[name] = append(byName[name], addr)
	}
	var out []alias.Set
	for _, addrs := range byName {
		s := alias.NewSet(addrs...)
		if s.IsDualStack() {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addrs[0].Less(out[j].Addrs[0]) })
	return out
}

// InferAliases groups same-family addresses sharing one hostname — the
// PTR-based alias inference (much weaker than identifiers: only distinct
// interfaces deliberately given one name merge).
func InferAliases(reg Registry, v4 bool) []alias.Set {
	byName := make(map[string][]netip.Addr)
	for addr, name := range reg {
		if name == "" || IsGeneric(name) || addr.Is4() != v4 {
			continue
		}
		byName[name] = append(byName[name], addr)
	}
	var out []alias.Set
	for _, addrs := range byName {
		s := alias.NewSet(addrs...)
		if s.Size() >= 2 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addrs[0].Less(out[j].Addrs[0]) })
	return out
}

// Compare evaluates a PTR-derived dual-stack inference against a reference
// partition (e.g. the identifier-based sets): how many PTR pairs are
// confirmed by the reference, how many contradict it, and how many the
// reference does not cover.
type Compare struct {
	// Confirmed PTR sets are subsets of one reference set.
	Confirmed int
	// Contradicted PTR sets span two or more reference sets.
	Contradicted int
	// Uncovered PTR sets touch addresses outside the reference entirely.
	Uncovered int
}

// CompareAgainst computes the comparison.
func CompareAgainst(ptrSets, reference []alias.Set) Compare {
	owner := make(map[netip.Addr]int)
	for i, s := range reference {
		for _, a := range s.Addrs {
			owner[a] = i + 1 // 0 means unknown
		}
	}
	var c Compare
	for _, s := range ptrSets {
		first := 0
		consistent := true
		covered := true
		for _, a := range s.Addrs {
			o := owner[a]
			if o == 0 {
				covered = false
				continue
			}
			if first == 0 {
				first = o
			} else if o != first {
				consistent = false
			}
		}
		switch {
		case first == 0 || !covered && first == 0:
			c.Uncovered++
		case !consistent:
			c.Contradicted++
		case !covered:
			c.Uncovered++
		default:
			c.Confirmed++
		}
	}
	return c
}
