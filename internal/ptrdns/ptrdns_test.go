package ptrdns

import (
	"net/netip"
	"testing"

	"aliaslimit/internal/alias"
)

func reg(pairs ...string) Registry {
	r := make(Registry)
	for i := 0; i+1 < len(pairs); i += 2 {
		r[netip.MustParseAddr(pairs[i])] = pairs[i+1]
	}
	return r
}

func TestIsGeneric(t *testing.T) {
	generic := []string{
		"host-1-2-3-4.dynamic.as3320.example.net",
		"1-2-3-4.pool.isp.net",
		"dhcp-12.example.org",
		"x.DYNAMIC.example.net",
	}
	for _, n := range generic {
		if !IsGeneric(n) {
			t.Errorf("IsGeneric(%q) = false", n)
		}
	}
	named := []string{"ge-0-0-1.rtr5.as3320.example.net", "vm7.as14061.example.net"}
	for _, n := range named {
		if IsGeneric(n) {
			t.Errorf("IsGeneric(%q) = true", n)
		}
	}
}

func TestInferDualStack(t *testing.T) {
	r := reg(
		"10.0.0.1", "srv1.example.net",
		"2a00::1", "srv1.example.net", // pairs with 10.0.0.1
		"10.0.0.2", "srv2.example.net", // no v6 counterpart
		"2a00::2", "host-2a00--2.dynamic.example.net", // generic: ignored
		"10.0.0.3", "srv3.example.net",
		"2a00::3", "srv3.example.net",
	)
	sets := InferDualStack(r)
	if len(sets) != 2 {
		t.Fatalf("dual-stack sets = %v", sets)
	}
	for _, s := range sets {
		if !s.IsDualStack() || s.Size() != 2 {
			t.Errorf("bad set %v", s)
		}
	}
}

func TestInferAliases(t *testing.T) {
	r := reg(
		"10.0.0.1", "lo0.rtr1.example.net",
		"10.0.0.2", "lo0.rtr1.example.net",
		"10.0.0.3", "ge-0.rtr2.example.net",
		"2a00::1", "lo0.rtr1.example.net",
	)
	v4 := InferAliases(r, true)
	if len(v4) != 1 || v4[0].Size() != 2 {
		t.Errorf("v4 sets = %v", v4)
	}
	v6 := InferAliases(r, false)
	if len(v6) != 0 {
		t.Errorf("v6 sets = %v", v6)
	}
}

func TestCompareAgainst(t *testing.T) {
	ptrSets := []alias.Set{
		alias.NewSet(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("2a00::1")), // confirmed
		alias.NewSet(netip.MustParseAddr("10.0.0.2"), netip.MustParseAddr("2a00::9")), // contradicted
		alias.NewSet(netip.MustParseAddr("10.9.9.9"), netip.MustParseAddr("2a00::8")), // uncovered
	}
	reference := []alias.Set{
		alias.NewSet(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("2a00::1")),
		alias.NewSet(netip.MustParseAddr("10.0.0.2"), netip.MustParseAddr("2a00::2")),
		alias.NewSet(netip.MustParseAddr("2a00::9")),
	}
	c := CompareAgainst(ptrSets, reference)
	if c.Confirmed != 1 || c.Contradicted != 1 || c.Uncovered != 1 {
		t.Errorf("compare = %+v", c)
	}
}
