package resolver

import (
	"sync"

	"aliaslimit/internal/alias"
)

// Batch is the one-shot analysis backend: Group folds the observations
// through a pooled merge-as-you-go grouping arena (alias.Grouper — no global
// (identifier, address) sort is ever materialised), Merge is
// alias.MergeWith's union-find over a persistent address-interning table.
// One Batch instance serves a whole analysis session, so repeated merges
// over overlapping address populations (per-family, per-source, dual-stack
// unions) reuse one hash index — the mutex serialises them, exactly as the
// sealed views' per-dataset table used to — and repeated groupings reuse the
// pooled arenas instead of rebuilding bucket structures per call.
type Batch struct {
	mu    sync.Mutex
	table *alias.AddrTable
	// groupers recycles grouping arenas across Group calls; concurrent
	// renders each take their own, so Group never serialises.
	groupers sync.Pool
}

// NewBatch returns a batch backend with a fresh interning table.
func NewBatch() *Batch {
	b := &Batch{table: alias.NewAddrTable()}
	b.groupers.New = func() any { return alias.NewGrouper() }
	return b
}

// Name implements Backend.
func (b *Batch) Name() string { return "batch" }

// Fork implements Forker: an independent table and mutex, so concurrent
// analysis views don't serialise on one instance.
func (b *Batch) Fork() Backend { return NewBatch() }

// Group implements Backend by streaming the observations through a pooled
// grouping arena — byte-identical to alias.Group, allocation-free in steady
// state apart from the returned sets.
func (b *Batch) Group(obs []alias.Observation) []alias.Set {
	g := b.groupers.Get().(*alias.Grouper)
	g.Reset()
	for _, o := range obs {
		g.Observe(o)
	}
	sets := g.Sets()
	b.groupers.Put(g)
	return sets
}

// Merge implements Backend via alias.MergeWith over the shared table.
func (b *Batch) Merge(groups ...[]alias.Set) []alias.Set {
	b.mu.Lock()
	defer b.mu.Unlock()
	return alias.MergeWith(b.table, groups...)
}
