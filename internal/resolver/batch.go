package resolver

import (
	"sync"

	"aliaslimit/internal/alias"
)

// Batch is the memoized-analysis-era implementation, now an adapter: Group
// is alias.Group's single global (identifier, address) sort, Merge is
// alias.MergeWith's union-find over a persistent address-interning table.
// One Batch instance serves a whole analysis session, so repeated merges
// over overlapping address populations (per-family, per-source, dual-stack
// unions) reuse one hash index — the mutex serialises them, exactly as the
// sealed views' per-dataset table used to.
type Batch struct {
	mu    sync.Mutex
	table *alias.AddrTable
}

// NewBatch returns a batch backend with a fresh interning table.
func NewBatch() *Batch {
	return &Batch{table: alias.NewAddrTable()}
}

// Name implements Backend.
func (b *Batch) Name() string { return "batch" }

// Fork implements Forker: an independent table and mutex, so concurrent
// analysis views don't serialise on one instance.
func (b *Batch) Fork() Backend { return NewBatch() }

// Group implements Backend via alias.Group.
func (b *Batch) Group(obs []alias.Observation) []alias.Set {
	return alias.Group(obs)
}

// Merge implements Backend via alias.MergeWith over the shared table.
func (b *Batch) Merge(groups ...[]alias.Set) []alias.Set {
	b.mu.Lock()
	defer b.mu.Unlock()
	return alias.MergeWith(b.table, groups...)
}
