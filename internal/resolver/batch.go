package resolver

import (
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// numProto is the number of identifier protocols sessions index by.
const numProto = 3

// batchBackend is the one-shot analysis strategy's factory.
type batchBackend struct{}

// NewBatch returns the batch backend: sessions buffer observations locally,
// Sets folds them through a pooled merge-as-you-go grouping arena
// (alias.Grouper — no global (identifier, address) sort is ever
// materialised), and Merged is alias.MergeWith's union-find over a
// persistent address-interning table. One session serves a whole analysis
// run, so repeated merges over overlapping address populations (per-family,
// per-source, dual-stack unions) reuse one hash index, and repeated
// groupings reuse the pooled arenas instead of rebuilding bucket structures
// per call.
func NewBatch() Backend { return batchBackend{} }

// Name implements Backend.
func (batchBackend) Name() string { return "batch" }

// Open implements Backend with a fresh interning table and arena pool.
func (batchBackend) Open(Options) (Session, error) {
	s := &batchSession{table: alias.NewAddrTable()}
	s.groupers.New = func() any { return alias.NewGrouper() }
	return s, nil
}

// batchSession is one batch resolution state.
type batchSession struct {
	// mu guards the per-protocol observation buffers.
	mu  sync.Mutex
	obs [numProto][]alias.Observation

	// tableMu serialises merges over the shared interning table, exactly as
	// the sealed views' per-dataset table used to.
	tableMu sync.Mutex
	table   *alias.AddrTable

	// groupers recycles grouping arenas across Sets calls; concurrent
	// snapshots each take their own, so Sets never serialises on grouping.
	groupers sync.Pool
}

// Observe implements Session by buffering the observation under its
// protocol; grouping is deferred to Sets.
func (s *batchSession) Observe(o alias.Observation) {
	s.mu.Lock()
	s.obs[o.ID.Proto] = append(s.obs[o.ID.Proto], o)
	s.mu.Unlock()
}

// Sets implements Session by streaming the buffered observations through a
// pooled grouping arena — byte-identical to alias.Group, allocation-free in
// steady state apart from the returned sets.
func (s *batchSession) Sets(p ident.Protocol) []alias.Set {
	s.mu.Lock()
	obs := s.obs[p]
	s.mu.Unlock()
	g := s.groupers.Get().(*alias.Grouper)
	g.Reset()
	for _, o := range obs {
		g.Observe(o)
	}
	sets := g.Sets()
	s.groupers.Put(g)
	return sets
}

// Merged implements Session via alias.MergeWith over the shared table.
func (s *batchSession) Merged(groups ...[]alias.Set) []alias.Set {
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	return alias.MergeWith(s.table, groups...)
}

// Close implements Session; a batch session holds no external resources.
func (s *batchSession) Close() error { return nil }
