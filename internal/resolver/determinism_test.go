package resolver

import (
	"fmt"
	"net/netip"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/xrand"
)

// determinismCorpus builds a deterministic observation corpus shaped like a
// real measurement round: shared identifiers (alias sets), duplicates, both
// families.
func determinismCorpus(seed uint64, n int) []alias.Observation {
	rng := xrand.NewSplitMix64(seed)
	obs := make([]alias.Observation, 0, n)
	for i := 0; i < n; i++ {
		id := ident.Identifier{
			Proto:  ident.Protocol(rng.Intn(3)),
			Digest: fmt.Sprintf("id-%04d", rng.Intn(n/5+1)),
		}
		var addr netip.Addr
		if rng.Intn(4) == 0 {
			addr = netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, 0, 0, 0, 0, 0, 0, 0, byte(rng.Intn(9)), 0, 0, byte(rng.Intn(250)), byte(rng.Intn(250))})
		} else {
			addr = netip.AddrFrom4([4]byte{203, 0, byte(113 + rng.Intn(5)), byte(rng.Intn(250))})
		}
		obs = append(obs, alias.Observation{Addr: addr, ID: id})
	}
	obs = append(obs, obs[0], obs[len(obs)/2]) // duplicates must collapse
	return obs
}

// setsEqual asserts byte-identical canonical alias sets.
func setsEqual(t *testing.T, want, got []alias.Set, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d sets, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			t.Fatalf("%s: set %d = %q, want %q", label, i, got[i].Signature(), want[i].Signature())
		}
	}
}

// TestGroupBackendsMatchSortReference is the cross-layer determinism gate
// for the merge-as-you-go rewrite: on the same corpus, the retired
// global-sort implementation (alias.GroupSorted) and every backend's Group —
// batch's pooled arena, streaming's online buckets, sharded at worker counts
// 1, 2, and 7 — must produce byte-identical alias sets, across two seeds.
// Run under -race this also exercises the sharded fold's concurrency.
func TestGroupBackendsMatchSortReference(t *testing.T) {
	for _, seed := range []uint64{5, 91} {
		obs := determinismCorpus(seed, 5000)
		want := alias.GroupSorted(obs)

		setsEqual(t, want, NewBatch().Group(obs), fmt.Sprintf("seed %d: batch", seed))
		setsEqual(t, want, Streaming{}.Group(obs), fmt.Sprintf("seed %d: streaming", seed))
		for _, workers := range []int{1, 2, 7} {
			got := Sharded{Workers: workers}.Group(obs)
			setsEqual(t, want, got, fmt.Sprintf("seed %d: sharded workers=%d", seed, workers))
		}
	}
}

// TestMergeBackendsAgreeOnGroupedCorpus closes the loop: the partitions the
// new group core emits must merge identically through every backend.
func TestMergeBackendsAgreeOnGroupedCorpus(t *testing.T) {
	obs := determinismCorpus(13, 3000)
	half := len(obs) / 2
	a, b := alias.Group(obs[:half]), alias.Group(obs[half:])
	want := NewBatch().Merge(a, b)
	setsEqual(t, want, Streaming{}.Merge(a, b), "streaming merge")
	for _, workers := range []int{1, 2, 7} {
		got := Sharded{Workers: workers}.Merge(a, b)
		setsEqual(t, want, got, fmt.Sprintf("sharded merge workers=%d", workers))
	}
}

// TestBatchGroupPoolReuse hammers one Batch instance from concurrent
// goroutines: pooled arenas must never leak state between calls (run under
// -race this is also the pool's concurrency proof).
func TestBatchGroupPoolReuse(t *testing.T) {
	b := NewBatch()
	obs := determinismCorpus(29, 2000)
	want := alias.GroupSorted(obs)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 20; i++ {
				setsEqual(t, want, b.Group(obs), "concurrent pooled group")
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
