package resolver

import (
	"fmt"
	"net/netip"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/xrand"
)

// determinismCorpus builds a deterministic observation corpus shaped like a
// real measurement round: shared identifiers (alias sets), duplicates, both
// families, all three protocols.
func determinismCorpus(seed uint64, n int) []alias.Observation {
	rng := xrand.NewSplitMix64(seed)
	obs := make([]alias.Observation, 0, n)
	for i := 0; i < n; i++ {
		id := ident.Identifier{
			Proto:  ident.Protocol(rng.Intn(3)),
			Digest: fmt.Sprintf("id-%04d", rng.Intn(n/5+1)),
		}
		var addr netip.Addr
		if rng.Intn(4) == 0 {
			addr = netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, 0, 0, 0, 0, 0, 0, 0, byte(rng.Intn(9)), 0, 0, byte(rng.Intn(250)), byte(rng.Intn(250))})
		} else {
			addr = netip.AddrFrom4([4]byte{203, 0, byte(113 + rng.Intn(5)), byte(rng.Intn(250))})
		}
		obs = append(obs, alias.Observation{Addr: addr, ID: id})
	}
	obs = append(obs, obs[0], obs[len(obs)/2]) // duplicates must collapse
	return obs
}

// protoObs filters a corpus to one protocol, preserving order.
func protoObs(obs []alias.Observation, p ident.Protocol) []alias.Observation {
	var out []alias.Observation
	for _, o := range obs {
		if o.ID.Proto == p {
			out = append(out, o)
		}
	}
	return out
}

// setsEqual asserts byte-identical canonical alias sets.
func setsEqual(t *testing.T, want, got []alias.Set, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d sets, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			t.Fatalf("%s: set %d = %q, want %q", label, i, got[i].Signature(), want[i].Signature())
		}
	}
}

// TestGroupBackendsMatchSortReference is the cross-layer determinism gate
// for the merge-as-you-go rewrite: on the same corpus, the retired
// global-sort implementation (alias.GroupSorted) and every session's Sets —
// batch's pooled arena, streaming's online buckets, sharded at worker counts
// 1, 2, and 7 — must produce byte-identical alias sets per protocol, across
// two seeds. Run under -race this also exercises the sharded fold's
// concurrency.
func TestGroupBackendsMatchSortReference(t *testing.T) {
	for _, seed := range []uint64{5, 91} {
		obs := determinismCorpus(seed, 5000)
		for _, ls := range sessionsUnderTest(t) {
			for _, o := range obs {
				ls.sess.Observe(o)
			}
			for _, p := range ident.Protocols {
				want := alias.GroupSorted(protoObs(obs, p))
				got := ls.sess.Sets(p)
				setsEqual(t, want, got, fmt.Sprintf("seed %d: %s proto %s", seed, ls.label, p))
			}
		}
	}
}

// TestMergeBackendsAgreeOnGroupedCorpus closes the loop: the partitions the
// group core emits must merge identically through every backend's session.
func TestMergeBackendsAgreeOnGroupedCorpus(t *testing.T) {
	obs := determinismCorpus(13, 3000)
	half := len(obs) / 2
	a, b := alias.Group(obs[:half]), alias.Group(obs[half:])
	want := alias.Merge(a, b)
	for _, ls := range sessionsUnderTest(t) {
		setsEqual(t, want, ls.sess.Merged(a, b), ls.label+" merge")
	}
}

// TestBatchSetsPoolReuse hammers one batch session from concurrent
// goroutines: pooled arenas must never leak state between calls (run under
// -race this is also the pool's concurrency proof).
func TestBatchSetsPoolReuse(t *testing.T) {
	s, err := NewBatch().Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	obs := determinismCorpus(29, 2000)
	for _, o := range obs {
		s.Observe(o)
	}
	want := alias.GroupSorted(protoObs(obs, ident.SSH))
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 20; i++ {
				setsEqual(t, want, s.Sets(ident.SSH), "concurrent pooled sets")
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
