// Package resolver turns alias resolution into a pluggable backend
// subsystem: the step that converts protocol identifier observations into
// alias sets — the paper's contribution — is expressed behind one two-level
// interface with interchangeable, byte-identical implementations.
//
// # Architecture
//
// A Backend is a factory for one resolution strategy; Open yields a Session,
// the stateful handle every consumer talks to. The Session contract unifies
// what used to be two APIs — the live collection Sink and the blocking
// Group/Merge pair — behind four methods:
//
//   - Observe: consume one identifier observation, online, in any order,
//     from any number of goroutines. Observations route to their protocol by
//     the identifier's Proto field.
//   - Sets: snapshot one protocol's observations into canonical alias sets —
//     one set per distinct identifier, singletons included (alias.Group
//     semantics), byte-identical regardless of arrival order.
//   - Merged: consolidate alias-set partitions into connected components —
//     any two sets sharing an address collapse (alias.Merge semantics).
//     Merged is a pure function of its arguments, independent of the
//     session's observed state.
//   - Close: release the session's resources and surface any deferred
//     failure (remote backends accumulate a sticky error; in-process ones
//     never fail).
//
// One contract means one wiring: the scan worker pools feed a Session while
// sweeps are in flight, the daemon holds a Session per tenant, the sealed
// analysis views group and merge through a Session — and a backend whose
// state lives in other processes (internal/distres) plugs into all of them
// without special cases, which the old blocking interface could not express.
//
// The in-process backends differ only in execution strategy, never output:
//
//   - batch: the memoized single-pass strategy the repository grew up with —
//     observations buffer locally, Sets folds them through a pooled
//     merge-as-you-go grouping arena, Merged is a union-find over a
//     persistent address-interning table. The right default for one-shot
//     analysis over a sealed dataset.
//   - streaming: fully online — every Observe lands in its identifier's
//     sorted bucket immediately (one Stream per protocol), so alias sets
//     exist the moment the scan ends; Merged feeds an incremental union-find
//     (MergeStream). The same machinery gives the longitudinal layer its
//     "incremental" (latest-observation-wins) merge strategy.
//   - sharded: identifier-space partitioning across worker goroutines with a
//     deterministic cross-shard merge — the in-process scale-out strategy.
//     A group never straddles shards because observations route by
//     identifier hash.
//
// Out-of-process backends register themselves by name (Register); linking
// internal/distres adds "distributed", the multi-process incarnation of
// sharded (worker processes instead of goroutines, the same hash route and
// merge shape over a binary wire protocol).
//
// Every session finishes by canonicalising through alias.SortSets, so for
// identical inputs all backends produce byte-identical alias sets at any
// worker count — the property the scenario matrix asserts on every preset
// and the per-backend benchmarks price.
package resolver

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// Backend is a factory for one alias-resolution strategy. Implementations
// must be safe for concurrent use; the sessions they open are independent.
type Backend interface {
	// Name is the stable identifier used by CLI flags, reports, and
	// benchmarks ("batch", "streaming", "sharded", "distributed").
	Name() string
	// Open starts one resolution session. In-process backends never fail;
	// remote backends may (worker spawn, connection refused).
	Open(opts Options) (Session, error)
}

// Options tune one session at Open time. The zero value is always valid and
// selects the backend's defaults.
type Options struct {
	// Workers overrides the backend's fan-out for this session — shard
	// goroutines for sharded, worker processes for distributed; 0 keeps the
	// count the factory was constructed with. Ignored by backends that do
	// not fan out.
	Workers int
}

// Session is one live resolution state: observations in, canonical alias
// sets out. Implementations must be safe for concurrent use by multiple
// goroutines — Observe may race with Observe, and Sets/Merged may interleave
// with Observe, snapshotting the observations applied so far — and must
// produce byte-identical output for identical input regardless of arrival
// order or internal concurrency.
type Session interface {
	// Observe consumes one identifier observation; its protocol is
	// o.ID.Proto. Duplicate (identifier, address) observations collapse.
	Observe(o alias.Observation)
	// Sets snapshots one protocol's observations into canonical alias sets,
	// one per distinct identifier, singletons included — alias.Group
	// semantics. A failed remote session returns nil (see Close).
	Sets(p ident.Protocol) []alias.Set
	// Merged consolidates alias-set partitions: any two sets sharing an
	// address collapse into one — alias.Merge semantics. Independent of the
	// session's observed state. A failed remote session returns nil.
	Merged(groups ...[]alias.Set) []alias.Set
	// Close releases the session and reports the first error the session
	// absorbed (nil for the in-process backends). Idempotent.
	Close() error
}

// LiveFeeder is implemented by backends whose sessions should be fed
// observations online during collection: Observe is cheap (constant-time
// local work), so the scan worker pools stream into the session directly and
// alias sets exist the moment the sweep ends. Backends without the marker
// are fed lazily from the sealed dataset at first Sets call.
type LiveFeeder interface {
	FeedLive() bool
}

// FeedsLive reports whether b wants its sessions fed during collection.
func FeedsLive(b Backend) bool {
	f, ok := b.(LiveFeeder)
	return ok && f.FeedLive()
}

// registry holds the backends registered beyond the three built-ins.
var registry struct {
	mu        sync.Mutex
	factories map[string]func(workers int) Backend
}

// Register installs an out-of-process backend constructor under its flag
// name; workers is the fan-out bound the caller passed New. Registering a
// built-in name or registering twice panics — both are wiring bugs.
func Register(name string, factory func(workers int) Backend) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, b := range builtinNames {
		if name == b {
			panic("resolver: Register of built-in backend " + name)
		}
	}
	if _, dup := registry.factories[name]; dup {
		panic("resolver: duplicate Register of backend " + name)
	}
	if registry.factories == nil {
		registry.factories = make(map[string]func(workers int) Backend)
	}
	registry.factories[name] = factory
}

// builtinNames is the canonical (report) order of the in-process backends.
var builtinNames = []string{"batch", "streaming", "sharded"}

// Names lists the available backends: the built-ins in canonical order, then
// any registered backends sorted by name. The list depends on what the
// binary links — "distributed" appears wherever internal/distres does.
func Names() []string {
	out := append([]string(nil), builtinNames...)
	registry.mu.Lock()
	defer registry.mu.Unlock()
	extra := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// New resolves a backend factory by name. The empty name selects the batch
// default; workers bounds the fan-out of backends that shard (goroutines for
// sharded, processes for distributed; 0 picks each backend's default) and is
// ignored by the others.
func New(name string, workers int) (Backend, error) {
	switch name {
	case "", "batch":
		return NewBatch(), nil
	case "streaming":
		return NewStreaming(), nil
	case "sharded":
		return NewSharded(workers), nil
	}
	registry.mu.Lock()
	factory, ok := registry.factories[name]
	registry.mu.Unlock()
	if ok {
		return factory(workers), nil
	}
	return nil, fmt.Errorf("resolver: unknown backend %q (have: %s)",
		name, strings.Join(Names(), ", "))
}
