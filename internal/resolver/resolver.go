// Package resolver turns alias resolution into a pluggable backend
// subsystem: the step that converts protocol identifier observations into
// alias sets — the paper's contribution — is expressed behind one interface
// with three interchangeable, byte-identical implementations.
//
// # Architecture
//
// A Backend supplies the two primitives the analysis layer consumes:
//
//   - Group: cluster (address, identifier) observations into one alias set
//     per distinct identifier (alias.Group semantics, singletons included).
//   - Merge: consolidate alias-set partitions from several protocols or data
//     sources into connected components — any two sets sharing an address
//     collapse (alias.Merge semantics).
//
// The three backends differ only in execution strategy, never in output:
//
//   - batch: the memoized single-pass implementation the repository grew up
//     with — one global (identifier, address) sort per Group, union-find
//     over a persistent interning table per Merge. The right default for
//     one-shot analysis over a sealed dataset.
//   - streaming: incremental structures that consume observations one at a
//     time, in any order, maintaining membership online — a Stream per
//     grouping and an incremental union-find (MergeStream) per merge. The
//     collection pipeline can feed a Sink while zmaplite/zgrab sweeps are
//     still in flight, so alias sets exist the moment the scan ends, and
//     the same machinery gives the longitudinal layer its "incremental"
//     (latest-observation-wins) merge strategy.
//   - sharded: identifier-space partitioning across worker goroutines with a
//     deterministic cross-shard merge — the scale-out strategy. Group shards
//     observations by identifier hash (a group never straddles shards);
//     Merge runs per-shard union-finds whose partial partitions collapse in
//     one final cross-shard pass.
//
// Every backend finishes by canonicalising through alias.SortSets, so for
// identical inputs all three produce byte-identical alias sets at any worker
// count — the property the scenario matrix asserts on every preset and the
// per-backend benchmarks price.
package resolver

import (
	"fmt"
	"strings"

	"aliaslimit/internal/alias"
)

// Backend is one alias-resolution strategy. Implementations must be safe for
// concurrent use by multiple goroutines (the memoized analysis views call
// them from concurrent renders) and must produce byte-identical output for
// identical input regardless of internal concurrency.
type Backend interface {
	// Name is the stable identifier used by CLI flags, reports, and
	// benchmarks ("batch", "streaming", "sharded").
	Name() string
	// Group clusters observations into one alias set per distinct
	// identifier, singletons included — alias.Group semantics.
	Group(obs []alias.Observation) []alias.Set
	// Merge consolidates alias-set partitions: any two sets sharing an
	// address collapse into one — alias.Merge semantics.
	Merge(groups ...[]alias.Set) []alias.Set
}

// LiveFeeder is implemented by backends that can consume observations online
// while collection is still in flight: the collector installs a fresh Sink
// per measurement round and feeds it from the scan worker pools.
type LiveFeeder interface {
	NewSink() *Sink
}

// Forker is implemented by stateful backends whose instances serialise
// internally (Batch's interning table and mutex). Fork returns an
// independent instance so each sealed dataset merges under its own lock
// instead of contending on one — output is unaffected, only parallelism.
type Forker interface {
	Fork() Backend
}

// Fork returns an independent instance of b when it is stateful, or b itself
// when it is safe to share.
func Fork(b Backend) Backend {
	if f, ok := b.(Forker); ok {
		return f.Fork()
	}
	return b
}

// Names lists the registered backends in canonical (report) order.
func Names() []string { return []string{"batch", "streaming", "sharded"} }

// New resolves a backend by name. The empty name selects the batch default;
// workers bounds the sharded backend's concurrency (0 picks GOMAXPROCS) and
// is ignored by the others.
func New(name string, workers int) (Backend, error) {
	switch name {
	case "", "batch":
		return NewBatch(), nil
	case "streaming":
		return Streaming{}, nil
	case "sharded":
		return Sharded{Workers: workers}, nil
	default:
		return nil, fmt.Errorf("resolver: unknown backend %q (have: %s)",
			name, strings.Join(Names(), ", "))
	}
}
