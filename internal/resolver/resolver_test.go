package resolver

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/xrand"
)

// corpus builds a deterministic synthetic observation stream: identifiers
// shared across several addresses, addresses claimed by several identifiers,
// duplicates, and a v4/v6 mix — every structural case the pipeline produces.
func corpus(seed uint64, n int) []alias.Observation {
	obs := make([]alias.Observation, 0, n)
	sk := fmt.Sprint(seed)
	for i := 0; i < n; i++ {
		ik := fmt.Sprint(i)
		id := ident.Identifier{
			Proto:  ident.SSH,
			Digest: fmt.Sprintf("d%04d", xrand.Hash64(sk, "id", ik)%uint64(n/4+1)),
		}
		var addr netip.Addr
		ai := xrand.Hash64(sk, "addr", ik) % uint64(n/3+1)
		if ai%5 == 0 {
			addr = netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, 15: byte(ai)}).
				WithZone("")
		} else {
			addr = netip.AddrFrom4([4]byte{10, byte(ai >> 16), byte(ai >> 8), byte(ai)})
		}
		obs = append(obs, alias.Observation{Addr: addr, ID: id})
	}
	return obs
}

// keysOf renders a partition as its canonical key sequence.
func keysOf(sets []alias.Set) []string {
	out := make([]string, len(sets))
	for i, s := range sets {
		out[i] = string(s.Key())
	}
	return out
}

// requireSameSets fails unless the two partitions are byte-identical.
func requireSameSets(t *testing.T, label string, want, got []alias.Set) {
	t.Helper()
	wk, gk := keysOf(want), keysOf(got)
	if len(wk) != len(gk) {
		t.Fatalf("%s: %d sets, want %d", label, len(gk), len(wk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("%s: set %d differs:\nwant %q\ngot  %q", label, i, want[i].Signature(), got[i].Signature())
		}
	}
}

// backendsUnderTest returns one instance per registered backend, including
// several sharded worker counts.
func backendsUnderTest() []Backend {
	return []Backend{
		NewBatch(),
		Streaming{},
		Sharded{Workers: 1},
		Sharded{Workers: 2},
		Sharded{Workers: 7},
	}
}

// TestGroupEquivalence: every backend groups the same observations into
// byte-identical alias sets, at two seeds.
func TestGroupEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 9} {
		obs := corpus(seed, 3000)
		want := alias.Group(obs)
		for _, b := range backendsUnderTest() {
			got := b.Group(obs)
			requireSameSets(t, fmt.Sprintf("seed %d backend %s", seed, b.Name()), want, got)
		}
	}
}

// TestMergeEquivalence: every backend merges the same partitions into
// byte-identical components, at two seeds.
func TestMergeEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 9} {
		a := alias.Group(corpus(seed, 2000))
		b2 := alias.Group(corpus(seed+100, 2000))
		c := alias.Group(corpus(seed+200, 500))
		want := alias.Merge(a, b2, c)
		for _, b := range backendsUnderTest() {
			got := b.Merge(a, b2, c)
			requireSameSets(t, fmt.Sprintf("seed %d backend %s", seed, b.Name()), want, got)
		}
	}
}

// TestStreamConcurrentFeed: observations fed from many goroutines in racing
// order still finalise into the batch partition — the live-collection
// contract.
func TestStreamConcurrentFeed(t *testing.T) {
	obs := corpus(3, 4000)
	want := alias.Group(obs)
	st := NewStream()
	var wg sync.WaitGroup
	const feeders = 8
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := f; i < len(obs); i += feeders {
				st.Observe(obs[i])
			}
		}(f)
	}
	wg.Wait()
	requireSameSets(t, "concurrent stream", want, st.Sets())
	if st.Len() != len(want) {
		t.Fatalf("stream tracked %d identifiers, want %d", st.Len(), len(want))
	}
}

// TestMergeStreamOrderInsensitive: absorbing partitions in any order or
// granularity yields identical components.
func TestMergeStreamOrderInsensitive(t *testing.T) {
	a := alias.Group(corpus(5, 1500))
	b := alias.Group(corpus(6, 1500))
	want := alias.Merge(a, b)

	fwd := NewMergeStream()
	fwd.Absorb(a)
	fwd.Absorb(b)
	requireSameSets(t, "forward", want, fwd.Sets())

	rev := NewMergeStream()
	rev.Absorb(b)
	rev.Absorb(a)
	requireSameSets(t, "reverse", want, rev.Sets())

	oneByOne := NewMergeStream()
	for _, s := range a {
		oneByOne.Absorb([]alias.Set{s})
	}
	oneByOne.Absorb(b)
	requireSameSets(t, "one-by-one", want, oneByOne.Sets())
}

// TestLatestStreamReplaces: a fresh observation of an address with a new
// identifier moves the address — the stale claim is gone from the output.
func TestLatestStreamReplaces(t *testing.T) {
	a1 := netip.MustParseAddr("10.0.0.1")
	a2 := netip.MustParseAddr("10.0.0.2")
	idA := ident.Identifier{Proto: ident.SSH, Digest: "aaa"}
	idB := ident.Identifier{Proto: ident.SSH, Digest: "bbb"}
	l := NewLatestStream()
	l.Observe(alias.Observation{Addr: a1, ID: idA})
	l.Observe(alias.Observation{Addr: a2, ID: idA})
	l.Observe(alias.Observation{Addr: a1, ID: idB}) // a1 renumbered
	sets := l.Sets()
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2: %v", len(sets), sets)
	}
	for _, s := range sets {
		if s.Contains(a1) && s.Contains(a2) {
			t.Fatalf("stale claim survived: %s", s.Signature())
		}
	}
}

// TestStreamSnapshotDuringFeed: Sets may interleave with Observe — the
// session-safe contract the resolution daemon relies on. Every snapshot is a
// well-formed partition, and the final snapshot matches the batch grouping.
func TestStreamSnapshotDuringFeed(t *testing.T) {
	obs := corpus(7, 4000)
	want := alias.Group(obs)
	st := NewStream()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, o := range obs {
			st.Observe(o)
		}
	}()
	// Query mid-ingest: each snapshot must be internally consistent (sorted,
	// canonical) even while observations keep landing.
	for i := 0; i < 50; i++ {
		sets := st.Sets()
		for j := 1; j < len(sets); j++ {
			if string(sets[j-1].Key()) > string(sets[j].Key()) {
				t.Fatalf("snapshot %d not in canonical order at set %d", i, j)
			}
		}
	}
	<-done
	requireSameSets(t, "final snapshot", want, st.Sets())
}

// TestSinkStreamHandle: Sink.Stream exposes the live per-protocol handle the
// daemon's sessions hold.
func TestSinkStreamHandle(t *testing.T) {
	s := NewSink()
	a := netip.MustParseAddr("10.0.0.9")
	s.Observe(ident.SSH, alias.Observation{Addr: a, ID: ident.Identifier{Proto: ident.SSH, Digest: "z"}})
	if got := s.Stream(ident.SSH).Len(); got != 1 {
		t.Fatalf("SSH stream handle tracks %d identifiers, want 1", got)
	}
	if got := s.Stream(ident.BGP).Len(); got != 0 {
		t.Fatalf("BGP stream handle tracks %d identifiers, want 0", got)
	}
}

// TestSinkRoutesPerProtocol: observations land in their protocol's stream.
func TestSinkRoutesPerProtocol(t *testing.T) {
	s := NewSink()
	a := netip.MustParseAddr("10.0.0.1")
	s.Observe(ident.SSH, alias.Observation{Addr: a, ID: ident.Identifier{Proto: ident.SSH, Digest: "x"}})
	s.Observe(ident.BGP, alias.Observation{Addr: a, ID: ident.Identifier{Proto: ident.BGP, Digest: "y"}})
	if n := len(s.Sets(ident.SSH)); n != 1 {
		t.Fatalf("SSH stream has %d sets, want 1", n)
	}
	if n := len(s.Sets(ident.SNMP)); n != 0 {
		t.Fatalf("SNMP stream has %d sets, want 0", n)
	}
}

// TestNewRegistry covers name resolution.
func TestNewRegistry(t *testing.T) {
	for _, name := range append([]string{""}, Names()...) {
		b, err := New(name, 0)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if name != "" && b.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, b.Name())
		}
	}
	if b, _ := New("", 0); b.Name() != "batch" {
		t.Fatalf("default backend is %q, want batch", b.Name())
	}
	if _, err := New("quantum", 0); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if len(Names()) != 3 {
		t.Fatalf("registry has %d backends, want 3", len(Names()))
	}
}

// BenchmarkBackendGroup prices each backend's grouping on one synthetic
// corpus.
func BenchmarkBackendGroup(b *testing.B) {
	obs := corpus(1, 20000)
	for _, be := range []Backend{NewBatch(), Streaming{}, Sharded{}} {
		b.Run(be.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				be.Group(obs)
			}
		})
	}
}

// BenchmarkBackendMerge prices each backend's cross-partition merge.
func BenchmarkBackendMerge(b *testing.B) {
	g1 := alias.Group(corpus(1, 10000))
	g2 := alias.Group(corpus(2, 10000))
	g3 := alias.Group(corpus(3, 4000))
	for _, be := range []Backend{NewBatch(), Streaming{}, Sharded{}} {
		b.Run(be.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				be.Merge(g1, g2, g3)
			}
		})
	}
}
