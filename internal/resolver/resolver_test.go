package resolver

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/xrand"
)

// corpus builds a deterministic synthetic observation stream: identifiers
// shared across several addresses, addresses claimed by several identifiers,
// duplicates, and a v4/v6 mix — every structural case the pipeline produces.
func corpus(seed uint64, n int) []alias.Observation {
	obs := make([]alias.Observation, 0, n)
	sk := fmt.Sprint(seed)
	for i := 0; i < n; i++ {
		ik := fmt.Sprint(i)
		id := ident.Identifier{
			Proto:  ident.SSH,
			Digest: fmt.Sprintf("d%04d", xrand.Hash64(sk, "id", ik)%uint64(n/4+1)),
		}
		var addr netip.Addr
		ai := xrand.Hash64(sk, "addr", ik) % uint64(n/3+1)
		if ai%5 == 0 {
			addr = netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, 15: byte(ai)}).
				WithZone("")
		} else {
			addr = netip.AddrFrom4([4]byte{10, byte(ai >> 16), byte(ai >> 8), byte(ai)})
		}
		obs = append(obs, alias.Observation{Addr: addr, ID: id})
	}
	return obs
}

// keysOf renders a partition as its canonical key sequence.
func keysOf(sets []alias.Set) []string {
	out := make([]string, len(sets))
	for i, s := range sets {
		out[i] = string(s.Key())
	}
	return out
}

// requireSameSets fails unless the two partitions are byte-identical.
func requireSameSets(t *testing.T, label string, want, got []alias.Set) {
	t.Helper()
	wk, gk := keysOf(want), keysOf(got)
	if len(wk) != len(gk) {
		t.Fatalf("%s: %d sets, want %d", label, len(gk), len(wk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("%s: set %d differs:\nwant %q\ngot  %q", label, i, want[i].Signature(), got[i].Signature())
		}
	}
}

// labelledSession pairs one open session with a test label.
type labelledSession struct {
	label string
	sess  Session
}

// sessionsUnderTest opens one session per in-process backend, including
// several sharded worker counts.
func sessionsUnderTest(t *testing.T) []labelledSession {
	t.Helper()
	var out []labelledSession
	add := func(label string, b Backend, opts Options) {
		s, err := b.Open(opts)
		if err != nil {
			t.Fatalf("%s: Open: %v", label, err)
		}
		t.Cleanup(func() {
			if err := s.Close(); err != nil {
				t.Errorf("%s: Close: %v", label, err)
			}
		})
		out = append(out, labelledSession{label, s})
	}
	add("batch", NewBatch(), Options{})
	add("streaming", NewStreaming(), Options{})
	for _, w := range []int{1, 2, 7} {
		add(fmt.Sprintf("sharded-%d", w), NewSharded(w), Options{})
	}
	return out
}

// TestSessionGroupEquivalence: every backend's session groups the same
// observations into byte-identical alias sets, at two seeds.
func TestSessionGroupEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 9} {
		obs := corpus(seed, 3000)
		want := alias.Group(obs)
		for _, ls := range sessionsUnderTest(t) {
			for _, o := range obs {
				ls.sess.Observe(o)
			}
			got := ls.sess.Sets(ident.SSH)
			requireSameSets(t, fmt.Sprintf("seed %d backend %s", seed, ls.label), want, got)
		}
	}
}

// TestSessionMergeEquivalence: every backend's session merges the same
// partitions into byte-identical components, at two seeds.
func TestSessionMergeEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 9} {
		a := alias.Group(corpus(seed, 2000))
		b2 := alias.Group(corpus(seed+100, 2000))
		c := alias.Group(corpus(seed+200, 500))
		want := alias.Merge(a, b2, c)
		for _, ls := range sessionsUnderTest(t) {
			got := ls.sess.Merged(a, b2, c)
			requireSameSets(t, fmt.Sprintf("seed %d backend %s", seed, ls.label), want, got)
		}
	}
}

// TestSessionConcurrentFeed: observations fed from many goroutines in racing
// order still finalise into the batch partition — the live-collection
// contract every session implementation must honor.
func TestSessionConcurrentFeed(t *testing.T) {
	obs := corpus(3, 4000)
	want := alias.Group(obs)
	for _, ls := range sessionsUnderTest(t) {
		var wg sync.WaitGroup
		const feeders = 8
		for f := 0; f < feeders; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				for i := f; i < len(obs); i += feeders {
					ls.sess.Observe(obs[i])
				}
			}(f)
		}
		wg.Wait()
		requireSameSets(t, ls.label+" concurrent feed", want, ls.sess.Sets(ident.SSH))
	}
}

// TestSessionRoutesPerProtocol: observations land in their identifier's
// protocol, and Sets of an unfed protocol is empty.
func TestSessionRoutesPerProtocol(t *testing.T) {
	a := netip.MustParseAddr("10.0.0.1")
	for _, ls := range sessionsUnderTest(t) {
		ls.sess.Observe(alias.Observation{Addr: a, ID: ident.Identifier{Proto: ident.SSH, Digest: "x"}})
		ls.sess.Observe(alias.Observation{Addr: a, ID: ident.Identifier{Proto: ident.BGP, Digest: "y"}})
		if n := len(ls.sess.Sets(ident.SSH)); n != 1 {
			t.Fatalf("%s: SSH has %d sets, want 1", ls.label, n)
		}
		if n := len(ls.sess.Sets(ident.SNMP)); n != 0 {
			t.Fatalf("%s: SNMP has %d sets, want 0", ls.label, n)
		}
	}
}

// TestStreamConcurrentFeed: observations fed from many goroutines in racing
// order still finalise into the batch partition — the live-collection
// contract of the low-level stream handle.
func TestStreamConcurrentFeed(t *testing.T) {
	obs := corpus(3, 4000)
	want := alias.Group(obs)
	st := NewStream()
	var wg sync.WaitGroup
	const feeders = 8
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := f; i < len(obs); i += feeders {
				st.Observe(obs[i])
			}
		}(f)
	}
	wg.Wait()
	requireSameSets(t, "concurrent stream", want, st.Sets())
	if st.Len() != len(want) {
		t.Fatalf("stream tracked %d identifiers, want %d", st.Len(), len(want))
	}
}

// TestMergeStreamOrderInsensitive: absorbing partitions in any order or
// granularity yields identical components.
func TestMergeStreamOrderInsensitive(t *testing.T) {
	a := alias.Group(corpus(5, 1500))
	b := alias.Group(corpus(6, 1500))
	want := alias.Merge(a, b)

	fwd := NewMergeStream()
	fwd.Absorb(a)
	fwd.Absorb(b)
	requireSameSets(t, "forward", want, fwd.Sets())

	rev := NewMergeStream()
	rev.Absorb(b)
	rev.Absorb(a)
	requireSameSets(t, "reverse", want, rev.Sets())

	oneByOne := NewMergeStream()
	for _, s := range a {
		oneByOne.Absorb([]alias.Set{s})
	}
	oneByOne.Absorb(b)
	requireSameSets(t, "one-by-one", want, oneByOne.Sets())
}

// TestLatestStreamReplaces: a fresh observation of an address with a new
// identifier moves the address — the stale claim is gone from the output.
func TestLatestStreamReplaces(t *testing.T) {
	a1 := netip.MustParseAddr("10.0.0.1")
	a2 := netip.MustParseAddr("10.0.0.2")
	idA := ident.Identifier{Proto: ident.SSH, Digest: "aaa"}
	idB := ident.Identifier{Proto: ident.SSH, Digest: "bbb"}
	l := NewLatestStream()
	l.Observe(alias.Observation{Addr: a1, ID: idA})
	l.Observe(alias.Observation{Addr: a2, ID: idA})
	l.Observe(alias.Observation{Addr: a1, ID: idB}) // a1 renumbered
	sets := l.Sets()
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2: %v", len(sets), sets)
	}
	for _, s := range sets {
		if s.Contains(a1) && s.Contains(a2) {
			t.Fatalf("stale claim survived: %s", s.Signature())
		}
	}
}

// TestStreamSnapshotDuringFeed: Sets may interleave with Observe — the
// session-safe contract the resolution daemon relies on. Every snapshot is a
// well-formed partition, and the final snapshot matches the batch grouping.
func TestStreamSnapshotDuringFeed(t *testing.T) {
	obs := corpus(7, 4000)
	want := alias.Group(obs)
	st := NewStream()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, o := range obs {
			st.Observe(o)
		}
	}()
	// Query mid-ingest: each snapshot must be internally consistent (sorted,
	// canonical) even while observations keep landing.
	for i := 0; i < 50; i++ {
		sets := st.Sets()
		for j := 1; j < len(sets); j++ {
			if string(sets[j-1].Key()) > string(sets[j].Key()) {
				t.Fatalf("snapshot %d not in canonical order at set %d", i, j)
			}
		}
	}
	<-done
	requireSameSets(t, "final snapshot", want, st.Sets())
}

// TestLiveFeeder: the streaming backend volunteers for live collection
// feeds, the buffering backends do not.
func TestLiveFeeder(t *testing.T) {
	if !FeedsLive(NewStreaming()) {
		t.Fatal("streaming backend must feed live")
	}
	if FeedsLive(NewBatch()) || FeedsLive(NewSharded(2)) {
		t.Fatal("buffering backends must not feed live")
	}
}

// TestNewRegistry covers name resolution of the built-in backends.
func TestNewRegistry(t *testing.T) {
	for _, name := range append([]string{""}, Names()...) {
		b, err := New(name, 0)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if name != "" && b.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, b.Name())
		}
	}
	if b, _ := New("", 0); b.Name() != "batch" {
		t.Fatalf("default backend is %q, want batch", b.Name())
	}
	if _, err := New("quantum", 0); err == nil {
		t.Fatal("unknown backend accepted")
	}
	names := Names()
	for i, want := range []string{"batch", "streaming", "sharded"} {
		if i >= len(names) || names[i] != want {
			t.Fatalf("Names() = %v, want the built-ins %v as prefix", names, builtinNames)
		}
	}
}

// fakeBackend is a registrable stand-in for an out-of-process backend.
type fakeBackend struct{ workers int }

func (fakeBackend) Name() string { return "testfake" }
func (f fakeBackend) Open(Options) (Session, error) {
	s, _ := batchBackend{}.Open(Options{})
	return s, nil
}

// TestRegisterExtendsRegistry: a registered backend resolves by name, lists
// after the built-ins, and receives the worker bound New was given.
func TestRegisterExtendsRegistry(t *testing.T) {
	var gotWorkers int
	Register("testfake", func(workers int) Backend {
		gotWorkers = workers
		return fakeBackend{workers: workers}
	})
	b, err := New("testfake", 5)
	if err != nil {
		t.Fatalf("New(testfake): %v", err)
	}
	if b.Name() != "testfake" || gotWorkers != 5 {
		t.Fatalf("factory got name %q workers %d, want testfake 5", b.Name(), gotWorkers)
	}
	names := Names()
	if names[len(names)-1] != "testfake" {
		t.Fatalf("Names() = %v, want registered backend after built-ins", names)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("testfake", func(int) Backend { return fakeBackend{} })
}

// BenchmarkBackendGroup prices each backend's session grouping on one
// synthetic corpus.
func BenchmarkBackendGroup(b *testing.B) {
	obs := corpus(1, 20000)
	for _, be := range []Backend{NewBatch(), NewStreaming(), NewSharded(0)} {
		b.Run(be.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, _ := be.Open(Options{})
				for _, o := range obs {
					s.Observe(o)
				}
				s.Sets(ident.SSH)
				s.Close()
			}
		})
	}
}

// BenchmarkBackendMerge prices each backend's cross-partition merge.
func BenchmarkBackendMerge(b *testing.B) {
	g1 := alias.Group(corpus(1, 10000))
	g2 := alias.Group(corpus(2, 10000))
	g3 := alias.Group(corpus(3, 4000))
	for _, be := range []Backend{NewBatch(), NewStreaming(), NewSharded(0)} {
		s, _ := be.Open(Options{})
		b.Run(be.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Merged(g1, g2, g3)
			}
		})
	}
}
