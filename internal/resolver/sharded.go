package resolver

import (
	"runtime"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/xrand"
)

// Sharded partitions the resolution work across worker goroutines with a
// deterministic cross-shard merge — the scale-out strategy for worlds too
// large for one core.
//
// Group shards the identifier space: observations hash by identifier digest,
// so a group never straddles shards and each shard's alias.Group runs
// independently. Merge shards the input partitions: each worker collapses
// its share with a private union-find (its own interning table), and one
// final pass merges the partial partitions — union-find closure is
// associative, so the cross-shard components equal the single-pass ones.
// Both paths canonicalise through alias.SortSets, making the output
// byte-identical to the batch backend at any worker count.
type Sharded struct {
	// Workers bounds the shard count; 0 picks GOMAXPROCS.
	Workers int
}

// Name implements Backend.
func (Sharded) Name() string { return "sharded" }

// workers resolves the shard count.
func (s Sharded) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Group implements Backend by partitioning observations across the
// identifier space and folding every shard through its own merge-as-you-go
// grouping arena concurrently. Observations are routed by a one-pass shard
// index — the per-shard observation slices the old implementation
// materialised are gone, as is the global (id, addr) sort inside each shard:
// every worker streams the observations assigned to it straight into an
// alias.Grouper.
func (s Sharded) Group(obs []alias.Observation) []alias.Set {
	w := s.workers()
	if w <= 1 || len(obs) < 2 {
		return alias.Group(obs)
	}
	if w > 256 {
		w = 256 // route entries are one byte; 256 shards saturate any host
	}
	// Route pass: one byte per observation instead of w grown slices. A
	// group never straddles shards because the route key is the identifier.
	route := make([]uint8, len(obs))
	for i, o := range obs {
		route[i] = uint8(xrand.Hash64(o.ID.Digest) % uint64(w))
	}
	partials := make([][]alias.Set, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var g alias.Grouper
			mine := uint8(i)
			for j, o := range obs {
				if route[j] == mine {
					g.Observe(o)
				}
			}
			partials[i] = g.Sets()
		}(i)
	}
	wg.Wait()
	total := 0
	for _, p := range partials {
		total += len(p)
	}
	out := make([]alias.Set, 0, total)
	for _, p := range partials {
		out = append(out, p...)
	}
	alias.SortSets(out)
	return out
}

// Merge implements Backend by collapsing shard-local partitions in parallel
// and merging the partial results in one final cross-shard pass.
func (s Sharded) Merge(groups ...[]alias.Set) []alias.Set {
	w := s.workers()
	// Flatten so the shards balance even when one protocol dominates.
	var sets []alias.Set
	for _, g := range groups {
		sets = append(sets, g...)
	}
	if w <= 1 || len(sets) < 2*w {
		return alias.Merge(sets)
	}
	shards := make([][]alias.Set, w)
	for i, set := range sets {
		shards[i%w] = append(shards[i%w], set)
	}
	partials := make([][]alias.Set, w)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partials[i] = alias.Merge(shards[i])
		}(i)
	}
	wg.Wait()
	return alias.Merge(partials...)
}
