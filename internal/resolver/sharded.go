package resolver

import (
	"runtime"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/xrand"
)

// shardedBackend partitions the resolution work across worker goroutines
// with a deterministic cross-shard merge — the in-process scale-out strategy
// for worlds too large for one core.
type shardedBackend struct {
	// workers bounds the shard count; 0 picks GOMAXPROCS.
	workers int
}

// NewSharded returns the sharded backend. Sets shards the identifier space:
// observations hash by identifier digest, so a group never straddles shards
// and each shard's grouping arena runs independently. Merged shards the
// input partitions: each worker collapses its share with a private
// union-find (its own interning table), and one final pass merges the
// partial partitions — union-find closure is associative, so the
// cross-shard components equal the single-pass ones. Both paths canonicalise
// through alias.SortSets, making the output byte-identical to the batch
// backend at any worker count. workers bounds the shard count; 0 picks
// GOMAXPROCS.
//
// The distributed backend (internal/distres) is this strategy promoted to
// worker processes: the same hash route, the same round-robin merge split,
// the same final cross-shard pass — which is why the two are byte-identical
// by construction.
func NewSharded(workers int) Backend { return shardedBackend{workers: workers} }

// Name implements Backend.
func (shardedBackend) Name() string { return "sharded" }

// Open implements Backend.
func (b shardedBackend) Open(opts Options) (Session, error) {
	w := b.workers
	if opts.Workers > 0 {
		w = opts.Workers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > 256 {
		w = 256 // route entries are one byte; 256 shards saturate any host
	}
	return &shardedSession{workers: w}, nil
}

// shardedSession is one sharded resolution state: observations buffer
// locally (like batch), and the fan-out happens inside Sets and Merged.
type shardedSession struct {
	workers int

	mu  sync.Mutex
	obs [numProto][]alias.Observation
}

// Observe implements Session by buffering the observation under its
// protocol; sharding is deferred to Sets.
func (s *shardedSession) Observe(o alias.Observation) {
	s.mu.Lock()
	s.obs[o.ID.Proto] = append(s.obs[o.ID.Proto], o)
	s.mu.Unlock()
}

// Sets implements Session by partitioning the protocol's observations
// across the identifier space and folding every shard through its own
// merge-as-you-go grouping arena concurrently.
func (s *shardedSession) Sets(p ident.Protocol) []alias.Set {
	s.mu.Lock()
	obs := s.obs[p]
	s.mu.Unlock()
	return shardGroup(obs, s.workers)
}

// Merged implements Session by collapsing shard-local partitions in parallel
// and merging the partial results in one final cross-shard pass.
func (s *shardedSession) Merged(groups ...[]alias.Set) []alias.Set {
	return shardMerge(s.workers, groups...)
}

// Close implements Session; a sharded session holds no external resources.
func (s *shardedSession) Close() error { return nil }

// ShardRoute returns the shard index in [0, workers) an observation's
// identifier routes to. It is the one shard map every scaled-out backend
// shares — sharded's goroutines and distres's worker processes route with
// the same function, which is what makes their outputs byte-identical to
// batch: a group never straddles shards, so concatenating per-shard
// canonical sets and sorting equals the single-arena grouping.
func ShardRoute(id ident.Identifier, workers int) int {
	return int(xrand.Hash64(id.Digest) % uint64(workers))
}

// shardGroup is the sharded grouping core. Observations are routed by a
// one-pass shard index — one byte per observation instead of per-shard grown
// slices, and no global (id, addr) sort inside any shard: every worker
// streams the observations assigned to it straight into an alias.Grouper.
func shardGroup(obs []alias.Observation, w int) []alias.Set {
	if w <= 1 || len(obs) < 2 {
		return alias.Group(obs)
	}
	// Route pass: a group never straddles shards because the route key is
	// the identifier.
	route := make([]uint8, len(obs))
	for i, o := range obs {
		route[i] = uint8(ShardRoute(o.ID, w))
	}
	partials := make([][]alias.Set, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var g alias.Grouper
			mine := uint8(i)
			for j, o := range obs {
				if route[j] == mine {
					g.Observe(o)
				}
			}
			partials[i] = g.Sets()
		}(i)
	}
	wg.Wait()
	total := 0
	for _, p := range partials {
		total += len(p)
	}
	out := make([]alias.Set, 0, total)
	for _, p := range partials {
		out = append(out, p...)
	}
	alias.SortSets(out)
	return out
}

// shardMerge is the sharded merge core: flatten so the shards balance even
// when one protocol dominates, split round-robin, collapse each shard with a
// private union-find, then merge the partial partitions in one final pass.
func shardMerge(w int, groups ...[]alias.Set) []alias.Set {
	var sets []alias.Set
	for _, g := range groups {
		sets = append(sets, g...)
	}
	if w <= 1 || len(sets) < 2*w {
		return alias.Merge(sets)
	}
	shards := make([][]alias.Set, w)
	for i, set := range sets {
		shards[i%w] = append(shards[i%w], set)
	}
	partials := make([][]alias.Set, w)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partials[i] = alias.Merge(shards[i])
		}(i)
	}
	wg.Wait()
	return alias.Merge(partials...)
}
