package resolver

import (
	"runtime"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/xrand"
)

// Sharded partitions the resolution work across worker goroutines with a
// deterministic cross-shard merge — the scale-out strategy for worlds too
// large for one core.
//
// Group shards the identifier space: observations hash by identifier digest,
// so a group never straddles shards and each shard's alias.Group runs
// independently. Merge shards the input partitions: each worker collapses
// its share with a private union-find (its own interning table), and one
// final pass merges the partial partitions — union-find closure is
// associative, so the cross-shard components equal the single-pass ones.
// Both paths canonicalise through alias.SortSets, making the output
// byte-identical to the batch backend at any worker count.
type Sharded struct {
	// Workers bounds the shard count; 0 picks GOMAXPROCS.
	Workers int
}

// Name implements Backend.
func (Sharded) Name() string { return "sharded" }

// workers resolves the shard count.
func (s Sharded) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Group implements Backend by partitioning observations across the
// identifier space and grouping every shard concurrently.
func (s Sharded) Group(obs []alias.Observation) []alias.Set {
	w := s.workers()
	if w <= 1 || len(obs) < 2 {
		return alias.Group(obs)
	}
	shards := make([][]alias.Observation, w)
	for _, o := range obs {
		i := int(xrand.Hash64(o.ID.Digest) % uint64(w))
		shards[i] = append(shards[i], o)
	}
	partials := make([][]alias.Set, w)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partials[i] = alias.Group(shards[i])
		}(i)
	}
	wg.Wait()
	var out []alias.Set
	for _, p := range partials {
		out = append(out, p...)
	}
	alias.SortSets(out)
	return out
}

// Merge implements Backend by collapsing shard-local partitions in parallel
// and merging the partial results in one final cross-shard pass.
func (s Sharded) Merge(groups ...[]alias.Set) []alias.Set {
	w := s.workers()
	// Flatten so the shards balance even when one protocol dominates.
	var sets []alias.Set
	for _, g := range groups {
		sets = append(sets, g...)
	}
	if w <= 1 || len(sets) < 2*w {
		return alias.Merge(sets)
	}
	shards := make([][]alias.Set, w)
	for i, set := range sets {
		shards[i%w] = append(shards[i%w], set)
	}
	partials := make([][]alias.Set, w)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partials[i] = alias.Merge(shards[i])
		}(i)
	}
	wg.Wait()
	return alias.Merge(partials...)
}
