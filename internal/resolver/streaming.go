package resolver

import (
	"net/netip"
	"slices"
	"sync"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
)

// streamingBackend is the fully online strategy's factory.
type streamingBackend struct{}

// NewStreaming returns the streaming backend: sessions consume observations
// one at a time, in whatever order the scan pipeline emits them, and
// maintain alias-set membership online — one Stream per protocol, an
// incremental union-find (MergeStream) per merge. Finalisation
// canonicalises through alias.SortSets, so the output is byte-identical to
// the batch backend's for the same input — the structures are
// order-insensitive even though consumption is not.
func NewStreaming() Backend { return streamingBackend{} }

// Name implements Backend.
func (streamingBackend) Name() string { return "streaming" }

// Open implements Backend with one live stream per protocol.
func (streamingBackend) Open(Options) (Session, error) {
	s := &streamingSession{}
	for i := range s.streams {
		s.streams[i] = NewStream()
	}
	return s, nil
}

// FeedLive implements LiveFeeder: Observe lands the observation in its
// sorted bucket immediately, so collection feeds sessions online and alias
// sets exist the moment the scan ends.
func (streamingBackend) FeedLive() bool { return true }

// streamingSession is one online resolution state: a live grouping stream
// per protocol. It is session-safe — Sets snapshots may interleave with
// Observe, which is exactly the point-in-time view a long-running resolution
// service hands to queries arriving mid-ingest.
type streamingSession struct {
	// streams is indexed by ident.Protocol (SSH, BGP, SNMP).
	streams [numProto]*Stream
}

// Observe implements Session by landing the observation in its protocol's
// live stream. Safe for concurrent use.
func (s *streamingSession) Observe(o alias.Observation) {
	s.streams[o.ID.Proto].Observe(o)
}

// Sets implements Session by snapshotting one protocol's stream.
func (s *streamingSession) Sets(p ident.Protocol) []alias.Set {
	return s.streams[p].Sets()
}

// Merged implements Session by absorbing each partition into a fresh
// incremental union-find.
func (s *streamingSession) Merged(groups ...[]alias.Set) []alias.Set {
	ms := NewMergeStream()
	for _, g := range groups {
		ms.Absorb(g)
	}
	return ms.Sets()
}

// Close implements Session; a streaming session holds no external resources.
func (s *streamingSession) Close() error { return nil }

// Stream returns one protocol's live grouping handle — the session-safe
// structure tests and the longitudinal layer inspect directly.
func (s *streamingSession) Stream(p ident.Protocol) *Stream {
	return s.streams[p]
}

// Stream maintains identifier groups online: every Observe call lands the
// observation in its identifier's sorted bucket immediately (the same
// merge-as-you-go alias.Grouper core the batch and sharded backends fold
// through), so alias sets exist the moment the scan finishes — no post-hoc
// grouping pass, no per-snapshot sort of bucket contents. The handle is
// session-safe: Observe may be called concurrently from any number of
// goroutines (scan worker pools and daemon ingest workers feed it directly),
// and Sets/Len may run concurrently with Observe — they snapshot the
// observations applied so far, which is exactly the point-in-time view a
// long-running resolution service hands to queries arriving mid-ingest.
type Stream struct {
	mu sync.Mutex
	g  alias.Grouper
}

// NewStream returns an empty online grouping stream.
func NewStream() *Stream {
	return &Stream{}
}

// Observe lands one observation in its identifier's set, creating the set on
// first sight. Duplicate (identifier, address) observations collapse.
func (s *Stream) Observe(o alias.Observation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.g.Observe(o)
}

// Len returns the number of distinct identifiers observed so far.
func (s *Stream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.Len()
}

// Sets snapshots the stream into canonical alias sets — byte-identical to
// alias.Group over the observations applied so far, in any order. It may run
// concurrently with Observe; observations landing after the snapshot begins
// appear in the next call.
func (s *Stream) Sets() []alias.Set {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.Sets()
}

// MergeStream is an incremental union-find over addresses: it absorbs alias
// sets as they become available and maintains the merged components online.
// Absorbing the same partitions in any order or batching yields the same
// final components.
type MergeStream struct {
	mu     sync.Mutex
	table  *alias.AddrTable
	parent []int32
	size   []int32
}

// NewMergeStream returns an empty incremental merge.
func NewMergeStream() *MergeStream {
	return &MergeStream{table: alias.NewAddrTable()}
}

// Absorb unions each set's addresses into the running components. Singleton
// sets join the membership without uniting anything, exactly as alias.Merge
// treats them.
func (m *MergeStream) Absorb(sets []alias.Set) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range sets {
		if len(s.Addrs) == 0 {
			continue
		}
		first := m.intern(s.Addrs[0])
		for _, a := range s.Addrs[1:] {
			m.union(first, m.intern(a))
		}
	}
}

// intern maps an address to its dense id, growing the union-find alongside
// the table.
func (m *MergeStream) intern(a netip.Addr) int32 {
	i := m.table.Intern(a)
	for int(i) >= len(m.parent) {
		m.parent = append(m.parent, int32(len(m.parent)))
		m.size = append(m.size, 1)
	}
	return i
}

// find returns the representative of x, halving paths as it walks.
func (m *MergeStream) find(x int32) int32 {
	for m.parent[x] != x {
		m.parent[x] = m.parent[m.parent[x]]
		x = m.parent[x]
	}
	return x
}

// union merges the components of a and b by size.
func (m *MergeStream) union(a, b int32) {
	ra, rb := m.find(a), m.find(b)
	if ra == rb {
		return
	}
	if m.size[ra] < m.size[rb] {
		ra, rb = rb, ra
	}
	m.parent[rb] = ra
	m.size[ra] += m.size[rb]
}

// Sets finalises the current components into canonical alias sets —
// byte-identical to alias.Merge over the same partitions.
func (m *MergeStream) Sets() []alias.Set {
	m.mu.Lock()
	defer m.mu.Unlock()
	byRoot := make(map[int32][]netip.Addr)
	for i := 0; i < m.table.Len(); i++ {
		r := m.find(int32(i))
		byRoot[r] = append(byRoot[r], m.table.Addr(int32(i)))
	}
	out := make([]alias.Set, 0, len(byRoot))
	for _, addrs := range byRoot {
		slices.SortFunc(addrs, netip.Addr.Compare)
		out = append(out, alias.Set{Addrs: addrs})
	}
	alias.SortSets(out)
	return out
}

// LatestStream is the longitudinal layer's incremental merge strategy: a
// last-write-wins map from address to identifier, fed epoch by epoch in
// chronological order. An address renumbered in a later epoch sheds its
// stale identifier the moment the fresh observation arrives — the online
// counterpart of the batch decay-weighted history, with provably identical
// outcomes at decay factors at or below 0.5: for any finite history the
// older sightings' geometric weights sum to strictly less than the freshest
// observation's, so the most recent digest always wins there (the scenario
// tests pin the coincidence at 0.5; toward 1 the strategies diverge). State
// is O(addresses), single pass, no per-epoch history retained.
type LatestStream struct {
	mu  sync.Mutex
	cur map[netip.Addr]ident.Identifier
}

// NewLatestStream returns an empty last-write-wins stream.
func NewLatestStream() *LatestStream {
	return &LatestStream{cur: make(map[netip.Addr]ident.Identifier)}
}

// Observe records the address's current identifier, replacing any earlier
// claim.
func (l *LatestStream) Observe(o alias.Observation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cur[o.Addr] = o.ID
}

// Sets groups the surviving (address, identifier) assignments into canonical
// alias sets.
func (l *LatestStream) Sets() []alias.Set {
	l.mu.Lock()
	obs := make([]alias.Observation, 0, len(l.cur))
	for a, id := range l.cur {
		obs = append(obs, alias.Observation{Addr: a, ID: id})
	}
	l.mu.Unlock()
	return alias.Group(obs)
}
