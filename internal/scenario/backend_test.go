package scenario

import (
	"fmt"
	"testing"
)

// TestBackendEquivalenceOnPresets is the backend-equivalence property test:
// on the calm baseline and the adversarial churn-storm worlds, at two seeds
// and with both sequential and fully pipelined collection, the batch,
// streaming, and sharded backends must produce byte-identical alias sets —
// asserted through the SetsDigest each scorecard carries. CI runs this under
// -race, which also exercises the streaming sink's concurrent feed.
func TestBackendEquivalenceOnPresets(t *testing.T) {
	type key struct {
		preset string
		seed   uint64
	}
	distinct := map[key]string{}
	for _, preset := range []string{"baseline", "churn-storm"} {
		for _, seed := range []uint64{1, 7} {
			for _, par := range []int{1, 0} {
				workers := 32
				if par == 0 {
					workers = 0
				}
				var ref *Result
				for _, backend := range BackendNames() {
					res, err := Run(preset, Options{
						Seed: seed, Scale: 0.04,
						Workers: workers, Parallelism: par,
						Backend: backend,
					})
					if err != nil {
						t.Fatalf("%s seed=%d par=%d backend=%s: %v", preset, seed, par, backend, err)
					}
					if res.Backend != backend {
						t.Fatalf("result labelled backend %q, want %q", res.Backend, backend)
					}
					if res.SetsDigest == "" {
						t.Fatalf("%s backend=%s: empty sets digest", preset, backend)
					}
					if ref == nil {
						ref = res
						continue
					}
					if res.SetsDigest != ref.SetsDigest {
						t.Errorf("%s seed=%d par=%d: backend %s alias sets diverge from %s (digest %s vs %s)",
							preset, seed, par, backend, ref.Backend, res.SetsDigest, ref.SetsDigest)
					}
					// The whole scorecard, not just the sets, must agree.
					if fmt.Sprint(res.Protocols) != fmt.Sprint(ref.Protocols) ||
						res.UnionSetsV4 != ref.UnionSetsV4 ||
						res.UnionSetsV6 != ref.UnionSetsV6 ||
						res.DualStackSets != ref.DualStackSets ||
						res.MIDAR != ref.MIDAR {
						t.Errorf("%s seed=%d par=%d: backend %s scorecard diverges from %s",
							preset, seed, par, backend, ref.Backend)
					}
				}
				k := key{preset, seed}
				if prev, ok := distinct[k]; ok {
					if prev != ref.SetsDigest {
						t.Errorf("%s seed=%d: digest changed across Parallelism settings", preset, seed)
					}
				} else {
					distinct[k] = ref.SetsDigest
				}
			}
		}
	}
	// Different worlds must not hash alike — a vacuous digest would pass the
	// equality checks above.
	seen := map[string]key{}
	for k, d := range distinct {
		if prev, dup := seen[d]; dup {
			t.Errorf("worlds %+v and %+v share a sets digest", prev, k)
		}
		seen[d] = k
	}
}

// TestLongitudinalBackendEquivalence runs a short churn-storm series on every
// backend and requires byte-identical per-epoch alias sets and merge-strategy
// scores.
func TestLongitudinalBackendEquivalence(t *testing.T) {
	var ref *LongitudinalResult
	for _, backend := range BackendNames() {
		opts := longOpts
		opts.Backend = backend
		r, err := RunLongitudinal("churn-storm", opts)
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		if r.Backend != backend {
			t.Fatalf("result labelled backend %q, want %q", r.Backend, backend)
		}
		if ref == nil {
			ref = r
			continue
		}
		for i, e := range r.Epochs {
			if e.SetsDigest != ref.Epochs[i].SetsDigest {
				t.Errorf("backend %s epoch %d alias sets diverge from %s",
					backend, i, ref.Backend)
			}
		}
		if len(r.Merges) != len(ref.Merges) {
			t.Fatalf("backend %s has %d merge strategies, want %d", backend, len(r.Merges), len(ref.Merges))
		}
		for i := range r.Merges {
			if *r.Merges[i] != *ref.Merges[i] {
				t.Errorf("backend %s merge strategy %s diverges from %s",
					backend, r.Merges[i].Strategy, ref.Backend)
			}
		}
	}
}

// TestMegascaleBackendEquivalence pins the zero-alloc rewrite's byte-identity
// guarantee on the throughput presets: megascale and megascale-x10 (scaled
// down to CI-sized worlds — the preset's knobs, not its full scale) must
// produce identical alias-set digests across the batch, streaming, and
// sharded backends.
func TestMegascaleBackendEquivalence(t *testing.T) {
	for _, tc := range []struct {
		preset string
		scale  float64
	}{
		{"megascale", 0.06},
		{"megascale-x10", 0.1},
	} {
		var ref *Result
		for _, backend := range BackendNames() {
			res, err := Run(tc.preset, Options{
				Seed: 1, Scale: tc.scale, Workers: 16, Backend: backend,
			})
			if err != nil {
				t.Fatalf("%s backend=%s: %v", tc.preset, backend, err)
			}
			if res.SetsDigest == "" {
				t.Fatalf("%s backend=%s: empty sets digest", tc.preset, backend)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.SetsDigest != ref.SetsDigest {
				t.Errorf("%s: backend %s alias sets diverge from %s (digest %s vs %s)",
					tc.preset, backend, ref.Backend, res.SetsDigest, ref.SetsDigest)
			}
		}
	}
}
