package scenario_test

import (
	"fmt"
	"testing"

	"aliaslimit/internal/scenario"
)

// TestDistributedDigestMatchesBatch is the end-to-end cross-process
// determinism gate at the preset level: the full pipeline on a coordinator
// plus real worker processes must reproduce the batch backend's
// sets_digest exactly, at more than one fleet width. The exhaustive
// worker-count × seed matrix (1/2/7 × two seeds) lives at the session
// level in internal/distres, where a run is cheap; here one preset run per
// width keeps the suite inside the CI race-budget while still driving the
// wire protocol through the whole collect→resolve→score pipeline. The
// equivalence property tests in backend_test.go and the CI
// distributed-compare job cover the remaining presets and seeds.
func TestDistributedDigestMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	ref, err := scenario.Run("baseline", scenario.Options{Quick: true, Seed: 1, Backend: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			res, err := scenario.Run("baseline", scenario.Options{
				Quick: true, Seed: 1,
				Backend: "distributed", ShardWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.SetsDigest != ref.SetsDigest {
				part := scenario.FirstDivergence(ref.PartitionDigests, res.PartitionDigests)
				t.Fatalf("distributed digest %s != batch %s (first divergence: %s)",
					res.SetsDigest, ref.SetsDigest, part)
			}
		})
	}
}
