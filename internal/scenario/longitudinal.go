package scenario

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/evaluate"
	"aliaslimit/internal/experiments"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obslog"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/topo"
)

// Longitudinal runs: the time axis of the scenario engine. Where Run scores
// one snapshot of one world, RunLongitudinal drives N successive
// snapshot→churn→scan rounds over one persistent world
// (experiments.EnvSeries), scores every epoch against the ground truth as it
// stood at that epoch's scan time, and adds the metrics only a longitudinal
// view can produce: identifier-persistence rates across epoch transitions,
// alias-set survival curves, and a head-to-head of longitudinal merge
// strategies (naive cumulative union vs decay-weighted identifier history)
// against the final epoch's ground truth.

// LongitudinalOptions parameterise one multi-epoch scenario run.
type LongitudinalOptions struct {
	// Options carries the single-run knobs (seed, scale, quick, workers,
	// parallelism), applied identically to every epoch.
	Options
	// Epochs is the number of snapshot rounds; 0 picks 5. Must be >= 2.
	Epochs int
	// Decay is the per-epoch-of-age weight factor for the decay-weighted
	// merge strategy, in (0, 1); 0 picks 0.5.
	Decay float64
}

// EpochScore is one epoch's scorecard plus the churn that preceded it.
type EpochScore struct {
	// Epoch is the zero-based epoch index.
	Epoch int `json:"epoch"`
	// Result is the standard single-snapshot scorecard, judged against the
	// ground truth snapshotted at this epoch's scan time.
	Result
	// Renumbered / Rebooted / WiresDown / WiresUp count the epoch-boundary
	// churn applied before this epoch's snapshot (all zero for epoch 0).
	Renumbered int `json:"renumbered"`
	Rebooted   int `json:"rebooted"`
	WiresDown  int `json:"wires_down"`
	WiresUp    int `json:"wires_up"`
	// IntraChurned counts the within-epoch churn between the Censys snapshot
	// and the active scan.
	IntraChurned int `json:"intra_churned"`
}

// ProtocolPersistence is one protocol's identifier stability over time: for
// each epoch transition e→e+1, the share of addresses observed in both
// epochs that presented the same identifier in both.
type ProtocolPersistence struct {
	// Protocol names the technique (SSH, BGP, SNMPv3).
	Protocol string `json:"protocol"`
	// Rates holds one persistence rate per transition (len = epochs-1). A
	// transition with no co-observed address reports the vacuous 1.0.
	Rates []float64 `json:"rates"`
	// Mean is the unweighted mean over the transitions that co-observed at
	// least one address (0 when none did).
	Mean float64 `json:"mean"`
}

// SurvivalPoint is one point of the alias-set survival curve: how many of
// epoch 0's union alias sets are still intact at this epoch — at least two of
// the set's addresses observed, all in one inferred set.
type SurvivalPoint struct {
	// Epoch is the zero-based epoch index (epoch 0 is 1.0 by construction).
	Epoch int `json:"epoch"`
	// Alive counts surviving epoch-0 sets; Rate is Alive over the baseline.
	Alive int     `json:"alive"`
	Rate  float64 `json:"rate"`
}

// MergeScore is one longitudinal merge strategy's accuracy against the final
// epoch's ground truth.
type MergeScore struct {
	// Strategy is "naive-union" (merge every epoch's alias sets, stale
	// identifiers and all), "decay-weighted" (per-address identifier
	// history with recency-decayed weights; stale claims lose to fresh
	// observations), or "incremental" (the streaming backend's online
	// last-write-wins stream — O(addresses) state, single pass, no history
	// retained; coincides with decay-weighted outcomes at decay factors
	// where the freshest observation always outweighs the accumulated
	// past, and diverges as decay approaches 1).
	Strategy string `json:"strategy"`
	// Precision / Recall / F1 are pairwise scores of the merged cross-
	// protocol partition against the final epoch's ground truth.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// Sets counts the non-singleton merged sets (both families).
	Sets int `json:"sets"`
	// TruePairs / FalsePairs / MissedPairs are the raw pairwise counts.
	TruePairs   int `json:"true_pairs"`
	FalsePairs  int `json:"false_pairs"`
	MissedPairs int `json:"missed_pairs"`
}

// LongitudinalResult is one preset's full multi-epoch scorecard.
type LongitudinalResult struct {
	// Scenario is the preset name; Summary its catalog line.
	Scenario string `json:"scenario"`
	Summary  string `json:"summary"`
	// Seed / Scale / Quick pin the world exactly as Result does; Decay is
	// the decay-weighted strategy's factor; Backend names the resolver
	// strategy every epoch resolved through.
	Seed    uint64  `json:"seed"`
	Scale   float64 `json:"scale"`
	Quick   bool    `json:"quick"`
	Decay   float64 `json:"decay"`
	Backend string  `json:"backend,omitempty"`
	// Epochs holds the per-epoch scorecards in chronological order.
	Epochs []*EpochScore `json:"epochs"`
	// Persistence holds per-protocol identifier-persistence rates.
	Persistence []ProtocolPersistence `json:"persistence"`
	// BaselineSets counts the epoch-0 union alias sets the survival curve
	// tracks; Survival is the curve itself.
	BaselineSets int              `json:"baseline_sets"`
	Survival     []*SurvivalPoint `json:"survival"`
	// Merges scores the longitudinal merge strategies against the final
	// epoch's ground truth.
	Merges []*MergeScore `json:"merges"`
}

// scoreProtos is the fixed protocol order of the longitudinal metrics.
var scoreProtos = []ident.Protocol{ident.SSH, ident.BGP, ident.SNMP}

// epochView is the per-epoch analysis state the longitudinal metrics read.
type epochView struct {
	// ids maps address → identifier digest per protocol, latest observation
	// within the epoch winning (active scan over Censys snapshot).
	ids [3]map[netip.Addr]string
	// all / ns are the epoch's cross-protocol union partitions per family
	// (famIdx: 0 = v4, 1 = v6), all sizes and non-singleton respectively.
	all [2][]alias.Set
	ns  [2][]alias.Set
}

// RunLongitudinal runs the named preset over opts.Epochs snapshot rounds on
// one persistent world and assembles the longitudinal scorecard. Results are
// deterministic for a fixed (name, options) at any concurrency setting.
func RunLongitudinal(name string, opts LongitudinalOptions) (*LongitudinalResult, error) {
	p, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown preset %q (have: %s)",
			name, strings.Join(Names(), ", "))
	}
	return runLongitudinalPreset(p, opts)
}

// runLongitudinalPreset is RunLongitudinal over an already resolved (possibly
// sweep-modified) preset.
func runLongitudinalPreset(p Preset, opts LongitudinalOptions) (*LongitudinalResult, error) {
	r, err := newLongRun(p, opts, nil)
	if err != nil {
		return nil, err
	}
	defer r.close()
	for len(r.out.Epochs) < r.n {
		if err := r.runEpoch(); err != nil {
			return nil, err
		}
	}
	return r.finish(), nil
}

// longRun is the in-flight state of a longitudinal run: the per-epoch loop
// (runEpoch) and the cross-epoch tail (finish) are factored out of
// runLongitudinalPreset so the crash-resume path can rebuild the state for
// already-committed epochs from the observation log and then drive the very
// same loop for the remaining live epochs.
type longRun struct {
	p       Preset
	cfg     topo.Config
	quick   bool
	n       int
	decay   float64
	series  *experiments.EnvSeries
	backend resolver.Backend
	log     *obslog.Writer
	logDir  string
	out     *LongitudinalResult
	views   []*epochView
	// finalTruth is the ground truth at the last consumed epoch's scan time.
	finalTruth *topo.Truth
	// pending carries scorecards computed inside the epoch-checkpoint hook
	// (so they are durable before the manifest commits) to runEpoch.
	pending map[int]*EpochScore
}

// newLongRun validates options, builds the world series, and — for durable
// runs — attaches the observation log: a fresh one when opts.LogDir names a
// new directory, or resumeLog when the resume path already reopened one.
func newLongRun(p Preset, opts LongitudinalOptions, resumeLog *obslog.Writer) (*longRun, error) {
	name := p.Name
	if p.StreamOnly && !opts.StreamCollect {
		return nil, fmt.Errorf("scenario %s: this world only runs out-of-core; pass -stream-collect", name)
	}
	n := opts.Epochs
	if n == 0 {
		n = 5
	}
	if n < 2 {
		return nil, fmt.Errorf("scenario: longitudinal runs need >= 2 epochs, got %d", n)
	}
	decay := opts.Decay
	if decay == 0 {
		decay = 0.5
	}
	if decay <= 0 || decay >= 1 {
		return nil, fmt.Errorf("scenario: decay must be in (0, 1), got %v", opts.Decay)
	}

	cfg, quick := resolveConfig(p, opts.Options)
	eopts, err := envOptions(p, cfg, opts.Options)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	r := &longRun{
		p:       p,
		cfg:     cfg,
		quick:   quick,
		n:       n,
		decay:   decay,
		backend: eopts.Backend,
		logDir:  opts.LogDir,
		pending: make(map[int]*EpochScore),
		out: &LongitudinalResult{
			Scenario: p.Name,
			Summary:  p.Summary,
			Seed:     cfg.Seed,
			Scale:    cfg.Scale,
			Quick:    quick,
			Decay:    decay,
			Backend:  eopts.Backend.Name(),
		},
	}
	switch {
	case resumeLog != nil:
		r.log = resumeLog
	case opts.LogDir != "":
		lg, err := obslog.Create(opts.LogDir, obslog.RunMeta{
			Scenario: p.Name,
			Seed:     cfg.Seed,
			Scale:    cfg.Scale,
			Quick:    quick,
			Backend:  eopts.Backend.Name(),
			Epochs:   n,
			Decay:    decay,
		}, obslog.Options{})
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		r.log = lg
	}
	if r.log != nil {
		eopts.Log = r.log
		// The checkpoint hook runs between sealing an epoch and committing
		// its manifest entry: the scorecard is scored and persisted here, so
		// an epoch the manifest calls done always has its scorecard on disk.
		eopts.EpochDigest = func(ep *experiments.Epoch) (string, error) {
			es := r.buildEpochScore(ep)
			if err := saveEpochScore(r.logDir, es); err != nil {
				return "", err
			}
			r.pending[ep.Stats.Epoch] = es
			return es.SetsDigest, nil
		}
	}
	series, err := experiments.NewEnvSeries(experiments.SeriesOptions{
		Options:    eopts,
		Epochs:     n,
		EpochChurn: p.epochChurn(),
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	r.series = series
	return r, nil
}

// buildEpochScore scores one completed epoch against its truth snapshot.
func (r *longRun) buildEpochScore(ep *experiments.Epoch) *EpochScore {
	res := score(r.p, r.cfg, r.quick, ep.Env, ep.Truth)
	return &EpochScore{
		Epoch:        ep.Stats.Epoch,
		Result:       *res,
		Renumbered:   ep.Stats.Renumbered,
		Rebooted:     ep.Stats.Rebooted,
		WiresDown:    ep.Stats.WiresDown,
		WiresUp:      ep.Stats.WiresUp,
		IntraChurned: ep.Stats.IntraChurned,
	}
}

// runEpoch advances the series one epoch and appends its scorecard and
// analysis view. For durable runs the scorecard was already computed (and
// persisted) by the checkpoint hook inside Advance.
func (r *longRun) runEpoch() error {
	e := len(r.out.Epochs)
	ep, err := r.series.Advance()
	if err != nil {
		return fmt.Errorf("scenario %s epoch %d: %w", r.p.Name, e, err)
	}
	es := r.pending[e]
	if es == nil {
		es = r.buildEpochScore(ep)
	}
	delete(r.pending, e)
	r.out.Epochs = append(r.out.Epochs, es)
	view, err := newEpochView(ep.Env)
	if err != nil {
		return fmt.Errorf("scenario %s epoch %d: %w", r.p.Name, e, err)
	}
	r.views = append(r.views, view)
	r.finalTruth = ep.Truth
	// The view captured everything the cross-epoch metrics read, so the
	// epoch's resolver sessions can go; closing surfaces a distributed
	// session's sticky worker error before the next epoch builds on it.
	if err := ep.Env.Close(); err != nil {
		return fmt.Errorf("scenario %s epoch %d: %w", r.p.Name, e, err)
	}
	return nil
}

// finish computes the cross-epoch metrics once every epoch is in.
func (r *longRun) finish() *LongitudinalResult {
	out := r.out
	out.Persistence = persistence(r.views)
	out.BaselineSets, out.Survival = survival(r.views)
	owner := combinedOwner(r.finalTruth)
	out.Merges = []*MergeScore{
		scoreMerge("naive-union", naiveUnion(r.views), owner),
		scoreMerge("decay-weighted", decayWeighted(r.views, r.decay), owner),
		scoreMerge("incremental", incremental(r.views), owner),
	}
	return out
}

// close releases the observation log, if any, the series' temporary
// stream-collection spill, and the resolver backend (the distributed
// backend stops its worker processes here).
func (r *longRun) close() {
	if r.log != nil {
		r.log.Close()
	}
	if r.series != nil {
		r.series.Close()
	}
	if r.backend != nil {
		closeBackend(r.backend)
	}
}

// newEpochView captures the identifier maps and union partitions of one
// sealed epoch environment. It iterates through Dataset.EachObs, so it works
// identically over in-RAM and stream-backed epochs; a stream-backed epoch
// whose log segment fails to read surfaces the error instead of yielding a
// partial view.
func newEpochView(env *experiments.Env) (*epochView, error) {
	v := &epochView{}
	record := func(m map[netip.Addr]string) func(alias.Observation) {
		return func(o alias.Observation) { m[o.Addr] = o.ID.Digest }
	}
	for i, proto := range scoreProtos {
		m := make(map[netip.Addr]string)
		// Chronological overwrite: the Censys snapshot first, the active
		// scan (three simulated weeks later) second, so within an epoch the
		// freshest observation defines an address's identifier. SNMPv3 has a
		// single source, as everywhere else in the analysis.
		if proto != ident.SNMP {
			if err := env.Censys.EachObs(proto, record(m)); err != nil {
				return nil, err
			}
		}
		if err := env.Active.EachObs(proto, record(m)); err != nil {
			return nil, err
		}
		v.ids[i] = m
	}
	for fi, v4 := range []bool{true, false} {
		v.all[fi] = env.UnionFamilySets(v4)
		v.ns[fi] = env.UnionFamilyNonSingleton(v4)
	}
	return v, nil
}

// persistence computes the per-protocol identifier-persistence rates across
// consecutive epochs: of the addresses observed in both epochs, the share
// that kept the same identifier.
func persistence(views []*epochView) []ProtocolPersistence {
	out := make([]ProtocolPersistence, 0, len(scoreProtos))
	for i, proto := range scoreProtos {
		pp := ProtocolPersistence{Protocol: proto.String()}
		sum, evidenced := 0.0, 0
		for e := 0; e+1 < len(views); e++ {
			both, same := 0, 0
			next := views[e+1].ids[i]
			for addr, d := range views[e].ids[i] {
				d2, ok := next[addr]
				if !ok {
					continue
				}
				both++
				if d2 == d {
					same++
				}
			}
			// A transition with no co-observed address carries no evidence;
			// it reports the vacuous 1.0 (matching the Precision convention)
			// but is excluded from the headline Mean rather than inflating it.
			rate := 1.0
			if both > 0 {
				rate = float64(same) / float64(both)
				sum += rate
				evidenced++
			}
			pp.Rates = append(pp.Rates, rate)
		}
		if evidenced > 0 {
			pp.Mean = sum / float64(evidenced)
		}
		out = append(out, pp)
	}
	return out
}

// survival tracks epoch 0's union alias sets through later epochs. A set
// survives at epoch e when at least two of its addresses are still observed
// and every observed one sits in a single epoch-e set.
func survival(views []*epochView) (int, []*SurvivalPoint) {
	baseline := append(append([]alias.Set(nil), views[0].ns[0]...), views[0].ns[1]...)
	out := make([]*SurvivalPoint, 0, len(views))
	for e, v := range views {
		comp := make(map[netip.Addr]int)
		idx := 0
		for _, fam := range v.all {
			for _, s := range fam {
				for _, a := range s.Addrs {
					comp[a] = idx
				}
				idx++
			}
		}
		alive := 0
		for _, s := range baseline {
			observed, intact, first := 0, true, -1
			for _, a := range s.Addrs {
				c, ok := comp[a]
				if !ok {
					continue
				}
				observed++
				if first == -1 {
					first = c
				} else if c != first {
					intact = false
				}
			}
			if observed >= 2 && intact {
				alive++
			}
		}
		rate := 1.0
		if len(baseline) > 0 {
			rate = float64(alive) / float64(len(baseline))
		}
		out = append(out, &SurvivalPoint{Epoch: e, Alive: alive, Rate: rate})
	}
	return len(baseline), out
}

// combinedOwner flattens the final ground truth of all three protocols into
// one address→device map for scoring merged cross-protocol partitions.
func combinedOwner(t *topo.Truth) map[netip.Addr]string {
	owner := make(map[netip.Addr]string)
	for _, m := range []map[string][]netip.Addr{t.SSHAddrs, t.BGPAddrs, t.SNMPAddrs} {
		for dev, addrs := range m {
			for _, a := range addrs {
				owner[a] = dev
			}
		}
	}
	return owner
}

// naiveUnion is the cumulative strategy: merge every epoch's union alias
// sets, both families, with no notion of staleness. An address renumbered in
// epoch 3 still carries its epoch-0 identifier's claims — the false-merge
// population churn creates.
func naiveUnion(views []*epochView) []alias.Set {
	var merged []alias.Set
	for fi := range [2]int{} {
		inputs := make([][]alias.Set, 0, len(views))
		for _, v := range views {
			inputs = append(inputs, v.ns[fi])
		}
		merged = append(merged, alias.NonSingleton(alias.Merge(inputs...))...)
	}
	return merged
}

// digestHist accumulates one digest's decayed weight and freshest epoch.
type digestHist struct {
	weight float64
	last   int
}

// decayWeighted is the history strategy: every (address, identifier)
// observation ages with the decay factor, each address resolves to its
// highest-weight identifier (freshest epoch breaking ties), and the winning
// assignments are regrouped and merged exactly like a single snapshot. Stale
// identifier claims lose to fresh ones, while addresses that went dark keep
// their last-known identifier — retaining coverage without the false merges.
func decayWeighted(views []*epochView, decay float64) []alias.Set {
	last := len(views) - 1
	var perProto [3][]alias.Set
	for i, proto := range scoreProtos {
		hist := make(map[netip.Addr]map[string]*digestHist)
		for e, v := range views {
			w := 1.0
			for k := 0; k < last-e; k++ {
				w *= decay
			}
			for addr, d := range v.ids[i] {
				byDigest := hist[addr]
				if byDigest == nil {
					byDigest = make(map[string]*digestHist)
					hist[addr] = byDigest
				}
				h := byDigest[d]
				if h == nil {
					h = &digestHist{}
					byDigest[d] = h
				}
				h.weight += w
				h.last = e
			}
		}
		var obs []alias.Observation
		for addr, byDigest := range hist {
			var best string
			var bestH *digestHist
			for d, h := range byDigest {
				if bestH == nil || h.weight > bestH.weight ||
					(h.weight == bestH.weight && (h.last > bestH.last ||
						(h.last == bestH.last && d < best))) {
					best, bestH = d, h
				}
			}
			obs = append(obs, alias.Observation{
				Addr: addr,
				ID:   ident.Identifier{Proto: proto, Digest: best},
			})
		}
		perProto[i] = alias.Group(obs)
	}
	var merged []alias.Set
	for _, v4 := range []bool{true, false} {
		var inputs [][]alias.Set
		for _, sets := range perProto {
			inputs = append(inputs, alias.NonSingleton(alias.FilterFamily(sets, v4)))
		}
		merged = append(merged, alias.NonSingleton(alias.Merge(inputs...))...)
	}
	return merged
}

// incremental is the streaming resolver's longitudinal strategy: one online
// last-write-wins stream per protocol consumes the epochs in chronological
// order, so an address renumbered in a later epoch sheds its stale
// identifier the moment the fresh observation arrives. Unlike
// decay-weighted it keeps no per-epoch history — O(addresses) state, single
// pass — which is what makes it viable as an always-on resolver between
// measurement rounds rather than a batch job over the archive. The final
// cross-protocol combination absorbs the per-family partitions through the
// same streaming merge the backend uses.
func incremental(views []*epochView) []alias.Set {
	var perProto [3][]alias.Set
	for i, proto := range scoreProtos {
		ls := resolver.NewLatestStream()
		for _, v := range views {
			for addr, d := range v.ids[i] {
				ls.Observe(alias.Observation{
					Addr: addr,
					ID:   ident.Identifier{Proto: proto, Digest: d},
				})
			}
		}
		perProto[i] = ls.Sets()
	}
	var merged []alias.Set
	for _, v4 := range []bool{true, false} {
		ms := resolver.NewMergeStream()
		for _, sets := range perProto {
			ms.Absorb(alias.NonSingleton(alias.FilterFamily(sets, v4)))
		}
		merged = append(merged, alias.NonSingleton(ms.Sets())...)
	}
	return merged
}

// scoreMerge judges one strategy's merged partition against ground truth.
func scoreMerge(strategy string, sets []alias.Set, owner map[netip.Addr]string) *MergeScore {
	m := evaluate.Pairwise(sets, owner)
	return &MergeScore{
		Strategy:    strategy,
		Precision:   m.Precision(),
		Recall:      m.Recall(),
		F1:          m.F1(),
		Sets:        len(sets),
		TruePairs:   m.TruePairs,
		FalsePairs:  m.FalsePairs,
		MissedPairs: m.MissedPairs,
	}
}

// SortLongitudinal orders longitudinal results canonically, mirroring
// SortResults: catalog order, then name, then backend.
func SortLongitudinal(rs []*LongitudinalResult) {
	sort.SliceStable(rs, func(i, j int) bool {
		ri, rj := rank(rs[i].Scenario), rank(rs[j].Scenario)
		if ri != rj {
			return ri < rj
		}
		if rs[i].Scenario != rs[j].Scenario {
			return rs[i].Scenario < rs[j].Scenario
		}
		return backendRank(rs[i].Backend) < backendRank(rs[j].Backend)
	})
}

// RenderText prints one longitudinal result as a human-readable block.
func (r *LongitudinalResult) RenderText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %-12s %d epochs  %s\n", r.Scenario, len(r.Epochs), r.Summary)
	fmt.Fprintf(&sb, "  world: seed=%d scale=%.2f\n", r.Seed, r.Scale)
	fmt.Fprintf(&sb, "  %-5s %8s %9s %9s %9s %9s %7s %6s\n",
		"epoch", "devices", "ssh-prec", "ssh-rec", "ssh-cov", "union-v4", "churn", "reboot")
	for _, e := range r.Epochs {
		var ssh ProtocolScore
		for _, p := range e.Protocols {
			if p.Protocol == "SSH" {
				ssh = p
			}
		}
		fmt.Fprintf(&sb, "  %-5d %8d %9.4f %9.4f %9.4f %9d %7d %6d\n",
			e.Epoch, e.Devices, ssh.Precision, ssh.Recall, ssh.Coverage,
			e.UnionSetsV4, e.Renumbered+e.IntraChurned, e.Rebooted)
	}
	fmt.Fprintf(&sb, "  identifier persistence (mean over %d transitions):", len(r.Epochs)-1)
	for _, pp := range r.Persistence {
		fmt.Fprintf(&sb, "  %s=%.4f", pp.Protocol, pp.Mean)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  alias-set survival (of %d epoch-0 sets):", r.BaselineSets)
	for _, sp := range r.Survival {
		fmt.Fprintf(&sb, " %.3f", sp.Rate)
	}
	sb.WriteByte('\n')
	for _, m := range r.Merges {
		fmt.Fprintf(&sb, "  merge %-14s precision=%.4f recall=%.4f f1=%.4f sets=%d (fp=%d fn=%d)\n",
			m.Strategy, m.Precision, m.Recall, m.F1, m.Sets, m.FalsePairs, m.MissedPairs)
	}
	return sb.String()
}
