package scenario

import (
	"reflect"
	"testing"
)

// longOpts is the tiny-world longitudinal configuration shared by tests.
var longOpts = LongitudinalOptions{Options: Options{Scale: 0.05}, Epochs: 3}

// longCache shares longitudinal runs across tests (they cost several
// single-scenario runs each).
var longCache = map[string]*LongitudinalResult{}

func longTiny(t *testing.T, name string) *LongitudinalResult {
	t.Helper()
	if r, ok := longCache[name]; ok {
		return r
	}
	r, err := RunLongitudinal(name, longOpts)
	if err != nil {
		t.Fatalf("longitudinal %s: %v", name, err)
	}
	longCache[name] = r
	return r
}

func TestRunLongitudinalShape(t *testing.T) {
	r := longTiny(t, "baseline")
	if len(r.Epochs) != 3 {
		t.Fatalf("got %d epochs, want 3", len(r.Epochs))
	}
	for i, e := range r.Epochs {
		if e.Epoch != i {
			t.Fatalf("epoch %d labelled %d", i, e.Epoch)
		}
		if len(e.Protocols) != 3 {
			t.Fatalf("epoch %d has %d protocol scores, want 3", i, len(e.Protocols))
		}
		for _, p := range e.Protocols {
			if p.Precision < 0 || p.Precision > 1 || p.Recall < 0 || p.Recall > 1 {
				t.Fatalf("epoch %d %s scores out of range: %+v", i, p.Protocol, p)
			}
			if p.TruthAddrs == 0 {
				t.Fatalf("epoch %d %s scored against empty truth", i, p.Protocol)
			}
		}
	}
	if r.Epochs[0].Renumbered != 0 || r.Epochs[0].Rebooted != 0 {
		t.Fatalf("epoch 0 must see no boundary churn: %+v", r.Epochs[0])
	}
	if len(r.Persistence) != 3 {
		t.Fatalf("got %d persistence entries, want 3", len(r.Persistence))
	}
	for _, pp := range r.Persistence {
		if len(pp.Rates) != len(r.Epochs)-1 {
			t.Fatalf("%s has %d transition rates, want %d", pp.Protocol, len(pp.Rates), len(r.Epochs)-1)
		}
		if pp.Mean < 0 || pp.Mean > 1 {
			t.Fatalf("%s mean persistence out of range: %v", pp.Protocol, pp.Mean)
		}
	}
	if len(r.Survival) != len(r.Epochs) {
		t.Fatalf("got %d survival points, want %d", len(r.Survival), len(r.Epochs))
	}
	if r.Survival[0].Rate != 1.0 {
		t.Fatalf("epoch-0 survival %v, want 1.0", r.Survival[0].Rate)
	}
	if r.BaselineSets == 0 {
		t.Fatal("no epoch-0 sets to track")
	}
	if len(r.Merges) != 3 {
		t.Fatalf("got %d merge strategies, want 3", len(r.Merges))
	}
	for i, want := range []string{"naive-union", "decay-weighted", "incremental"} {
		if r.Merges[i].Strategy != want {
			t.Fatalf("merge strategy %d is %q, want %q", i, r.Merges[i].Strategy, want)
		}
	}
}

func TestRunLongitudinalDeterministic(t *testing.T) {
	a, err := RunLongitudinal("churn-storm", longOpts)
	if err != nil {
		t.Fatal(err)
	}
	par := longOpts
	par.Parallelism = 1
	par.Workers = 32
	b, err := RunLongitudinal("churn-storm", par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("longitudinal results differ between sequential and pipelined collection")
	}
	longCache["churn-storm"] = a
}

// TestChurnStormDegradesPersistenceAndSurvival pins the longitudinal failure
// mode: a churn storm must break identifier persistence and kill epoch-0
// alias sets faster than the calm baseline.
func TestChurnStormDegradesPersistenceAndSurvival(t *testing.T) {
	base, storm := longTiny(t, "baseline"), longTiny(t, "churn-storm")
	if got, want := storm.Persistence[0].Mean, base.Persistence[0].Mean; got >= want {
		t.Errorf("churn-storm SSH persistence %.4f, baseline %.4f — expected a drop", got, want)
	}
	last := len(storm.Survival) - 1
	if got, want := storm.Survival[last].Rate, base.Survival[last].Rate; got >= want {
		t.Errorf("churn-storm final survival %.4f, baseline %.4f — expected a drop", got, want)
	}
}

// TestDecayWeightedBeatsNaiveUnionOnChurnStorm is the acceptance criterion:
// the decay-weighted identifier history must measurably out-score a naive
// cumulative union on precision under heavy churn, without losing recall.
func TestDecayWeightedBeatsNaiveUnionOnChurnStorm(t *testing.T) {
	r := longTiny(t, "churn-storm")
	var naive, decayed *MergeScore
	for _, m := range r.Merges {
		switch m.Strategy {
		case "naive-union":
			naive = m
		case "decay-weighted":
			decayed = m
		}
	}
	if naive == nil || decayed == nil {
		t.Fatalf("missing merge strategies: %+v", r.Merges)
	}
	if decayed.Precision <= naive.Precision {
		t.Fatalf("decay-weighted precision %.4f did not beat naive union %.4f",
			decayed.Precision, naive.Precision)
	}
	if decayed.FalsePairs >= naive.FalsePairs {
		t.Fatalf("decay-weighted false pairs %d not below naive union %d",
			decayed.FalsePairs, naive.FalsePairs)
	}
	if decayed.F1 <= naive.F1 {
		t.Fatalf("decay-weighted F1 %.4f did not beat naive union %.4f",
			decayed.F1, naive.F1)
	}
}

// TestIncrementalMatchesDecayAtHalf cross-validates the two stale-resistant
// strategies: at the default decay factor 0.5, the freshest observation's
// weight (1) strictly exceeds any older digest's accumulated history
// (< 0.5^(k-1) summed), so the batch decay-weighted history and the
// streaming last-write-wins stream must resolve every address identically —
// identical partitions, identical scores.
func TestIncrementalMatchesDecayAtHalf(t *testing.T) {
	r := longTiny(t, "churn-storm")
	var decayed, incr *MergeScore
	for _, m := range r.Merges {
		switch m.Strategy {
		case "decay-weighted":
			decayed = m
		case "incremental":
			incr = m
		}
	}
	if decayed == nil || incr == nil {
		t.Fatalf("missing merge strategies: %+v", r.Merges)
	}
	a, b := *decayed, *incr
	a.Strategy, b.Strategy = "", ""
	if a != b {
		t.Fatalf("incremental %+v diverges from decay-weighted %+v at decay 0.5", *incr, *decayed)
	}
	if incr.FalsePairs >= r.Merges[0].FalsePairs {
		t.Fatalf("incremental false pairs %d not below naive union %d",
			incr.FalsePairs, r.Merges[0].FalsePairs)
	}
}

func TestRunLongitudinalValidation(t *testing.T) {
	if _, err := RunLongitudinal("no-such-world", longOpts); err == nil {
		t.Fatal("unknown preset accepted")
	}
	bad := longOpts
	bad.Epochs = 1
	if _, err := RunLongitudinal("baseline", bad); err == nil {
		t.Fatal("single-epoch longitudinal run accepted")
	}
	bad = longOpts
	bad.Decay = 1.5
	if _, err := RunLongitudinal("baseline", bad); err == nil {
		t.Fatal("out-of-range decay accepted")
	}
}

// TestReportMergeWithLongitudinal checks the extended SCENARIOS.json stays
// mergeable and canonical with longitudinal entries present.
func TestReportMergeWithLongitudinal(t *testing.T) {
	snap := tiny(t, "baseline")
	long := longTiny(t, "churn-storm")
	longBase := longTiny(t, "baseline")
	merged := Merge(
		&Report{Longitudinal: []*LongitudinalResult{long}},
		&Report{Scenarios: []*Result{snap}, Longitudinal: []*LongitudinalResult{longBase}},
	)
	if len(merged.Scenarios) != 1 || len(merged.Longitudinal) != 2 {
		t.Fatalf("merge lost entries: %d scenarios, %d longitudinal",
			len(merged.Scenarios), len(merged.Longitudinal))
	}
	if merged.Longitudinal[0].Scenario != "baseline" {
		t.Fatalf("longitudinal entries not in canonical order: %s first",
			merged.Longitudinal[0].Scenario)
	}
	data, err := merged.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Longitudinal) != 2 || len(back.Longitudinal[1].Epochs) != len(long.Epochs) {
		t.Fatalf("round trip lost longitudinal detail: %+v", back.Longitudinal)
	}
	data2, err := back.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("extended report marshalling not canonical")
	}
}
