package scenario_test

import (
	"os"
	"testing"

	"aliaslimit/internal/aliasd"
)

// TestMain makes the test binary worker-capable: the distributed backend
// re-executes the running binary as its shard worker processes, so the
// backend-equivalence tests can cover "distributed" only if this binary
// serves the worker role when the coordinator's environment marker is set.
// (The file sits in the external test package because aliasd imports
// scenario; the worker entry point would be an import cycle from inside.)
func TestMain(m *testing.M) {
	aliasd.RunWorkerIfRequested()
	os.Exit(m.Run())
}
