package scenario

import (
	"sort"

	"aliaslimit/internal/netsim"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/topo"
)

// Preset is one named world: a composition of topo generation knobs and
// netsim fault-injection hooks, plus the scales it runs at.
type Preset struct {
	// Name is the stable identifier used by the CLI, the CI matrix, and
	// SCENARIOS.json.
	Name string
	// Summary is the one-line catalog description.
	Summary string
	// Scale is the default world scale for a full run; QuickScale is the
	// CI-sized -quick variant.
	Scale, QuickScale float64
	// Churn is the snapshot-gap churn fraction; 0 keeps the experiments
	// default (2%), negative disables churn.
	Churn float64
	// Faults is the fabric fault policy (Seed is filled in at run time
	// from the world seed).
	Faults netsim.Faults
	// Tune applies the preset's topo.Config overrides on top of
	// topo.Default(); nil leaves the calibrated defaults.
	Tune func(*topo.Config)
	// EpochChurn is the per-epoch-boundary churn a longitudinal run applies
	// between snapshot rounds; the zero value falls back to
	// DefaultEpochChurn.
	EpochChurn topo.EpochChurn
	// Longitudinal marks the presets the CI longitudinal matrix runs with
	// -epochs (every preset *can* run longitudinally; these are the pinned
	// interesting ones).
	Longitudinal bool
	// StreamOnly marks worlds too large for in-RAM collection: the run
	// refuses to start without Options.StreamCollect, because materialising
	// the observations would defeat the preset's point (and its memory
	// budget). `-run all` skips these unless streaming is on.
	StreamOnly bool
}

// DefaultEpochChurn is the calm-Internet epoch boundary: a small dynamic
// pool turns over, the odd device reboots into fresh keys, and a sliver of
// interfaces blink in maintenance windows.
var DefaultEpochChurn = topo.EpochChurn{
	Renumber: 0.02,
	Reboot:   0.02,
	WireDown: 0.02,
	WireUp:   0.50,
}

// epochChurn returns the preset's boundary churn spec, defaulted.
func (p Preset) epochChurn() topo.EpochChurn {
	if p.EpochChurn == (topo.EpochChurn{}) {
		return DefaultEpochChurn
	}
	return p.EpochChurn
}

// presets is the catalog, in canonical (report) order. Every preset runs the
// identical collect→resolve→validate pipeline; only the world differs.
var presets = []Preset{
	{
		Name:         "baseline",
		Summary:      "the paper's calibrated Internet: no injected faults, 2% snapshot churn",
		Scale:        0.2,
		QuickScale:   0.08,
		Longitudinal: true,
	},
	{
		Name:       "ipv6-heavy",
		Summary:    "dual-stack-dominant Internet: most servers and routers carry IPv6, near-complete hitlist",
		Scale:      0.2,
		QuickScale: 0.08,
		Tune: func(c *topo.Config) {
			c.PServerV6 = 0.45
			c.PServerV6Only = 0.12
			c.PMultiSSHOneV6 = 0.30
			c.PMultiSSHManyV6 = 0.22
			c.PSNMPRouterV6 = 0.35
			c.PBGPMultiV6 = 0.85
			c.SNMPV6OnlySingles *= 4
			c.BGPV6OnlySingles *= 3
			c.HitlistCoverage = 0.95
		},
	},
	{
		Name:       "lossy",
		Summary:    "8% per-wire packet loss on every probe, dial, and exchange — recall under attrition",
		Scale:      0.2,
		QuickScale: 0.08,
		Faults:     netsim.Faults{LossRate: 0.08},
	},
	{
		Name:       "ratelimited",
		Summary:    "upstream rate limiters drop 35% of SYN/ICMP/UDP probe floods; completed handshakes pass",
		Scale:      0.2,
		QuickScale: 0.08,
		Faults:     netsim.Faults{ThrottleRate: 0.35},
	},
	{
		Name:       "ssh-keyfarm",
		Summary:    "fleet/factory SSH keys shared across whole provider farms — the false-merge stress test",
		Scale:      0.2,
		QuickScale: 0.08,
		Tune: func(c *topo.Config) {
			c.PSharedSSHKey = 0.30
			c.PCloneSSHKeyOverlap = 0.50
			c.PCloneEngineID = 0.15
		},
	},
	{
		Name:       "snmp-dark",
		Summary:    "security hardening disabled SNMPv3 on 60% of would-be agents — the baseline starves",
		Scale:      0.2,
		QuickScale: 0.08,
		Tune: func(c *topo.Config) {
			c.PSNMPDisabled = 0.60
		},
	},
	{
		Name:       "ipid-noisy",
		Summary:    "every device switched to per-interface IPID counters — MIDAR's monotonic-bounds test breaks",
		Scale:      0.2,
		QuickScale: 0.08,
		Faults:     netsim.Faults{IPIDPolicy: netsim.IPIDPolicyOf(netsim.IPIDPerInterface)},
	},
	{
		Name:       "churn-storm",
		Summary:    "25% of dynamic addresses reassigned between snapshots — stale-identifier false merges",
		Scale:      0.2,
		QuickScale: 0.08,
		Churn:      0.25,
		EpochChurn: topo.EpochChurn{
			Renumber: 0.25,
			Reboot:   0.10,
			WireDown: 0.08,
			WireUp:   0.50,
		},
		Longitudinal: true,
	},
	{
		Name:       "megascale",
		Summary:    "the full calibrated scale (≈1:1000 of the paper's Internet) — the throughput workout",
		Scale:      1.0,
		QuickScale: 0.3,
	},
	{
		Name:       "megascale-x10",
		Summary:    "ten times the calibrated scale — the zero-alloc hot-path workout (arena grouping, dense topo, stack-only draws)",
		Scale:      10.0,
		QuickScale: 0.5,
	},
	{
		Name:       "megascale-x100",
		Summary:    "a hundred times the calibrated scale — runnable only out-of-core (-stream-collect): scan→disk→replayed grouping, never a full in-RAM dataset",
		Scale:      100.0,
		QuickScale: 1.0,
		StreamOnly: true,
	},
}

// Presets returns the catalog in canonical order. The slice is shared; do
// not modify.
func Presets() []Preset { return presets }

// Names returns the preset names in canonical order.
func Names() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.Name
	}
	return out
}

// LongitudinalNames returns the presets the CI longitudinal matrix pins, in
// canonical order.
func LongitudinalNames() []string {
	var out []string
	for _, p := range presets {
		if p.Longitudinal {
			out = append(out, p.Name)
		}
	}
	return out
}

// Lookup finds a preset by name.
func Lookup(name string) (Preset, bool) {
	for _, p := range presets {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

// rank returns a preset's canonical position (after the catalog for unknown
// names, so merged reports keep foreign entries stable at the end).
func rank(name string) int {
	for i, p := range presets {
		if p.Name == name {
			return i
		}
	}
	return len(presets)
}

// backendRank orders backend names canonically (registry order, unknown
// names after, the unset legacy value first within its scenario).
func backendRank(name string) int {
	if name == "" {
		return -1
	}
	for i, n := range resolver.Names() {
		if n == name {
			return i
		}
	}
	return len(resolver.Names())
}

// BackendNames lists the resolver backends the scenario engine can run, in
// canonical order.
func BackendNames() []string { return resolver.Names() }

// SortResults orders results canonically: catalog order first, then by name
// for entries the catalog does not know, then by backend so the matrix's
// backend dimension interleaves stably.
func SortResults(rs []*Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		ri, rj := rank(rs[i].Scenario), rank(rs[j].Scenario)
		if ri != rj {
			return ri < rj
		}
		if rs[i].Scenario != rs[j].Scenario {
			return rs[i].Scenario < rs[j].Scenario
		}
		return backendRank(rs[i].Backend) < backendRank(rs[j].Backend)
	})
}
