package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"aliaslimit/internal/atomicio"
	"aliaslimit/internal/experiments"
	"aliaslimit/internal/obslog"
	"aliaslimit/internal/resolver"
)

// Crash resume: ResumeLongitudinal continues a durable longitudinal run that
// was killed mid-flight, from the last epoch whose checkpoint (observation
// log segment + manifest entry + scorecard file) committed. The continuation
// is exact in the gated sense: every epoch's sets digest — replayed or live —
// equals the digest an uninterrupted run records, which the crash-resume CI
// job asserts end to end. Three gates enforce it:
//
//  1. World replay: churn draws are stateless hash draws keyed on
//     (seed, operation, epoch, entity), so EnvSeries.SkipEpoch mutates the
//     world exactly as the original epochs did; World.ChurnDrawState is
//     checked against the manifest after every skipped epoch.
//  2. Log replay: each committed epoch's observations are replayed from the
//     log through a fresh resolver backend and re-digested; the digest must
//     match the manifest's sets_digest.
//  3. Scorecard presence: an epoch without its scorecard file (a torn
//     checkpoint) is rolled back along with every later epoch and re-run
//     live.
//
// Only the MIDAR validation tally of post-resume live epochs may differ from
// the uninterrupted run (skipped epochs skip the clock-advancing probe
// rounds); identifiers and collections are clock-independent, so every alias
// set and digest is reproduced bit for bit.

// epochsDirName holds the per-epoch scorecard files inside a log directory.
const epochsDirName = "epochs"

// epochScorePath is the scorecard file for one epoch of a durable run.
func epochScorePath(dir string, epoch int) string {
	return filepath.Join(dir, epochsDirName, fmt.Sprintf("epoch-%04d.json", epoch))
}

// saveEpochScore persists one epoch's scorecard atomically. It runs inside
// the epoch-checkpoint hook, before the manifest commits the epoch, so a
// manifest-committed epoch always has its scorecard on disk.
func saveEpochScore(dir string, es *EpochScore) error {
	if err := os.MkdirAll(filepath.Join(dir, epochsDirName), 0o755); err != nil {
		return fmt.Errorf("scenario: epoch scorecard dir: %w", err)
	}
	data, err := json.MarshalIndent(es, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encoding epoch %d scorecard: %w", es.Epoch, err)
	}
	return atomicio.WriteFile(epochScorePath(dir, es.Epoch), append(data, '\n'), 0o644)
}

// loadEpochScore reads one committed epoch's scorecard back.
func loadEpochScore(dir string, epoch int) (*EpochScore, error) {
	data, err := os.ReadFile(epochScorePath(dir, epoch))
	if err != nil {
		return nil, err
	}
	var es EpochScore
	if err := json.Unmarshal(data, &es); err != nil {
		return nil, fmt.Errorf("scenario: epoch %d scorecard: %w", epoch, err)
	}
	if es.Epoch != epoch {
		return nil, fmt.Errorf("scenario: scorecard file for epoch %d claims epoch %d", epoch, es.Epoch)
	}
	return &es, nil
}

// ResumeLongitudinal continues the durable longitudinal run under dir. The
// run's identity — preset, seed, scale, quick, backend, epochs, decay — comes
// from the log's manifest; opts contributes only the execution knobs that
// cannot change results (Workers, Parallelism, ShardWorkers, StreamCollect,
// MemBudget). Epochs the log holds are
// replayed and verified, remaining epochs run live, and the assembled
// LongitudinalResult is identical (MIDAR tallies of post-crash epochs aside)
// to what the uninterrupted run would have returned.
func ResumeLongitudinal(dir string, opts Options) (*LongitudinalResult, error) {
	lg, man, err := obslog.Resume(dir, obslog.Options{})
	if err != nil {
		return nil, fmt.Errorf("scenario: resuming %s: %w", dir, err)
	}
	meta := man.Meta
	p, ok := Lookup(meta.Scenario)
	if !ok {
		lg.Close()
		return nil, fmt.Errorf("scenario: log %s was written by unknown preset %q", dir, meta.Scenario)
	}
	if meta.Epochs < 2 {
		lg.Close()
		return nil, fmt.Errorf("scenario: log %s is not a longitudinal run (epochs=%d)", dir, meta.Epochs)
	}

	// Rebuild the original options from the manifest. Quick runs must go back
	// through the quick path (Scale=0) so resolveConfig re-derives the same
	// config — and the same MIDAR sampling — as the original invocation.
	ropts := LongitudinalOptions{
		Options: Options{
			Seed:         meta.Seed,
			Quick:        meta.Quick,
			Workers:      opts.Workers,
			Parallelism:  opts.Parallelism,
			Backend:      meta.Backend,
			ShardWorkers: opts.ShardWorkers,
			LogDir:       dir,
			// Streaming collection is a memory policy, not a semantic
			// difference (its alias sets are byte-identical), so like
			// Workers it carries over from the resume invocation.
			StreamCollect: opts.StreamCollect,
			MemBudget:     opts.MemBudget,
		},
		Epochs: meta.Epochs,
		Decay:  meta.Decay,
	}
	if !meta.Quick {
		ropts.Scale = meta.Scale
	}

	r, err := newLongRun(p, ropts, lg)
	if err != nil {
		lg.Close()
		return nil, err
	}
	defer r.close()
	if r.cfg.Seed != meta.Seed || r.cfg.Scale != meta.Scale || r.quick != meta.Quick ||
		r.n != meta.Epochs || r.out.Backend != meta.Backend {
		return nil, fmt.Errorf("scenario: manifest of %s does not reproduce its run config "+
			"(seed %d/%d scale %v/%v quick %v/%v epochs %d/%d backend %q/%q)",
			dir, r.cfg.Seed, meta.Seed, r.cfg.Scale, meta.Scale, r.quick, meta.Quick,
			r.n, meta.Epochs, r.out.Backend, meta.Backend)
	}

	// A committed epoch is usable only if its scorecard file exists too; a
	// torn checkpoint truncates the run back to the last fully durable epoch.
	done := man.EpochsDone
	usable := 0
	for usable < done {
		if _, err := os.Stat(epochScorePath(dir, usable)); err != nil {
			break
		}
		usable++
	}
	if usable < done {
		if err := r.log.Rollback(usable); err != nil {
			return nil, fmt.Errorf("scenario: rolling back torn checkpoint: %w", err)
		}
		done = usable
	}

	for e := 0; e < done; e++ {
		if _, err := r.series.SkipEpoch(); err != nil {
			return nil, fmt.Errorf("scenario: replaying epoch %d: %w", e, err)
		}
		rec := man.Epochs[e]
		if got := r.series.World.ChurnDrawState(); got != rec.DrawState {
			return nil, fmt.Errorf("scenario: world replay diverged at epoch %d "+
				"(draw state %#x, manifest %#x)", e, got, rec.DrawState)
		}
		snap, err := obslog.Replay(dir, e)
		if err != nil {
			return nil, fmt.Errorf("scenario: replaying epoch %d: %w", e, err)
		}
		backend, err := resolver.New(meta.Backend, 0)
		if err != nil {
			return nil, fmt.Errorf("scenario: replaying epoch %d: %w", e, err)
		}
		env, err := experiments.ReplayEnv(snap, backend)
		if err != nil {
			closeBackend(backend)
			return nil, fmt.Errorf("scenario: replaying epoch %d: %w", e, err)
		}
		digest, _ := DigestPartitions(ScoredPartitions(env))
		if digest != rec.SetsDigest {
			return nil, fmt.Errorf("scenario: log replay of epoch %d diverged "+
				"(sets digest %s, manifest %s)", e, digest, rec.SetsDigest)
		}
		es, err := loadEpochScore(dir, e)
		if err != nil {
			return nil, fmt.Errorf("scenario: replaying epoch %d: %w", e, err)
		}
		if es.SetsDigest != rec.SetsDigest {
			return nil, fmt.Errorf("scenario: epoch %d scorecard digest %s disagrees with manifest %s",
				e, es.SetsDigest, rec.SetsDigest)
		}
		r.out.Epochs = append(r.out.Epochs, es)
		view, err := newEpochView(env)
		if err != nil {
			closeBackend(backend)
			return nil, fmt.Errorf("scenario: replaying epoch %d: %w", e, err)
		}
		r.views = append(r.views, view)
		if err := env.Close(); err != nil {
			closeBackend(backend)
			return nil, fmt.Errorf("scenario: replaying epoch %d: %w", e, err)
		}
		closeBackend(backend)
	}
	if done == r.n {
		// Fully committed run: after the last skipped epoch the world's truth
		// is exactly the final scan-time truth (nothing churns after a scan).
		r.finalTruth = r.series.World.Truth.Snapshot()
	}
	for len(r.out.Epochs) < r.n {
		if err := r.runEpoch(); err != nil {
			return nil, err
		}
	}
	return r.finish(), nil
}
