package scenario

import (
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"aliaslimit/internal/alias"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/obslog"
)

// crashPreset is the longitudinal preset the crash-resume tests run: it has
// every churn axis enabled, so the resume path must replay boundary
// renumbering, reboots, wire flaps, and intra-epoch churn exactly.
const crashPreset = "churn-storm"

// crashOpts builds the tiny-world durable-run options for a log in dir.
func crashOpts(dir string) LongitudinalOptions {
	return LongitudinalOptions{Options: Options{Scale: 0.05, LogDir: dir}, Epochs: 3}
}

// stripMIDAR clears the one field resume legitimately cannot reproduce for
// post-crash live epochs: skipped epochs skip the clock-advancing MIDAR probe
// rounds, so the IPID tally of later epochs sees a different clock. Every
// other field — alias sets, digests, scores, churn counts — must match.
func stripMIDAR(es *EpochScore) *EpochScore {
	c := *es
	c.MIDAR = MIDARScore{}
	return &c
}

// requireTailEqual compares everything after the per-epoch scorecards — the
// cross-epoch metrics are pure functions of the epoch views, so they must be
// bit-identical however the epochs were obtained.
func requireTailEqual(t *testing.T, got, ref *LongitudinalResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Persistence, ref.Persistence) {
		t.Error("persistence diverges from uninterrupted run")
	}
	if got.BaselineSets != ref.BaselineSets || !reflect.DeepEqual(got.Survival, ref.Survival) {
		t.Error("survival curve diverges from uninterrupted run")
	}
	if !reflect.DeepEqual(got.Merges, ref.Merges) {
		t.Error("merge scores diverge from uninterrupted run")
	}
}

// TestLoggedRunMatchesUnlogged pins that attaching the observation log is
// invisible to results: the durable run returns exactly what the in-RAM run
// returns.
func TestLoggedRunMatchesUnlogged(t *testing.T) {
	p, ok := Lookup(crashPreset)
	if !ok {
		t.Fatal("preset missing")
	}
	unlogged, err := runLongitudinalPreset(p, LongitudinalOptions{Options: Options{Scale: 0.05}, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	logged, err := runLongitudinalPreset(p, crashOpts(filepath.Join(t.TempDir(), "log")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(logged, unlogged) {
		t.Error("durable run diverges from in-RAM run")
	}
}

// TestCrashResumeReproducesUninterrupted is the tentpole invariant in-process:
// a run abandoned mid-epoch (two epochs committed, stray third-epoch
// observations buffered, no clean shutdown) resumes into the exact digests of
// an uninterrupted run.
func TestCrashResumeReproducesUninterrupted(t *testing.T) {
	p, ok := Lookup(crashPreset)
	if !ok {
		t.Fatal("preset missing")
	}
	base := t.TempDir()
	ref, err := runLongitudinalPreset(p, crashOpts(filepath.Join(base, "ref")))
	if err != nil {
		t.Fatal(err)
	}

	crashDir := filepath.Join(base, "crash")
	r, err := newLongRun(p, crashOpts(crashDir), nil)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if err := r.runEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the kill landing mid-epoch-3: some observations already teed
	// into the log's buffers, then the process dies — no fold, no Close.
	sink := r.log.Sink(obslog.SourceActive)
	sink.Observe(ident.SSH, alias.Observation{
		Addr: netip.MustParseAddr("192.0.2.99"),
		ID:   ident.Identifier{Proto: ident.SSH, Digest: strings.Repeat("ab", 32)},
	})

	got, err := ResumeLongitudinal(crashDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Epochs) != len(ref.Epochs) {
		t.Fatalf("resumed run has %d epochs, want %d", len(got.Epochs), len(ref.Epochs))
	}
	// Committed epochs come back verbatim from their durable scorecards.
	for e := 0; e < 2; e++ {
		if !reflect.DeepEqual(got.Epochs[e], ref.Epochs[e]) {
			t.Errorf("replayed epoch %d scorecard diverges from uninterrupted run", e)
		}
	}
	// The post-crash live epoch must reproduce everything but the MIDAR tally.
	if got.Epochs[2].SetsDigest == "" || got.Epochs[2].SetsDigest != ref.Epochs[2].SetsDigest {
		t.Errorf("final epoch sets digest %q, want %q", got.Epochs[2].SetsDigest, ref.Epochs[2].SetsDigest)
	}
	if !reflect.DeepEqual(stripMIDAR(got.Epochs[2]), stripMIDAR(ref.Epochs[2])) {
		t.Error("final live epoch diverges from uninterrupted run beyond MIDAR")
	}
	requireTailEqual(t, got, ref)

	// The crash directory is now a completed run: resuming it again replays
	// every epoch from disk and returns the same result without any scans.
	again, err := ResumeLongitudinal(crashDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := range again.Epochs {
		if !reflect.DeepEqual(again.Epochs[e], got.Epochs[e]) {
			t.Errorf("re-resumed epoch %d diverges from first resume", e)
		}
	}
	requireTailEqual(t, again, got)
}

// TestResumeTornCheckpointRollsBack pins the scorecard gate: an epoch the
// manifest calls committed but whose scorecard file is missing is rolled back
// and re-run live, and the digests still match the uninterrupted run.
func TestResumeTornCheckpointRollsBack(t *testing.T) {
	p, ok := Lookup(crashPreset)
	if !ok {
		t.Fatal("preset missing")
	}
	base := t.TempDir()
	ref, err := runLongitudinalPreset(p, crashOpts(filepath.Join(base, "ref")))
	if err != nil {
		t.Fatal(err)
	}

	tornDir := filepath.Join(base, "torn")
	r, err := newLongRun(p, crashOpts(tornDir), nil)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if err := r.runEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(epochScorePath(tornDir, 1)); err != nil {
		t.Fatal(err)
	}

	got, err := ResumeLongitudinal(tornDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Epochs[0], ref.Epochs[0]) {
		t.Error("replayed epoch 0 diverges from uninterrupted run")
	}
	for e := 1; e < 3; e++ {
		if got.Epochs[e].SetsDigest != ref.Epochs[e].SetsDigest {
			t.Errorf("re-run epoch %d sets digest diverges from uninterrupted run", e)
		}
		if !reflect.DeepEqual(stripMIDAR(got.Epochs[e]), stripMIDAR(ref.Epochs[e])) {
			t.Errorf("re-run epoch %d diverges from uninterrupted run beyond MIDAR", e)
		}
	}
	requireTailEqual(t, got, ref)
}

// TestResumeRejectsSingleRunLog pins that a durable single-snapshot run (Run
// with LogDir) is not resumable as a longitudinal run.
func TestResumeRejectsSingleRunLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "single")
	if _, err := Run("baseline", Options{Scale: 0.05, LogDir: dir}); err != nil {
		t.Fatal(err)
	}
	_, err := ResumeLongitudinal(dir, Options{})
	if err == nil || !strings.Contains(err.Error(), "not a longitudinal run") {
		t.Fatalf("got %v, want not-a-longitudinal-run error", err)
	}
}
