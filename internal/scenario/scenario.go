// Package scenario is the adversarial-world engine: a catalog of named
// presets (baseline, lossy, ratelimited, ssh-keyfarm, snmp-dark, ipid-noisy,
// churn-storm, ipv6-heavy, megascale, …) that compose topo generation knobs
// with netsim fault-injection hooks, run the full collect→resolve→validate
// pipeline against each world, and score the inference against the
// simulator's ground-truth alias sets.
//
// The paper evaluates one Internet; this package opens the workload axis.
// Every preset produces per-protocol precision / recall / coverage plus the
// MIDAR-validation tally in one machine-readable Report (SCENARIOS.json),
// deterministic byte-for-byte for a fixed seed — quenched-randomness fault
// draws, not execution-order dice — so CI can diff scenario outcomes across
// commits the way it already diffs benchmarks.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"strings"

	"aliaslimit/internal/alias"
	_ "aliaslimit/internal/distres" // registers the "distributed" backend
	"aliaslimit/internal/evaluate"
	"aliaslimit/internal/experiments"
	"aliaslimit/internal/ident"
	"aliaslimit/internal/midar"
	"aliaslimit/internal/obslog"
	"aliaslimit/internal/resolver"
	"aliaslimit/internal/topo"
)

// Options parameterise one scenario run.
type Options struct {
	// Seed drives the world and every fault draw; 0 keeps the topo default.
	Seed uint64
	// Scale overrides the preset's world scale when positive.
	Scale float64
	// Quick selects the CI-sized scale (ignored when Scale is set).
	Quick bool
	// Workers / Parallelism tune collection exactly as aliaslimit.Options.
	Workers, Parallelism int
	// Backend names the resolver strategy ("batch", "streaming", "sharded",
	// "distributed"; empty picks batch). Every backend yields byte-identical
	// alias sets — the Result's SetsDigest proves it — differing only in
	// execution strategy, which is exactly what the backend dimension of the
	// scenario matrix compares. The distributed backend runs real shard
	// worker processes (see internal/distres), which this package links in.
	Backend string
	// ShardWorkers sizes the scaled-out backends: goroutines for "sharded"
	// (0 tracks GOMAXPROCS), worker processes for "distributed" (0 picks
	// distres.DefaultWorkers). Ignored by batch and streaming.
	ShardWorkers int
	// LogDir, when set, makes the run durable: every observation is teed
	// into the append-only binary log under this directory during
	// collection, and every epoch boundary commits a checkpoint (manifest
	// plus, for longitudinal runs, the epoch scorecard), so a killed
	// longitudinal run can be continued with ResumeLongitudinal or
	// `cmd/scenarios -resume`. One run per directory; the directory must
	// not already hold a log.
	LogDir string
	// StreamCollect selects the out-of-core collection path: observations
	// spill to a per-protocol obslog during the scans (under LogDir when
	// set, else a temporary directory) and dataset sealing replays them in
	// bounded batches, so peak memory stays O(alias-set output + arena)
	// instead of O(observations). Scorecards — including SetsDigest — are
	// byte-identical to the in-RAM path on every backend. Required by
	// StreamOnly presets (megascale-x100).
	StreamCollect bool
	// MemBudget, consulted only with StreamCollect, advises the replay
	// working-set size in bytes (it tunes the log reader's readahead); 0
	// picks the default.
	MemBudget int64
}

// ProtocolScore is one protocol's ground-truth accuracy in one scenario.
type ProtocolScore struct {
	// Protocol names the technique (ssh, bgp, snmpv3).
	Protocol string `json:"protocol"`
	// Precision / Recall / F1 are pairwise clustering scores against the
	// generator's ground truth (evaluate.Pairwise).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// Coverage is identifiable observed addresses over ground-truth
	// service addresses — how much of the answering population the
	// pipeline reached under this world's conditions. Zero when the world
	// runs no such service at all.
	Coverage float64 `json:"coverage"`
	// ObservedAddrs / TruthAddrs are Coverage's numerator and denominator.
	ObservedAddrs int `json:"observed_addrs"`
	TruthAddrs    int `json:"truth_addrs"`
	// AliasSets counts the non-singleton sets the protocol yielded.
	AliasSets int `json:"alias_sets"`
	// TruePairs / FalsePairs / MissedPairs are the raw pairwise counts.
	TruePairs   int `json:"true_pairs"`
	FalsePairs  int `json:"false_pairs"`
	MissedPairs int `json:"missed_pairs"`
}

// MIDARScore is the IPID baseline's validation tally in one scenario — the
// number that collapses under ipid-noisy and ratelimited worlds.
type MIDARScore struct {
	// Sampled is the number of SSH sets fed to the IPID pipeline.
	Sampled int `json:"sampled"`
	// Unverifiable / Confirmed / Split partition the sample.
	Unverifiable int `json:"unverifiable"`
	Confirmed    int `json:"confirmed"`
	Split        int `json:"split"`
}

// Result is one scenario's full scorecard.
type Result struct {
	// Scenario is the preset name; Summary its catalog line.
	Scenario string `json:"scenario"`
	Summary  string `json:"summary"`
	// Seed and Scale pin the world; Quick records the CI-sized variant.
	Seed  uint64  `json:"seed"`
	Scale float64 `json:"scale"`
	Quick bool    `json:"quick"`
	// Backend names the resolver strategy the run resolved through, and
	// SetsDigest is a SHA-256 over every scored alias-set partition in
	// canonical order — equal digests mean byte-identical alias sets, the
	// cross-backend equivalence the matrix asserts. PartitionDigests breaks
	// the digest down per partition so a divergence names the partition that
	// differs instead of just "the hashes disagree".
	Backend          string            `json:"backend,omitempty"`
	SetsDigest       string            `json:"sets_digest,omitempty"`
	PartitionDigests []PartitionDigest `json:"partition_digests,omitempty"`
	// Devices / V4Addresses / V6Addresses size the measured world.
	Devices     int `json:"devices"`
	V4Addresses int `json:"v4_addresses"`
	V6Addresses int `json:"v6_addresses"`
	// Protocols holds the per-protocol ground-truth scores (ssh, bgp,
	// snmpv3, in that order).
	Protocols []ProtocolScore `json:"protocols"`
	// UnionSetsV4 / UnionSetsV6 / DualStackSets are the cross-protocol
	// yields the paper headlines.
	UnionSetsV4   int `json:"union_sets_v4"`
	UnionSetsV6   int `json:"union_sets_v6"`
	DualStackSets int `json:"dual_stack_sets"`
	// MIDAR is the IPID-validation tally.
	MIDAR MIDARScore `json:"midar"`
}

// Report is the merged, machine-readable scenario scorecard — the
// SCENARIOS.json artifact CI uploads.
type Report struct {
	// Scenarios holds one Result per run preset, in canonical order.
	Scenarios []*Result `json:"scenarios"`
	// Longitudinal holds one multi-epoch result per (preset, epochs) run, in
	// canonical order — the CI longitudinal matrix contributes these.
	Longitudinal []*LongitudinalResult `json:"longitudinal,omitempty"`
}

// MarshalIndent renders the report as the canonical SCENARIOS.json bytes.
func (r *Report) MarshalIndent() ([]byte, error) {
	SortResults(r.Scenarios)
	SortLongitudinal(r.Longitudinal)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseReport decodes SCENARIOS.json bytes.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("scenario: parsing report: %w", err)
	}
	return &r, nil
}

// Merge combines several reports into one, keeping canonical order.
func Merge(parts ...*Report) *Report {
	out := &Report{}
	for _, p := range parts {
		if p != nil {
			out.Scenarios = append(out.Scenarios, p.Scenarios...)
			out.Longitudinal = append(out.Longitudinal, p.Longitudinal...)
		}
	}
	SortResults(out.Scenarios)
	SortLongitudinal(out.Longitudinal)
	return out
}

// Run builds the named preset's world, measures it from both vantage points
// through the standard pipeline, and scores the inference against ground
// truth. Results are deterministic for a fixed (name, Options).
func Run(name string, opts Options) (*Result, error) {
	p, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown preset %q (have: %s)",
			name, strings.Join(Names(), ", "))
	}
	return runPreset(p, opts)
}

// resolveConfig turns a preset and run options into the world configuration,
// also reporting whether the quick (CI-sized) variant was selected.
func resolveConfig(p Preset, opts Options) (cfg topo.Config, quick bool) {
	cfg = topo.Default()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	// An explicit Scale overrides Quick entirely (sizing and sampling), as
	// the Options doc promises.
	quick = opts.Quick && opts.Scale <= 0
	switch {
	case opts.Scale > 0:
		cfg.Scale = opts.Scale
	case quick:
		cfg.Scale = p.QuickScale
	default:
		cfg.Scale = p.Scale
	}
	if p.Tune != nil {
		p.Tune(&cfg)
	}
	return cfg, quick
}

// envOptions assembles the experiments options for a resolved preset world,
// including the named resolver backend.
func envOptions(p Preset, cfg topo.Config, opts Options) (experiments.Options, error) {
	// ShardWorkers sizes resolution fan-out (goroutines or worker
	// processes); Workers tunes scan concurrency, not resolution.
	backend, err := resolver.New(opts.Backend, opts.ShardWorkers)
	if err != nil {
		return experiments.Options{}, err
	}
	faults := p.Faults
	faults.Seed = cfg.Seed
	return experiments.Options{
		Topo: cfg,
		Scan: experiments.ScanOptions{
			Workers:     opts.Workers,
			Seed:        cfg.Seed,
			Parallelism: opts.Parallelism,
		},
		ChurnFraction: p.Churn,
		Faults:        faults,
		Backend:       backend,
		StreamCollect: opts.StreamCollect,
		MemBudget:     opts.MemBudget,
	}, nil
}

// runPreset measures one (possibly sweep-modified) preset and scores it.
func runPreset(p Preset, opts Options) (*Result, error) {
	if p.StreamOnly && !opts.StreamCollect {
		return nil, fmt.Errorf("scenario %s: this world only runs out-of-core; pass -stream-collect", p.Name)
	}
	cfg, quick := resolveConfig(p, opts)
	eopts, err := envOptions(p, cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", p.Name, err)
	}
	if opts.LogDir != "" {
		lg, err := obslog.Create(opts.LogDir, obslog.RunMeta{
			Scenario: p.Name,
			Seed:     cfg.Seed,
			Scale:    cfg.Scale,
			Quick:    quick,
			Backend:  eopts.Backend.Name(),
			Epochs:   1,
		}, obslog.Options{})
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", p.Name, err)
		}
		defer lg.Close()
		eopts.Log = lg
		eopts.EpochDigest = func(ep *experiments.Epoch) (string, error) {
			d, _ := DigestPartitions(ScoredPartitions(ep.Env))
			return d, nil
		}
	}
	defer closeBackend(eopts.Backend)
	env, err := experiments.BuildEnv(eopts)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", p.Name, err)
	}
	res := score(p, cfg, quick, env, env.World.Truth)
	// Closing surfaces a distributed session's sticky worker error: a run
	// that lost a shard worker fails here instead of shipping a partial
	// scorecard.
	if err := env.Close(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", p.Name, err)
	}
	return res, nil
}

// closeBackend releases a backend that holds external resources (the
// distributed backend's worker processes); the in-process backends close to
// a no-op.
func closeBackend(b resolver.Backend) {
	if c, ok := b.(io.Closer); ok {
		c.Close()
	}
}

// score assembles the Result from a measured environment, judged against the
// supplied ground truth (the world's live truth for single-snapshot runs, a
// per-epoch snapshot for longitudinal ones).
func score(p Preset, cfg topo.Config, quick bool, env *experiments.Env, truth *topo.Truth) *Result {
	res := &Result{
		Scenario:    p.Name,
		Summary:     p.Summary,
		Seed:        cfg.Seed,
		Scale:       cfg.Scale,
		Quick:       quick,
		Backend:     env.Resolver().Name(),
		Devices:     env.World.Fabric.NumDevices(),
		V4Addresses: len(env.Both.AllAddrs(experiments.V4)),
		V6Addresses: len(env.Both.AllAddrs(experiments.V6)),
		UnionSetsV4: len(env.UnionFamilyNonSingleton(true)),
		UnionSetsV6: len(env.UnionFamilyNonSingleton(false)),
	}
	res.DualStackSets = len(env.DualStackSets())

	truthFor := map[ident.Protocol]map[string][]netip.Addr{
		ident.SSH:  truth.SSHAddrs,
		ident.BGP:  truth.BGPAddrs,
		ident.SNMP: truth.SNMPAddrs,
	}
	for _, proto := range []ident.Protocol{ident.SSH, ident.BGP, ident.SNMP} {
		// Score the datasets the analysis actually consumes: the
		// Active∪Censys union for SSH and BGP, the active scan for SNMPv3
		// (its single source, as in the paper).
		ds := env.Both
		if proto == ident.SNMP {
			ds = env.Active
		}
		owner := evaluate.OwnerMap(truthFor[proto])
		sets := ds.NonSingletonSets(proto)
		m := evaluate.Pairwise(sets, owner)
		// Empty ground truth means the world has no such service; report
		// zero coverage rather than a vacuous perfect score, so a preset
		// that fully disables a protocol cannot pass a coverage gate.
		observed := len(ds.Addrs(proto, nil))
		cov := 0.0
		if len(owner) > 0 {
			cov = float64(observed) / float64(len(owner))
		}
		res.Protocols = append(res.Protocols, ProtocolScore{
			Protocol:      proto.String(),
			Precision:     m.Precision(),
			Recall:        m.Recall(),
			F1:            m.F1(),
			Coverage:      cov,
			ObservedAddrs: observed,
			TruthAddrs:    len(owner),
			AliasSets:     len(sets),
			TruePairs:     m.TruePairs,
			FalsePairs:    m.FalsePairs,
			MissedPairs:   m.MissedPairs,
		})
	}

	// The MIDAR tally: paper-scaled sample on full runs, a fixed small
	// sample in quick mode so the CI matrix stays fast.
	maxSets := 0
	if quick {
		maxSets = 15
	}
	run := env.MIDARRun(maxSets, midar.Config{})
	res.MIDAR = MIDARScore{
		Sampled:      run.Tally.Unverifiable + run.Tally.Confirmed + run.Tally.Split,
		Unverifiable: run.Tally.Unverifiable,
		Confirmed:    run.Tally.Confirmed,
		Split:        run.Tally.Split,
	}
	res.SetsDigest, res.PartitionDigests = DigestPartitions(ScoredPartitions(env))
	return res
}

// Partition is one named alias-set partition contributing to a sets digest.
type Partition struct {
	// Name is the canonical partition key ("ssh", "union-v4", "dualstack").
	Name string
	// Sets is the partition in canonical order.
	Sets []alias.Set
}

// PartitionDigest is one partition's contribution to a sets digest, keyed so
// that a cross-backend (or cross-service) divergence can name the first
// partition that differs.
type PartitionDigest struct {
	Partition string `json:"partition"`
	Digest    string `json:"digest"`
}

// ScoredPartitions lists every alias-set partition a scorecard reads, in
// canonical order: the per-protocol non-singleton groups (SSH and BGP from
// the union dataset, SNMPv3 from the active scan), the per-family union
// partitions, and the dual-stack sets.
func ScoredPartitions(env *experiments.Env) []Partition {
	var parts []Partition
	for _, proto := range []ident.Protocol{ident.SSH, ident.BGP, ident.SNMP} {
		ds := env.Both
		if proto == ident.SNMP {
			ds = env.Active
		}
		parts = append(parts, Partition{
			Name: strings.ToLower(proto.String()),
			Sets: ds.NonSingletonSets(proto),
		})
	}
	for _, v4 := range []bool{true, false} {
		name := "union-v4"
		if !v4 {
			name = "union-v6"
		}
		parts = append(parts, Partition{Name: name, Sets: env.UnionFamilyNonSingleton(v4)})
	}
	parts = append(parts, Partition{Name: "dualstack", Sets: env.DualStackSets()})
	return parts
}

// DigestPartitions hashes named alias-set partitions in order and returns the
// combined hex digest plus the per-partition breakdown. Two runs with equal
// combined digests produced byte-identical alias sets — the cross-backend
// equivalence check reduces to comparing these strings — and unequal runs
// locate the first differing partition through the breakdown. The resolution
// daemon hashes its session views through the same helper, so its digests are
// directly comparable with scorecard digests over the same partitions.
func DigestPartitions(parts []Partition) (string, []PartitionDigest) {
	h := sha256.New()
	breakdown := make([]PartitionDigest, 0, len(parts))
	for _, part := range parts {
		ph := sha256.New()
		for _, s := range part.Sets {
			ph.Write([]byte(s.Key()))
			ph.Write([]byte{0})
		}
		ph.Write([]byte{0xff})
		sum := ph.Sum(nil)
		h.Write(sum)
		breakdown = append(breakdown, PartitionDigest{
			Partition: part.Name,
			Digest:    hex.EncodeToString(sum),
		})
	}
	return hex.EncodeToString(h.Sum(nil)), breakdown
}

// FirstDivergence names the first partition whose digest differs between two
// breakdowns, for actionable divergence errors. It returns "" when the
// breakdowns agree (or one side lacks them, as legacy reports do).
func FirstDivergence(a, b []PartitionDigest) string {
	if len(a) != len(b) {
		return ""
	}
	for i := range a {
		if a[i].Partition == b[i].Partition && a[i].Digest != b[i].Digest {
			return a[i].Partition
		}
	}
	return ""
}

// backendName reports the resolver backend, defaulting legacy reports to
// batch.
func (r *Result) backendName() string {
	if r.Backend == "" {
		return "batch"
	}
	return r.Backend
}

// RenderText prints one result as a human-readable block (the CLI's default
// output).
func (r *Result) RenderText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %-12s %s\n", r.Scenario, r.Summary)
	fmt.Fprintf(&sb, "  world: seed=%d scale=%.2f devices=%d addrs=%d(v4)+%d(v6) backend=%s\n",
		r.Seed, r.Scale, r.Devices, r.V4Addresses, r.V6Addresses, r.backendName())
	fmt.Fprintf(&sb, "  union sets: %d(v4) %d(v6)  dual-stack: %d\n",
		r.UnionSetsV4, r.UnionSetsV6, r.DualStackSets)
	fmt.Fprintf(&sb, "  %-8s %9s %9s %9s %9s %7s\n",
		"protocol", "precision", "recall", "f1", "coverage", "sets")
	for _, p := range r.Protocols {
		fmt.Fprintf(&sb, "  %-8s %9.4f %9.4f %9.4f %9.4f %7d\n",
			p.Protocol, p.Precision, p.Recall, p.F1, p.Coverage, p.AliasSets)
	}
	fmt.Fprintf(&sb, "  midar: sampled=%d confirmed=%d split=%d unverifiable=%d\n",
		r.MIDAR.Sampled, r.MIDAR.Confirmed, r.MIDAR.Split, r.MIDAR.Unverifiable)
	return sb.String()
}
