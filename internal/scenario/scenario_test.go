package scenario

import (
	"reflect"
	"testing"
)

// tinyOpts keeps test worlds small enough for the full catalog to run in a
// few seconds.
var tinyOpts = Options{Scale: 0.05}

// runCached builds each scenario at the tiny scale once and shares the
// result across tests.
var cache = map[string]*Result{}

func tiny(t *testing.T, name string) *Result {
	t.Helper()
	if r, ok := cache[name]; ok {
		return r
	}
	r, err := Run(name, tinyOpts)
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	cache[name] = r
	return r
}

func TestCatalogShape(t *testing.T) {
	ps := Presets()
	if len(ps) < 8 {
		t.Fatalf("catalog has %d presets, want >= 8", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Summary == "" {
			t.Fatalf("preset %+v missing name or summary", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate preset name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Scale <= 0 || p.QuickScale <= 0 {
			t.Fatalf("preset %s has non-positive scales", p.Name)
		}
		if _, ok := Lookup(p.Name); !ok {
			t.Fatalf("Lookup(%q) failed", p.Name)
		}
	}
	if _, ok := Lookup("no-such-world"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run("no-such-world", tinyOpts); err == nil {
		t.Fatal("Run accepted an unknown scenario")
	}
}

// TestDigestPartitionsBreakdown: the combined digest is a function of the
// per-partition digests, every partition is keyed, and FirstDivergence names
// the partition that changed.
func TestDigestPartitionsBreakdown(t *testing.T) {
	res := tiny(t, "baseline")
	if res.SetsDigest == "" {
		t.Fatal("no sets digest")
	}
	wantParts := []string{"ssh", "bgp", "snmpv3", "union-v4", "union-v6", "dualstack"}
	if len(res.PartitionDigests) != len(wantParts) {
		t.Fatalf("got %d partition digests, want %d", len(res.PartitionDigests), len(wantParts))
	}
	for i, pd := range res.PartitionDigests {
		if pd.Partition != wantParts[i] {
			t.Errorf("partition %d is %q, want %q", i, pd.Partition, wantParts[i])
		}
		if len(pd.Digest) != 64 {
			t.Errorf("partition %s digest %q is not a sha256 hex string", pd.Partition, pd.Digest)
		}
	}
	if got := FirstDivergence(res.PartitionDigests, res.PartitionDigests); got != "" {
		t.Fatalf("FirstDivergence on identical breakdowns = %q, want empty", got)
	}
	mutated := append([]PartitionDigest(nil), res.PartitionDigests...)
	mutated[3].Digest = "deadbeef"
	if got := FirstDivergence(res.PartitionDigests, mutated); got != "union-v4" {
		t.Fatalf("FirstDivergence = %q, want union-v4", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run("lossy", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("lossy", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs differ:\n%+v\n%+v", a, b)
	}
}

func TestResultShape(t *testing.T) {
	r := tiny(t, "baseline")
	if len(r.Protocols) != 3 {
		t.Fatalf("got %d protocol scores, want 3", len(r.Protocols))
	}
	for _, p := range r.Protocols {
		if p.Precision < 0 || p.Precision > 1 || p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("%s scores out of range: %+v", p.Protocol, p)
		}
		if p.Coverage <= 0 {
			t.Fatalf("%s coverage %v, want > 0", p.Protocol, p.Coverage)
		}
		if p.TruthAddrs == 0 {
			t.Fatalf("%s has empty ground truth", p.Protocol)
		}
	}
	if r.Devices == 0 || r.V4Addresses == 0 {
		t.Fatalf("empty world: %+v", r)
	}
}

// find returns the named protocol's score.
func find(t *testing.T, r *Result, proto string) ProtocolScore {
	t.Helper()
	for _, p := range r.Protocols {
		if p.Protocol == proto {
			return p
		}
	}
	t.Fatalf("result %s has no protocol %q", r.Scenario, proto)
	return ProtocolScore{}
}

func TestLossyAndRatelimitedReduceCoverage(t *testing.T) {
	base := tiny(t, "baseline")
	for _, name := range []string{"lossy", "ratelimited"} {
		r := tiny(t, name)
		worse := 0
		for _, proto := range []string{"SSH", "BGP", "SNMPv3"} {
			if find(t, r, proto).Coverage < find(t, base, proto).Coverage {
				worse++
			}
		}
		if worse == 0 {
			t.Errorf("%s did not reduce coverage for any protocol", name)
		}
	}
}

func TestKeyfarmReducesSSHPrecision(t *testing.T) {
	base := find(t, tiny(t, "baseline"), "SSH")
	farm := find(t, tiny(t, "ssh-keyfarm"), "SSH")
	if farm.Precision >= base.Precision {
		t.Fatalf("keyfarm SSH precision %v, baseline %v — expected a drop",
			farm.Precision, base.Precision)
	}
	if farm.FalsePairs <= base.FalsePairs {
		t.Fatalf("keyfarm false pairs %d, baseline %d — expected more",
			farm.FalsePairs, base.FalsePairs)
	}
}

func TestSNMPDarkShrinksSNMP(t *testing.T) {
	base := find(t, tiny(t, "baseline"), "SNMPv3")
	dark := find(t, tiny(t, "snmp-dark"), "SNMPv3")
	if dark.TruthAddrs >= base.TruthAddrs {
		t.Fatalf("snmp-dark truth %d, baseline %d — expected fewer agents",
			dark.TruthAddrs, base.TruthAddrs)
	}
	if dark.ObservedAddrs >= base.ObservedAddrs {
		t.Fatalf("snmp-dark observed %d, baseline %d — expected fewer",
			dark.ObservedAddrs, base.ObservedAddrs)
	}
}

func TestIPIDNoisyDegradesMIDAR(t *testing.T) {
	base := tiny(t, "baseline")
	noisy := tiny(t, "ipid-noisy")
	// Per-interface counters make MIDAR either refuse sets or wrongly split
	// them; confirmed-as-a-share must not improve, and false splits appear.
	if noisy.MIDAR.Split <= base.MIDAR.Split && noisy.MIDAR.Confirmed >= base.MIDAR.Confirmed {
		t.Fatalf("ipid-noisy left MIDAR intact: baseline %+v, noisy %+v",
			base.MIDAR, noisy.MIDAR)
	}
	// The identifier techniques don't care about IPID policy at all.
	if got, want := find(t, noisy, "SSH"), find(t, base, "SSH"); got != want {
		t.Fatalf("ipid-noisy perturbed SSH scores: %+v vs %+v", got, want)
	}
}

func TestReportMergeAndRoundTrip(t *testing.T) {
	a := tiny(t, "baseline")
	b := tiny(t, "lossy")
	merged := Merge(&Report{Scenarios: []*Result{b}}, &Report{Scenarios: []*Result{a}})
	if len(merged.Scenarios) != 2 || merged.Scenarios[0].Scenario != "baseline" {
		t.Fatalf("merge lost canonical order: %+v", merged.Scenarios)
	}
	data, err := merged.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != 2 {
		t.Fatalf("round trip lost scenarios: %d", len(back.Scenarios))
	}
	if !reflect.DeepEqual(back.Scenarios[0], merged.Scenarios[0]) {
		t.Fatal("round trip changed a result")
	}
	data2, err := back.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("report marshalling not canonical")
	}
}
