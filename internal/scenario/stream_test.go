package scenario

import (
	"strings"
	"testing"

	"aliaslimit/internal/experiments"
	"aliaslimit/internal/obslog"
)

// TestStreamCollectMatchesInRAMOnPresets is the out-of-core byte-identity
// gate across the catalog: for every preset (scaled down to a CI-sized
// world — the preset's knobs, not its full scale), the streamed run's
// scorecard must be identical to the in-RAM run's, sets digest and all.
// StreamOnly presets compare against an in-RAM run with the gate lifted —
// the gate is a memory policy, not a semantic difference.
func TestStreamCollectMatchesInRAMOnPresets(t *testing.T) {
	for _, p := range Presets() {
		inRAM := p
		inRAM.StreamOnly = false
		opts := Options{Seed: 1, Scale: 0.04, Workers: 16}
		ref, err := runPreset(inRAM, opts)
		if err != nil {
			t.Fatalf("%s in-RAM: %v", p.Name, err)
		}
		opts.StreamCollect = true
		opts.MemBudget = 16 << 20
		res, err := runPreset(p, opts)
		if err != nil {
			t.Fatalf("%s streamed: %v", p.Name, err)
		}
		if res.SetsDigest == "" || res.SetsDigest != ref.SetsDigest {
			t.Errorf("%s: streamed sets digest %s, in-RAM %s (first divergence: %s)",
				p.Name, res.SetsDigest, ref.SetsDigest,
				FirstDivergence(res.PartitionDigests, ref.PartitionDigests))
		}
		if res.V4Addresses != ref.V4Addresses || res.V6Addresses != ref.V6Addresses {
			t.Errorf("%s: streamed address universe %d/%d, in-RAM %d/%d",
				p.Name, res.V4Addresses, res.V6Addresses, ref.V4Addresses, ref.V6Addresses)
		}
		// The whole scorecard agrees, not just the hashed partitions — the
		// coverage counts come from the replay-derived address universes and
		// the non-standard-port count from the counting sink.
		res.Backend, ref.Backend = "", ""
		if res.RenderText() != ref.RenderText() {
			t.Errorf("%s: streamed scorecard diverges from in-RAM:\n%s\nvs\n%s",
				p.Name, res.RenderText(), ref.RenderText())
		}
	}
}

// TestStreamCollectBackendEquivalence proves the streamed path feeds all
// four resolver backends identically: at two seeds, each backend's streamed
// digest must equal the in-RAM batch reference. CI runs this under -race,
// which also exercises the concurrent log sink and the live streaming feed.
func TestStreamCollectBackendEquivalence(t *testing.T) {
	for _, preset := range []string{"baseline", "churn-storm"} {
		for _, seed := range []uint64{1, 7} {
			ref, err := Run(preset, Options{Seed: seed, Scale: 0.04, Workers: 16})
			if err != nil {
				t.Fatalf("%s seed=%d in-RAM: %v", preset, seed, err)
			}
			for _, backend := range BackendNames() {
				res, err := Run(preset, Options{
					Seed: seed, Scale: 0.04, Workers: 16,
					Backend: backend, StreamCollect: true,
				})
				if err != nil {
					t.Fatalf("%s seed=%d backend=%s streamed: %v", preset, seed, backend, err)
				}
				if res.SetsDigest != ref.SetsDigest {
					t.Errorf("%s seed=%d: streamed %s alias sets diverge from in-RAM batch (digest %s vs %s, partition %s)",
						preset, seed, backend, res.SetsDigest, ref.SetsDigest,
						FirstDivergence(res.PartitionDigests, ref.PartitionDigests))
				}
			}
		}
	}
}

// TestStreamOnlyGate pins megascale-x100's contract: it refuses to run
// in-RAM with an actionable error, and runs streamed (at a CI-sized scale
// override here — the world knobs, not the full Scale 100).
func TestStreamOnlyGate(t *testing.T) {
	_, err := Run("megascale-x100", Options{Seed: 1, Scale: 0.04})
	if err == nil || !strings.Contains(err.Error(), "-stream-collect") {
		t.Fatalf("in-RAM megascale-x100 = %v, want a -stream-collect error", err)
	}
	res, err := Run("megascale-x100", Options{Seed: 1, Scale: 0.04, Workers: 16, StreamCollect: true})
	if err != nil {
		t.Fatalf("streamed megascale-x100: %v", err)
	}
	if res.SetsDigest == "" {
		t.Fatal("streamed megascale-x100 produced no sets digest")
	}
}

// TestStreamCollectLongitudinal runs a short churn-storm series out-of-core
// and requires per-epoch byte-identity with the in-RAM series — including
// the persistence/survival/merge metrics, which iterate observations
// through the log-backed EachObs instead of in-RAM slices.
func TestStreamCollectLongitudinal(t *testing.T) {
	ref := longTiny(t, "churn-storm")
	opts := longOpts
	opts.StreamCollect = true
	r, err := RunLongitudinal("churn-storm", opts)
	if err != nil {
		t.Fatalf("streamed longitudinal: %v", err)
	}
	for i, e := range r.Epochs {
		if e.SetsDigest != ref.Epochs[i].SetsDigest {
			t.Errorf("epoch %d: streamed alias sets diverge from in-RAM", i)
		}
	}
	for i := range r.Merges {
		if *r.Merges[i] != *ref.Merges[i] {
			t.Errorf("merge strategy %s diverges from in-RAM", r.Merges[i].Strategy)
		}
	}
	for i := range r.Persistence {
		if r.Persistence[i].Mean != ref.Persistence[i].Mean {
			t.Errorf("persistence %s diverges from in-RAM", r.Persistence[i].Protocol)
		}
	}
}

// TestStreamCollectWithLogDir proves the durable log doubles as the stream
// spill: a streamed run under LogDir yields the in-RAM digest, and the log
// it leaves behind replays to the same digest (the crash-resume property,
// now fed by the collection path itself).
func TestStreamCollectWithLogDir(t *testing.T) {
	ref, err := Run("baseline", Options{Seed: 3, Scale: 0.04, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/log"
	res, err := Run("baseline", Options{
		Seed: 3, Scale: 0.04, Workers: 16,
		StreamCollect: true, LogDir: dir,
	})
	if err != nil {
		t.Fatalf("streamed durable run: %v", err)
	}
	if res.SetsDigest != ref.SetsDigest {
		t.Errorf("streamed durable digest %s, in-RAM %s", res.SetsDigest, ref.SetsDigest)
	}
	snap, err := obslog.Replay(dir, 0)
	if err != nil {
		t.Fatalf("replaying the stream-collected log: %v", err)
	}
	env, err := experiments.ReplayEnv(snap, nil)
	if err != nil {
		t.Fatalf("rebuilding datasets from the log: %v", err)
	}
	defer env.Close()
	digest, _ := DigestPartitions(ScoredPartitions(env))
	if digest != ref.SetsDigest {
		t.Errorf("log replay digest %s, in-RAM %s", digest, ref.SetsDigest)
	}
}
