package scenario

import (
	"fmt"
	"strings"
)

// Parameter sweeps: promote a scalar preset knob to an axis and emit the
// per-axis degradation curve — the Figure-style counterpart of the
// single-point scenario scorecards. CI's nightly sweep job runs the loss
// axis; the churn axis rides on the same machinery.

// SweepAxes lists the sweepable axes.
var SweepAxes = []string{"loss", "churn"}

// SweepPoint is one axis value's full scorecard.
type SweepPoint struct {
	// Value is the axis value as a fraction (0.05 = 5%).
	Value float64 `json:"value"`
	// Result is the standard single-snapshot scorecard at that value.
	Result *Result `json:"result"`
}

// SweepReport is one axis sweep — the SWEEP-<axis>.json artifact.
type SweepReport struct {
	// Axis is the swept knob ("loss": per-wire packet loss; "churn": the
	// snapshot-gap churn fraction).
	Axis string `json:"axis"`
	// Scenario is the base preset every point starts from.
	Scenario string `json:"scenario"`
	// Points holds the curve in ascending axis order.
	Points []*SweepPoint `json:"points"`
}

// RunSweep runs the named preset once per axis value, overriding only the
// swept knob, and returns the degradation curve. Values are fractions and
// must be ascending; every point reuses the preset's scales, tuning, and
// remaining faults, so the curve isolates exactly one axis.
func RunSweep(axis, name string, values []float64, opts Options) (*SweepReport, error) {
	p, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown preset %q (have: %s)",
			name, strings.Join(Names(), ", "))
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("scenario: sweep needs at least one value")
	}
	rep := &SweepReport{Axis: axis, Scenario: p.Name}
	for i, v := range values {
		if v < 0 || v >= 1 {
			return nil, fmt.Errorf("scenario: sweep value %v out of [0, 1)", v)
		}
		if i > 0 && v <= values[i-1] {
			return nil, fmt.Errorf("scenario: sweep values must be ascending, got %v after %v", v, values[i-1])
		}
		q := p
		switch axis {
		case "loss":
			q.Faults.LossRate = v
		case "churn":
			q.Churn = v
			if v == 0 {
				// Preset.Churn uses 0 as "experiments default (2%)"; a swept
				// zero means literally no churn, which negative expresses.
				q.Churn = -1
			}
		default:
			return nil, fmt.Errorf("scenario: unknown sweep axis %q (have: %s)",
				axis, strings.Join(SweepAxes, ", "))
		}
		res, err := runPreset(q, opts)
		if err != nil {
			return nil, fmt.Errorf("scenario sweep %s=%v: %w", axis, v, err)
		}
		rep.Points = append(rep.Points, &SweepPoint{Value: v, Result: res})
	}
	return rep, nil
}

// RenderText prints the sweep as a degradation-curve table.
func (r *SweepReport) RenderText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep %s on %s (%d points)\n", r.Axis, r.Scenario, len(r.Points))
	fmt.Fprintf(&sb, "  %7s %9s %9s %9s %9s %9s %9s\n",
		r.Axis, "ssh-prec", "ssh-cov", "bgp-cov", "snmp-cov", "union-v4", "dual")
	for _, pt := range r.Points {
		cov := map[string]float64{}
		prec := map[string]float64{}
		for _, p := range pt.Result.Protocols {
			cov[p.Protocol] = p.Coverage
			prec[p.Protocol] = p.Precision
		}
		fmt.Fprintf(&sb, "  %6.1f%% %9.4f %9.4f %9.4f %9.4f %9d %9d\n",
			pt.Value*100, prec["SSH"], cov["SSH"], cov["BGP"], cov["SNMPv3"],
			pt.Result.UnionSetsV4, pt.Result.DualStackSets)
	}
	return sb.String()
}
