package scenario

import (
	"fmt"
	"math"
	"strings"
)

// Parameter sweeps: promote a scalar preset knob to an axis and emit the
// per-axis degradation curve — the Figure-style counterpart of the
// single-point scenario scorecards. CI's nightly sweep job runs the loss and
// churn axes; the longitudinal axes (epochs, decay) ride on the same
// machinery but run the multi-epoch pipeline per point.

// SweepAxes lists the sweepable axes. loss and churn sweep a single-snapshot
// knob; epochs and decay sweep the longitudinal layer.
var SweepAxes = []string{"loss", "churn", "epochs", "decay"}

// sweepDefaultEpochs is the multi-epoch depth the decay axis runs at: deep
// enough that the strategies' histories diverge, small enough for a nightly
// job.
const sweepDefaultEpochs = 4

// SweepPoint is one axis value's full scorecard. Single-snapshot axes fill
// Result; longitudinal axes (epochs, decay) fill Longitudinal.
type SweepPoint struct {
	// Value is the axis value — a fraction for loss/churn/decay (0.05 = 5%),
	// a whole number of snapshot rounds for epochs.
	Value float64 `json:"value"`
	// Result is the single-snapshot scorecard at that value.
	Result *Result `json:"result,omitempty"`
	// Longitudinal is the multi-epoch scorecard at that value.
	Longitudinal *LongitudinalResult `json:"longitudinal,omitempty"`
}

// SweepReport is one axis sweep — the SWEEP-<axis>.json artifact.
type SweepReport struct {
	// Axis is the swept knob ("loss": per-wire packet loss; "churn": the
	// snapshot-gap churn fraction; "epochs": the number of snapshot rounds;
	// "decay": the decay-weighted merge strategy's factor).
	Axis string `json:"axis"`
	// Scenario is the base preset every point starts from.
	Scenario string `json:"scenario"`
	// Points holds the curve in ascending axis order.
	Points []*SweepPoint `json:"points"`
}

// RunSweep runs the named preset once per axis value, overriding only the
// swept knob, and returns the degradation curve. Values must be ascending;
// loss/churn/decay take fractions, epochs takes whole snapshot-round counts
// (>= 2). Every point reuses the preset's scales, tuning, and remaining
// faults, so the curve isolates exactly one axis. The epochs and decay axes
// run the longitudinal pipeline per point and fill SweepPoint.Longitudinal.
func RunSweep(axis, name string, values []float64, opts Options) (*SweepReport, error) {
	p, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown preset %q (have: %s)",
			name, strings.Join(Names(), ", "))
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("scenario: sweep needs at least one value")
	}
	rep := &SweepReport{Axis: axis, Scenario: p.Name}
	for i, v := range values {
		if i > 0 && v <= values[i-1] {
			return nil, fmt.Errorf("scenario: sweep values must be ascending, got %v after %v", v, values[i-1])
		}
		pt, err := runSweepPoint(axis, p, v, opts)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// runSweepPoint measures one axis value.
func runSweepPoint(axis string, p Preset, v float64, opts Options) (*SweepPoint, error) {
	fail := func(err error) (*SweepPoint, error) {
		return nil, fmt.Errorf("scenario sweep %s=%v: %w", axis, v, err)
	}
	fraction := func() error {
		if v < 0 || v >= 1 {
			return fmt.Errorf("scenario: sweep value %v out of [0, 1)", v)
		}
		return nil
	}
	q := p
	switch axis {
	case "loss":
		if err := fraction(); err != nil {
			return nil, err
		}
		q.Faults.LossRate = v
	case "churn":
		if err := fraction(); err != nil {
			return nil, err
		}
		q.Churn = v
		if v == 0 {
			// Preset.Churn uses 0 as "experiments default (2%)"; a swept
			// zero means literally no churn, which negative expresses.
			q.Churn = -1
		}
	case "epochs":
		if v != math.Trunc(v) || v < 2 {
			return nil, fmt.Errorf("scenario: epochs sweep values must be whole numbers >= 2, got %v", v)
		}
		res, err := runLongitudinalPreset(q, LongitudinalOptions{Options: opts, Epochs: int(v)})
		if err != nil {
			return fail(err)
		}
		return &SweepPoint{Value: v, Longitudinal: res}, nil
	case "decay":
		if v <= 0 || v >= 1 {
			return nil, fmt.Errorf("scenario: decay sweep values must be in (0, 1), got %v", v)
		}
		res, err := runLongitudinalPreset(q, LongitudinalOptions{
			Options: opts, Epochs: sweepDefaultEpochs, Decay: v,
		})
		if err != nil {
			return fail(err)
		}
		return &SweepPoint{Value: v, Longitudinal: res}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown sweep axis %q (have: %s)",
			axis, strings.Join(SweepAxes, ", "))
	}
	res, err := runPreset(q, opts)
	if err != nil {
		return fail(err)
	}
	return &SweepPoint{Value: v, Result: res}, nil
}

// RenderText prints the sweep as a degradation-curve table.
func (r *SweepReport) RenderText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep %s on %s (%d points)\n", r.Axis, r.Scenario, len(r.Points))
	if len(r.Points) > 0 && r.Points[0].Longitudinal != nil {
		// Longitudinal axes: the merge-strategy comparison is the curve.
		fmt.Fprintf(&sb, "  %7s %7s %9s %9s %9s %9s\n",
			r.Axis, "epochs", "naive-f1", "decay-f1", "incr-f1", "survival")
		for _, pt := range r.Points {
			l := pt.Longitudinal
			f1 := map[string]float64{}
			for _, m := range l.Merges {
				f1[m.Strategy] = m.F1
			}
			last := 0.0
			if n := len(l.Survival); n > 0 {
				last = l.Survival[n-1].Rate
			}
			fmt.Fprintf(&sb, "  %7.4g %7d %9.4f %9.4f %9.4f %9.3f\n",
				pt.Value, len(l.Epochs), f1["naive-union"], f1["decay-weighted"],
				f1["incremental"], last)
		}
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %7s %9s %9s %9s %9s %9s %9s\n",
		r.Axis, "ssh-prec", "ssh-cov", "bgp-cov", "snmp-cov", "union-v4", "dual")
	for _, pt := range r.Points {
		cov := map[string]float64{}
		prec := map[string]float64{}
		for _, p := range pt.Result.Protocols {
			cov[p.Protocol] = p.Coverage
			prec[p.Protocol] = p.Precision
		}
		fmt.Fprintf(&sb, "  %6.1f%% %9.4f %9.4f %9.4f %9.4f %9d %9d\n",
			pt.Value*100, prec["SSH"], cov["SSH"], cov["BGP"], cov["SNMPv3"],
			pt.Result.UnionSetsV4, pt.Result.DualStackSets)
	}
	return sb.String()
}
