package scenario

import (
	"reflect"
	"testing"
)

func TestRunSweepLossDegradesCoverage(t *testing.T) {
	rep, err := RunSweep("loss", "baseline", []float64{0.0, 0.20}, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Axis != "loss" || rep.Scenario != "baseline" || len(rep.Points) != 2 {
		t.Fatalf("unexpected sweep shape: %+v", rep)
	}
	worse := 0
	for _, proto := range []string{"SSH", "BGP", "SNMPv3"} {
		if find(t, rep.Points[1].Result, proto).Coverage < find(t, rep.Points[0].Result, proto).Coverage {
			worse++
		}
	}
	if worse == 0 {
		t.Fatal("20% loss did not reduce coverage for any protocol")
	}
}

func TestRunSweepChurnAxis(t *testing.T) {
	rep, err := RunSweep("churn", "baseline", []float64{0.02, 0.30}, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("want 2 points, got %d", len(rep.Points))
	}
	// A swept zero must mean literally no churn, not the 2% default the
	// preset's zero value would select downstream.
	zero, err := RunSweep("churn", "baseline", []float64{0}, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(zero.Points[0].Result, rep.Points[0].Result) {
		t.Fatal("churn=0 sweep point measured the same world as churn=2%")
	}
	// Heavier churn between the snapshots leaves more stale identifiers in
	// the union: SSH precision must not improve.
	lo := find(t, rep.Points[0].Result, "SSH")
	hi := find(t, rep.Points[1].Result, "SSH")
	if hi.FalsePairs < lo.FalsePairs {
		t.Fatalf("churn 30%% produced fewer SSH false pairs (%d) than 2%% (%d)",
			hi.FalsePairs, lo.FalsePairs)
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	a, err := RunSweep("loss", "baseline", []float64{0.05}, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	par := tinyOpts
	par.Parallelism = 1
	b, err := RunSweep("loss", "baseline", []float64{0.05}, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweep differs between sequential and pipelined collection")
	}
}

func TestRunSweepValidation(t *testing.T) {
	if _, err := RunSweep("loss", "no-such-world", []float64{0.05}, tinyOpts); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := RunSweep("gravity", "baseline", []float64{0.05}, tinyOpts); err == nil {
		t.Fatal("unknown axis accepted")
	}
	if _, err := RunSweep("loss", "baseline", nil, tinyOpts); err == nil {
		t.Fatal("empty value list accepted")
	}
	if _, err := RunSweep("loss", "baseline", []float64{0.2, 0.1}, tinyOpts); err == nil {
		t.Fatal("descending values accepted")
	}
	if _, err := RunSweep("loss", "baseline", []float64{1.5}, tinyOpts); err == nil {
		t.Fatal("out-of-range value accepted")
	}
}
