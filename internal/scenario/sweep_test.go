package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestRunSweepLossDegradesCoverage(t *testing.T) {
	rep, err := RunSweep("loss", "baseline", []float64{0.0, 0.20}, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Axis != "loss" || rep.Scenario != "baseline" || len(rep.Points) != 2 {
		t.Fatalf("unexpected sweep shape: %+v", rep)
	}
	worse := 0
	for _, proto := range []string{"SSH", "BGP", "SNMPv3"} {
		if find(t, rep.Points[1].Result, proto).Coverage < find(t, rep.Points[0].Result, proto).Coverage {
			worse++
		}
	}
	if worse == 0 {
		t.Fatal("20% loss did not reduce coverage for any protocol")
	}
}

func TestRunSweepChurnAxis(t *testing.T) {
	rep, err := RunSweep("churn", "baseline", []float64{0.02, 0.30}, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("want 2 points, got %d", len(rep.Points))
	}
	// A swept zero must mean literally no churn, not the 2% default the
	// preset's zero value would select downstream.
	zero, err := RunSweep("churn", "baseline", []float64{0}, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(zero.Points[0].Result, rep.Points[0].Result) {
		t.Fatal("churn=0 sweep point measured the same world as churn=2%")
	}
	// Heavier churn between the snapshots leaves more stale identifiers in
	// the union: SSH precision must not improve.
	lo := find(t, rep.Points[0].Result, "SSH")
	hi := find(t, rep.Points[1].Result, "SSH")
	if hi.FalsePairs < lo.FalsePairs {
		t.Fatalf("churn 30%% produced fewer SSH false pairs (%d) than 2%% (%d)",
			hi.FalsePairs, lo.FalsePairs)
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	a, err := RunSweep("loss", "baseline", []float64{0.05}, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	par := tinyOpts
	par.Parallelism = 1
	b, err := RunSweep("loss", "baseline", []float64{0.05}, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweep differs between sequential and pipelined collection")
	}
}

func TestRunSweepValidation(t *testing.T) {
	if _, err := RunSweep("loss", "no-such-world", []float64{0.05}, tinyOpts); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := RunSweep("gravity", "baseline", []float64{0.05}, tinyOpts); err == nil {
		t.Fatal("unknown axis accepted")
	}
	if _, err := RunSweep("loss", "baseline", nil, tinyOpts); err == nil {
		t.Fatal("empty value list accepted")
	}
	if _, err := RunSweep("loss", "baseline", []float64{0.2, 0.1}, tinyOpts); err == nil {
		t.Fatal("descending values accepted")
	}
	if _, err := RunSweep("loss", "baseline", []float64{1.5}, tinyOpts); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	if _, err := RunSweep("epochs", "baseline", []float64{2.5}, tinyOpts); err == nil {
		t.Fatal("fractional epochs value accepted")
	}
	if _, err := RunSweep("epochs", "baseline", []float64{1}, tinyOpts); err == nil {
		t.Fatal("single-epoch sweep value accepted")
	}
	if _, err := RunSweep("decay", "baseline", []float64{0}, tinyOpts); err == nil {
		t.Fatal("decay 0 accepted")
	}
}

// TestRunSweepEpochsAxis sweeps the longitudinal depth: every point carries
// a full multi-epoch scorecard with the matching round count.
func TestRunSweepEpochsAxis(t *testing.T) {
	rep, err := RunSweep("epochs", "churn-storm", []float64{2, 3}, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("want 2 points, got %d", len(rep.Points))
	}
	for i, want := range []int{2, 3} {
		pt := rep.Points[i]
		if pt.Result != nil || pt.Longitudinal == nil {
			t.Fatalf("epochs point %d is not longitudinal: %+v", i, pt)
		}
		if got := len(pt.Longitudinal.Epochs); got != want {
			t.Fatalf("point %d ran %d epochs, want %d", i, got, want)
		}
		if len(pt.Longitudinal.Merges) != 3 {
			t.Fatalf("point %d has %d merge strategies, want 3", i, len(pt.Longitudinal.Merges))
		}
	}
	if !strings.Contains(rep.RenderText(), "incr-f1") {
		t.Fatalf("longitudinal sweep table missing merge columns:\n%s", rep.RenderText())
	}
}

// TestRunSweepDecayAxis sweeps the decay factor and checks each point pins
// its factor in the scorecard.
func TestRunSweepDecayAxis(t *testing.T) {
	rep, err := RunSweep("decay", "churn-storm", []float64{0.3, 0.9}, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0.3, 0.9} {
		l := rep.Points[i].Longitudinal
		if l == nil || l.Decay != want {
			t.Fatalf("decay point %d did not run at %v: %+v", i, want, rep.Points[i])
		}
		if len(l.Epochs) != sweepDefaultEpochs {
			t.Fatalf("decay point %d ran %d epochs, want %d", i, len(l.Epochs), sweepDefaultEpochs)
		}
	}
}
