package snmpv3

import (
	"encoding/binary"
	"sync/atomic"
	"time"

	"aliaslimit/internal/netsim"
)

// Port is the standard SNMP UDP port.
const Port = 161

// EngineIDFormat values from RFC 3411 §5 (SnmpEngineID textual convention).
const (
	engineIDFormatMAC    = 3
	engineIDFormatText   = 4
	engineIDFormatOctets = 5
)

// NewEngineID builds an RFC 3411 SnmpEngineID: 4-byte private enterprise
// number with the high bit set, a format octet, and identifying data — here
// a 6-byte pseudo-MAC derived from the seed. Engine IDs are what the IMC '21
// technique groups addresses by, so each simulated device derives exactly one
// from its device identity.
func NewEngineID(enterprise uint32, seed uint64) []byte {
	id := make([]byte, 0, 11)
	id = binary.BigEndian.AppendUint32(id, enterprise|0x80000000)
	id = append(id, engineIDFormatMAC)
	var mac [6]byte
	binary.BigEndian.PutUint16(mac[0:2], uint16(seed>>32))
	binary.BigEndian.PutUint32(mac[2:6], uint32(seed))
	return append(id, mac[:]...)
}

// AgentConfig describes one simulated SNMPv3 agent.
type AgentConfig struct {
	// EngineID is the engine's unique identifier, shared by every interface
	// of the device.
	EngineID []byte
	// EngineBoots counts re-initialisations.
	EngineBoots int64
	// BootTime anchors engine time; EngineTime in replies is seconds since
	// this instant according to the fabric clock.
	BootTime time.Time
}

// Agent is a netsim UDP handler answering discovery probes with the
// usmStatsUnknownEngineIDs Report that carries its engine ID.
type Agent struct {
	cfg          AgentConfig
	unknownCount atomic.Uint32
}

// NewAgent returns an agent for cfg.
func NewAgent(cfg AgentConfig) *Agent {
	return &Agent{cfg: cfg}
}

// Handle implements netsim.UDPHandler.
func (a *Agent) Handle(req []byte, sc netsim.ServeContext) []byte {
	m, err := Parse(req)
	if err != nil {
		return nil // agents drop garbage silently
	}
	// Only the USM discovery path is modelled: version 3, reportable,
	// unknown (here: empty or mismatching) engine ID.
	if m.SecurityModel != SecurityModelUSM || m.Flags&FlagReportable == 0 {
		return nil
	}
	if len(m.EngineID) != 0 && string(m.EngineID) == string(a.cfg.EngineID) {
		// A correctly addressed request would need user lookup and fails
		// differently; scanners never get here.
		return nil
	}
	count := a.unknownCount.Add(1)

	engineTime := int64(0)
	if sc.Clock != nil && !a.cfg.BootTime.IsZero() {
		if d := sc.Clock.Now().Sub(a.cfg.BootTime); d > 0 {
			engineTime = int64(d / time.Second)
		}
	}
	var counterBody []byte
	for x := uint32(count); x > 0; x >>= 8 {
		counterBody = append([]byte{byte(x)}, counterBody...)
	}
	if len(counterBody) == 0 {
		counterBody = []byte{0}
	}
	if counterBody[0]&0x80 != 0 {
		counterBody = append([]byte{0}, counterBody...)
	}
	reply := &Message{
		MsgID:           m.MsgID,
		MaxSize:         DefaultMaxSize,
		Flags:           0, // reports are not reportable
		SecurityModel:   SecurityModelUSM,
		EngineID:        a.cfg.EngineID,
		EngineBoots:     a.cfg.EngineBoots,
		EngineTime:      engineTime,
		ContextEngineID: a.cfg.EngineID,
		PDUType:         tagReport,
		RequestID:       m.RequestID,
		VarBinds: []VarBind{{
			OID:      OIDUsmStatsUnknownEngineIDs,
			ValueTag: tagCounter32,
			Value:    counterBody,
		}},
	}
	return reply.Marshal()
}
