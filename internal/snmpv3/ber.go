// Package snmpv3 implements the sliver of SNMPv3 (RFC 3412/3414) that the
// engine-ID fingerprinting technique of Albakour et al. (IMC '21) uses — the
// paper's baseline and supplementary data source. A manager sends one
// unauthenticated Get request with an empty authoritative engine ID; the
// agent cannot process it and answers with a usmStatsUnknownEngineIDs Report
// whose security parameters carry msgAuthoritativeEngineID, a value that RFC
// 3411 requires to be unique per SNMP engine (per device) — a ready-made
// alias-resolution identifier.
//
// SNMP encodes with BER. encoding/asn1 in the standard library is a DER
// codec with struct-tag reflection that fits poorly here (context tags,
// implicit application types, Counter32), so the package carries its own
// small, strict TLV codec: definite-length only, minimal-length integers —
// the subset every real agent emits.
package snmpv3

import (
	"errors"
	"fmt"
)

// BER/ASN.1 tag bytes used by SNMP messages.
const (
	tagInteger     = 0x02
	tagOctetString = 0x04
	tagNull        = 0x05
	tagOID         = 0x06
	tagSequence    = 0x30
	// tagCounter32 is SNMP's [APPLICATION 1] IMPLICIT INTEGER.
	tagCounter32 = 0x41
	// Context-specific constructed tags select the PDU type.
	tagGetRequest = 0xa0
	tagResponse   = 0xa2
	tagReport     = 0xa8
)

// Codec errors.
var (
	ErrTruncated = errors.New("snmpv3: truncated BER element")
	ErrBadTag    = errors.New("snmpv3: unexpected BER tag")
	ErrBadLength = errors.New("snmpv3: unsupported BER length form")
	ErrBadValue  = errors.New("snmpv3: malformed value")
)

// appendTLV appends tag, definite length, and value.
func appendTLV(dst []byte, tag byte, val []byte) []byte {
	dst = append(dst, tag)
	n := len(val)
	switch {
	case n < 0x80:
		dst = append(dst, byte(n))
	case n <= 0xff:
		dst = append(dst, 0x81, byte(n))
	case n <= 0xffff:
		dst = append(dst, 0x82, byte(n>>8), byte(n))
	default:
		// SNMP messages never legitimately reach 64 KiB.
		panic("snmpv3: element too large")
	}
	return append(dst, val...)
}

// appendInt appends a non-negative INTEGER with minimal encoding.
func appendInt(dst []byte, tag byte, v int64) []byte {
	if v < 0 {
		panic("snmpv3: negative integers not used by SNMP headers")
	}
	var body []byte
	switch {
	case v == 0:
		body = []byte{0}
	default:
		for x := v; x > 0; x >>= 8 {
			body = append([]byte{byte(x)}, body...)
		}
		if body[0]&0x80 != 0 {
			body = append([]byte{0}, body...) // keep it positive
		}
	}
	return appendTLV(dst, tag, body)
}

// readTLV decodes one element from the front of b. val aliases b.
func readTLV(b []byte) (tag byte, val []byte, rest []byte, err error) {
	if len(b) < 2 {
		return 0, nil, nil, ErrTruncated
	}
	tag = b[0]
	lb := b[1]
	var n, hdr int
	switch {
	case lb < 0x80:
		n, hdr = int(lb), 2
	case lb == 0x81:
		if len(b) < 3 {
			return 0, nil, nil, ErrTruncated
		}
		n, hdr = int(b[2]), 3
	case lb == 0x82:
		if len(b) < 4 {
			return 0, nil, nil, ErrTruncated
		}
		n, hdr = int(b[2])<<8|int(b[3]), 4
	default:
		return 0, nil, nil, fmt.Errorf("%w: length byte %#x", ErrBadLength, lb)
	}
	if len(b) < hdr+n {
		return 0, nil, nil, ErrTruncated
	}
	return tag, b[hdr : hdr+n], b[hdr+n:], nil
}

// expectTLV decodes one element and verifies its tag.
func expectTLV(b []byte, wantTag byte) (val, rest []byte, err error) {
	tag, val, rest, err := readTLV(b)
	if err != nil {
		return nil, nil, err
	}
	if tag != wantTag {
		return nil, nil, fmt.Errorf("%w: got %#x, want %#x", ErrBadTag, tag, wantTag)
	}
	return val, rest, nil
}

// parseInt decodes a (non-negative) INTEGER body.
func parseInt(body []byte) (int64, error) {
	if len(body) == 0 || len(body) > 8 {
		return 0, fmt.Errorf("%w: integer of %d bytes", ErrBadValue, len(body))
	}
	if body[0]&0x80 != 0 {
		return 0, fmt.Errorf("%w: negative integer", ErrBadValue)
	}
	var v int64
	for _, c := range body {
		v = v<<8 | int64(c)
	}
	return v, nil
}

// appendOID appends an OBJECT IDENTIFIER from its dotted components.
func appendOID(dst []byte, oid []uint32) []byte {
	if len(oid) < 2 {
		panic("snmpv3: OID needs at least two arcs")
	}
	body := []byte{byte(oid[0]*40 + oid[1])}
	for _, arc := range oid[2:] {
		body = append(body, encodeBase128(arc)...)
	}
	return appendTLV(dst, tagOID, body)
}

// encodeBase128 encodes one OID arc.
func encodeBase128(v uint32) []byte {
	if v == 0 {
		return []byte{0}
	}
	var out []byte
	for v > 0 {
		out = append([]byte{byte(v&0x7f) | 0x80}, out...)
		v >>= 7
	}
	out[len(out)-1] &^= 0x80
	return out
}

// parseOID decodes an OBJECT IDENTIFIER body into its arcs.
func parseOID(body []byte) ([]uint32, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("%w: empty OID", ErrBadValue)
	}
	oid := []uint32{uint32(body[0]) / 40, uint32(body[0]) % 40}
	var cur uint32
	inArc := false
	for _, c := range body[1:] {
		cur = cur<<7 | uint32(c&0x7f)
		inArc = true
		if c&0x80 == 0 {
			oid = append(oid, cur)
			cur, inArc = 0, false
		}
	}
	if inArc {
		return nil, fmt.Errorf("%w: OID arc unterminated", ErrBadValue)
	}
	return oid, nil
}

// oidEqual compares two OIDs.
func oidEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
