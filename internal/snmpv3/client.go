package snmpv3

import (
	"fmt"
	"net/netip"
)

// Exchanger is the transport a discovery client needs: one request datagram,
// at most one response. netsim.Vantage implements it; a real deployment
// would wrap a net.UDPConn.
type Exchanger interface {
	UDPExchange(addr netip.Addr, port uint16, req []byte) (resp []byte, ok bool)
}

// DiscoveryResult is what one engine-discovery probe yields.
type DiscoveryResult struct {
	// EngineID is the agent's msgAuthoritativeEngineID — the identifier the
	// IMC '21 technique groups by.
	EngineID []byte
	// EngineBoots and EngineTime are the agent's USM clock at response time.
	EngineBoots int64
	// EngineTime is seconds since the agent last booted.
	EngineTime int64
	// Counter is the usmStatsUnknownEngineIDs value, useful as a liveness
	// cross-check (it increments per discovery).
	Counter uint32
}

// Discover sends one engine-discovery probe to addr and parses the Report.
// ok is false when the target did not answer (filtered, no agent, or the
// agent dropped the probe); err is non-nil when it answered with something
// other than a well-formed discovery Report.
func Discover(x Exchanger, addr netip.Addr, msgID, requestID int64) (res *DiscoveryResult, ok bool, err error) {
	req := NewDiscoveryRequest(msgID, requestID).Marshal()
	resp, ok := x.UDPExchange(addr, Port, req)
	if !ok {
		return nil, false, nil
	}
	m, err := Parse(resp)
	if err != nil {
		return nil, true, fmt.Errorf("snmpv3: discovery response: %w", err)
	}
	if !m.IsReport() {
		return nil, true, fmt.Errorf("snmpv3: expected Report PDU, got %#x", m.PDUType)
	}
	if m.MsgID != msgID {
		return nil, true, fmt.Errorf("snmpv3: msgID mismatch: sent %d, got %d", msgID, m.MsgID)
	}
	if len(m.EngineID) == 0 {
		return nil, true, fmt.Errorf("snmpv3: report carries no engine ID")
	}
	res = &DiscoveryResult{
		EngineID:    m.EngineID,
		EngineBoots: m.EngineBoots,
		EngineTime:  m.EngineTime,
	}
	if c, hasCounter := m.UnknownEngineIDsCounter(); hasCounter {
		res.Counter = c
	}
	return res, true, nil
}
