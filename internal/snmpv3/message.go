package snmpv3

import (
	"fmt"
)

// Version3 is the msgVersion value for SNMPv3.
const Version3 = 3

// SecurityModelUSM identifies the user-based security model (RFC 3414).
const SecurityModelUSM = 3

// FlagReportable asks the receiver to send Report PDUs on failure; it is the
// only flag a discovery probe sets (no auth, no priv).
const FlagReportable = 0x04

// DefaultMaxSize is the msgMaxSize a scanner advertises (maximum UDP payload).
const DefaultMaxSize = 65507

// OIDUsmStatsUnknownEngineIDs is 1.3.6.1.6.3.15.1.1.4.0, the counter an agent
// reports when it receives a request for an engine ID it does not know —
// which is exactly what a discovery probe provokes.
var OIDUsmStatsUnknownEngineIDs = []uint32{1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0}

// VarBind is one variable binding: an OID and an already-encoded value TLV.
type VarBind struct {
	// OID is the object identifier.
	OID []uint32
	// ValueTag is the BER tag of the value (tagNull, tagCounter32, ...).
	ValueTag byte
	// Value is the raw value body.
	Value []byte
}

// Counter returns the varbind's value as a Counter32, if it is one.
func (v VarBind) Counter() (uint32, bool) {
	if v.ValueTag != tagCounter32 {
		return 0, false
	}
	n, err := parseInt(v.Value)
	if err != nil || n > 0xffffffff {
		return 0, false
	}
	return uint32(n), true
}

// Message is a decoded SNMPv3 message, restricted to the unauthenticated
// plaintext form that engine discovery uses.
type Message struct {
	// MsgID correlates request and response.
	MsgID int64
	// MaxSize is the sender's advertised maximum message size.
	MaxSize int64
	// Flags is the msgFlags byte.
	Flags byte
	// SecurityModel is SecurityModelUSM in every message we handle.
	SecurityModel int64

	// EngineID is msgAuthoritativeEngineID: empty in a discovery request,
	// and the device's unique engine identifier in the Report reply.
	EngineID []byte
	// EngineBoots and EngineTime are the USM clock fields.
	EngineBoots int64
	// EngineTime is the seconds since the engine last rebooted.
	EngineTime int64
	// UserName is the USM user, empty for discovery.
	UserName []byte

	// ContextEngineID and ContextName scope the PDU.
	ContextEngineID []byte
	// ContextName is usually empty.
	ContextName []byte

	// PDUType is tagGetRequest, tagResponse, or tagReport.
	PDUType byte
	// RequestID is the PDU request identifier.
	RequestID int64
	// ErrorStatus and ErrorIndex are the PDU error fields.
	ErrorStatus int64
	// ErrorIndex is the index of the offending varbind, if any.
	ErrorIndex int64
	// VarBinds is the variable-binding list.
	VarBinds []VarBind
}

// IsReport reports whether the message carries a Report PDU.
func (m *Message) IsReport() bool { return m.PDUType == tagReport }

// UnknownEngineIDsCounter extracts the usmStatsUnknownEngineIDs counter from
// a Report, the signature of a successful discovery exchange.
func (m *Message) UnknownEngineIDsCounter() (uint32, bool) {
	for _, vb := range m.VarBinds {
		if oidEqual(vb.OID, OIDUsmStatsUnknownEngineIDs) {
			return vb.Counter()
		}
	}
	return 0, false
}

// Marshal encodes the message.
func (m *Message) Marshal() []byte {
	// USM security parameters, themselves a BER SEQUENCE wrapped in an
	// OCTET STRING.
	var usm []byte
	usm = appendTLV(usm, tagOctetString, m.EngineID)
	usm = appendInt(usm, tagInteger, m.EngineBoots)
	usm = appendInt(usm, tagInteger, m.EngineTime)
	usm = appendTLV(usm, tagOctetString, m.UserName)
	usm = appendTLV(usm, tagOctetString, nil) // msgAuthenticationParameters
	usm = appendTLV(usm, tagOctetString, nil) // msgPrivacyParameters
	usmSeq := appendTLV(nil, tagSequence, usm)

	// PDU.
	var pdu []byte
	pdu = appendInt(pdu, tagInteger, m.RequestID)
	pdu = appendInt(pdu, tagInteger, m.ErrorStatus)
	pdu = appendInt(pdu, tagInteger, m.ErrorIndex)
	var vbs []byte
	for _, vb := range m.VarBinds {
		var one []byte
		one = appendOID(one, vb.OID)
		one = appendTLV(one, vb.ValueTag, vb.Value)
		vbs = appendTLV(vbs, tagSequence, one)
	}
	pdu = appendTLV(pdu, tagSequence, vbs)

	// Plaintext ScopedPDU.
	var scoped []byte
	scoped = appendTLV(scoped, tagOctetString, m.ContextEngineID)
	scoped = appendTLV(scoped, tagOctetString, m.ContextName)
	scoped = appendTLV(scoped, m.PDUType, pdu)

	// Global header.
	var global []byte
	global = appendInt(global, tagInteger, m.MsgID)
	global = appendInt(global, tagInteger, m.MaxSize)
	global = appendTLV(global, tagOctetString, []byte{m.Flags})
	global = appendInt(global, tagInteger, m.SecurityModel)

	var body []byte
	body = appendInt(body, tagInteger, Version3)
	body = appendTLV(body, tagSequence, global)
	body = appendTLV(body, tagOctetString, usmSeq)
	body = appendTLV(body, tagSequence, scoped)
	return appendTLV(nil, tagSequence, body)
}

// Parse decodes an SNMPv3 message in the unauthenticated plaintext form.
func Parse(b []byte) (*Message, error) {
	body, rest, err := expectTLV(b, tagSequence)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: outer sequence: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadValue, len(rest))
	}

	verBody, body, err := expectTLV(body, tagInteger)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: version: %w", err)
	}
	ver, err := parseInt(verBody)
	if err != nil {
		return nil, err
	}
	if ver != Version3 {
		return nil, fmt.Errorf("%w: version %d", ErrBadValue, ver)
	}

	var m Message
	global, body, err := expectTLV(body, tagSequence)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: global header: %w", err)
	}
	if m.MsgID, global, err = readIntField(global); err != nil {
		return nil, fmt.Errorf("snmpv3: msgID: %w", err)
	}
	if m.MaxSize, global, err = readIntField(global); err != nil {
		return nil, fmt.Errorf("snmpv3: msgMaxSize: %w", err)
	}
	flags, global, err := expectTLV(global, tagOctetString)
	if err != nil || len(flags) != 1 {
		return nil, fmt.Errorf("snmpv3: msgFlags: %w", errOr(err, ErrBadValue))
	}
	m.Flags = flags[0]
	if m.SecurityModel, _, err = readIntField(global); err != nil {
		return nil, fmt.Errorf("snmpv3: msgSecurityModel: %w", err)
	}

	usmWrap, body, err := expectTLV(body, tagOctetString)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: security parameters: %w", err)
	}
	usm, _, err := expectTLV(usmWrap, tagSequence)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: USM sequence: %w", err)
	}
	engID, usm, err := expectTLV(usm, tagOctetString)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: engine ID: %w", err)
	}
	m.EngineID = append([]byte(nil), engID...)
	if m.EngineBoots, usm, err = readIntField(usm); err != nil {
		return nil, fmt.Errorf("snmpv3: engine boots: %w", err)
	}
	if m.EngineTime, usm, err = readIntField(usm); err != nil {
		return nil, fmt.Errorf("snmpv3: engine time: %w", err)
	}
	user, _, err := expectTLV(usm, tagOctetString)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: user name: %w", err)
	}
	m.UserName = append([]byte(nil), user...)

	scoped, _, err := expectTLV(body, tagSequence)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: scoped PDU: %w", err)
	}
	ctxEng, scoped, err := expectTLV(scoped, tagOctetString)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: context engine ID: %w", err)
	}
	m.ContextEngineID = append([]byte(nil), ctxEng...)
	ctxName, scoped, err := expectTLV(scoped, tagOctetString)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: context name: %w", err)
	}
	m.ContextName = append([]byte(nil), ctxName...)

	pduTag, pdu, _, err := readTLV(scoped)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: PDU: %w", err)
	}
	switch pduTag {
	case tagGetRequest, tagResponse, tagReport:
		m.PDUType = pduTag
	default:
		return nil, fmt.Errorf("%w: PDU tag %#x", ErrBadTag, pduTag)
	}
	if m.RequestID, pdu, err = readIntField(pdu); err != nil {
		return nil, fmt.Errorf("snmpv3: request-id: %w", err)
	}
	if m.ErrorStatus, pdu, err = readIntField(pdu); err != nil {
		return nil, fmt.Errorf("snmpv3: error-status: %w", err)
	}
	if m.ErrorIndex, pdu, err = readIntField(pdu); err != nil {
		return nil, fmt.Errorf("snmpv3: error-index: %w", err)
	}
	vbs, _, err := expectTLV(pdu, tagSequence)
	if err != nil {
		return nil, fmt.Errorf("snmpv3: varbind list: %w", err)
	}
	for len(vbs) > 0 {
		var one []byte
		one, vbs, err = expectTLV(vbs, tagSequence)
		if err != nil {
			return nil, fmt.Errorf("snmpv3: varbind: %w", err)
		}
		oidBody, one, err := expectTLV(one, tagOID)
		if err != nil {
			return nil, fmt.Errorf("snmpv3: varbind OID: %w", err)
		}
		oid, err := parseOID(oidBody)
		if err != nil {
			return nil, err
		}
		vtag, vbody, _, err := readTLV(one)
		if err != nil {
			return nil, fmt.Errorf("snmpv3: varbind value: %w", err)
		}
		m.VarBinds = append(m.VarBinds, VarBind{
			OID: oid, ValueTag: vtag, Value: append([]byte(nil), vbody...),
		})
	}
	return &m, nil
}

// readIntField decodes an INTEGER TLV from the front of b.
func readIntField(b []byte) (int64, []byte, error) {
	body, rest, err := expectTLV(b, tagInteger)
	if err != nil {
		return 0, nil, err
	}
	v, err := parseInt(body)
	if err != nil {
		return 0, nil, err
	}
	return v, rest, nil
}

// errOr returns err if non-nil, else fallback.
func errOr(err, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}

// NewDiscoveryRequest builds the engine-discovery probe: an unauthenticated
// GetRequest with empty engine ID and the reportable flag set.
func NewDiscoveryRequest(msgID, requestID int64) *Message {
	return &Message{
		MsgID:         msgID,
		MaxSize:       DefaultMaxSize,
		Flags:         FlagReportable,
		SecurityModel: SecurityModelUSM,
		PDUType:       tagGetRequest,
		RequestID:     requestID,
	}
}
