package snmpv3

import (
	"testing"
	"testing/quick"

	"aliaslimit/internal/netsim"
)

// TestParseNeverPanics: BER decoders see attacker-controlled input.
func TestParseNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %x: %v", b, r)
			}
		}()
		_, _ = Parse(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseMutatedDiscovery mutates every byte of a valid discovery message.
func TestParseMutatedDiscovery(t *testing.T) {
	base := NewDiscoveryRequest(77, 88).Marshal()
	for pos := 0; pos < len(base); pos++ {
		for _, delta := range []byte{1, 0x80, 0xff} {
			mut := append([]byte(nil), base...)
			mut[pos] ^= delta
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Parse panicked with byte %d ^= %#x: %v", pos, delta, r)
					}
				}()
				_, _ = Parse(mut)
			}()
		}
	}
}

// TestAgentNeverPanics: the agent handles raw datagrams from the fabric.
func TestAgentNeverPanics(t *testing.T) {
	agent := NewAgent(AgentConfig{EngineID: NewEngineID(1, 1)})
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("agent panicked on %x: %v", b, r)
			}
		}()
		_ = agent.Handle(b, netsim.ServeContext{})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestTruncatedDiscovery truncates the discovery probe at every offset.
func TestTruncatedDiscovery(t *testing.T) {
	base := NewDiscoveryRequest(1, 2).Marshal()
	for n := 0; n < len(base); n++ {
		if _, err := Parse(base[:n]); err == nil {
			t.Errorf("truncation at %d parsed successfully", n)
		}
	}
}
